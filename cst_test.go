package cst_test

import (
	"bytes"
	"strings"
	"testing"

	"cst"
)

func TestQuickstartFlow(t *testing.T) {
	set := cst.MustParse("((.)(.))")
	tree, err := cst.NewTree(set.N)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cst.Run(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != res.Width {
		t.Fatalf("rounds %d != width %d", res.Rounds, res.Width)
	}
	if err := res.Schedule.VerifyOptimal(tree); err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxUnits() > 6 {
		t.Fatalf("max units = %d", res.Report.MaxUnits())
	}
}

func TestRunBothOrientations(t *testing.T) {
	rng := cst.NewRand(3)
	set, err := cst.RandomTwoSided(rng, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	// RunBoth requires each orientation to be well nested; retry until the
	// decomposition qualifies (two-sided random sets often cross).
	tree := cst.MustNewTree(32)
	for tries := 0; ; tries++ {
		right, leftM := cst.Decompose(set)
		if right.IsWellNested() && leftM.IsWellNested() {
			break
		}
		if tries > 200 {
			t.Skip("no well-nested two-sided draw found")
		}
		set, err = cst.RandomTwoSided(rng, 32, 4)
		if err != nil {
			t.Fatal(err)
		}
	}
	r, l, err := cst.RunBoth(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	if r != nil {
		total += r.Schedule.TotalScheduled()
	}
	if l != nil {
		total += l.Schedule.TotalScheduled()
	}
	if total != set.Len() {
		t.Fatalf("scheduled %d of %d communications", total, set.Len())
	}
}

func TestConcurrentFacade(t *testing.T) {
	set := cst.MustParse("(((())))")
	tree := cst.MustNewTree(set.N)
	conc, err := cst.RunConcurrent(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cst.Run(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Rounds != seq.Rounds {
		t.Fatalf("concurrent %d rounds vs sequential %d", conc.Rounds, seq.Rounds)
	}
}

func TestBaselineFacades(t *testing.T) {
	tree := cst.MustNewTree(64)
	set, err := cst.NestedChain(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	di, err := cst.RunDepthID(tree, set, cst.Alternating, cst.Stateful)
	if err != nil {
		t.Fatal(err)
	}
	if di.Rounds != 8 {
		t.Fatalf("depth-id rounds = %d", di.Rounds)
	}
	gr, err := cst.RunGreedy(tree, set, cst.Stateless)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Rounds != 8 {
		t.Fatalf("greedy rounds = %d", gr.Rounds)
	}
}

func TestRenderFacades(t *testing.T) {
	set := cst.MustParse("(())")
	if !strings.Contains(cst.RenderSet(set), "gaps:") {
		t.Error("RenderSet broken")
	}
	tree := cst.MustNewTree(4)
	if !strings.Contains(cst.RenderTree(tree, nil, set), "S0") {
		t.Error("RenderTree broken")
	}
}

func TestLoggerFacade(t *testing.T) {
	set := cst.MustParse("(())")
	tree := cst.MustNewTree(4)
	var buf bytes.Buffer
	logger := cst.NewRunLogger(tree, set, &buf)
	if _, err := cst.Run(tree, set, cst.WithObserver(logger.Observer())); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "round 0") {
		t.Errorf("log output: %q", buf.String())
	}
	if err := logger.VerifyDataPlane(); err != nil {
		t.Fatal(err)
	}
}

func TestSegbusFacade(t *testing.T) {
	bus, err := cst.NewBus(16)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cst.RandomBusProgram(cst.NewRand(1), bus, 5, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cst.RunBusProgram(cst.MustNewTree(16), bus, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 5 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
}

func TestGridFacade(t *testing.T) {
	grid, err := cst.NewGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	comms := cst.RandomPermutation(cst.NewRand(2), grid)
	res, err := grid.Route(comms)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMaxRounds() == 0 {
		t.Fatal("routing did nothing")
	}
}

func TestGeneralSchedulingFacade(t *testing.T) {
	tree := cst.MustNewTree(32)
	set, err := cst.RandomOriented(cst.NewRand(9), 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cst.Conflicts(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := cst.ScheduleFirstFit(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := ff.Verify(tree); err != nil {
		t.Fatal(err)
	}
	ex, _, err := cst.ExactIncumbent(cst.ScheduleExact(tree, set, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumRounds() > ff.NumRounds() {
		t.Fatalf("exact %d worse than first-fit %d", ex.NumRounds(), ff.NumRounds())
	}
	if g.MaxDegree()+1 < ff.NumRounds() {
		t.Fatalf("first-fit %d rounds exceeds degree bound %d", ff.NumRounds(), g.MaxDegree()+1)
	}
}

func TestEnergyFacade(t *testing.T) {
	tree := cst.MustNewTree(16)
	set := cst.MustParse("((((....))))....")
	var rec cst.DataPlaneRecorder
	res, err := cst.Run(tree, set, cst.WithObserver(rec.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	all := make([]cst.RoundConfig, rec.Rounds())
	for i := range all {
		all[i] = rec.Config(i)
	}
	b := cst.EvaluateEnergy(tree, all, cst.PaperEnergyModel)
	if b.Changes != res.Report.TotalUnits() {
		t.Fatalf("energy changes %d != units %d", b.Changes, res.Report.TotalUnits())
	}
	if _, ok := cst.EnergyCrossover(tree, all, all, 1); ok {
		t.Fatal("identical trajectories cannot cross")
	}
}

func TestSelfRouteFacade(t *testing.T) {
	tree := cst.MustNewTree(16)
	set := cst.NewSet(16,
		cst.Comm{Src: 0, Dst: 3},
		cst.Comm{Src: 15, Dst: 12}, // leftward: self-routing is orientation-agnostic
	)
	ok, err := cst.DisjointSet(tree, set)
	if err != nil || !ok {
		t.Fatalf("disjointness: %v/%v", ok, err)
	}
	res, err := cst.SelfRouteAll(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxHops > 2*tree.Levels()-1 {
		t.Fatalf("hops %d over bound", res.MaxHops)
	}
	// Nested sets are exactly what self-routing cannot do.
	if _, err := cst.SelfRouteAll(tree, cst.MustParse("(())............")); err == nil {
		t.Fatal("nested set must be rejected by self-routing")
	}
}

func TestOnlineFacade(t *testing.T) {
	sim, err := cst.NewOnline(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := cst.NewRand(4)
	submitted := sim.SubmitRandom(rng, 6)
	if submitted == 0 {
		t.Fatal("no requests accepted")
	}
	if err := sim.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := sim.Finish()
	if len(stats.Completed) != submitted || stats.Leftover != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(cst.Experiments()) != 16 {
		t.Fatalf("experiments = %d", len(cst.Experiments()))
	}
	e, ok := cst.ExperimentByID("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	var buf bytes.Buffer
	if err := cst.RunExperiment(&buf, e, cst.ExperimentConfig{Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "## E1") {
		t.Error("experiment output missing header")
	}
}

package cst_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Every exported declaration in the library must carry a doc comment — the
// facade and all internal packages. Enforced mechanically so the "document
// every public item" deliverable cannot rot.
func TestExportedSymbolsDocumented(t *testing.T) {
	var roots []string
	roots = append(roots, ".")
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			roots = append(roots, filepath.Join("internal", e.Name()))
		}
	}

	fset := token.NewFileSet()
	var missing []string
	for _, dir := range roots {
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for fname, file := range pkg.Files {
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if d.Name.IsExported() && d.Doc == nil {
							missing = append(missing, fname+": func "+d.Name.Name)
						}
					case *ast.GenDecl:
						for _, spec := range d.Specs {
							switch sp := spec.(type) {
							case *ast.TypeSpec:
								if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
									missing = append(missing, fname+": type "+sp.Name.Name)
								}
							case *ast.ValueSpec:
								for _, name := range sp.Names {
									if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
										missing = append(missing, fname+": "+name.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported symbols lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// Package cst is a library for power-aware routing and scheduling of
// communications on the Circuit Switched Tree (CST), reproducing
// El-Boghdadi, "Power-Aware Routing for Well-Nested Communications On The
// Circuit Switched Tree" (IPDPS/IPPS 2007).
//
// The CST is a complete binary tree whose leaves are processing elements
// and whose internal nodes are three-sided circuit switches. The library
// provides:
//
//   - the tree substrate and switch model (NewTree, the Tree and Comm
//     types),
//   - well-nested communication sets: parsing, validation, width, and a
//     family of workload generators,
//   - the paper's Configuration and Scheduling Algorithm under Power-Aware
//     Dynamic Reconfiguration: Run (sequential reference) and RunConcurrent
//     (one goroutine per tree node, channels as links),
//   - baselines for comparison (RunDepthID, RunGreedy) and three power
//     accounting modes,
//   - the segmentable-bus and SRGA-grid substrates built on top, and
//   - renderers and an experiment harness that regenerates every claim in
//     the paper (see EXPERIMENTS.md).
//
// Quick start:
//
//	set := cst.MustParse("((.)(.))")        // 8 PEs, 3 communications
//	tree, _ := cst.NewTree(set.N)
//	res, _ := cst.Run(tree, set)
//	fmt.Println(res.Rounds)                  // == width of the set
//	fmt.Println(res.Report.Summary())        // power ledger per Theorem 8
package cst

import (
	"context"
	"math/rand"

	"cst/internal/audit"
	"cst/internal/baseline"
	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/energy"
	"cst/internal/export"
	"cst/internal/fault"
	"cst/internal/general"
	"cst/internal/harness"
	"cst/internal/hybrid"
	"cst/internal/obs"
	"cst/internal/online"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/sched"
	"cst/internal/segbus"
	"cst/internal/selfroute"
	"cst/internal/serve"
	"cst/internal/sim"
	"cst/internal/srga"
	"cst/internal/timing"
	"cst/internal/topology"
	"cst/internal/trace"
	"cst/internal/wire"
	"cst/internal/xbar"
)

// Tree is the circuit switched tree substrate (heap-indexed complete binary
// tree; leaves are PEs, internal nodes are 3-sided switches).
type Tree = topology.Tree

// Node is a tree node handle.
type Node = topology.Node

// NewTree builds a CST with n leaves (n a power of two, >= 2).
func NewTree(n int) (*Tree, error) { return topology.New(n) }

// MustNewTree is NewTree but panics on error; intended for tests and
// examples with constant sizes. Library and CLI code paths use NewTree and
// propagate the error.
func MustNewTree(n int) *Tree { return topology.MustNew(n) }

// Comm is one communication: data flows from PE Src to PE Dst.
type Comm = comm.Comm

// Set is a communication set over N PEs.
type Set = comm.Set

// NewSet builds a set over n PEs.
func NewSet(n int, comms ...Comm) *Set { return comm.NewSet(n, comms...) }

// Parse builds a set from a parenthesis expression like "((.)(.))".
func Parse(expr string) (*Set, error) { return comm.Parse(expr) }

// MustParse is Parse but panics on error; intended for tests and examples
// with constant expressions. Library and CLI code paths use Parse and
// propagate the error.
func MustParse(expr string) *Set { return comm.MustParse(expr) }

// Decompose splits an arbitrary set into a right-oriented subset and the
// mirror image of its left-oriented subset, both schedulable by Run.
func Decompose(s *Set) (right, leftMirrored *Set) { return comm.Decompose(s) }

// Workload generators (all deterministic given the *rand.Rand).
var (
	// RandomWellNested draws a uniform well-nested set with m communications.
	RandomWellNested = comm.RandomWellNested
	// RandomWellNestedWidth draws a well-nested set of an exact link width.
	RandomWellNestedWidth = comm.RandomWellNestedWidth
	// NestedChain is the root-crossing width-w chain ((((…)))).
	NestedChain = comm.NestedChain
	// SplitChain is the chain whose sources split across two subtrees — the
	// adversarial workload for configuration churn.
	SplitChain = comm.SplitChain
	// CompactChain packs a chain into the leftmost 2w PEs.
	CompactChain = comm.CompactChain
	// DisjointPairs is the width-1 comb ()()().
	DisjointPairs = comm.DisjointPairs
	// SiblingForest is several side-by-side chains.
	SiblingForest = comm.SiblingForest
	// Staircase is an outer span over many disjoint inner pairs.
	Staircase = comm.Staircase
	// BitReversal is the FFT-style bit-reversal pairing — crossing-heavy,
	// not well nested; for the general scheduler.
	BitReversal = comm.BitReversal
	// CrossingPairs is the pairwise-crossing comb with alternating
	// orientations — no two communications nest; the adversarial workload
	// for the hybrid planner's residual path.
	CrossingPairs = comm.CrossingPairs
	// RandomOriented draws an arbitrary right-oriented (possibly crossing) set.
	RandomOriented = comm.RandomOriented
	// RandomTwoSided draws an arbitrary set with both orientations.
	RandomTwoSided = comm.RandomTwoSided
)

// Workload combinators (Set also has Translate/Within/Pad methods).
var (
	// Concat places one set's PE line to the right of another's.
	Concat = comm.Concat
	// Nest wraps a set in one enclosing communication (depth + 1).
	Nest = comm.Nest
)

// Schedule is a multi-round schedule with an independent verifier
// (Verify / VerifyOptimal).
type Schedule = sched.Schedule

// PowerMode selects how switch state is treated across rounds.
type PowerMode = power.Mode

// Power accounting modes.
const (
	// Stateful holds configurations across rounds (the PADR design point);
	// only genuine changes cost power.
	Stateful = power.Stateful
	// Stateless tears every switch down each round; every connection is
	// re-established and billed.
	Stateless = power.Stateless
)

// PowerReport is the per-run power ledger (units and alternations per
// switch).
type PowerReport = power.Report

// Result is the outcome of a PADR run.
type Result = padr.Result

// Option configures a PADR run.
type Option = padr.Option

// WithMode selects the power accounting mode for Run.
func WithMode(m PowerMode) Option { return padr.WithMode(m) }

// Observer carries optional per-round callbacks for Run.
type Observer = padr.Observer

// WithObserver attaches callbacks to Run.
func WithObserver(o Observer) Option { return padr.WithObserver(o) }

// Selection chooses when a switch starts its own matched pairs; see the
// padr package and experiment E12 for the tradeoff between the two rules.
type Selection = padr.Selection

// Selection rules.
const (
	// GreedySelection is the literal Fig. 5 pseudocode (default):
	// time-optimal on every input.
	GreedySelection = padr.Greedy
	// ConservativeSelection enforces the paper's satisfy-outer-first prose:
	// O(1) changes per switch on every input, possibly extra rounds.
	ConservativeSelection = padr.Conservative
)

// WithSelection picks the selection rule for Run.
func WithSelection(s Selection) Option { return padr.WithSelection(s) }

// Run schedules an oriented well-nested set with the paper's CSA algorithm
// (sequential reference engine). The returned schedule uses exactly
// width(set) rounds and every switch spends O(1) power units.
func Run(t *Tree, s *Set, opts ...Option) (*Result, error) {
	e, err := padr.New(t, s, opts...)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// Engine is a reusable PADR scheduling engine. Construct one with NewEngine,
// call Run, then Reset it onto the next set: the flat arenas, crossbars, and
// round scratch are all reused, so steady-state scheduling allocates only
// the returned Result. A Reset engine's output is bit-identical to a fresh
// engine's.
type Engine = padr.Engine

// NewEngine builds a reusable engine for a tree and an initial set.
func NewEngine(t *Tree, s *Set, opts ...Option) (*Engine, error) {
	return padr.New(t, s, opts...)
}

// RunBoth schedules an arbitrary (two-sided) communication set by
// decomposing it into its two orientations (paper §2.1) and running CSA on
// each. Both passes drive the same physical crossbars — the left-oriented
// half runs on the mirrored PE line and lands its connections on the
// reflected switches — so the second result's power report is the
// cumulative physical ledger for the whole set. Either result may be nil
// when that orientation is empty. The left result's schedule is in mirrored
// coordinates (PE i stands for physical PE N-1-i).
func RunBoth(t *Tree, s *Set, opts ...Option) (right, left *Result, err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	switches := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	r, lm := comm.Decompose(s)
	if r.Len() > 0 {
		right, err = Run(t, r, append(opts, padr.WithCrossbars(switches))...)
		if err != nil {
			return nil, nil, err
		}
	}
	if lm.Len() > 0 {
		left, err = Run(t, lm, append(opts, padr.WithReflectedCrossbars(switches))...)
		if err != nil {
			return right, nil, err
		}
	}
	return right, left, nil
}

// ConcurrentResult is the outcome of a goroutine-per-node run.
type ConcurrentResult = sim.Result

// ConcurrentOption configures RunConcurrent.
type ConcurrentOption = sim.Option

// RunConcurrent executes the same algorithm as Run but as a real
// message-passing system: one goroutine per switch and PE, one channel pair
// per tree link. Results are identical to Run by construction.
func RunConcurrent(t *Tree, s *Set, opts ...ConcurrentOption) (*ConcurrentResult, error) {
	return sim.Run(t, s, opts...)
}

// Fabric is a persistent concurrent CST: its goroutines and channels are
// built once and survive across runs, so repeated RunConcurrent-style
// executions skip the spawn/teardown cost. Close it when done.
type Fabric = sim.Fabric

// NewFabric spins up a persistent goroutine-per-node fabric.
func NewFabric(t *Tree, opts ...ConcurrentOption) *Fabric {
	return sim.NewFabric(t, opts...)
}

// BaselineOrder selects how the depth-ID baseline plays its rounds.
type BaselineOrder = baseline.Order

// Baseline round orders.
const (
	// OutermostFirst plays depth 0 upward (closest to PADR).
	OutermostFirst = baseline.OutermostFirst
	// InnermostFirst plays the deepest level first.
	InnermostFirst = baseline.InnermostFirst
	// Alternating interleaves shallow and deep levels (maximum churn).
	Alternating = baseline.Alternating
)

// BaselineResult is the outcome of a baseline run.
type BaselineResult = baseline.Result

// RunDepthID runs the ID-based prior-work reconstruction (Roy et al. [6]).
func RunDepthID(t *Tree, s *Set, order BaselineOrder, mode PowerMode) (*BaselineResult, error) {
	return baseline.DepthID(t, s, order, mode)
}

// RunGreedy runs the maximal-compatible-subset baseline; it accepts any
// right-oriented set, not only well-nested ones.
func RunGreedy(t *Tree, s *Set, mode PowerMode) (*BaselineResult, error) {
	return baseline.Greedy(t, s, mode)
}

// DataPlaneRecorder captures per-round switch configurations from a Run and
// replays tokens through them (Theorem 4 verification).
type DataPlaneRecorder = deliver.Recorder

// RoundConfig is one round's switch-configuration snapshot (as captured by
// DataPlaneRecorder or baseline results) — the input to the energy model.
type RoundConfig = deliver.RoundConfig

// RenderSet draws a set in the paper's Fig. 2 style.
func RenderSet(s *Set) string { return trace.RenderSet(s) }

// RenderGantt draws a schedule round by round over the PE line.
func RenderGantt(s *Schedule) string { return trace.RenderGantt(s) }

// RenderTree draws the tree with roles or live configurations (Fig. 1
// style).
var RenderTree = trace.RenderTree

// NewRunLogger builds a streaming round-by-round logger; attach its
// Observer() to Run.
var NewRunLogger = trace.NewLogger

// Bus is a segmentable bus (the motivating reconfigurable architecture).
type Bus = segbus.Bus

// NewBus builds a segmentable bus over n PEs.
func NewBus(n int) (*Bus, error) { return segbus.New(n) }

// BusTransfer is one segment-local transfer.
type BusTransfer = segbus.Transfer

// BusCycle is one bus cycle (at most one transfer per segment).
type BusCycle = segbus.Cycle

// RunBusProgram executes a multi-cycle bus program on a CST, holding
// crossbar state across cycles.
var RunBusProgram = segbus.RunProgram

// RandomBusProgram generates a random bus program for experiments.
var RandomBusProgram = segbus.RandomProgram

// Grid is an SRGA PE grid with one CST per row and per column.
type Grid = srga.Grid

// NewGrid builds an SRGA grid (rows, cols powers of two).
func NewGrid(rows, cols int) (*Grid, error) { return srga.New(rows, cols) }

// Comm2D is one grid communication.
type Comm2D = srga.Comm2D

// Grid workload generators.
var (
	// RandomPermutation draws a random full-permutation workload.
	RandomPermutation = srga.RandomPermutation
	// Transpose is the matrix-transpose workload on a square grid.
	Transpose = srga.Transpose
	// RowShift shifts every PE k columns within its row.
	RowShift = srga.RowShift
)

// EnergyModel prices a run beyond the paper's unit model: SetCost per
// established connection, HoldCost per connection·round held, IdleCost per
// switch·round.
type EnergyModel = energy.Model

// PaperEnergyModel is §2.3 verbatim: only establishment costs.
var PaperEnergyModel = energy.Paper

// EnergyBreakdown is a priced run.
type EnergyBreakdown = energy.Breakdown

// EvaluateEnergy prices per-round configuration snapshots under a model;
// it charges the minimal physical work realizing the trajectory.
var EvaluateEnergy = energy.Evaluate

// EnergyCrossover locates the HoldCost at which two trajectories' totals
// cross (the sensitivity of the paper's holding-is-free assumption).
var EnergyCrossover = energy.Crossover

// ConflictGraph is the share-a-directed-link conflict structure of an
// arbitrary right-oriented set.
type ConflictGraph = general.ConflictGraph

// Conflicts builds the conflict graph of a right-oriented (possibly
// crossing) set.
var Conflicts = general.Conflicts

// ScheduleFirstFit schedules an arbitrary right-oriented set greedily in
// source order (exact on well-nested sets).
var ScheduleFirstFit = general.FirstFit

// ScheduleExact finds a minimum-round schedule for an arbitrary
// right-oriented set by branch-and-bound, within a search-node budget; on
// budget exhaustion it returns the best valid schedule plus ErrBudget.
var ScheduleExact = general.Exact

// ErrBudget marks a possibly suboptimal ScheduleExact result.
var ErrBudget = general.ErrBudget

// ExactIncumbent adapts a ScheduleExact result so budget exhaustion keeps
// the valid incumbent schedule instead of surfacing as an error:
//
//	sch, exhausted, err := cst.ExactIncumbent(cst.ScheduleExact(tree, set, budget))
var ExactIncumbent = general.Incumbent

// Hybrid scheduling. ScheduleHybrid is the front end for arbitrary valid
// communication sets — crossing pairs, left-oriented spans, anything
// Validate accepts: it decomposes by orientation, peels maximal
// well-nested batches through the paper's scheduler, colors the crossing
// residual, and returns the composite plan (never worse than pure
// FirstFit coloring) with its replayed power bill.

// HybridPlan is a composite schedule plus its decomposition shape, round
// bound and power report.
type HybridPlan = hybrid.Plan

// HybridOption customizes ScheduleHybrid.
type HybridOption = hybrid.Option

// ScheduleHybrid plans an arbitrary valid set on t.
func ScheduleHybrid(t *Tree, s *Set, opts ...HybridOption) (*HybridPlan, error) {
	return hybrid.Schedule(t, s, opts...)
}

// WithHybridMode sets the power accounting mode for the plan's replay.
func WithHybridMode(m PowerMode) HybridOption { return hybrid.WithMode(m) }

// WithHybridExactBudget bounds the residual coloring's exact search.
func WithHybridExactBudget(n int) HybridOption { return hybrid.WithExactBudget(n) }

// WithHybridMaxBatches bounds the well-nested batches peeled per
// orientation.
func WithHybridMaxBatches(n int) HybridOption { return hybrid.WithMaxBatches(n) }

// WithHybridTracer streams the plan's replay trace (audit-compatible).
func WithHybridTracer(tr *Tracer) HybridOption { return hybrid.WithTracer(tr) }

// Hybrid strategy names reported in HybridPlan.Strategy.
const (
	HybridStrategyPeel     = hybrid.StrategyPeel
	HybridStrategyColoring = hybrid.StrategyColoring
)

// MinChangeResult is the outcome of the exact joint rounds/changes
// optimization.
type MinChangeResult = general.MinChangeResult

// MinChangeSchedule searches all width-round schedules for the fewest
// configuration changes (exponential; small instances only) — the tool
// behind experiment E15.
var MinChangeSchedule = general.MinChangeSchedule

// Serialization of runs for external tooling (plotting, CI dashboards).
var (
	// WriteScheduleJSON writes a schedule as indented JSON.
	WriteScheduleJSON = export.WriteScheduleJSON
	// UnmarshalSchedule reverses WriteScheduleJSON.
	UnmarshalSchedule = export.UnmarshalSchedule
	// WriteReportJSON writes a power report as indented JSON.
	WriteReportJSON = export.WriteReportJSON
	// WriteResultJSON writes a full PADR run as indented JSON.
	WriteResultJSON = export.WriteResultJSON
	// ScheduleCSV writes one line per communication: round,src,dst.
	ScheduleCSV = export.ScheduleCSV
	// ReportCSV writes one line per non-idle switch: node,units,alternations.
	ReportCSV = export.ReportCSV
)

// SelfRoute configures one circuit by Sidhu et al.'s header-driven
// self-routing — the historical predecessor the paper's algorithm
// supersedes; handles either orientation.
var SelfRoute = selfroute.Route

// SelfRouteAll self-routes an entire pairwise-disjoint set in one round.
var SelfRouteAll = selfroute.RouteAll

// DisjointSet reports whether no two communications share any tree link,
// even in opposite directions — the class self-routing handles.
var DisjointSet = selfroute.Disjoint

// OnlineSimulator runs the scheduler against dynamically arriving traffic.
type OnlineSimulator = online.Simulator

// OnlineOption configures an OnlineSimulator.
type OnlineOption = online.Option

// NewOnline builds an online simulator over a CST with n leaves.
func NewOnline(n int, opts ...OnlineOption) (*OnlineSimulator, error) {
	return online.New(n, opts...)
}

// OnlineStats summarizes an online run (latency, batches, power).
type OnlineStats = online.Stats

// TimingParams prices schedules in clock cycles (control wave per level,
// reconfiguration stall, transfer time).
type TimingParams = timing.Params

// DefaultTiming is a conventional operating point (1 cycle/level, 4-cycle
// reconfiguration stall, 1 transfer cycle).
var DefaultTiming = timing.Default

// TimingBreakdown is a cycle-priced run.
type TimingBreakdown = timing.Breakdown

// Makespan prices per-round configuration snapshots in clock cycles.
var Makespan = timing.Makespan

// TimingSpeedup compares two priced runs (>1 means the first is faster).
var TimingSpeedup = timing.Speedup

// ExperimentConfig tunes the reproduction experiments.
type ExperimentConfig = harness.Config

// Experiment is one registered paper-reproduction experiment.
type Experiment = harness.Experiment

// Experiments returns the registered experiments (E1..E9).
func Experiments() []Experiment { return harness.All() }

// ExperimentByID looks up one experiment.
var ExperimentByID = harness.ByID

// RunExperiments executes every registered experiment, writing markdown.
var RunExperiments = harness.RunAll

// RunExperiment executes one experiment with its standard header.
var RunExperiment = harness.RunOne

// Metrics is the dependency-free metrics registry (counters, gauges,
// fixed-bucket histograms; Prometheus text exposition). Thread one through
// engine options to watch runs live; see OBSERVABILITY.md.
type Metrics = obs.Registry

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// MetricsSnapshot is a point-in-time copy of a registry; Sub computes
// per-experiment deltas against an earlier snapshot.
type MetricsSnapshot = obs.Snapshot

// Tracer serializes structured engine events as JSONL (bounded ring plus
// optional stream); see OBSERVABILITY.md for the event schema.
type Tracer = obs.Tracer

// TraceEvent is one structured trace record.
type TraceEvent = obs.Event

// NewTracer builds a tracer; the writer may be nil (ring-only) and
// ringSize <= 0 selects the default ring capacity.
var NewTracer = obs.NewTracer

// Span tracing (see OBSERVABILITY.md §Spans): request-scoped timing trees
// recorded through a Tracer. SpanContext propagates across protocol hops
// (the X-CST-Trace header, wire v3 trace blocks); the FlightRecorder pins
// the slowest and errored span trees for /trace/flight.
type (
	SpanContext    = obs.SpanContext
	SpanRecord     = obs.SpanRecord
	FlightRecorder = obs.FlightRecorder
)

// NewFlightRecorder builds a flight recorder pinning the k slowest and the
// k most recent errored traces (k <= 0 selects DefaultFlightK). Attach with
// Tracer.SetFlight.
var NewFlightRecorder = obs.NewFlightRecorder

// DefaultFlightK is the flight recorder's default pin count.
const DefaultFlightK = obs.DefaultFlightK

// MetricsServer is a live observability HTTP endpoint (/metrics, /healthz,
// /trace, /debug/pprof/).
type MetricsServer = obs.Server

// ServeMetrics binds addr and serves the observability endpoint in the
// background, returning once the listener is bound.
var ServeMetrics = obs.Serve

// MetricsHandler builds the observability http.Handler without binding a
// listener (for embedding in an existing server).
var MetricsHandler = obs.Handler

// WithMetrics publishes Run's cst_padr_* series to the registry.
func WithMetrics(r *Metrics) Option { return padr.WithRegistry(r) }

// WithTrace streams Run's structured events to the tracer.
func WithTrace(t *Tracer) Option { return padr.WithTracer(t) }

// WithConcurrentMetrics publishes RunConcurrent's cst_sim_* series.
func WithConcurrentMetrics(r *Metrics) ConcurrentOption { return sim.WithRegistry(r) }

// WithConcurrentTrace streams RunConcurrent's structured events.
func WithConcurrentTrace(t *Tracer) ConcurrentOption { return sim.WithTracer(t) }

// WithOnlineMetrics publishes the online dispatcher's cst_online_* series
// (and threads the registry into its inner engines).
func WithOnlineMetrics(r *Metrics) OnlineOption { return online.WithRegistry(r) }

// WithOnlineTrace streams the online dispatcher's batch events.
func WithOnlineTrace(t *Tracer) OnlineOption { return online.WithTracer(t) }

// WithOnlineSharding lets the online dispatcher split batches into
// independent subtree shards and schedule them concurrently; results and
// power ledgers are identical to the unsharded dispatcher.
func WithOnlineSharding() OnlineOption { return online.WithSharding() }

// MetricsSummary renders a per-engine metrics snapshot (latency quantiles,
// messages per round, changes per switch) as a markdown table.
var MetricsSummary = harness.MetricsSummary

// Power auditing. An Auditor consumes the tracer's event stream — live via
// Tracer.SetSink(auditor.Observe), or replayed from saved JSONL — and
// maintains a per-switch × per-round power ledger, runs the paper's
// theorems as monitors (round counts, per-switch spend, port alternations,
// word budgets), and attributes per-round latency along the critical path.
// See OBSERVABILITY.md and cmd/cstaudit.
type Auditor = audit.Auditor

// AuditConfig parameterizes an Auditor (registry, monitor limits,
// retention bounds); the zero value is usable.
type AuditConfig = audit.Config

// AuditLimits bounds the theorem monitors; the zero value selects adaptive
// defaults scaled to the audited tree size.
type AuditLimits = audit.Limits

// AuditViolation is one detected breach of a paper invariant; it
// implements error.
type AuditViolation = audit.Violation

// AuditReport is an immutable snapshot of an auditor's findings with
// markdown/HTML renderers.
type AuditReport = audit.Report

// AuditRun is the audited record of one engine run: the replayed ledger,
// critical paths, and any violations.
type AuditRun = audit.RunAudit

// NewAuditor builds an empty auditor.
func NewAuditor(cfg AuditConfig) *Auditor { return audit.New(cfg) }

// ReplayAudit feeds a saved trace through a fresh auditor and returns it
// flushed: every run in the trace has a verdict.
var ReplayAudit = audit.Replay

// ReadTraceJSONL decodes a JSONL trace stream (Tracer.WriteJSONL or the
// /trace endpoint) into events.
var ReadTraceJSONL = audit.ReadJSONL

// WritePerfetto renders a trace as Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing: one process per engine, one track per tree
// level.
var WritePerfetto = audit.WritePerfetto

// Fault injection and hardening. A FaultInjector carries a deterministic
// fault plan (drop/corrupt/delay a control word, freeze a switch, fail a
// link for a window of rounds) that any of the three engines accepts; the
// hardened engines turn every induced failure into a typed *FaultError
// carrying the engine, round, and implicated node, matchable against the
// Err* sentinels with errors.Is. See DESIGN.md §9 for the fault model.

// FaultInjector is a deterministic, run-scoped fault plan shared by all
// engines. A nil injector is inert.
type FaultInjector = fault.Injector

// Fault is one entry in an injection plan.
type Fault = fault.Fault

// FaultKind selects a fault class.
type FaultKind = fault.Kind

// Injectable fault classes.
const (
	// FaultDropWord drops one control word in flight.
	FaultDropWord = fault.DropWord
	// FaultCorruptWord deterministically mutates one control word.
	FaultCorruptWord = fault.CorruptWord
	// FaultDelayWord stalls a word's delivery (concurrent fabric only).
	FaultDelayWord = fault.DelayWord
	// FaultFreezeSwitch makes a switch swallow Phase 2 words for a window.
	FaultFreezeSwitch = fault.FreezeSwitch
	// FaultFailLink drops every word on a link for a window of rounds.
	FaultFailLink = fault.FailLink
)

// FaultPhase1 is the Fault.Round value addressing the Phase 1 convergecast.
const FaultPhase1 = fault.Phase1

// FaultError is the typed failure a hardened engine returns when a fault
// kills a run; errors.As extracts it, errors.Is matches its sentinel Kind.
type FaultError = fault.Error

// StallReport is the per-node diagnosis attached to a watchdog deadline
// abort: the silent PEs and the maximal dark subtrees covering them.
type StallReport = fault.Stall

// Fault taxonomy sentinels (match with errors.Is).
var (
	// ErrCorruptWord marks a run killed by an invalid control word.
	ErrCorruptWord = fault.ErrCorruptWord
	// ErrWordLost marks a control word dropped in flight.
	ErrWordLost = fault.ErrWordLost
	// ErrSwitchDown marks a switch that stopped serving control words.
	ErrSwitchDown = fault.ErrSwitchDown
	// ErrLinkDown marks a link failed for a window of rounds.
	ErrLinkDown = fault.ErrLinkDown
	// ErrDeadline marks a run aborted by the watchdog or context deadline.
	ErrDeadline = fault.ErrDeadline
)

// FaultOption configures a FaultInjector.
type FaultOption = fault.Option

// NewFaultInjector builds an injector over a fault plan (the plan is
// copied).
func NewFaultInjector(faults []Fault, opts ...FaultOption) *FaultInjector {
	return fault.New(faults, opts...)
}

// WithFaultMetrics publishes the injector's cst_fault_* series.
func WithFaultMetrics(r *Metrics) FaultOption { return fault.WithRegistry(r) }

// RandomFaults draws a reproducible fault plan for chaos testing: count
// faults over a run of about the given round count, with DelayWord faults
// only when maxDelay > 0.
var RandomFaults = fault.Random

// WithFaults arms Run/NewEngine with an injector; failures come back as
// typed *FaultError values.
func WithFaults(in *FaultInjector) Option { return padr.WithFaults(in) }

// WithConcurrentFaults arms RunConcurrent/NewFabric with an injector and —
// unless overridden by WithWatchdog — a default per-wave watchdog that
// aborts a stalled run with ErrDeadline and a StallReport.
func WithConcurrentFaults(in *FaultInjector) ConcurrentOption {
	return sim.WithFaults(in)
}

// WithWatchdog sets the concurrent fabric's per-wave stall budget; zero
// keeps the default (armed only under injection), negative disables.
var WithWatchdog = sim.WithWatchdog

// WithOnlineFaults arms the online dispatcher's inner engines with an
// injector: a failed batch is retried on a fresh engine over restored
// crossbars and quarantined (with a typed error) when retries are spent.
func WithOnlineFaults(in *FaultInjector) OnlineOption { return online.WithFaults(in) }

// RunConcurrentContext is RunConcurrent under a context: cancellation or
// deadline expiry aborts the run with ErrDeadline and tears the circuits
// down cleanly.
func RunConcurrentContext(ctx context.Context, t *Tree, s *Set, opts ...ConcurrentOption) (*ConcurrentResult, error) {
	return sim.RunContext(ctx, t, s, opts...)
}

// Serving. A ServePool turns the online dispatcher into a long-running
// scheduling service: a worker per CST shard (each owning one simulator),
// bounded admission queues with 429-style backpressure, deadline- and
// size-triggered batch flushing, per-request deadlines reported through the
// fault taxonomy, and a graceful drain that answers every admitted request.
// See SERVING.md and cmd/cstserved.

// ServePool is the scheduling service: admission across a pool of shard
// workers, each goroutine-confined to its own online simulator.
type ServePool = serve.Pool

// ServeConfig parameterizes a ServePool (fabric size, shard count, queue
// depth, batch shape, deadlines, observability and fault plan); the zero
// value selects workable defaults.
type ServeConfig = serve.Config

// ServeResult is the terminal answer for one scheduling request, carrying
// the HTTP status mapping the service uses.
type ServeResult = serve.Result

// ServeStats is a point-in-time snapshot of a pool's admission state.
type ServeStats = serve.Stats

// ServeScheduleRequest is the POST /schedule payload.
type ServeScheduleRequest = serve.ScheduleRequest

// ServeScheduleSetRequest is the POST /schedule-set payload: a whole
// (possibly non-well-nested) communication set for the hybrid planner.
type ServeScheduleSetRequest = serve.ScheduleSetRequest

// ServePlanner answers whole-set scheduling requests through the hybrid
// pipeline; share one between the HTTP handler and the wire server.
type ServePlanner = serve.Planner

// ServePlannerConfig parameterizes a ServePlanner (exact budget, peel
// batches, set size cap, observability).
type ServePlannerConfig = serve.PlannerConfig

// ServeSetResult is the outcome of planning one set, HTTP-status mapped.
type ServeSetResult = serve.SetResult

// ServeSetComm is one communication inside a set request or planned round.
type ServeSetComm = serve.SetComm

// ServeScheduleDeltaRequest is the POST /schedule-delta payload: a
// session-scoped mutation (removes then adds) of a long-lived set served
// by the incremental scheduler.
type ServeScheduleDeltaRequest = serve.ScheduleDeltaRequest

// ServeDeltaResult is the terminal answer for one delta request: the
// re-scheduled session's rounds/width/size, whether a from-scratch
// fallback served it, and the HTTP status mapping.
type ServeDeltaResult = serve.DeltaResult

// NewServePool builds a scheduling pool; call Start to launch its workers
// and Drain to shut it down without losing admitted requests.
func NewServePool(cfg ServeConfig) (*ServePool, error) { return serve.New(cfg) }

// NewServePlanner builds a hybrid set planner for the serving surface.
var NewServePlanner = serve.NewPlanner

// NewServeHandler mounts the scheduling API (POST /schedule, POST
// /schedule-set, GET /statusz) next to the observability surface
// (/metrics, /healthz, /trace, /debug/pprof) on one http.Handler. A nil
// planner answers /schedule-set with 501.
var NewServeHandler = serve.Handler

// Serving error sentinels.
var (
	// ErrServeDraining rejects admissions after a drain has begun (503).
	ErrServeDraining = serve.ErrDraining
	// ErrServeQueueFull is the backpressure signal: every shard's
	// admission queue is at capacity (429).
	ErrServeQueueFull = serve.ErrQueueFull
)

// Wire protocol. The binary framing cstserved speaks on its -wire-addr
// TCP listener: persistent pipelined connections, varint-packed frames,
// and an allocation-free serve hot path. See SERVING.md and internal/wire
// for the frame layout.

// WireServer accepts wire-protocol connections and feeds their requests
// into a ServePool. Shut it down after the pool has drained.
type WireServer = serve.WireServer

// WireConfig parameterizes a WireServer (pipeline depth, observability).
type WireConfig = serve.WireConfig

// NewWireServer builds a wire-protocol front end over a pool; run it with
// Serve or ListenAndServe.
var NewWireServer = serve.NewWireServer

// WireClient is one persistent client connection with pipelined sends,
// for load generators and tests. Not safe for concurrent use.
type WireClient = wire.ClientConn

// WireRequest and WireResponse are the wire protocol's request and
// terminal-answer payloads; responses correlate to requests by ID.
type (
	WireRequest  = wire.Request
	WireResponse = wire.Response
)

// WireSetRequest and WireSetResponse are the v2 whole-set frames: a
// communication set in, the hybrid plan's shape and power bill back.
// Sessions that negotiated v1 cannot carry them.
type (
	WireSetRequest  = wire.SetRequest
	WireSetResponse = wire.SetResponse
)

// WireDial connects to a wire listener, performs the version handshake
// and returns a ready client connection.
var WireDial = wire.Dial

// NewRand is a convenience seeded source for the generator APIs.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

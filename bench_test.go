// Repository-level benchmarks: one per reproduction experiment (E1–E9, see
// DESIGN.md §3 and EXPERIMENTS.md) plus micro-benchmarks of the engines.
// Experiment benches run the harness in quick mode with a fixed seed so
// `go test -bench=.` regenerates every table's shape deterministically.
package cst_test

import (
	"context"
	"io"
	"net"
	"strconv"
	"testing"
	"time"

	"cst"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := cst.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := cst.ExperimentConfig{Seed: 42, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := cst.RunExperiment(io.Discard, e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1Rounds regenerates E1 (Theorem 5): rounds == width.
func BenchmarkE1Rounds(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2ConfigChanges regenerates E2 (Theorem 8): O(1) vs Θ(w) changes.
func BenchmarkE2ConfigChanges(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3PowerUnits regenerates E3 (§2.3/§5): power units by mode.
func BenchmarkE3PowerUnits(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Words regenerates E4 (Theorem 5): constant words/storage.
func BenchmarkE4Words(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Verify regenerates E5 (Theorem 4): correctness mass trial.
func BenchmarkE5Verify(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Segbus regenerates E6: segmentable-bus programs.
func BenchmarkE6Segbus(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7SRGA regenerates E7: SRGA grid routing.
func BenchmarkE7SRGA(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Concurrent regenerates E8: goroutine-per-node execution.
func BenchmarkE8Concurrent(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Ablation regenerates E9: baseline round-order ablation.
func BenchmarkE9Ablation(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Energy regenerates E10: energy-model sensitivity/crossover.
func BenchmarkE10Energy(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11General regenerates E11: general (crossing) oriented sets.
func BenchmarkE11General(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Selection regenerates E12: greedy vs conservative selection.
func BenchmarkE12Selection(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Timing regenerates E13: reconfiguration latency.
func BenchmarkE13Timing(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Adversary regenerates E14: adversarial worst-case search.
func BenchmarkE14Adversary(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15JointOptimum regenerates E15: exact min-change @ width rounds.
func BenchmarkE15JointOptimum(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16Online regenerates E16: online traffic sweep.
func BenchmarkE16Online(b *testing.B) { benchExperiment(b, "E16") }

// --- engine micro-benchmarks -----------------------------------------------

func benchWorkload(b *testing.B, n, w int) *cst.Set {
	b.Helper()
	s, err := cst.NestedChain(n, w)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkPADRSequential measures the sequential engine end to end
// (Phase 1 + w rounds) on a width-16 chain over 1024 PEs.
func BenchmarkPADRSequential(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cst.Run(tree, s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds != 16 {
			b.Fatal("wrong rounds")
		}
	}
}

// BenchmarkPADREngineReused measures the steady-state cost of the reusable
// engine: one Engine built outside the loop, Reset+Run per iteration. The
// gap to BenchmarkPADREngineFresh is the price of engine construction.
func BenchmarkPADREngineReused(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	e, err := cst.NewEngine(tree, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Reset(s); err != nil {
			b.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds != 16 {
			b.Fatal("wrong rounds")
		}
	}
}

// BenchmarkEngineConstructFresh measures bare engine construction: the
// arena, crossbar, and scratch allocations a fresh New pays per set.
func BenchmarkEngineConstructFresh(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cst.NewEngine(tree, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineConstructReset measures re-arming a pooled engine onto a
// set — the allocation-free path that replaces construction under reuse.
func BenchmarkEngineConstructReset(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	e, err := cst.NewEngine(tree, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Reset(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPADREngineFresh builds a new engine every iteration — the
// construction-heavy pattern BenchmarkPADREngineReused avoids.
func BenchmarkPADREngineFresh(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := cst.NewEngine(tree, s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConcurrentRun is the shared goroutine-per-node loop behind the three
// concurrent-engine benchmarks; opts selects the instrumentation.
func benchConcurrentRun(b *testing.B, opts ...cst.ConcurrentOption) {
	b.Helper()
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cst.RunConcurrent(tree, s, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds != 16 {
			b.Fatal("wrong rounds")
		}
	}
}

// BenchmarkPADRConcurrent measures the goroutine-per-node engine on the
// same workload (2047 goroutines, channel waves), spawning a fresh fabric
// per run and with observability fully disabled — the baseline for
// BenchmarkSimRunInstrumented and BenchmarkFabricReused.
func BenchmarkPADRConcurrent(b *testing.B) { benchConcurrentRun(b) }

// BenchmarkSimRunInstrumented is the same run publishing every metric
// series to a live registry; compare against BenchmarkPADRConcurrent to
// price the instrumentation.
func BenchmarkSimRunInstrumented(b *testing.B) {
	reg := cst.NewMetrics()
	benchConcurrentRun(b, cst.WithConcurrentMetrics(reg))
}

// BenchmarkFabricReused runs the same concurrent workload over a persistent
// fabric whose 2047 goroutines survive across runs; the gap to
// BenchmarkPADRConcurrent is the per-run spawn/teardown cost.
func BenchmarkFabricReused(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	f := cst.NewFabric(tree)
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds != 16 {
			b.Fatal("wrong rounds")
		}
	}
}

// --- observability & audit overhead ----------------------------------------
//
// The series BenchmarkPADRSequential (noop) → BenchmarkPADRSequentialTraced
// (ring tracer) → BenchmarkPADRSequentialAudited (tracer + live auditor)
// prices each observability layer on the identical workload; BENCH_obs.json
// in CI is generated from exactly these names.

// BenchmarkPADRSequentialTraced is BenchmarkPADRSequential with a ring
// tracer attached (no writer, no sink): the cost of event capture alone.
func BenchmarkPADRSequentialTraced(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	tracer := cst.NewTracer(nil, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cst.Run(tree, s, cst.WithTrace(tracer)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPADRSequentialAudited runs with the full audit pipeline live:
// registry, tracer, and the auditor tapping every event through the sink —
// ledger replay, monitors, and critical-path tracking included. The gap to
// BenchmarkPADRSequential is the total price of an audit-enabled run.
func BenchmarkPADRSequentialAudited(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	reg := cst.NewMetrics()
	tracer := cst.NewTracer(nil, 0)
	aud := cst.NewAuditor(cst.AuditConfig{Registry: reg})
	tracer.SetSink(aud.Observe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cst.Run(tree, s, cst.WithTrace(tracer), cst.WithMetrics(reg)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTraceEvents captures one sequential run's full event stream.
func benchTraceEvents(b *testing.B) []cst.TraceEvent {
	b.Helper()
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	tracer := cst.NewTracer(nil, 0)
	var events []cst.TraceEvent
	tracer.SetSink(func(e cst.TraceEvent) { events = append(events, e) })
	if _, err := cst.Run(tree, s, cst.WithTrace(tracer)); err != nil {
		b.Fatal(err)
	}
	return events
}

// BenchmarkAuditReplay measures offline replay throughput: a captured run
// fed through a fresh auditor (ledger + monitors + report aggregation).
func BenchmarkAuditReplay(b *testing.B) {
	events := benchTraceEvents(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := cst.ReplayAudit(events, cst.AuditConfig{}).Report(); !rep.Clean() {
			b.Fatal("replay not clean")
		}
	}
}

// BenchmarkTraceExportJSONL measures trace-export throughput: streaming the
// retained ring as JSONL, the payload of one /trace?since=0 request.
func BenchmarkTraceExportJSONL(b *testing.B) {
	events := benchTraceEvents(b)
	tracer := cst.NewTracer(nil, len(events))
	for _, e := range events {
		tracer.Emit(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracer.WriteJSONLSince(io.Discard, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfettoExport measures Chrome-trace rendering of a full run.
func BenchmarkPerfettoExport(b *testing.B) {
	events := benchTraceEvents(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cst.WritePerfetto(io.Discard, events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeWireSampled prices span tracing on the client-observed wire
// round trip. rate0 attaches a tracer with head sampling off — the
// production default, whose cost must be indistinguishable from no tracer
// (the unsampled path takes one atomic load and no allocation). rate1pct is
// the recommended operating point (ledger target: ≤10% over rate0); rate1
// traces every request — root span, queue and dispatch spans,
// flight-recorder finalization, trace id on the response frame.
func BenchmarkServeWireSampled(b *testing.B) {
	for _, bc := range []struct {
		name string
		rate float64
	}{{"rate0", 0}, {"rate1pct", 0.01}, {"rate1", 1}} {
		b.Run(bc.name, func(b *testing.B) {
			tr := cst.NewTracer(nil, 4096)
			tr.SetSampleRate(bc.rate)
			tr.SetFlight(cst.NewFlightRecorder(8))
			pool, err := cst.NewServePool(cst.ServeConfig{
				PEs: 64, Shards: 1, QueueDepth: 256, Tracer: tr})
			if err != nil {
				b.Fatal(err)
			}
			pool.Start()
			ws := cst.NewWireServer(pool, cst.WireConfig{MaxPipeline: 64, Tracer: tr})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go ws.Serve(ln)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_ = pool.Drain(ctx)
				_ = ws.Shutdown(ctx)
			}()
			c, err := cst.WireDial(ln.Addr().String(), 5*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			var resp cst.WireResponse
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(&cst.WireRequest{ID: uint64(i), Src: 4, Dst: 29}); err != nil {
					b.Fatal(err)
				}
				if err := c.Flush(); err != nil {
					b.Fatal(err)
				}
				if err := c.Recv(&resp); err != nil {
					b.Fatal(err)
				}
				if resp.Status != 200 {
					b.Fatalf("status %d (%s)", resp.Status, resp.Err)
				}
			}
		})
	}
}

// BenchmarkBaselineDepthID measures the prior-work reconstruction on the
// same workload.
func BenchmarkBaselineDepthID(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cst.RunDepthID(tree, s, cst.OutermostFirst, cst.Stateful); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineGreedy measures the greedy scheduler.
func BenchmarkBaselineGreedy(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s := benchWorkload(b, 1024, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cst.RunGreedy(tree, s, cst.Stateful); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfRoute measures the historical self-routing baseline on a
// disjoint set (one circuit per 8-PE block over 1024 PEs).
func BenchmarkSelfRoute(b *testing.B) {
	tree := cst.MustNewTree(1024)
	set := cst.NewSet(1024)
	for block := 0; block < 128; block++ {
		set.Comms = append(set.Comms, cst.Comm{Src: block * 8, Dst: block*8 + 5})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cst.SelfRouteAll(tree, set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineThroughput measures the online dispatcher under steady
// random load on a 256-PE fabric.
func BenchmarkOnlineThroughput(b *testing.B) { benchOnline(b) }

// BenchmarkOnlineSharded is the same load with subtree sharding enabled:
// independent sub-batches schedule concurrently over disjoint crossbar
// views.
func BenchmarkOnlineSharded(b *testing.B) { benchOnline(b, cst.WithOnlineSharding()) }

func benchOnline(b *testing.B, opts ...cst.OnlineOption) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := cst.NewOnline(256, opts...)
		if err != nil {
			b.Fatal(err)
		}
		rng := cst.NewRand(int64(i))
		for step := 0; step < 50; step++ {
			sim.SubmitRandom(rng, 4)
			if sim.QueueLen() >= 8 {
				if _, err := sim.Dispatch(); err != nil {
					b.Fatal(err)
				}
			} else {
				sim.Tick()
			}
		}
		if err := sim.Drain(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactColoring measures the branch-and-bound scheduler on random
// crossing sets.
func BenchmarkExactColoring(b *testing.B) {
	tree := cst.MustNewTree(64)
	set, err := cst.RandomOriented(cst.NewRand(3), 64, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cst.ExactIncumbent(cst.ScheduleExact(tree, set, 500000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerator measures the uniform well-nested generator.
func BenchmarkGenerator(b *testing.B) {
	rng := cst.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cst.RandomWellNested(rng, 1024, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWidth measures the link-width computation (edge congestion).
func BenchmarkWidth(b *testing.B) {
	tree := cst.MustNewTree(1024)
	s, err := cst.RandomWellNested(cst.NewRand(2), 1024, 400)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Width(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleN sweeps the PE count at fixed width, the scaling series
// behind E4/E8.
func BenchmarkScaleN(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		n := n
		b.Run(benchName(n), func(b *testing.B) {
			tree := cst.MustNewTree(n)
			s := benchWorkload(b, n, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cst.Run(tree, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleW sweeps the width at fixed N, the series behind E2/E3.
func BenchmarkScaleW(b *testing.B) {
	for _, w := range []int{4, 16, 64, 256} {
		w := w
		b.Run(benchName(w), func(b *testing.B) {
			tree := cst.MustNewTree(1024)
			s := benchWorkload(b, 1024, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cst.Run(tree, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(v int) string { return strconv.Itoa(v) }

module cst

go 1.22

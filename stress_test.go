package cst_test

import (
	"testing"

	"cst"
)

// Large-scale end-to-end stress: an 8192-PE tree (8191 switches), a deep
// random well-nested set, both engines, full verification. Skipped under
// -short.
func TestStressLargeTree(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const n = 8192
	tree := cst.MustNewTree(n)
	set, err := cst.RandomWellNested(cst.NewRand(99), n, n/3)
	if err != nil {
		t.Fatal(err)
	}

	res, err := cst.Run(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.VerifyOptimal(tree); err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxUnits() > 12 {
		t.Fatalf("max units = %d at N=%d", res.Report.MaxUnits(), n)
	}
	if res.UpWords != 2*n-2 {
		t.Fatalf("phase-1 words = %d", res.UpWords)
	}

	conc, err := cst.RunConcurrent(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Goroutines != 2*n-1 {
		t.Fatalf("goroutines = %d", conc.Goroutines)
	}
	if conc.Rounds != res.Rounds ||
		conc.Report.TotalUnits() != res.Report.TotalUnits() {
		t.Fatalf("engines disagree at scale: %d/%d rounds, %d/%d units",
			conc.Rounds, res.Rounds, conc.Report.TotalUnits(), res.Report.TotalUnits())
	}
	t.Logf("N=%d width=%d rounds=%d maxUnits=%d goroutines=%d",
		n, res.Width, res.Rounds, res.Report.MaxUnits(), conc.Goroutines)
}

// Stress the chain at large width: Theorems 5 and 8 at w=2048.
func TestStressWideChain(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const n, w = 8192, 2048
	tree := cst.MustNewTree(n)
	set, err := cst.NestedChain(n, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cst.Run(tree, set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != w {
		t.Fatalf("rounds = %d, want %d", res.Rounds, w)
	}
	if res.Report.MaxUnits() > 2 {
		t.Fatalf("chain max units = %d, want <= 2 (independent of w)", res.Report.MaxUnits())
	}
}

package cst_test

import (
	"testing"

	"cst"
)

// Differential testing across every scheduler in the library: on the same
// random well-nested sets, all of them must produce verifier-approved
// complete schedules, the width-optimal ones must agree on the round count,
// and the power ledgers must respect the paper's ordering (PADR at the
// bottom, stateless rebuilds at the top).
func TestDifferentialSchedulers(t *testing.T) {
	rng := cst.NewRand(321)
	for trial := 0; trial < 40; trial++ {
		n := 1 << (3 + rng.Intn(4)) // 8..64
		tree := cst.MustNewTree(n)
		set, err := cst.RandomWellNested(rng, n, rng.Intn(n/2+1))
		if err != nil {
			t.Fatal(err)
		}
		width, err := set.Width(tree)
		if err != nil {
			t.Fatal(err)
		}

		// 1. PADR sequential (greedy selection).
		padrRes, err := cst.Run(tree, set)
		if err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if err := padrRes.Schedule.VerifyOptimal(tree); err != nil {
			t.Fatalf("set %s: %v", set, err)
		}

		// 2. PADR concurrent.
		concRes, err := cst.RunConcurrent(tree, set)
		if err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if concRes.Rounds != padrRes.Rounds {
			t.Fatalf("set %s: concurrent %d rounds vs %d", set, concRes.Rounds, padrRes.Rounds)
		}

		// 3. PADR conservative: valid, possibly more rounds, never fewer.
		consRes, err := cst.Run(tree, set, cst.WithSelection(cst.ConservativeSelection))
		if err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if err := consRes.Schedule.Verify(tree); err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if consRes.Rounds < width {
			t.Fatalf("set %s: conservative %d rounds below width %d", set, consRes.Rounds, width)
		}

		// 4. Depth-ID baseline: valid; rounds = nesting depth >= width.
		depthRes, err := cst.RunDepthID(tree, set, cst.OutermostFirst, cst.Stateful)
		if err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if err := depthRes.Schedule.Verify(tree); err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if depthRes.Rounds < width {
			t.Fatalf("set %s: depth-id %d rounds below width %d", set, depthRes.Rounds, width)
		}

		// 5. Greedy compatible-set baseline.
		greedyRes, err := cst.RunGreedy(tree, set, cst.Stateful)
		if err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if err := greedyRes.Schedule.Verify(tree); err != nil {
			t.Fatalf("set %s: %v", set, err)
		}

		// 6. First-fit conflict coloring (general scheduler).
		ffSched, err := cst.ScheduleFirstFit(tree, set)
		if err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if err := ffSched.Verify(tree); err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if ffSched.NumRounds() != width {
			t.Fatalf("set %s: first-fit %d rounds, want width %d", set, ffSched.NumRounds(), width)
		}

		// 7. Stateless rebuild pays at least as much as held PADR.
		statelessRes, err := cst.RunDepthID(tree, set, cst.OutermostFirst, cst.Stateless)
		if err != nil {
			t.Fatalf("set %s: %v", set, err)
		}
		if set.Len() > 0 && statelessRes.Report.TotalUnits() < padrRes.Report.TotalUnits() {
			t.Fatalf("set %s: stateless total %d below PADR %d", set,
				statelessRes.Report.TotalUnits(), padrRes.Report.TotalUnits())
		}
	}
}

package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cst"
)

func testOptions(t *testing.T) options {
	t.Helper()
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	o.addr = "127.0.0.1:0"
	o.pes = 16
	o.shards = 1
	o.drainGrace = 30 * time.Second
	return o
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", ":9999", "-pes", "32", "-batch-wait", "5ms"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9999" || o.pes != 32 || o.batchWait != 5*time.Millisecond {
		t.Fatalf("parsed %+v", o)
	}
	if _, err := parseFlags([]string{"-shards", "0"}); err == nil {
		t.Error("-shards 0: want error")
	}
	if _, err := parseFlags([]string{"-chaos", "-1"}); err == nil {
		t.Error("-chaos -1: want error")
	}
}

// TestServeScheduleAndDrain runs the binary's full lifecycle in-process:
// bind, schedule over HTTP, scrape /metrics, drain, and verify the drain
// summary balances.
func TestServeScheduleAndDrain(t *testing.T) {
	var out bytes.Buffer
	s, err := newServer(testOptions(t), &out)
	if err != nil {
		t.Fatal(err)
	}
	s.serve()
	base := "http://" + s.addr()

	resp, err := http.Post(base+"/schedule", "application/json",
		strings.NewReader(`{"src":0,"dst":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /schedule = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "cst_serve_requests_total 1") {
		t.Fatalf("/metrics missing serve series:\n%s", body.String())
	}

	if err := s.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !strings.Contains(out.String(), "admitted=1 responded=1") {
		t.Fatalf("drain summary: %q", out.String())
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestServeWireAddr boots with the wire listener enabled, schedules over
// both protocols, checks the per-protocol metric split, and drains.
func TestServeWireAddr(t *testing.T) {
	o := testOptions(t)
	o.wireAddr = "127.0.0.1:0"
	var out bytes.Buffer
	s, err := newServer(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	s.serve()
	base := "http://" + s.addr()

	c, err := cst.WireDial(s.wireAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		if err := c.Send(&cst.WireRequest{ID: uint64(i), Src: i * 2, Dst: i*2 + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var wresp cst.WireResponse
	for i := 0; i < 2; i++ {
		if err := c.Recv(&wresp); err != nil {
			t.Fatal(err)
		}
		if wresp.Status != http.StatusOK {
			t.Fatalf("wire response %d: %+v", i, wresp)
		}
	}
	resp, err := http.Post(base+"/schedule", "application/json",
		strings.NewReader(`{"src":10,"dst":11}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /schedule = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"cst_serve_requests_total 3",
		`cst_serve_requests_total{protocol="wire"} 2`,
		`cst_serve_requests_total{protocol="http"} 1`,
		"cst_serve_wire_conns 1",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := s.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !strings.Contains(out.String(), "admitted=3 responded=3") {
		t.Fatalf("drain summary: %q", out.String())
	}
}

// TestServeAuditAndTraceOut exercises the optional sinks: the live auditor
// reports on drain and the JSONL trace stream lands on disk.
func TestServeAuditAndTraceOut(t *testing.T) {
	o := testOptions(t)
	o.audit = true
	o.engineMetrics = true
	o.traceSample = 1 // serve.flush/serve.done only fire for sampled batches
	o.traceOut = filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	s, err := newServer(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	s.serve()
	base := "http://" + s.addr()
	for _, payload := range []string{`{"src":0,"dst":3}`, `{"src":8,"dst":15}`} {
		resp, err := http.Post(base+"/schedule", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /schedule = %d", resp.StatusCode)
		}
	}
	if err := s.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !strings.Contains(out.String(), "runs") {
		t.Fatalf("audit summary missing from drain output: %q", out.String())
	}
	data, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"serve.flush"`) {
		t.Fatalf("trace stream missing serve events:\n%.400s", data)
	}
}

// TestServeChaos boots with a fault plan armed; requests must still get
// terminal answers (scheduled or quarantined) and drain must balance.
func TestServeChaos(t *testing.T) {
	o := testOptions(t)
	o.chaos = 6
	var out bytes.Buffer
	s, err := newServer(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	s.serve()
	base := "http://" + s.addr()
	for i := 0; i < 6; i++ {
		resp, err := http.Post(base+"/schedule", "application/json",
			strings.NewReader(`{"src":`+strconv.Itoa(i*2)+`,"dst":`+strconv.Itoa(i*2+1)+`}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if err := s.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !strings.Contains(out.String(), "admitted=6 responded=6") {
		t.Fatalf("drain summary: %q", out.String())
	}
}

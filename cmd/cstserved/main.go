// Command cstserved serves CST scheduling over HTTP/JSON: a batching
// request service built on the online dispatcher, with bounded admission
// queues, 429 backpressure, per-request deadlines, and a graceful drain on
// SIGTERM/SIGINT that answers every admitted request before exiting. The
// same listener carries the observability surface (/metrics, /healthz,
// /trace, /trace/flight, /debug/pprof) and an optional live power auditor;
// -trace-sample and -flight-k arm request-scoped span tracing.
//
// With -wire-addr the same pool additionally listens for the binary wire
// protocol (persistent pipelined TCP connections, see internal/wire): the
// low-latency path load generators and sidecars should prefer, with the
// HTTP listener kept for humans, dashboards and ad-hoc clients.
//
// Examples:
//
//	cstserved -addr :8080 -pes 64 -shards 4
//	cstserved -addr :8080 -wire-addr :8081 -batch-wait 0
//	cstserved -addr :8080 -batch-max 64 -batch-wait 5ms -deadline 250ms
//	cstserved -addr :8080 -audit -chaos 8 -seed 7   # fault-injected soak
//
// See SERVING.md for the API and drain protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cst"
)

type options struct {
	addr          string
	wireAddr      string
	wirePipeline  int
	pes           int
	shards        int
	queueDepth    int
	batchMax      int
	batchWait     time.Duration
	deadline      time.Duration
	drainGrace    time.Duration
	traceRing     int
	traceOut      string
	traceSample   float64
	flightK       int
	audit         bool
	engineMetrics bool
	shardSubtrees bool
	chaos         int
	chaosRounds   int
	seed          int64
	exactBudget   int
	peelBatches   int
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("cstserved", flag.ContinueOnError)
	o := options{}
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.wireAddr, "wire-addr", "", "also listen for the binary wire protocol on this TCP address (empty = disabled)")
	fs.IntVar(&o.wirePipeline, "wire-pipeline", 0, "in-flight requests allowed per wire connection (0 = default)")
	fs.IntVar(&o.pes, "pes", 64, "processing elements per shard fabric (power of two)")
	fs.IntVar(&o.shards, "shards", 2, "independent CST fabrics, one dispatcher worker each")
	fs.IntVar(&o.queueDepth, "queue-depth", 64, "admission queue depth per shard (full queues answer 429)")
	fs.IntVar(&o.batchMax, "batch-max", 32, "flush a batch at this many requests")
	fs.DurationVar(&o.batchWait, "batch-wait", 2*time.Millisecond, "flush a partial batch this long after its first request")
	fs.DurationVar(&o.deadline, "deadline", 0, "default per-request deadline (0 = none; requests may override)")
	fs.DurationVar(&o.drainGrace, "drain-grace", 10*time.Second, "drain budget on SIGTERM before giving up")
	fs.IntVar(&o.traceRing, "trace-ring", 4096, "trace ring capacity for /trace")
	fs.StringVar(&o.traceOut, "trace-out", "", "also stream trace events to this JSONL file")
	fs.Float64Var(&o.traceSample, "trace-sample", 0, "head-sample this fraction of requests into span traces (0 = errors only, 1 = all)")
	fs.IntVar(&o.flightK, "flight-k", cst.DefaultFlightK, "span trees pinned by the flight recorder per class (slowest, errored) for /trace/flight; 0 disables")
	fs.BoolVar(&o.audit, "audit", false, "attach a live power auditor to the trace stream; report on drain")
	fs.BoolVar(&o.engineMetrics, "engine-metrics", false, "thread metrics/trace into the shard engines (cst_online_*/cst_padr_* series)")
	fs.BoolVar(&o.shardSubtrees, "shard-subtrees", false, "enable subtree sharding inside each fabric")
	fs.IntVar(&o.chaos, "chaos", 0, "inject this many random faults per shard (0 = none)")
	fs.IntVar(&o.chaosRounds, "chaos-rounds", 64, "simulated-round window the chaos plan spans")
	fs.Int64Var(&o.seed, "seed", 1, "chaos plan seed")
	fs.IntVar(&o.exactBudget, "exact-budget", 0, "branch-and-bound node budget for hybrid residual coloring (0 = default)")
	fs.IntVar(&o.peelBatches, "peel-batches", 0, "well-nested batches the hybrid planner peels per orientation (0 = default)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.shards <= 0 {
		return o, fmt.Errorf("cstserved: -shards must be positive (got %d)", o.shards)
	}
	if o.chaos < 0 {
		return o, fmt.Errorf("cstserved: -chaos must be non-negative (got %d)", o.chaos)
	}
	if o.traceSample < 0 || o.traceSample > 1 {
		return o, fmt.Errorf("cstserved: -trace-sample must be in [0, 1] (got %g)", o.traceSample)
	}
	return o, nil
}

// server bundles the pool, the HTTP listener and the observability
// backends so drain can tear everything down in order.
type server struct {
	opts      options
	pool      *cst.ServePool
	planner   *cst.ServePlanner
	srv       *http.Server
	ln        net.Listener
	wireSrv   *cst.WireServer
	wireLn    net.Listener
	reg       *cst.Metrics
	tracer    *cst.Tracer
	auditor   *cst.Auditor
	traceFile *os.File
	out       io.Writer
}

// newServer builds the pool and binds the listener; serving starts with
// (*server).serve.
func newServer(o options, out io.Writer) (*server, error) {
	s := &server{opts: o, reg: cst.NewMetrics(), out: out}
	var sink io.Writer
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return nil, fmt.Errorf("cstserved: -trace-out: %w", err)
		}
		s.traceFile = f
		sink = f
	}
	s.tracer = cst.NewTracer(sink, o.traceRing)
	s.tracer.SetSampleRate(o.traceSample)
	if o.flightK > 0 {
		s.tracer.SetFlight(cst.NewFlightRecorder(o.flightK))
	}
	if o.audit {
		s.auditor = cst.NewAuditor(cst.AuditConfig{Registry: s.reg})
		s.tracer.SetSink(s.auditor.Observe)
	}
	var faults []cst.Fault
	if o.chaos > 0 {
		tree, err := cst.NewTree(o.pes)
		if err != nil {
			return nil, fmt.Errorf("cstserved: -pes: %w", err)
		}
		faults = cst.RandomFaults(cst.NewRand(o.seed), tree, o.chaosRounds, o.chaos, 0)
	}
	pool, err := cst.NewServePool(cst.ServeConfig{
		PEs:             o.pes,
		Shards:          o.shards,
		QueueDepth:      o.queueDepth,
		BatchMax:        o.batchMax,
		BatchWait:       o.batchWait,
		DefaultDeadline: o.deadline,
		Registry:        s.reg,
		Tracer:          s.tracer,
		Faults:          faults,
		EngineMetrics:   o.engineMetrics,
		Sharding:        o.shardSubtrees,
	})
	if err != nil {
		if s.traceFile != nil {
			s.traceFile.Close()
		}
		return nil, err
	}
	s.pool = pool
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		if s.traceFile != nil {
			s.traceFile.Close()
		}
		return nil, fmt.Errorf("cstserved: listen %s: %w", o.addr, err)
	}
	s.ln = ln
	// The set planner is shared by both transports; its replay trace joins
	// the pool's on the same tracer, so an attached auditor bills hybrid
	// plans too.
	s.planner = cst.NewServePlanner(cst.ServePlannerConfig{
		ExactBudget: o.exactBudget,
		MaxBatches:  o.peelBatches,
		Registry:    s.reg,
		Tracer:      s.tracer,
	})
	s.srv = &http.Server{Handler: cst.NewServeHandler(pool, s.planner, s.reg, s.tracer)}
	if o.wireAddr != "" {
		wln, err := net.Listen("tcp", o.wireAddr)
		if err != nil {
			ln.Close()
			if s.traceFile != nil {
				s.traceFile.Close()
			}
			return nil, fmt.Errorf("cstserved: -wire-addr %s: %w", o.wireAddr, err)
		}
		s.wireLn = wln
		s.wireSrv = cst.NewWireServer(pool, cst.WireConfig{
			MaxPipeline: o.wirePipeline,
			Planner:     s.planner,
			Registry:    s.reg,
			Tracer:      s.tracer,
		})
	}
	return s, nil
}

func (s *server) addr() string { return s.ln.Addr().String() }

// wireAddr returns the bound wire listener address ("" when disabled).
func (s *server) wireAddr() string {
	if s.wireLn == nil {
		return ""
	}
	return s.wireLn.Addr().String()
}

// serve launches the workers, the HTTP loop and (when configured) the
// wire loop in the background.
func (s *server) serve() {
	s.pool.Start()
	go func() { _ = s.srv.Serve(s.ln) }()
	if s.wireSrv != nil {
		go func() { _ = s.wireSrv.Serve(s.wireLn) }()
	}
}

// drain runs the shutdown protocol: stop admitting and flush every queue
// (bounded by the drain grace) — settling every in-flight request,
// pipelined wire requests included — then shut the wire listener (its
// writers flush the settled answers before the connections close), then
// let in-flight HTTP responses finish, then close the trace file and
// report. A drain that loses a request or exceeds its budget returns an
// error.
func (s *server) drain() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.drainGrace)
	defer cancel()
	drainErr := s.pool.Drain(ctx)
	if s.wireSrv != nil {
		if err := s.wireSrv.Shutdown(ctx); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		_ = s.srv.Close()
	}
	if s.traceFile != nil {
		_ = s.traceFile.Close()
	}
	st := s.pool.Snapshot()
	fmt.Fprintf(s.out, "cstserved: drained: admitted=%d responded=%d shards=%d\n",
		st.Admitted, st.Responded, st.Shards)
	if s.auditor != nil {
		s.auditor.Flush()
		fmt.Fprintln(s.out, s.auditor.Report().Summary())
	}
	return drainErr
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s, err := newServer(o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.serve()
	fmt.Printf("cstserved: serving on %s (pes=%d shards=%d queue=%d batch=%d/%v)\n",
		s.addr(), o.pes, o.shards, o.queueDepth, o.batchMax, o.batchWait)
	if wa := s.wireAddr(); wa != "" {
		fmt.Printf("cstserved: wire protocol on %s\n", wa)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("cstserved: signal received, draining")
	if err := s.drain(); err != nil {
		fmt.Fprintln(os.Stderr, "cstserved:", err)
		os.Exit(1)
	}
}

package main

import "testing"

func TestRunModes(t *testing.T) {
	for fig := 1; fig <= 3; fig++ {
		if err := run(fig, "", false, false, false); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
	if err := run(9, "", false, false, false); err == nil {
		t.Error("unknown figure: want error")
	}
	if err := run(0, "(())", false, false, false); err != nil {
		t.Errorf("static set: %v", err)
	}
	if err := run(0, "(())", true, false, false); err != nil {
		t.Errorf("animated set: %v", err)
	}
	if err := run(0, "(())", false, true, false); err != nil {
		t.Errorf("stored view: %v", err)
	}
	if err := run(0, "(())", false, false, true); err != nil {
		t.Errorf("dot output: %v", err)
	}
	if err := run(0, ")(", false, false, false); err == nil {
		t.Error("bad expression: want error")
	}
	if err := run(0, "", false, false, false); err == nil {
		t.Error("no input: want error")
	}
}

// Command cstviz renders CSTs, communication sets and PADR runs as ASCII
// (or Graphviz dot), reproducing the paper's illustrative figures:
//
//	cstviz -fig 1    # Fig. 1: communications established over the CST
//	cstviz -fig 2    # Fig. 2: a well-nested communication set
//	cstviz -fig 3    # Fig. 3(b)/4(a): per-switch control state after Phase 1
//	cstviz -set "((.)((.)..).)" -rounds   # animate any set round by round
//	cstviz -set "(())" -dot               # Graphviz output
package main

import (
	"flag"
	"fmt"
	"os"

	"cst"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/trace"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "render paper figure 1, 2 or 3")
		setStr = flag.String("set", "", "parenthesis expression to render")
		rounds = flag.Bool("rounds", false, "run PADR and draw the tree after every round")
		stored = flag.Bool("stored", false, "draw the Phase-1 control state C_S at every switch")
		dot    = flag.Bool("dot", false, "emit Graphviz dot instead of ASCII")
	)
	flag.Parse()

	if err := run(*fig, *setStr, *rounds, *stored, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "cstviz:", err)
		os.Exit(1)
	}
}

func run(fig int, setStr string, rounds, stored, dot bool) error {
	if fig != 0 {
		out, err := trace.Figure(fig)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	if setStr == "" {
		return fmt.Errorf("need -fig or -set (run with -h for usage)")
	}
	set, err := cst.Parse(setStr)
	if err != nil {
		return err
	}
	if dot {
		tree, err := cst.NewTree(set.N)
		if err != nil {
			return err
		}
		fmt.Print(tree.DOT(nil))
		return nil
	}
	fmt.Print(cst.RenderSet(set))
	fmt.Println()
	if rounds {
		return animate(set)
	}
	tree, err := cst.NewTree(set.N)
	if err != nil {
		return err
	}
	if stored {
		res, err := cst.Run(tree, set)
		if err != nil {
			return err
		}
		fmt.Print(trace.RenderStored(tree, res.InitialStored, set))
		return nil
	}
	fmt.Print(cst.RenderTree(tree, nil, set))
	return nil
}

// animate runs PADR on the set and draws the configured tree after every
// round, then verifies the data plane.
func animate(set *cst.Set) error {
	tree, err := cst.NewTree(set.N)
	if err != nil {
		return err
	}
	var rec deliver.Recorder
	e, err := padr.New(tree, set, padr.WithObserver(rec.Observer()))
	if err != nil {
		return err
	}
	res, err := e.Run()
	if err != nil {
		return err
	}
	for r := 0; r < res.Rounds; r++ {
		fmt.Printf("--- round %d: %v ---\n", r, res.Schedule.Rounds[r])
		fmt.Print(cst.RenderTree(tree, rec.Config(r), set))
		fmt.Println()
	}
	if err := rec.Verify(tree); err != nil {
		return err
	}
	fmt.Println(res.Report.Summary())
	return nil
}

// Command cstload drives a running cstserved with closed-loop clients and
// reports throughput and latency. Each client posts one request, waits for
// its answer, and immediately posts the next; 429 responses count as
// backpressure (with a short backoff), anything outside {2xx, 429} fails
// the run. The human-readable report goes to stderr; stdout carries
// `go test -bench`-style lines so the output pipes straight into
// cmd/benchjson for BENCH_serve.json.
//
// Examples:
//
//	cstload -addr http://127.0.0.1:8080 -clients 8 -duration 5s
//	cstload -addr http://127.0.0.1:8080 -requests 500 | benchjson -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"cst/internal/stats"
)

type loadOptions struct {
	addr       string
	clients    int
	duration   time.Duration
	requests   int
	pes        int
	deadlineMS int64
	seed       int64
}

func parseFlags(args []string) (loadOptions, error) {
	fs := flag.NewFlagSet("cstload", flag.ContinueOnError)
	o := loadOptions{}
	fs.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "cstserved base URL")
	fs.IntVar(&o.clients, "clients", 4, "closed-loop clients")
	fs.DurationVar(&o.duration, "duration", 3*time.Second, "run length (ignored when -requests > 0)")
	fs.IntVar(&o.requests, "requests", 0, "total request budget across clients (0 = run for -duration)")
	fs.IntVar(&o.pes, "pes", 0, "fabric size for request generation (0 = discover via /statusz)")
	fs.Int64Var(&o.deadlineMS, "deadline-ms", 0, "per-request deadline forwarded to the server (0 = server default)")
	fs.Int64Var(&o.seed, "seed", 1, "request-pattern seed")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.clients <= 0 {
		return o, fmt.Errorf("cstload: -clients must be positive (got %d)", o.clients)
	}
	o.addr = strings.TrimRight(o.addr, "/")
	return o, nil
}

// report aggregates one load run.
type report struct {
	Elapsed    time.Duration
	Scheduled  int // 2xx answers
	Rejected   int // 429 backpressure
	Unexpected map[int]int
	Latencies  []time.Duration // 2xx wall-clock latencies
}

func (r *report) throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Scheduled) / r.Elapsed.Seconds()
}

// nanos returns the 2xx latencies as float64 nanoseconds for the shared
// quantile implementation in internal/stats.
func (r *report) nanos() []float64 {
	xs := make([]float64, len(r.Latencies))
	for i, d := range r.Latencies {
		xs[i] = float64(d.Nanoseconds())
	}
	return xs
}

// quantile returns the nearest-rank q-quantile of the 2xx latencies (0 when
// nothing was scheduled).
func (r *report) quantile(q float64) time.Duration {
	return time.Duration(stats.Quantile(r.nanos(), q))
}

// max returns the slowest 2xx latency.
func (r *report) max() time.Duration {
	return r.quantile(1)
}

// discoverPEs asks the server's /statusz for its fabric size.
func discoverPEs(client *http.Client, addr string) (int, error) {
	resp, err := client.Get(addr + "/statusz")
	if err != nil {
		return 0, fmt.Errorf("cstload: /statusz: %w", err)
	}
	defer resp.Body.Close()
	var st struct {
		PEs int `json:"pes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, fmt.Errorf("cstload: /statusz: %w", err)
	}
	if st.PEs < 2 {
		return 0, fmt.Errorf("cstload: /statusz reports %d PEs", st.PEs)
	}
	return st.PEs, nil
}

// run executes the load and returns the aggregate report. An error means
// the run itself failed (unreachable server); unexpected statuses are
// reported in the result for the caller to judge.
func run(o loadOptions) (*report, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	if o.pes == 0 {
		pes, err := discoverPEs(client, o.addr)
		if err != nil {
			return nil, err
		}
		o.pes = pes
	}

	var budget chan struct{}
	if o.requests > 0 {
		budget = make(chan struct{}, o.requests)
		for i := 0; i < o.requests; i++ {
			budget <- struct{}{}
		}
		close(budget)
	}
	deadline := time.Now().Add(o.duration)
	reports := make([]report, o.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(g)))
			r := &reports[g]
			r.Unexpected = make(map[int]int)
			for {
				if budget != nil {
					if _, ok := <-budget; !ok {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				src := rng.Intn(o.pes)
				dst := rng.Intn(o.pes)
				if src == dst {
					dst = (dst + 1) % o.pes
				}
				body, _ := json.Marshal(map[string]any{
					"src": src, "dst": dst, "deadline_ms": o.deadlineMS,
				})
				t0 := time.Now()
				resp, err := client.Post(o.addr+"/schedule", "application/json", bytes.NewReader(body))
				if err != nil {
					r.Unexpected[-1]++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					r.Scheduled++
					r.Latencies = append(r.Latencies, time.Since(t0))
				case resp.StatusCode == http.StatusTooManyRequests:
					r.Rejected++
					time.Sleep(200 * time.Microsecond) // brief backoff under backpressure
				default:
					r.Unexpected[resp.StatusCode]++
				}
			}
		}(g)
	}
	wg.Wait()

	total := &report{Elapsed: time.Since(start), Unexpected: make(map[int]int)}
	for i := range reports {
		total.Scheduled += reports[i].Scheduled
		total.Rejected += reports[i].Rejected
		for code, n := range reports[i].Unexpected {
			total.Unexpected[code] += n
		}
		total.Latencies = append(total.Latencies, reports[i].Latencies...)
	}
	return total, nil
}

// writeBench emits the report as `go test -bench` result lines, the format
// cmd/benchjson ingests.
func writeBench(w io.Writer, r *report) {
	n := r.Scheduled
	if n == 0 {
		return
	}
	perOp := float64(r.Elapsed.Nanoseconds()) / float64(n)
	fmt.Fprintf(w, "BenchmarkServeThroughput %d %.1f ns/op\n", n, perOp)
	fmt.Fprintf(w, "BenchmarkServeLatencyP50 %d %d ns/op\n", n, r.quantile(0.50).Nanoseconds())
	fmt.Fprintf(w, "BenchmarkServeLatencyP90 %d %d ns/op\n", n, r.quantile(0.90).Nanoseconds())
	fmt.Fprintf(w, "BenchmarkServeLatencyP99 %d %d ns/op\n", n, r.quantile(0.99).Nanoseconds())
	fmt.Fprintf(w, "BenchmarkServeLatencyMax %d %d ns/op\n", n, r.max().Nanoseconds())
}

func writeSummary(w io.Writer, r *report) {
	fmt.Fprintf(w, "cstload: %d scheduled, %d backpressured (429) in %v\n",
		r.Scheduled, r.Rejected, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "cstload: %.1f req/s over %d samples, p50 %v, p90 %v, p99 %v, max %v\n",
		r.throughput(), len(r.Latencies),
		r.quantile(0.50).Round(time.Microsecond), r.quantile(0.90).Round(time.Microsecond),
		r.quantile(0.99).Round(time.Microsecond), r.max().Round(time.Microsecond))
	for code, count := range r.Unexpected {
		fmt.Fprintf(w, "cstload: %d unexpected responses with status %d\n", count, code)
	}
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writeSummary(os.Stderr, r)
	writeBench(os.Stdout, r)
	if len(r.Unexpected) > 0 {
		os.Exit(1)
	}
}

// Command cstload drives a running cstserved with closed-loop clients and
// reports throughput and latency. Each client posts one request, waits for
// its answer, and immediately posts the next; 429 responses count as
// backpressure (with a short backoff), anything outside {2xx, 429} fails
// the run. Transport failures (dial errors, broken connections) are
// tracked as a separate connection-error counter — they are the load
// generator's problem, not a server-side rejection, and mixing the two
// corrupted more than one investigation. The human-readable report goes
// to stderr; stdout carries `go test -bench`-style lines so the output
// pipes straight into cmd/benchjson for BENCH_serve.json.
//
// With -wire the clients speak the binary wire protocol instead of
// HTTP/JSON: each client holds one persistent connection and keeps up to
// -pipeline requests in flight on it, correlating answers by request id.
// Bench lines from a wire run carry a Wire infix
// (BenchmarkServeWireLatencyP50 vs BenchmarkServeLatencyP50) so the two
// protocols track as separate series in the perf ledger.
//
// With -set-workload the clients stop posting single pairs and instead
// submit whole communication sets to the hybrid planner (POST
// /schedule-set, or TypeSetRequest frames in wire mode) — including
// adversarial non-well-nested shapes: bit-reversal ("bitrev"), pairwise
// crossing combs ("crossing"), and arbitrary two-sided random sets
// ("random"). Bench lines switch to a Hybrid prefix (BenchmarkHybrid*,
// BenchmarkHybridWire*) so set planning tracks as its own ledger series.
//
// With -delta-workload each client opens one long-lived delta session
// (session ids spread across the server's pinned shards) and streams
// incremental mutations against it — POST /schedule-delta over HTTP, v4
// delta frames in wire mode. -delta-overlap sets how much of the session
// set survives each delta (0.9 = 10% churn). Bench lines use a Delta
// prefix (BenchmarkDelta*, BenchmarkDeltaWire*).
//
// Examples:
//
//	cstload -addr http://127.0.0.1:8080 -clients 8 -duration 5s
//	cstload -addr http://127.0.0.1:8080 -requests 500 | benchjson -out BENCH_serve.json
//	cstload -wire 127.0.0.1:8081 -clients 4 -pipeline 16 -requests 2000
//	cstload -addr http://127.0.0.1:8080 -set-workload crossing -set-size 8 -requests 200
//	cstload -wire 127.0.0.1:8081 -set-workload bitrev -requests 200
//	cstload -addr http://127.0.0.1:8080 -delta-workload -delta-overlap 0.9 -requests 500
//	cstload -wire 127.0.0.1:8081 -delta-workload -requests 500
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"cst/internal/comm"
	"cst/internal/obs"
	"cst/internal/stats"
	"cst/internal/wire"
)

type loadOptions struct {
	addr         string
	wireAddr     string
	pipeline     int
	clients      int
	duration     time.Duration
	requests     int
	pes          int
	deadlineMS   int64
	seed         int64
	setWorkload  string
	setSize      int
	deltaMode    bool
	deltaOverlap float64
}

func parseFlags(args []string) (loadOptions, error) {
	fs := flag.NewFlagSet("cstload", flag.ContinueOnError)
	o := loadOptions{}
	fs.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "cstserved base URL")
	fs.StringVar(&o.wireAddr, "wire", "", "drive the wire protocol at this TCP address instead of HTTP (host:port)")
	fs.IntVar(&o.pipeline, "pipeline", 1, "wire mode: requests kept in flight per connection")
	fs.IntVar(&o.clients, "clients", 4, "closed-loop clients (wire mode: persistent connections)")
	fs.DurationVar(&o.duration, "duration", 3*time.Second, "run length (ignored when -requests > 0)")
	fs.IntVar(&o.requests, "requests", 0, "total request budget across clients (0 = run for -duration)")
	fs.IntVar(&o.pes, "pes", 0, "fabric size for request generation (0 = discover via /statusz)")
	fs.Int64Var(&o.deadlineMS, "deadline-ms", 0, "per-request deadline forwarded to the server (0 = server default)")
	fs.Int64Var(&o.seed, "seed", 1, "request-pattern seed")
	fs.StringVar(&o.setWorkload, "set-workload", "", "submit whole sets to the hybrid planner: bitrev, crossing or random (empty = pair requests)")
	fs.IntVar(&o.setSize, "set-size", 8, "communications per generated set (bitrev ignores this)")
	fs.BoolVar(&o.deltaMode, "delta-workload", false, "drive session-scoped delta scheduling (POST /schedule-delta, or v4 delta frames in wire mode)")
	fs.Float64Var(&o.deltaOverlap, "delta-overlap", 0.9, "delta mode: set overlap ratio between consecutive schedules (0 <= r < 1)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.clients <= 0 {
		return o, fmt.Errorf("cstload: -clients must be positive (got %d)", o.clients)
	}
	if o.pipeline <= 0 {
		return o, fmt.Errorf("cstload: -pipeline must be positive (got %d)", o.pipeline)
	}
	switch o.setWorkload {
	case "", "bitrev", "crossing", "random":
	default:
		return o, fmt.Errorf("cstload: -set-workload must be bitrev, crossing or random (got %q)", o.setWorkload)
	}
	if o.setSize <= 0 {
		return o, fmt.Errorf("cstload: -set-size must be positive (got %d)", o.setSize)
	}
	if o.deltaMode && o.setWorkload != "" {
		return o, fmt.Errorf("cstload: -delta-workload and -set-workload are mutually exclusive")
	}
	if o.deltaOverlap < 0 || o.deltaOverlap >= 1 {
		return o, fmt.Errorf("cstload: -delta-overlap must be in [0, 1) (got %g)", o.deltaOverlap)
	}
	o.addr = strings.TrimRight(o.addr, "/")
	return o, nil
}

// report aggregates one load run.
type report struct {
	Wire       bool
	SetMode    bool
	DeltaMode  bool
	Elapsed    time.Duration
	Scheduled  int // 2xx answers
	Rejected   int // 429 backpressure
	ConnErrors int // transport failures: dials, broken pipes, short reads
	Unexpected map[int]int
	Latencies  []time.Duration // 2xx wall-clock latencies
	// Traces is index-aligned with Latencies: the server-reported trace id
	// of each 2xx answer ("" when the request was not sampled). Failed
	// holds the trace ids of non-2xx/non-429 answers — the server samples
	// every error retroactively, so these link straight to /trace/flight.
	Traces []string
	Failed []failedTrace
}

// failedTrace links one failed request to its server-side span tree.
type failedTrace struct {
	Status  int    `json:"status"`
	TraceID string `json:"trace_id"`
}

// slowTrace is one slowest-request entry in the machine-readable output.
type slowTrace struct {
	TraceID   string `json:"trace_id"`
	LatencyNS int64  `json:"latency_ns"`
}

// slowest returns the k slowest 2xx samples (latency descending).
func (r *report) slowest(k int) []slowTrace {
	idx := make([]int, len(r.Latencies))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.Latencies[idx[a]] > r.Latencies[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]slowTrace, 0, k)
	for _, i := range idx[:k] {
		st := slowTrace{LatencyNS: r.Latencies[i].Nanoseconds()}
		if i < len(r.Traces) {
			st.TraceID = r.Traces[i]
		}
		out = append(out, st)
	}
	return out
}

func (r *report) throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Scheduled) / r.Elapsed.Seconds()
}

// nanos returns the 2xx latencies as float64 nanoseconds for the shared
// quantile implementation in internal/stats.
func (r *report) nanos() []float64 {
	xs := make([]float64, len(r.Latencies))
	for i, d := range r.Latencies {
		xs[i] = float64(d.Nanoseconds())
	}
	return xs
}

// quantile returns the nearest-rank q-quantile of the 2xx latencies (0 when
// nothing was scheduled).
func (r *report) quantile(q float64) time.Duration {
	return time.Duration(stats.Quantile(r.nanos(), q))
}

// max returns the slowest 2xx latency.
func (r *report) max() time.Duration {
	return r.quantile(1)
}

// merge folds one client's report into the total.
func (r *report) merge(c *report) {
	r.Scheduled += c.Scheduled
	r.Rejected += c.Rejected
	r.ConnErrors += c.ConnErrors
	for code, n := range c.Unexpected {
		r.Unexpected[code] += n
	}
	r.Latencies = append(r.Latencies, c.Latencies...)
	r.Traces = append(r.Traces, c.Traces...)
	r.Failed = append(r.Failed, c.Failed...)
}

// count sorts a terminal status into the report (latency only for 2xx).
// trace is the server-reported trace id ("" when the answer carried none).
func (r *report) count(status int, lat time.Duration, trace string) {
	switch {
	case status >= 200 && status < 300:
		r.Scheduled++
		r.Latencies = append(r.Latencies, lat)
		r.Traces = append(r.Traces, trace)
	case status == http.StatusTooManyRequests:
		r.Rejected++
	default:
		r.Unexpected[status]++
		if trace != "" {
			r.Failed = append(r.Failed, failedTrace{Status: status, TraceID: trace})
		}
	}
}

// headerTrace extracts the trace id from an X-CST-Trace response header.
func headerTrace(h http.Header) string {
	ctx, ok := obs.ParseTraceHeader(h.Get(obs.TraceHeader))
	if !ok {
		return ""
	}
	return ctx.Trace.String()
}

// wireTrace renders a wire-frame trace id ("" for zero).
func wireTrace(v uint64) string {
	return obs.TraceID(v).String()
}

// discoverPEs asks the server's /statusz for its fabric size.
func discoverPEs(client *http.Client, addr string) (int, error) {
	resp, err := client.Get(addr + "/statusz")
	if err != nil {
		return 0, fmt.Errorf("cstload: /statusz: %w (wire mode still discovers over HTTP; set -pes to skip)", err)
	}
	defer resp.Body.Close()
	var st struct {
		PEs int `json:"pes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, fmt.Errorf("cstload: /statusz: %w", err)
	}
	if st.PEs < 2 {
		return 0, fmt.Errorf("cstload: /statusz reports %d PEs", st.PEs)
	}
	return st.PEs, nil
}

// setGen yields communication sets for the hybrid planner. bitrev is
// deterministic; crossing and random draw fresh sets each call off the
// client's seeded source.
type setGen struct {
	rng      *rand.Rand
	pes      int
	size     int
	workload string
}

func (g *setGen) next() (*comm.Set, error) {
	switch g.workload {
	case "bitrev":
		return comm.BitReversal(g.pes)
	case "crossing":
		// The comb needs 2*size PEs; clamp so small fabrics still load.
		size := g.size
		if 2*size > g.pes {
			size = g.pes / 2
		}
		return comm.CrossingPairs(g.pes, size)
	case "random":
		size := g.size
		if 2*size > g.pes {
			size = g.pes / 2
		}
		return comm.RandomTwoSided(g.rng, g.pes, size)
	}
	return nil, fmt.Errorf("cstload: unknown set workload %q", g.workload)
}

// deltaVariants are the four-leaf-slot communication shapes the delta
// generator rotates through (the same alphabet as the lab's overlap
// sweep, so client- and engine-side measurements describe one workload).
var deltaVariants = [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}, {1, 3}}

// deltaGen yields session mutations over a sparse slot set: the first
// call opens the session with the full set, every later call rotates k
// distinct slots to a new variant (k removes + k adds, where k is set by
// the overlap ratio).
type deltaGen struct {
	rng          *rand.Rand
	active, step int
	k            int
	cur          []int
	opened       bool
}

func newDeltaGen(rng *rand.Rand, pes int, overlap float64) (*deltaGen, error) {
	slots := pes / 4
	if slots < 1 {
		return nil, fmt.Errorf("cstload: delta workload needs at least 4 PEs (got %d)", pes)
	}
	active := slots
	if active > 64 {
		active = 64 // the sparse bench shape: disjoint dirty paths
	}
	k := int(float64(active)*(1-overlap) + 0.5)
	if k < 1 {
		k = 1
	}
	return &deltaGen{rng: rng, active: active, step: slots / active, k: k,
		cur: make([]int, active)}, nil
}

func (g *deltaGen) base(i int) int { return 4 * i * g.step }

func (g *deltaGen) next() (remove, add [][2]int) {
	if !g.opened {
		g.opened = true
		for i := 0; i < g.active; i++ {
			v := deltaVariants[g.cur[i]]
			add = append(add, [2]int{g.base(i) + v[0], g.base(i) + v[1]})
		}
		return nil, add
	}
	// Distinct slots per delta: removes run before adds server-side.
	for _, i := range g.rng.Perm(g.active)[:g.k] {
		old := deltaVariants[g.cur[i]]
		g.cur[i] = (g.cur[i] + 1 + g.rng.Intn(len(deltaVariants)-1)) % len(deltaVariants)
		next := deltaVariants[g.cur[i]]
		remove = append(remove, [2]int{g.base(i) + old[0], g.base(i) + old[1]})
		add = append(add, [2]int{g.base(i) + next[0], g.base(i) + next[1]})
	}
	return remove, add
}

// pairGen yields seeded random (src, dst) pairs with src != dst.
type pairGen struct {
	rng *rand.Rand
	pes int
}

func (g *pairGen) next() (int, int) {
	src := g.rng.Intn(g.pes)
	dst := g.rng.Intn(g.pes)
	if src == dst {
		dst = (dst + 1) % g.pes
	}
	return src, dst
}

// budgeter hands out the request budget: a closed channel walk for
// -requests, a wall-clock check for -duration.
type budgeter struct {
	ch       chan struct{}
	deadline time.Time
}

func newBudgeter(o loadOptions) *budgeter {
	b := &budgeter{deadline: time.Now().Add(o.duration)}
	if o.requests > 0 {
		b.ch = make(chan struct{}, o.requests)
		for i := 0; i < o.requests; i++ {
			b.ch <- struct{}{}
		}
		close(b.ch)
	}
	return b
}

// take acquires one request slot; false means the run is over.
func (b *budgeter) take() bool {
	if b.ch != nil {
		_, ok := <-b.ch
		return ok
	}
	return time.Now().Before(b.deadline)
}

// run executes the load and returns the aggregate report. An error means
// the run itself failed (unreachable server); unexpected statuses and
// connection errors are reported in the result for the caller to judge.
func run(o loadOptions) (*report, error) {
	if o.pes == 0 {
		client := &http.Client{Timeout: 30 * time.Second}
		pes, err := discoverPEs(client, o.addr)
		if err != nil {
			return nil, err
		}
		o.pes = pes
	}

	budget := newBudgeter(o)
	reports := make([]report, o.clients)
	sessionBase := uint64(time.Now().UnixNano())
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := &reports[g]
			r.Unexpected = make(map[int]int)
			rng := rand.New(rand.NewSource(o.seed + int64(g)))
			if o.setWorkload != "" {
				gen := &setGen{rng: rng, pes: o.pes, size: o.setSize, workload: o.setWorkload}
				if o.wireAddr != "" {
					runWireSetClient(o, budget, gen, r)
				} else {
					runHTTPSetClient(o, budget, gen, r)
				}
				return
			}
			if o.deltaMode {
				gen, err := newDeltaGen(rng, o.pes, o.deltaOverlap)
				if err != nil {
					r.ConnErrors++
					return
				}
				// Each client owns one session; consecutive ids spread the
				// sessions across the server's pinned shards. The time-based
				// base keeps back-to-back runs against one server from
				// colliding with sessions a previous run left warm.
				session := sessionBase + uint64(g)
				if o.wireAddr != "" {
					runWireDeltaClient(o, budget, gen, session, r)
				} else {
					runHTTPDeltaClient(o, budget, gen, session, r)
				}
				return
			}
			gen := &pairGen{rng: rng, pes: o.pes}
			if o.wireAddr != "" {
				runWireClient(o, budget, gen, r)
			} else {
				runHTTPClient(o, budget, gen, r)
			}
		}(g)
	}
	wg.Wait()

	total := &report{
		Wire:       o.wireAddr != "",
		SetMode:    o.setWorkload != "",
		DeltaMode:  o.deltaMode,
		Elapsed:    time.Since(start),
		Unexpected: make(map[int]int),
	}
	for i := range reports {
		total.merge(&reports[i])
	}
	return total, nil
}

// runHTTPClient is the closed-loop HTTP/JSON client: one request in
// flight, POST /schedule, count the answer.
func runHTTPClient(o loadOptions, budget *budgeter, gen *pairGen, r *report) {
	client := &http.Client{Timeout: 30 * time.Second}
	for budget.take() {
		src, dst := gen.next()
		body, _ := json.Marshal(map[string]any{
			"src": src, "dst": dst, "deadline_ms": o.deadlineMS,
		})
		t0 := time.Now()
		resp, err := client.Post(o.addr+"/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			r.ConnErrors++
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		r.count(resp.StatusCode, time.Since(t0), headerTrace(resp.Header))
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(200 * time.Microsecond) // brief backoff under backpressure
		}
	}
}

// runHTTPSetClient is the closed-loop set-planning client: one whole set
// in flight, POST /schedule-set, count the answer.
func runHTTPSetClient(o loadOptions, budget *budgeter, gen *setGen, r *report) {
	client := &http.Client{Timeout: 30 * time.Second}
	type jsonComm struct {
		Src int `json:"src"`
		Dst int `json:"dst"`
	}
	for budget.take() {
		s, err := gen.next()
		if err != nil {
			r.ConnErrors++
			return
		}
		comms := make([]jsonComm, s.Len())
		for i, cm := range s.Comms {
			comms[i] = jsonComm{Src: cm.Src, Dst: cm.Dst}
		}
		body, _ := json.Marshal(map[string]any{"n": s.N, "comms": comms})
		t0 := time.Now()
		resp, err := client.Post(o.addr+"/schedule-set", "application/json", bytes.NewReader(body))
		if err != nil {
			r.ConnErrors++
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		r.count(resp.StatusCode, time.Since(t0), headerTrace(resp.Header))
	}
}

// runHTTPDeltaClient is the closed-loop delta client: one session, one
// mutation in flight, POST /schedule-delta. A 400 on a warm session means
// client and server state diverged — that is a run failure, not noise, so
// it lands in Unexpected like any other non-2xx/429.
func runHTTPDeltaClient(o loadOptions, budget *budgeter, gen *deltaGen, session uint64, r *report) {
	client := &http.Client{Timeout: 30 * time.Second}
	type jsonComm struct {
		Src int `json:"src"`
		Dst int `json:"dst"`
	}
	pairs := func(ps [][2]int) []jsonComm {
		out := make([]jsonComm, len(ps))
		for i, p := range ps {
			out[i] = jsonComm{Src: p[0], Dst: p[1]}
		}
		return out
	}
	for budget.take() {
		remove, add := gen.next()
		body, _ := json.Marshal(map[string]any{
			"session": session, "remove": pairs(remove), "add": pairs(add),
			"deadline_ms": o.deadlineMS,
		})
		t0 := time.Now()
		resp, err := client.Post(o.addr+"/schedule-delta", "application/json", bytes.NewReader(body))
		if err != nil {
			r.ConnErrors++
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		r.count(resp.StatusCode, time.Since(t0), headerTrace(resp.Header))
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// runWireDeltaClient drives one session's deltas over a persistent v4
// wire connection, one in flight — a session's deltas are ordered on its
// pinned shard, so pipelining them would only measure queueing.
func runWireDeltaClient(o loadOptions, budget *budgeter, gen *deltaGen, session uint64, r *report) {
	c, err := wire.Dial(o.wireAddr, 10*time.Second)
	if err != nil {
		r.ConnErrors++
		return
	}
	defer c.Close()
	if c.ProtocolVersion() < wire.VersionDelta {
		fmt.Fprintf(os.Stderr, "cstload: server negotiated v%d, deltas need v%d\n",
			c.ProtocolVersion(), wire.VersionDelta)
		r.ConnErrors++
		return
	}

	var req wire.DeltaRequest
	var resp wire.DeltaResponse
	id := uint64(1)
	for budget.take() {
		req.ID = id
		id++
		req.Session = session
		req.DeadlineMS = o.deadlineMS
		req.Remove, req.Add = gen.next()
		t0 := time.Now()
		if err := c.SendDelta(&req); err != nil {
			r.ConnErrors++
			return
		}
		if err := c.Flush(); err != nil {
			r.ConnErrors++
			return
		}
		if err := c.RecvDelta(&resp); err != nil {
			r.ConnErrors++
			return
		}
		if resp.ID != req.ID {
			r.ConnErrors++
			return
		}
		r.count(resp.Status, time.Since(t0), wireTrace(resp.Trace))
		if resp.Status == http.StatusTooManyRequests {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// runWireSetClient drives set requests over one persistent wire
// connection, one plan in flight — set planning is server-side CPU work,
// so pipelining sets would only measure queueing.
func runWireSetClient(o loadOptions, budget *budgeter, gen *setGen, r *report) {
	c, err := wire.Dial(o.wireAddr, 10*time.Second)
	if err != nil {
		r.ConnErrors++
		return
	}
	defer c.Close()

	var req wire.SetRequest
	var resp wire.SetResponse
	id := uint64(1)
	for budget.take() {
		s, err := gen.next()
		if err != nil {
			r.ConnErrors++
			return
		}
		req.ID = id
		id++
		req.N = s.N
		req.Pairs = req.Pairs[:0]
		for _, cm := range s.Comms {
			req.Pairs = append(req.Pairs, [2]int{cm.Src, cm.Dst})
		}
		t0 := time.Now()
		if err := c.SendSet(&req); err != nil {
			r.ConnErrors++
			return
		}
		if err := c.Flush(); err != nil {
			r.ConnErrors++
			return
		}
		if err := c.RecvSet(&resp); err != nil {
			r.ConnErrors++
			return
		}
		if resp.ID != req.ID {
			r.ConnErrors++
			return
		}
		r.count(resp.Status, time.Since(t0), wireTrace(resp.Trace))
	}
}

// runWireClient drives one persistent wire connection with up to
// o.pipeline requests in flight, correlating answers by id. A transport
// failure ends the client (its unresolved in-flight requests count as
// connection errors — they were sent and never answered).
func runWireClient(o loadOptions, budget *budgeter, gen *pairGen, r *report) {
	c, err := wire.Dial(o.wireAddr, 10*time.Second)
	if err != nil {
		r.ConnErrors++
		return
	}
	defer c.Close()

	inflight := make(map[uint64]time.Time, o.pipeline)
	nextID := uint64(1)
	var resp wire.Response

	// recvOne blocks for one answer and counts it; false ends the client.
	recvOne := func() bool {
		if err := c.Recv(&resp); err != nil {
			r.ConnErrors += len(inflight)
			return false
		}
		t0, ok := inflight[resp.ID]
		if !ok {
			// An answer we never asked for: the stream is unusable.
			r.ConnErrors += len(inflight) + 1
			return false
		}
		delete(inflight, resp.ID)
		r.count(resp.Status, time.Since(t0), wireTrace(resp.Trace))
		if resp.Status == http.StatusTooManyRequests {
			time.Sleep(200 * time.Microsecond)
		}
		return true
	}

	for {
		sent := 0
		for len(inflight) < o.pipeline && budget.take() {
			src, dst := gen.next()
			id := nextID
			nextID++
			inflight[id] = time.Now()
			if err := c.Send(&wire.Request{ID: id, Src: src, Dst: dst, DeadlineMS: o.deadlineMS}); err != nil {
				r.ConnErrors += len(inflight)
				return
			}
			sent++
		}
		if len(inflight) == 0 {
			return // budget exhausted and everything answered
		}
		if err := c.Flush(); err != nil {
			r.ConnErrors += len(inflight)
			return
		}
		if sent == 0 {
			// Budget exhausted: drain the tail.
			for len(inflight) > 0 {
				if !recvOne() {
					return
				}
			}
			return
		}
		if !recvOne() {
			return
		}
	}
}

// writeBench emits the report as `go test -bench` result lines, the format
// cmd/benchjson ingests. The throughput line carries a req/s extra metric
// (higher is better, and the ledger gate treats it as such); wire runs use
// a Wire infix so the two protocols stay separate series.
func writeBench(w io.Writer, r *report) {
	n := r.Scheduled
	if n == 0 {
		return
	}
	name := "BenchmarkServe"
	switch {
	case r.SetMode:
		name = "BenchmarkHybrid"
	case r.DeltaMode:
		name = "BenchmarkDelta"
	}
	if r.Wire {
		name += "Wire"
	}
	perOp := float64(r.Elapsed.Nanoseconds()) / float64(n)
	fmt.Fprintf(w, "%sThroughput %d %.1f ns/op %.1f req/s\n", name, n, perOp, r.throughput())
	fmt.Fprintf(w, "%sLatencyP50 %d %d ns/op\n", name, n, r.quantile(0.50).Nanoseconds())
	fmt.Fprintf(w, "%sLatencyP90 %d %d ns/op\n", name, n, r.quantile(0.90).Nanoseconds())
	fmt.Fprintf(w, "%sLatencyP99 %d %d ns/op\n", name, n, r.quantile(0.99).Nanoseconds())
	fmt.Fprintf(w, "%sLatencyMax %d %d ns/op\n", name, n, r.max().Nanoseconds())
	// One machine-readable trace line rides along with the bench output:
	// benchjson skips non-Benchmark lines, so the same stdout pipes into
	// both the perf ledger and trace-chasing scripts.
	line, _ := json.Marshal(struct {
		Slow   []slowTrace   `json:"slow_traces"`
		Failed []failedTrace `json:"failed_traces"`
	}{r.slowest(5), r.Failed})
	fmt.Fprintf(w, "%s\n", line)
}

func writeSummary(w io.Writer, r *report) {
	proto := "http"
	if r.Wire {
		proto = "wire"
	}
	fmt.Fprintf(w, "cstload: [%s] %d scheduled, %d backpressured (429), %d connection errors in %v\n",
		proto, r.Scheduled, r.Rejected, r.ConnErrors, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "cstload: %.1f req/s over %d samples, p50 %v, p90 %v, p99 %v, max %v\n",
		r.throughput(), len(r.Latencies),
		r.quantile(0.50).Round(time.Microsecond), r.quantile(0.90).Round(time.Microsecond),
		r.quantile(0.99).Round(time.Microsecond), r.max().Round(time.Microsecond))
	for code, count := range r.Unexpected {
		fmt.Fprintf(w, "cstload: %d unexpected responses with status %d\n", count, code)
	}
	if slow := r.slowest(5); len(slow) > 0 {
		var parts []string
		for _, s := range slow {
			id := s.TraceID
			if id == "" {
				id = "-" // request was not sampled; no server-side span tree
			}
			parts = append(parts, fmt.Sprintf("%s (%v)", id, time.Duration(s.LatencyNS).Round(time.Microsecond)))
		}
		fmt.Fprintf(w, "cstload: slowest traces: %s\n", strings.Join(parts, ", "))
	}
	for _, f := range r.Failed {
		fmt.Fprintf(w, "cstload: failed request: status %d trace %s\n", f.Status, f.TraceID)
	}
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writeSummary(os.Stderr, r)
	writeBench(os.Stdout, r)
	if len(r.Unexpected) > 0 || r.ConnErrors > 0 {
		os.Exit(1)
	}
}

package main

import (
	"bytes"
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cst"
)

func startPool(t *testing.T) (*cst.ServePool, *httptest.Server) {
	t.Helper()
	reg := cst.NewMetrics()
	pool, err := cst.NewServePool(cst.ServeConfig{PEs: 16, Shards: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	pool.Start()
	pl := cst.NewServePlanner(cst.ServePlannerConfig{Registry: reg})
	srv := httptest.NewServer(cst.NewServeHandler(pool, pl, reg, nil))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Drain(ctx)
	})
	return pool, srv
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "http://x:1/", "-clients", "2", "-requests", "10"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "http://x:1" {
		t.Errorf("addr not trimmed: %q", o.addr)
	}
	if o.clients != 2 || o.requests != 10 {
		t.Errorf("parsed %+v", o)
	}
	if _, err := parseFlags([]string{"-clients", "0"}); err == nil {
		t.Error("-clients 0: want error")
	}
}

// TestRunAgainstPool drives a real pool end to end: PE discovery via
// /statusz, a fixed request budget, and a report with only expected
// statuses and sane latency quantiles.
func TestRunAgainstPool(t *testing.T) {
	_, srv := startPool(t)
	r, err := run(loadOptions{addr: srv.URL, clients: 3, requests: 60, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Scheduled + r.Rejected; got != 60 {
		t.Fatalf("scheduled %d + rejected %d != 60", r.Scheduled, r.Rejected)
	}
	if len(r.Unexpected) != 0 {
		t.Fatalf("unexpected statuses: %v", r.Unexpected)
	}
	if r.Scheduled == 0 {
		t.Fatal("nothing scheduled")
	}
	if len(r.Latencies) != r.Scheduled {
		t.Fatalf("%d latencies for %d scheduled", len(r.Latencies), r.Scheduled)
	}
	if r.quantile(0.99) < r.quantile(0.50) {
		t.Fatalf("p99 %v < p50 %v", r.quantile(0.99), r.quantile(0.50))
	}
	if r.throughput() <= 0 {
		t.Fatalf("throughput %f", r.throughput())
	}
}

// TestWriteBench pins the stdout format cmd/benchjson ingests. The
// latencies are deliberately unsorted: the quantiles route through
// internal/stats, which sorts its own copy.
func TestWriteBench(t *testing.T) {
	r := &report{
		Elapsed:   time.Second,
		Scheduled: 2,
		Latencies: []time.Duration{3 * time.Millisecond, time.Millisecond},
	}
	var b bytes.Buffer
	writeBench(&b, r)
	for _, line := range []string{
		"BenchmarkServeThroughput 2 500000000.0 ns/op",
		"BenchmarkServeLatencyP50 2 1000000 ns/op",
		"BenchmarkServeLatencyP90 2 3000000 ns/op",
		"BenchmarkServeLatencyP99 2 3000000 ns/op",
		"BenchmarkServeLatencyMax 2 3000000 ns/op",
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("bench output missing %q:\n%s", line, b.String())
		}
	}
	b.Reset()
	writeBench(&b, &report{Elapsed: time.Second})
	if b.Len() != 0 {
		t.Errorf("empty run emitted bench lines: %q", b.String())
	}
}

// TestQuantilesUnsorted pins the bug the stats routing fixed: quantiles on
// latencies that arrive unsorted (clients finish interleaved) must still be
// order statistics, and the summary must expose sample count and max.
func TestQuantilesUnsorted(t *testing.T) {
	r := &report{Elapsed: time.Second, Scheduled: 4}
	for _, ms := range []int{40, 10, 30, 20} {
		r.Latencies = append(r.Latencies, time.Duration(ms)*time.Millisecond)
	}
	if got := r.quantile(0.50); got != 20*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.max(); got != 40*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	var b bytes.Buffer
	writeSummary(&b, r)
	if !strings.Contains(b.String(), "over 4 samples") || !strings.Contains(b.String(), "max 40ms") {
		t.Errorf("summary missing count/max:\n%s", b.String())
	}
}

// startWirePool adds a wire listener next to the HTTP test server so wire
// runs can still discover PEs over /statusz.
func startWirePool(t *testing.T) (srvURL, wireAddr string) {
	t.Helper()
	pool, srv := startPool(t)
	ws := cst.NewWireServer(pool, cst.WireConfig{
		Planner: cst.NewServePlanner(cst.ServePlannerConfig{}),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Drain(ctx)
		_ = ws.Shutdown(ctx)
	})
	return srv.URL, ln.Addr().String()
}

// TestRunWireAgainstPool drives the wire mode end to end with pipelining:
// the full budget is answered, ids correlate, and no connection errors.
func TestRunWireAgainstPool(t *testing.T) {
	srvURL, wireAddr := startWirePool(t)
	r, err := run(loadOptions{addr: srvURL, wireAddr: wireAddr,
		clients: 3, pipeline: 8, requests: 90, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Wire {
		t.Error("report not flagged as wire")
	}
	if got := r.Scheduled + r.Rejected; got != 90 {
		t.Fatalf("scheduled %d + rejected %d != 90", r.Scheduled, r.Rejected)
	}
	if r.ConnErrors != 0 {
		t.Fatalf("connection errors: %d", r.ConnErrors)
	}
	if len(r.Unexpected) != 0 {
		t.Fatalf("unexpected statuses: %v", r.Unexpected)
	}
	if len(r.Latencies) != r.Scheduled {
		t.Fatalf("%d latencies for %d scheduled", len(r.Latencies), r.Scheduled)
	}
}

// TestRunWireConnError pins the satellite fix: a dead wire endpoint is a
// connection error, not an entry in the Unexpected status map.
func TestRunWireConnError(t *testing.T) {
	r, err := run(loadOptions{wireAddr: "127.0.0.1:1", clients: 2, pipeline: 4,
		requests: 10, pes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.ConnErrors == 0 {
		t.Error("dead endpoint produced no connection errors")
	}
	if len(r.Unexpected) != 0 {
		t.Errorf("dead endpoint leaked into Unexpected: %v", r.Unexpected)
	}
	if r.Scheduled != 0 {
		t.Errorf("scheduled %d against a dead endpoint", r.Scheduled)
	}
}

// TestWriteBenchWire pins the Wire series naming and the req/s extra the
// ledger splits protocols on.
func TestWriteBenchWire(t *testing.T) {
	r := &report{
		Wire:      true,
		Elapsed:   time.Second,
		Scheduled: 2,
		Latencies: []time.Duration{3 * time.Millisecond, time.Millisecond},
	}
	var b bytes.Buffer
	writeBench(&b, r)
	for _, line := range []string{
		"BenchmarkServeWireThroughput 2 500000000.0 ns/op 2.0 req/s",
		"BenchmarkServeWireLatencyP50 2 1000000 ns/op",
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("bench output missing %q:\n%s", line, b.String())
		}
	}
}

// TestRunSetAgainstPool drives the hybrid set mode over HTTP: every
// generated crossing set must come back planned (200), no unexpected
// statuses.
func TestRunSetAgainstPool(t *testing.T) {
	_, srv := startPool(t)
	r, err := run(loadOptions{addr: srv.URL, clients: 2, requests: 20, seed: 7,
		setWorkload: "crossing", setSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r.SetMode {
		t.Error("report not flagged as set mode")
	}
	if r.Scheduled != 20 {
		t.Fatalf("planned %d of 20 (unexpected %v, conn errors %d)",
			r.Scheduled, r.Unexpected, r.ConnErrors)
	}
	if len(r.Unexpected) != 0 || r.ConnErrors != 0 {
		t.Fatalf("unexpected %v, conn errors %d", r.Unexpected, r.ConnErrors)
	}
}

// TestRunWireSetAgainstPool drives the same set workloads over the wire
// protocol, including the non-deterministic two-sided random shape.
func TestRunWireSetAgainstPool(t *testing.T) {
	srvURL, wireAddr := startWirePool(t)
	for _, workload := range []string{"bitrev", "random"} {
		r, err := run(loadOptions{addr: srvURL, wireAddr: wireAddr,
			clients: 2, pipeline: 1, requests: 10, seed: 7,
			setWorkload: workload, setSize: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Wire || !r.SetMode {
			t.Errorf("%s: report flags wire=%v set=%v", workload, r.Wire, r.SetMode)
		}
		if r.Scheduled != 10 {
			t.Fatalf("%s: planned %d of 10 (unexpected %v, conn errors %d)",
				workload, r.Scheduled, r.Unexpected, r.ConnErrors)
		}
	}
}

// TestWriteBenchHybrid pins the Hybrid series naming on both transports.
func TestWriteBenchHybrid(t *testing.T) {
	r := &report{
		SetMode:   true,
		Elapsed:   time.Second,
		Scheduled: 2,
		Latencies: []time.Duration{3 * time.Millisecond, time.Millisecond},
	}
	var b bytes.Buffer
	writeBench(&b, r)
	if !strings.Contains(b.String(), "BenchmarkHybridThroughput 2 500000000.0 ns/op 2.0 req/s") {
		t.Errorf("bench output missing Hybrid series:\n%s", b.String())
	}
	r.Wire = true
	b.Reset()
	writeBench(&b, r)
	if !strings.Contains(b.String(), "BenchmarkHybridWireLatencyP50 2 1000000 ns/op") {
		t.Errorf("bench output missing HybridWire series:\n%s", b.String())
	}
}

func TestDiscoverPEsFailure(t *testing.T) {
	if _, err := run(loadOptions{addr: "http://127.0.0.1:1", clients: 1, requests: 1}); err == nil {
		t.Error("unreachable server: want error")
	}
}

package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cst"
)

func startPool(t *testing.T) (*cst.ServePool, *httptest.Server) {
	t.Helper()
	reg := cst.NewMetrics()
	pool, err := cst.NewServePool(cst.ServeConfig{PEs: 16, Shards: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	pool.Start()
	srv := httptest.NewServer(cst.NewServeHandler(pool, reg, nil))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Drain(ctx)
	})
	return pool, srv
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "http://x:1/", "-clients", "2", "-requests", "10"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "http://x:1" {
		t.Errorf("addr not trimmed: %q", o.addr)
	}
	if o.clients != 2 || o.requests != 10 {
		t.Errorf("parsed %+v", o)
	}
	if _, err := parseFlags([]string{"-clients", "0"}); err == nil {
		t.Error("-clients 0: want error")
	}
}

// TestRunAgainstPool drives a real pool end to end: PE discovery via
// /statusz, a fixed request budget, and a report with only expected
// statuses and sane latency quantiles.
func TestRunAgainstPool(t *testing.T) {
	_, srv := startPool(t)
	r, err := run(loadOptions{addr: srv.URL, clients: 3, requests: 60, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Scheduled + r.Rejected; got != 60 {
		t.Fatalf("scheduled %d + rejected %d != 60", r.Scheduled, r.Rejected)
	}
	if len(r.Unexpected) != 0 {
		t.Fatalf("unexpected statuses: %v", r.Unexpected)
	}
	if r.Scheduled == 0 {
		t.Fatal("nothing scheduled")
	}
	if len(r.Latencies) != r.Scheduled {
		t.Fatalf("%d latencies for %d scheduled", len(r.Latencies), r.Scheduled)
	}
	if r.quantile(0.99) < r.quantile(0.50) {
		t.Fatalf("p99 %v < p50 %v", r.quantile(0.99), r.quantile(0.50))
	}
	if r.throughput() <= 0 {
		t.Fatalf("throughput %f", r.throughput())
	}
}

// TestWriteBench pins the stdout format cmd/benchjson ingests. The
// latencies are deliberately unsorted: the quantiles route through
// internal/stats, which sorts its own copy.
func TestWriteBench(t *testing.T) {
	r := &report{
		Elapsed:   time.Second,
		Scheduled: 2,
		Latencies: []time.Duration{3 * time.Millisecond, time.Millisecond},
	}
	var b bytes.Buffer
	writeBench(&b, r)
	for _, line := range []string{
		"BenchmarkServeThroughput 2 500000000.0 ns/op",
		"BenchmarkServeLatencyP50 2 1000000 ns/op",
		"BenchmarkServeLatencyP90 2 3000000 ns/op",
		"BenchmarkServeLatencyP99 2 3000000 ns/op",
		"BenchmarkServeLatencyMax 2 3000000 ns/op",
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("bench output missing %q:\n%s", line, b.String())
		}
	}
	b.Reset()
	writeBench(&b, &report{Elapsed: time.Second})
	if b.Len() != 0 {
		t.Errorf("empty run emitted bench lines: %q", b.String())
	}
}

// TestQuantilesUnsorted pins the bug the stats routing fixed: quantiles on
// latencies that arrive unsorted (clients finish interleaved) must still be
// order statistics, and the summary must expose sample count and max.
func TestQuantilesUnsorted(t *testing.T) {
	r := &report{Elapsed: time.Second, Scheduled: 4}
	for _, ms := range []int{40, 10, 30, 20} {
		r.Latencies = append(r.Latencies, time.Duration(ms)*time.Millisecond)
	}
	if got := r.quantile(0.50); got != 20*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.max(); got != 40*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	var b bytes.Buffer
	writeSummary(&b, r)
	if !strings.Contains(b.String(), "over 4 samples") || !strings.Contains(b.String(), "max 40ms") {
		t.Errorf("summary missing count/max:\n%s", b.String())
	}
}

func TestDiscoverPEsFailure(t *testing.T) {
	if _, err := run(loadOptions{addr: "http://127.0.0.1:1", clients: 1, requests: 1}); err == nil {
		t.Error("unreachable server: want error")
	}
}

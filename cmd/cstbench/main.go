// Command cstbench regenerates the paper-reproduction experiments (DESIGN.md
// §3, E1–E9) and prints the markdown tables recorded in EXPERIMENTS.md.
//
// Every run is instrumented: engines publish their metric series to one
// long-lived registry and a per-experiment summary table (latency
// quantiles, messages per round, changes per switch) follows each report.
// With -metrics-addr the same registry is also served live over HTTP.
//
// Examples:
//
//	cstbench                 # run everything, full sweeps
//	cstbench -exp E2,E9      # only the power experiments
//	cstbench -quick          # reduced sweeps (CI-sized)
//	cstbench -out report.md  # write to a file
//	cstbench -metrics-addr :9090   # watch progress: curl :9090/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cst"
	"cst/internal/lab"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs (E1..E9) or \"all\"")
		seed      = flag.Int64("seed", 42, "random seed for every experiment")
		quick     = flag.Bool("quick", false, "reduced sweep sizes")
		out       = flag.String("out", "", "output file (default stdout)")
		maddr     = flag.String("metrics-addr", "", "serve /metrics, /trace and /debug/pprof/ on this address during the run")
		summary   = flag.Bool("metrics-summary", true, "print a per-experiment metrics summary table")
		audit     = flag.Bool("audit", false, "run the power auditor live over the experiments and print its verdict")
		auditHTML = flag.String("audit-html", "", "write the audit report as HTML to this file (implies -audit)")
		ledger    = flag.String("ledger", "", "append per-experiment wall-clock entries to this JSONL perf-lab ledger")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cstbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	reg := cst.NewMetrics()
	tracer := cst.NewTracer(nil, 0)
	cfg := cst.ExperimentConfig{Seed: *seed, Quick: *quick, Obs: reg, Trace: tracer}
	var entries []lab.Entry
	if *ledger != "" {
		cfg.Ledger = &entries
	}
	var auditor *cst.Auditor
	if *audit || *auditHTML != "" {
		auditor = cst.NewAuditor(cst.AuditConfig{Registry: reg})
		cfg.Audit = auditor
	}
	if *maddr != "" {
		srv, err := cst.ServeMetrics(*maddr, reg, tracer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cstbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cstbench: observability endpoint on http://%s (/metrics /trace /debug/pprof/)\n", srv.Addr)
	}
	fmt.Fprintf(w, "# CST/PADR reproduction experiments (seed=%d quick=%v)\n\n", *seed, *quick)

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = nil
		for _, e := range cst.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := cst.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "cstbench: unknown experiment %q\n", id)
			os.Exit(1)
		}
		// Snapshot before/after so each experiment's table reflects only
		// its own activity while the live registry keeps accumulating.
		before := reg.Snapshot()
		if err := cst.RunExperiment(w, e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "cstbench:", err)
			os.Exit(1)
		}
		if *summary {
			fmt.Fprintf(w, "Engine metrics for %s:\n\n%s\n", e.ID, cst.MetricsSummary(reg.Snapshot().Sub(before)))
		}
	}

	if *ledger != "" {
		st := lab.NewStamp("cstbench", "")
		for i := range entries {
			entries[i] = st.Apply(entries[i])
		}
		if err := lab.Append(*ledger, entries); err != nil {
			fmt.Fprintln(os.Stderr, "cstbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cstbench: appended %d entries to %s\n", len(entries), *ledger)
	}

	if auditor != nil {
		auditor.Flush()
		rep := auditor.Report()
		fmt.Fprintf(w, "## Power audit\n\n%s\n", rep.Summary())
		if *auditHTML != "" {
			f, err := os.Create(*auditHTML)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cstbench:", err)
				os.Exit(1)
			}
			if err := rep.WriteHTML(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "cstbench:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cstbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cstbench: audit report written to %s\n", *auditHTML)
		}
		if !rep.Clean() {
			fmt.Fprintf(os.Stderr, "cstbench: power audit raised %d violation(s)\n", len(rep.Violations))
			os.Exit(1)
		}
	}
}

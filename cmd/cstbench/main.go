// Command cstbench regenerates the paper-reproduction experiments (DESIGN.md
// §3, E1–E9) and prints the markdown tables recorded in EXPERIMENTS.md.
//
// Examples:
//
//	cstbench                 # run everything, full sweeps
//	cstbench -exp E2,E9      # only the power experiments
//	cstbench -quick          # reduced sweeps (CI-sized)
//	cstbench -out report.md  # write to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cst"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment IDs (E1..E9) or \"all\"")
		seed  = flag.Int64("seed", 42, "random seed for every experiment")
		quick = flag.Bool("quick", false, "reduced sweep sizes")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cstbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	cfg := cst.ExperimentConfig{Seed: *seed, Quick: *quick}
	fmt.Fprintf(w, "# CST/PADR reproduction experiments (seed=%d quick=%v)\n\n", *seed, *quick)

	if *exp == "all" {
		if err := cst.RunExperiments(w, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "cstbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(id)
		e, ok := cst.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "cstbench: unknown experiment %q\n", id)
			os.Exit(1)
		}
		if err := cst.RunExperiment(w, e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "cstbench:", err)
			os.Exit(1)
		}
	}
}

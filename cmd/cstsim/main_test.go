package main

import (
	"testing"

	"cst"
)

func TestBuildSetWorkloads(t *testing.T) {
	cases := []struct {
		workload string
		wantLen  int
	}{
		{"chain", 8},
		{"split", 8},
		{"compact", 8},
		{"pairs", 16},
		{"forest", 32},
		{"staircase", 17},
		{"bitrev", 28},
		{"random", 16},
	}
	for _, c := range cases {
		set, err := buildSet("", c.workload, 64, 8, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.workload, err)
		}
		if set.Len() != c.wantLen {
			t.Errorf("%s: %d comms, want %d", c.workload, set.Len(), c.wantLen)
		}
	}
	if _, err := buildSet("", "nope", 64, 8, 16, 1); err == nil {
		t.Error("unknown workload: want error")
	}
	set, err := buildSet("(())", "chain", 64, 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.N != 4 {
		t.Errorf("-set must override -workload, got N=%d", set.N)
	}
	if _, err := buildSet(")(", "chain", 64, 8, 16, 1); err == nil {
		t.Error("bad expression: want error")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"padr", "padr-sim", "depth-id", "greedy"} {
		if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1, algo: algo, order: "outermost", mode: "stateful", quiet: true}); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1, algo: "nope", order: "outermost", mode: "stateful", quiet: true}); err == nil {
		t.Error("unknown algorithm: want error")
	}
	if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1, algo: "depth-id", order: "nope", mode: "stateful", quiet: true}); err == nil {
		t.Error("unknown order: want error")
	}
	if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1, algo: "padr", order: "outermost", mode: "nope", quiet: true}); err == nil {
		t.Error("unknown mode: want error")
	}
	// The crossing bit-reversal workload cannot go through PADR.
	if err := run(runOpts{workload: "bitrev", n: 32, w: 4, m: 8, seed: 1, algo: "padr", order: "outermost", mode: "stateful", quiet: true}); err == nil {
		t.Error("bitrev through padr: want error")
	}
	if err := run(runOpts{workload: "bitrev", n: 32, w: 4, m: 8, seed: 1, algo: "greedy", order: "outermost", mode: "stateful", quiet: true}); err != nil {
		t.Errorf("bitrev through greedy: %v", err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := runJSON("", "chain", 32, 4, 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := runJSON(")(", "chain", 32, 4, 8, 1); err == nil {
		t.Error("bad expression: want error")
	}
}

func TestRunPublishesMetrics(t *testing.T) {
	reg := cst.NewMetrics()
	tracer := cst.NewTracer(nil, 1024)
	for _, algo := range []string{"padr", "padr-sim"} {
		if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1,
			algo: algo, order: "outermost", mode: "stateful", quiet: true,
			reg: reg, tracer: tracer}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cst_padr_runs_total"]; got != 1 {
		t.Errorf("cst_padr_runs_total = %d, want 1", got)
	}
	if got := snap.Counters["cst_sim_runs_total"]; got != 1 {
		t.Errorf("cst_sim_runs_total = %d, want 1", got)
	}
	series := len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms)
	if series < 10 {
		t.Errorf("registry exposes %d series, want >= 10", series)
	}
	if tracer.Events() == 0 {
		t.Error("tracer saw no events")
	}
}

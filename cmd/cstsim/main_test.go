package main

import (
	"testing"
)

func TestBuildSetWorkloads(t *testing.T) {
	cases := []struct {
		workload string
		wantLen  int
	}{
		{"chain", 8},
		{"split", 8},
		{"compact", 8},
		{"pairs", 16},
		{"forest", 32},
		{"staircase", 17},
		{"bitrev", 28},
		{"random", 16},
	}
	for _, c := range cases {
		set, err := buildSet("", c.workload, 64, 8, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.workload, err)
		}
		if set.Len() != c.wantLen {
			t.Errorf("%s: %d comms, want %d", c.workload, set.Len(), c.wantLen)
		}
	}
	if _, err := buildSet("", "nope", 64, 8, 16, 1); err == nil {
		t.Error("unknown workload: want error")
	}
	set, err := buildSet("(())", "chain", 64, 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.N != 4 {
		t.Errorf("-set must override -workload, got N=%d", set.N)
	}
	if _, err := buildSet(")(", "chain", 64, 8, 16, 1); err == nil {
		t.Error("bad expression: want error")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"padr", "padr-sim", "depth-id", "greedy"} {
		if err := run("", "chain", 32, 4, 8, 1, algo, "outermost", "stateful", false, false, true); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	if err := run("", "chain", 32, 4, 8, 1, "nope", "outermost", "stateful", false, false, true); err == nil {
		t.Error("unknown algorithm: want error")
	}
	if err := run("", "chain", 32, 4, 8, 1, "depth-id", "nope", "stateful", false, false, true); err == nil {
		t.Error("unknown order: want error")
	}
	if err := run("", "chain", 32, 4, 8, 1, "padr", "outermost", "nope", false, false, true); err == nil {
		t.Error("unknown mode: want error")
	}
	// The crossing bit-reversal workload cannot go through PADR.
	if err := run("", "bitrev", 32, 4, 8, 1, "padr", "outermost", "stateful", false, false, true); err == nil {
		t.Error("bitrev through padr: want error")
	}
	if err := run("", "bitrev", 32, 4, 8, 1, "greedy", "outermost", "stateful", false, false, true); err != nil {
		t.Errorf("bitrev through greedy: %v", err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := runJSON("", "chain", 32, 4, 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := runJSON(")(", "chain", 32, 4, 8, 1); err == nil {
		t.Error("bad expression: want error")
	}
}

package main

import (
	"os"
	"testing"

	"cst"
)

func TestBuildSetWorkloads(t *testing.T) {
	cases := []struct {
		workload string
		wantLen  int
	}{
		{"chain", 8},
		{"split", 8},
		{"compact", 8},
		{"pairs", 16},
		{"forest", 32},
		{"staircase", 17},
		{"bitrev", 28},
		{"random", 16},
	}
	for _, c := range cases {
		set, err := buildSet("", c.workload, 64, 8, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.workload, err)
		}
		if set.Len() != c.wantLen {
			t.Errorf("%s: %d comms, want %d", c.workload, set.Len(), c.wantLen)
		}
	}
	if _, err := buildSet("", "nope", 64, 8, 16, 1); err == nil {
		t.Error("unknown workload: want error")
	}
	set, err := buildSet("(())", "chain", 64, 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.N != 4 {
		t.Errorf("-set must override -workload, got N=%d", set.N)
	}
	if _, err := buildSet(")(", "chain", 64, 8, 16, 1); err == nil {
		t.Error("bad expression: want error")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"padr", "padr-sim", "depth-id", "greedy"} {
		if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1, algo: algo, order: "outermost", mode: "stateful", quiet: true}); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1, algo: "nope", order: "outermost", mode: "stateful", quiet: true}); err == nil {
		t.Error("unknown algorithm: want error")
	}
	if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1, algo: "depth-id", order: "nope", mode: "stateful", quiet: true}); err == nil {
		t.Error("unknown order: want error")
	}
	if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1, algo: "padr", order: "outermost", mode: "nope", quiet: true}); err == nil {
		t.Error("unknown mode: want error")
	}
	// The crossing bit-reversal workload cannot go through PADR.
	if err := run(runOpts{workload: "bitrev", n: 32, w: 4, m: 8, seed: 1, algo: "padr", order: "outermost", mode: "stateful", quiet: true}); err == nil {
		t.Error("bitrev through padr: want error")
	}
	if err := run(runOpts{workload: "bitrev", n: 32, w: 4, m: 8, seed: 1, algo: "greedy", order: "outermost", mode: "stateful", quiet: true}); err != nil {
		t.Errorf("bitrev through greedy: %v", err)
	}
}

// TestTraceFlagInteractions pins the -trace/-words/-quiet contract: -words
// implies -trace (both produce the observer-driven console trace), the
// console trace exists only on the padr path (other algorithms must reject
// the flags instead of silently ignoring them), and -quiet ("only the
// summary line") contradicts both.
func TestTraceFlagInteractions(t *testing.T) {
	base := runOpts{workload: "chain", n: 16, w: 2, m: 4, seed: 1,
		order: "outermost", mode: "stateful"}

	// -words alone works on padr: the implied trace machinery comes up.
	for _, o := range []runOpts{
		{algo: "padr", words: true},
		{algo: "padr", trace: true},
		{algo: "padr", trace: true, words: true},
	} {
		o.workload, o.n, o.w, o.m, o.seed, o.order, o.mode =
			base.workload, base.n, base.w, base.m, base.seed, base.order, base.mode
		// Silence the trace output during the test run.
		old := os.Stdout
		null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = null
		err = run(o)
		os.Stdout = old
		null.Close()
		if err != nil {
			t.Errorf("padr trace=%v words=%v: %v", o.trace, o.words, err)
		}
	}

	// Non-padr algorithms must reject the console-trace flags.
	for _, algo := range []string{"padr-sim", "depth-id", "greedy"} {
		o := base
		o.algo, o.words = algo, true
		if err := run(o); err == nil {
			t.Errorf("%s with -words: want error, got nil", algo)
		}
		o.words, o.trace = false, true
		if err := run(o); err == nil {
			t.Errorf("%s with -trace: want error, got nil", algo)
		}
	}

	// -quiet contradicts -trace and -words.
	for _, o := range []runOpts{
		{algo: "padr", quiet: true, trace: true},
		{algo: "padr", quiet: true, words: true},
	} {
		o.workload, o.n, o.w, o.m, o.seed, o.order, o.mode =
			base.workload, base.n, base.w, base.m, base.seed, base.order, base.mode
		if err := run(o); err == nil {
			t.Errorf("quiet with trace=%v words=%v: want error, got nil", o.trace, o.words)
		}
	}
}

func TestRunJSON(t *testing.T) {
	if err := runJSON("", "chain", 32, 4, 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := runJSON(")(", "chain", 32, 4, 8, 1); err == nil {
		t.Error("bad expression: want error")
	}
}

func TestRunPublishesMetrics(t *testing.T) {
	reg := cst.NewMetrics()
	tracer := cst.NewTracer(nil, 1024)
	for _, algo := range []string{"padr", "padr-sim"} {
		if err := run(runOpts{workload: "chain", n: 32, w: 4, m: 8, seed: 1,
			algo: algo, order: "outermost", mode: "stateful", quiet: true,
			reg: reg, tracer: tracer}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cst_padr_runs_total"]; got != 1 {
		t.Errorf("cst_padr_runs_total = %d, want 1", got)
	}
	if got := snap.Counters["cst_sim_runs_total"]; got != 1 {
		t.Errorf("cst_sim_runs_total = %d, want 1", got)
	}
	series := len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms)
	if series < 10 {
		t.Errorf("registry exposes %d series, want >= 10", series)
	}
	if tracer.Events() == 0 {
		t.Error("tracer saw no events")
	}
}

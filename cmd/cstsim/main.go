// Command cstsim runs one communication set through a scheduler on the CST
// and prints the schedule, the power ledger and (optionally) a round-by-
// round trace.
//
// Examples:
//
//	cstsim -set "((.)(.))"
//	cstsim -workload chain -n 64 -w 16 -algo padr -trace
//	cstsim -workload split -n 256 -w 32 -algo depth-id -order alternating
//	cstsim -workload random -n 128 -m 40 -seed 7 -algo padr-sim
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cst"
)

func main() {
	var (
		setExpr  = flag.String("set", "", "parenthesis expression, e.g. \"((.)(.))\" (overrides -workload)")
		workload = flag.String("workload", "random", "workload generator: chain | split | compact | pairs | forest | staircase | bitrev | random")
		n        = flag.Int("n", 64, "number of PEs (power of two)")
		w        = flag.Int("w", 8, "target width for chain/split/compact workloads")
		m        = flag.Int("m", 16, "number of communications for random/pairs workloads")
		seed     = flag.Int64("seed", 1, "random seed")
		algo     = flag.String("algo", "padr", "scheduler: padr | padr-sim | depth-id | greedy")
		order    = flag.String("order", "outermost", "depth-id round order: outermost | innermost | alternating")
		mode     = flag.String("mode", "stateful", "power accounting: stateful | stateless")
		showTr   = flag.Bool("trace", false, "print a round-by-round trace with live switch configurations (padr only, conflicts with -quiet)")
		words    = flag.Bool("words", false, "print every non-idle control word (implies -trace; padr only, conflicts with -quiet)")
		quiet    = flag.Bool("quiet", false, "print only the summary line")
		jsonOut  = flag.Bool("json", false, "emit the full run as JSON (padr only) instead of text")
		maddr    = flag.String("metrics-addr", "", "serve /metrics, /trace and /debug/pprof/ on this address (e.g. :9090) and keep the process alive after the run")
		faults   = flag.Int("faults", 0, "inject this many random faults (padr and padr-sim only)")
		faultSd  = flag.Int64("fault-seed", 1, "random seed for the injected fault plan")
		deadline = flag.Duration("deadline", 0, "abort a padr-sim run after this long (0 = no deadline)")
		audited  = flag.Bool("audit", false, "attach the power auditor: replay every trace event through the theorem monitors and print the verdict")
		traceOut = flag.String("trace-out", "", "stream the JSONL trace to this file (for later cstaudit replay)")
	)
	flag.Parse()

	o := runOpts{
		setExpr: *setExpr, workload: *workload,
		n: *n, w: *w, m: *m, seed: *seed,
		algo: *algo, order: *order, mode: *mode,
		trace: *showTr, words: *words, quiet: *quiet,
		faults: *faults, faultSeed: *faultSd, deadline: *deadline,
	}
	var traceFile *os.File
	var srv *cst.MetricsServer
	if *maddr != "" || *audited || *traceOut != "" {
		o.reg = cst.NewMetrics()
		var w io.Writer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cstsim:", err)
				os.Exit(1)
			}
			traceFile, w = f, f
		}
		o.tracer = cst.NewTracer(w, 0)
		o.tracer.Instrument(o.reg)
	}
	if *maddr != "" {
		var err error
		srv, err = cst.ServeMetrics(*maddr, o.reg, o.tracer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cstsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cstsim: observability endpoint on http://%s (/metrics /trace /debug/pprof/)\n", srv.Addr)
	}
	if *audited {
		o.auditor = cst.NewAuditor(cst.AuditConfig{Registry: o.reg})
		o.tracer.SetSink(o.auditor.Observe)
	}

	var runErr error
	if *jsonOut {
		runErr = runJSON(*setExpr, *workload, *n, *w, *m, *seed)
	} else {
		runErr = run(o)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "cstsim:", runErr)
	}

	// The audit verdict prints even after a failed run: diagnosing chaos
	// runs is what the monitors are for.
	if o.auditor != nil {
		o.auditor.Flush()
		rep := o.auditor.Report()
		fmt.Print(rep.Summary())
		if engine := auditEngine(o.algo); engine != "" && runErr == nil {
			for _, v := range o.auditor.CrossCheck(engine, o.reg.Snapshot()) {
				fmt.Printf("  ✗ %s\n", v.Error())
			}
		}
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cstsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cstsim: trace written to %s\n", *traceOut)
	}
	if runErr != nil {
		os.Exit(1)
	}

	if *maddr != "" {
		fmt.Fprintln(os.Stderr, "cstsim: run finished; serving metrics until interrupted (Ctrl-C to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		// Graceful teardown: in-flight /metrics scrapes and /trace
		// downloads finish before the process exits.
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cstsim:", err)
			os.Exit(1)
		}
	}
}

// auditEngine maps a CLI algorithm to the engine name its meters use, or
// "" when the algorithm publishes no power meters to cross-check.
func auditEngine(algo string) string {
	switch algo {
	case "padr":
		return "padr"
	case "padr-sim":
		return "sim"
	}
	return ""
}

// runOpts bundles the CLI's run parameters; reg and tracer are nil unless
// -metrics-addr is set.
type runOpts struct {
	setExpr, workload   string
	n, w, m             int
	seed                int64
	algo, order, mode   string
	trace, words, quiet bool
	faults              int
	faultSeed           int64
	deadline            time.Duration
	reg                 *cst.Metrics
	tracer              *cst.Tracer
	auditor             *cst.Auditor
}

// buildInjector draws the -faults random fault plan over the run's expected
// round count and prints it, so a failing run can be replayed exactly.
func buildInjector(o runOpts, tree *cst.Tree, set *cst.Set) (*cst.FaultInjector, error) {
	if o.faults <= 0 {
		return nil, nil
	}
	width, err := set.Width(tree)
	if err != nil {
		return nil, err
	}
	plan := cst.RandomFaults(cst.NewRand(o.faultSeed), tree, width+2, o.faults, 0)
	if !o.quiet {
		for _, f := range plan {
			fmt.Fprintf(os.Stderr, "cstsim: injecting %v\n", f)
		}
	}
	var fopts []cst.FaultOption
	if o.reg != nil {
		fopts = append(fopts, cst.WithFaultMetrics(o.reg))
	}
	return cst.NewFaultInjector(plan, fopts...), nil
}

// describeFault renders a typed engine failure for the CLI, including the
// stall diagnosis on a deadline abort.
func describeFault(err error) error {
	var fe *cst.FaultError
	if !errors.As(err, &fe) {
		return err
	}
	return fmt.Errorf("run killed by fault: %w", err)
}

func run(o runOpts) error {
	set, err := buildSet(o.setExpr, o.workload, o.n, o.w, o.m, o.seed)
	if err != nil {
		return err
	}
	tree, err := cst.NewTree(set.N)
	if err != nil {
		return err
	}
	pmode := cst.Stateful
	if o.mode == "stateless" {
		pmode = cst.Stateless
	} else if o.mode != "stateful" {
		return fmt.Errorf("unknown mode %q", o.mode)
	}
	// The round-by-round console trace (and the per-word view riding on it)
	// is produced by the sequential engine's observer, which only the padr
	// path wires up — reject the flags elsewhere rather than silently
	// ignoring them. -quiet promises "only the summary line", which the
	// trace would contradict.
	if (o.trace || o.words) && o.algo != "padr" {
		return fmt.Errorf("-trace/-words require -algo padr (got %q); use -trace-out for the JSONL event stream of other engines", o.algo)
	}
	if o.quiet && (o.trace || o.words) {
		return fmt.Errorf("-quiet conflicts with -trace and -words")
	}
	if o.faults > 0 && o.algo != "padr" && o.algo != "padr-sim" {
		return fmt.Errorf("-faults requires -algo padr or padr-sim, got %q", o.algo)
	}
	if o.deadline > 0 && o.algo != "padr-sim" {
		return fmt.Errorf("-deadline requires -algo padr-sim, got %q", o.algo)
	}
	inj, err := buildInjector(o, tree, set)
	if err != nil {
		return err
	}
	quiet := o.quiet

	if !quiet {
		fmt.Println(set.Summary())
		fmt.Print(cst.RenderSet(set))
		fmt.Println()
	}

	switch o.algo {
	case "padr":
		opts := []cst.Option{cst.WithMode(pmode)}
		if inj != nil {
			opts = append(opts, cst.WithFaults(inj))
		}
		if o.reg != nil {
			opts = append(opts, cst.WithMetrics(o.reg))
		}
		if o.tracer != nil {
			opts = append(opts, cst.WithTrace(o.tracer))
		}
		var logger interface {
			VerifyDataPlane() error
			Observer() cst.Observer
		}
		if o.trace || o.words {
			l := cst.NewRunLogger(tree, set, os.Stdout)
			l.Trees = true
			l.Words = o.words
			logger = l
			opts = append(opts, cst.WithObserver(l.Observer()))
		}
		res, err := cst.Run(tree, set, opts...)
		if err != nil {
			return describeFault(err)
		}
		if err := res.Schedule.VerifyOptimal(tree); err != nil {
			return fmt.Errorf("schedule failed verification: %v", err)
		}
		if logger != nil {
			if err := logger.VerifyDataPlane(); err != nil {
				return fmt.Errorf("data plane failed verification: %v", err)
			}
		}
		if !quiet {
			fmt.Print(res.Schedule.String())
			fmt.Println()
			fmt.Print(cst.RenderGantt(res.Schedule))
		}
		fmt.Printf("%s | width=%d rounds=%d | phase1 words=%d phase2 words=%d\n",
			res.Report.Summary(), res.Width, res.Rounds, res.UpWords, res.DownWords)
	case "padr-sim":
		var copts []cst.ConcurrentOption
		if inj != nil {
			copts = append(copts, cst.WithConcurrentFaults(inj))
		}
		if o.reg != nil {
			copts = append(copts, cst.WithConcurrentMetrics(o.reg))
		}
		if o.tracer != nil {
			copts = append(copts, cst.WithConcurrentTrace(o.tracer))
		}
		ctx := context.Background()
		if o.deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, o.deadline)
			defer cancel()
		}
		res, err := cst.RunConcurrentContext(ctx, tree, set, copts...)
		if err != nil {
			return describeFault(err)
		}
		if err := res.Schedule.VerifyOptimal(tree); err != nil {
			return fmt.Errorf("schedule failed verification: %v", err)
		}
		if !quiet {
			fmt.Print(res.Schedule.String())
		}
		fmt.Printf("%s | width=%d rounds=%d | goroutines=%d msgs=%d+%d\n",
			res.Report.Summary(), res.Width, res.Rounds, res.Goroutines,
			res.Phase1Messages, res.Phase2Messages)
	case "depth-id":
		var ord cst.BaselineOrder
		switch o.order {
		case "outermost":
			ord = cst.OutermostFirst
		case "innermost":
			ord = cst.InnermostFirst
		case "alternating":
			ord = cst.Alternating
		default:
			return fmt.Errorf("unknown order %q", o.order)
		}
		res, err := cst.RunDepthID(tree, set, ord, pmode)
		if err != nil {
			return err
		}
		if err := res.Schedule.Verify(tree); err != nil {
			return fmt.Errorf("schedule failed verification: %v", err)
		}
		if !quiet {
			fmt.Print(res.Schedule.String())
		}
		fmt.Printf("%s | width=%d rounds=%d\n", res.Report.Summary(), res.Width, res.Rounds)
	case "greedy":
		res, err := cst.RunGreedy(tree, set, pmode)
		if err != nil {
			return err
		}
		if err := res.Schedule.Verify(tree); err != nil {
			return fmt.Errorf("schedule failed verification: %v", err)
		}
		if !quiet {
			fmt.Print(res.Schedule.String())
		}
		fmt.Printf("%s | width=%d rounds=%d\n", res.Report.Summary(), res.Width, res.Rounds)
	default:
		return fmt.Errorf("unknown algorithm %q", o.algo)
	}
	return nil
}

// runJSON runs PADR and emits the machine-readable result.
func runJSON(setExpr, workload string, n, w, m int, seed int64) error {
	set, err := buildSet(setExpr, workload, n, w, m, seed)
	if err != nil {
		return err
	}
	tree, err := cst.NewTree(set.N)
	if err != nil {
		return err
	}
	res, err := cst.Run(tree, set)
	if err != nil {
		return err
	}
	if err := res.Schedule.VerifyOptimal(tree); err != nil {
		return fmt.Errorf("schedule failed verification: %v", err)
	}
	return cst.WriteResultJSON(os.Stdout, res)
}

func buildSet(setExpr, workload string, n, w, m int, seed int64) (*cst.Set, error) {
	if setExpr != "" {
		return cst.Parse(setExpr)
	}
	rng := cst.NewRand(seed)
	switch workload {
	case "chain":
		return cst.NestedChain(n, w)
	case "split":
		return cst.SplitChain(n, w)
	case "compact":
		return cst.CompactChain(n, w)
	case "pairs":
		return cst.DisjointPairs(n, m)
	case "forest":
		return cst.SiblingForest(n, 4, w)
	case "staircase":
		return cst.Staircase(n, m)
	case "bitrev":
		return cst.BitReversal(n)
	case "random":
		return cst.RandomWellNested(rng, n, m)
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
}

package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cst/internal/lab"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("32, 64,128")
	if err != nil || len(got) != 3 || got[0] != 32 || got[2] != 128 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list must error")
	}
	if _, err := parseInts("32,x"); err == nil {
		t.Error("bad integer must error")
	}
}

// TestSweepAppendsAndCheckPasses drives the lab end to end through the CLI:
// a small sweep appends to a fresh ledger, and check replays it cleanly.
func TestSweepAppendsAndCheckPasses(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	var out, errw bytes.Buffer
	code := runSweep([]string{"-n", "16,32", "-w", "2", "-engines", "padr",
		"-reps", "2", "-ledger", ledger, "-label", "cli test"}, &out, &errw)
	if code != 0 {
		t.Fatalf("sweep exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "Fitted models") {
		t.Errorf("sweep table missing models:\n%s", out.String())
	}
	entries, err := lab.ReadLedger(ledger)
	if err != nil || len(entries) == 0 {
		t.Fatalf("ledger after sweep: %d entries, err=%v", len(entries), err)
	}
	if entries[0].Label != "cli test" || entries[0].Source != "cstlab" {
		t.Errorf("provenance not stamped: %+v", entries[0])
	}

	out.Reset()
	errw.Reset()
	code = runCheck([]string{"-ledger", ledger}, &out, &errw)
	if code != 0 {
		t.Fatalf("check exit %d on a clean ledger\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "check: PASS") {
		t.Errorf("check output:\n%s", out.String())
	}
}

// TestCheckExitCodesInjectedRegression is the acceptance criterion at the
// CLI boundary: an artificially injected slowdown must flip the exit code.
func TestCheckExitCodesInjectedRegression(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	st := lab.Stamp{Time: time.Now().UTC(), Source: "test",
		Machine: lab.Machine{Goos: "linux", Goarch: "amd64", NumCPU: 4}}
	var entries []lab.Entry
	for _, v := range []float64{100, 102, 98, 101} {
		entries = append(entries, st.Apply(lab.Entry{Bench: "BenchmarkX", Unit: "ns/op", Value: v}))
	}
	entries = append(entries, st.Apply(lab.Entry{Bench: "BenchmarkX", Unit: "ns/op", Value: 250}))
	if err := lab.Append(ledger, entries); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := runCheck([]string{"-ledger", ledger}, &out, &errw); code != 1 {
		t.Fatalf("injected regression: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "check: FAIL") {
		t.Errorf("check output:\n%s", out.String())
	}
}

func TestCheckExitCodesExactMismatch(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	st := lab.Stamp{Time: time.Now().UTC(), Source: "test",
		Machine: lab.Machine{Goos: "linux", Goarch: "amd64", NumCPU: 4}}
	e := st.Apply(lab.Entry{Bench: "lab/padr/chain/N=64/w=4/rounds", Unit: "rounds",
		Value: 5, Predicted: 4, Exact: true})
	if err := lab.Append(ledger, []lab.Entry{e}); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := runCheck([]string{"-ledger", ledger}, &out, &errw); code != 1 {
		t.Fatalf("exact mismatch: exit %d, want 1\n%s", code, out.String())
	}
}

func TestCheckEmptyLedgerPasses(t *testing.T) {
	var out, errw bytes.Buffer
	code := runCheck([]string{"-ledger", filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errw)
	if code != 0 {
		t.Fatalf("missing ledger must pass (first run): exit %d", code)
	}
	if !strings.Contains(errw.String(), "nothing to gate") {
		t.Errorf("stderr: %s", errw.String())
	}
}

func TestPredictClosedForms(t *testing.T) {
	var out, errw bytes.Buffer
	code := runPredict([]string{"-engine", "padr", "-workload", "chain", "-n", "256", "-w", "16"}, &out, &errw)
	if code != 0 {
		t.Fatalf("predict exit %d: %s", code, errw.String())
	}
	for _, want := range []string{"rounds        16", "phase1 words  510", "phase2 words  8160", "<= 6"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("predict output missing %q:\n%s", want, out.String())
		}
	}
	if code := runPredict([]string{"-n", "0"}, &out, &errw); code != 2 {
		t.Errorf("bad -n: exit %d, want 2", code)
	}
}

func TestSweepUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := runSweep([]string{"-n", "nope"}, &out, &errw); code != 2 {
		t.Errorf("bad -n: exit %d, want 2", code)
	}
	if code := runSweep([]string{"-n", "16", "-w", "2", "-engines", "warp"}, &out, &errw); code != 2 {
		t.Errorf("unknown engine: exit %d, want 2", code)
	}
}

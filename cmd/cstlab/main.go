// Command cstlab is the perf lab's front end. It sweeps the scheduling
// engines over a parameter grid, compares every measurement against the
// analytical twin (theorem-exact rounds and word counts, power envelopes,
// fitted latency models with noise bands), appends the results to a
// schema-versioned JSONL ledger, and replays that ledger as a CI
// regression gate.
//
// Subcommands:
//
//	cstlab sweep   -n 32,64,128 -w 2,8 -engines padr,sim,online -ledger BENCH_ledger.jsonl
//	cstlab delta   -n 1024 -active 64 -overlaps 0.5,0.75,0.9 -ledger BENCH_ledger.jsonl
//	cstlab check   -ledger BENCH_ledger.jsonl
//	cstlab predict -engine padr -workload chain -n 256 -w 16
//
// Exit codes: 0 pass, 1 measured-vs-predicted mismatch or gate failure,
// 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cst/internal/lab"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var code int
	switch os.Args[1] {
	case "sweep":
		code = runSweep(os.Args[2:], os.Stdout, os.Stderr)
	case "delta":
		code = runDelta(os.Args[2:], os.Stdout, os.Stderr)
	case "check":
		code = runCheck(os.Args[2:], os.Stdout, os.Stderr)
	case "predict":
		code = runPredict(os.Args[2:], os.Stdout, os.Stderr)
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "cstlab: unknown subcommand %q\n", os.Args[1])
		usage(os.Stderr)
		code = 2
	}
	os.Exit(code)
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: cstlab <subcommand> [flags]

  sweep    run a parameter sweep, compare measured vs predicted, append to the ledger
  delta    sweep the incremental scheduler over set-overlap ratios, gate the 2x speedup
  check    replay the ledger and gate on regressions, exact mismatches and bound excesses
  predict  print the analytical twin's closed forms for one grid point
`)
}

// parseInts parses a comma-separated integer list ("32,64,128").
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty list")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cstlab sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ns       = fs.String("n", "32,64,128", "comma-separated leaf counts (powers of two)")
		ws       = fs.String("w", "2,8", "comma-separated set widths")
		engines  = fs.String("engines", "padr,sim,online", "comma-separated engines (padr, sim, online, online-sharded, hybrid)")
		workload = fs.String("workload", lab.WorkloadChain, "set family: chain, split, random, bitrev or crossing")
		reps     = fs.Int("reps", 5, "timed runs per grid point (median is reported)")
		seed     = fs.Int64("seed", 1, "random-workload seed")
		ledger   = fs.String("ledger", "", "append results to this JSONL ledger")
		label    = fs.String("label", "", "free-form label stamped onto ledger entries")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	nList, err := parseInts(*ns)
	if err != nil {
		fmt.Fprintf(stderr, "cstlab: -n: %v\n", err)
		return 2
	}
	wList, err := parseInts(*ws)
	if err != nil {
		fmt.Fprintf(stderr, "cstlab: -w: %v\n", err)
		return 2
	}

	res, err := lab.RunSweep(lab.SweepConfig{
		Ns: nList, Ws: wList, Engines: splitList(*engines),
		Workload: *workload, Reps: *reps, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cstlab:", err)
		return 2
	}
	fmt.Fprintln(stdout, res.Table())

	if *ledger != "" {
		stamp := lab.NewStamp("cstlab", *label)
		entries := make([]lab.Entry, 0)
		for _, e := range res.Entries() {
			entries = append(entries, stamp.Apply(e))
		}
		if err := lab.Append(*ledger, entries); err != nil {
			fmt.Fprintln(stderr, "cstlab:", err)
			return 2
		}
		fmt.Fprintf(stderr, "cstlab: appended %d entries to %s\n", len(entries), *ledger)
	}

	if !res.Ok() {
		fmt.Fprintln(stderr, "cstlab: sweep FAILED — measured values deviate from the analytical twin")
		return 1
	}
	fmt.Fprintln(stderr, "cstlab: sweep ok — all measurements match the analytical twin")
	return 0
}

func runDelta(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cstlab delta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n        = fs.Int("n", 1024, "leaf count (power of two)")
		active   = fs.Int("active", 64, "occupied 4-leaf slots in the session set (<= n/4)")
		overlaps = fs.String("overlaps", "0.5,0.75,0.9", "comma-separated set-overlap ratios")
		phases   = fs.Int("phases", 8, "deltas chained per overlap point")
		reps     = fs.Int("reps", 5, "timed laps per overlap point (median is reported)")
		seed     = fs.Int64("seed", 42, "mutation-stream seed")
		ledger   = fs.String("ledger", "", "append results to this JSONL ledger")
		label    = fs.String("label", "", "free-form label stamped onto ledger entries")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ovs, err := parseFloats(*overlaps)
	if err != nil {
		fmt.Fprintf(stderr, "cstlab: -overlaps: %v\n", err)
		return 2
	}

	res, err := lab.RunDeltaSweep(lab.DeltaSweepConfig{
		N: *n, Active: *active, Overlaps: ovs,
		Phases: *phases, Reps: *reps, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cstlab:", err)
		return 2
	}
	fmt.Fprintln(stdout, res.Table())

	if *ledger != "" {
		stamp := lab.NewStamp("cstlab", *label)
		entries := make([]lab.Entry, 0)
		for _, e := range res.Entries() {
			entries = append(entries, stamp.Apply(e))
		}
		if err := lab.Append(*ledger, entries); err != nil {
			fmt.Fprintln(stderr, "cstlab:", err)
			return 2
		}
		fmt.Fprintf(stderr, "cstlab: appended %d entries to %s\n", len(entries), *ledger)
	}

	if !res.Ok() {
		fmt.Fprintln(stderr, "cstlab: delta sweep FAILED — rounds mismatch, speedup gate missed, or latency out of band")
		return 1
	}
	fmt.Fprintln(stderr, "cstlab: delta sweep ok — incremental schedules match from-scratch and meet the speedup gate")
	return 0
}

// parseFloats parses a comma-separated float list ("0.5,0.9").
func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty list")
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func runCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cstlab check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ledger     = fs.String("ledger", "BENCH_ledger.jsonl", "JSONL ledger to replay")
		k          = fs.Float64("k", 0, "MAD multiplier for the noise band (0 = default)")
		slack      = fs.Float64("slack", 0, "minimum relative band half-width (0 = default)")
		minHistory = fs.Int("min-history", 0, "runs required before the band is trusted (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	entries, err := lab.ReadLedger(*ledger)
	if err != nil {
		fmt.Fprintln(stderr, "cstlab:", err)
		return 2
	}
	if len(entries) == 0 {
		fmt.Fprintf(stderr, "cstlab: ledger %s is empty — nothing to gate\n", *ledger)
		return 0
	}
	vs, ok := lab.Check(entries, lab.CheckOptions{K: *k, SlackRel: *slack, MinHistory: *minHistory})
	if err := lab.WriteVerdicts(stdout, vs, ok); err != nil {
		fmt.Fprintln(stderr, "cstlab:", err)
		return 2
	}
	if !ok {
		return 1
	}
	return 0
}

func runPredict(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cstlab predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		engine   = fs.String("engine", lab.EnginePADR, "engine the prediction is for")
		workload = fs.String("workload", lab.WorkloadChain, "set family: chain, split, random, bitrev or crossing")
		n        = fs.Int("n", 64, "leaf count (power of two)")
		w        = fs.Int("w", 4, "set width")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n < 2 || *w < 1 {
		fmt.Fprintln(stderr, "cstlab: -n must be >= 2 and -w >= 1")
		return 2
	}
	p := lab.Predict(*engine, *workload, *n, *w)
	fmt.Fprintf(stdout, "engine=%s workload=%s N=%d w=%d\n", *engine, *workload, *n, *w)
	fmt.Fprintf(stdout, "rounds        %d   (Theorems 4/5: width-w sets schedule in exactly w rounds)\n", p.Rounds)
	if p.Phase1Words > 0 {
		fmt.Fprintf(stdout, "phase1 words  %d   (2N-2 control words up the tree)\n", p.Phase1Words)
		fmt.Fprintf(stdout, "phase2 words  %d   (2N-2 words per round, w rounds)\n", p.Phase2Words)
	} else {
		fmt.Fprintf(stdout, "phase words   n/a  (engine does not expose word counts)\n")
	}
	fmt.Fprintf(stdout, "power units   <= %d (envelope)\n", p.MaxUnitsBound)
	return 0
}

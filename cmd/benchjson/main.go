// Command benchjson converts `go test -bench` text output into a stable
// JSON document for CI artifacts and regression tracking (BENCH_core.json).
// It can embed a second bench run as the baseline and reports per-benchmark
// speedups against it.
//
// With -ledger the parsed benchmarks are additionally appended to the
// perf lab's JSONL ledger (internal/lab schema), so ad-hoc bench runs and
// cstload output feed the same regression gate as cstlab sweeps. With
// -convert the positional arguments are previously emitted benchjson
// documents whose benchmarks are normalized into the ledger — the one-shot
// migration path for the committed BENCH_*.json files.
//
// Examples:
//
//	go test -bench=. -run='^$' . | go run ./cmd/benchjson -out BENCH_core.json
//	go test -bench=. -run='^$' . | go run ./cmd/benchjson -baseline pre.txt -out BENCH_core.json
//	cstload -requests 500 | benchjson -ledger BENCH_ledger.jsonl -out BENCH_serve.json
//	benchjson -convert -ledger BENCH_ledger.jsonl BENCH_core.json BENCH_obs.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"cst/internal/lab"
)

// Benchmark is one parsed benchmark result line. Extra carries custom
// metrics emitted via b.ReportMetric or cstload's req/s column, keyed by
// their unit string.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Speedup compares one benchmark across the two runs.
type Speedup struct {
	Name        string  `json:"name"`
	TimeRatio   float64 `json:"time_ratio"`             // baseline ns / current ns; > 1 is faster
	AllocsRatio float64 `json:"allocs_ratio,omitempty"` // baseline allocs / current allocs
}

// Document is the emitted JSON schema.
type Document struct {
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

func main() {
	var (
		in       = flag.String("in", "", "bench output file (default stdin)")
		baseline = flag.String("baseline", "", "optional bench output file to embed as the baseline")
		out      = flag.String("out", "", "output JSON file (default stdout)")
		label    = flag.String("label", "", "free-form label stored in the document")
		match    = flag.String("match", "", "keep only benchmarks whose name matches this regexp (applied to both runs)")
		ledger   = flag.String("ledger", "", "also append parsed benchmarks to this JSONL ledger")
		convert  = flag.Bool("convert", false, "positional args are benchjson documents to normalize into -ledger; nothing else is emitted")
	)
	flag.Parse()

	if *convert {
		if *ledger == "" {
			fatal(fmt.Errorf("-convert requires -ledger"))
		}
		n, err := convertDocs(*ledger, flag.Args())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: appended %d entries to %s\n", n, *ledger)
		return
	}

	var keep *regexp.Regexp
	if *match != "" {
		var err error
		if keep, err = regexp.Compile(*match); err != nil {
			fatal(fmt.Errorf("-match: %v", err))
		}
	}

	doc := Document{Label: *label}
	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	var err error
	if doc.Benchmarks, err = parse(src, &doc); err != nil {
		fatal(err)
	}
	doc.Benchmarks = filter(doc.Benchmarks, keep)
	if *baseline != "" {
		if doc.Baseline, err = readBaseline(*baseline); err != nil {
			fatal(err)
		}
		doc.Baseline = filter(doc.Baseline, keep)
		doc.Speedups = speedups(doc.Baseline, doc.Benchmarks)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}

	if *ledger != "" {
		entries := ledgerEntries(doc, "benchjson")
		if err := lab.Append(*ledger, entries); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: appended %d entries to %s\n", len(entries), *ledger)
	}
}

// ledgerEntries normalizes a document's benchmarks into lab ledger entries:
// one ns/op entry per benchmark, plus B/op and allocs/op entries when the
// run recorded them. The machine fingerprint comes from the document's
// goos/goarch/cpu header when present (converted historical documents keep
// their original machine), falling back to the local machine.
func ledgerEntries(doc Document, source string) []lab.Entry {
	st := lab.NewStamp(source, doc.Label)
	if doc.Goos != "" {
		st.Machine = lab.Machine{Goos: doc.Goos, Goarch: doc.Goarch, CPU: doc.CPU}
	}
	var out []lab.Entry
	for _, b := range doc.Benchmarks {
		out = append(out, st.Apply(lab.Entry{Bench: b.Name, Unit: "ns/op",
			Value: b.NsPerOp, Samples: int(b.Iterations)}))
		if b.BytesPerOp > 0 {
			out = append(out, st.Apply(lab.Entry{Bench: b.Name, Unit: "B/op",
				Value: float64(b.BytesPerOp)}))
		}
		if b.AllocsPerOp > 0 {
			out = append(out, st.Apply(lab.Entry{Bench: b.Name, Unit: "allocs/op",
				Value: float64(b.AllocsPerOp)}))
		}
		for _, unit := range sortedKeys(b.Extra) {
			out = append(out, st.Apply(lab.Entry{Bench: b.Name, Unit: unit,
				Value: b.Extra[unit]}))
		}
	}
	return out
}

// sortedKeys keeps ledger output deterministic across runs.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// convertDocs reads benchjson documents and appends their benchmarks to the
// ledger, returning how many entries were written.
func convertDocs(ledger string, paths []string) (int, error) {
	if len(paths) == 0 {
		return 0, fmt.Errorf("-convert: no documents given")
	}
	total := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return total, err
		}
		var doc Document
		if err := json.Unmarshal(data, &doc); err != nil {
			return total, fmt.Errorf("%s: %v", path, err)
		}
		entries := ledgerEntries(doc, "convert:"+path)
		if err := lab.Append(ledger, entries); err != nil {
			return total, err
		}
		total += len(entries)
	}
	return total, nil
}

// readBaseline loads a baseline from either raw `go test -bench` text or a
// previously emitted benchjson document (its "benchmarks" become the
// baseline), detected by the leading byte.
func readBaseline(path string) ([]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var prev Document
		if err := json.Unmarshal(data, &prev); err != nil {
			return nil, fmt.Errorf("baseline %s: %v", path, err)
		}
		return prev.Benchmarks, nil
	}
	return parse(strings.NewReader(trimmed), nil)
}

// parse reads `go test -bench` output: benchmark result lines plus the
// goos/goarch/cpu header (stored into doc when non-nil).
func parse(r io.Reader, doc *Document) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if doc != nil {
			if v, ok := strings.CutPrefix(line, "goos: "); ok {
				doc.Goos = v
				continue
			}
			if v, ok := strings.CutPrefix(line, "goarch: "); ok {
				doc.Goarch = v
				continue
			}
			if v, ok := strings.CutPrefix(line, "cpu: "); ok {
				doc.CPU = v
				continue
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name  N  ns/op-value "ns/op"  [B/op-value "B/op"  allocs-value "allocs/op"]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		b := Benchmark{Name: fields[0]}
		var err error
		if b.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		if b.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			default:
				// Custom metric (b.ReportMetric / cstload req/s): keep the
				// unit as the key so the ledger can track it directly.
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

func speedups(base, cur []Benchmark) []Speedup {
	byName := map[string]Benchmark{}
	for _, b := range base {
		byName[b.Name] = b
	}
	var out []Speedup
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok || c.NsPerOp == 0 {
			continue
		}
		s := Speedup{Name: c.Name, TimeRatio: round2(b.NsPerOp / c.NsPerOp)}
		if c.AllocsPerOp > 0 {
			s.AllocsRatio = round2(float64(b.AllocsPerOp) / float64(c.AllocsPerOp))
		}
		out = append(out, s)
	}
	return out
}

// filter drops benchmarks whose name does not match keep (nil keeps all).
func filter(in []Benchmark, keep *regexp.Regexp) []Benchmark {
	if keep == nil {
		return in
	}
	var out []Benchmark
	for _, b := range in {
		if keep.MatchString(b.Name) {
			out = append(out, b)
		}
	}
	return out
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cst/internal/lab"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
cpu: TestCPU
BenchmarkA 1000 1234.5 ns/op 64 B/op 3 allocs/op
BenchmarkB 500 99 ns/op
not a bench line
`
	var doc Document
	bs, err := parse(strings.NewReader(in), &doc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.CPU != "TestCPU" {
		t.Errorf("header: %+v", doc)
	}
	if len(bs) != 2 || bs[0].NsPerOp != 1234.5 || bs[0].BytesPerOp != 64 || bs[0].AllocsPerOp != 3 {
		t.Errorf("parsed: %+v", bs)
	}
}

// Custom metrics (b.ReportMetric, cstload's req/s column) land in Extra
// keyed by unit and flow into the ledger as their own entries.
func TestParseExtraMetrics(t *testing.T) {
	in := `BenchmarkServeWireThroughput 2000 18081.0 ns/op 55307.2 req/s
BenchmarkWireServeSerial 1000 18000 ns/op 55000.5 req/s 0 B/op 0 allocs/op
`
	var doc Document
	bs, err := parse(strings.NewReader(in), &doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("parsed %d benchmarks", len(bs))
	}
	if bs[0].Extra["req/s"] != 55307.2 {
		t.Errorf("extra = %v", bs[0].Extra)
	}
	if bs[1].Extra["req/s"] != 55000.5 || bs[1].BytesPerOp != 0 || bs[1].AllocsPerOp != 0 {
		t.Errorf("mixed extras: %+v", bs[1])
	}
	doc.Benchmarks = bs
	entries := ledgerEntries(doc, "test")
	// Each benchmark: ns/op + req/s (zero B/op and allocs/op are elided).
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	if entries[1].Unit != "req/s" || entries[1].Value != 55307.2 {
		t.Errorf("req/s entry: %+v", entries[1])
	}
}

func TestLedgerEntriesNormalization(t *testing.T) {
	doc := Document{
		Label: "historic run", Goos: "linux", Goarch: "arm64", CPU: "OldCPU",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", Iterations: 1000, NsPerOp: 1234.5, BytesPerOp: 64, AllocsPerOp: 3},
			{Name: "BenchmarkB", Iterations: 500, NsPerOp: 99},
		},
	}
	entries := ledgerEntries(doc, "convert:test")
	// A yields ns/op + B/op + allocs/op; B yields ns/op only.
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	e := entries[0]
	if e.Schema != lab.SchemaVersion || e.Source != "convert:test" || e.Label != "historic run" {
		t.Errorf("provenance: %+v", e)
	}
	if e.Bench != "BenchmarkA" || e.Unit != "ns/op" || e.Value != 1234.5 || e.Samples != 1000 {
		t.Errorf("ns/op entry: %+v", e)
	}
	// The historic document's machine header wins over the local machine.
	if e.Machine.Goarch != "arm64" || e.Machine.CPU != "OldCPU" {
		t.Errorf("machine: %+v", e.Machine)
	}
	if entries[1].Unit != "B/op" || entries[1].Value != 64 ||
		entries[2].Unit != "allocs/op" || entries[2].Value != 3 {
		t.Errorf("memory entries: %+v %+v", entries[1], entries[2])
	}
}

// TestConvertDocs round-trips a committed-style BENCH_*.json document into
// the ledger — the migration path for the historical bench artifacts.
func TestConvertDocs(t *testing.T) {
	dir := t.TempDir()
	docPath := filepath.Join(dir, "BENCH_x.json")
	doc := `{
  "label": "seed",
  "goos": "linux",
  "goarch": "amd64",
  "cpu": "TestCPU",
  "benchmarks": [
    {"name": "BenchmarkA", "iterations": 10, "ns_per_op": 100, "bytes_per_op": 8, "allocs_per_op": 1}
  ]
}`
	if err := os.WriteFile(docPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	ledger := filepath.Join(dir, "ledger.jsonl")
	n, err := convertDocs(ledger, []string{docPath})
	if err != nil || n != 3 {
		t.Fatalf("convert: n=%d err=%v", n, err)
	}
	entries, err := lab.ReadLedger(ledger)
	if err != nil || len(entries) != 3 {
		t.Fatalf("ledger: %d entries, err=%v", len(entries), err)
	}
	if entries[0].Source != "convert:"+docPath || entries[0].Label != "seed" {
		t.Errorf("entry: %+v", entries[0])
	}
	if _, err := convertDocs(ledger, nil); err == nil {
		t.Error("no documents must error")
	}
	if _, err := convertDocs(ledger, []string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing document must error")
	}
}

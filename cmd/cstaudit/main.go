// Command cstaudit replays a CST observability trace through the power
// auditor: it rebuilds the per-switch power ledger, checks the paper's
// theorems (round counts, per-switch spend, port alternations, word
// budgets), attributes per-round latency along the critical path, and
// renders the verdict as text, markdown, HTML, or a Perfetto-loadable
// Chrome trace.
//
// Input is either a saved JSONL trace or a live /trace endpoint:
//
//	cstsim -workload chain -n 64 -w 8 -trace-out run.jsonl
//	cstaudit -in run.jsonl -md report.md -perfetto run.trace.json
//
//	cstsim -workload random -n 128 -metrics-addr :9090 &
//	cstaudit -url http://localhost:9090/trace -for 10s
//
// Exit status: 0 on a clean audit, 1 on violations when -fail-on-violation
// is set, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"cst"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// opts carries the parsed CLI flags.
type opts struct {
	in       string
	url      string
	poll     time.Duration
	duration time.Duration
	md       string
	html     string
	perfetto string
	failOn   bool
	slack    int
	maxUnits int
	maxAlts  int
	quiet    bool
}

// run executes the CLI and returns its exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cstaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o opts
	fs.StringVar(&o.in, "in", "", "JSONL trace file to replay (\"-\" for stdin)")
	fs.StringVar(&o.url, "url", "", "live /trace endpoint to poll incrementally (e.g. http://localhost:9090/trace)")
	fs.DurationVar(&o.poll, "poll", time.Second, "polling interval for -url")
	fs.DurationVar(&o.duration, "for", 10*time.Second, "how long to follow -url before reporting")
	fs.StringVar(&o.md, "md", "", "write the markdown report to this file")
	fs.StringVar(&o.html, "html", "", "write the HTML report to this file")
	fs.StringVar(&o.perfetto, "perfetto", "", "write a Perfetto/Chrome trace JSON of the input to this file")
	fs.BoolVar(&o.failOn, "fail-on-violation", false, "exit 1 when the audit raises any violation")
	fs.IntVar(&o.slack, "round-slack", 0, "rounds beyond the width before the Theorem 4/5 monitor fires")
	fs.IntVar(&o.maxUnits, "max-units", 0, "per-switch power-unit bound (0 = adaptive default)")
	fs.IntVar(&o.maxAlts, "max-alternations", 0, "per-port alternation bound (0 = adaptive default)")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress the text summary")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (o.in == "") == (o.url == "") {
		fmt.Fprintln(stderr, "cstaudit: exactly one of -in or -url is required")
		return 2
	}

	events, err := collect(o, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "cstaudit:", err)
		return 2
	}

	cfg := cst.AuditConfig{Limits: cst.AuditLimits{
		RoundSlack:             o.slack,
		MaxUnitsPerSwitch:      o.maxUnits,
		MaxAlternationsPerPort: o.maxAlts,
	}}
	rep := cst.ReplayAudit(events, cfg).Report()

	if o.perfetto != "" {
		if err := writeFile(o.perfetto, func(w io.Writer) error {
			return cst.WritePerfetto(w, events)
		}); err != nil {
			fmt.Fprintln(stderr, "cstaudit:", err)
			return 2
		}
	}
	if o.md != "" {
		if err := writeFile(o.md, rep.WriteMarkdown); err != nil {
			fmt.Fprintln(stderr, "cstaudit:", err)
			return 2
		}
	}
	if o.html != "" {
		if err := writeFile(o.html, rep.WriteHTML); err != nil {
			fmt.Fprintln(stderr, "cstaudit:", err)
			return 2
		}
	}
	if !o.quiet {
		fmt.Fprint(stdout, rep.Summary())
	}
	if o.failOn && !rep.Clean() {
		return 1
	}
	return 0
}

// collect gathers the input events: one shot from a file/stdin, or an
// incremental ?since= polling loop against a live /trace endpoint.
func collect(o opts, stderr io.Writer) ([]cst.TraceEvent, error) {
	if o.in != "" {
		r := io.Reader(os.Stdin)
		if o.in != "-" {
			f, err := os.Open(o.in)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		return cst.ReadTraceJSONL(r)
	}
	return follow(o.url, o.poll, o.duration, stderr)
}

// follow polls a /trace endpoint with the ?since= cursor until the
// deadline, accumulating only new events on each round trip.
func follow(url string, poll, dur time.Duration, stderr io.Writer) ([]cst.TraceEvent, error) {
	var events []cst.TraceEvent
	var since int64
	deadline := time.Now().Add(dur)
	client := &http.Client{Timeout: 30 * time.Second}
	for {
		batch, last, err := fetch(client, url, since)
		if err != nil {
			return nil, err
		}
		events = append(events, batch...)
		if last > since {
			since = last
		}
		if !time.Now().Add(poll).Before(deadline) {
			break
		}
		time.Sleep(poll)
	}
	fmt.Fprintf(stderr, "cstaudit: collected %d events from %s\n", len(events), url)
	return events, nil
}

// fetch performs one incremental /trace?since= request, returning the new
// events and the server's last sequence number (from X-Trace-Last-Seq,
// falling back to the last event's Seq).
func fetch(client *http.Client, url string, since int64) ([]cst.TraceEvent, int64, error) {
	u := url
	if since > 0 {
		u = fmt.Sprintf("%s?since=%d", url, since)
	}
	resp, err := client.Get(u)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	events, err := cst.ReadTraceJSONL(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	last := since
	if h := resp.Header.Get("X-Trace-Last-Seq"); h != "" {
		if v, err := strconv.ParseInt(h, 10, 64); err == nil {
			last = v
		}
	} else if len(events) > 0 {
		last = events[len(events)-1].Seq
	}
	return events, last, nil
}

// writeFile creates path and streams render into it.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cst"
)

// makeTrace runs one sequential engine run into a JSONL file and returns
// its path.
func makeTrace(t *testing.T, faulty bool) string {
	t.Helper()
	set, err := cst.NestedChain(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cst.NewTree(set.N)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tracer := cst.NewTracer(f, 0)
	opts := []cst.Option{cst.WithTrace(tracer)}
	if faulty {
		inj := cst.NewFaultInjector([]cst.Fault{
			{Kind: cst.FaultCorruptWord, Node: 3, Round: 1, Run: 0},
		})
		opts = append(opts, cst.WithFaults(inj))
	}
	_, err = cst.Run(tree, set, opts...)
	if faulty && err == nil {
		t.Fatal("faulty run: want error")
	}
	if !faulty && err != nil {
		t.Fatal(err)
	}
	return path
}

// A clean trace must audit clean, write all three artifacts, and exit 0
// even under -fail-on-violation.
func TestCleanTraceExitsZero(t *testing.T) {
	in := makeTrace(t, false)
	dir := t.TempDir()
	md := filepath.Join(dir, "r.md")
	html := filepath.Join(dir, "r.html")
	pf := filepath.Join(dir, "r.trace.json")
	var out, errb bytes.Buffer
	code := run([]string{"-in", in, "-md", md, "-html", html, "-perfetto", pf, "-fail-on-violation"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "CLEAN") {
		t.Errorf("summary missing CLEAN: %q", out.String())
	}
	for _, p := range []string{md, html, pf} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty (%v)", p, err)
		}
	}
}

// A faulty trace must exit 1 under -fail-on-violation and name the fault.
func TestFaultyTraceExitsOne(t *testing.T) {
	in := makeTrace(t, true)
	var out, errb bytes.Buffer
	code := run([]string{"-in", in, "-fail-on-violation"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; out: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "run:error") {
		t.Errorf("summary missing run:error violation: %q", out.String())
	}
}

// Reading from stdin ("-in -") is covered by reading a file through the
// same path; flag validation must reject zero or two inputs.
func TestFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no input: exit %d, want 2", code)
	}
	if code := run([]string{"-in", "x", "-url", "http://y"}, &out, &errb); code != 2 {
		t.Errorf("both inputs: exit %d, want 2", code)
	}
	if code := run([]string{"-in", filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

// The -url mode must poll a live /trace endpoint with the ?since= cursor
// and audit only the accumulated events once.
func TestFollowLiveEndpoint(t *testing.T) {
	reg := cst.NewMetrics()
	tracer := cst.NewTracer(nil, 0)
	srv := httptest.NewServer(cst.MetricsHandler(reg, tracer))
	defer srv.Close()

	set, err := cst.NestedChain(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cst.NewTree(set.N)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cst.Run(tree, set, cst.WithTrace(tracer), cst.WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run([]string{"-url", srv.URL + "/trace", "-poll", "10ms", "-for", "50ms"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "CLEAN") {
		t.Errorf("live audit summary: %q", out.String())
	}
	if !strings.Contains(out.String(), "1 runs") {
		t.Errorf("live audit should see exactly 1 run despite repeated polls: %q", out.String())
	}
}

// fetch must honor the incremental cursor: a second fetch from the last
// sequence returns nothing new.
func TestFetchIncremental(t *testing.T) {
	reg := cst.NewMetrics()
	tracer := cst.NewTracer(nil, 0)
	srv := httptest.NewServer(cst.MetricsHandler(reg, tracer))
	defer srv.Close()
	for i := 0; i < 5; i++ {
		tracer.Emit(cst.TraceEvent{Type: "x", Round: -1})
	}
	client := &http.Client{}
	events, last, err := fetch(client, srv.URL+"/trace", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 || last != 5 {
		t.Fatalf("first fetch: %d events, last=%d, want 5/5", len(events), last)
	}
	again, last2, err := fetch(client, srv.URL+"/trace", last)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 || last2 != 5 {
		t.Fatalf("cursor fetch: %d events, last=%d, want 0/5", len(again), last2)
	}
	tracer.Emit(cst.TraceEvent{Type: "y", Round: -1})
	tail, _, err := fetch(client, srv.URL+"/trace", last)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Type != "y" {
		t.Fatalf("tail fetch: %+v, want the single new event", tail)
	}
}

package cst_test

import (
	"fmt"

	"cst"
)

// ExampleRun schedules the paper's running example and prints the schedule.
func ExampleRun() {
	set := cst.MustParse("((.)(.))")
	tree := cst.MustNewTree(set.N)
	res, err := cst.Run(tree, set)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("width %d, %d rounds\n", res.Width, res.Rounds)
	fmt.Print(res.Schedule.String())
	// Output:
	// width 2, 2 rounds
	// round 0: 0->7
	// round 1: 1->3 4->6
}

// ExampleParse shows the Fig. 2 notation round trip.
func ExampleParse() {
	set, _ := cst.Parse("(()).()")
	fmt.Println(set.Summary())
	// Output:
	// 8 PEs, 3 comms, well-nested depth 2: (()).().
}

// ExampleRun_power shows the Theorem 8 ledger on an adversarial chain:
// sixteen nested communications all matched at the root, yet no switch
// spends more than a constant number of power units.
func ExampleRun_power() {
	set, _ := cst.NestedChain(64, 16)
	tree := cst.MustNewTree(64)
	res, _ := cst.Run(tree, set)
	fmt.Println(res.Report.Summary())
	// Output:
	// padr/stateful: 16 rounds, total 63 units, max/switch 2, max alternations 1
}

// ExampleRunConcurrent runs the same algorithm as a goroutine-per-node
// message-passing system.
func ExampleRunConcurrent() {
	set := cst.MustParse("(((())))")
	tree := cst.MustNewTree(set.N)
	res, _ := cst.RunConcurrent(tree, set)
	fmt.Printf("%d goroutines, %d rounds, agrees with Theorem 5: %v\n",
		res.Goroutines, res.Rounds, res.Rounds == res.Width)
	// Output:
	// 15 goroutines, 4 rounds, agrees with Theorem 5: true
}

// ExampleRenderSet draws a set in the paper's Fig. 2 style.
func ExampleRenderSet() {
	fmt.Print(cst.RenderSet(cst.MustParse("(())")))
	// Output:
	// PEs : (())
	// d=0 : \__/
	// d=1 :  \/
	// gaps: 121
}

// ExampleRunDepthID contrasts the prior ID-based scheduler under the
// adversarial alternating order (Θ(w) churn) with PADR (O(1)).
func ExampleRunDepthID() {
	set, _ := cst.SplitChain(64, 16)
	tree := cst.MustNewTree(64)
	padrRes, _ := cst.Run(tree, set)
	altRes, _ := cst.RunDepthID(tree, set, cst.Alternating, cst.Stateful)
	fmt.Printf("padr max alternations: %d\n", padrRes.Report.MaxAlternations())
	fmt.Printf("alternating-ID max alternations: %d\n", altRes.Report.MaxAlternations())
	// Output:
	// padr max alternations: 1
	// alternating-ID max alternations: 15
}

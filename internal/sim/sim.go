// Package sim executes the CSA algorithm as a truly concurrent
// message-passing system: one goroutine per switch and per PE, one pair of
// channels per tree link (an upward half for C_U words, a downward half for
// C_{D-L}/C_{D-R} words). No node shares memory with any other; every
// decision uses only the node's local state and the words on its links,
// exactly as the distributed algorithm prescribes (paper §2.2).
//
// Phase 1 is a single convergecast wave: leaves emit their role words and
// every switch matches its children's words (ctrl.Match) before forwarding
// upward. Each Phase 2 round is a broadcast wave: the driver injects
// [null,null] at the root, every switch runs the identical padr.Step
// transition, and the leaves report what they were told to a collector
// channel, which is how the driver detects the end of the round.
//
// The node goroutines live in a Fabric that persists across runs: spawning
// 2N-1 goroutines and 4N-2 channels is the dominant cost of short runs, so
// Run-heavy workloads build one Fabric and feed it set after set. Control
// ops (begin / end-run / shutdown) ride the same downward channels as the
// Phase 2 words, so every run is delimited by broadcast waves and the
// channel FIFO order is the only synchronization the protocol needs.
//
// # Fault tolerance
//
// The fabric survives a lossy tree. With fault injection armed (WithFaults)
// — or on a real deployment where a switch can wedge — a broadcast wave may
// simply never complete: a dropped word or a frozen switch leaves a whole
// subtree dark. The driver therefore supports deadlines (RunContext, plus a
// per-wave watchdog) and a run-abort protocol that returns the fabric to
// its parked state without tearing down a single goroutine:
//
//   - The end-of-run wave doubles as the abort wave. Control ops are the
//     management plane and are never subject to injected faults, so the
//     wave always reaches all 2N-1 nodes: switches forward it even while
//     still blocked mid-convergecast (their Phase 1 wait is a select over
//     both children's up-links and the parent's down-link).
//   - Every leaf acknowledges the end-of-run wave through the report
//     channel. The channel is a FIFO and the ack is the last thing a leaf
//     sends for a run, so once the driver has drained stats from every
//     switch and acks from every leaf, no stale traffic from the aborted
//     run can be in flight anywhere.
//   - An aborted Phase 1 can strand one matched up-word per link (sent but
//     never received). Every switch drains its children's up-channels when
//     the next begin wave arrives — provably before the children can send
//     their next word, because the children see that begin only after the
//     drain — and the driver does the same for the root's up-channel.
//
// A wave that misses its deadline surfaces as a typed *fault.Error wrapping
// fault.ErrDeadline, carrying a per-node stall report: which PEs never
// reported and the maximal fully-dark subtrees covering them (a frozen
// switch shows up as exactly its subtree).
//
// The sequential engine (package padr) and this simulation must produce
// identical schedules and identical power ledgers; tests assert this, and
// experiment E8 measures the message counts.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/sched"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// DefaultWatchdog bounds every broadcast wave when fault injection is armed
// and no explicit watchdog was configured: with faults in play a wave may
// legitimately never complete, and an unbounded wait would turn an injected
// fault into a real deadlock.
const DefaultWatchdog = 2 * time.Second

// Option configures a simulation.
type Option func(*config)

type config struct {
	mode     power.Mode
	sel      padr.Selection
	reg      *obs.Registry
	tracer   *obs.Tracer
	inj      *fault.Injector
	watchdog time.Duration // 0 = default (only armed with faults), <0 = disabled
}

// WithMode selects the power accounting mode (default power.Stateful).
func WithMode(m power.Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithSelection picks the matched-pair selection rule (default
// padr.Greedy), mirroring padr.WithSelection.
func WithSelection(sel padr.Selection) Option {
	return func(c *config) { c.sel = sel }
}

// WithRegistry publishes run metrics (rounds, per-round wall latency,
// channel messages, reconfiguration units) to the registry under the
// cst_sim_* names documented in OBSERVABILITY.md. A nil registry keeps the
// run uninstrumented at effectively zero cost.
func WithRegistry(r *obs.Registry) Option {
	return func(c *config) { c.reg = r }
}

// WithTracer emits structured JSONL events (goroutine lifecycle, Phase 1
// wave, per-round spans, channel sends) to the tracer. A nil tracer keeps
// the run silent.
func WithTracer(t *obs.Tracer) Option {
	return func(c *config) { c.tracer = t }
}

// WithFaults arms deterministic fault injection on the fabric's links and
// switches. Word faults apply on the data plane only (Phase 1/2 control
// words); the begin/end-run/shutdown waves model the driver's reliable
// management plane and always go through, which is what keeps every abort
// bounded. Arming faults also arms the DefaultWatchdog unless a watchdog
// was configured explicitly. A nil injector is inert.
func WithFaults(in *fault.Injector) Option {
	return func(c *config) { c.inj = in }
}

// WithWatchdog bounds every broadcast wave (Phase 1, and each Phase 2
// round) to d: a wave that fails to complete in time aborts the run and
// surfaces fault.ErrDeadline with a stall report. d < 0 disables the
// watchdog even under fault injection (the caller then bounds runs via
// RunContext, or accepts that a lost wave hangs).
func WithWatchdog(d time.Duration) Option {
	return func(c *config) { c.watchdog = d }
}

// metrics holds the pre-resolved metric handles for one fabric. The zero
// value (all-nil handles) is the disabled mode: every method call below
// no-ops on nil receivers, so the hot path carries only nil checks.
type metrics struct {
	runs, rounds, comms   *obs.Counter
	phase1, phase2        *obs.Counter
	reports, errs         *obs.Counter
	deadlines             *obs.Counter
	units, alternations   *obs.Counter
	switches              *obs.Counter
	goroutines            *obs.Gauge
	roundLatency, runTime *obs.Histogram
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		runs:         r.Counter("cst_sim_runs_total", "concurrent engine runs started"),
		rounds:       r.Counter("cst_sim_rounds_total", "Phase 2 rounds executed"),
		comms:        r.Counter("cst_sim_comms_scheduled_total", "communications performed"),
		phase1:       r.Counter("cst_sim_phase1_messages_total", "C_U words carried by channels"),
		phase2:       r.Counter("cst_sim_phase2_messages_total", "C_D words carried by channels"),
		reports:      r.Counter("cst_sim_leaf_reports_total", "leaf reports received by the driver"),
		errs:         r.Counter("cst_sim_errors_total", "failed runs"),
		deadlines:    r.Counter("cst_sim_deadline_aborts_total", "runs aborted by the watchdog or context deadline"),
		units:        r.Counter("cst_sim_power_units_total", "power units spent by switch crossbars"),
		alternations: r.Counter("cst_sim_alternations_total", "output-driver alternations on switch crossbars"),
		switches:     r.Counter("cst_sim_switches_total", "switch instances driven, summed over runs (for per-switch averages)"),
		goroutines:   r.Gauge("cst_sim_goroutines", "live node goroutines"),
		roundLatency: r.Histogram("cst_sim_round_latency_seconds", "wall latency of one Phase 2 broadcast wave", nil),
		runTime:      r.Histogram("cst_sim_run_duration_seconds", "wall latency of a whole run", nil),
	}
}

// Result is the outcome of a concurrent run.
type Result struct {
	// Schedule lists the communications performed per round.
	Schedule *sched.Schedule
	// Report is the power ledger, collected from the switch goroutines'
	// crossbars at the end-of-run wave.
	Report *power.Report
	// Width is the set's link width; Rounds == Width on success.
	Width, Rounds int
	// Phase1Messages counts C_U words carried by channels (one per link).
	Phase1Messages int
	// Phase2Messages counts C_{D-*} words carried by channels over all
	// rounds.
	Phase2Messages int
	// RoundLatencies is the wall-clock duration of every Phase 2 broadcast
	// wave, measured from injecting the root word to collecting the last
	// leaf report; len == Rounds.
	RoundLatencies []time.Duration
	// RoundMessages counts the C_{D-*} words carried by channels during
	// each round (the sum over rounds equals Phase2Messages); len ==
	// Rounds.
	RoundMessages []int
	// Goroutines is the number of node goroutines serving the run (2N-1).
	Goroutines int
}

// Control ops carried on the downward channels alongside Phase 2 words.
// Every op is a broadcast wave rooted at the driver: switches forward it to
// both children before acting on it, so the wave reaches all 2N-1 nodes in
// channel FIFO order with no extra synchronization. Ops are the management
// plane: fault injection never drops, corrupts or delays them.
const (
	opWord     uint8 = iota // deliver a Phase 2 control word
	opBegin                 // start a run: reset node state, run Phase 1
	opEndRun                // finish or abort a run: flush stats/acks, await next begin
	opShutdown              // exit the node goroutine
)

// downMsg is one element on a downward channel.
type downMsg struct {
	word ctrl.Down
	op   uint8
}

// leafReport is what a PE tells the driver at the end of each round, and —
// with ack set — how it acknowledges the end-of-run wave. The ack is the
// last element a leaf enqueues for a run, so draining n acks proves the
// report channel holds no stale traffic (FIFO).
type leafReport struct {
	pe   int
	word ctrl.Down
	err  error
	ack  bool
}

// nodeStats is what a switch goroutine hands back at the end-of-run wave.
type nodeStats struct {
	node topology.Node
	sw   *xbar.Switch
}

// Fabric is a persistent simulation substrate: the 2N-1 node goroutines and
// their channels are created once and serve any number of Run calls. A
// Fabric serializes Run calls internally (a second caller blocks, it does
// not corrupt the waves); Close is idempotent, safe to race with Run, and
// terminates the node goroutines before returning.
type Fabric struct {
	tree *topology.Tree
	cfg  config
	met  metrics

	// Channel fabric, indexed by node. up[node] carries the node's C_U word
	// to its parent; down[node] carries words and control ops from the
	// parent to the node.
	up   []chan ctrl.Up
	down []chan downMsg

	reports chan leafReport
	stats   chan nodeStats

	// Per-run state, written by the driver before the begin wave; node
	// goroutines read it only after receiving opBegin, which the channel
	// sends order after the writes.
	roles []ctrl.Up
	dstOf []int

	// switches collects each run's crossbars at the end-of-run wave,
	// indexed by node (reused across runs).
	switches []*xbar.Switch

	// reported marks, per wave, which PEs have reported — the input to the
	// stall report when a wave misses its deadline.
	reported []bool

	downSent  atomic.Int64 // cumulative C_{D-*} words across runs
	wg        sync.WaitGroup
	runMu     sync.Mutex // serializes Run, and orders Close after a run
	closed    atomic.Bool
	closeOnce sync.Once
}

// NewFabric spawns the node goroutines for t and returns the ready fabric.
func NewFabric(t *topology.Tree, opts ...Option) *Fabric {
	cfg := config{mode: power.Stateful}
	for _, o := range opts {
		o(&cfg)
	}
	n := t.Leaves()
	f := &Fabric{
		tree:     t,
		cfg:      cfg,
		met:      newMetrics(cfg.reg),
		up:       make([]chan ctrl.Up, 2*n),
		down:     make([]chan downMsg, 2*n),
		reports:  make(chan leafReport, n),
		stats:    make(chan nodeStats, t.Switches()),
		roles:    make([]ctrl.Up, n),
		dstOf:    make([]int, n),
		switches: make([]*xbar.Switch, n),
		reported: make([]bool, n),
	}
	for node := 1; node < 2*n; node++ {
		f.up[node] = make(chan ctrl.Up, 1)
		f.down[node] = make(chan downMsg, 1)
	}
	for pe := 0; pe < n; pe++ {
		f.wg.Add(1)
		go f.leafLoop(pe)
	}
	t.EachSwitch(func(u topology.Node) {
		f.wg.Add(1)
		go f.switchLoop(u)
	})
	return f
}

// Close shuts the fabric down: the shutdown wave propagates to every node
// goroutine and Close returns once all of them have exited (so no goroutine
// or gauge decrement outlives the call). Close is idempotent and safe to
// call concurrently with Run: it waits for an in-flight run to finish
// before taking the fabric down.
func (f *Fabric) Close() {
	f.closeOnce.Do(func() {
		f.runMu.Lock()
		defer f.runMu.Unlock()
		f.closed.Store(true)
		f.down[f.tree.Root()] <- downMsg{op: opShutdown}
		f.wg.Wait()
	})
}

// watchdogFor resolves the effective per-wave deadline: an explicit
// positive setting wins, fault injection arms the default, and a negative
// setting disables the watchdog outright.
func (c *config) watchdogFor() time.Duration {
	switch {
	case c.watchdog > 0:
		return c.watchdog
	case c.watchdog < 0:
		return 0
	case c.inj != nil:
		return DefaultWatchdog
	default:
		return 0
	}
}

// Run executes the set on the fabric's tree, reusing the live goroutines.
func (f *Fabric) Run(s *comm.Set) (*Result, error) {
	return f.RunContext(context.Background(), s)
}

// RunContext is Run bounded by a context: if ctx is cancelled or its
// deadline passes mid-run, the run aborts (returning the fabric to its
// parked, reusable state) and a *fault.Error wrapping fault.ErrDeadline is
// returned. Independent of ctx, a configured (or fault-armed default)
// watchdog bounds every individual broadcast wave.
func (f *Fabric) RunContext(ctx context.Context, s *comm.Set) (*Result, error) {
	f.runMu.Lock()
	defer f.runMu.Unlock()
	t, met, cfg := f.tree, f.met, f.cfg
	if f.closed.Load() {
		met.errs.Inc()
		return nil, fmt.Errorf("sim: fabric is closed")
	}
	if t.Leaves() != s.N {
		met.errs.Inc()
		return nil, fmt.Errorf("sim: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	if err := s.Validate(); err != nil {
		met.errs.Inc()
		return nil, err
	}
	if !s.IsWellNested() {
		met.errs.Inc()
		return nil, fmt.Errorf("sim: set is not an oriented well-nested set: %s", s.String())
	}
	width, err := s.Width(t)
	if err != nil {
		met.errs.Inc()
		return nil, err
	}
	met.runs.Inc()
	runStart := time.Now()
	if cfg.tracer != nil {
		cfg.tracer.Emit(obs.Event{Type: "run.start", Engine: "sim", Round: -1, N: s.Len(), Mode: cfg.mode.String()})
	}

	n := t.Leaves()
	for pe := 0; pe < n; pe++ {
		f.roles[pe] = ctrl.Up{}
		f.dstOf[pe] = -1
	}
	for _, c := range s.Comms {
		f.roles[c.Src] = ctrl.Up{S: 1}
		f.roles[c.Dst] = ctrl.Up{D: 1}
		f.dstOf[c.Src] = c.Dst
	}
	phase2Base := f.downSent.Load()
	cfg.inj.BeginRun()

	// Per-wave watchdog. One timer serves every wave; resetWD re-arms it at
	// the start of each wave so the deadline bounds a single wave, not the
	// whole run.
	watchdog := cfg.watchdogFor()
	var wd *time.Timer
	var wdC <-chan time.Time
	if watchdog > 0 {
		wd = time.NewTimer(watchdog)
		defer wd.Stop()
		wdC = wd.C
	}
	resetWD := func() {
		if wd == nil {
			return
		}
		if !wd.Stop() {
			select {
			case <-wd.C:
			default:
			}
		}
		wd.Reset(watchdog)
	}

	// Begin wave down, Phase 1 convergecast up. The root's up-channel was
	// drained at the end of the previous run, but drain again defensively:
	// a stale word here would corrupt the root check.
	select {
	case <-f.up[t.Root()]:
	default:
	}
	phase1Start := time.Now()
	f.down[t.Root()] <- downMsg{op: opBegin}
	resetWD()
	var rootUp ctrl.Up
	select {
	case rootUp = <-f.up[t.Root()]:
	case <-ctx.Done():
		return nil, f.abort(&fault.Error{Engine: "sim", Round: fault.Phase1, Kind: fault.ErrDeadline, Detail: ctx.Err()})
	case <-wdC:
		return nil, f.abort(&fault.Error{Engine: "sim", Round: fault.Phase1, Kind: fault.ErrDeadline,
			Detail: fmt.Errorf("phase 1 convergecast stalled (watchdog %v)", watchdog)})
	}
	met.phase1.Add(int64(2*n - 2))
	if cfg.tracer != nil {
		cfg.tracer.Emit(obs.Event{Type: "phase1.done", Engine: "sim", Round: -1,
			N: 2*n - 2, DurNS: time.Since(phase1Start).Nanoseconds(), Width: width})
	}
	if rootUp.S != 0 || rootUp.D != 0 {
		f.endRun()
		return nil, f.runFailed(fmt.Errorf("sim: root still advertises %s upward; set is not schedulable", rootUp), fault.Phase1)
	}

	// Phase 2: one broadcast wave per round.
	schedule := &sched.Schedule{Set: s.Clone()}
	remaining := s.Len()
	rounds := 0
	var roundLatencies []time.Duration
	var roundMessages []int
	prevDown := phase2Base
	var runErr error
	for remaining > 0 {
		if rounds >= width+padr.MaxRoundsSlack {
			runErr = fmt.Errorf("sim: exceeded %d rounds for a width-%d set", rounds, width)
			break
		}
		roundStart := time.Now()
		if cfg.tracer != nil {
			cfg.tracer.Emit(obs.Event{Type: "round.start", Engine: "sim", Round: rounds})
		}
		// The driver is the root's parent: the root link is subject to the
		// same word faults as any other link. A lost root word stalls the
		// entire tree and the watchdog reports every PE dark.
		rootWord := ctrl.Down{Use: ctrl.UseNone}
		send := true
		if cfg.inj != nil {
			if cfg.inj.WordLost(t.Root(), rounds) {
				send = false
			} else {
				rootWord, _ = cfg.inj.CorruptDown(t.Root(), rounds, rootWord)
			}
		}
		resetWD()
		if send {
			f.down[t.Root()] <- downMsg{word: rootWord}
		}
		for pe := 0; pe < n; pe++ {
			f.reported[pe] = false
		}
		var srcs []int
		dsts := map[int]bool{}
		stalled := false
		for got := 0; got < n && !stalled; {
			select {
			case rep := <-f.reports:
				met.reports.Inc()
				if rep.ack {
					// Impossible by the FIFO/ack argument; tolerate rather
					// than corrupt the wave count.
					continue
				}
				got++
				f.reported[rep.pe] = true
				if rep.err != nil {
					runErr = fmt.Errorf("sim: round %d: %w", rounds, rep.err)
					continue
				}
				switch rep.word.Use {
				case ctrl.UseS:
					srcs = append(srcs, rep.pe)
				case ctrl.UseD:
					dsts[rep.pe] = true
				}
			case <-ctx.Done():
				runErr = &fault.Error{Engine: "sim", Round: rounds, Kind: fault.ErrDeadline, Detail: ctx.Err()}
				stalled = true
			case <-wdC:
				stall := fault.NewStall(t, f.reported)
				fe := &fault.Error{Engine: "sim", Round: rounds, Kind: fault.ErrDeadline, Detail: stall}
				if len(stall.DarkSubtrees) > 0 {
					// A single dark frontier node is the prime suspect (a
					// frozen switch shows up as exactly its subtree); pin it
					// so the audit trail names the switch, not just the wave.
					fe.Node = stall.DarkSubtrees[0]
				}
				runErr = fe
				stalled = true
			}
		}
		if stalled {
			return nil, f.abort(runErr.(*fault.Error))
		}
		// All n leaf reports are in, so every switch has forwarded both of
		// this round's words: the wave is complete and the shared counter
		// is quiescent.
		elapsed := time.Since(roundStart)
		nowDown := f.downSent.Load()
		waveMsgs := int(nowDown - prevDown)
		prevDown = nowDown
		if runErr != nil {
			break
		}
		performed := make([]comm.Comm, 0, len(srcs))
		for _, src := range srcs {
			dst := f.dstOf[src]
			if dst < 0 || !dsts[dst] {
				runErr = fmt.Errorf("sim: round %d: source %d scheduled without its destination", rounds, src)
				break
			}
			performed = append(performed, comm.Comm{Src: src, Dst: dst})
		}
		if runErr != nil {
			break
		}
		if len(performed) != len(dsts) {
			runErr = fmt.Errorf("sim: round %d: %d sources vs %d destinations", rounds, len(performed), len(dsts))
			break
		}
		if len(performed) == 0 {
			runErr = fmt.Errorf("sim: round %d made no progress", rounds)
			break
		}
		schedule.Rounds = append(schedule.Rounds, performed)
		remaining -= len(performed)
		roundLatencies = append(roundLatencies, elapsed)
		roundMessages = append(roundMessages, waveMsgs)
		met.rounds.Inc()
		met.comms.Add(int64(len(performed)))
		met.phase2.Add(int64(waveMsgs))
		met.roundLatency.ObserveDuration(elapsed)
		if cfg.tracer != nil {
			cfg.tracer.Emit(obs.Event{Type: "round.done", Engine: "sim", Round: rounds,
				N: len(performed), DurNS: elapsed.Nanoseconds()})
		}
		rounds++
	}

	// End-of-run wave: switches flush their crossbars to the stats channel
	// and return to the top of their loop, ready for the next begin wave.
	switches := f.endRun()

	if runErr != nil {
		return nil, f.runFailed(runErr, rounds)
	}
	if rounds != width {
		return nil, f.runFailed(fmt.Errorf("sim: took %d rounds for a width-%d set", rounds, width), rounds)
	}
	report := power.CollectSlice("padr-sim", cfg.mode, rounds, t, switches)
	met.switches.Add(int64(len(report.Switches)))
	for _, sw := range report.Switches {
		met.units.Add(int64(sw.Units))
		met.alternations.Add(int64(sw.Alternations))
	}
	met.runTime.ObserveDuration(time.Since(runStart))
	if cfg.tracer != nil {
		cfg.tracer.Emit(obs.Event{Type: "run.done", Engine: "sim", Round: rounds,
			N: s.Len(), DurNS: time.Since(runStart).Nanoseconds(), Width: width})
	}
	return &Result{
		Schedule:       schedule,
		Report:         report,
		Width:          width,
		Rounds:         rounds,
		Phase1Messages: 2*n - 1 - 1, // every non-root node sent one C_U word
		Phase2Messages: int(f.downSent.Load() - phase2Base),
		RoundLatencies: roundLatencies,
		RoundMessages:  roundMessages,
		Goroutines:     2*n - 1,
	}, nil
}

// runFailed routes a run error through the metrics/tracer, attributing it
// to fault injection (typed, with the dying round) when the injector fired.
func (f *Fabric) runFailed(err error, round int) error {
	if f.cfg.inj.Fired() {
		f.cfg.inj.Observe()
		var fe *fault.Error
		if !errors.As(err, &fe) {
			err = &fault.Error{Engine: "sim", Round: round, Kind: fault.ErrCorruptWord, Detail: err}
		}
	}
	f.met.errs.Inc()
	if errors.Is(err, fault.ErrDeadline) {
		f.met.deadlines.Inc()
	}
	if f.cfg.tracer != nil {
		ev := obs.Event{Type: "run.error", Engine: "sim", Round: round, Err: err.Error()}
		var fe *fault.Error
		if errors.As(err, &fe) {
			ev.Round = fe.Round
			ev.Node = int(fe.Node)
		}
		f.cfg.tracer.Emit(ev)
	}
	return err
}

// abort recovers the fabric from a stalled wave and reports the failure.
// The end-of-run wave doubles as the abort wave: control ops always go
// through (they are never fault-injected) and every node — including a
// switch still blocked in its Phase 1 select — forwards the op before
// parking, so the wave is guaranteed to terminate.
func (f *Fabric) abort(ferr *fault.Error) error {
	f.endRun()
	f.cfg.inj.Observe()
	f.met.errs.Inc()
	f.met.deadlines.Inc()
	if f.cfg.tracer != nil {
		f.cfg.tracer.Emit(obs.Event{Type: "run.error", Engine: "sim", Round: ferr.Round,
			Node: int(ferr.Node), Err: ferr.Error()})
	}
	return ferr
}

// endRun broadcasts the end-of-run wave and gathers every switch's crossbar
// into f.switches plus one ack from every leaf. After it returns, every
// node goroutine is parked at the top of its loop, the crossbars are safe
// for the driver to read (the stats handoff orders the reads after the
// goroutines' last writes), and the report channel is empty: an ack is the
// last element a leaf enqueues for a run, the channel is FIFO, so draining
// until the n-th ack provably discards every stale report of an aborted
// wave. Any up-word stranded on the root link by an aborted Phase 1 is
// drained here; interior links are drained by the switches at the next
// begin wave.
func (f *Fabric) endRun() []*xbar.Switch {
	f.down[f.tree.Root()] <- downMsg{op: opEndRun}
	for i := 0; i < f.tree.Switches(); i++ {
		st := <-f.stats
		f.switches[st.node] = st.sw
	}
	for acks := 0; acks < f.tree.Leaves(); {
		if rep := <-f.reports; rep.ack {
			acks++
		}
	}
	select {
	case <-f.up[f.tree.Root()]:
	default:
	}
	return f.switches
}

// Run executes the set on the tree with one goroutine per node, building a
// throwaway Fabric for the single run.
func Run(t *topology.Tree, s *comm.Set, opts ...Option) (*Result, error) {
	f := NewFabric(t, opts...)
	defer f.Close()
	return f.Run(s)
}

// RunContext is Run with a context bound, on a throwaway Fabric.
func RunContext(ctx context.Context, t *topology.Tree, s *comm.Set, opts ...Option) (*Result, error) {
	f := NewFabric(t, opts...)
	defer f.Close()
	return f.RunContext(ctx, s)
}

// leafLoop is the persistent PE goroutine: per run, one role word up, then
// one report per round until the end-of-run wave, which it acknowledges.
func (f *Fabric) leafLoop(pe int) {
	defer f.wg.Done()
	node := f.tree.Leaf(pe)
	upCh, downCh := f.up[node], f.down[node]
	tracer, inj := f.cfg.tracer, f.cfg.inj
	f.met.goroutines.Add(1)
	if tracer != nil {
		tracer.Emit(obs.Event{Type: "goroutine.start", Engine: "sim", Round: -1, Node: int(node), PE: pe})
	}
	defer func() {
		f.met.goroutines.Add(-1)
		if tracer != nil {
			tracer.Emit(obs.Event{Type: "goroutine.exit", Engine: "sim", Round: -1, Node: int(node), PE: pe})
		}
	}()
	for {
		msg := <-downCh
		if msg.op == opShutdown {
			return
		}
		if msg.op != opBegin {
			continue
		}
		role := f.roles[pe]
		if inj != nil && inj.WordLost(node, fault.Phase1) {
			// Role word lost: the parent's convergecast stalls and the
			// driver's watchdog turns it into ErrDeadline.
		} else {
			up := role
			if inj != nil {
				up, _ = inj.CorruptUp(node, up)
			}
			upCh <- up
		}
		done := false
		// The leaf's round counter tracks words it actually received; an
		// upstream fault can make it lag the driver's, which only skews
		// which local round later faults key on — determinism is unaffected
		// because the counter is message-driven, not clock-driven.
		round := 0
		for {
			msg := <-downCh
			if msg.op == opShutdown {
				return
			}
			if msg.op == opEndRun {
				f.reports <- leafReport{pe: pe, ack: true}
				break
			}
			if inj != nil {
				if d := inj.DelayAt(node, round); d > 0 {
					time.Sleep(d)
				}
			}
			word := msg.word
			rep := leafReport{pe: pe, word: word}
			switch word.Use {
			case ctrl.UseNone:
				// idle round
			case ctrl.UseS:
				if role.S != 1 || done || word.Xs != 0 {
					rep.err = fmt.Errorf("PE %d: bad source signal %v (role %v, done %v)", pe, word, role, done)
				}
				done = true
			case ctrl.UseD:
				if role.D != 1 || done || word.Xd != 0 {
					rep.err = fmt.Errorf("PE %d: bad destination signal %v (role %v, done %v)", pe, word, role, done)
				}
				done = true
			default:
				rep.err = fmt.Errorf("PE %d: received %v, which only switches can serve", pe, word)
			}
			f.reports <- rep
			round++
		}
	}
}

// switchLoop is the persistent switch goroutine: per run, match once in
// Phase 1, then apply padr.Step to every downward word until the
// end-of-run wave, then flush the crossbar to the stats channel.
func (f *Fabric) switchLoop(u topology.Node) {
	defer f.wg.Done()
	lc, rc := topology.Node(2*u), topology.Node(2*u+1)
	leftUp, rightUp, parentUp := f.up[lc], f.up[rc], f.up[u]
	parentDown, leftDown, rightDown := f.down[u], f.down[lc], f.down[rc]
	mode, sel, tracer, inj := f.cfg.mode, f.cfg.sel, f.cfg.tracer, f.cfg.inj
	f.met.goroutines.Add(1)
	if tracer != nil {
		tracer.Emit(obs.Event{Type: "goroutine.start", Engine: "sim", Round: -1, Node: int(u), PE: -1})
	}
	defer func() {
		f.met.goroutines.Add(-1)
		if tracer != nil {
			tracer.Emit(obs.Event{Type: "goroutine.exit", Engine: "sim", Round: -1, Node: int(u), PE: -1})
		}
	}()
	sw := xbar.NewSwitch()
	for {
		msg := <-parentDown
		if msg.op == opShutdown {
			leftDown <- msg
			rightDown <- msg
			return
		}
		if msg.op != opBegin {
			continue
		}
		// A recycled crossbar must be indistinguishable from the fresh one a
		// dedicated per-run goroutine would have built.
		sw.Zero()
		// An aborted previous run can have stranded one up-word per child
		// link (sent, never received). Drain before forwarding the begin
		// wave: the children cannot send this run's words until they see
		// the begin, which happens strictly after this drain.
		select {
		case <-leftUp:
		default:
		}
		select {
		case <-rightUp:
		default:
		}
		leftDown <- msg
		rightDown <- msg

		// Phase 1 (Steps 1.2–1.3): receive both children's words, match,
		// send the remainder upward. The two receives may complete in either
		// order; each channel carries exactly one Phase 1 word per run. The
		// wait also selects on the parent's down-link so an abort wave (the
		// driver gave up on a convergecast a fault killed below us) can
		// unwind the run instead of deadlocking against it.
		var lw, rw ctrl.Up
		haveL, haveR, unwound := false, false, false
		for !unwound && !(haveL && haveR) {
			select {
			case lw = <-leftUp:
				haveL = true
			case rw = <-rightUp:
				haveR = true
			case m := <-parentDown:
				// Mid-convergecast only control ops can arrive (the driver
				// sends no Phase 2 word before the root's up-word).
				leftDown <- m
				rightDown <- m
				f.stats <- nodeStats{node: u, sw: sw}
				if m.op == opShutdown {
					return
				}
				unwound = true
			}
		}
		if unwound {
			continue
		}
		st := ctrl.Match(lw, rw)
		if inj != nil && inj.WordLost(u, fault.Phase1) {
			// Our matched word vanishes on the parent link: the convergecast
			// above us never completes and the abort wave unwinds the run.
		} else {
			up := st.UpWord()
			if inj != nil {
				up, _ = inj.CorruptUp(u, up)
			}
			parentUp <- up
		}

		// Phase 2: every downward word triggers one Step and two forwards,
		// until the end-of-run (or shutdown) wave unwinds the run.
		round := 0
		for {
			msg := <-parentDown
			if msg.op != opWord {
				leftDown <- msg
				rightDown <- msg
				f.stats <- nodeStats{node: u, sw: sw}
				if msg.op == opShutdown {
					return
				}
				break
			}
			if inj != nil {
				if d := inj.DelayAt(u, round); d > 0 {
					time.Sleep(d)
				}
				if inj.FrozenAt(u, round) {
					// Frozen: swallow the word — no Step, no forwards. The
					// subtree goes dark and the driver's watchdog reports it
					// as exactly this subtree. Control ops above still pass,
					// so the abort wave gets through.
					round++
					continue
				}
			}
			if mode == power.Stateless {
				sw.Reset()
			}
			before := sw.Config()
			left, right, err := padr.Step(&st, sw, msg.word, sel)
			if err != nil {
				// A corrupted word must not wedge the wave: forward idle
				// words so every leaf still reports, and surface the failure
				// through the leaf report of some scheduled PE (the driver
				// also detects the stall as "no progress").
				left, right = ctrl.Down{Use: ctrl.UseNone}, ctrl.Down{Use: ctrl.UseNone}
			}
			if tracer != nil {
				if after := sw.Config(); after != before {
					tracer.Emit(obs.Event{Type: "switch.config", Engine: "sim", Round: round,
						Node: int(u), Config: after.String()})
				}
				tracer.Emit(obs.Event{Type: "word.send", Engine: "sim", Round: round,
					Node: int(u), Child: int(lc), Word: left.String()})
				tracer.Emit(obs.Event{Type: "word.send", Engine: "sim", Round: round,
					Node: int(u), Child: int(rc), Word: right.String()})
			}
			sent := int64(0)
			if inj == nil || !inj.WordLost(lc, round) {
				if inj != nil {
					left, _ = inj.CorruptDown(lc, round, left)
				}
				leftDown <- downMsg{word: left}
				sent++
			}
			if inj == nil || !inj.WordLost(rc, round) {
				if inj != nil {
					right, _ = inj.CorruptDown(rc, round, right)
				}
				rightDown <- downMsg{word: right}
				sent++
			}
			f.downSent.Add(sent)
			round++
		}
	}
}

// Package sim executes the CSA algorithm as a truly concurrent
// message-passing system: one goroutine per switch and per PE, one pair of
// channels per tree link (an upward half for C_U words, a downward half for
// C_{D-L}/C_{D-R} words). No node shares memory with any other; every
// decision uses only the node's local state and the words on its links,
// exactly as the distributed algorithm prescribes (paper §2.2).
//
// Phase 1 is a single convergecast wave: leaves emit their role words and
// every switch matches its children's words (ctrl.Match) before forwarding
// upward. Each Phase 2 round is a broadcast wave: the driver injects
// [null,null] at the root, every switch runs the identical padr.Step
// transition, and the leaves report what they were told to a collector
// channel, which is how the driver detects the end of the round.
//
// The sequential engine (package padr) and this simulation must produce
// identical schedules and identical power ledgers; tests assert this, and
// experiment E8 measures the message counts.
package sim

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/sched"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Option configures a simulation.
type Option func(*config)

type config struct {
	mode power.Mode
	sel  padr.Selection
}

// WithMode selects the power accounting mode (default power.Stateful).
func WithMode(m power.Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithSelection picks the matched-pair selection rule (default
// padr.Conservative), mirroring padr.WithSelection.
func WithSelection(sel padr.Selection) Option {
	return func(c *config) { c.sel = sel }
}

// Result is the outcome of a concurrent run.
type Result struct {
	// Schedule lists the communications performed per round.
	Schedule *sched.Schedule
	// Report is the power ledger, collected from the switch goroutines'
	// crossbars after they exit.
	Report *power.Report
	// Width is the set's link width; Rounds == Width on success.
	Width, Rounds int
	// Phase1Messages counts C_U words carried by channels (one per link).
	Phase1Messages int
	// Phase2Messages counts C_{D-*} words carried by channels over all
	// rounds.
	Phase2Messages int
	// Goroutines is the number of node goroutines that ran (2N-1).
	Goroutines int
}

// leafReport is what a PE tells the driver at the end of each round.
type leafReport struct {
	pe   int
	word ctrl.Down
	err  error
}

// nodeStats is what a switch goroutine hands back when it shuts down.
type nodeStats struct {
	node     topology.Node
	sw       *xbar.Switch
	downSent int
}

// Run executes the set on the tree with one goroutine per node.
func Run(t *topology.Tree, s *comm.Set, opts ...Option) (*Result, error) {
	cfg := config{mode: power.Stateful}
	for _, o := range opts {
		o(&cfg)
	}
	if t.Leaves() != s.N {
		return nil, fmt.Errorf("sim: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.IsWellNested() {
		return nil, fmt.Errorf("sim: set is not an oriented well-nested set: %s", s.String())
	}
	width, err := s.Width(t)
	if err != nil {
		return nil, err
	}

	n := t.Leaves()
	// Channel fabric. up[node] carries the node's C_U word to its parent;
	// down[node] carries C_{D-*} words from the parent to the node; closing
	// down[node] tells the node's goroutine to shut down.
	up := make(map[topology.Node]chan ctrl.Up, 2*n)
	down := make(map[topology.Node]chan ctrl.Down, 2*n)
	for node := topology.Node(1); int(node) < 2*n; node++ {
		up[node] = make(chan ctrl.Up, 1)
		down[node] = make(chan ctrl.Down, 1)
	}
	reports := make(chan leafReport, n)
	stats := make(chan nodeStats, t.Switches())

	role := make([]ctrl.Up, n)
	dstOf := make(map[int]int, s.Len())
	for _, c := range s.Comms {
		role[c.Src] = ctrl.Up{S: 1}
		role[c.Dst] = ctrl.Up{D: 1}
		dstOf[c.Src] = c.Dst
	}

	// PE goroutines.
	for pe := 0; pe < n; pe++ {
		node := t.Leaf(pe)
		go runLeaf(pe, role[pe], up[node], down[node], reports)
	}
	// Switch goroutines.
	t.EachSwitch(func(u topology.Node) {
		go runSwitch(u, cfg.mode, cfg.sel,
			up[t.Left(u)], up[t.Right(u)], up[u],
			down[u], down[t.Left(u)], down[t.Right(u)],
			stats)
	})

	// Phase 1: wait for the root's upward word.
	rootUp := <-up[t.Root()]
	if rootUp.S != 0 || rootUp.D != 0 {
		close(down[t.Root()])
		drain(t, stats)
		return nil, fmt.Errorf("sim: root still advertises %s upward; set is not schedulable", rootUp)
	}

	// Phase 2: one broadcast wave per round.
	schedule := &sched.Schedule{Set: s.Clone()}
	remaining := s.Len()
	rounds := 0
	var runErr error
	for remaining > 0 {
		if rounds >= width+padr.MaxRoundsSlack {
			runErr = fmt.Errorf("sim: exceeded %d rounds for a width-%d set", rounds, width)
			break
		}
		down[t.Root()] <- ctrl.Down{Use: ctrl.UseNone}
		var srcs []int
		dsts := map[int]bool{}
		for i := 0; i < n; i++ {
			rep := <-reports
			if rep.err != nil {
				runErr = fmt.Errorf("sim: round %d: %v", rounds, rep.err)
				continue
			}
			switch rep.word.Use {
			case ctrl.UseS:
				srcs = append(srcs, rep.pe)
			case ctrl.UseD:
				dsts[rep.pe] = true
			}
		}
		if runErr != nil {
			break
		}
		performed := make([]comm.Comm, 0, len(srcs))
		for _, src := range srcs {
			dst, ok := dstOf[src]
			if !ok || !dsts[dst] {
				runErr = fmt.Errorf("sim: round %d: source %d scheduled without its destination", rounds, src)
				break
			}
			performed = append(performed, comm.Comm{Src: src, Dst: dst})
		}
		if runErr != nil {
			break
		}
		if len(performed) != len(dsts) {
			runErr = fmt.Errorf("sim: round %d: %d sources vs %d destinations", rounds, len(performed), len(dsts))
			break
		}
		if len(performed) == 0 {
			runErr = fmt.Errorf("sim: round %d made no progress", rounds)
			break
		}
		schedule.Rounds = append(schedule.Rounds, performed)
		remaining -= len(performed)
		rounds++
	}

	// Shutdown: close the root's downward channel; switches propagate the
	// close to their children and hand their crossbars to the stats channel.
	close(down[t.Root()])
	switches, downSent := collect(t, stats)

	if runErr != nil {
		return nil, runErr
	}
	if rounds != width {
		return nil, fmt.Errorf("sim: took %d rounds for a width-%d set", rounds, width)
	}
	return &Result{
		Schedule:       schedule,
		Report:         power.Collect("padr-sim", cfg.mode, rounds, t, switches),
		Width:          width,
		Rounds:         rounds,
		Phase1Messages: 2*n - 1 - 1, // every non-root node sent one C_U word
		Phase2Messages: downSent,
		Goroutines:     2*n - 1,
	}, nil
}

func drain(t *topology.Tree, stats chan nodeStats) {
	collect(t, stats)
}

// collect waits for every switch goroutine to shut down and returns their
// crossbars plus the total number of downward words they sent.
func collect(t *topology.Tree, stats chan nodeStats) (map[topology.Node]*xbar.Switch, int) {
	switches := make(map[topology.Node]*xbar.Switch, t.Switches())
	total := 0
	for i := 0; i < t.Switches(); i++ {
		st := <-stats
		switches[st.node] = st.sw
		total += st.downSent
	}
	return switches, total
}

// runLeaf is the PE goroutine: one role word up, then one report per round.
func runLeaf(pe int, role ctrl.Up, upCh chan<- ctrl.Up, downCh <-chan ctrl.Down, reports chan<- leafReport) {
	upCh <- role
	done := false
	for word := range downCh {
		rep := leafReport{pe: pe, word: word}
		switch word.Use {
		case ctrl.UseNone:
			// idle round
		case ctrl.UseS:
			if role.S != 1 || done || word.Xs != 0 {
				rep.err = fmt.Errorf("PE %d: bad source signal %v (role %v, done %v)", pe, word, role, done)
			}
			done = true
		case ctrl.UseD:
			if role.D != 1 || done || word.Xd != 0 {
				rep.err = fmt.Errorf("PE %d: bad destination signal %v (role %v, done %v)", pe, word, role, done)
			}
			done = true
		default:
			rep.err = fmt.Errorf("PE %d: received %v, which only switches can serve", pe, word)
		}
		reports <- rep
	}
}

// runSwitch is the switch goroutine: match once in Phase 1, then apply
// padr.Step to every downward word until the parent closes the link.
func runSwitch(u topology.Node, mode power.Mode, sel padr.Selection,
	leftUp, rightUp <-chan ctrl.Up, parentUp chan<- ctrl.Up,
	parentDown <-chan ctrl.Down, leftDown, rightDown chan<- ctrl.Down,
	stats chan<- nodeStats) {

	sw := xbar.NewSwitch()
	downSent := 0

	// Phase 1 (Steps 1.2–1.3): receive both children's words, match, send
	// the remainder upward. The two receives may complete in either order;
	// each channel carries exactly one Phase 1 word.
	st := ctrl.Match(<-leftUp, <-rightUp)
	parentUp <- st.UpWord()

	// Phase 2: every downward word triggers one Step and two forwards.
	for word := range parentDown {
		if mode == power.Stateless {
			sw.Reset()
		}
		left, right, err := padr.Step(&st, sw, word, sel)
		if err != nil {
			// A corrupted word must not wedge the wave: forward idle words
			// so every leaf still reports, and surface the failure through
			// the leaf report of some scheduled PE (the driver also detects
			// the stall as "no progress").
			left, right = ctrl.Down{Use: ctrl.UseNone}, ctrl.Down{Use: ctrl.UseNone}
		}
		leftDown <- left
		rightDown <- right
		downSent += 2
	}
	close(leftDown)
	close(rightDown)
	stats <- nodeStats{node: u, sw: sw, downSent: downSent}
}

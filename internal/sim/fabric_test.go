package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

func sortRounds(rounds [][]comm.Comm) {
	for _, r := range rounds {
		sort.Slice(r, func(i, j int) bool { return r[i].Src < r[j].Src })
	}
}

// TestFabricReuseMatchesFreshRuns pins the persistent-fabric contract:
// running several sets back to back through one Fabric produces exactly the
// results of independent Run calls — schedules, power ledgers, message and
// goroutine counts.
func TestFabricReuseMatchesFreshRuns(t *testing.T) {
	const n = 32
	tree := topology.MustNew(n)
	rng := rand.New(rand.NewSource(11))
	sets := []*comm.Set{}
	for _, gen := range []func() (*comm.Set, error){
		func() (*comm.Set, error) { return comm.NestedChain(n, 4) },
		func() (*comm.Set, error) { return comm.SplitChain(n, 4) },
		func() (*comm.Set, error) { return comm.RandomWellNested(rng, n, 8) },
		func() (*comm.Set, error) { return comm.NewSet(n), nil },
		func() (*comm.Set, error) { return comm.Staircase(n, 5) },
	} {
		s, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, s)
	}

	f := NewFabric(tree)
	defer f.Close()
	for i, s := range sets {
		reused, err := f.Run(s)
		if err != nil {
			t.Fatalf("set %d: fabric run: %v", i, err)
		}
		fresh, err := Run(tree, s)
		if err != nil {
			t.Fatalf("set %d: fresh run: %v", i, err)
		}
		// RoundLatencies is wall-clock timing and the order of completions
		// within one round follows goroutine arrival order; neither is part
		// of the contract. Everything else must be bit-identical.
		ru, fr := *reused, *fresh
		ru.RoundLatencies, fr.RoundLatencies = nil, nil
		sortRounds(ru.Schedule.Rounds)
		sortRounds(fr.Schedule.Rounds)
		if !reflect.DeepEqual(ru, fr) {
			t.Errorf("set %d: persistent fabric diverged from fresh run\nreused: %+v\nfresh:  %+v",
				i, ru, fr)
		}
	}
}

// TestFabricRejectsAfterClose pins that a closed fabric fails loudly rather
// than deadlocking on dead goroutines.
func TestFabricRejectsAfterClose(t *testing.T) {
	tree := topology.MustNew(8)
	f := NewFabric(tree)
	if _, err := f.Run(comm.MustParse("(.)(.)..")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // idempotent
	if _, err := f.Run(comm.MustParse("(.)(.)..")); err == nil {
		t.Fatal("Run on a closed fabric must error")
	}
}

// TestFabricValidationKeepsFabricLive pins that a rejected set (validation
// failure) leaves the fabric's goroutines healthy for the next run.
func TestFabricValidationKeepsFabricLive(t *testing.T) {
	tree := topology.MustNew(8)
	f := NewFabric(tree)
	defer f.Close()
	bad := comm.NewSet(16) // wrong leaf count
	if _, err := f.Run(bad); err == nil {
		t.Fatal("mismatched set must error")
	}
	good := comm.MustParse("((.))...")
	out, err := f.Run(good)
	if err != nil {
		t.Fatalf("run after rejection: %v", err)
	}
	if out.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", out.Rounds)
	}
}

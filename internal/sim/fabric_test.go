package sim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/topology"
)

func sortRounds(rounds [][]comm.Comm) {
	for _, r := range rounds {
		sort.Slice(r, func(i, j int) bool { return r[i].Src < r[j].Src })
	}
}

// TestFabricReuseMatchesFreshRuns pins the persistent-fabric contract:
// running several sets back to back through one Fabric produces exactly the
// results of independent Run calls — schedules, power ledgers, message and
// goroutine counts.
func TestFabricReuseMatchesFreshRuns(t *testing.T) {
	const n = 32
	tree := topology.MustNew(n)
	rng := rand.New(rand.NewSource(11))
	sets := []*comm.Set{}
	for _, gen := range []func() (*comm.Set, error){
		func() (*comm.Set, error) { return comm.NestedChain(n, 4) },
		func() (*comm.Set, error) { return comm.SplitChain(n, 4) },
		func() (*comm.Set, error) { return comm.RandomWellNested(rng, n, 8) },
		func() (*comm.Set, error) { return comm.NewSet(n), nil },
		func() (*comm.Set, error) { return comm.Staircase(n, 5) },
	} {
		s, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, s)
	}

	f := NewFabric(tree)
	defer f.Close()
	for i, s := range sets {
		reused, err := f.Run(s)
		if err != nil {
			t.Fatalf("set %d: fabric run: %v", i, err)
		}
		fresh, err := Run(tree, s)
		if err != nil {
			t.Fatalf("set %d: fresh run: %v", i, err)
		}
		// RoundLatencies is wall-clock timing and the order of completions
		// within one round follows goroutine arrival order; neither is part
		// of the contract. Everything else must be bit-identical.
		ru, fr := *reused, *fresh
		ru.RoundLatencies, fr.RoundLatencies = nil, nil
		sortRounds(ru.Schedule.Rounds)
		sortRounds(fr.Schedule.Rounds)
		if !reflect.DeepEqual(ru, fr) {
			t.Errorf("set %d: persistent fabric diverged from fresh run\nreused: %+v\nfresh:  %+v",
				i, ru, fr)
		}
	}
}

// TestFabricRejectsAfterClose pins that a closed fabric fails loudly rather
// than deadlocking on dead goroutines.
func TestFabricRejectsAfterClose(t *testing.T) {
	tree := topology.MustNew(8)
	f := NewFabric(tree)
	if _, err := f.Run(comm.MustParse("(.)(.)..")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // idempotent
	if _, err := f.Run(comm.MustParse("(.)(.)..")); err == nil {
		t.Fatal("Run on a closed fabric must error")
	}
}

// waitGoroutines polls until the live goroutine count reaches want (node
// goroutines decrement their WaitGroup slightly before their final returns
// retire, so an instantaneous count can transiently overshoot).
func waitGoroutines(t *testing.T, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines live, want <= %d", what, n, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFabricGoroutineAccounting pins the fabric's goroutine ledger: NewFabric
// spawns exactly one goroutine per tree node (leaves + switches), runs add
// none, and Close — even a double Close, even after a deadline abort —
// returns every one of them.
func TestFabricGoroutineAccounting(t *testing.T) {
	base := runtime.NumGoroutine()
	tree := topology.MustNew(16)
	f := NewFabric(tree)
	spawned := tree.Leaves() + tree.Switches()
	if n := runtime.NumGoroutine(); n != base+spawned {
		t.Fatalf("NewFabric: %d goroutines live, want %d + %d nodes", n, base, spawned)
	}
	good, err := comm.RandomWellNested(rand.New(rand.NewSource(3)), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Run(good); err != nil {
			t.Fatal(err)
		}
	}
	if n := runtime.NumGoroutine(); n != base+spawned {
		t.Fatalf("after runs: %d goroutines live, want %d", n, base+spawned)
	}
	f.Close()
	f.Close()
	waitGoroutines(t, base, "after Close")
}

// TestFabricContextCancel pins the deadline path: a canceled context aborts
// the run with a typed fault.ErrDeadline, and the aborted fabric remains
// fully usable afterwards.
func TestFabricContextCancel(t *testing.T) {
	tree := topology.MustNew(8)
	// An injector (with an empty plan) arms the watchdog machinery; the
	// pre-canceled context must still win immediately.
	f := NewFabric(tree, WithFaults(fault.New(nil)), WithWatchdog(time.Minute))
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set := comm.MustParse("(.)(.)..")
	if _, err := f.RunContext(ctx, set); !errors.Is(err, fault.ErrDeadline) {
		t.Fatalf("canceled context: err = %v, want fault.ErrDeadline", err)
	}
	out, err := f.Run(set)
	if err != nil {
		t.Fatalf("run after context abort: %v", err)
	}
	if out.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", out.Rounds)
	}
}

// TestFabricWatchdogStallReport pins the watchdog diagnosis: a switch frozen
// for the whole run starves its subtree, and the resulting ErrDeadline
// carries a stall report naming exactly the dark subtree and its PEs.
func TestFabricWatchdogStallReport(t *testing.T) {
	tree := topology.MustNew(8)
	inj := fault.New([]fault.Fault{
		{Kind: fault.FreezeSwitch, Node: 3, Run: 0, Round: 0, Duration: 64},
	})
	f := NewFabric(tree, WithFaults(inj), WithWatchdog(30*time.Millisecond))
	defer f.Close()
	// A comm inside the left half and one inside the right half: the right
	// one needs words through frozen switch 3, so PEs 4..7 go silent.
	set := comm.MustParse("(.).(.).")
	_, err := f.RunContext(context.Background(), set)
	if !errors.Is(err, fault.ErrDeadline) {
		t.Fatalf("err = %v, want fault.ErrDeadline", err)
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *fault.Error", err)
	}
	var stall *fault.Stall
	if !errors.As(err, &stall) {
		t.Fatalf("deadline error carries no stall report: %v", err)
	}
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(stall.MissingPEs, want) {
		t.Errorf("MissingPEs = %v, want %v", stall.MissingPEs, want)
	}
	if want := []topology.Node{3}; !reflect.DeepEqual(stall.DarkSubtrees, want) {
		t.Errorf("DarkSubtrees = %v, want %v", stall.DarkSubtrees, want)
	}
	// The watchdog abort must leave the fabric reusable.
	if _, err := f.Run(set); err != nil {
		t.Fatalf("run after watchdog abort: %v", err)
	}
}

// TestFabricValidationKeepsFabricLive pins that a rejected set (validation
// failure) leaves the fabric's goroutines healthy for the next run.
func TestFabricValidationKeepsFabricLive(t *testing.T) {
	tree := topology.MustNew(8)
	f := NewFabric(tree)
	defer f.Close()
	bad := comm.NewSet(16) // wrong leaf count
	if _, err := f.Run(bad); err == nil {
		t.Fatal("mismatched set must error")
	}
	good := comm.MustParse("((.))...")
	out, err := f.Run(good)
	if err != nil {
		t.Fatalf("run after rejection: %v", err)
	}
	if out.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", out.Rounds)
	}
}

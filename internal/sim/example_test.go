package sim_test

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/sim"
	"cst/internal/topology"
)

// Run the algorithm as a real message-passing system: one goroutine per
// switch and PE, channels as the tree links.
func ExampleRun() {
	set := comm.MustParse("(((())))")
	tree := topology.MustNew(8)
	res, err := sim.Run(tree, set)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d goroutines, %d phase-1 words, %d rounds\n",
		res.Goroutines, res.Phase1Messages, res.Rounds)
	// Output:
	// 15 goroutines, 14 phase-1 words, 4 rounds
}

package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"cst/internal/comm"
	"cst/internal/obs"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/topology"
)

func TestRejectsBadInputs(t *testing.T) {
	tr := topology.MustNew(8)
	if _, err := Run(tr, comm.MustParse("(())")); err == nil {
		t.Error("size mismatch: want error")
	}
	crossing := comm.NewSet(8, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 3})
	if _, err := Run(tr, crossing); err == nil {
		t.Error("crossing set: want error")
	}
	invalid := comm.NewSet(8, comm.Comm{Src: 0, Dst: 99})
	if _, err := Run(tr, invalid); err == nil {
		t.Error("invalid set: want error")
	}
}

func TestEmptySet(t *testing.T) {
	tr := topology.MustNew(8)
	res, err := Run(tr, comm.NewSet(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Report.TotalUnits() != 0 {
		t.Fatalf("empty set: %d rounds, %d units", res.Rounds, res.Report.TotalUnits())
	}
	if res.Goroutines != 15 {
		t.Fatalf("goroutines = %d, want 15", res.Goroutines)
	}
	if res.Phase1Messages != 14 {
		t.Fatalf("phase1 messages = %d, want 14", res.Phase1Messages)
	}
}

func TestSimpleSchedules(t *testing.T) {
	for _, expr := range []string{"(.)", "(())", "(()())..", "(((())))"} {
		s := comm.MustParse(expr)
		tr := topology.MustNew(s.N)
		res, err := Run(tr, s)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		if err := res.Schedule.VerifyOptimal(tr); err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		// Every round broadcasts one word per link: 2N-2 words.
		if want := res.Rounds * (2*s.N - 2); res.Phase2Messages != want {
			t.Fatalf("%q: phase2 messages = %d, want %d", expr, res.Phase2Messages, want)
		}
	}
}

// The concurrent simulation must agree with the sequential engine exactly:
// same rounds, same per-round communication sets, same power ledger.
func TestEquivalenceWithSequentialEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 80; trial++ {
		n := 1 << (2 + rng.Intn(5)) // 4..64
		s, err := comm.RandomWellNested(rng, n, rng.Intn(n/2+1))
		if err != nil {
			t.Fatal(err)
		}
		tr := topology.MustNew(n)

		seqEng, err := padr.New(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := seqEng.Run()
		if err != nil {
			t.Fatalf("seq %s: %v", s, err)
		}
		conc, err := Run(tr, s)
		if err != nil {
			t.Fatalf("conc %s: %v", s, err)
		}

		if seq.Rounds != conc.Rounds {
			t.Fatalf("%s: rounds %d vs %d", s, seq.Rounds, conc.Rounds)
		}
		for r := range seq.Schedule.Rounds {
			a := commSet(seq.Schedule.Rounds[r])
			b := commSet(conc.Schedule.Rounds[r])
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s round %d: %v vs %v", s, r, a, b)
			}
		}
		if seq.Report.TotalUnits() != conc.Report.TotalUnits() ||
			seq.Report.MaxUnits() != conc.Report.MaxUnits() ||
			seq.Report.MaxAlternations() != conc.Report.MaxAlternations() {
			t.Fatalf("%s: power ledgers differ: %s vs %s", s, seq.Report.Summary(), conc.Report.Summary())
		}
	}
}

func commSet(cs []comm.Comm) map[comm.Comm]bool {
	m := make(map[comm.Comm]bool, len(cs))
	for _, c := range cs {
		m[c] = true
	}
	return m
}

func TestStatelessMode(t *testing.T) {
	tr := topology.MustNew(64)
	s, err := comm.NestedChain(64, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, s, WithMode(power.Stateless))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Mode != power.Stateless {
		t.Fatal("mode not recorded")
	}
	if res.Report.MaxUnits() < 12 {
		t.Fatalf("stateless chain must cost the root >= w units, got %d", res.Report.MaxUnits())
	}
}

// Per-round telemetry must be populated on every run, instrumented or not:
// one latency and one message count per round, message counts summing to
// the Phase 2 total.
func TestRoundTelemetry(t *testing.T) {
	s := comm.MustParse("(((())))")
	tr := topology.MustNew(s.N)
	res, err := Run(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundLatencies) != res.Rounds {
		t.Fatalf("RoundLatencies has %d entries, want %d", len(res.RoundLatencies), res.Rounds)
	}
	if len(res.RoundMessages) != res.Rounds {
		t.Fatalf("RoundMessages has %d entries, want %d", len(res.RoundMessages), res.Rounds)
	}
	sum := 0
	for r, m := range res.RoundMessages {
		if m != 2*s.N-2 {
			t.Fatalf("round %d carried %d words, want %d (one per link)", r, m, 2*s.N-2)
		}
		sum += m
	}
	if sum != res.Phase2Messages {
		t.Fatalf("RoundMessages sums to %d, Phase2Messages = %d", sum, res.Phase2Messages)
	}
	for r, d := range res.RoundLatencies {
		if d <= 0 {
			t.Fatalf("round %d latency = %v, want > 0", r, d)
		}
	}
}

// An instrumented run must publish consistent cst_sim_* series and JSONL
// events; a second uninstrumented run must leave the registry untouched.
func TestInstrumentedRunMetrics(t *testing.T) {
	s := comm.MustParse("(()())..")
	tr := topology.MustNew(s.N)
	reg := obs.New()
	tracer := obs.NewTracer(nil, 4096)
	res, err := Run(tr, s, WithRegistry(reg), WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cst_sim_rounds_total"]; got != int64(res.Rounds) {
		t.Fatalf("rounds counter = %d, want %d", got, res.Rounds)
	}
	if got := snap.Counters["cst_sim_phase1_messages_total"]; got != int64(res.Phase1Messages) {
		t.Fatalf("phase1 counter = %d, want %d", got, res.Phase1Messages)
	}
	if got := snap.Counters["cst_sim_phase2_messages_total"]; got != int64(res.Phase2Messages) {
		t.Fatalf("phase2 counter = %d, want %d", got, res.Phase2Messages)
	}
	if got := snap.Counters["cst_sim_comms_scheduled_total"]; got != int64(s.Len()) {
		t.Fatalf("comms counter = %d, want %d", got, s.Len())
	}
	if got := snap.Counters["cst_sim_power_units_total"]; got != int64(res.Report.TotalUnits()) {
		t.Fatalf("units counter = %d, want %d", got, res.Report.TotalUnits())
	}
	if got := snap.Gauges["cst_sim_goroutines"]; got != 0 {
		t.Fatalf("goroutine gauge = %d after shutdown, want 0", got)
	}
	hist := snap.Histograms["cst_sim_round_latency_seconds"]
	if hist.Count != int64(res.Rounds) {
		t.Fatalf("latency histogram has %d samples, want %d", hist.Count, res.Rounds)
	}
	if tracer.Events() == 0 {
		t.Fatal("tracer saw no events")
	}

	if _, err := Run(tr, s); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("cst_sim_runs_total", "").Value(); got != 1 {
		t.Fatalf("uninstrumented run leaked into the registry: runs = %d, want 1", got)
	}
}

// A failing run must tick the error counter rather than the success series.
func TestInstrumentedRunError(t *testing.T) {
	tr := topology.MustNew(8)
	reg := obs.New()
	if _, err := Run(tr, comm.MustParse("(())"), WithRegistry(reg)); err == nil {
		t.Fatal("size mismatch: want error")
	}
	if got := reg.Counter("cst_sim_errors_total", "").Value(); got != 1 {
		t.Fatalf("errors counter = %d, want 1", got)
	}
}

func TestLargerConcurrentRun(t *testing.T) {
	tr := topology.MustNew(512)
	rng := rand.New(rand.NewSource(9))
	s, err := comm.RandomWellNested(rng, 512, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.VerifyOptimal(tr); err != nil {
		t.Fatal(err)
	}
	if res.Goroutines != 1023 {
		t.Fatalf("goroutines = %d, want 1023", res.Goroutines)
	}
	if res.Report.MaxUnits() > 6 {
		t.Fatalf("max units = %d, want O(1)", res.Report.MaxUnits())
	}
}

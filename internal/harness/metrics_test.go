package harness

import (
	"strings"
	"testing"

	"cst/internal/obs"
)

// MetricsSummary must render one row per engine that ran, derive the
// per-round and per-switch ratios, and omit idle engines.
func TestMetricsSummary(t *testing.T) {
	r := obs.New()
	r.Counter("cst_padr_runs_total", "").Add(2)
	r.Counter("cst_padr_rounds_total", "").Add(10)
	r.Counter("cst_padr_phase2_words_total", "").Add(140)
	r.Counter("cst_padr_power_units_total", "").Add(66)
	r.Counter("cst_padr_switches_total", "").Add(33)
	h := r.Histogram("cst_padr_round_latency_seconds", "", []float64{0.001, 0.01})
	for i := 0; i < 10; i++ {
		h.Observe(0.0005)
	}

	out := MetricsSummary(r.Snapshot())
	if !strings.HasPrefix(out, "|") {
		t.Errorf("summary is not a markdown table:\n%s", out)
	}
	for _, want := range []string{
		"| padr ", "| 2 ", "| 10 ",
		"14.00", // 140 phase-2 words over 10 rounds
		"2.00",  // 66 units over 33 switches
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "| sim ") || strings.Contains(out, "| online ") {
		t.Errorf("idle engines must be omitted:\n%s", out)
	}
}

// The online dispatcher row measures latency in rounds and throughput per
// busy round.
func TestMetricsSummaryOnlineRow(t *testing.T) {
	r := obs.New()
	r.Counter("cst_online_batches_total", "").Add(4)
	r.Counter("cst_online_busy_rounds_total", "").Add(20)
	r.Counter("cst_online_completed_total", "").Add(30)
	h := r.Histogram("cst_online_request_latency_rounds", "", []float64{1, 8, 64})
	for i := 0; i < 8; i++ {
		h.Observe(4)
	}
	out := MetricsSummary(r.Snapshot())
	if !strings.Contains(out, "| online ") {
		t.Fatalf("missing online row:\n%s", out)
	}
	if !strings.Contains(out, "rd") {
		t.Errorf("online latency must be in rounds:\n%s", out)
	}
	if !strings.Contains(out, "1.50") { // 30 completed over 20 busy rounds
		t.Errorf("missing completions-per-round ratio:\n%s", out)
	}
}

// An all-idle snapshot yields the explanatory line, not an empty table.
func TestMetricsSummaryEmpty(t *testing.T) {
	out := MetricsSummary(obs.New().Snapshot())
	if !strings.Contains(out, "no instrumented engine runs") {
		t.Errorf("empty snapshot summary = %q", out)
	}
}

package harness

import (
	"fmt"
	"time"

	"cst/internal/obs"
	"cst/internal/stats"
)

// MetricsSummary renders the per-engine observability snapshot as a
// markdown table: round-latency quantiles, messages per round and
// configuration changes per switch. Engines with no runs in the snapshot
// are omitted; an all-idle snapshot yields an explanatory line instead of
// an empty table. Pass a Snapshot.Sub delta to scope the table to one
// experiment while the underlying registry keeps serving /metrics live.
func MetricsSummary(snap obs.Snapshot) string {
	tab := stats.NewTable("engine", "runs", "rounds",
		"p50 round", "p95 round", "p99 round", "msgs/round", "changes/switch")
	rows := 0

	// Sequential and concurrent engines share a schema modulo the prefix.
	for _, eng := range []struct {
		name, runs, rounds, lat, msgs, units, switches string
	}{
		{"padr", "cst_padr_runs_total", "cst_padr_rounds_total",
			"cst_padr_round_latency_seconds", "cst_padr_phase2_words_total",
			"cst_padr_power_units_total", "cst_padr_switches_total"},
		{"sim", "cst_sim_runs_total", "cst_sim_rounds_total",
			"cst_sim_round_latency_seconds", "cst_sim_phase2_messages_total",
			"cst_sim_power_units_total", "cst_sim_switches_total"},
	} {
		runs := snap.Counters[eng.runs]
		if runs == 0 {
			continue
		}
		rounds := snap.Counters[eng.rounds]
		lat := snap.Histograms[eng.lat]
		tab.AddRow(eng.name, runs, rounds,
			fmtSeconds(lat.Quantile(0.50)),
			fmtSeconds(lat.Quantile(0.95)),
			fmtSeconds(lat.Quantile(0.99)),
			ratio(snap.Counters[eng.msgs], rounds),
			ratio(snap.Counters[eng.units], snap.Counters[eng.switches]))
		rows++
	}

	// The online dispatcher measures latency in fabric rounds, not wall
	// seconds, and batches rather than runs.
	if batches := snap.Counters["cst_online_batches_total"]; batches > 0 {
		lat := snap.Histograms["cst_online_request_latency_rounds"]
		busy := snap.Counters["cst_online_busy_rounds_total"]
		tab.AddRow("online", batches, busy,
			fmt.Sprintf("%.0f rd", lat.Quantile(0.50)),
			fmt.Sprintf("%.0f rd", lat.Quantile(0.95)),
			fmt.Sprintf("%.0f rd", lat.Quantile(0.99)),
			ratio(snap.Counters["cst_online_completed_total"], busy),
			"-")
		rows++
	}

	if rows == 0 {
		return "(no instrumented engine runs in this snapshot)\n"
	}
	return tab.Markdown()
}

// fmtSeconds renders a histogram quantile (seconds) as a human duration.
func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Nanosecond).String()
	}
}

// ratio formats a/b to two decimals, guarding b == 0.
func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

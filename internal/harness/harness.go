// Package harness defines the paper-reproduction experiments (DESIGN.md §3,
// rows E1–E12). Every experiment regenerates one claim of the paper —
// Theorems 4, 5 and 8, the efficiency statement, and the contrast with the
// prior ID-based scheduler — as a printed table plus an "observed" verdict
// line. cmd/cstbench and the repository-level benchmarks are thin wrappers.
package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"cst/internal/adversary"
	"cst/internal/audit"
	"cst/internal/baseline"
	"cst/internal/circuit"
	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/deliver"
	"cst/internal/energy"
	"cst/internal/general"
	"cst/internal/lab"
	"cst/internal/lemma"
	"cst/internal/obs"
	"cst/internal/online"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/segbus"
	"cst/internal/sim"
	"cst/internal/srga"
	"cst/internal/stats"
	"cst/internal/timing"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Config tunes an experiment run.
type Config struct {
	// Seed makes every experiment reproducible.
	Seed int64
	// Quick shrinks the sweeps (used by `go test` and -bench smoke runs).
	Quick bool
	// Obs, when non-nil, receives every engine's metric series: the
	// experiments thread it through the padr, sim and online constructors,
	// so a live /metrics endpoint watches the run as it happens.
	Obs *obs.Registry
	// Trace, when non-nil, receives the engines' structured JSONL events.
	Trace *obs.Tracer
	// Audit, when non-nil, follows the run live: RunOne installs it as the
	// tracer's sink, so the power ledger and theorem monitors replay every
	// experiment's event stream as it happens. Requires Trace to be set —
	// the auditor taps the same stream the tracer records.
	Audit *audit.Auditor
	// Ledger, when non-nil, collects one wall-clock entry per experiment
	// ("harness/E1" in ns). The caller stamps provenance (machine, git SHA,
	// timestamp) via lab.Stamp and appends the batch to the perf-lab ledger.
	Ledger *[]lab.Entry
}

// padrOpts appends the config's observability options to extra.
func (cfg Config) padrOpts(extra ...padr.Option) []padr.Option {
	if cfg.Obs != nil {
		extra = append(extra, padr.WithRegistry(cfg.Obs))
	}
	if cfg.Trace != nil {
		extra = append(extra, padr.WithTracer(cfg.Trace))
	}
	return extra
}

// simOpts appends the config's observability options to extra.
func (cfg Config) simOpts(extra ...sim.Option) []sim.Option {
	if cfg.Obs != nil {
		extra = append(extra, sim.WithRegistry(cfg.Obs))
	}
	if cfg.Trace != nil {
		extra = append(extra, sim.WithTracer(cfg.Trace))
	}
	return extra
}

// onlineOpts appends the config's observability options to extra.
func (cfg Config) onlineOpts(extra ...online.Option) []online.Option {
	if cfg.Obs != nil {
		extra = append(extra, online.WithRegistry(cfg.Obs))
	}
	if cfg.Trace != nil {
		extra = append(extra, online.WithTracer(cfg.Trace))
	}
	return extra
}

// Experiment is one registered reproduction.
type Experiment struct {
	// ID is the DESIGN.md identifier, e.g. "E2".
	ID string
	// Title is a short name.
	Title string
	// Claim is the paper statement under test.
	Claim string
	// Run executes the experiment, writing a markdown report.
	Run func(w io.Writer, cfg Config) error
}

// All returns the registered experiments in ID order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Round optimality (Theorem 5)",
			"a width-w oriented well-nested set schedules in exactly w rounds", runE1},
		{"E2", "Configuration changes (Theorem 8)",
			"PADR: O(1) changes per switch; ID-order baseline: Θ(w) on adversarial chains", runE2},
		{"E3", "Power units (§2.3, §5)",
			"holding configurations caps every switch at O(1) units; per-round rebuilds cost Θ(w)", runE3},
		{"E4", "Constant words (Theorem 5, efficiency)",
			"every switch stores and forwards a constant number of constant-size words", runE4},
		{"E5", "Correctness mass trial (Theorem 4)",
			"every source's token reaches exactly its destination through the configured circuits", runE5},
		{"E6", "Segmentable-bus workloads (§1)",
			"each bus cycle is width <= 1 per orientation and schedules in <= 2 CST rounds", runE6},
		{"E7", "SRGA routing (§1, [7])",
			"row/column CSTs route grid permutations in two phases", runE7},
		{"E8", "Distributed execution (§2.2)",
			"the goroutine-per-node simulation matches the sequential engine with 2N-2 words per wave", runE8},
		{"E9", "Baseline order ablation ([6])",
			"only outermost-first ordering keeps reconfiguration constant; other ID orders churn", runE9},
		{"E10", "Energy-model sensitivity (extension of §2.3)",
			"the holding-is-free assumption has a price: a HoldCost/SetCost crossover where dropping idle circuits beats holding them", runE10},
		{"E11", "General oriented sets (extension, concluding remarks)",
			"crossing sets schedule via conflict coloring; first-fit is near-optimal and the width is usually the exact optimum", runE11},
		{"E12", "Selection-rule tradeoff (reproduction finding)",
			"the literal Fig. 5 rule is time-optimal but its change count creeps with N; the prose's satisfy-outer-first rule pins changes to O(1) at the cost of extra rounds", runE12},
		{"E13", "Reconfiguration latency (extension)",
			"with a per-round reconfiguration stall, held configurations buy wall-clock time on recurring traffic (and none on one-shot schedules)", runE13},
		{"E14", "Adversarial worst-case search (extension of E12)",
			"hill-climbing over well-nested inputs: the literal rule's worst-case churn exceeds random sampling's, while the conservative rule stays O(1) on the same inputs", runE14},
		{"E15", "Exact joint optimum (extension of E12)",
			"among ALL width-round schedules the minimum change count matches the distributed greedy engine — the rounds-vs-changes tension is fundamental to the inputs, not an artifact of the protocol", runE15},
		{"E16", "Online traffic (extension)",
			"dynamically arriving requests batch into well-nested dispatches; latency degrades gracefully with load and shared crossbars amortize power", runE16},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range All() {
		if err := RunOne(w, e, cfg); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single experiment with its standard header.
func RunOne(w io.Writer, e Experiment, cfg Config) error {
	if cfg.Audit != nil && cfg.Trace != nil {
		cfg.Trace.SetSink(cfg.Audit.Observe)
	}
	fmt.Fprintf(w, "## %s — %s\n\nClaim: %s.\n\n", e.ID, e.Title, e.Claim)
	start := time.Now()
	if err := e.Run(w, cfg); err != nil {
		return fmt.Errorf("%s: %v", e.ID, err)
	}
	if cfg.Ledger != nil {
		*cfg.Ledger = append(*cfg.Ledger, lab.Entry{
			Bench: "harness/" + e.ID, Unit: "ns",
			Value: float64(time.Since(start).Nanoseconds()),
		})
	}
	fmt.Fprintln(w)
	return nil
}

// ---------------------------------------------------------------------------
// E1 — rounds == width
// ---------------------------------------------------------------------------

func runE1(w io.Writer, cfg Config) error {
	sizes := []int{64, 256, 1024}
	widths := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		sizes = []int{64, 256}
		widths = []int{1, 4, 16}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab := stats.NewTable("N", "w", "PADR rounds", "optimal", "greedy rounds", "depth-id rounds")
	allOptimal := true
	for _, n := range sizes {
		tr, err := topology.New(n)
		if err != nil {
			return err
		}
		for _, width := range widths {
			if 2*width > n/2 {
				continue
			}
			s, err := comm.RandomWellNestedWidth(rng, n, width+n/16, width)
			if err != nil {
				return err
			}
			eng, err := padr.New(tr, s, cfg.padrOpts()...)
			if err != nil {
				return err
			}
			res, err := eng.Run()
			if err != nil {
				return err
			}
			if err := res.Schedule.VerifyOptimal(tr); err != nil {
				return err
			}
			gr, err := baseline.Greedy(tr, s, power.Stateful)
			if err != nil {
				return err
			}
			di, err := baseline.DepthID(tr, s, baseline.OutermostFirst, power.Stateful)
			if err != nil {
				return err
			}
			opt := res.Rounds == width
			allOptimal = allOptimal && opt
			tab.AddRow(n, width, res.Rounds, opt, gr.Rounds, di.Rounds)
		}
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: PADR optimal on all rows = %v (depth-id may exceed the width when nesting depth > link width).\n", allOptimal)
	return nil
}

// ---------------------------------------------------------------------------
// E2 — configuration changes vs w
// ---------------------------------------------------------------------------

func runE2(w io.Writer, cfg Config) error {
	n := 256
	widths := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		widths = []int{4, 16, 64}
	}
	tr, err := topology.New(n)
	if err != nil {
		return err
	}
	tab := stats.NewTable("w", "PADR max units", "PADR max alternations", "alt-ID max alternations", "ratio")
	padrMax := 0
	growing := true
	prevAlt := 0
	for _, width := range widths {
		s, err := comm.SplitChain(n, width)
		if err != nil {
			return err
		}
		eng, err := padr.New(tr, s, cfg.padrOpts()...)
		if err != nil {
			return err
		}
		res, err := eng.Run()
		if err != nil {
			return err
		}
		alt, err := baseline.DepthID(tr, s, baseline.Alternating, power.Stateful)
		if err != nil {
			return err
		}
		if res.Report.MaxUnits() > padrMax {
			padrMax = res.Report.MaxUnits()
		}
		a := alt.Report.MaxAlternations()
		growing = growing && a > prevAlt
		prevAlt = a
		ratio := float64(a) / float64(max1(res.Report.MaxAlternations()))
		tab.AddRow(width, res.Report.MaxUnits(), res.Report.MaxAlternations(), a, ratio)
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: PADR per-switch units bounded by %d across all w (O(1)); alternating-ID churn grows with w = %v (Θ(w)).\n", padrMax, growing)
	return nil
}

// ---------------------------------------------------------------------------
// E3 — power units by accounting mode
// ---------------------------------------------------------------------------

func runE3(w io.Writer, cfg Config) error {
	n := 256
	widths := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		widths = []int{4, 16, 64}
	}
	tr, err := topology.New(n)
	if err != nil {
		return err
	}
	tab := stats.NewTable("w", "PADR max units", "PADR total units", "stateless max units", "stateless total units")
	ok := true
	for _, width := range widths {
		s, err := comm.NestedChain(n, width)
		if err != nil {
			return err
		}
		run := func(mode power.Mode) (*padr.Result, error) {
			eng, err := padr.New(tr, s.Clone(), cfg.padrOpts(padr.WithMode(mode))...)
			if err != nil {
				return nil, err
			}
			return eng.Run()
		}
		held, err := run(power.Stateful)
		if err != nil {
			return err
		}
		torn, err := run(power.Stateless)
		if err != nil {
			return err
		}
		ok = ok && held.Report.MaxUnits() <= 6 && torn.Report.MaxUnits() >= width
		tab.AddRow(width, held.Report.MaxUnits(), held.Report.TotalUnits(),
			torn.Report.MaxUnits(), torn.Report.TotalUnits())
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: held configurations keep every switch at O(1) units while per-round rebuilds pay >= w at the hottest switch = %v.\n", ok)
	return nil
}

// ---------------------------------------------------------------------------
// E4 — constant words and storage
// ---------------------------------------------------------------------------

func runE4(w io.Writer, cfg Config) error {
	sizes := []int{16, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{16, 256}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab := stats.NewTable("N", "phase1 words", "phase2 words/round", "max stored bytes", "up word bytes", "down word bytes")
	constant := true
	for _, n := range sizes {
		tr, err := topology.New(n)
		if err != nil {
			return err
		}
		s, err := comm.RandomWellNestedWidth(rng, n, 8+n/32, 8)
		if err != nil {
			return err
		}
		eng, err := padr.New(tr, s)
		if err != nil {
			return err
		}
		res, err := eng.Run()
		if err != nil {
			return err
		}
		perRound := 0
		if res.Rounds > 0 {
			perRound = res.DownWords / res.Rounds
		}
		upBytes := res.UpBytes / max1(res.UpWords)
		downBytes := res.DownBytes / max1(res.DownWords)
		constant = constant && res.MaxStoredBytes == 20 && upBytes == 8 && downBytes == 9
		tab.AddRow(n, res.UpWords, perRound, res.MaxStoredBytes, upBytes, downBytes)
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: per-switch storage and per-link word sizes independent of N and w = %v; word counts are exactly 2N-2 per wave.\n", constant)
	return nil
}

// ---------------------------------------------------------------------------
// E5 — correctness mass trial
// ---------------------------------------------------------------------------

func runE5(w io.Writer, cfg Config) error {
	trials := 400
	if cfg.Quick {
		trials = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	trees := map[int]*topology.Tree{}
	verified, tokens := 0, 0
	for i := 0; i < trials; i++ {
		n := 1 << (2 + rng.Intn(6)) // 4..128
		s, err := comm.RandomWellNested(rng, n, rng.Intn(n/2+1))
		if err != nil {
			return err
		}
		tr := trees[n]
		if tr == nil {
			tr, err = topology.New(n)
			if err != nil {
				return err
			}
			trees[n] = tr
		}
		var rec deliver.Recorder
		eng, err := padr.New(tr, s, cfg.padrOpts(padr.WithObserver(rec.Observer()))...)
		if err != nil {
			return err
		}
		res, err := eng.Run()
		if err != nil {
			return fmt.Errorf("trial %d (%s): %v", i, s, err)
		}
		if err := res.Schedule.VerifyOptimal(tr); err != nil {
			return fmt.Errorf("trial %d (%s): %v", i, s, err)
		}
		if err := rec.Verify(tr); err != nil {
			return fmt.Errorf("trial %d (%s): %v", i, s, err)
		}
		verified++
		tokens += s.Len()
	}
	tab := stats.NewTable("trials", "schedules verified", "tokens delivered", "failures")
	tab.AddRow(trials, verified, tokens, trials-verified)
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: %d/%d random sets fully verified (compatibility, optimality, data plane).\n", verified, trials)
	return nil
}

// ---------------------------------------------------------------------------
// E6 — segmentable bus programs
// ---------------------------------------------------------------------------

func runE6(w io.Writer, cfg Config) error {
	n := 64
	cyclesPer := 50
	if cfg.Quick {
		cyclesPer = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr, err := topology.New(n)
	if err != nil {
		return err
	}
	tab := stats.NewTable("segment width", "cycles", "CST rounds", "rounds/cycle", "total units", "max units/switch")
	ok := true
	for _, segW := range []int{4, 8, 16, 32} {
		bus, err := segbus.New(n)
		if err != nil {
			return err
		}
		prog, err := segbus.RandomProgram(rng, bus, cyclesPer, segW, 0.9)
		if err != nil {
			return err
		}
		res, err := segbus.RunProgram(tr, bus, prog)
		if err != nil {
			return err
		}
		perCycle := float64(res.Rounds) / float64(max1(res.Cycles))
		ok = ok && perCycle <= 2.0
		tab.AddRow(segW, res.Cycles, res.Rounds, perCycle, res.Report.TotalUnits(), res.Report.MaxUnits())
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: every bus cycle fits in <= 2 CST rounds (one per orientation) = %v; held circuits amortize power across cycles.\n", ok)
	return nil
}

// ---------------------------------------------------------------------------
// E7 — SRGA grid routing
// ---------------------------------------------------------------------------

func runE7(w io.Writer, cfg Config) error {
	grids := [][2]int{{8, 8}, {16, 16}, {32, 32}}
	if cfg.Quick {
		grids = [][2]int{{8, 8}, {16, 16}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab := stats.NewTable("grid", "workload", "comms", "row rounds", "col rounds", "wall rounds", "max units/switch")
	for _, dim := range grids {
		g, err := srga.New(dim[0], dim[1])
		if err != nil {
			return err
		}
		workloads := []struct {
			name  string
			comms []srga.Comm2D
		}{
			{"permutation", srga.RandomPermutation(rng, g)},
			{"shift+3", srga.RowShift(g, 3)},
		}
		if tcomms, err := srga.Transpose(g); err == nil {
			workloads = append(workloads, struct {
				name  string
				comms []srga.Comm2D
			}{"transpose", tcomms})
		}
		for _, wl := range workloads {
			res, err := g.Route(wl.comms)
			if err != nil {
				return err
			}
			maxUnits := res.RowPhase.MaxUnits
			if res.ColPhase.MaxUnits > maxUnits {
				maxUnits = res.ColPhase.MaxUnits
			}
			tab.AddRow(fmt.Sprintf("%dx%d", dim[0], dim[1]), wl.name, len(wl.comms),
				res.RowPhase.MaxRounds, res.ColPhase.MaxRounds, res.TotalMaxRounds(), maxUnits)
		}
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintln(w, "\nObserved: two-phase row/column CST routing completes every workload; uniform shifts stay row-local.")
	return nil
}

// ---------------------------------------------------------------------------
// E8 — concurrent simulation
// ---------------------------------------------------------------------------

func runE8(w io.Writer, cfg Config) error {
	sizes := []int{16, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{16, 128}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab := stats.NewTable("N", "goroutines", "phase1 msgs", "phase2 msgs/round", "rounds", "agrees with sequential")
	ok := true
	for _, n := range sizes {
		tr, err := topology.New(n)
		if err != nil {
			return err
		}
		s, err := comm.RandomWellNestedWidth(rng, n, 4+n/32, 4)
		if err != nil {
			return err
		}
		conc, err := sim.Run(tr, s, cfg.simOpts()...)
		if err != nil {
			return err
		}
		seqEng, err := padr.New(tr, s, cfg.padrOpts()...)
		if err != nil {
			return err
		}
		seq, err := seqEng.Run()
		if err != nil {
			return err
		}
		agrees := seq.Rounds == conc.Rounds &&
			seq.Report.TotalUnits() == conc.Report.TotalUnits() &&
			seq.Report.MaxUnits() == conc.Report.MaxUnits()
		ok = ok && agrees && conc.Phase1Messages == 2*n-2
		perRound := 0
		if conc.Rounds > 0 {
			perRound = conc.Phase2Messages / conc.Rounds
		}
		tab.AddRow(n, conc.Goroutines, conc.Phase1Messages, perRound, conc.Rounds, agrees)
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: goroutine-per-node execution reproduces the sequential engine exactly = %v.\n", ok)
	return nil
}

// ---------------------------------------------------------------------------
// E9 — baseline order ablation
// ---------------------------------------------------------------------------

func runE9(w io.Writer, cfg Config) error {
	n := 256
	width := 32
	if cfg.Quick {
		width = 16
	}
	tr, err := topology.New(n)
	if err != nil {
		return err
	}
	s, err := comm.SplitChain(n, width)
	if err != nil {
		return err
	}
	tab := stats.NewTable("scheduler", "order", "mode", "rounds", "max units", "max alternations")
	eng, err := padr.New(tr, s.Clone(), cfg.padrOpts()...)
	if err != nil {
		return err
	}
	pres, err := eng.Run()
	if err != nil {
		return err
	}
	tab.AddRow("padr", "outermost (built in)", "stateful", pres.Rounds, pres.Report.MaxUnits(), pres.Report.MaxAlternations())
	for _, order := range []baseline.Order{baseline.OutermostFirst, baseline.InnermostFirst, baseline.Alternating} {
		for _, mode := range []power.Mode{power.Stateful, power.Stateless} {
			res, err := baseline.DepthID(tr, s, order, mode)
			if err != nil {
				return err
			}
			tab.AddRow("depth-id", order.String(), mode.String(), res.Rounds, res.Report.MaxUnits(), res.Report.MaxAlternations())
		}
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintln(w, "\nObserved: monotone orders hold configurations (O(1) changes); the alternating ID order and all stateless runs churn Θ(w).")
	return nil
}

// ---------------------------------------------------------------------------
// E10 — energy-model sensitivity
// ---------------------------------------------------------------------------

func runE10(w io.Writer, cfg Config) error {
	n := 64
	cyclesList := []int{10, 20, 40, 80}
	if cfg.Quick {
		cyclesList = []int{10, 40}
	}
	tr, err := topology.New(n)
	if err != nil {
		return err
	}
	// Two alternating traffic phases confined to opposite halves of the
	// tree: the hold-everything policy establishes each circuit once and
	// pays hold energy through the idle phases; drop-when-idle re-creates
	// circuits on every recurrence.
	phaseA := []comm.Comm{{Src: 0, Dst: 5}, {Src: 8, Dst: 13}, {Src: 16, Dst: 21}}
	phaseB := []comm.Comm{{Src: 32, Dst: 37}, {Src: 40, Dst: 45}, {Src: 48, Dst: 53}}
	snapshot := func(sets ...[]comm.Comm) (deliver.RoundConfig, error) {
		switches := map[topology.Node]*xbar.Switch{}
		tr.EachSwitch(func(nd topology.Node) { switches[nd] = xbar.NewSwitch() })
		for _, set := range sets {
			for _, c := range set {
				if err := circuit.Configure(tr, switches, c); err != nil {
					return nil, err
				}
			}
		}
		out := deliver.RoundConfig{}
		tr.EachSwitch(func(nd topology.Node) { out[nd] = switches[nd].Config() })
		return out, nil
	}
	cfgA, err := snapshot(phaseA)
	if err != nil {
		return err
	}
	cfgB, err := snapshot(phaseB)
	if err != nil {
		return err
	}
	cfgAB, err := snapshot(phaseA, phaseB)
	if err != nil {
		return err
	}

	tab := stats.NewTable("cycles", "hold changes", "drop changes", "hold conn·rounds", "drop conn·rounds", "crossover HoldCost/SetCost")
	ok := true
	for _, cycles := range cyclesList {
		var hold, drop []deliver.RoundConfig
		for i := 0; i < cycles; i++ {
			if i == 0 {
				hold = append(hold, cfgA)
			} else {
				hold = append(hold, cfgAB)
			}
			if i%2 == 0 {
				drop = append(drop, cfgA)
			} else {
				drop = append(drop, cfgB)
			}
		}
		bh := energy.Evaluate(tr, hold, energy.Paper)
		bd := energy.Evaluate(tr, drop, energy.Paper)
		h, exists := energy.Crossover(tr, hold, drop, 1)
		ok = ok && exists && bh.Total < bd.Total
		tab.AddRow(cycles, bh.Changes, bd.Changes, bh.ConnectionRounds, bd.ConnectionRounds, h)
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: holding wins under the paper model (HoldCost 0) on every row = %v; the crossover climbs toward HoldCost = SetCost as recurrences accumulate — i.e. the longer a pattern repeats, the more hold cost the PADR strategy tolerates before drop-when-idle wins.\n", ok)
	return nil
}

// ---------------------------------------------------------------------------
// E11 — general (crossing) oriented sets
// ---------------------------------------------------------------------------

func runE11(w io.Writer, cfg Config) error {
	trials := 120
	if cfg.Quick {
		trials = 25
	}
	n := 32
	m := 8
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr, err := topology.New(n)
	if err != nil {
		return err
	}
	ffOpt, exactAtWidth, budgetOuts := 0, 0, 0
	sumWidth, sumFF, sumExact := 0, 0, 0
	for i := 0; i < trials; i++ {
		s, err := comm.RandomOriented(rng, n, m)
		if err != nil {
			return err
		}
		width, err := s.Width(tr)
		if err != nil {
			return err
		}
		ff, err := general.FirstFit(tr, s)
		if err != nil {
			return err
		}
		if err := ff.Verify(tr); err != nil {
			return err
		}
		ex, exhausted, err := general.Incumbent(general.Exact(tr, s, 500000))
		if err != nil {
			return err
		}
		if exhausted {
			budgetOuts++
		}
		if err := ex.Verify(tr); err != nil {
			return err
		}
		if ff.NumRounds() == ex.NumRounds() {
			ffOpt++
		}
		if ex.NumRounds() == width {
			exactAtWidth++
		}
		sumWidth += width
		sumFF += ff.NumRounds()
		sumExact += ex.NumRounds()
	}
	tab := stats.NewTable("trials", "mean width", "mean first-fit rounds", "mean optimal rounds", "first-fit optimal", "optimum == width", "budget exhausted")
	tab.AddRow(trials,
		float64(sumWidth)/float64(trials),
		float64(sumFF)/float64(trials),
		float64(sumExact)/float64(trials),
		fmt.Sprintf("%d/%d", ffOpt, trials),
		fmt.Sprintf("%d/%d", exactAtWidth, trials),
		budgetOuts)
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: on random crossing sets the optimum equals the width lower bound in %d/%d trials and first-fit finds it in %d/%d — the well-nested restriction is what makes the paper's *distributed O(1)-state* solution possible, not what makes width-optimal schedules exist.\n", exactAtWidth, trials, ffOpt, trials)
	return nil
}

// ---------------------------------------------------------------------------
// E12 — selection-rule tradeoff
// ---------------------------------------------------------------------------

func runE12(w io.Writer, cfg Config) error {
	sizes := []int{16, 64, 256}
	trials := 400
	if cfg.Quick {
		sizes = []int{16, 64}
		trials = 80
	}
	tab := stats.NewTable("N", "trials",
		"greedy max flips", "greedy max units", "greedy extra rounds",
		"conservative max flips", "conservative max units", "conservative extra rounds (mean/max)")
	lemmaHolds := true
	for _, n := range sizes {
		tr, err := topology.New(n)
		if err != nil {
			return err
		}
		gF, gU, cF, cU, cExtraSum, cExtraMax := 0, 0, 0, 0, 0, 0
		for seed := int64(0); seed < int64(trials); seed++ {
			rng := rand.New(rand.NewSource(cfg.Seed + seed))
			s, err := comm.RandomWellNested(rng, n, rng.Intn(n/2+1))
			if err != nil {
				return err
			}
			for _, sel := range []padr.Selection{padr.Greedy, padr.Conservative} {
				var mon lemma.Monitor
				e, err := padr.New(tr, s.Clone(), cfg.padrOpts(padr.WithSelection(sel), padr.WithObserver(mon.Observer()))...)
				if err != nil {
					return err
				}
				res, err := e.Run()
				if err != nil {
					return err
				}
				if err := res.Schedule.Verify(tr); err != nil {
					return err
				}
				flips := 0
				for node := topology.Node(2); int(node) < 2*n; node++ {
					seq := mon.Sequence(node)
					for _, proj := range []func(ctrl.Use) bool{ctrl.Use.HasS, ctrl.Use.HasD} {
						if f := lemma.Flips(seq, proj); f > flips {
							flips = f
						}
					}
				}
				switch sel {
				case padr.Greedy:
					if flips > gF {
						gF = flips
					}
					if res.Report.MaxUnits() > gU {
						gU = res.Report.MaxUnits()
					}
					if res.Rounds != res.Width {
						return fmt.Errorf("E12: greedy must be width-optimal")
					}
				default:
					if flips > cF {
						cF = flips
					}
					if res.Report.MaxUnits() > cU {
						cU = res.Report.MaxUnits()
					}
					cExtraSum += res.Rounds - res.Width
					if res.Rounds-res.Width > cExtraMax {
						cExtraMax = res.Rounds - res.Width
					}
				}
			}
		}
		lemmaHolds = lemmaHolds && cF <= lemma.MaxFlips
		tab.AddRow(n, trials, gF, gU, 0, cF, cU,
			fmt.Sprintf("%.2f/%d", float64(cExtraSum)/float64(trials), cExtraMax))
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: conservative satisfies Lemma 7's strict <= %d-flip bound on every input = %v with flat O(1) units; greedy is always width-optimal but its worst-case flips/units grow slowly with N. On the paper's chain workloads (E2/E3) the two rules coincide.\n",
		lemma.MaxFlips, lemmaHolds)
	return nil
}

// ---------------------------------------------------------------------------
// E13 — reconfiguration latency
// ---------------------------------------------------------------------------

func runE13(w io.Writer, cfg Config) error {
	n := 64
	cycles := 24
	if cfg.Quick {
		cycles = 8
	}
	tr, err := topology.New(n)
	if err != nil {
		return err
	}
	phaseA := []comm.Comm{{Src: 0, Dst: 5}, {Src: 8, Dst: 13}}
	phaseB := []comm.Comm{{Src: 32, Dst: 37}, {Src: 40, Dst: 45}}
	snapshot := func(sets ...[]comm.Comm) (deliver.RoundConfig, error) {
		switches := map[topology.Node]*xbar.Switch{}
		tr.EachSwitch(func(nd topology.Node) { switches[nd] = xbar.NewSwitch() })
		for _, set := range sets {
			for _, c := range set {
				if err := circuit.Configure(tr, switches, c); err != nil {
					return nil, err
				}
			}
		}
		out := deliver.RoundConfig{}
		tr.EachSwitch(func(nd topology.Node) { out[nd] = switches[nd].Config() })
		return out, nil
	}
	cfgA, err := snapshot(phaseA)
	if err != nil {
		return err
	}
	cfgB, err := snapshot(phaseB)
	if err != nil {
		return err
	}
	cfgAB, err := snapshot(phaseA, phaseB)
	if err != nil {
		return err
	}
	var hold, drop []deliver.RoundConfig
	for i := 0; i < cycles; i++ {
		if i == 0 {
			hold = append(hold, cfgA)
		} else {
			hold = append(hold, cfgAB)
		}
		if i%2 == 0 {
			drop = append(drop, cfgA)
		} else {
			drop = append(drop, cfgB)
		}
	}

	// One-shot reference: a PADR chain run (every round establishes new
	// circuits, so no policy can skip the stall).
	chain, err := comm.NestedChain(n, 8)
	if err != nil {
		return err
	}
	var rec deliver.Recorder
	eng, err := padr.New(tr, chain, cfg.padrOpts(padr.WithObserver(rec.Observer()))...)
	if err != nil {
		return err
	}
	if _, err := eng.Run(); err != nil {
		return err
	}
	oneShot := make([]deliver.RoundConfig, rec.Rounds())
	for i := range oneShot {
		oneShot[i] = rec.Config(i)
	}

	tab := stats.NewTable("reconfig stall R", "hold cycles", "drop cycles", "speedup", "one-shot stalled rounds")
	ok := true
	for _, r := range []int{1, 4, 16, 64} {
		p := timing.Params{WaveCyclePerLevel: 1, ReconfigCycles: r, TransferCycles: 1}
		bh := timing.Makespan(tr, hold, p)
		bd := timing.Makespan(tr, drop, p)
		bo := timing.Makespan(tr, oneShot, p)
		ok = ok && bh.Total < bd.Total && bo.RoundsWithChanges == bo.Rounds
		tab.AddRow(r, bh.Total, bd.Total, timing.Speedup(bh, bd), fmt.Sprintf("%d/%d", bo.RoundsWithChanges, bo.Rounds))
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: on recurring two-phase traffic holding beats drop-when-idle at every stall cost (speedup grows with R) = %v; on one-shot schedules every round stalls regardless of policy — power-awareness buys latency only when traffic repeats.\n", ok)
	return nil
}

// ---------------------------------------------------------------------------
// E14 — adversarial worst-case search
// ---------------------------------------------------------------------------

func runE14(w io.Writer, cfg Config) error {
	sizes := []int{32, 64, 128}
	iters := 600
	if cfg.Quick {
		sizes = []int{32, 64}
		iters = 150
	}
	tab := stats.NewTable("N", "search iters", "worst greedy max units", "conservative units (same input)", "worst conservative extra rounds")
	ok := true
	for i, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		tr, err := topology.New(n)
		if err != nil {
			return err
		}
		res, err := adversary.Search(rng, n, iters, adversary.GreedyMaxUnits)
		if err != nil {
			return err
		}
		consEng, err := padr.New(tr, res.Set.Clone(), cfg.padrOpts(padr.WithSelection(padr.Conservative))...)
		if err != nil {
			return err
		}
		cons, err := consEng.Run()
		if err != nil {
			return err
		}
		extra, err := adversary.Search(rng, n, iters, adversary.ConservativeExtraRounds)
		if err != nil {
			return err
		}
		ok = ok && cons.Report.MaxUnits() <= 4
		tab.AddRow(n, iters, int(res.Score), cons.Report.MaxUnits(), int(extra.Score))
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: adversarial search pushes the literal rule's per-switch churn beyond random sampling while the conservative rule holds <= 4 units on the very same inputs = %v; the flip side is the conservative rule's adversarially-maximized round overhead.\n", ok)
	return nil
}

// ---------------------------------------------------------------------------
// E15 — exact joint optimum on small instances
// ---------------------------------------------------------------------------

func runE15(w io.Writer, cfg Config) error {
	n := 16
	trials := 20
	if cfg.Quick {
		trials = 6
	}
	tr, err := topology.New(n)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	divergence, err := comm.Parse("..(((()(....))))") // the divergence example
	if err != nil {
		return err
	}
	inputs := []*comm.Set{divergence}
	for len(inputs) < trials {
		s, err := comm.RandomWellNested(rng, n, 2+rng.Intn(5))
		if err != nil {
			return err
		}
		if s.Len() > 0 {
			inputs = append(inputs, s)
		}
	}

	priceEngine := func(s *comm.Set, sel padr.Selection) (changes, rounds int, err error) {
		var rec deliver.Recorder
		e, err := padr.New(tr, s.Clone(), cfg.padrOpts(padr.WithSelection(sel), padr.WithObserver(rec.Observer()))...)
		if err != nil {
			return 0, 0, err
		}
		res, err := e.Run()
		if err != nil {
			return 0, 0, err
		}
		rounds = res.Rounds
		snaps := make([]deliver.RoundConfig, rec.Rounds())
		for i := range snaps {
			snaps[i] = rec.Config(i)
		}
		return energy.Evaluate(tr, snaps, energy.Paper).Changes, rounds, nil
	}

	greedyOptimal, exhausted := 0, 0
	tab := stats.NewTable("input", "width", "optimal changes @ width rounds", "greedy engine changes", "conservative changes (rounds)")
	for i, s := range inputs {
		opt, err := general.MinChangeSchedule(tr, s, 300000)
		if err != nil {
			return err
		}
		if opt.Exhaustive {
			exhausted++
		}
		gC, gR, err := priceEngine(s, padr.Greedy)
		if err != nil {
			return err
		}
		if gR != opt.Schedule.NumRounds() {
			return fmt.Errorf("E15: greedy rounds %d vs optimal schedule rounds %d", gR, opt.Schedule.NumRounds())
		}
		cC, cR, err := priceEngine(s, padr.Conservative)
		if err != nil {
			return err
		}
		if gC == opt.Changes {
			greedyOptimal++
		}
		label := s.String()
		if len(label) > 16 {
			label = label[:16]
		}
		if i < 6 { // print a sample; aggregate below covers the rest
			tab.AddRow(label, opt.Schedule.NumRounds(), opt.Changes, gC, fmt.Sprintf("%d (%d)", cC, cR))
		}
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: the distributed greedy engine matches the exact centralized optimum (fewest changes among all width-round schedules) on %d/%d instances (%d searched exhaustively) — including the minimal Lemma 7 counterexample, where NO width-optimal schedule avoids the extra churn. The tension between Theorems 5 and 8 on general inputs is a property of the inputs themselves.\n", greedyOptimal, len(inputs), exhausted)
	return nil
}

// ---------------------------------------------------------------------------
// E16 — online traffic
// ---------------------------------------------------------------------------

func runE16(w io.Writer, cfg Config) error {
	n := 64
	steps := 400
	if cfg.Quick {
		steps = 100
	}
	tab := stats.NewTable("arrivals/step", "submitted", "batches", "busy rounds", "mean latency", "max latency", "units/busy round")
	prevLat := 0.0
	ok := true
	for _, load := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(cfg.Seed))
		sim, err := online.New(n, cfg.onlineOpts()...)
		if err != nil {
			return err
		}
		submitted := 0
		for step := 0; step < steps; step++ {
			submitted += sim.SubmitRandom(rng, load)
			if sim.QueueLen() >= 2*load {
				if _, err := sim.Dispatch(); err != nil {
					return err
				}
			} else {
				sim.Tick()
			}
		}
		if err := sim.Drain(); err != nil {
			return err
		}
		st := sim.Finish()
		if len(st.Completed) != submitted || st.Leftover != 0 {
			return fmt.Errorf("E16: lost requests: %d completed of %d", len(st.Completed), submitted)
		}
		unitsPerRound := float64(st.Report.TotalUnits()) / float64(max1(st.Rounds))
		ok = ok && st.MeanLatency() >= prevLat*0.5 // latency broadly grows with load
		prevLat = st.MeanLatency()
		tab.AddRow(load, submitted, st.Batches, st.Rounds, st.MeanLatency(), st.MaxLatency(), unitsPerRound)
	}
	fmt.Fprint(w, tab.Markdown())
	fmt.Fprintf(w, "\nObserved: every submitted request completes at every load = %v; latency grows with load while per-round power stays bounded by the circuits actually established.\n", ok)
	return nil
}

func max1(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

package harness

import (
	"bytes"
	"strings"
	"testing"

	"cst/internal/lab"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registered %d experiments, want 16", len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("E5"); !ok {
		t.Error("ByID(E5) not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should not resolve")
	}
}

// Every experiment must run clean in quick mode and report its observation.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunOne(&buf, e, cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "## "+e.ID) {
				t.Errorf("%s: missing header:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "Observed:") {
				t.Errorf("%s: missing observation:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "|") {
				t.Errorf("%s: missing table:\n%s", e.ID, out)
			}
		})
	}
}

// TestLedgerSink: RunOne appends one wall-clock entry per experiment to
// the configured perf-lab ledger collector.
func TestLedgerSink(t *testing.T) {
	var entries []lab.Entry
	var buf bytes.Buffer
	e, _ := ByID("E1")
	if err := RunOne(&buf, e, Config{Seed: 1, Quick: true, Ledger: &entries}); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger entries = %d, want 1", len(entries))
	}
	got := entries[0]
	if got.Bench != "harness/E1" || got.Unit != "ns" || got.Value <= 0 {
		t.Errorf("ledger entry: %+v", got)
	}
}

func TestObservedVerdicts(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	checks := map[string]string{
		"E1":  "PADR optimal on all rows = true",
		"E2":  "(Θ(w))",
		"E3":  "= true",
		"E4":  "independent of N and w = true",
		"E5":  "fully verified",
		"E6":  "<= 2 CST rounds (one per orientation) = true",
		"E8":  "exactly = true",
		"E9":  "churn Θ(w)",
		"E10": "holding wins under the paper model (HoldCost 0) on every row = true",
		"E12": "on every input = true",
		"E13": "speedup grows with R) = true",
		"E15": "property of the inputs themselves",
		"E16": "every load = true",
	}
	for id, want := range checks {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		if err := RunOne(&buf, e, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s verdict missing %q:\n%s", id, want, buf.String())
		}
	}
}

// Golden regression for the headline result: the E2 full sweep must show
// PADR's hottest switch at exactly 2 units for every width while the
// baseline churn equals w-1. Any engine regression that disturbs the power
// behaviour trips this immediately.
func TestE2GoldenSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mode sweep skipped in -short mode")
	}
	e, ok := ByID("E2")
	if !ok {
		t.Fatal("E2 missing")
	}
	var buf bytes.Buffer
	if err := RunOne(&buf, e, Config{Seed: 42}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, row := range []string{
		"| 4  | 2", "| 8  | 2", "| 16 | 2", "| 32 | 2", "| 64 | 2",
		"| 63                      |",
	} {
		if !strings.Contains(out, row) {
			t.Errorf("E2 golden row missing %q:\n%s", row, out)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, Config{Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if !strings.Contains(buf.String(), "## "+e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

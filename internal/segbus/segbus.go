// Package segbus models the segmentable bus, the "fundamental
// reconfigurable architecture" whose communication requirements the paper
// cites as a subset of the well-nested class (§1).
//
// A segmentable bus is a line of N PEs with N-1 segment switches between
// adjacent PEs. Splitting a switch cuts the bus into independent segments;
// in one bus cycle each segment carries at most one transfer (one writer,
// one reader within the segment). Because segments are disjoint intervals,
// the transfers of one cycle form a set of disjoint spans — a width-1
// oriented well-nested set once each transfer is oriented — so the CST
// schedules every cycle in a single round, and a multi-cycle program is a
// sequence of PADR runs over the same crossbars, paying only for genuine
// configuration changes between cycles.
package segbus

import (
	"fmt"
	"math/rand"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Bus is a segmentable bus over n PEs. The zero value is unusable; use New.
type Bus struct {
	n     int
	split []bool // split[i]: the switch between PE i and PE i+1 is open (bus cut)
}

// New returns a bus over n PEs (n >= 2) with no splits: one segment.
func New(n int) (*Bus, error) {
	if n < 2 {
		return nil, fmt.Errorf("segbus: need at least 2 PEs, got %d", n)
	}
	return &Bus{n: n, split: make([]bool, n-1)}, nil
}

// N returns the number of PEs.
func (b *Bus) N() int { return b.n }

// Split cuts the bus between PE i and PE i+1.
func (b *Bus) Split(i int) error {
	if i < 0 || i >= b.n-1 {
		return fmt.Errorf("segbus: no segment switch at gap %d", i)
	}
	b.split[i] = true
	return nil
}

// Unsplit reconnects the bus between PE i and PE i+1.
func (b *Bus) Unsplit(i int) error {
	if i < 0 || i >= b.n-1 {
		return fmt.Errorf("segbus: no segment switch at gap %d", i)
	}
	b.split[i] = false
	return nil
}

// Segments returns the current segments as half-open PE intervals [lo, hi).
func (b *Bus) Segments() [][2]int {
	var segs [][2]int
	lo := 0
	for i := 0; i < b.n-1; i++ {
		if b.split[i] {
			segs = append(segs, [2]int{lo, i + 1})
			lo = i + 1
		}
	}
	segs = append(segs, [2]int{lo, b.n})
	return segs
}

// SegmentOf returns the segment interval containing PE pe.
func (b *Bus) SegmentOf(pe int) ([2]int, error) {
	if pe < 0 || pe >= b.n {
		return [2]int{}, fmt.Errorf("segbus: PE %d out of range", pe)
	}
	for _, s := range b.Segments() {
		if pe >= s[0] && pe < s[1] {
			return s, nil
		}
	}
	return [2]int{}, fmt.Errorf("segbus: internal error: PE %d in no segment", pe)
}

// Transfer is one bus operation: Writer drives its segment, Reader latches.
type Transfer struct {
	Writer, Reader int
}

// Cycle is one bus cycle: a set of transfers, at most one per segment.
type Cycle struct {
	Transfers []Transfer
}

// CommSet converts a cycle into a communication set on the CST, after
// validating that every transfer stays within one current segment and that
// no segment carries two transfers. The result contains both orientations
// (a reader may sit left of its writer); use comm.Decompose to split it for
// the right-oriented scheduler.
func (b *Bus) CommSet(c Cycle) (*comm.Set, error) {
	n := b.n
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("segbus: bus size %d is not a power of two; cannot map onto a CST", n)
	}
	used := map[[2]int]bool{}
	s := &comm.Set{N: n}
	for _, tr := range c.Transfers {
		if tr.Writer == tr.Reader {
			return nil, fmt.Errorf("segbus: transfer %d->%d is a self loop", tr.Writer, tr.Reader)
		}
		seg, err := b.SegmentOf(tr.Writer)
		if err != nil {
			return nil, err
		}
		if tr.Reader < seg[0] || tr.Reader >= seg[1] {
			return nil, fmt.Errorf("segbus: reader %d outside writer %d's segment [%d,%d)", tr.Reader, tr.Writer, seg[0], seg[1])
		}
		if used[seg] {
			return nil, fmt.Errorf("segbus: segment [%d,%d) carries two transfers", seg[0], seg[1])
		}
		used[seg] = true
		s.Comms = append(s.Comms, comm.Comm{Src: tr.Writer, Dst: tr.Reader})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ProgramResult is the outcome of running a multi-cycle program on a CST.
type ProgramResult struct {
	// Cycles is the number of bus cycles executed.
	Cycles int
	// Rounds is the total CST rounds over all cycles (right- plus
	// left-oriented passes).
	Rounds int
	// Report is the accumulated power ledger over the whole program: the
	// same crossbars served every cycle, so held configurations carried
	// across cycles cost nothing.
	Report *power.Report
}

// RunProgram executes a sequence of cycles on the tree. Each cycle becomes
// at most two PADR runs (one per orientation) against the same crossbars.
func RunProgram(t *topology.Tree, b *Bus, cycles []Cycle) (*ProgramResult, error) {
	if t.Leaves() != b.n {
		return nil, fmt.Errorf("segbus: tree has %d leaves, bus has %d PEs", t.Leaves(), b.n)
	}
	switches := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	totalRounds := 0
	for i, cyc := range cycles {
		set, err := b.CommSet(cyc)
		if err != nil {
			return nil, fmt.Errorf("segbus: cycle %d: %v", i, err)
		}
		right, leftM := comm.Decompose(set)
		for pass, oriented := range []*comm.Set{right, leftM} {
			if oriented.Len() == 0 {
				continue
			}
			// The right-oriented pass drives the crossbars directly; the
			// mirrored (originally left-oriented) pass drives them through
			// the reflection adapter, so every connection lands on the
			// physical switch the leftward circuit really uses.
			opt := padr.WithCrossbars(switches)
			if pass == 1 {
				opt = padr.WithReflectedCrossbars(switches)
			}
			e, err := padr.New(t, oriented, opt)
			if err != nil {
				return nil, fmt.Errorf("segbus: cycle %d pass %d: %v", i, pass, err)
			}
			res, err := e.Run()
			if err != nil {
				return nil, fmt.Errorf("segbus: cycle %d pass %d: %v", i, pass, err)
			}
			totalRounds += res.Rounds
		}
	}
	return &ProgramResult{
		Cycles: len(cycles),
		Rounds: totalRounds,
		Report: power.Collect("segbus-padr", power.Stateful, totalRounds, t, switches),
	}, nil
}

// RandomProgram generates a random program: each cycle randomly re-splits
// the bus into aligned segments of width segWidth and issues one transfer in
// each segment with probability density. Useful for experiment E6.
func RandomProgram(rng *rand.Rand, b *Bus, cycles, segWidth int, density float64) ([]Cycle, error) {
	if segWidth < 2 || b.n%segWidth != 0 {
		return nil, fmt.Errorf("segbus: segment width %d must be >= 2 and divide %d", segWidth, b.n)
	}
	var prog []Cycle
	for c := 0; c < cycles; c++ {
		// Reconfigure the bus: aligned segments of segWidth.
		for i := 0; i < b.n-1; i++ {
			b.split[i] = (i+1)%segWidth == 0
		}
		var cyc Cycle
		for _, seg := range b.Segments() {
			if rng.Float64() >= density {
				continue
			}
			w := seg[0] + rng.Intn(seg[1]-seg[0])
			r := seg[0] + rng.Intn(seg[1]-seg[0])
			if w == r {
				r = seg[0] + (r-seg[0]+1)%(seg[1]-seg[0])
			}
			cyc.Transfers = append(cyc.Transfers, Transfer{Writer: w, Reader: r})
		}
		prog = append(prog, cyc)
	}
	return prog, nil
}

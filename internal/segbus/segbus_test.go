package segbus

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

func TestNewAndSegments(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("n=1: want error")
	}
	b, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	segs := b.Segments()
	if len(segs) != 1 || segs[0] != [2]int{0, 8} {
		t.Fatalf("fresh bus segments = %v", segs)
	}
	if err := b.Split(3); err != nil {
		t.Fatal(err)
	}
	if err := b.Split(5); err != nil {
		t.Fatal(err)
	}
	segs = b.Segments()
	want := [][2]int{{0, 4}, {4, 6}, {6, 8}}
	if len(segs) != 3 {
		t.Fatalf("segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segments = %v, want %v", segs, want)
		}
	}
	if err := b.Unsplit(5); err != nil {
		t.Fatal(err)
	}
	if got := b.Segments(); len(got) != 2 {
		t.Fatalf("after unsplit: %v", got)
	}
	if err := b.Split(99); err == nil {
		t.Error("bad gap: want error")
	}
	if err := b.Unsplit(-1); err == nil {
		t.Error("bad gap: want error")
	}
}

func TestSegmentOf(t *testing.T) {
	b, _ := New(8)
	if err := b.Split(3); err != nil {
		t.Fatal(err)
	}
	seg, err := b.SegmentOf(2)
	if err != nil || seg != [2]int{0, 4} {
		t.Fatalf("SegmentOf(2) = %v, %v", seg, err)
	}
	seg, err = b.SegmentOf(4)
	if err != nil || seg != [2]int{4, 8} {
		t.Fatalf("SegmentOf(4) = %v, %v", seg, err)
	}
	if _, err := b.SegmentOf(8); err == nil {
		t.Error("out of range PE: want error")
	}
}

func TestCommSetValidation(t *testing.T) {
	b, _ := New(8)
	if err := b.Split(3); err != nil {
		t.Fatal(err)
	}
	// Valid: one transfer per segment, either direction.
	set, err := b.CommSet(Cycle{Transfers: []Transfer{{Writer: 0, Reader: 2}, {Writer: 6, Reader: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("set = %v", set.Comms)
	}
	// Reader outside the writer's segment.
	if _, err := b.CommSet(Cycle{Transfers: []Transfer{{Writer: 0, Reader: 5}}}); err == nil {
		t.Error("cross-segment transfer: want error")
	}
	// Two transfers in one segment.
	if _, err := b.CommSet(Cycle{Transfers: []Transfer{{Writer: 0, Reader: 1}, {Writer: 2, Reader: 3}}}); err == nil {
		t.Error("two transfers in a segment: want error")
	}
	// Self loop.
	if _, err := b.CommSet(Cycle{Transfers: []Transfer{{Writer: 1, Reader: 1}}}); err == nil {
		t.Error("self loop: want error")
	}
}

func TestCommSetNonPowerOfTwo(t *testing.T) {
	b, err := New(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CommSet(Cycle{}); err == nil {
		t.Error("non power-of-two bus cannot map onto a CST: want error")
	}
}

// Each cycle is width <= 1 per orientation, so a cycle costs at most two
// CST rounds (one per orientation).
func TestCycleWidthIsOne(t *testing.T) {
	b, _ := New(16)
	for _, g := range []int{3, 7, 11} {
		if err := b.Split(g); err != nil {
			t.Fatal(err)
		}
	}
	cyc := Cycle{Transfers: []Transfer{
		{Writer: 0, Reader: 3}, {Writer: 7, Reader: 4}, {Writer: 8, Reader: 11}, {Writer: 15, Reader: 12},
	}}
	set, err := b.CommSet(cyc)
	if err != nil {
		t.Fatal(err)
	}
	right, leftM := comm.Decompose(set)
	tr := topology.MustNew(16)
	for _, s := range []*comm.Set{right, leftM} {
		w, err := s.Width(tr)
		if err != nil {
			t.Fatal(err)
		}
		if w > 1 {
			t.Fatalf("oriented cycle width = %d, want <= 1", w)
		}
		if !s.IsWellNested() {
			t.Fatalf("oriented cycle not well nested: %s", s)
		}
	}
}

func TestRunProgram(t *testing.T) {
	tr := topology.MustNew(16)
	b, _ := New(16)
	rng := rand.New(rand.NewSource(4))
	prog, err := RandomProgram(rng, b, 20, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProgram(tr, b, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 20 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	if res.Rounds > 40 {
		t.Fatalf("rounds = %d, want <= 2 per cycle", res.Rounds)
	}
	// Power is accumulated but bounded: a steady segment pattern re-uses
	// configurations across cycles, so the per-switch total must stay far
	// below 3 units per cycle.
	if maxu := res.Report.MaxUnits(); maxu > 2*res.Rounds {
		t.Fatalf("max units %d out of range for %d rounds", maxu, res.Rounds)
	}
	if res.Report.TotalUnits() == 0 && res.Rounds > 0 {
		t.Fatal("program did work but spent nothing")
	}
}

func TestRunProgramErrors(t *testing.T) {
	tr := topology.MustNew(8)
	b, _ := New(16)
	if _, err := RunProgram(tr, b, nil); err == nil {
		t.Error("size mismatch: want error")
	}
	b8, _ := New(8)
	bad := []Cycle{{Transfers: []Transfer{{Writer: 0, Reader: 0}}}}
	if _, err := RunProgram(topology.MustNew(8), b8, bad); err == nil {
		t.Error("bad cycle: want error")
	}
}

func TestRandomProgramValidation(t *testing.T) {
	b, _ := New(16)
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomProgram(rng, b, 5, 3, 0.5); err == nil {
		t.Error("segment width not dividing n: want error")
	}
	if _, err := RandomProgram(rng, b, 5, 1, 0.5); err == nil {
		t.Error("segment width 1: want error")
	}
	prog, err := RandomProgram(rng, b, 10, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 10 {
		t.Fatalf("program length %d", len(prog))
	}
	for _, cyc := range prog {
		if len(cyc.Transfers) != 4 {
			t.Fatalf("density 1.0 must fill all 4 segments, got %d", len(cyc.Transfers))
		}
	}
}

package segbus_test

import (
	"fmt"

	"cst/internal/segbus"
	"cst/internal/topology"
)

// A segmentable bus split into two segments carries one transfer per
// segment per cycle; a whole program runs as PADR rounds over shared
// crossbars.
func ExampleRunProgram() {
	bus, _ := segbus.New(16)
	_ = bus.Split(7) // two segments: [0,8) and [8,16)
	cycle := segbus.Cycle{Transfers: []segbus.Transfer{
		{Writer: 0, Reader: 5},
		{Writer: 8, Reader: 13},
	}}
	res, err := segbus.RunProgram(topology.MustNew(16), bus, []segbus.Cycle{cycle, cycle, cycle})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d cycles, %d CST rounds, max %d units/switch\n",
		res.Cycles, res.Rounds, res.Report.MaxUnits())
	// Output:
	// 3 cycles, 3 CST rounds, max 1 units/switch
}

package fault_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cst/internal/ctrl"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/topology"
)

func TestErrorRenderingAndUnwrap(t *testing.T) {
	detail := errors.New("use field mismatch")
	err := &fault.Error{
		Engine: "sim", Round: 3, Node: 5,
		Kind: fault.ErrSwitchDown, Detail: detail,
	}
	want := "sim: round 3: switch down (node 5): use field mismatch"
	if got := err.Error(); got != want {
		t.Fatalf("rendered %q, want %q", got, want)
	}
	if !errors.Is(err, fault.ErrSwitchDown) {
		t.Fatal("errors.Is missed the taxonomy sentinel")
	}
	if !errors.Is(err, detail) {
		t.Fatal("errors.Is missed the detail")
	}
	if errors.Is(err, fault.ErrDeadline) {
		t.Fatal("errors.Is matched an unrelated sentinel")
	}

	p1 := &fault.Error{Engine: "padr", Round: fault.Phase1, Kind: fault.ErrCorruptWord}
	if got, want := p1.Error(), "padr: phase 1: corrupted control word"; got != want {
		t.Fatalf("rendered %q, want %q", got, want)
	}
}

func TestNewStallReportsMaximalDarkSubtrees(t *testing.T) {
	tree := topology.MustNew(8)
	// PEs 4..7 silent: the entire right half (switch 3) is dark, and the
	// report must collapse its nested dark switches (6, 7) into node 3.
	reported := []bool{true, true, true, true, false, false, false, false}
	s := fault.NewStall(tree, reported)
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(s.MissingPEs, want) {
		t.Fatalf("MissingPEs = %v, want %v", s.MissingPEs, want)
	}
	if want := []topology.Node{3}; !reflect.DeepEqual(s.DarkSubtrees, want) {
		t.Fatalf("DarkSubtrees = %v, want %v", s.DarkSubtrees, want)
	}

	// A single silent PE is its own (leaf) dark subtree.
	reported = []bool{true, true, false, true, true, true, true, true}
	s = fault.NewStall(tree, reported)
	if want := []topology.Node{tree.Leaf(2)}; !reflect.DeepEqual(s.DarkSubtrees, want) {
		t.Fatalf("DarkSubtrees = %v, want %v", s.DarkSubtrees, want)
	}

	// Everything silent: the root alone covers the outage.
	s = fault.NewStall(tree, make([]bool, 8))
	if want := []topology.Node{tree.Root()}; !reflect.DeepEqual(s.DarkSubtrees, want) {
		t.Fatalf("DarkSubtrees = %v, want %v", s.DarkSubtrees, want)
	}
}

func TestInjectorFaultsAreRunScoped(t *testing.T) {
	in := fault.New([]fault.Fault{
		{Kind: fault.DropWord, Node: 9, Run: 1, Round: 2},
		{Kind: fault.FreezeSwitch, Node: 3, Run: 1, Round: 0, Duration: 2},
	})
	in.BeginRun() // run 0: nothing armed
	if in.WordLost(9, 2) || in.FrozenAt(3, 0) {
		t.Fatal("run-1 faults fired during run 0")
	}
	if in.Fired() {
		t.Fatal("Fired() true before any fault matched")
	}
	in.BeginRun() // run 1: both armed
	if !in.WordLost(9, 2) {
		t.Fatal("DropWord did not fire on its run")
	}
	if !in.FrozenAt(3, 0) || !in.FrozenAt(3, 1) || in.FrozenAt(3, 2) {
		t.Fatal("FreezeSwitch window [0,2) not honoured")
	}
	if !in.Fired() {
		t.Fatal("Fired() false after faults matched")
	}
	in.BeginRun() // run 2: plan expired, Fired resets
	if in.WordLost(9, 2) || in.FrozenAt(3, 0) {
		t.Fatal("run-1 faults leaked into run 2")
	}
	if in.Fired() {
		t.Fatal("Fired() not reset by BeginRun")
	}
}

func TestInjectorCorruptionIsDeterministic(t *testing.T) {
	in := fault.New([]fault.Fault{
		{Kind: fault.CorruptWord, Node: 8, Run: 0, Round: 1},
		{Kind: fault.CorruptWord, Node: 9, Run: 0, Round: fault.Phase1},
	})
	in.BeginRun()
	down := ctrl.Down{Use: ctrl.UseS, Xs: 1, Xd: 2}
	got, hit := in.CorruptDown(8, 1, down)
	if !hit {
		t.Fatal("CorruptDown did not fire at its coordinates")
	}
	if got.Use == down.Use || got.Xs != down.Xs || got.Xd != down.Xd {
		t.Fatalf("CorruptDown must cycle Use only: %+v -> %+v", down, got)
	}
	if _, hit := in.CorruptDown(8, 2, down); hit {
		t.Fatal("CorruptDown fired off-round")
	}
	up := ctrl.Up{S: 1, D: 1}
	gotUp, hit := in.CorruptUp(9, up)
	if !hit || gotUp.S != up.S+1 || gotUp.D != up.D {
		t.Fatalf("CorruptUp must inflate S by one: %+v -> %+v (hit=%v)", up, gotUp, hit)
	}
}

func TestInjectorNilSafety(t *testing.T) {
	var in *fault.Injector
	in.BeginRun()
	in.Observe()
	if in.Fired() || in.WordLost(2, 0) || in.FrozenAt(1, 0) || in.LinkDownAt(2, 0) {
		t.Fatal("nil injector reported a fault")
	}
	if _, hit := in.CorruptDown(2, 0, ctrl.Down{}); hit {
		t.Fatal("nil injector corrupted a word")
	}
	if d := in.DelayAt(2, 0); d != 0 {
		t.Fatalf("nil injector delayed by %v", d)
	}
}

func TestInjectorMetrics(t *testing.T) {
	reg := obs.New()
	in := fault.New([]fault.Fault{
		{Kind: fault.DropWord, Node: 8, Run: 0, Round: 0},
	}, fault.WithRegistry(reg))
	injected := reg.Counter("cst_fault_injected_total", "")
	dropped := reg.Counter("cst_fault_words_dropped_total", "")
	observed := reg.Counter("cst_fault_observed_total", "")
	in.BeginRun()
	if !in.WordLost(8, 0) {
		t.Fatal("fault did not fire")
	}
	if injected.Value() != 1 {
		t.Fatalf("cst_fault_injected_total = %d, want 1 (counted per application)", injected.Value())
	}
	if dropped.Value() != 1 {
		t.Fatalf("cst_fault_words_dropped_total = %d, want 1", dropped.Value())
	}
	in.Observe()
	if observed.Value() != 1 {
		t.Fatalf("cst_fault_observed_total = %d, want 1", observed.Value())
	}
}

func TestRandomPlansAreReproducible(t *testing.T) {
	tree := topology.MustNew(16)
	gen := func(seed int64) []fault.Fault {
		return fault.Random(rand.New(rand.NewSource(seed)), tree, 6, 5, 2*time.Millisecond)
	}
	a, b := gen(11), gen(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	for _, f := range a {
		if f.Run != 0 {
			t.Fatalf("Random plan must target run 0: %v", f)
		}
		if int(f.Node) >= tree.NodeCount() || f.Node < 1 {
			t.Fatalf("fault targets out-of-tree node: %v", f)
		}
		if f.Kind == fault.FreezeSwitch && int(f.Node) > tree.Switches() {
			t.Fatalf("freeze targets a leaf: %v", f)
		}
	}
	if reflect.DeepEqual(gen(11), gen(12)) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestFaultStrings(t *testing.T) {
	cases := []struct {
		f    fault.Fault
		want string
	}{
		{fault.Fault{Kind: fault.FreezeSwitch, Node: 5, Round: 2, Duration: 2}, "freeze-switch node=5 run=0 rounds=[2,4)"},
		{fault.Fault{Kind: fault.DropWord, Node: 9, Round: 1}, "drop-word node=9 run=0 round=1"},
		{fault.Fault{Kind: fault.DelayWord, Node: 4, Round: 0, Delay: time.Millisecond}, "delay-word node=4 run=0 round=0 delay=1ms"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Fatalf("String() = %q, want %q", got, c.want)
		}
	}
}

// Package fault is the deterministic fault-injection layer for the CST
// engines. The paper proves the CSA correct on an ideal tree (Theorems 4/5/8)
// and the prior CST work it builds on assumes fault-free switches; a
// production fabric does not get that luxury. This package supplies the
// non-ideal tree: a seeded Injector that drops, corrupts or delays control
// words on chosen links, freezes switches, and fails links for a window of
// rounds — and the shared error taxonomy the hardened engines report when
// the injected (or real) fault kills a schedule.
//
// The design constraint is determinism: a fault plan is an immutable table
// built up front (by hand or from a seed via Random), and every query is a
// pure read plus atomic counter updates. The same plan against the same
// engine therefore reproduces the same failure byte for byte, which is what
// makes the chaos harness's 500-seed sweeps debuggable, and what lets the
// concurrent fabric's node goroutines query the injector without locks.
//
// Fault semantics differ by host in exactly one way: the sequential engine
// (padr) observes every fault synchronously and returns a typed error at the
// round the schedule died, while the concurrent fabric (sim) experiences
// lost words and frozen switches as a stalled broadcast wave, which its
// watchdog converts into ErrDeadline plus a per-node stall report. Delays
// are timing faults and are meaningful only on the timed (sim) fabric; the
// sequential engine ignores them.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cst/internal/ctrl"
	"cst/internal/obs"
	"cst/internal/topology"
)

// Sentinel errors: the fault taxonomy every hardened engine reports
// through. Match with errors.Is; the wrapping *Error carries the round and
// node coordinates.
var (
	// ErrCorruptWord marks a schedule killed by a control word that failed
	// validation (or by the downstream inconsistency a silently corrupted
	// word produced).
	ErrCorruptWord = errors.New("corrupted control word")
	// ErrWordLost marks a control word dropped in flight.
	ErrWordLost = errors.New("control word lost")
	// ErrSwitchDown marks a switch that stopped serving control words.
	ErrSwitchDown = errors.New("switch down")
	// ErrLinkDown marks a link failed for a window of rounds.
	ErrLinkDown = errors.New("link down")
	// ErrDeadline marks a run aborted by the watchdog or context deadline
	// before the schedule completed.
	ErrDeadline = errors.New("deadline exceeded")
)

// Error is the typed failure every hardened engine returns when a fault
// (injected or real) kills a run. It pins the engine, the Phase 2 round at
// which the schedule died (Phase1 for the convergecast), and the implicated
// node when known. Kind is one of the sentinel errors above; Detail is the
// optional underlying diagnostic. errors.Is matches both.
type Error struct {
	// Engine is the reporting host: "padr", "sim" or "online".
	Engine string
	// Round is the Phase 2 round at which the schedule died; Phase1 (-1)
	// for the Phase 1 convergecast.
	Round int
	// Node is the implicated tree node, 0 when unknown.
	Node topology.Node
	// Kind is the taxonomy sentinel (ErrCorruptWord, ErrSwitchDown, ...).
	Kind error
	// Detail is the underlying diagnostic, may be nil.
	Detail error
}

// Error renders e.g. `sim: round 3: switch down (node 5): ...detail...`.
func (e *Error) Error() string {
	var b strings.Builder
	if e.Engine != "" {
		fmt.Fprintf(&b, "%s: ", e.Engine)
	}
	if e.Round == Phase1 {
		b.WriteString("phase 1: ")
	} else {
		fmt.Fprintf(&b, "round %d: ", e.Round)
	}
	b.WriteString(e.Kind.Error())
	if e.Node != 0 {
		fmt.Fprintf(&b, " (node %d)", int(e.Node))
	}
	if e.Detail != nil {
		fmt.Fprintf(&b, ": %v", e.Detail)
	}
	return b.String()
}

// Unwrap exposes both the taxonomy sentinel and the detail to errors.Is/As.
func (e *Error) Unwrap() []error {
	if e.Detail == nil {
		return []error{e.Kind}
	}
	return []error{e.Kind, e.Detail}
}

// Stall is the per-node stall report attached to a watchdog ErrDeadline:
// which PEs never reported during the stalled broadcast wave, and the
// maximal fully-dark subtrees covering them (the frontier behind which the
// wave disappeared — a frozen switch shows up as exactly its subtree).
type Stall struct {
	// MissingPEs lists the PEs that failed to report, ascending.
	MissingPEs []int
	// DarkSubtrees lists the maximal nodes whose entire leaf span is
	// missing, ascending by node.
	DarkSubtrees []topology.Node
}

// Error renders e.g. "wave stalled: 4 PEs silent [8 9 10 11]; dark subtrees: [5]".
func (s *Stall) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wave stalled: %d PEs silent %v", len(s.MissingPEs), s.MissingPEs)
	if len(s.DarkSubtrees) > 0 {
		fmt.Fprintf(&b, "; dark subtrees: %v", s.DarkSubtrees)
	}
	return b.String()
}

// NewStall builds the stall report for a wave in which reported[pe] marks
// the PEs heard from: the silent PEs plus the maximal subtrees that are
// entirely silent (computed bottom-up, reported top-down so nested dark
// subtrees collapse into their root).
func NewStall(t *topology.Tree, reported []bool) *Stall {
	s := &Stall{}
	n := t.Leaves()
	dark := make([]bool, t.NodeCount())
	for pe := 0; pe < n; pe++ {
		if !reported[pe] {
			s.MissingPEs = append(s.MissingPEs, pe)
			dark[t.Leaf(pe)] = true
		}
	}
	t.EachSwitchBottomUp(func(u topology.Node) {
		dark[u] = dark[t.Left(u)] && dark[t.Right(u)]
	})
	for u := topology.Node(1); int(u) < t.NodeCount(); u++ {
		if dark[u] && (u == t.Root() || !dark[t.Parent(u)]) {
			s.DarkSubtrees = append(s.DarkSubtrees, u)
		}
	}
	return s
}

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// DropWord drops the single control word carried on the link identified
	// by Node (the child end) at the given run and round.
	DropWord Kind = iota
	// CorruptWord deterministically mutates the control word on the link at
	// the given run and round (downward words cycle their Use field, upward
	// words inflate their source count), so validation either rejects it or
	// the round-level pairing checks catch the inconsistency.
	CorruptWord
	// DelayWord stalls delivery of words arriving at Node by Delay. A
	// timing fault: only the concurrent fabric observes it (the receiving
	// node sleeps before serving the word); the sequential engine ignores
	// it.
	DelayWord
	// FreezeSwitch makes switch Node swallow every Phase 2 word for
	// Duration rounds starting at Round: the broadcast wave never reaches
	// its subtree. The sequential engine reports ErrSwitchDown at first
	// touch; the fabric stalls until the watchdog fires.
	FreezeSwitch
	// FailLink drops every word on the link to Node (either direction) for
	// Duration rounds starting at Round.
	FailLink
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case DropWord:
		return "drop-word"
	case CorruptWord:
		return "corrupt-word"
	case DelayWord:
		return "delay-word"
	case FreezeSwitch:
		return "freeze-switch"
	case FailLink:
		return "fail-link"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Phase1 is the Round value addressing the Phase 1 convergecast (control
// words flowing up) rather than a Phase 2 broadcast round.
const Phase1 = -1

// Fault is one entry in an injection plan.
type Fault struct {
	// Kind selects the fault class.
	Kind Kind
	// Node locates the fault: the switch itself for FreezeSwitch/DelayWord,
	// the child end of the link for the word and link faults.
	Node topology.Node
	// Run is the 0-based engine run (BeginRun call) the fault arms on. A
	// transient fault hits one run and is gone on the retry.
	Run int
	// Round is the 0-based Phase 2 round (or Phase1) the fault fires at;
	// for FreezeSwitch/FailLink it is the start of the window.
	Round int
	// Duration is the window length in rounds for FreezeSwitch/FailLink
	// (minimum 1; 0 is normalized to 1).
	Duration int
	// Delay is the hold time for DelayWord on the timed fabric.
	Delay time.Duration
}

// String renders e.g. "freeze-switch node=5 run=0 rounds=[2,4)".
func (f Fault) String() string {
	switch f.Kind {
	case FreezeSwitch, FailLink:
		return fmt.Sprintf("%s node=%d run=%d rounds=[%d,%d)", f.Kind, int(f.Node), f.Run, f.Round, f.Round+f.window())
	case DelayWord:
		return fmt.Sprintf("%s node=%d run=%d round=%d delay=%v", f.Kind, int(f.Node), f.Run, f.Round, f.Delay)
	default:
		return fmt.Sprintf("%s node=%d run=%d round=%d", f.Kind, int(f.Node), f.Run, f.Round)
	}
}

func (f Fault) window() int {
	if f.Duration < 1 {
		return 1
	}
	return f.Duration
}

// covers reports whether the fault's round window contains round.
func (f Fault) covers(round int) bool {
	return round >= f.Round && round < f.Round+f.window()
}

// injMetrics are the injector's cst_fault_* handles; the all-nil zero value
// (nil registry) no-ops.
type injMetrics struct {
	injected  *obs.Counter
	dropped   *obs.Counter
	corrupted *obs.Counter
	delayed   *obs.Counter
	frozen    *obs.Counter
	linkDown  *obs.Counter
	observed  *obs.Counter
}

func newInjMetrics(r *obs.Registry) injMetrics {
	return injMetrics{
		injected:  r.Counter("cst_fault_injected_total", "fault applications of any kind"),
		dropped:   r.Counter("cst_fault_words_dropped_total", "control words dropped in flight"),
		corrupted: r.Counter("cst_fault_words_corrupted_total", "control words mutated in flight"),
		delayed:   r.Counter("cst_fault_words_delayed_total", "control words held by a delay fault"),
		frozen:    r.Counter("cst_fault_switch_freezes_total", "Phase 2 words swallowed by frozen switches"),
		linkDown:  r.Counter("cst_fault_link_failures_total", "control words lost to failed links"),
		observed:  r.Counter("cst_fault_observed_total", "engine failures attributed to injected faults"),
	}
}

// Option configures an Injector.
type Option func(*Injector)

// WithRegistry publishes the injector's cst_fault_* series to r, making
// injected vs. observed fault counts visible on /metrics next to the engine
// series they perturb.
func WithRegistry(r *obs.Registry) Option {
	return func(in *Injector) { in.met = newInjMetrics(r) }
}

// Injector is a deterministic fault plan plus its application counters. The
// plan is immutable after New; every query is a read plus atomic counter
// updates, so the concurrent fabric's node goroutines share one injector
// with no locks. The zero run index targets the first BeginRun'd engine
// run. A nil *Injector is inert: every query reports "no fault".
type Injector struct {
	faults []Fault
	met    injMetrics

	run   atomic.Int64 // current 0-based run index; -1 before the first BeginRun
	fired atomic.Int64 // fault applications during the current run
}

// New builds an injector over a fault plan. The plan is copied; later
// mutation of the argument does not affect the injector.
func New(faults []Fault, opts ...Option) *Injector {
	in := &Injector{faults: append([]Fault(nil), faults...)}
	in.run.Store(-1)
	for _, o := range opts {
		o(in)
	}
	return in
}

// Faults returns a copy of the plan (for failure-repro artifacts).
func (in *Injector) Faults() []Fault {
	if in == nil {
		return nil
	}
	return append([]Fault(nil), in.faults...)
}

// BeginRun arms the injector for the next engine run: faults with Run equal
// to the number of previous BeginRun calls become live. Hosts call it once
// per run, from the driving goroutine.
func (in *Injector) BeginRun() {
	if in == nil {
		return
	}
	in.run.Add(1)
	in.fired.Store(0)
}

// Fired reports whether any fault was applied during the current run — the
// hosts' signal to attribute an otherwise-generic failure to injection.
func (in *Injector) Fired() bool {
	return in != nil && in.fired.Load() > 0
}

// match finds the live fault of the given kinds at (node, round) for the
// current run, or nil.
func (in *Injector) match(node topology.Node, round int, kinds ...Kind) *Fault {
	if in == nil {
		return nil
	}
	run := int(in.run.Load())
	for i := range in.faults {
		f := &in.faults[i]
		if f.Node != node || f.Run != run {
			continue
		}
		for _, k := range kinds {
			if f.Kind != k {
				continue
			}
			switch k {
			case FreezeSwitch, FailLink:
				if f.covers(round) {
					return f
				}
			default:
				if f.Round == round {
					return f
				}
			}
		}
	}
	return nil
}

func (in *Injector) applied(c *obs.Counter) {
	in.fired.Add(1)
	in.met.injected.Inc()
	c.Inc()
}

// WordLost reports whether the control word on the link to child at the
// given round (Phase1 for the convergecast) is lost — to a one-shot drop or
// a failed-link window — and counts the loss.
func (in *Injector) WordLost(child topology.Node, round int) bool {
	f := in.match(child, round, DropWord, FailLink)
	if f == nil {
		return false
	}
	if f.Kind == FailLink {
		in.applied(in.met.linkDown)
	} else {
		in.applied(in.met.dropped)
	}
	return true
}

// LinkDownAt reports (without counting) whether a FailLink window covers
// the link to child at the given round — how the sequential engine
// distinguishes ErrLinkDown from a one-shot ErrWordLost.
func (in *Injector) LinkDownAt(child topology.Node, round int) bool {
	f := in.match(child, round, FailLink)
	return f != nil
}

// FrozenAt reports whether switch u is frozen at the given round, counting
// each swallowed touch.
func (in *Injector) FrozenAt(u topology.Node, round int) bool {
	if in.match(u, round, FreezeSwitch) == nil {
		return false
	}
	in.applied(in.met.frozen)
	return true
}

// CorruptDown mutates a downward control word on the link to child at the
// given round. The mutation is deterministic and always changes the word:
// the Use field cycles to the next value, so an idle word becomes a command
// and a command changes shape — either failing validation at the receiver
// or producing a round-level pairing inconsistency.
func (in *Injector) CorruptDown(child topology.Node, round int, w ctrl.Down) (ctrl.Down, bool) {
	if in.match(child, round, CorruptWord) == nil {
		return w, false
	}
	in.applied(in.met.corrupted)
	w.Use = ctrl.Use((uint8(w.Use) + 1) % 4)
	return w, true
}

// CorruptUp mutates an upward (Phase 1) control word on the link whose
// child end is child. The source count is inflated by one, which is always
// detectable: the root's matched totals no longer cancel, so the root
// advertises pending demand and the run dies at the Phase 1 sanity check.
func (in *Injector) CorruptUp(child topology.Node, w ctrl.Up) (ctrl.Up, bool) {
	if in.match(child, Phase1, CorruptWord) == nil {
		return w, false
	}
	in.applied(in.met.corrupted)
	w.S++
	return w, true
}

// DelayAt returns how long the node should stall before serving a word
// arriving at the given round (0 = no delay), counting the hold.
func (in *Injector) DelayAt(node topology.Node, round int) time.Duration {
	f := in.match(node, round, DelayWord)
	if f == nil || f.Delay <= 0 {
		return 0
	}
	in.applied(in.met.delayed)
	return f.Delay
}

// Observe counts one engine failure attributed to injected faults (the
// "observed" side of the injected-vs-observed metric pair).
func (in *Injector) Observe() {
	if in == nil {
		return
	}
	in.met.observed.Inc()
}

// Random draws a deterministic fault plan of count faults against run 0 on
// tree t, with rounds spread over [Phase1, rounds) and small windows. All
// five kinds are drawn; delays are bounded by maxDelay (a non-positive
// maxDelay disables DelayWord). The plan is sorted for stable rendering.
func Random(rng *rand.Rand, t *topology.Tree, rounds, count int, maxDelay time.Duration) []Fault {
	kinds := []Kind{DropWord, CorruptWord, FreezeSwitch, FailLink}
	if maxDelay > 0 {
		kinds = append(kinds, DelayWord)
	}
	if rounds < 1 {
		rounds = 1
	}
	faults := make([]Fault, 0, count)
	for i := 0; i < count; i++ {
		k := kinds[rng.Intn(len(kinds))]
		f := Fault{Kind: k, Round: rng.Intn(rounds+1) - 1} // Phase1 .. rounds-1
		switch k {
		case FreezeSwitch:
			// Freezing is a Phase 2 behaviour; pin the window to real rounds.
			f.Node = topology.Node(1 + rng.Intn(t.Switches()))
			if f.Round < 0 {
				f.Round = 0
			}
			f.Duration = 1 + rng.Intn(3)
		case DelayWord:
			f.Node = topology.Node(1 + rng.Intn(t.NodeCount()-1))
			if f.Round < 0 {
				f.Round = 0
			}
			f.Delay = time.Duration(1+rng.Int63n(int64(maxDelay))) % maxDelay
			if f.Delay <= 0 {
				f.Delay = maxDelay
			}
		case FailLink:
			// Any non-root node identifies a link (its parent edge).
			f.Node = topology.Node(2 + rng.Intn(t.NodeCount()-2))
			f.Duration = 1 + rng.Intn(3)
		default:
			f.Node = topology.Node(2 + rng.Intn(t.NodeCount()-2))
		}
		faults = append(faults, f)
	}
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Round != faults[j].Round {
			return faults[i].Round < faults[j].Round
		}
		return faults[i].Node < faults[j].Node
	})
	return faults
}

package fault_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/online"
	"cst/internal/padr"
	"cst/internal/sim"
	"cst/internal/topology"
)

// The chaos harness: randomized fault schedules against every engine, with
// the single invariant the hardening layer promises — a clean run is
// bit-identical to an uninstrumented one; a faulty run either completes
// with a verifier-approved schedule or returns a typed *fault.Error within
// the deadline; and nothing ever panics, deadlocks, or leaks a goroutine.

const chaosN = 16

// chaosSeeds returns the per-engine seed count: the full 500 normally,
// trimmed under -short so `go test -short` stays snappy.
func chaosSeeds() int {
	if testing.Short() {
		return 50
	}
	return 500
}

// saveRepro writes a failure-reproduction artifact (engine, seed, set,
// fault plan) to $CHAOS_ARTIFACT_DIR when set, so CI uploads exactly what a
// developer needs to replay the failing schedule.
func saveRepro(t *testing.T, engine string, seed int, set *comm.Set, faults []fault.Fault) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	type repro struct {
		Engine string        `json:"engine"`
		Seed   int           `json:"seed"`
		N      int           `json:"n"`
		Set    string        `json:"set"`
		Faults []fault.Fault `json:"faults"`
	}
	blob, err := json.MarshalIndent(repro{
		Engine: engine, Seed: seed, N: set.N, Set: set.String(), Faults: faults,
	}, "", "  ")
	if err != nil {
		t.Logf("repro marshal failed: %v", err)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("repro dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos_%s_seed%d.json", engine, seed))
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Logf("repro write: %v", err)
		return
	}
	t.Logf("chaos repro artifact: %s", path)
}

// requireTyped asserts err is a *fault.Error — the "typed error, never a
// raw failure" half of the chaos invariant.
func requireTyped(t *testing.T, engine string, seed int, set *comm.Set, plan []fault.Fault, err error) *fault.Error {
	t.Helper()
	var fe *fault.Error
	if !errors.As(err, &fe) {
		saveRepro(t, engine, seed, set, plan)
		t.Fatalf("seed %d: %s returned an untyped error under injection: %v", seed, engine, err)
	}
	return fe
}

func sortRounds(rounds [][]comm.Comm) {
	for _, r := range rounds {
		sort.Slice(r, func(i, j int) bool { return r[i].Src < r[j].Src })
	}
}

// waitNoExtraGoroutines polls until the goroutine count returns to the
// baseline (goroutines decrement their WaitGroup before the final returns
// retire, so a fresh count can transiently overshoot).
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", n, base)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func chaosSet(rng *rand.Rand, t *testing.T) *comm.Set {
	t.Helper()
	set, err := comm.RandomWellNested(rng, chaosN, 1+rng.Intn(chaosN/2))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestChaosPadr sweeps seeded fault schedules through the sequential
// engine. The engine observes every fault synchronously, so the invariant
// sharpens: success ⇒ verifier-approved schedule (and bit-identity with the
// clean run when no fault fired); failure ⇒ typed error carrying the round.
func TestChaosPadr(t *testing.T) {
	tree := topology.MustNew(chaosN)
	seeds := chaosSeeds()
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		set := chaosSet(rng, t)
		width, err := set.Width(tree)
		if err != nil {
			t.Fatal(err)
		}
		plan := fault.Random(rng, tree, width+2, 1+rng.Intn(3), 0)
		inj := fault.New(plan)
		eng, err := padr.New(tree, set, padr.WithFaults(inj))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := eng.Run()
		if err != nil {
			requireTyped(t, "padr", seed, set, plan, err)
			continue
		}
		if verr := res.Schedule.VerifyOptimal(tree); verr != nil {
			saveRepro(t, "padr", seed, set, plan)
			t.Fatalf("seed %d: faulty run claimed success with a bad schedule: %v", seed, verr)
		}
		if !inj.Fired() {
			clean, err := padr.New(tree, set)
			if err != nil {
				t.Fatal(err)
			}
			cleanRes, err := clean.Run()
			if err != nil {
				t.Fatalf("seed %d: clean run failed: %v", seed, err)
			}
			if !reflect.DeepEqual(res, cleanRes) {
				saveRepro(t, "padr", seed, set, plan)
				t.Fatalf("seed %d: misfiring plan still changed the result", seed)
			}
		}
	}
}

// TestChaosPadrCleanInjector pins the zero-cost half of the contract: an
// armed injector with an empty plan must not change a single result bit
// (this also exercises the injection path with Phase 2 pruning disabled).
func TestChaosPadrCleanInjector(t *testing.T) {
	tree := topology.MustNew(chaosN)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		set := chaosSet(rng, t)
		inst, err := padr.New(tree, set, padr.WithFaults(fault.New(nil)))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := padr.New(tree, set)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inst.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := plain.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: empty injector changed the result\nwith:    %+v\nwithout: %+v", trial, got, want)
		}
	}
}

// TestChaosSim sweeps seeded fault schedules through the concurrent
// fabric: every faulty run must finish correctly or abort with a typed
// error before the watchdog budget, the aborted fabric must stay reusable
// (a follow-up clean run on the SAME fabric must be bit-identical to a
// fresh uninstrumented run), and no goroutine may outlive its fabric.
func TestChaosSim(t *testing.T) {
	base := runtime.NumGoroutine()
	tree := topology.MustNew(chaosN)
	seeds := chaosSeeds()
	const watchdog = 50 * time.Millisecond
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		set := chaosSet(rng, t)
		width, err := set.Width(tree)
		if err != nil {
			t.Fatal(err)
		}
		plan := fault.Random(rng, tree, width+2, 1+rng.Intn(3), 500*time.Microsecond)
		inj := fault.New(plan)
		f := sim.NewFabric(tree, sim.WithFaults(inj), sim.WithWatchdog(watchdog))

		start := time.Now()
		res, err := f.RunContext(context.Background(), set)
		if err != nil {
			fe := requireTyped(t, "sim", seed, set, plan, err)
			if errors.Is(fe, fault.ErrDeadline) && time.Since(start) > 20*watchdog {
				saveRepro(t, "sim", seed, set, plan)
				t.Fatalf("seed %d: deadline abort took %v, far beyond the %v watchdog", seed, time.Since(start), watchdog)
			}
		} else if verr := res.Schedule.VerifyOptimal(tree); verr != nil {
			saveRepro(t, "sim", seed, set, plan)
			t.Fatalf("seed %d: faulty run claimed success with a bad schedule: %v", seed, verr)
		}

		// Post-fault reuse: the fault plan is scoped to injector run 0, so a
		// second run on the same (possibly abort-recovered) fabric is clean
		// and must match a fresh uninstrumented fabric bit for bit.
		reused, err := f.Run(set)
		if err != nil {
			saveRepro(t, "sim", seed, set, plan)
			t.Fatalf("seed %d: fabric unusable after faulty run: %v", seed, err)
		}
		fresh, err := sim.Run(tree, set)
		if err != nil {
			t.Fatalf("seed %d: fresh run: %v", seed, err)
		}
		ru, fr := *reused, *fresh
		ru.RoundLatencies, fr.RoundLatencies = nil, nil
		sortRounds(ru.Schedule.Rounds)
		sortRounds(fr.Schedule.Rounds)
		if !reflect.DeepEqual(ru, fr) {
			saveRepro(t, "sim", seed, set, plan)
			t.Fatalf("seed %d: post-fault fabric diverged from fresh run\nreused: %+v\nfresh:  %+v", seed, ru, fr)
		}
		f.Close()
	}
	waitNoExtraGoroutines(t, base)
}

// TestChaosOnline sweeps seeded fault schedules through the dispatcher:
// every Dispatch either completes, or retries and recovers, or quarantines
// the batch with a typed error — and the queue always drains (no wedged
// pool), with every request accounted for as completed or quarantined.
func TestChaosOnline(t *testing.T) {
	seeds := chaosSeeds()
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tree := topology.MustNew(chaosN)
		// Faults across the first few injector runs so retries (which
		// advance the run index) meet both transient and repeated faults.
		var plan []fault.Fault
		for _, f := range fault.Random(rng, tree, 6, 1+rng.Intn(3), 0) {
			f.Run = rng.Intn(online.MaxDispatchAttempts + 1)
			plan = append(plan, f)
		}
		inj := fault.New(plan)
		s, err := online.New(chaosN, online.WithFaults(inj))
		if err != nil {
			t.Fatal(err)
		}
		accepted := s.SubmitRandom(rng, 1+rng.Intn(8))
		for s.QueueLen() > 0 {
			before := s.QueueLen()
			_, err := s.Dispatch()
			if err != nil {
				var fe *fault.Error
				if !errors.As(err, &fe) {
					t.Fatalf("seed %d: untyped dispatch error: %v", seed, err)
				}
			}
			if s.QueueLen() >= before {
				t.Fatalf("seed %d: dispatch made no progress (%d pending, err=%v)", seed, before, err)
			}
		}
		stats := s.Finish()
		if got := len(stats.Completed) + len(stats.Quarantined); got != accepted {
			t.Fatalf("seed %d: %d completed + %d quarantined != %d accepted",
				seed, len(stats.Completed), len(stats.Quarantined), accepted)
		}
	}
}

// TestChaosOnlineCleanInjector pins that an armed-but-empty injector does
// not perturb the dispatcher: stats equal the uninstrumented run.
func TestChaosOnlineCleanInjector(t *testing.T) {
	run := func(opts ...online.Option) *online.Stats {
		s, err := online.New(chaosN, opts...)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 6; i++ {
			s.SubmitRandom(rng, 4)
			if err := s.Drain(); err != nil {
				t.Fatal(err)
			}
		}
		return s.Finish()
	}
	got := run(online.WithFaults(fault.New(nil)))
	want := run()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty injector changed online stats\nwith:    %+v\nwithout: %+v", got, want)
	}
}

// FuzzScheduleFaulty drives the sequential engine under fuzzer-chosen
// fault plans and sets: whatever the bytes say, the engine must never
// panic, and any failure must be a typed *fault.Error.
func FuzzScheduleFaulty(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), int16(3), int16(0))
	f.Add(int64(7), uint8(0), uint8(5), int16(-1), int16(1))
	f.Add(int64(42), uint8(4), uint8(30), int16(2), int16(2))
	tree := topology.MustNew(chaosN)
	f.Fuzz(func(t *testing.T, seed int64, kind, node uint8, round, dur int16) {
		rng := rand.New(rand.NewSource(seed))
		set, err := comm.RandomWellNested(rng, chaosN, 1+rng.Intn(chaosN/2))
		if err != nil {
			t.Skip()
		}
		// One fuzzer-shaped fault plus a couple of seeded ones: the raw
		// values are deliberately NOT sanitized — an out-of-range node or a
		// negative duration must be survivable, not rejected upstream.
		plan := append(fault.Random(rng, tree, 6, 2, 0), fault.Fault{
			Kind:     fault.Kind(kind % 5),
			Node:     topology.Node(node),
			Round:    int(round),
			Duration: int(dur),
		})
		eng, err := padr.New(tree, set, padr.WithFaults(fault.New(plan)))
		if err != nil {
			t.Fatalf("engine rejected a valid set: %v", err)
		}
		res, err := eng.Run()
		if err != nil {
			var fe *fault.Error
			if !errors.As(err, &fe) {
				t.Fatalf("untyped error under injection: %v", err)
			}
			return
		}
		if verr := res.Schedule.VerifyOptimal(tree); verr != nil {
			t.Fatalf("bad schedule accepted: %v", verr)
		}
	})
}

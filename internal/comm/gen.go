package comm

import (
	"fmt"
	"math/rand"
	"sort"

	"cst/internal/topology"
)

// Generators for well-nested communication sets. All take an explicit
// *rand.Rand so every experiment is reproducible from a seed.

// RandomDyck returns a uniformly random balanced parenthesis word with m
// pairs, as a []byte of '(' and ')'. It uses the cycle lemma: a uniformly
// shuffled word of m+1 '(' and m ')' has exactly one rotation that is a
// prefix-positive path; dropping that rotation's leading '(' yields a
// uniform Dyck word.
func RandomDyck(rng *rand.Rand, m int) []byte {
	if m == 0 {
		return nil
	}
	w := make([]byte, 2*m+1)
	for i := 0; i <= m; i++ {
		w[i] = '('
	}
	for i := m + 1; i <= 2*m; i++ {
		w[i] = ')'
	}
	rng.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] })
	// Find the unique rotation point: just after the *last* minimum of the
	// prefix-sum walk (cycle lemma — the empty prefix, sum 0, is a
	// candidate too, hence the initial minSum of 0).
	sum, minSum, minPos := 0, 0, 0
	for i, ch := range w {
		if ch == '(' {
			sum++
		} else {
			sum--
		}
		if sum <= minSum {
			minSum, minPos = sum, i+1
		}
	}
	rot := make([]byte, 0, len(w))
	rot = append(rot, w[minPos:]...)
	rot = append(rot, w[:minPos]...)
	return rot[1:] // drop the guaranteed leading '('
}

// RandomWellNested generates a random well-nested right-oriented set with m
// communications over n PEs (n a power of two, 2m <= n): 2m distinct PE
// positions are chosen uniformly and filled with a uniform Dyck word.
func RandomWellNested(rng *rand.Rand, n, m int) (*Set, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("comm: n must be a power of two >= 2, got %d", n)
	}
	if 2*m > n {
		return nil, fmt.Errorf("comm: %d communications need %d PEs, only %d available", m, 2*m, n)
	}
	pos := rng.Perm(n)[:2*m]
	sortInts(pos)
	word := RandomDyck(rng, m)
	s := &Set{N: n}
	var stack []int
	for i, ch := range word {
		pe := pos[i]
		if ch == '(' {
			stack = append(stack, pe)
		} else {
			src := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.Comms = append(s.Comms, Comm{Src: src, Dst: pe})
		}
	}
	return s, nil
}

// RandomWellNestedWidth generates a random well-nested set over n PEs whose
// tree-link width (Set.Width, the paper's w) is exactly `width`. It requires
// 2*width <= n and m >= width. It retries the uniform generator a bounded
// number of times and falls back to a deterministic planted instance: a
// root-crossing chain of the exact width (whose w communications all share
// the links next to the root) plus disjoint sibling pairs — which add no
// link congestion — up to the m budget.
func RandomWellNestedWidth(rng *rand.Rand, n, m, width int) (*Set, error) {
	if width < 1 {
		return nil, fmt.Errorf("comm: width must be >= 1, got %d", width)
	}
	if m < width {
		m = width
	}
	if 2*m > n {
		return nil, fmt.Errorf("comm: %d communications need %d PEs, only %d available", m, 2*m, n)
	}
	tr, err := topology.New(n)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < 64; attempt++ {
		s, err := RandomWellNested(rng, n, m)
		if err != nil {
			return nil, err
		}
		w, err := s.Width(tr)
		if err != nil {
			return nil, err
		}
		if w == width {
			return s, nil
		}
	}
	return plantedWidth(n, m, width)
}

// plantedWidth builds the root-crossing chain (i, n-1-i) for i < width, then
// fills with disjoint aligned sibling pairs (which use only their two leaf
// links, so the width is untouched) up to the m budget.
func plantedWidth(n, m, width int) (*Set, error) {
	if 2*m > n || m < width {
		return nil, fmt.Errorf("comm: cannot plant width %d with m=%d over n=%d", width, m, n)
	}
	s := &Set{N: n}
	for i := 0; i < width; i++ {
		s.Comms = append(s.Comms, Comm{Src: i, Dst: n - 1 - i})
	}
	pe := width
	if pe%2 == 1 {
		pe++ // keep pairs sibling-aligned so they add no inner congestion
	}
	for len(s.Comms) < m && pe+1 < n-width {
		s.Comms = append(s.Comms, Comm{Src: pe, Dst: pe + 1})
		pe += 2
	}
	if len(s.Comms) < m {
		return nil, fmt.Errorf("comm: could not fit %d communications at width %d over n=%d", m, width, n)
	}
	return s, nil
}

// NestedChain returns the canonical width-w chain over n PEs:
// sources at PEs 0..w-1 and destinations at n-w..n-1 in reverse, i.e.
// ( ( ( ... ) ) ). This is the adversarial workload for power experiments:
// every communication is matched at the root.
func NestedChain(n, w int) (*Set, error) {
	if 2*w > n {
		return nil, fmt.Errorf("comm: chain of width %d needs %d PEs, got %d", w, 2*w, n)
	}
	s := &Set{N: n}
	for i := 0; i < w; i++ {
		s.Comms = append(s.Comms, Comm{Src: i, Dst: n - 1 - i})
	}
	return s, nil
}

// SplitChain returns a width-w nested chain (w even) whose sources are
// split between the two grandchild subtrees of the root's left child:
// sources 0..w/2-1 and n/4..n/4+w/2-1, destinations packed at the right
// edge. Every communication crosses the root, so the link width is exactly
// w. It is the adversarial workload for configuration *churn*: a scheduler
// that interleaves outer and inner communications (baseline.Alternating)
// forces the left child of the root to flip its p_o driver between its two
// subtrees Θ(w) times, while outermost-first consumes each subtree's
// sources contiguously.
func SplitChain(n, w int) (*Set, error) {
	if w%2 != 0 {
		return nil, fmt.Errorf("comm: split chain width must be even, got %d", w)
	}
	if w/2 > n/4 || w > n/2 {
		return nil, fmt.Errorf("comm: split chain of width %d does not fit %d PEs", w, n)
	}
	s := &Set{N: n}
	for i := 0; i < w; i++ {
		src := i
		if i >= w/2 {
			src = n/4 + (i - w/2)
		}
		s.Comms = append(s.Comms, Comm{Src: src, Dst: n - 1 - i})
	}
	return s, nil
}

// CompactChain returns the width-w chain packed into the leftmost 2w PEs:
// sources 0..w-1, destinations 2w-1..w. Unlike NestedChain, the chain's LCA
// structure spreads across the levels above PE w-1 rather than meeting at
// the root.
func CompactChain(n, w int) (*Set, error) {
	if 2*w > n {
		return nil, fmt.Errorf("comm: chain of width %d needs %d PEs, got %d", w, 2*w, n)
	}
	s := &Set{N: n}
	for i := 0; i < w; i++ {
		s.Comms = append(s.Comms, Comm{Src: i, Dst: 2*w - 1 - i})
	}
	return s, nil
}

// DisjointPairs returns the width-1 comb ()()()… with k pairs over n PEs,
// spread evenly. All communications are compatible and schedule in one
// round.
func DisjointPairs(n, k int) (*Set, error) {
	if 2*k > n {
		return nil, fmt.Errorf("comm: %d pairs need %d PEs, got %d", k, 2*k, n)
	}
	s := &Set{N: n}
	stride := n / k
	for i := 0; i < k; i++ {
		base := i * stride
		s.Comms = append(s.Comms, Comm{Src: base, Dst: base + 1})
	}
	return s, nil
}

// SiblingForest returns `groups` side-by-side nested chains, each of width
// `width`: (((...))) (((...))) …, a forest whose overall link width equals
// `width` but whose congested switches are spread across the tree rather
// than concentrated at the root. groups must be a power of two dividing n
// (so each chain crosses the root of its own aligned block, pinning that
// chain's width to `width` exactly), and each block of n/groups PEs must fit
// 2*width endpoints.
func SiblingForest(n, groups, width int) (*Set, error) {
	if groups < 1 || groups&(groups-1) != 0 || n%groups != 0 {
		return nil, fmt.Errorf("comm: groups must be a power of two dividing n; got groups=%d n=%d", groups, n)
	}
	stride := n / groups
	if 2*width > stride {
		return nil, fmt.Errorf("comm: forest block of %d PEs cannot hold a width-%d chain", stride, width)
	}
	s := &Set{N: n}
	for g := 0; g < groups; g++ {
		base := g * stride
		for i := 0; i < width; i++ {
			s.Comms = append(s.Comms, Comm{Src: base + i, Dst: base + stride - 1 - i})
		}
	}
	return s, nil
}

// Staircase returns a width-2 ladder pattern that exercises the [s,d]
// control word heavily: ( ( ) ( ) ( ) … ), an outer span containing k
// disjoint inner pairs.
func Staircase(n, k int) (*Set, error) {
	if 2*k+2 > n {
		return nil, fmt.Errorf("comm: staircase with %d inner pairs needs %d PEs, got %d", k, 2*k+2, n)
	}
	s := &Set{N: n}
	s.Comms = append(s.Comms, Comm{Src: 0, Dst: 2*k + 1})
	for i := 0; i < k; i++ {
		s.Comms = append(s.Comms, Comm{Src: 1 + 2*i, Dst: 2 + 2*i})
	}
	return s, nil
}

// BitReversal returns the bit-reversal permutation restricted to pairs
// (i, rev(i)) with i < rev(i): every PE i whose log2(n)-bit reversal differs
// from i communicates with it, oriented rightward. A classic
// crossing-heavy HPC pattern (FFT data exchange); it is NOT well nested, so
// it exercises the general scheduler and Decompose paths.
func BitReversal(n int) (*Set, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("comm: n must be a power of two >= 2, got %d", n)
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	s := &Set{N: n}
	for i := 0; i < n; i++ {
		r := reverseBits(i, bits)
		if i < r {
			s.Comms = append(s.Comms, Comm{Src: i, Dst: r})
		}
	}
	return s, nil
}

// CrossingPairs returns m pairwise-crossing communications over n PEs with
// alternating orientations: the spans (i, i+m) for i < m all overlap
// without nesting, so no two of them can share a well-nested batch, and
// every second pair is left-oriented. It is the adversarial workload for
// the hybrid scheduler — the peel produces m singleton-heavy batches while
// the conflict coloring handles it in width rounds — and, with 2m <= n,
// deterministic for a given (n, m).
func CrossingPairs(n, m int) (*Set, error) {
	if m < 1 {
		return nil, fmt.Errorf("comm: crossing pairs need m >= 1, got %d", m)
	}
	if 2*m > n {
		return nil, fmt.Errorf("comm: %d crossing pairs need %d PEs, got %d", m, 2*m, n)
	}
	s := &Set{N: n}
	for i := 0; i < m; i++ {
		c := Comm{Src: i, Dst: i + m}
		if i%2 == 1 {
			c.Src, c.Dst = c.Dst, c.Src
		}
		s.Comms = append(s.Comms, c)
	}
	return s, nil
}

func reverseBits(v, bits int) int {
	out := 0
	for i := 0; i < bits; i++ {
		out = out<<1 | (v & 1)
		v >>= 1
	}
	return out
}

// RandomOriented generates an arbitrary right-oriented (not necessarily
// well-nested) set: m random disjoint-endpoint pairs, each oriented
// rightward. Useful for exercising Decompose and the greedy baseline.
func RandomOriented(rng *rand.Rand, n, m int) (*Set, error) {
	if 2*m > n {
		return nil, fmt.Errorf("comm: %d communications need %d PEs, only %d available", m, 2*m, n)
	}
	pos := rng.Perm(n)[:2*m]
	s := &Set{N: n}
	for i := 0; i < m; i++ {
		a, b := pos[2*i], pos[2*i+1]
		if a > b {
			a, b = b, a
		}
		s.Comms = append(s.Comms, Comm{Src: a, Dst: b})
	}
	return s, nil
}

// RandomTwoSided generates an arbitrary set with both orientations: like
// RandomOriented but each pair keeps a random direction.
func RandomTwoSided(rng *rand.Rand, n, m int) (*Set, error) {
	s, err := RandomOriented(rng, n, m)
	if err != nil {
		return nil, err
	}
	for i := range s.Comms {
		if rng.Intn(2) == 0 {
			s.Comms[i].Src, s.Comms[i].Dst = s.Comms[i].Dst, s.Comms[i].Src
		}
	}
	return s, nil
}

func sortInts(a []int) { sort.Ints(a) }

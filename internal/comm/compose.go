package comm

import "fmt"

// Combinators for building structured workloads out of smaller sets. All
// return new sets and never mutate their inputs.

// Translate shifts every endpoint by offset (PE i becomes i+offset) onto a
// line of newN PEs. Errors when any endpoint would leave [0, newN).
func (s *Set) Translate(offset, newN int) (*Set, error) {
	out := &Set{N: newN}
	for _, c := range s.Comms {
		nc := Comm{Src: c.Src + offset, Dst: c.Dst + offset}
		if nc.Src < 0 || nc.Src >= newN || nc.Dst < 0 || nc.Dst >= newN {
			return nil, fmt.Errorf("comm: translate by %d moves %s out of [0,%d)", offset, c, newN)
		}
		out.Comms = append(out.Comms, nc)
	}
	return out, nil
}

// Concat places b's PE line immediately to the right of a's: the result has
// a.N + b.N PEs (the sum must be a power of two for CST use; Concat itself
// does not require it). Well-nestedness is preserved: the two halves are
// disjoint.
func Concat(a, b *Set) *Set {
	out := &Set{N: a.N + b.N}
	out.Comms = append(out.Comms, a.Comms...)
	for _, c := range b.Comms {
		out.Comms = append(out.Comms, Comm{Src: c.Src + a.N, Dst: c.Dst + a.N})
	}
	return out
}

// Nest wraps s in one enclosing communication: the result has s.N + 2 PEs
// with a new source at PE 0 and a new destination at the last PE, and s
// shifted right by one. Nesting a well-nested set stays well nested and
// increases the maximum depth by one.
func Nest(s *Set) *Set {
	out := &Set{N: s.N + 2}
	out.Comms = append(out.Comms, Comm{Src: 0, Dst: s.N + 1})
	for _, c := range s.Comms {
		out.Comms = append(out.Comms, Comm{Src: c.Src + 1, Dst: c.Dst + 1})
	}
	return out
}

// Within returns the communications fully contained in the half-open PE
// interval [lo, hi), renumbered to a fresh line of hi-lo PEs.
func (s *Set) Within(lo, hi int) (*Set, error) {
	if lo < 0 || hi > s.N || lo >= hi {
		return nil, fmt.Errorf("comm: bad interval [%d,%d) for N=%d", lo, hi, s.N)
	}
	out := &Set{N: hi - lo}
	for _, c := range s.Comms {
		a, b := c.Src, c.Dst
		if a > b {
			a, b = b, a
		}
		if a >= lo && b < hi {
			out.Comms = append(out.Comms, Comm{Src: c.Src - lo, Dst: c.Dst - lo})
		}
	}
	return out, nil
}

// Pad returns the set on a wider line of newN PEs (endpoints unchanged).
// Errors when newN is smaller than N.
func (s *Set) Pad(newN int) (*Set, error) {
	if newN < s.N {
		return nil, fmt.Errorf("comm: cannot pad N=%d down to %d", s.N, newN)
	}
	out := s.Clone()
	out.N = newN
	return out, nil
}

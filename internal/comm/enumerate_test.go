package comm

import (
	"testing"
)

func TestEnumerateCountsMatchTheory(t *testing.T) {
	// sum over m of C(n,2m) * Catalan(m).
	cases := []struct {
		n, maxM, want int
	}{
		{2, 1, 2}, // "" and "()"
		{4, 2, 1 + 6 + 2},
		{8, 4, 1 + 28 + 70*2 + 28*5 + 14},
		{8, 1, 1 + 28},
	}
	for _, c := range cases {
		got, err := CountWellNested(c.n, c.maxM)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.n, c.maxM, got, c.want)
		}
	}
	if _, err := CountWellNested(6, 1); err == nil {
		t.Error("non power of two: want error")
	}
}

func TestEnumerateUniqueAndValid(t *testing.T) {
	seen := map[string]bool{}
	err := EnumerateWellNested(8, 4, func(s *Set) error {
		key := s.String()
		if seen[key] {
			t.Fatalf("duplicate %q", key)
		}
		seen[key] = true
		if !s.IsWellNested() {
			t.Fatalf("not well nested: %q", key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 323 {
		t.Fatalf("enumerated %d sets, want 323", len(seen))
	}
}

package comm

import (
	"strings"
	"testing"

	"cst/internal/topology"
)

// FuzzParse feeds arbitrary strings to the parser: it must never panic, and
// anything it accepts must round-trip, validate, and be well nested.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"", "()", "(())", "(.)(.)", "((((((((", "))))", "(x)", "._.",
		"((.)((.)..).)(.)", strings.Repeat("()", 40),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		s, err := Parse(expr)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted set does not validate: %v (%q)", err, expr)
		}
		if !s.IsWellNested() {
			t.Fatalf("accepted set not well nested: %q", expr)
		}
		// String() must reproduce the parsed structure: re-parsing it gives
		// the same communications.
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("round trip failed to parse: %v (%q -> %q)", err, expr, s.String())
		}
		if back.Len() != s.Len() {
			t.Fatalf("round trip changed size: %d -> %d (%q)", s.Len(), back.Len(), expr)
		}
		want := map[Comm]bool{}
		for _, c := range s.Comms {
			want[c] = true
		}
		for _, c := range back.Comms {
			if !want[c] {
				t.Fatalf("round trip changed comms: %v not in %v", c, s.Comms)
			}
		}
	})
}

// FuzzParseSet targets the fixed-size entry point: ParseN must never
// panic, must reject anything whose PE count disagrees with n, and every
// accepted set must validate against exactly n PEs.
func FuzzParseSet(f *testing.F) {
	for _, seed := range []struct {
		expr string
		n    int
	}{
		{"", 0}, {"()", 2}, {"()", 4}, {"(())", 4}, {"(.)(.)", 8},
		{"((.)((.)..).)(.)", 16}, {"()", -1}, {"....", 4}, {")(", 2},
	} {
		f.Add(seed.expr, seed.n)
	}
	f.Fuzz(func(t *testing.T, expr string, n int) {
		s, err := ParseN(expr, n)
		if err != nil {
			return
		}
		if s.N != n {
			t.Fatalf("ParseN(%q, %d) accepted a set with N=%d", expr, n, s.N)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted set does not validate: %v (%q, n=%d)", err, expr, n)
		}
		for _, c := range s.Comms {
			if c.Src < 0 || c.Src >= n || c.Dst < 0 || c.Dst >= n {
				t.Fatalf("accepted out-of-range endpoint %v for n=%d (%q)", c, n, expr)
			}
		}
	})
}

// FuzzWidthDepth checks width <= depth on every accepted expression.
func FuzzWidthDepth(f *testing.F) {
	f.Add("((((()))))")
	f.Add("()()()()")
	f.Add("((.)((.)..).)(.)")
	trees := map[int]*topology.Tree{}
	f.Fuzz(func(t *testing.T, expr string) {
		if len(expr) > 512 {
			return
		}
		s, err := Parse(expr)
		if err != nil {
			return
		}
		tr := trees[s.N]
		if tr == nil {
			tr, err = topology.New(s.N)
			if err != nil {
				t.Fatal(err)
			}
			trees[s.N] = tr
		}
		w, err := s.Width(tr)
		if err != nil {
			t.Fatal(err)
		}
		d, err := s.MaxDepth()
		if err != nil {
			t.Fatal(err)
		}
		if w > d {
			t.Fatalf("width %d > depth %d for %q", w, d, expr)
		}
		if (s.Len() == 0) != (w == 0) {
			t.Fatalf("width/emptiness mismatch for %q", expr)
		}
	})
}

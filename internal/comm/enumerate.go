package comm

import "fmt"

// EnumerateWellNested calls fn with every right-oriented well-nested set
// over n PEs having at most maxComms communications, exactly once each
// (including the empty set). Sets are generated in a canonical order; fn
// receives a fresh Set it may retain. Returning a non-nil error from fn
// stops the enumeration and propagates the error.
//
// The count grows as sum_m C(n, 2m)·Catalan(m): all 323 sets at n=8, about
// 44k at n=16 with maxComms=3 — small enough that the test suite verifies
// the scheduling engine on every single instance at small scale.
func EnumerateWellNested(n, maxComms int, fn func(*Set) error) error {
	if n < 2 || n&(n-1) != 0 {
		return fmt.Errorf("comm: n must be a power of two >= 2, got %d", n)
	}
	if maxComms < 0 {
		maxComms = 0
	}
	// state[i]: '.'=idle, '('=open, ')'=close. Depth-first over positions
	// with balance tracking.
	buf := make([]byte, n)
	var rec func(pos, open, used int) error
	rec = func(pos, open, used int) error {
		if pos == n {
			if open != 0 {
				return nil
			}
			set, err := ParseN(string(buf), n)
			if err != nil {
				return fmt.Errorf("comm: enumeration produced invalid %q: %v", buf, err)
			}
			return fn(set)
		}
		// Prune: remaining positions must fit the open spans.
		if open > n-pos {
			return nil
		}
		buf[pos] = '.'
		if err := rec(pos+1, open, used); err != nil {
			return err
		}
		if used < maxComms {
			buf[pos] = '('
			if err := rec(pos+1, open+1, used+1); err != nil {
				return err
			}
		}
		if open > 0 {
			buf[pos] = ')'
			if err := rec(pos+1, open-1, used); err != nil {
				return err
			}
		}
		buf[pos] = '.'
		return nil
	}
	return rec(0, 0, 0)
}

// CountWellNested returns the number of sets EnumerateWellNested visits.
func CountWellNested(n, maxComms int) (int, error) {
	count := 0
	err := EnumerateWellNested(n, maxComms, func(*Set) error {
		count++
		return nil
	})
	return count, err
}

// Package comm defines communications and communication sets on the CST
// (paper §1, §2.1).
//
// A communication is a (source PE, destination PE) pair. A set is *right
// oriented* when every source lies to the left of its destination. A right
// oriented set is *well nested* when its spans form a balanced, well-nested
// parenthesis expression (paper Fig. 2): spans never cross, though they may
// nest or be disjoint. Each PE takes part in at most one communication and
// in at most one role (it is a source, a destination, or neither — Step 1.1
// of the algorithm relies on this).
//
// The *width* of a set is the maximum number of communications that need the
// same tree link in the same direction; the scheduling lower bound and the
// round count of the paper's algorithm are both exactly the width.
package comm

import (
	"fmt"
	"sort"
	"strings"

	"cst/internal/topology"
)

// Comm is one communication: data flows from PE Src to PE Dst.
type Comm struct {
	Src, Dst int
}

// String renders the communication as "src->dst".
func (c Comm) String() string { return fmt.Sprintf("%d->%d", c.Src, c.Dst) }

// RightOriented reports whether the source lies left of the destination.
func (c Comm) RightOriented() bool { return c.Src < c.Dst }

// span returns the communication's endpoints in line order, regardless of
// orientation. Span geometry (containment, crossing, gap congestion) is a
// property of the undirected interval, so every predicate built on it works
// for left- and right-oriented communications alike.
func (c Comm) span() (lo, hi int) {
	if c.Src < c.Dst {
		return c.Src, c.Dst
	}
	return c.Dst, c.Src
}

// Contains reports whether c's span strictly contains d's span. Orientation
// does not matter: endpoints are normalized to line order internally, so a
// left-oriented communication and its mirror image give the same answer.
func (c Comm) Contains(d Comm) bool {
	clo, chi := c.span()
	dlo, dhi := d.span()
	return clo < dlo && dhi < chi
}

// Crosses reports whether the two spans cross, i.e. overlap without nesting.
// Crossing pairs are exactly what well-nestedness forbids. Like Contains,
// the check is orientation-agnostic (and hence mirror-invariant): only the
// undirected intervals matter.
func (c Comm) Crosses(d Comm) bool {
	clo, chi := c.span()
	dlo, dhi := d.span()
	return (clo < dlo && dlo < chi && chi < dhi) ||
		(dlo < clo && clo < dhi && dhi < chi)
}

// Set is a communication set over N PEs. N must be a power of two to map
// onto a CST; Validate enforces this.
type Set struct {
	// N is the number of PEs (leaves of the CST).
	N int
	// Comms lists the communications. Order carries no meaning.
	Comms []Comm
}

// NewSet returns a set over n PEs with the given communications.
// It does not validate; call Validate for that.
func NewSet(n int, comms ...Comm) *Set {
	return &Set{N: n, Comms: append([]Comm(nil), comms...)}
}

// Len returns the number of communications.
func (s *Set) Len() int { return len(s.Comms) }

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	return &Set{N: s.N, Comms: append([]Comm(nil), s.Comms...)}
}

// Validate checks that N is a power of two (>= 2), every endpoint is a PE in
// [0, N), no communication is a self-loop, and every PE plays at most one
// role (source of at most one, destination of at most one, never both).
func (s *Set) Validate() error {
	if s.N < 2 || s.N&(s.N-1) != 0 {
		return fmt.Errorf("comm: N must be a power of two >= 2, got %d", s.N)
	}
	role := make(map[int]string, 2*len(s.Comms))
	for _, c := range s.Comms {
		if c.Src < 0 || c.Src >= s.N || c.Dst < 0 || c.Dst >= s.N {
			return fmt.Errorf("comm: %s out of range for N=%d", c, s.N)
		}
		if c.Src == c.Dst {
			return fmt.Errorf("comm: self loop at PE %d", c.Src)
		}
		if r, ok := role[c.Src]; ok {
			return fmt.Errorf("comm: PE %d already a %s, cannot also source %s", c.Src, r, c)
		}
		role[c.Src] = "source"
		if r, ok := role[c.Dst]; ok {
			return fmt.Errorf("comm: PE %d already a %s, cannot also receive %s", c.Dst, r, c)
		}
		role[c.Dst] = "destination"
	}
	return nil
}

// IsRightOriented reports whether every communication has Src < Dst.
func (s *Set) IsRightOriented() bool {
	for _, c := range s.Comms {
		if !c.RightOriented() {
			return false
		}
	}
	return true
}

// IsWellNested reports whether the set is right oriented, valid, and free of
// crossing spans — i.e. whether it corresponds to a balanced well-nested
// parenthesis expression over the PE line.
func (s *Set) IsWellNested() bool {
	if s.Validate() != nil || !s.IsRightOriented() {
		return false
	}
	// Scan left to right, maintaining a stack of open destinations. A source
	// pushes its destination; a destination must match the innermost open
	// one.
	events := s.roleByPE()
	var stack []int
	for pe := 0; pe < s.N; pe++ {
		switch e := events[pe]; {
		case e > 0: // source; e-1 is the comm index
			stack = append(stack, s.Comms[e-1].Dst)
		case e < 0: // destination
			if len(stack) == 0 || stack[len(stack)-1] != pe {
				return false
			}
			stack = stack[:len(stack)-1]
		}
	}
	return len(stack) == 0
}

// roleByPE returns, for each PE, +1+commIndex if it is a source, -1-commIndex
// if a destination, 0 if idle. Callers must have validated the set.
func (s *Set) roleByPE() []int {
	events := make([]int, s.N)
	for i, c := range s.Comms {
		events[c.Src] = i + 1
		events[c.Dst] = -(i + 1)
	}
	return events
}

// Sorted returns the communications ordered by source position.
func (s *Set) Sorted() []Comm {
	out := append([]Comm(nil), s.Comms...)
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// String renders the set as a parenthesis expression: '(' at sources, ')' at
// destinations, '.' at idle PEs (paper Fig. 2 notation). Only meaningful for
// right-oriented sets.
func (s *Set) String() string {
	b := make([]byte, s.N)
	for i := range b {
		b[i] = '.'
	}
	for _, c := range s.Comms {
		if c.Src >= 0 && c.Src < s.N {
			b[c.Src] = '('
		}
		if c.Dst >= 0 && c.Dst < s.N {
			b[c.Dst] = ')'
		}
	}
	return string(b)
}

// Parse builds a set from a parenthesis expression: '(' opens a
// communication, ')' closes the innermost open one, '.' (or ' ' or '_') is
// an idle PE. The PE count is the smallest power of two >= len(expr)
// (minimum 2). Parse returns an error for unbalanced expressions.
func Parse(expr string) (*Set, error) {
	n := 2
	for n < len(expr) {
		n *= 2
	}
	return ParseN(expr, n)
}

// ParseN is Parse with an explicit PE count n; len(expr) must not exceed n.
func ParseN(expr string, n int) (*Set, error) {
	if len(expr) > n {
		return nil, fmt.Errorf("comm: expression of length %d exceeds N=%d", len(expr), n)
	}
	s := &Set{N: n}
	var stack []int
	for pe, ch := range expr {
		switch ch {
		case '(':
			stack = append(stack, pe)
		case ')':
			if len(stack) == 0 {
				return nil, fmt.Errorf("comm: unmatched ')' at position %d", pe)
			}
			src := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.Comms = append(s.Comms, Comm{Src: src, Dst: pe})
		case '.', ' ', '_':
			// idle PE
		default:
			return nil, fmt.Errorf("comm: unexpected character %q at position %d", ch, pe)
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("comm: %d unmatched '(' in %q", len(stack), expr)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(expr string) *Set {
	s, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return s
}

// Depths returns the nesting depth of each communication (0 = outermost),
// indexed like Comms. It requires a well-nested set and errors otherwise.
func (s *Set) Depths() ([]int, error) {
	if !s.IsWellNested() {
		return nil, fmt.Errorf("comm: Depths requires a well-nested set (%q)", s.String())
	}
	depths := make([]int, len(s.Comms))
	events := s.roleByPE()
	depth := 0
	for pe := 0; pe < s.N; pe++ {
		switch e := events[pe]; {
		case e > 0:
			depths[e-1] = depth
			depth++
		case e < 0:
			depth--
		}
	}
	return depths, nil
}

// MaxDepth returns 1 + the maximum nesting depth (i.e. the size of the
// largest chain of mutually nested communications), or 0 for an empty set.
// The tree-link width (Width) never exceeds MaxDepth — only nested
// communications can share a directed link — but it can be strictly
// smaller: two nested spans whose circuits meet the tree in disjoint edge
// sets (e.g. (6,7) inside (5,8)) do not conflict. Chains that cross a
// common subtree root (e.g. NestedChain) have width equal to MaxDepth.
func (s *Set) MaxDepth() (int, error) {
	depths, err := s.Depths()
	if err != nil {
		return 0, err
	}
	maxd := -1
	for _, d := range depths {
		if d > maxd {
			maxd = d
		}
	}
	return maxd + 1, nil
}

// Width returns the set's width on the given tree: the maximum, over all
// directed tree edges, of the number of communications whose circuit uses
// that edge (paper §1: "if at most w communications require to use the same
// link in the same direction, the communication set is of width w").
func (s *Set) Width(t *topology.Tree) (int, error) {
	return s.WidthInto(t, nil)
}

// WidthInto is Width with a caller-owned congestion scratch buffer. When
// scratch has capacity for t.DirectedEdgeCount() counters the computation
// allocates nothing, so engines that recompute widths per run can keep one
// warm buffer. A nil or undersized scratch is replaced by a fresh
// allocation; the buffer's previous contents are always cleared here.
func (s *Set) WidthInto(t *topology.Tree, scratch []int) (int, error) {
	if t.Leaves() != s.N {
		return 0, fmt.Errorf("comm: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	need := t.DirectedEdgeCount()
	if cap(scratch) < need {
		scratch = make([]int, need)
	} else {
		scratch = scratch[:need]
		for i := range scratch {
			scratch[i] = 0
		}
	}
	maxw := 0
	for _, c := range s.Comms {
		err := t.EachPathEdge(c.Src, c.Dst, func(e topology.Edge) {
			idx := t.EdgeIndex(e)
			scratch[idx]++
			if scratch[idx] > maxw {
				maxw = scratch[idx]
			}
		})
		if err != nil {
			return 0, err
		}
	}
	return maxw, nil
}

// Mirror returns the set reflected around the centre of the PE line,
// turning a left-oriented set into a right-oriented one and vice versa.
func (s *Set) Mirror() *Set {
	out := &Set{N: s.N, Comms: make([]Comm, len(s.Comms))}
	for i, c := range s.Comms {
		out.Comms[i] = Comm{Src: s.N - 1 - c.Src, Dst: s.N - 1 - c.Dst}
	}
	return out
}

// Decompose splits an arbitrary valid set into a right-oriented subset and a
// left-oriented subset (paper §2.1: "Any set can be decomposed into two sets
// each of them is oriented"). The left-oriented subset is returned mirrored
// (i.e. as a right-oriented set over the reflected PE line) so that both
// halves can be fed to the right-oriented scheduler. A schedule computed
// for the mirrored half maps back to the original PE line with
// sched.UnmirrorSchedule.
func Decompose(s *Set) (right, leftMirrored *Set) {
	right = &Set{N: s.N}
	left := &Set{N: s.N}
	for _, c := range s.Comms {
		if c.RightOriented() {
			right.Comms = append(right.Comms, c)
		} else {
			left.Comms = append(left.Comms, c)
		}
	}
	return right, left.Mirror()
}

// GapProfile returns, for each of the N-1 gaps between consecutive PEs, the
// number of (right-oriented) spans crossing that gap. It is the line-level
// congestion used by renderers and by the segmentable-bus mapping.
func (s *Set) GapProfile() []int {
	prof := make([]int, s.N-1)
	for _, c := range s.Comms {
		lo, hi := c.Src, c.Dst
		if lo > hi {
			lo, hi = hi, lo
		}
		for g := lo; g < hi; g++ {
			prof[g]++
		}
	}
	return prof
}

// Summary renders a one-line human description, e.g.
// "8 PEs, 3 comms, well-nested depth 2: (()).()." (the link width, which
// may be smaller than the depth, needs a tree — see Width).
func (s *Set) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d PEs, %d comms", s.N, len(s.Comms))
	if s.IsWellNested() {
		if d, err := s.MaxDepth(); err == nil {
			fmt.Fprintf(&b, ", well-nested depth %d", d)
		}
	}
	fmt.Fprintf(&b, ": %s", s.String())
	return b.String()
}

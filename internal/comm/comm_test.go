package comm

import (
	"strings"
	"testing"

	"cst/internal/topology"
)

func TestCommBasics(t *testing.T) {
	c := Comm{Src: 2, Dst: 5}
	if c.String() != "2->5" {
		t.Errorf("String = %q", c.String())
	}
	if !c.RightOriented() {
		t.Error("2->5 should be right oriented")
	}
	if (Comm{Src: 5, Dst: 2}).RightOriented() {
		t.Error("5->2 should not be right oriented")
	}
}

func TestContainsAndCrosses(t *testing.T) {
	outer := Comm{Src: 0, Dst: 7}
	inner := Comm{Src: 2, Dst: 5}
	crossA := Comm{Src: 1, Dst: 4}
	crossB := Comm{Src: 3, Dst: 6}

	if !outer.Contains(inner) {
		t.Error("outer must contain inner")
	}
	if inner.Contains(outer) {
		t.Error("inner must not contain outer")
	}
	if outer.Crosses(inner) || inner.Crosses(outer) {
		t.Error("nested spans do not cross")
	}
	if !crossA.Crosses(crossB) || !crossB.Crosses(crossA) {
		t.Error("1->4 and 3->6 cross")
	}
	disjointA := Comm{Src: 0, Dst: 1}
	disjointB := Comm{Src: 4, Dst: 5}
	if disjointA.Crosses(disjointB) {
		t.Error("disjoint spans do not cross")
	}
}

// flip reverses a communication's orientation without moving its span.
func flip(c Comm) Comm { return Comm{Src: c.Dst, Dst: c.Src} }

// Contains and Crosses are span predicates: they must answer from the
// undirected interval, identically for every one of the four orientation
// combinations of a pair. Before the fix, a left-oriented operand made
// both silently return wrong answers (e.g. 7->0 "containing" nothing).
func TestContainsCrossesOrientationAgnostic(t *testing.T) {
	cases := []struct {
		name     string
		a, b     Comm
		contains bool // a contains b (on spans)
		crosses  bool
	}{
		{"nested", Comm{0, 7}, Comm{2, 5}, true, false},
		{"crossing", Comm{1, 4}, Comm{3, 6}, false, true},
		{"disjoint", Comm{0, 1}, Comm{4, 5}, false, false},
		{"shared endpoint", Comm{0, 3}, Comm{3, 6}, false, false},
		{"identical span", Comm{2, 5}, Comm{2, 5}, false, false},
		{"touching inner", Comm{0, 5}, Comm{0, 3}, false, false},
	}
	for _, tc := range cases {
		for _, av := range []struct {
			tag string
			a   Comm
		}{{"a-right", tc.a}, {"a-left", flip(tc.a)}} {
			for _, bv := range []struct {
				tag string
				b   Comm
			}{{"b-right", tc.b}, {"b-left", flip(tc.b)}} {
				a, b := av.a, bv.b
				if got := a.Contains(b); got != tc.contains {
					t.Errorf("%s/%s/%s: %s.Contains(%s) = %v, want %v",
						tc.name, av.tag, bv.tag, a, b, got, tc.contains)
				}
				if got := a.Crosses(b); got != tc.crosses {
					t.Errorf("%s/%s/%s: %s.Crosses(%s) = %v, want %v",
						tc.name, av.tag, bv.tag, a, b, got, tc.crosses)
				}
				if a.Crosses(b) != b.Crosses(a) {
					t.Errorf("%s/%s/%s: Crosses not symmetric", tc.name, av.tag, bv.tag)
				}
			}
		}
	}
	// Mirror invariance: reflecting both spans around the line centre must
	// not change either predicate (the hybrid peeler relies on this).
	const n = 8
	mir := func(c Comm) Comm { return Comm{Src: n - 1 - c.Src, Dst: n - 1 - c.Dst} }
	for _, tc := range cases {
		a, b := tc.a, tc.b
		if a.Contains(b) != mir(a).Contains(mir(b)) || a.Crosses(b) != mir(a).Crosses(mir(b)) {
			t.Errorf("%s: predicates not mirror invariant", tc.name)
		}
	}
}

func TestValidate(t *testing.T) {
	good := NewSet(8, Comm{0, 3}, Comm{4, 5})
	if err := good.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	cases := []struct {
		name string
		s    *Set
	}{
		{"bad N", NewSet(6, Comm{0, 1})},
		{"tiny N", NewSet(1)},
		{"out of range", NewSet(8, Comm{0, 9})},
		{"negative", NewSet(8, Comm{-1, 3})},
		{"self loop", NewSet(8, Comm{3, 3})},
		{"shared source", NewSet(8, Comm{0, 3}, Comm{0, 5})},
		{"shared dest", NewSet(8, Comm{0, 3}, Comm{1, 3})},
		{"source is dest", NewSet(8, Comm{0, 3}, Comm{3, 5})},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"(.)",
		"(())",
		"()()",
		"((.))..()",
		"................",
		"(((())))",
	}
	for _, expr := range cases {
		s, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		got := s.String()
		// The round trip pads idle PEs up to the power-of-two N.
		want := expr + strings.Repeat(".", s.N-len(expr))
		want = strings.ReplaceAll(want, " ", ".")
		if got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", expr, got, want)
		}
		if !s.IsWellNested() {
			t.Errorf("Parse(%q) not well nested", expr)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{")", "(", "(()", "())", "(x)", "((((((((("} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q): want error", expr)
		}
	}
	if _, err := ParseN("()()", 2); err == nil {
		t.Error("ParseN with undersized N: want error")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse(")(")
}

func TestIsWellNested(t *testing.T) {
	if !MustParse("(()())").IsWellNested() {
		t.Error("(()()) is well nested")
	}
	// Crossing: 0->2 and 1->3.
	crossing := NewSet(4, Comm{0, 2}, Comm{1, 3})
	if crossing.IsWellNested() {
		t.Error("crossing set must not be well nested")
	}
	// Left-oriented communication disqualifies.
	leftward := NewSet(4, Comm{2, 0})
	if leftward.IsWellNested() {
		t.Error("left-oriented set must not be well nested")
	}
	empty := NewSet(4)
	if !empty.IsWellNested() {
		t.Error("empty set is trivially well nested")
	}
}

func TestDepthsAndMaxDepth(t *testing.T) {
	s := MustParse("((())())")
	// comms by closing order: innermost (2,3) depth 2; (1,4)... let's check
	// structurally instead of relying on Comms order.
	depths, err := s.Depths()
	if err != nil {
		t.Fatal(err)
	}
	byComm := map[Comm]int{}
	for i, c := range s.Comms {
		byComm[c] = depths[i]
	}
	want := map[Comm]int{
		{0, 7}: 0,
		{1, 4}: 1,
		{2, 3}: 2,
		{5, 6}: 1,
	}
	for c, d := range want {
		if byComm[c] != d {
			t.Errorf("depth(%s) = %d, want %d", c, byComm[c], d)
		}
	}
	maxd, err := s.MaxDepth()
	if err != nil {
		t.Fatal(err)
	}
	if maxd != 3 {
		t.Errorf("MaxDepth = %d, want 3", maxd)
	}
	empty := NewSet(4)
	if d, err := empty.MaxDepth(); err != nil || d != 0 {
		t.Errorf("empty MaxDepth = %d, %v; want 0, nil", d, err)
	}
	if _, err := NewSet(4, Comm{0, 2}, Comm{1, 3}).MaxDepth(); err == nil {
		t.Error("MaxDepth on crossing set: want error")
	}
}

func TestWidthAndMaxDepthExamples(t *testing.T) {
	cases := []struct {
		expr        string
		width, deep int
	}{
		{"()", 1, 1},
		{"()()()()", 1, 1},
		{"(())", 2, 2},
		{"(()())", 2, 2},
		// A compact 7-chain: its innermost pair (6,7) is sibling-aligned and
		// shares no directed link with the rest, so the link width is 6
		// while the nesting depth is 7.
		{"((((((()))))))", 6, 7},
		{"(()(()))", 2, 3},
		{"........", 0, 0},
	}
	for _, c := range cases {
		s := MustParse(c.expr)
		tr := topology.MustNew(s.N)
		w, err := s.Width(tr)
		if err != nil {
			t.Fatalf("Width(%q): %v", c.expr, err)
		}
		if w != c.width {
			t.Errorf("Width(%q) = %d, want %d", c.expr, w, c.width)
		}
		d, err := s.MaxDepth()
		if err != nil {
			t.Fatal(err)
		}
		if d != c.deep {
			t.Errorf("MaxDepth(%q) = %d, want %d", c.expr, d, c.deep)
		}
		if w > d {
			t.Errorf("%q: width %d exceeds depth %d", c.expr, w, d)
		}
	}
}

func TestWidthTreeMismatch(t *testing.T) {
	s := MustParse("(())")
	if _, err := s.Width(topology.MustNew(8)); err == nil {
		t.Error("tree/set size mismatch: want error")
	}
}

func TestFigure2Example(t *testing.T) {
	// The paper's Fig. 2 shows a right-oriented well-nested set. We encode a
	// faithful 16-PE rendition with nesting ((()))-style plus siblings.
	s := MustParse("((.)((.)..).)(.)")
	if !s.IsWellNested() {
		t.Fatal("figure 2 set must be well nested")
	}
	if !s.IsRightOriented() {
		t.Fatal("figure 2 set must be right oriented")
	}
	w, err := s.Width(topology.MustNew(s.N))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.MaxDepth()
	if w > d || w < 1 {
		t.Fatalf("width %d out of range for depth %d", w, d)
	}
}

func TestMirror(t *testing.T) {
	s := NewSet(8, Comm{6, 1}, Comm{5, 3}) // left oriented
	m := s.Mirror()
	if !m.IsRightOriented() {
		t.Fatal("mirror of a left-oriented set must be right oriented")
	}
	if m.Comms[0] != (Comm{1, 6}) || m.Comms[1] != (Comm{2, 4}) {
		t.Fatalf("mirror wrong: %v", m.Comms)
	}
	// Mirroring twice is the identity.
	back := m.Mirror()
	for i := range s.Comms {
		if back.Comms[i] != s.Comms[i] {
			t.Fatalf("double mirror not identity: %v vs %v", back.Comms, s.Comms)
		}
	}
}

func TestDecompose(t *testing.T) {
	s := NewSet(8, Comm{0, 3}, Comm{6, 4}, Comm{1, 2}, Comm{7, 5})
	right, leftM := Decompose(s)
	if len(right.Comms) != 2 || len(leftM.Comms) != 2 {
		t.Fatalf("decompose sizes: %d right, %d left", len(right.Comms), len(leftM.Comms))
	}
	if !right.IsRightOriented() || !leftM.IsRightOriented() {
		t.Fatal("both halves must be right oriented (left half mirrored)")
	}
	if right.Len()+leftM.Len() != s.Len() {
		t.Fatal("decompose must partition the set")
	}
}

func TestGapProfile(t *testing.T) {
	s := MustParse("(())")
	prof := s.GapProfile()
	want := []int{1, 2, 1}
	if len(prof) != len(want) {
		t.Fatalf("profile length %d, want %d", len(prof), len(want))
	}
	for i := range want {
		if prof[i] != want[i] {
			t.Errorf("gap %d: %d, want %d", i, prof[i], want[i])
		}
	}
}

func TestSortedByleft(t *testing.T) {
	s := NewSet(8, Comm{4, 5}, Comm{0, 3}, Comm{1, 2})
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Src < sorted[i-1].Src {
			t.Fatalf("not sorted: %v", sorted)
		}
	}
	// Sorted must not mutate the receiver.
	if s.Comms[0] != (Comm{4, 5}) {
		t.Fatal("Sorted mutated the set")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustParse("(())")
	c := s.Clone()
	c.Comms[0] = Comm{0, 1}
	if s.Comms[0] == (Comm{0, 1}) && c.Comms[0] == s.Comms[0] {
		t.Fatal("Clone shares backing storage")
	}
}

func TestSummary(t *testing.T) {
	s := MustParse("(())")
	sum := s.Summary()
	for _, want := range []string{"4 PEs", "2 comms", "depth 2", "(())"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
}

package comm_test

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/topology"
)

// Parse a communication set from the paper's Fig. 2 notation, then inspect
// its structure.
func ExampleParse() {
	set, err := comm.Parse("(()).()")
	if err != nil {
		fmt.Println(err)
		return
	}
	depth, _ := set.MaxDepth()
	fmt.Println(set.Len(), "communications, depth", depth)
	// Output:
	// 3 communications, depth 2
}

// Width is the paper's w: the maximum number of communications that need
// the same tree link in the same direction.
func ExampleSet_Width() {
	set, _ := comm.NestedChain(16, 4)
	tree := topology.MustNew(16)
	w, _ := set.Width(tree)
	fmt.Println("width", w)
	// Output:
	// width 4
}

// Decompose splits a two-sided set into the two oriented halves the
// scheduler consumes.
func ExampleDecompose() {
	set := comm.NewSet(8,
		comm.Comm{Src: 0, Dst: 3}, // rightward
		comm.Comm{Src: 7, Dst: 4}, // leftward
	)
	right, leftMirrored := comm.Decompose(set)
	fmt.Println(right.Len(), "rightward;", leftMirrored.Len(), "leftward (mirrored to", leftMirrored.Comms[0].String()+")")
	// Output:
	// 1 rightward; 1 leftward (mirrored to 0->3)
}

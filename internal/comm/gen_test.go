package comm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cst/internal/topology"
)

func TestRandomDyckBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for m := 0; m <= 20; m++ {
		w := RandomDyck(rng, m)
		if len(w) != 2*m {
			t.Fatalf("m=%d: length %d", m, len(w))
		}
		depth := 0
		for _, ch := range w {
			if ch == '(' {
				depth++
			} else {
				depth--
			}
			if depth < 0 {
				t.Fatalf("m=%d: negative depth in %s", m, w)
			}
		}
		if depth != 0 {
			t.Fatalf("m=%d: unbalanced %s", m, w)
		}
	}
}

func TestRandomDyckDistribution(t *testing.T) {
	// For m=3 there are 5 Dyck words; a uniform sampler should hit all of
	// them over 2000 draws, each with frequency within a loose band.
	rng := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	const draws = 2000
	for i := 0; i < draws; i++ {
		counts[string(RandomDyck(rng, 3))]++
	}
	if len(counts) != 5 {
		t.Fatalf("expected 5 distinct Dyck words for m=3, got %d: %v", len(counts), counts)
	}
	for w, c := range counts {
		if c < draws/10 || c > draws*3/5 {
			t.Errorf("word %s drawn %d/%d times; distribution looks skewed", w, c, draws)
		}
	}
}

func TestRandomWellNestedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 << (2 + rng.Intn(6)) // 4..128
		m := rng.Intn(n/2 + 1)
		s, err := RandomWellNested(rng, n, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("generated set invalid: %v (%s)", err, s)
		}
		if !s.IsWellNested() {
			t.Fatalf("generated set not well nested: %s", s)
		}
		if s.Len() != m {
			t.Fatalf("generated %d comms, want %d", s.Len(), m)
		}
	}
}

func TestRandomWellNestedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomWellNested(rng, 6, 1); err == nil {
		t.Error("non power of two: want error")
	}
	if _, err := RandomWellNested(rng, 8, 5); err == nil {
		t.Error("too many comms: want error")
	}
}

// Only nested communications can share a directed tree link, so the link
// width is bounded by the maximum nesting depth; and a root-crossing chain
// realizes its depth exactly as link congestion.
func TestWidthBoundedByMaxDepthProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trees := map[int]*topology.Tree{}
	f := func(seed int64) bool {
		n := 1 << (2 + rng.Intn(5)) // 4..64
		m := rng.Intn(n/2 + 1)
		s, err := RandomWellNested(rand.New(rand.NewSource(seed)), n, m)
		if err != nil {
			return false
		}
		tr := trees[n]
		if tr == nil {
			tr = topology.MustNew(n)
			trees[n] = tr
		}
		w, err := s.Width(tr)
		if err != nil {
			return false
		}
		d, err := s.MaxDepth()
		if err != nil {
			return false
		}
		if w > d {
			return false
		}
		return (m == 0) == (w == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedChainWidthEqualsDepth(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 16} {
		s, err := NestedChain(64, w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Width(topology.MustNew(64))
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("NestedChain(64,%d) width = %d", w, got)
		}
	}
}

func TestRandomWellNestedWidthExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, m, w int }{
		{16, 4, 2}, {32, 8, 3}, {64, 16, 1}, {64, 20, 5}, {128, 32, 10},
	} {
		s, err := RandomWellNestedWidth(rng, tc.n, tc.m, tc.w)
		if err != nil {
			t.Fatalf("n=%d m=%d w=%d: %v", tc.n, tc.m, tc.w, err)
		}
		if !s.IsWellNested() {
			t.Fatalf("n=%d m=%d: not well nested: %s", tc.n, tc.m, s)
		}
		got, err := s.Width(topology.MustNew(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.w {
			t.Fatalf("n=%d m=%d: got width %d, want %d", tc.n, tc.m, got, tc.w)
		}
	}
	if _, err := RandomWellNestedWidth(rng, 8, 2, 0); err == nil {
		t.Error("width 0: want error")
	}
	if _, err := RandomWellNestedWidth(rng, 8, 8, 2); err == nil {
		t.Error("m too large: want error")
	}
}

func TestNestedChain(t *testing.T) {
	s, err := NestedChain(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsWellNested() {
		t.Fatalf("chain not well nested: %s", s)
	}
	d, _ := s.MaxDepth()
	if d != 5 {
		t.Fatalf("chain depth %d, want 5", d)
	}
	// Every communication must be matched at the root: src < 8 <= dst.
	for _, c := range s.Comms {
		if c.Src >= 8 || c.Dst < 8 {
			t.Fatalf("chain comm %s does not cross the root", c)
		}
	}
	if _, err := NestedChain(8, 5); err == nil {
		t.Error("overfull chain: want error")
	}
}

func TestCompactChain(t *testing.T) {
	s, err := CompactChain(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.MaxDepth()
	if d != 4 {
		t.Fatalf("depth %d, want 4", d)
	}
	for _, c := range s.Comms {
		if c.Dst >= 8 {
			t.Fatalf("compact chain escapes its 2w prefix: %s", c)
		}
	}
	if _, err := CompactChain(4, 3); err == nil {
		t.Error("overfull compact chain: want error")
	}
}

func TestDisjointPairs(t *testing.T) {
	s, err := DisjointPairs(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.MaxDepth()
	if d != 1 {
		t.Fatalf("comb depth %d, want 1", d)
	}
	if s.Len() != 4 {
		t.Fatalf("pairs %d, want 4", s.Len())
	}
	if _, err := DisjointPairs(4, 3); err == nil {
		t.Error("overfull comb: want error")
	}
}

func TestSiblingForest(t *testing.T) {
	s, err := SiblingForest(64, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsWellNested() {
		t.Fatalf("forest not well nested: %s", s)
	}
	d, _ := s.MaxDepth()
	if d != 3 {
		t.Fatalf("forest depth %d, want 3", d)
	}
	if s.Len() != 12 {
		t.Fatalf("forest size %d, want 12", s.Len())
	}
	w, err := s.Width(topology.MustNew(64))
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		t.Fatalf("forest width %d, want 3", w)
	}
	if _, err := SiblingForest(8, 4, 3); err == nil {
		t.Error("overfull forest: want error")
	}
	if _, err := SiblingForest(64, 3, 2); err == nil {
		t.Error("non power-of-two groups: want error")
	}
}

func TestStaircase(t *testing.T) {
	s, err := Staircase(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsWellNested() {
		t.Fatalf("staircase not well nested: %s", s)
	}
	d, _ := s.MaxDepth()
	if d != 2 {
		t.Fatalf("staircase depth %d, want 2", d)
	}
	if _, err := Staircase(8, 4); err == nil {
		t.Error("overfull staircase: want error")
	}
}

func TestBitReversal(t *testing.T) {
	s, err := BitReversal(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.IsRightOriented() {
		t.Fatal("bit reversal pairs must be oriented rightward")
	}
	// 16 PEs: palindromic indices 0,6,9,15 map to themselves; the other 12
	// form 6 pairs.
	if s.Len() != 6 {
		t.Fatalf("pairs = %d, want 6", s.Len())
	}
	// Specific known pair: 1 (0001) <-> 8 (1000).
	found := false
	for _, c := range s.Comms {
		if c == (Comm{Src: 1, Dst: 8}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("pair 1->8 missing: %v", s.Comms)
	}
	// Bit reversal famously crosses: for n >= 16 it is not well nested.
	if s.IsWellNested() {
		t.Fatal("bit reversal should cross")
	}
	if _, err := BitReversal(12); err == nil {
		t.Error("non power of two: want error")
	}
}

func TestCrossingPairs(t *testing.T) {
	s, err := CrossingPairs(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("pairs = %d, want 5", s.Len())
	}
	// Every two pairs cross — no subset of two or more is well nested.
	for i, a := range s.Comms {
		for _, b := range s.Comms[i+1:] {
			if !a.Crosses(b) {
				t.Fatalf("%v and %v do not cross", a, b)
			}
		}
	}
	// Orientations alternate, so both decomposition halves are non-empty.
	lefts := 0
	for _, c := range s.Comms {
		if !c.RightOriented() {
			lefts++
		}
	}
	if lefts != 2 {
		t.Fatalf("left-oriented pairs = %d, want 2", lefts)
	}
	if _, err := CrossingPairs(8, 5); err == nil {
		t.Error("overfull crossing set: want error")
	}
	if _, err := CrossingPairs(8, 0); err == nil {
		t.Error("empty crossing set: want error")
	}
}

func TestReverseBits(t *testing.T) {
	cases := []struct{ v, bits, want int }{
		{0, 4, 0}, {1, 4, 8}, {3, 4, 12}, {5, 3, 5}, {6, 3, 3}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := reverseBits(c.v, c.bits); got != c.want {
			t.Errorf("reverseBits(%d,%d) = %d, want %d", c.v, c.bits, got, c.want)
		}
	}
}

func TestRandomOrientedAndTwoSided(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := RandomOriented(rng, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.IsRightOriented() {
		t.Fatal("RandomOriented must be right oriented")
	}
	ts, err := RandomTwoSided(rng, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	right, leftM := Decompose(ts)
	if right.Len()+leftM.Len() != ts.Len() {
		t.Fatal("decompose must partition")
	}
	if _, err := RandomOriented(rng, 8, 5); err == nil {
		t.Error("overfull: want error")
	}
}

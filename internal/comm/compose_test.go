package comm

import (
	"testing"

	"cst/internal/topology"
)

func TestTranslate(t *testing.T) {
	s := MustParse("(())")
	moved, err := s.Translate(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moved.String() != "....(())" {
		t.Fatalf("translate = %q", moved.String())
	}
	if !moved.IsWellNested() {
		t.Fatal("translate must preserve well-nestedness")
	}
	if _, err := s.Translate(7, 8); err == nil {
		t.Error("out-of-range translate: want error")
	}
	if _, err := s.Translate(-1, 8); err == nil {
		t.Error("negative translate: want error")
	}
	// Original untouched.
	if s.String() != "(())" {
		t.Fatal("Translate mutated its receiver")
	}
}

func TestConcat(t *testing.T) {
	a := MustParse("(())")
	b := MustParse("(.).")
	c := Concat(a, b)
	if c.N != 8 {
		t.Fatalf("N = %d", c.N)
	}
	if c.String() != "(())(.)." {
		t.Fatalf("concat = %q", c.String())
	}
	if !c.IsWellNested() {
		t.Fatal("concat of well-nested sets must stay well nested")
	}
	w, err := c.Width(topology.MustNew(8))
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("width = %d", w)
	}
}

func TestNest(t *testing.T) {
	inner := MustParse("()")
	nested := Nest(inner)
	if nested.String() != "(())" {
		t.Fatalf("nest = %q", nested.String())
	}
	d, err := nested.MaxDepth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("depth = %d", d)
	}
	// Nest three times: depth grows accordingly.
	deep := Nest(Nest(nested))
	d, err = deep.MaxDepth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 {
		t.Fatalf("deep depth = %d", d)
	}
	if deep.N != 8 {
		t.Fatalf("deep N = %d", deep.N)
	}
}

func TestWithin(t *testing.T) {
	s := MustParse("(())(.).")
	sub, err := s.Within(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sub.String() != "(.)." {
		t.Fatalf("within = %q", sub.String())
	}
	// Communications straddling the cut are dropped.
	whole, err := s.Within(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Len() != 2 { // (1,2) and (4,6); (0,3) straddles
		t.Fatalf("straddle filter wrong: %v", whole.Comms)
	}
	if _, err := s.Within(5, 3); err == nil {
		t.Error("inverted interval: want error")
	}
	if _, err := s.Within(0, 99); err == nil {
		t.Error("oversized interval: want error")
	}
}

func TestPad(t *testing.T) {
	s := MustParse("(())")
	p, err := s.Pad(16)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 16 || p.Len() != 2 {
		t.Fatalf("pad = %s", p.Summary())
	}
	if _, err := s.Pad(2); err == nil {
		t.Error("shrinking pad: want error")
	}
}

// Compose a forest out of combinators and schedule it: combinators feed the
// engine directly.
func TestComposedWorkloadSchedules(t *testing.T) {
	chain := MustParse("((()))")      // depth 3 over 8 PEs (after Parse pads)
	forest := Concat(chain, chain)    // 16 PEs
	forest2 := Concat(forest, forest) // 32 PEs
	if forest2.N != 32 {
		t.Fatalf("N = %d", forest2.N)
	}
	if !forest2.IsWellNested() {
		t.Fatal("composed forest must be well nested")
	}
	tr := topology.MustNew(32)
	w, err := forest2.Width(tr)
	if err != nil {
		t.Fatal(err)
	}
	if w < 2 {
		t.Fatalf("width = %d", w)
	}
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler builds the observability HTTP surface:
//
//	GET /metrics        Prometheus text exposition of reg
//	GET /healthz        "ok" (liveness)
//	GET /trace          NDJSON dump of the tracer's retained event ring;
//	                    ?since=<seq> returns only events newer than seq, and
//	                    the X-Trace-Last-Seq response header carries the
//	                    cursor for the next incremental poll
//	GET /trace/flight   JSON snapshot of the tracer's flight recorder —
//	                    the span trees of the slowest-K and all errored
//	                    requests (404 when no recorder is attached)
//	GET /debug/pprof/…  the standard net/http/pprof handlers
//
// reg and tr may be nil; the endpoints then serve empty bodies. The
// handler is mounted on its own mux so importing this package never
// touches http.DefaultServeMux.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		var since int64
		if v := r.URL.Query().Get("since"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad since parameter: want a non-negative event seq", http.StatusBadRequest)
				return
			}
			since = n
		}
		// Capture the tail and its cursor in one atomic step: computing the
		// header from Events() here would advertise a cursor that trails
		// events emitted before the ring capture, and the next ?since= poll
		// would re-deliver them as duplicates.
		buf, last := tr.TailSince(since)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Last-Seq", strconv.FormatInt(last, 10))
		_, _ = w.Write(buf)
	})
	mux.HandleFunc("/trace/flight", func(w http.ResponseWriter, r *http.Request) {
		f := tr.Flight()
		if f == nil {
			http.Error(w, "flight recorder disabled (start with -flight-k > 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	lis net.Listener
}

// Serve binds addr (e.g. ":9090") and serves Handler(reg, tr) in a
// background goroutine. It returns once the listener is bound, so /metrics
// is immediately curl-able.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, tr), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	return &Server{Addr: lis.Addr().String(), srv: srv, lis: lis}, nil
}

// ShutdownGrace bounds how long Close waits for in-flight scrapes and
// trace downloads before aborting their connections.
const ShutdownGrace = 5 * time.Second

// Shutdown gracefully stops the server: the listener closes immediately
// (no new scrapes are accepted) while in-flight responses run to
// completion, bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// Close gracefully shuts the server down, letting in-flight /metrics
// scrapes and /trace downloads finish (bounded by ShutdownGrace). Only if
// the grace period expires are the remaining connections aborted.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

package obs

import (
	"sort"
	"sync"
)

// FlightRecorder pins the full span trees of the slowest-K and all errored
// requests into a small separate ring so they survive long after the main
// trace ring has wrapped — the "why was that one request slow" store served
// at /trace/flight. Spans arrive at end time (children before their root);
// a trace accumulates in the open table until its root span (Root flag, or
// Parent == 0) lands, at which point the tree is finalized, checked for
// orphans, and pinned if it qualifies.
type FlightRecorder struct {
	mu        sync.Mutex
	k         int
	maxOpen   int
	maxSpans  int
	open      map[TraceID]*FlightTrace
	order     []TraceID      // open-table insertion order, for eviction
	slow      []*FlightTrace // sorted by DurNS descending, len <= k
	errs      []*FlightTrace // ring of the last k errored traces
	errNext   int
	finished  int64
	orphans   int64
	abandoned int64
}

// DefaultFlightK is the slowest-K / errored-ring capacity when the
// constructor is passed k <= 0.
const DefaultFlightK = 8

// maxSpansPerTrace bounds one trace's pinned tree; beyond it spans are
// dropped and counted in FlightTrace.Truncated.
const maxSpansPerTrace = 256

// NewFlightRecorder builds a recorder keeping the slowest k and the last k
// errored traces (k <= 0 uses DefaultFlightK).
func NewFlightRecorder(k int) *FlightRecorder {
	if k <= 0 {
		k = DefaultFlightK
	}
	return &FlightRecorder{
		k:        k,
		maxOpen:  4 * k,
		maxSpans: maxSpansPerTrace,
		open:     make(map[TraceID]*FlightTrace),
	}
}

// FlightSpan is one span inside a pinned trace.
type FlightSpan struct {
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Engine  string `json:"engine,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Status  int    `json:"status,omitempty"`
	N       int    `json:"n,omitempty"`
	Err     string `json:"err,omitempty"`
}

// FlightTrace is one pinned span tree.
type FlightTrace struct {
	Trace string `json:"trace"`
	// Root is the root span's name; DurNS/Status/Err mirror the root span.
	Root   string `json:"root"`
	DurNS  int64  `json:"dur_ns"`
	Status int    `json:"status,omitempty"`
	Err    string `json:"err,omitempty"`
	// Orphans counts spans whose parent id matches no span in the tree —
	// always 0 for a correctly propagated request.
	Orphans   int          `json:"orphan_spans"`
	Truncated int          `json:"truncated_spans,omitempty"`
	Spans     []FlightSpan `json:"spans"`
}

// observe ingests one finished span (called by Tracer.EmitSpan, outside
// the tracer lock).
func (f *FlightRecorder) observe(rec SpanRecord) {
	if f == nil || rec.Trace == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ft := f.open[rec.Trace]
	if ft == nil {
		if len(f.order) >= f.maxOpen {
			// A trace whose root never landed (crashed worker, dropped
			// response): evict the oldest so the table stays bounded.
			oldest := f.order[0]
			f.order = f.order[1:]
			delete(f.open, oldest)
			f.abandoned++
		}
		ft = &FlightTrace{Trace: rec.Trace.String()}
		f.open[rec.Trace] = ft
		f.order = append(f.order, rec.Trace)
	}
	if len(ft.Spans) >= f.maxSpans {
		ft.Truncated++
	} else {
		ft.Spans = append(ft.Spans, FlightSpan{
			Span:    rec.Span.String(),
			Parent:  rec.Parent.String(),
			Name:    rec.Name,
			Engine:  rec.Engine,
			StartNS: rec.Start.UnixNano(),
			DurNS:   rec.End.Sub(rec.Start).Nanoseconds(),
			Status:  rec.Status,
			N:       rec.N,
			Err:     rec.Err,
		})
	}
	if rec.Root || rec.Parent == 0 {
		f.finalize(ft, rec)
	}
}

// finalize closes a trace once its root span arrived: orphan-check the
// tree, account it, and pin it into the slow and/or errored stores.
func (f *FlightRecorder) finalize(ft *FlightTrace, root SpanRecord) {
	delete(f.open, root.Trace)
	for i, id := range f.order {
		if id == root.Trace {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	ids := make(map[string]bool, len(ft.Spans))
	for _, sp := range ft.Spans {
		ids[sp.Span] = true
	}
	// The root's own parent is exempt: when a context was propagated across
	// the transport, the root points at the caller's span, which lives in
	// another process and rightly isn't in this tree.
	rootID := root.Span.String()
	for _, sp := range ft.Spans {
		if sp.Parent != "" && !ids[sp.Parent] && sp.Span != rootID {
			ft.Orphans++
		}
	}
	ft.Root = root.Name
	ft.DurNS = root.End.Sub(root.Start).Nanoseconds()
	ft.Status = root.Status
	ft.Err = root.Err
	f.finished++
	f.orphans += int64(ft.Orphans)

	if root.Err != "" || root.Status >= 400 {
		if len(f.errs) < f.k {
			f.errs = append(f.errs, ft)
		} else {
			f.errs[f.errNext] = ft
			f.errNext = (f.errNext + 1) % f.k
		}
	}
	if len(f.slow) < f.k || ft.DurNS > f.slow[len(f.slow)-1].DurNS {
		f.slow = append(f.slow, ft)
		sort.Slice(f.slow, func(i, j int) bool { return f.slow[i].DurNS > f.slow[j].DurNS })
		if len(f.slow) > f.k {
			f.slow = f.slow[:f.k]
		}
	}
}

// FlightSnapshot is a point-in-time copy of the recorder, JSON-shaped for
// /trace/flight.
type FlightSnapshot struct {
	// Slowest holds the pinned slowest traces, slowest first.
	Slowest []FlightTrace `json:"slowest"`
	// Errors holds the most recent errored traces.
	Errors []FlightTrace `json:"errors"`
	// OpenTraces counts traces with spans recorded but no root yet —
	// in-flight requests, or span trees that will never finish.
	OpenTraces int `json:"open_traces"`
	// Finished counts root spans seen; OrphanSpans counts spans (across all
	// finished traces) whose parent was missing; AbandonedTraces counts
	// open-table evictions of rootless trees.
	Finished        int64 `json:"finished_traces"`
	OrphanSpans     int64 `json:"orphan_spans"`
	AbandonedTraces int64 `json:"abandoned_traces"`
}

// Snapshot copies the recorder state out (nil-safe).
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	snap := FlightSnapshot{Slowest: []FlightTrace{}, Errors: []FlightTrace{}}
	if f == nil {
		return snap
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ft := range f.slow {
		snap.Slowest = append(snap.Slowest, *ft)
	}
	// Errors come out newest-last regardless of ring position.
	for i := 0; i < len(f.errs); i++ {
		idx := i
		if len(f.errs) == f.k {
			idx = (f.errNext + i) % f.k
		}
		snap.Errors = append(snap.Errors, *f.errs[idx])
	}
	snap.OpenTraces = len(f.open)
	snap.Finished = f.finished
	snap.OrphanSpans = f.orphans
	snap.AbandonedTraces = f.abandoned
	return snap
}

package obs

import (
	"strconv"
	"strings"
	"time"
)

// Span tracing: request-scoped timing trees recorded into the tracer ring
// as typed "span" events. The design is allocation-conscious: Span is a
// value type, an unsampled Span is the zero value and every method on it
// no-ops, so instrumented hot paths pay one branch — no allocation, no
// atomic — when a request is not sampled. Sampling is head-based (the
// decision is made once, at the transport edge, and propagated), with
// transports additionally emitting retroactive root spans for errored
// requests so failures are always attributable even at low sample rates.

// TraceID identifies one request's span tree across protocol hops.
// Rendered as 16 lowercase hex digits; zero means "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span" — a
// span whose Parent is zero is the root of its trace.
type SpanID uint64

// String renders the id as 16 hex digits ("" for zero).
func (id TraceID) String() string { return hexID(uint64(id)) }

// String renders the id as 16 hex digits ("" for zero).
func (id SpanID) String() string { return hexID(uint64(id)) }

func hexID(v uint64) string {
	if v == 0 {
		return ""
	}
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = "0123456789abcdef"[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParseTraceID parses a 16-hex-digit id; ok is false on malformed input
// or the zero id.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return TraceID(v), true
}

// SpanContext is the propagated trace state: which trace a request belongs
// to, the id of the current (parent) span, and whether the trace is
// sampled. The zero value is "not traced". It is a small value type so it
// can ride inside pooled request structs without allocating.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context names a sampled, recordable trace.
func (c SpanContext) Valid() bool { return c.Sampled && c.Trace != 0 }

// TraceHeader is the HTTP header carrying a SpanContext across process
// boundaries: "<trace:16hex>-<span:16hex>-<flags:2hex>", flags bit 0 =
// sampled. The same triple rides in wire-protocol v3 frames.
const TraceHeader = "X-CST-Trace"

// FormatTraceHeader renders ctx in TraceHeader syntax ("" when no trace).
func FormatTraceHeader(c SpanContext) string {
	if c.Trace == 0 {
		return ""
	}
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	var sb strings.Builder
	sb.Grow(36)
	sb.WriteString(hexOrZero(uint64(c.Trace)))
	sb.WriteByte('-')
	sb.WriteString(hexOrZero(uint64(c.Span)))
	sb.WriteByte('-')
	sb.WriteString(flags)
	return sb.String()
}

func hexOrZero(v uint64) string {
	if v == 0 {
		return "0000000000000000"
	}
	return hexID(v)
}

// ParseTraceHeader parses TraceHeader syntax. A malformed value yields
// (zero, false) — callers fall back to a locally rooted trace.
func ParseTraceHeader(s string) (SpanContext, bool) {
	if len(s) != 36 || s[16] != '-' || s[33] != '-' {
		return SpanContext{}, false
	}
	trace, ok := ParseTraceID(s[:16])
	if !ok {
		return SpanContext{}, false
	}
	span, err := strconv.ParseUint(s[17:33], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	flags, err := strconv.ParseUint(s[34:36], 16, 8)
	if err != nil {
		return SpanContext{}, false
	}
	return SpanContext{Trace: trace, Span: SpanID(span), Sampled: flags&1 != 0}, true
}

// SpanRecord is one finished span, emitted retrospectively (at end time)
// so queue waits and dispatch windows can be recorded without holding an
// open-span object across goroutines.
type SpanRecord struct {
	Trace  TraceID
	Span   SpanID
	Parent SpanID // zero for a locally rooted span; the remote span id when propagated
	// Root marks the server-side root of this process's subtree. A root's
	// Parent may be non-zero (the caller's span id, propagated across the
	// transport): the tree is complete locally even though the parent span
	// lives in another process.
	Root   bool
	Name   string // e.g. "serve.request", "hybrid.peel"
	Engine string // emitting layer: "serve", "online", "padr", "hybrid"
	Start  time.Time
	End    time.Time
	Status int    // HTTP-style status (0 when not applicable)
	N      int    // generic count attribute (batch size, rounds, …)
	Err    string // failure text; non-empty marks the span errored
}

// Span is an in-flight timed operation. It is a value type: keep it on the
// stack, call End (or EndAt) exactly once. The zero Span (unsampled or nil
// tracer) no-ops throughout.
type Span struct {
	tr     *Tracer
	ctx    SpanContext
	parent SpanID
	root   bool
	name   string
	engine string
	start  time.Time
	status int
	n      int
	errs   string
}

// Context returns the span's context — pass it to children.
func (s *Span) Context() SpanContext { return s.ctx }

// Sampled reports whether the span records anything.
func (s *Span) Sampled() bool { return s.tr != nil && s.ctx.Sampled }

// SetStatus attaches an HTTP-style status code.
func (s *Span) SetStatus(code int) { s.status = code }

// SetN attaches a generic count (batch size, rounds, …).
func (s *Span) SetN(n int) { s.n = n }

// SetError marks the span errored.
func (s *Span) SetError(msg string) { s.errs = msg }

// End emits the span with end time now.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt emits the span with an explicit end time.
func (s *Span) EndAt(end time.Time) {
	if s.tr == nil || !s.ctx.Sampled {
		return
	}
	s.tr.EmitSpan(SpanRecord{
		Trace:  s.ctx.Trace,
		Span:   s.ctx.Span,
		Parent: s.parent,
		Root:   s.root,
		Name:   s.name,
		Engine: s.engine,
		Start:  s.start,
		End:    end,
		Status: s.status,
		N:      s.n,
		Err:    s.errs,
	})
	s.tr = nil // double-End no-ops
}

// splitmix64 is the id generator's output function: a strong 64-bit mixer
// over a Weyl sequence — no allocation, no locking beyond one atomic add.
func splitmix64(x uint64) uint64 {
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const weylStep = 0x9e3779b97f4a7c15

// nextID draws a non-zero pseudo-random 64-bit id.
func (t *Tracer) nextID() uint64 {
	for {
		if v := splitmix64(t.idState.Add(weylStep)); v != 0 {
			return v
		}
	}
}

// NewTraceID draws a fresh trace id (0 on nil tracer).
func (t *Tracer) NewTraceID() TraceID {
	if t == nil {
		return 0
	}
	return TraceID(t.nextID())
}

// NewSpanID draws a fresh span id (0 on nil tracer).
func (t *Tracer) NewSpanID() SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.nextID())
}

// SetSampleRate sets the head-sampling probability in [0, 1]. 0 disables
// head sampling (errored requests are still recorded retroactively); 1
// samples everything. Nil-safe.
func (t *Tracer) SetSampleRate(rate float64) {
	if t == nil {
		return
	}
	var th uint64
	switch {
	case rate <= 0:
		th = 0
	case rate >= 1:
		th = ^uint64(0)
	default:
		th = uint64(rate * float64(1<<63) * 2)
	}
	t.sampleTh.Store(th)
}

// SampleRate returns the approximate configured head-sampling probability.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	th := t.sampleTh.Load()
	if th == ^uint64(0) {
		return 1
	}
	return float64(th) / (float64(1<<63) * 2)
}

// headSample makes one head-sampling decision.
func (t *Tracer) headSample() bool {
	th := t.sampleTh.Load()
	if th == 0 {
		return false
	}
	if th == ^uint64(0) {
		return true
	}
	return t.nextID() < th
}

// StartServer opens the root (or propagation-continuation) span for one
// inbound request. A remote context with the sampled flag set forces
// sampling so cross-protocol trees stay connected; otherwise the head
// decision applies, adopting the remote trace id when one was sent.
// Returns the zero Span when unsampled — callers pass its Context() along
// unconditionally.
func (t *Tracer) StartServer(name, engine string, remote SpanContext) Span {
	if t == nil {
		return Span{}
	}
	if !remote.Sampled && !t.headSample() {
		return Span{}
	}
	trace := remote.Trace
	if trace == 0 {
		trace = t.NewTraceID()
	}
	return Span{
		tr:     t,
		ctx:    SpanContext{Trace: trace, Span: t.NewSpanID(), Sampled: true},
		parent: remote.Span,
		root:   true,
		name:   name,
		engine: engine,
		start:  time.Now(),
	}
}

// StartSpan opens a child span under parent; zero Span when the parent is
// unsampled.
func (t *Tracer) StartSpan(parent SpanContext, name, engine string) Span {
	return t.StartSpanAt(parent, name, engine, time.Now())
}

// StartSpanAt opens a child span with an explicit start time — for spans
// whose beginning (enqueue, flush start) predates the instrumentation
// point that emits them.
func (t *Tracer) StartSpanAt(parent SpanContext, name, engine string, start time.Time) Span {
	if t == nil || !parent.Valid() {
		return Span{}
	}
	return Span{
		tr:     t,
		ctx:    SpanContext{Trace: parent.Trace, Span: t.NewSpanID(), Sampled: true},
		parent: parent.Span,
		name:   name,
		engine: engine,
		start:  start,
	}
}

// EmitErrorRoot retroactively records a single root span for an errored
// request that was not head-sampled — the always-sample-on-error half of
// the sampling policy. Returns the trace context so the transport can echo
// the trace id to the client. Nil-safe (returns the zero context).
func (t *Tracer) EmitErrorRoot(name, engine string, start time.Time, status int, errmsg string) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	ctx := SpanContext{Trace: t.NewTraceID(), Span: t.NewSpanID(), Sampled: true}
	t.EmitSpan(SpanRecord{
		Trace:  ctx.Trace,
		Span:   ctx.Span,
		Root:   true,
		Name:   name,
		Engine: engine,
		Start:  start,
		End:    time.Now(),
		Status: status,
		Err:    errmsg,
	})
	return ctx
}

// EmitSpan records one finished span into the event ring as a typed
// "span" event and forwards it to the attached FlightRecorder. Nil-safe.
func (t *Tracer) EmitSpan(rec SpanRecord) {
	if t == nil {
		return
	}
	t.Emit(Event{
		TS:     rec.End.UnixNano(),
		Type:   "span",
		Engine: rec.Engine,
		Round:  -1,
		Name:   rec.Name,
		Trace:  rec.Trace.String(),
		Span:   rec.Span.String(),
		Parent: rec.Parent.String(),
		Status: rec.Status,
		DurNS:  rec.End.Sub(rec.Start).Nanoseconds(),
		N:      rec.N,
		Err:    rec.Err,
	})
	if f := t.Flight(); f != nil {
		f.observe(rec)
	}
}

// SetFlight attaches (or detaches, with nil) a flight recorder: every
// EmitSpan forwards the record to it, outside the tracer lock.
func (t *Tracer) SetFlight(f *FlightRecorder) {
	if t == nil {
		return
	}
	t.flight.Store(&f)
}

// Flight returns the attached flight recorder (nil when none).
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	if p := t.flight.Load(); p != nil {
		return *p
	}
	return nil
}

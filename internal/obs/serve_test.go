package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Counter("cst_demo_rounds_total", "demo").Add(3)
	tr := NewTracer(nil, 16)
	tr.Emit(Event{Type: "round.start", Engine: "demo", Round: 0})
	tr.Emit(Event{Type: "round.done", Engine: "demo", Round: 0, N: 2})
	h := Handler(r, tr)

	code, body := get(t, h, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body = get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "cst_demo_rounds_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get(t, h, "/trace")
	if code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/trace has %d lines, want 2:\n%s", len(lines), body)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("bad JSONL line %q: %v", lines[1], err)
	}
	if e.Type != "round.done" || e.N != 2 || e.Seq != 2 {
		t.Fatalf("decoded event %+v", e)
	}
	code, body = get(t, h, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _ = get(t, h, "/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestHandlerNilBackends(t *testing.T) {
	h := Handler(nil, nil)
	if code, _ := get(t, h, "/metrics"); code != 200 {
		t.Fatalf("/metrics on nil registry = %d", code)
	}
	if code, _ := get(t, h, "/trace"); code != 200 {
		t.Fatalf("/trace on nil tracer = %d", code)
	}
}

func TestServe(t *testing.T) {
	r := New()
	r.Counter("cst_demo_live_total", "demo").Inc()
	srv, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("cst_demo_live_total 1")) {
		t.Fatalf("live /metrics missing series:\n%s", body)
	}
}

// TestTraceCursorNoDuplicatesUnderEmit pins the /trace?since= resume
// contract while events are being emitted concurrently: every poll resumes
// from the X-Trace-Last-Seq cursor of the previous one, and no event may be
// delivered twice. Computing the cursor from Events() before capturing the
// ring (the pre-fix code) hands out a cursor that trails events already in
// the body, which this test detects as duplicate seqs across polls. Several
// pollers run at once: ring captures hold the tracer lock long enough that
// a poller blocks between its two lock acquisitions, so emitters interleave
// into the (pre-fix) header/body window even on a single-CPU runner.
func TestTraceCursorNoDuplicatesUnderEmit(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	tr := NewTracer(nil, 1<<16)
	h := Handler(nil, tr)

	var emitters sync.WaitGroup
	for g := 0; g < 2; g++ {
		emitters.Add(1)
		go func() {
			defer emitters.Done()
			for i := 0; i < 20000; i++ {
				tr.Emit(Event{Type: "e", Engine: "demo", Round: -1})
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}

	var pollers sync.WaitGroup
	for g := 0; g < 3; g++ {
		pollers.Add(1)
		go func(id int) {
			defer pollers.Done()
			seen := make(map[int64]bool)
			var since int64
			for poll := 0; poll < 200; poll++ {
				req := httptest.NewRequest("GET", "/trace?since="+strconv.FormatInt(since, 10), nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					t.Errorf("poller %d: /trace = %d", id, rec.Code)
					return
				}
				cursor, err := strconv.ParseInt(rec.Header().Get("X-Trace-Last-Seq"), 10, 64)
				if err != nil {
					t.Errorf("poller %d: bad X-Trace-Last-Seq %q", id, rec.Header().Get("X-Trace-Last-Seq"))
					return
				}
				body := strings.TrimSpace(rec.Body.String())
				var lastInBody int64
				if body != "" {
					for _, line := range strings.Split(body, "\n") {
						var e Event
						if err := json.Unmarshal([]byte(line), &e); err != nil {
							t.Errorf("poller %d: bad line %q: %v", id, line, err)
							return
						}
						if seen[e.Seq] {
							t.Errorf("poller %d poll %d: seq %d delivered twice across ?since= resume (cursor race)", id, poll, e.Seq)
							return
						}
						seen[e.Seq] = true
						lastInBody = e.Seq
					}
					if cursor != lastInBody {
						t.Errorf("poller %d poll %d: X-Trace-Last-Seq = %d but body ends at seq %d", id, poll, cursor, lastInBody)
						return
					}
				}
				since = cursor
			}
		}(g)
	}
	emitters.Wait()
	pollers.Wait()
}

// TestServerCloseGraceful pins the shutdown contract: a /trace download in
// flight when Close is called runs to completion instead of being aborted
// mid-body (the pre-fix http.Server.Close behaviour).
func TestServerCloseGraceful(t *testing.T) {
	tr := NewTracer(nil, 1<<16)
	// Enough events that the response body far exceeds the socket buffers,
	// so the server write genuinely blocks on the reading client below.
	const events = 40000
	for i := 0; i < events; i++ {
		tr.Emit(Event{Type: "round.start", Engine: "demo", Round: i, N: i})
	}
	srv, err := Serve("127.0.0.1:0", nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read a first chunk to make sure the response is underway, then shut
	// the server down while the rest of the body is still in flight.
	chunk := make([]byte, 4096)
	if _, err := io.ReadFull(resp.Body, chunk); err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("in-flight /trace aborted by Close: %v", err)
	}
	body := string(chunk) + string(rest)
	if got := strings.Count(body, "\n"); got != events {
		t.Fatalf("in-flight /trace truncated: %d lines, want %d", got, events)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close = %v", err)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(nil, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: "e", N: i, Round: -1})
	}
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.N != 6 {
		t.Fatalf("oldest retained event N = %d, want 6", first.N)
	}
	if tr.Events() != 10 {
		t.Fatalf("Events() = %d, want 10", tr.Events())
	}
}

func TestTracerStreams(t *testing.T) {
	var out bytes.Buffer
	tr := NewTracer(&out, 8)
	tr.Emit(Event{Type: "a", Round: -1})
	tr.Emit(Event{Type: "b", Round: -1})
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("streamed %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"type":"a"`) {
		t.Fatalf("first streamed line %q", lines[0])
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Counter("cst_demo_rounds_total", "demo").Add(3)
	tr := NewTracer(nil, 16)
	tr.Emit(Event{Type: "round.start", Engine: "demo", Round: 0})
	tr.Emit(Event{Type: "round.done", Engine: "demo", Round: 0, N: 2})
	h := Handler(r, tr)

	code, body := get(t, h, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body = get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "cst_demo_rounds_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get(t, h, "/trace")
	if code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/trace has %d lines, want 2:\n%s", len(lines), body)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("bad JSONL line %q: %v", lines[1], err)
	}
	if e.Type != "round.done" || e.N != 2 || e.Seq != 2 {
		t.Fatalf("decoded event %+v", e)
	}
	code, body = get(t, h, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _ = get(t, h, "/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestHandlerNilBackends(t *testing.T) {
	h := Handler(nil, nil)
	if code, _ := get(t, h, "/metrics"); code != 200 {
		t.Fatalf("/metrics on nil registry = %d", code)
	}
	if code, _ := get(t, h, "/trace"); code != 200 {
		t.Fatalf("/trace on nil tracer = %d", code)
	}
}

func TestServe(t *testing.T) {
	r := New()
	r.Counter("cst_demo_live_total", "demo").Inc()
	srv, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("cst_demo_live_total 1")) {
		t.Fatalf("live /metrics missing series:\n%s", body)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(nil, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: "e", N: i, Round: -1})
	}
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.N != 6 {
		t.Fatalf("oldest retained event N = %d, want 6", first.N)
	}
	if tr.Events() != 10 {
		t.Fatalf("Events() = %d, want 10", tr.Events())
	}
}

func TestTracerStreams(t *testing.T) {
	var out bytes.Buffer
	tr := NewTracer(&out, 8)
	tr.Emit(Event{Type: "a", Round: -1})
	tr.Emit(Event{Type: "b", Round: -1})
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("streamed %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"type":"a"`) {
		t.Fatalf("first streamed line %q", lines[0])
	}
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSummaryQuantilesExact(t *testing.T) {
	r := New()
	s := r.Summary("lat", "test", 100)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if got := s.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if s.Count() != 100 || s.Sum() != 5050 || s.Max() != 100 {
		t.Errorf("count %d sum %v max %v", s.Count(), s.Sum(), s.Max())
	}
}

func TestSummaryWindowBounded(t *testing.T) {
	r := New()
	s := r.Summary("lat", "test", 4)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	// Window retains only the last 4 samples {97..100}; lifetime count,
	// sum and max survive.
	if got := s.Quantile(0); got != 97 {
		t.Errorf("window min = %v, want 97", got)
	}
	if s.Count() != 100 {
		t.Errorf("count = %d", s.Count())
	}
	if s.Max() != 100 {
		t.Errorf("max = %v", s.Max())
	}
}

func TestSummaryNilAndNaN(t *testing.T) {
	var s *Summary
	s.Observe(1)
	s.ObserveDuration(time.Second)
	if s.Count() != 0 || s.Sum() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Error("nil summary must read zero")
	}
	var r *Registry
	if r.Summary("x", "", 10) != nil {
		t.Error("nil registry must hand out a nil summary")
	}
	live := New().Summary("x", "", 10)
	live.Observe(nan())
	if live.Count() != 0 {
		t.Error("NaN observations must be dropped")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestSummaryExposition(t *testing.T) {
	r := New()
	s := r.Summary("cst_test_latency", "request latency", 10)
	for i := 1; i <= 10; i++ {
		s.Observe(float64(i))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cst_test_latency request latency
# TYPE cst_test_latency summary
cst_test_latency{quantile="0.5"} 5
cst_test_latency{quantile="0.9"} 9
cst_test_latency{quantile="0.99"} 10
cst_test_latency{quantile="1"} 10
cst_test_latency_sum 55
cst_test_latency_count 10
`
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSummarySnapshotSub(t *testing.T) {
	r := New()
	s := r.Summary("lat", "", 8)
	s.Observe(2)
	prev := r.Snapshot()
	s.Observe(4)
	s.Observe(6)
	d := r.Snapshot().Sub(prev)
	sn, ok := d.Summaries["lat"]
	if !ok {
		t.Fatal("summary missing from delta snapshot")
	}
	if sn.Count != 2 || sn.Sum != 10 {
		t.Errorf("delta count %d sum %v", sn.Count, sn.Sum)
	}
	// The window itself is not subtractable; the current window passes
	// through.
	if len(sn.Samples) != 3 {
		t.Errorf("window size %d", len(sn.Samples))
	}
	if sn.Quantile(1) != 6 {
		t.Errorf("window max = %v", sn.Quantile(1))
	}
}

func TestSummaryConcurrent(t *testing.T) {
	r := New()
	s := r.Summary("lat", "", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe(1)
			}
		}()
	}
	wg.Wait()
	if s.Count() != 8000 || s.Sum() != 8000 || s.Max() != 1 {
		t.Errorf("count %d sum %v max %v", s.Count(), s.Sum(), s.Max())
	}
	if got := s.Quantile(0.99); got != 1 {
		t.Errorf("p99 = %v", got)
	}
}

package obs

import (
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	in := SpanContext{Trace: 0xab, Span: 0xcd, Sampled: true}
	h := FormatTraceHeader(in)
	if h != "00000000000000ab-00000000000000cd-01" {
		t.Fatalf("header = %q", h)
	}
	out, ok := ParseTraceHeader(h)
	if !ok || out != in {
		t.Fatalf("round trip = %+v ok=%v, want %+v", out, ok, in)
	}
	if h := FormatTraceHeader(SpanContext{}); h != "" {
		t.Errorf("zero context formats %q, want empty", h)
	}
	for _, bad := range []string{
		"", "xyz",
		"00000000000000ab_00000000000000cd-01",
		"000000000000000g-00000000000000cd-01",
		"0000000000000000-00000000000000cd-01", // zero trace id
	} {
		if _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", bad)
		}
	}
}

func TestStartServerSamplingPolicy(t *testing.T) {
	tr := NewTracer(nil, 16)

	// Rate 0: no head samples, but a sampled remote context forces it and
	// keeps the remote trace id.
	tr.SetSampleRate(0)
	if sp := tr.StartServer("s", "serve", SpanContext{}); sp.Sampled() {
		t.Error("sampled at rate 0 with no remote context")
	}
	remote := SpanContext{Trace: 7, Span: 9, Sampled: true}
	sp := tr.StartServer("s", "serve", remote)
	if !sp.Sampled() || sp.Context().Trace != 7 {
		t.Fatalf("propagated context not honored: %+v", sp.Context())
	}
	if sp.Context().Span == 9 {
		t.Error("server span id must be fresh, not the remote's")
	}

	// Rate 1: everything samples, minting a trace id when none was sent.
	tr.SetSampleRate(1)
	sp = tr.StartServer("s", "serve", SpanContext{})
	if !sp.Sampled() || sp.Context().Trace == 0 {
		t.Fatalf("rate-1 root: %+v", sp.Context())
	}

	// An unsampled remote context (flags 00) does not force sampling.
	tr.SetSampleRate(0)
	if sp := tr.StartServer("s", "serve", SpanContext{Trace: 7, Span: 9}); sp.Sampled() {
		t.Error("unsampled remote context forced sampling")
	}

	// Children of a zero span are zero; End on them no-ops.
	var zero Span
	child := tr.StartSpan(zero.Context(), "c", "serve")
	if child.Sampled() {
		t.Error("child of unsampled parent is sampled")
	}
	child.End()
}

// A propagated root (non-zero Parent, Root flag set) must finalize its
// trace, and its out-of-process parent must not count as an orphan — while
// a genuinely missing in-tree parent must.
func TestFlightRecorderPropagatedRoot(t *testing.T) {
	f := NewFlightRecorder(4)
	now := time.Now()

	f.observe(SpanRecord{Trace: 1, Span: 20, Parent: 10, Name: "serve.queue",
		Start: now, End: now.Add(time.Millisecond)})
	f.observe(SpanRecord{Trace: 1, Span: 10, Parent: 99, Root: true, Name: "http.schedule",
		Start: now, End: now.Add(2 * time.Millisecond), Status: 200})

	snap := f.Snapshot()
	if snap.Finished != 1 || snap.OpenTraces != 0 {
		t.Fatalf("finished=%d open=%d, want 1/0", snap.Finished, snap.OpenTraces)
	}
	if snap.OrphanSpans != 0 {
		t.Fatalf("remote parent counted as orphan: %d", snap.OrphanSpans)
	}
	if len(snap.Slowest) != 1 || snap.Slowest[0].Root != "http.schedule" {
		t.Fatalf("slowest = %+v", snap.Slowest)
	}

	// A child pointing at a span id nowhere in the tree is an orphan.
	f.observe(SpanRecord{Trace: 2, Span: 21, Parent: 555, Name: "serve.queue",
		Start: now, End: now.Add(time.Millisecond)})
	f.observe(SpanRecord{Trace: 2, Span: 11, Root: true, Name: "http.schedule",
		Start: now, End: now.Add(2 * time.Millisecond), Status: 200})
	if snap := f.Snapshot(); snap.OrphanSpans != 1 {
		t.Fatalf("orphan not detected: %d", snap.OrphanSpans)
	}
}

func TestFlightRecorderErrorsAndSlowestK(t *testing.T) {
	f := NewFlightRecorder(2)
	now := time.Now()
	durs := []time.Duration{5, 1, 9, 3} // ms; k=2 keeps 9 and 5
	for i, d := range durs {
		rec := SpanRecord{Trace: TraceID(i + 1), Span: SpanID(100 + i), Root: true,
			Name: "wire.schedule", Start: now, End: now.Add(d * time.Millisecond), Status: 200}
		if i == 1 {
			rec.Status, rec.Err = 500, "quarantined"
		}
		f.observe(rec)
	}
	snap := f.Snapshot()
	if len(snap.Slowest) != 2 || snap.Slowest[0].DurNS < snap.Slowest[1].DurNS {
		t.Fatalf("slowest = %+v", snap.Slowest)
	}
	if got := snap.Slowest[0].DurNS; got != (9 * time.Millisecond).Nanoseconds() {
		t.Fatalf("slowest[0] = %dns", got)
	}
	if len(snap.Errors) != 1 || snap.Errors[0].Err != "quarantined" {
		t.Fatalf("errors = %+v", snap.Errors)
	}
}

func TestEmitErrorRootReachesFlight(t *testing.T) {
	tr := NewTracer(nil, 16)
	tr.SetSampleRate(0)
	f := NewFlightRecorder(2)
	tr.SetFlight(f)
	ctx := tr.EmitErrorRoot("http.schedule", "serve", time.Now(), 400, "bad json")
	if !ctx.Valid() {
		t.Fatalf("error root context invalid: %+v", ctx)
	}
	snap := f.Snapshot()
	if len(snap.Errors) != 1 || snap.Errors[0].Status != 400 {
		t.Fatalf("errors = %+v", snap.Errors)
	}
	if snap.Errors[0].Trace != ctx.Trace.String() {
		t.Fatalf("trace %s, want %s", snap.Errors[0].Trace, ctx.Trace)
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured trace record. Engines emit one event per Phase 1
// convergecast wave, per Phase 2 round, per switch reconfiguration, per
// control-word send and per goroutine lifecycle transition; the schema is
// documented in OBSERVABILITY.md. Unused fields marshal away.
type Event struct {
	// TS is the event time in Unix nanoseconds; Emit stamps it when zero.
	TS int64 `json:"ts_ns"`
	// Seq is a per-tracer monotone sequence number, assigned by Emit — the
	// total order of events even when timestamps tie.
	Seq int64 `json:"seq"`
	// Type names the event, e.g. "round.start", "switch.config",
	// "word.send", "goroutine.start".
	Type string `json:"type"`
	// Engine is the emitting engine: "padr", "sim" or "online".
	Engine string `json:"engine,omitempty"`
	// Round is the 0-based Phase 2 round, or -1 outside Phase 2.
	Round int `json:"round"`
	// Node is the tree node the event concerns (0 when not node-scoped).
	Node int `json:"node,omitempty"`
	// Child is the receiving node of a word.send event.
	Child int `json:"child,omitempty"`
	// PE is the processing element for leaf-scoped events (-1 elsewhere,
	// kept explicit because PE 0 is a real leaf).
	PE int `json:"pe,omitempty"`
	// Word is the control word rendered in the paper's notation.
	Word string `json:"word,omitempty"`
	// Config is a switch configuration, e.g. "[l->r p->l]".
	Config string `json:"config,omitempty"`
	// DurNS is the measured duration of span-like events (round.done,
	// phase1.done, run.done) in nanoseconds.
	DurNS int64 `json:"dur_ns,omitempty"`
	// N is a generic count (messages in a wave, comms in a round/batch).
	N int `json:"n,omitempty"`
	// Width is the communication set's link width, stamped on phase1.done
	// and run.done events so trace consumers (internal/audit) can check the
	// round-count theorems without access to the engine.
	Width int `json:"width,omitempty"`
	// Mode is the power accounting mode ("stateful"/"stateless"), stamped
	// on run.start so a replayed ledger bills reconfigurations correctly.
	Mode string `json:"mode,omitempty"`
	// Err carries failure text on *.error events.
	Err string `json:"err,omitempty"`
	// Name is the span name on "span" events (e.g. "serve.request").
	Name string `json:"name,omitempty"`
	// Trace/Span/Parent are 16-hex-digit span-tracing ids. Trace is set on
	// "span" events and stamped onto engine events that run on behalf of a
	// sampled request; Span/Parent only appear on "span" events.
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Status is the HTTP-style status on "span" events (0 elsewhere).
	Status int `json:"status,omitempty"`
}

// Tracer serializes events as JSONL: one JSON object per line, streamed to
// an optional writer and retained in a bounded ring for later download via
// the /trace HTTP endpoint. A nil Tracer no-ops, so engines can emit
// unconditionally.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	ring    [][]byte
	next    int
	wrapped bool
	seq     int64
	dropped int64
	evicted int64
	// evictedC, when attached via Instrument, mirrors evicted as the
	// cst_obs_trace_dropped_total series so ring overwrites are visible on
	// /metrics instead of silent.
	evictedC *Counter
	// sink, when set, receives every event synchronously after sequence
	// assignment — the live tap the audit layer consumes.
	sink func(Event)

	// Span-tracing state (see span.go). sampleTh is the head-sampling
	// threshold over the full uint64 range (0 = never, MaxUint64 = always);
	// idState drives the splitmix64 id generator; flight holds the attached
	// flight recorder (a pointer-to-pointer so detaching stores nil cleanly).
	sampleTh atomic.Uint64
	idState  atomic.Uint64
	flight   atomic.Pointer[*FlightRecorder]
}

// DefaultRingSize bounds the tracer's in-memory event ring; ~64k events is
// minutes of engine activity at a few hundred bytes each.
const DefaultRingSize = 1 << 16

// NewTracer builds a tracer. w may be nil (ring-only); ringSize <= 0 uses
// DefaultRingSize.
func NewTracer(w io.Writer, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	t := &Tracer{w: w, ring: make([][]byte, ringSize)}
	t.idState.Store(uint64(time.Now().UnixNano()))
	return t
}

// Emit records one event. Safe for concurrent use; nil-safe.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.TS == 0 {
		e.TS = time.Now().UnixNano()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e.Seq = t.seq
	if t.sink != nil {
		t.sink(e)
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.dropped++
		return
	}
	b = append(b, '\n')
	if t.ring[t.next] != nil {
		// Overwriting an event nobody downloaded yet: count the eviction so
		// a scraper polling /trace can tell its view has holes.
		t.evicted++
		t.evictedC.Inc()
	}
	t.ring[t.next] = b
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	if t.w != nil {
		if _, err := t.w.Write(b); err != nil {
			t.dropped++
		}
	}
}

// SetSink installs fn as the tracer's live event tap: every Emit calls it
// synchronously (under the tracer lock, with Seq and TS assigned) in
// emission order. Pass nil to detach. The audit layer attaches its Observe
// method here; fn must not call back into the tracer.
func (t *Tracer) SetSink(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = fn
}

// Instrument publishes the tracer's ring-eviction count to r as
// cst_obs_trace_dropped_total. Nil-safe on both sides.
func (t *Tracer) Instrument(r *Registry) {
	if t == nil || r == nil {
		return
	}
	c := r.Counter("cst_obs_trace_dropped_total",
		"trace events evicted from the ring buffer before being downloaded")
	t.mu.Lock()
	defer t.mu.Unlock()
	c.Add(t.evicted)
	t.evictedC = c
}

// Events returns how many events have been emitted.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events failed to serialize or stream.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Evicted returns how many events the ring overwrote before they were ever
// downloaded (the cst_obs_trace_dropped_total quantity).
func (t *Tracer) Evicted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// WriteJSONL dumps the retained ring, oldest first, as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	_, err := t.WriteJSONLSince(w, 0)
	return err
}

// WriteJSONLSince dumps the retained events with Seq > since, oldest first,
// as JSON lines — the incremental-polling contract behind /trace?since=N: a
// scraper remembers the last seq it saw and asks only for the tail. since
// <= 0 dumps the whole ring. It returns the cursor for the next poll: the
// Seq of the newest event written, or since itself when nothing qualified.
// Events older than the ring are gone; the cst_obs_trace_dropped_total
// counter says how many.
func (t *Tracer) WriteJSONLSince(w io.Writer, since int64) (int64, error) {
	buf, last := t.TailSince(since)
	_, err := w.Write(buf)
	return last, err
}

// TailSince returns the retained events with Seq > since, oldest first and
// concatenated as JSON lines, plus the resume cursor: the Seq of the newest
// event included, or since itself when nothing qualified. The capture is
// atomic with respect to Emit, so the cursor never trails the returned
// lines — an event emitted concurrently either appears in the tail (and the
// cursor covers it) or waits whole for the next poll. Computing the cursor
// from Events() instead would race: events landing between that read and
// the ring capture would be delivered beyond the advertised cursor and then
// re-delivered on the next poll.
func (t *Tracer) TailSince(since int64) ([]byte, int64) {
	if t == nil {
		return nil, since
	}
	t.mu.Lock()
	var lines [][]byte
	if t.wrapped {
		lines = append(lines, t.ring[t.next:]...)
	}
	lines = append(lines, t.ring[:t.next]...)
	// The ring is sequential: the retained events are exactly seqs
	// t.seq-len(lines)+1 .. t.seq, oldest first, so "Seq > since" is a
	// prefix skip — no per-line decoding needed.
	if since > 0 {
		oldest := t.seq - int64(len(lines)) + 1
		skip := since - oldest + 1
		if skip >= int64(len(lines)) {
			lines = nil
		} else if skip > 0 {
			lines = lines[skip:]
		}
	}
	last := since
	if len(lines) > 0 {
		// The tail always ends at the newest retained event.
		last = t.seq
	}
	// Copy out under the lock so emission can continue while the caller
	// writes.
	buf := make([]byte, 0, 256*len(lines))
	for _, l := range lines {
		buf = append(buf, l...)
	}
	t.mu.Unlock()
	return buf, last
}

package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// The exposition writer's full output is pinned: lexicographic series
// ordering, HELP/TYPE framing, and the _bucket/_sum/_count histogram shape
// with cumulative bucket counts. Prometheus scrapers parse this by shape,
// so a formatting drift is a real break, not a cosmetic one.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := New()
	// Registered deliberately out of name order: the writer must sort.
	r.Gauge("cst_g_width", "last width").Set(7)
	h := r.Histogram("cst_a_latency_seconds", "latency", []float64{0.5, 2})
	r.Counter("cst_m_rounds_total", "rounds").Add(42)
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(1)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cst_a_latency_seconds latency
# TYPE cst_a_latency_seconds histogram
cst_a_latency_seconds_bucket{le="0.5"} 1
cst_a_latency_seconds_bucket{le="2"} 3
cst_a_latency_seconds_bucket{le="+Inf"} 4
cst_a_latency_seconds_sum 11.25
cst_a_latency_seconds_count 4
# HELP cst_g_width last width
# TYPE cst_g_width gauge
cst_g_width 7
# HELP cst_m_rounds_total rounds
# TYPE cst_m_rounds_total counter
cst_m_rounds_total 42
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Labeled series — registered as `family{label="v"}` — must group under
// one HELP/TYPE frame per family with the unlabeled aggregate first, merge
// their labels into histogram le= and summary quantile= blocks, and not be
// interleaved with other families by raw-name sorting ('_' sorts before
// '{', so a family named family_x would split family's block under the old
// name ordering).
func TestPrometheusLabeledExpositionGolden(t *testing.T) {
	r := New()
	r.Counter(`cst_s_requests_total{protocol="wire"}`, "requests").Add(3)
	r.Counter("cst_s_requests_total", "requests").Add(5)
	r.Counter(`cst_s_requests_total{protocol="http"}`, "requests").Add(2)
	// Raw-name sorting would wedge this family between cst_s_requests_total
	// and its labeled series.
	r.Counter("cst_s_requests_zz_total", "other family").Add(1)
	h := r.Histogram(`cst_s_latency_seconds{protocol="wire"}`, "latency", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	sm := r.Summary(`cst_s_latq{protocol="wire"}`, "latency quantiles", 8)
	sm.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cst_s_latency_seconds latency
# TYPE cst_s_latency_seconds histogram
cst_s_latency_seconds_bucket{protocol="wire",le="0.5"} 1
cst_s_latency_seconds_bucket{protocol="wire",le="2"} 2
cst_s_latency_seconds_bucket{protocol="wire",le="+Inf"} 2
cst_s_latency_seconds_sum{protocol="wire"} 1.25
cst_s_latency_seconds_count{protocol="wire"} 2
# HELP cst_s_latq latency quantiles
# TYPE cst_s_latq summary
cst_s_latq{protocol="wire",quantile="0.5"} 2
cst_s_latq{protocol="wire",quantile="0.9"} 2
cst_s_latq{protocol="wire",quantile="0.99"} 2
cst_s_latq{protocol="wire",quantile="1"} 2
cst_s_latq_sum{protocol="wire"} 2
cst_s_latq_count{protocol="wire"} 1
# HELP cst_s_requests_total requests
# TYPE cst_s_requests_total counter
cst_s_requests_total 5
cst_s_requests_total{protocol="http"} 2
cst_s_requests_total{protocol="wire"} 3
# HELP cst_s_requests_zz_total other family
# TYPE cst_s_requests_zz_total counter
cst_s_requests_zz_total 1
`
	if got := b.String(); got != want {
		t.Errorf("labeled exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Snapshots key by the full registration name, labels included.
	snap := r.Snapshot()
	if snap.Counters[`cst_s_requests_total{protocol="wire"}`] != 3 {
		t.Errorf("labeled counter missing from snapshot: %v", snap.Counters)
	}
}

// Snapshot.Sub must subtract counters and histogram buckets while passing
// gauges through, and leave names present in only one snapshot intact.
func TestSnapshotSubGolden(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{1})
	c.Add(10)
	g.Set(3)
	h.Observe(0.5)
	before := r.Snapshot()

	c.Add(7)
	g.Set(9)
	h.Observe(0.5)
	h.Observe(5)
	late := r.Counter("late_total", "")
	late.Add(2)

	d := r.Snapshot().Sub(before)
	if d.Counters["c_total"] != 7 {
		t.Errorf("counter delta = %d, want 7", d.Counters["c_total"])
	}
	if d.Counters["late_total"] != 2 {
		t.Errorf("late counter delta = %d, want 2 (absent in before)", d.Counters["late_total"])
	}
	if d.Gauges["g"] != 9 {
		t.Errorf("gauge in delta = %d, want the current value 9", d.Gauges["g"])
	}
	hs := d.Histograms["h_seconds"]
	if hs.Count != 2 || hs.Counts[0] != 1 || hs.Counts[1] != 1 {
		t.Errorf("histogram delta = %+v, want one sample per bucket", hs)
	}
	if hs.Sum != 5.5 {
		t.Errorf("histogram delta sum = %g, want 5.5", hs.Sum)
	}
}

// WriteJSONLSince must honor the cursor: a fresh tracer returns the tail
// after any since, an overflowing ring drops the oldest lines, and a
// cursor at or past the head returns nothing.
func TestWriteJSONLSince(t *testing.T) {
	tr := NewTracer(nil, 4)
	for i := 0; i < 6; i++ { // seqs 1..6; ring keeps 3..6
		tr.Emit(Event{Type: "e", N: i, Round: -1})
	}
	dump := func(since int64) []string {
		var b bytes.Buffer
		last, err := tr.WriteJSONLSince(&b, since)
		if err != nil {
			t.Fatal(err)
		}
		// The returned cursor is the newest seq written, or since itself
		// when the tail is empty.
		if b.Len() > 0 {
			if last != 6 {
				t.Errorf("since %d: cursor = %d, want 6", since, last)
			}
		} else if last != since {
			t.Errorf("since %d: empty-tail cursor = %d, want %d", since, last, since)
		}
		s := strings.TrimSpace(b.String())
		if s == "" {
			return nil
		}
		return strings.Split(s, "\n")
	}
	if got := dump(0); len(got) != 4 {
		t.Errorf("since 0: %d lines, want the full ring of 4", len(got))
	}
	if got := dump(4); len(got) != 2 {
		t.Errorf("since 4: %d lines, want 2 (seqs 5,6)", len(got))
	}
	// A cursor older than the ring returns everything retained.
	if got := dump(1); len(got) != 4 {
		t.Errorf("since 1 (evicted): %d lines, want 4", len(got))
	}
	if got := dump(6); got != nil {
		t.Errorf("since head: %v, want nothing", got)
	}
	if got := dump(99); got != nil {
		t.Errorf("since past head: %v, want nothing", got)
	}
}

// Ring overwrites must tick the eviction count and, once instrumented, the
// cst_obs_trace_dropped_total counter — including evictions that happened
// before Instrument was called.
func TestTracerEvictionCounter(t *testing.T) {
	tr := NewTracer(nil, 2)
	tr.Emit(Event{Type: "a", Round: -1})
	tr.Emit(Event{Type: "b", Round: -1})
	if tr.Evicted() != 0 {
		t.Fatalf("evicted = %d before overflow", tr.Evicted())
	}
	tr.Emit(Event{Type: "c", Round: -1}) // overwrites "a"
	if tr.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", tr.Evicted())
	}

	r := New()
	tr.Instrument(r)
	if got := r.Snapshot().Counters["cst_obs_trace_dropped_total"]; got != 1 {
		t.Fatalf("counter = %d after Instrument, want the pre-existing eviction", got)
	}
	tr.Emit(Event{Type: "d", Round: -1})
	tr.Emit(Event{Type: "e", Round: -1})
	if got := r.Snapshot().Counters["cst_obs_trace_dropped_total"]; got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if tr.Evicted() != 3 {
		t.Fatalf("evicted = %d, want 3", tr.Evicted())
	}
}

// The sink must see every event, in order, with sequence numbers assigned,
// and detach cleanly.
func TestTracerSink(t *testing.T) {
	tr := NewTracer(nil, 8)
	var seen []Event
	tr.SetSink(func(e Event) { seen = append(seen, e) })
	tr.Emit(Event{Type: "a", Round: -1})
	tr.Emit(Event{Type: "b", Round: -1})
	tr.SetSink(nil)
	tr.Emit(Event{Type: "c", Round: -1})
	if len(seen) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(seen))
	}
	if seen[0].Type != "a" || seen[0].Seq != 1 || seen[1].Seq != 2 {
		t.Fatalf("sink events = %+v", seen)
	}
	if seen[0].TS == 0 {
		t.Error("sink event missing timestamp")
	}
	// Nil tracer: SetSink and Emit both no-op.
	var nilTr *Tracer
	nilTr.SetSink(func(Event) { t.Error("sink on nil tracer fired") })
	nilTr.Emit(Event{Type: "x"})
}

// The /trace endpoint must speak NDJSON, honor ?since=, reject garbage
// cursors, and advertise the head sequence for incremental polling.
func TestTraceSinceEndpoint(t *testing.T) {
	r := New()
	tr := NewTracer(nil, 16)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Type: "e", N: i, Round: -1})
	}
	h := Handler(r, tr)

	req := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	rec := req("/trace?since=3")
	if rec.Code != 200 {
		t.Fatalf("/trace?since=3 = %d", rec.Code)
	}
	if got := len(strings.Split(strings.TrimSpace(rec.Body.String()), "\n")); got != 2 {
		t.Errorf("since=3 returned %d lines, want 2", got)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if seq := rec.Header().Get("X-Trace-Last-Seq"); seq != "5" {
		t.Errorf("X-Trace-Last-Seq = %q, want 5", seq)
	}

	rec = req("/trace?since=5")
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "" {
		t.Errorf("since=head = %d %q, want 200 with empty body", rec.Code, rec.Body.String())
	}
	for _, bad := range []string{"/trace?since=x", "/trace?since=-1", "/trace?since=1.5"} {
		if rec := req(bad); rec.Code != 400 {
			t.Errorf("%s = %d, want 400", bad, rec.Code)
		}
	}
}

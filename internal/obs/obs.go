// Package obs is the unified observability layer for the CST engines: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms with quantile estimation) plus a structured JSONL event tracer
// and an HTTP exposition surface (Prometheus text /metrics, /healthz, trace
// download, net/http/pprof).
//
// Design constraints, in order:
//
//  1. The hot path must stay hot. Every metric is a single atomic word (or
//     a fixed array of them); there are no labels, no maps and no locks on
//     the update path. Engines resolve metric handles once, up front, and
//     bang on atomics per event.
//  2. Disabled must be free. Every method is nil-safe: a nil *Registry
//     hands out nil handles and a nil *Counter/*Gauge/*Histogram/*Tracer
//     no-ops without allocating, so uninstrumented runs pay only a
//     predictable-branch nil check. bench_test.go enforces zero
//     allocations on this path.
//  3. No dependencies. The Prometheus text format is simple enough to emit
//     by hand; pulling a client library for three metric kinds is not
//     worth a go.mod entry.
//
// Metric names follow the Prometheus conventions used throughout
// OBSERVABILITY.md: cst_<engine>_<what>_<unit-or-total>.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotone; this is not
// enforced so engines can fold pre-aggregated deltas in).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics and crude quantile estimation by linear interpolation inside
// the winning bucket. A nil Histogram no-ops. All updates are atomic; a
// concurrent reader may observe a sum/count pair mid-update, which is the
// standard (and accepted) Prometheus client behaviour.
type Histogram struct {
	bounds []float64      // upper bounds, strictly increasing; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search beats linear scan only past ~30 buckets; engine
	// histograms are ~20, so scan.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket holding the q-th sample; the open +Inf bucket reports
// its lower bound. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Quantile(q)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExponentialBuckets returns n strictly increasing bucket bounds starting
// at start and growing by factor — the standard way to cover several
// latency decades with a fixed-size histogram.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		panic("obs: LinearBuckets needs n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// DefLatencyBuckets covers 1µs..~8.5s in powers of two — wide enough for a
// Phase 2 wave on a laptop and for a congested sweep under -race.
var DefLatencyBuckets = ExponentialBuckets(1e-6, 2, 24)

// metric is one registered series: a family name plus an optional fixed
// label set. Series are registered with the labels embedded in the name —
// `cst_serve_requests_total{protocol="wire"}` — which keeps the hot path
// exactly as label-free as before: a labeled series is still one resolved
// handle banging on one atomic word; the label cost is paid once at
// registration and once per exposition line.
type metric struct {
	name   string // full registration key, labels included
	family string // name with any {label} block stripped
	labels string // `k="v",...` without braces; "" for unlabeled
	help   string
	kind   string // "counter", "gauge", "histogram", "summary"
	c      *Counter
	g      *Gauge
	h      *Histogram
	s      *Summary
}

// splitName separates a registration name into its family and label block.
// Anything that is not exactly `family{labels}` is treated as an unlabeled
// family — the registry's callers are in-tree and get this right.
func splitName(name string) (family, labels string) {
	i := len(name)
	for j := 0; j < len(name); j++ {
		if name[j] == '{' {
			i = j
			break
		}
	}
	if i == len(name) || name[len(name)-1] != '}' {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// series renders the exposition name for a family (optionally suffixed,
// e.g. "_sum") carrying this metric's label set.
func (m *metric) series(suffix string) string {
	if m.labels == "" {
		return m.family + suffix
	}
	return m.family + suffix + "{" + m.labels + "}"
}

// seriesWith renders an exposition name merging the metric's labels with
// one extra label (le for histogram buckets, quantile for summaries); the
// extra label goes last, as Prometheus clients conventionally emit it.
func (m *metric) seriesWith(suffix, key, val string) string {
	if m.labels == "" {
		return fmt.Sprintf("%s%s{%s=%q}", m.family, suffix, key, val)
	}
	return fmt.Sprintf("%s%s{%s,%s=%q}", m.family, suffix, m.labels, key, val)
}

// Registry is a named collection of metrics. A nil *Registry is the
// disabled mode: every lookup returns a nil handle whose methods no-op.
// Lookups take a mutex (resolve handles once, outside hot loops); updates
// on the returned handles are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Counter returns (registering on first use) the named counter. The help
// string is kept from the first registration. Nil registry → nil handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.c
	}
	m := newMetric(name, help, "counter")
	m.c = &Counter{}
	r.metrics[name] = m
	return m.c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.g
	}
	m := newMetric(name, help, "gauge")
	m.g = &Gauge{}
	r.metrics[name] = m
	return m.g
}

// Histogram returns (registering on first use) the named histogram. The
// bounds are kept from the first registration; pass nil for
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.h
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing", name))
		}
	}
	m := newMetric(name, help, "histogram")
	m.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.metrics[name] = m
	return m.h
}

// newMetric builds a series entry, splitting any embedded label block.
func newMetric(name, help, kind string) *metric {
	family, labels := splitName(name)
	return &metric{name: name, family: family, labels: labels, help: help, kind: kind}
}

// sorted returns the registered series ordered by (family, labels): raw
// name order would interleave families, because '_' sorts before '{' and
// a labeled series of one family would split another family's block.
// Within a family the unlabeled series (labels == "") leads.
func (r *Registry) sorted() []*metric {
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4). A nil registry emits nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := r.sorted()
	r.mu.Unlock()
	prevFamily := ""
	for _, m := range ms {
		// HELP/TYPE frame each family once; the labeled series of one
		// family share it (Prometheus rejects repeated TYPE lines).
		if m.family != prevFamily {
			prevFamily = m.family
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.family, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.family, m.kind); err != nil {
				return err
			}
		}
		switch m.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %d\n", m.series(""), m.c.Value()); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %d\n", m.series(""), m.g.Value()); err != nil {
				return err
			}
		case "histogram":
			s := m.h.snapshot()
			cum := int64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				if _, err := fmt.Fprintf(w, "%s %d\n", m.seriesWith("_bucket", "le", formatFloat(b)), cum); err != nil {
					return err
				}
			}
			cum += s.Counts[len(s.Bounds)]
			if _, err := fmt.Fprintf(w, "%s %d\n", m.seriesWith("_bucket", "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %g\n%s %d\n", m.series("_sum"), s.Sum, m.series("_count"), s.Count); err != nil {
				return err
			}
		case "summary":
			if err := writeSummary(w, m, m.s); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a bucket bound the way Prometheus clients do.
func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket.
	Bounds []float64
	// Counts are per-bucket (non-cumulative) sample counts.
	Counts []int64
	// Count and Sum aggregate all samples.
	Count int64
	Sum   float64
}

// Quantile estimates the q-th quantile from the snapshot; see
// Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// Open-ended bucket: report its lower bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the snapshot's mean sample (0 with no samples).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot is a point-in-time copy of a whole registry, used for
// per-experiment deltas (cstbench) and summary tables.
type Snapshot struct {
	// Counters and Gauges map metric name to value.
	Counters map[string]int64
	Gauges   map[string]int64
	// Histograms maps metric name to a full bucket snapshot.
	Histograms map[string]HistogramSnapshot
	// Summaries maps metric name to a window snapshot.
	Summaries map[string]SummarySnapshot
}

// Snapshot copies every metric's current value. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Summaries:  map[string]SummarySnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ms := r.sorted()
	r.mu.Unlock()
	for _, m := range ms {
		switch m.kind {
		case "counter":
			s.Counters[m.name] = m.c.Value()
		case "gauge":
			s.Gauges[m.name] = m.g.Value()
		case "histogram":
			s.Histograms[m.name] = m.h.snapshot()
		case "summary":
			s.Summaries[m.name] = m.s.snapshot()
		}
	}
	return s
}

// Sub returns the delta snapshot cur − prev: counters and histogram
// buckets subtract (metrics absent from prev pass through), gauges keep
// their current value. It makes per-experiment tables possible on one
// long-lived registry.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Summaries:  map[string]SummarySnapshot{},
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Counts) != len(h.Counts) {
			out.Histograms[name] = h
			continue
		}
		d := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: make([]int64, len(h.Counts)),
			Count:  h.Count - p.Count,
			Sum:    h.Sum - p.Sum,
		}
		for i := range h.Counts {
			d.Counts[i] = h.Counts[i] - p.Counts[i]
		}
		out.Histograms[name] = d
	}
	// A summary's window is not subtractable sample-by-sample; keep the
	// current window and delta only the lifetime count/sum.
	for name, s := range s.Summaries {
		p := s
		if prev, ok := prev.Summaries[name]; ok {
			p.Count = s.Count - prev.Count
			p.Sum = s.Sum - prev.Sum
		}
		out.Summaries[name] = p
	}
	return out
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"cst/internal/stats"
)

// Summary is a bounded-reservoir quantile metric: it retains the most
// recent capacity samples in a fixed ring and reports exact (nearest-rank)
// quantiles over that window, plus a whole-lifetime count, sum and max.
// Unlike Histogram it needs no bucket layout chosen up front and its
// quantiles carry no interpolation error — the tradeoff is that they
// describe a sliding window, not all of history, which is exactly what a
// latency metric wants. Memory is bounded at capacity × 8 bytes.
//
// The update path is lock-free (one ring store + three atomic adds); like
// Histogram, a concurrent reader may observe a sample mid-window, which is
// accepted. A nil Summary no-ops.
type Summary struct {
	ring  []atomic.Uint64 // math.Float64bits of each sample
	next  atomic.Uint64   // total inserts; ring slot is next % len(ring)
	sum   atomic.Uint64   // math.Float64bits of the running sum
	max   atomic.Uint64   // math.Float64bits of the lifetime max
	count atomic.Int64
}

// DefSummaryCapacity is the default sample window when a registration
// passes capacity <= 0: large enough that p99 over the window rests on
// ~40 samples, small enough to stay under 32 KiB per metric.
const DefSummaryCapacity = 4096

// SummaryQuantiles are the quantiles every summary exposes on /metrics.
// {quantile="1"} is the exact max over the window.
var SummaryQuantiles = []float64{0.5, 0.9, 0.99, 1}

// Observe records one sample. NaN samples are dropped (they would poison
// every quantile downstream).
func (s *Summary) Observe(v float64) {
	if s == nil || math.IsNaN(v) {
		return
	}
	slot := (s.next.Add(1) - 1) % uint64(len(s.ring))
	s.ring[slot].Store(math.Float64bits(v))
	s.count.Add(1)
	for {
		old := s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := s.max.Load()
		if v <= math.Float64frombits(old) && s.count.Load() > 1 {
			break
		}
		if s.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (s *Summary) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Count returns the lifetime sample count (0 on nil).
func (s *Summary) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Sum returns the lifetime sample sum (0 on nil).
func (s *Summary) Sum() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.sum.Load())
}

// Max returns the lifetime maximum sample (0 on nil or empty).
func (s *Summary) Max() float64 {
	if s == nil || s.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(s.max.Load())
}

// Quantile returns the q-th quantile (0..1) over the retained window
// (0 with no samples).
func (s *Summary) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	return stats.Quantile(s.window(), q)
}

// window copies out the currently retained samples.
func (s *Summary) window() []float64 {
	n := s.next.Load()
	retained := int(n)
	if retained > len(s.ring) {
		retained = len(s.ring)
	}
	out := make([]float64, retained)
	for i := 0; i < retained; i++ {
		out[i] = math.Float64frombits(s.ring[i].Load())
	}
	return out
}

func (s *Summary) snapshot() SummarySnapshot {
	return SummarySnapshot{
		Samples: s.window(),
		Count:   s.count.Load(),
		Sum:     math.Float64frombits(s.sum.Load()),
		Max:     s.Max(),
	}
}

// SummarySnapshot is a point-in-time copy of one summary.
type SummarySnapshot struct {
	// Samples is the retained window (unordered).
	Samples []float64
	// Count and Sum aggregate all samples ever observed; Max is the
	// lifetime maximum.
	Count int64
	Sum   float64
	Max   float64
}

// Quantile returns the q-th quantile of the snapshot's window.
func (s SummarySnapshot) Quantile(q float64) float64 { return stats.Quantile(s.Samples, q) }

// Mean returns the lifetime mean sample (0 with no samples).
func (s SummarySnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Summary returns (registering on first use) the named summary. The
// capacity is kept from the first registration; pass <= 0 for
// DefSummaryCapacity. Nil registry → nil handle.
func (r *Registry) Summary(name, help string, capacity int) *Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.s
	}
	if capacity <= 0 {
		capacity = DefSummaryCapacity
	}
	m := newMetric(name, help, "summary")
	m.s = &Summary{ring: make([]atomic.Uint64, capacity)}
	r.metrics[name] = m
	return m.s
}

// writeSummary emits one summary in the Prometheus text format:
// quantile-labelled gauge lines over the retained window plus the
// lifetime _sum and _count.
func writeSummary(w io.Writer, m *metric, s *Summary) error {
	snap := s.snapshot()
	qs := stats.Quantiles(snap.Samples, SummaryQuantiles...)
	for i, q := range SummaryQuantiles {
		if _, err := fmt.Fprintf(w, "%s %g\n", m.seriesWith("", "quantile", formatFloat(q)), qs[i]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s %g\n%s %d\n", m.series("_sum"), snap.Sum, m.series("_count"), snap.Count)
	return err
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"cst/internal/stats"
)

// Summary is a bounded-reservoir quantile metric: it retains the most
// recent capacity samples in a fixed ring and reports exact (nearest-rank)
// quantiles over that window, plus a whole-lifetime count, sum and max.
// Unlike Histogram it needs no bucket layout chosen up front and its
// quantiles carry no interpolation error — the tradeoff is that they
// describe a sliding window, not all of history, which is exactly what a
// latency metric wants. Memory is bounded at capacity × 8 bytes.
//
// The update path is lock-free (one ring store + three atomic adds); like
// Histogram, a concurrent reader may observe a sample mid-window, which is
// accepted. A nil Summary no-ops.
type Summary struct {
	ring  []atomic.Uint64 // math.Float64bits of each sample
	next  atomic.Uint64   // total inserts; ring slot is next % len(ring)
	sum   atomic.Uint64   // math.Float64bits of the running sum
	max   atomic.Uint64   // math.Float64bits of the lifetime max
	count atomic.Int64
	// traces mirrors ring slot-for-slot with the trace id of each sample
	// (0 = untraced); maxTrace holds the trace id of the lifetime max.
	// Together they are the exemplar store: /metrics annotates the p99 and
	// max quantile lines with OpenMetrics `# {trace_id=...}` exemplars so a
	// regressed summary links straight to a pinned span tree.
	traces   []atomic.Uint64
	maxTrace atomic.Uint64
}

// DefSummaryCapacity is the default sample window when a registration
// passes capacity <= 0: large enough that p99 over the window rests on
// ~40 samples, small enough to stay under 32 KiB per metric.
const DefSummaryCapacity = 4096

// SummaryQuantiles are the quantiles every summary exposes on /metrics.
// {quantile="1"} is the exact max over the window.
var SummaryQuantiles = []float64{0.5, 0.9, 0.99, 1}

// Observe records one sample. NaN samples are dropped (they would poison
// every quantile downstream).
func (s *Summary) Observe(v float64) { s.ObserveTraced(v, 0) }

// ObserveTraced records one sample carrying the trace id of the request
// that produced it (0 = untraced), making the sample an exemplar
// candidate. Same lock-free cost as Observe plus one ring store.
func (s *Summary) ObserveTraced(v float64, trace TraceID) {
	if s == nil || math.IsNaN(v) {
		return
	}
	slot := (s.next.Add(1) - 1) % uint64(len(s.ring))
	s.ring[slot].Store(math.Float64bits(v))
	s.traces[slot].Store(uint64(trace))
	s.count.Add(1)
	for {
		old := s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := s.max.Load()
		if v <= math.Float64frombits(old) && s.count.Load() > 1 {
			break
		}
		if s.max.CompareAndSwap(old, math.Float64bits(v)) {
			// The slight race between the max CAS and this store is accepted:
			// a concurrent larger max wins the value; its trace may land a
			// beat later.
			s.maxTrace.Store(uint64(trace))
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (s *Summary) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Count returns the lifetime sample count (0 on nil).
func (s *Summary) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Sum returns the lifetime sample sum (0 on nil).
func (s *Summary) Sum() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.sum.Load())
}

// Max returns the lifetime maximum sample (0 on nil or empty).
func (s *Summary) Max() float64 {
	if s == nil || s.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(s.max.Load())
}

// Quantile returns the q-th quantile (0..1) over the retained window
// (0 with no samples).
func (s *Summary) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	return stats.Quantile(s.window(), q)
}

// window copies out the currently retained samples.
func (s *Summary) window() []float64 {
	n := s.next.Load()
	retained := int(n)
	if retained > len(s.ring) {
		retained = len(s.ring)
	}
	out := make([]float64, retained)
	for i := 0; i < retained; i++ {
		out[i] = math.Float64frombits(s.ring[i].Load())
	}
	return out
}

// Snapshot returns a point-in-time copy of the summary — the window,
// aligned trace ids, and lifetime aggregates (zero on nil).
func (s *Summary) Snapshot() SummarySnapshot {
	if s == nil {
		return SummarySnapshot{}
	}
	return s.snapshot()
}

func (s *Summary) snapshot() SummarySnapshot {
	snap := SummarySnapshot{
		Samples:  s.window(),
		Count:    s.count.Load(),
		Sum:      math.Float64frombits(s.sum.Load()),
		Max:      s.Max(),
		MaxTrace: TraceID(s.maxTrace.Load()),
	}
	snap.Traces = make([]TraceID, len(snap.Samples))
	for i := range snap.Traces {
		snap.Traces[i] = TraceID(s.traces[i].Load())
	}
	return snap
}

// SummarySnapshot is a point-in-time copy of one summary.
type SummarySnapshot struct {
	// Samples is the retained window (unordered).
	Samples []float64
	// Traces holds each sample's trace id (0 = untraced), index-aligned
	// with Samples; MaxTrace is the trace id of the lifetime max.
	Traces   []TraceID
	MaxTrace TraceID
	// Count and Sum aggregate all samples ever observed; Max is the
	// lifetime maximum.
	Count int64
	Sum   float64
	Max   float64
}

// Quantile returns the q-th quantile of the snapshot's window.
func (s SummarySnapshot) Quantile(q float64) float64 { return stats.Quantile(s.Samples, q) }

// Exemplar returns the trace id and value of the traced sample nearest the
// q-th quantile of the window — the "which request was that p99" link.
// Returns (0, 0) when no retained sample carries a trace id.
func (s SummarySnapshot) Exemplar(q float64) (TraceID, float64) {
	if len(s.Samples) == 0 || len(s.Traces) != len(s.Samples) {
		return 0, 0
	}
	target := stats.Quantile(s.Samples, q)
	var (
		best     TraceID
		bestVal  float64
		bestDist = math.Inf(1)
	)
	for i, v := range s.Samples {
		if s.Traces[i] == 0 {
			continue
		}
		d := math.Abs(v - target)
		if d < bestDist {
			bestDist, best, bestVal = d, s.Traces[i], v
		}
	}
	return best, bestVal
}

// Mean returns the lifetime mean sample (0 with no samples).
func (s SummarySnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Summary returns (registering on first use) the named summary. The
// capacity is kept from the first registration; pass <= 0 for
// DefSummaryCapacity. Nil registry → nil handle.
func (r *Registry) Summary(name, help string, capacity int) *Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.s
	}
	if capacity <= 0 {
		capacity = DefSummaryCapacity
	}
	m := newMetric(name, help, "summary")
	m.s = &Summary{
		ring:   make([]atomic.Uint64, capacity),
		traces: make([]atomic.Uint64, capacity),
	}
	r.metrics[name] = m
	return m.s
}

// writeSummary emits one summary in the Prometheus text format:
// quantile-labelled gauge lines over the retained window plus the
// lifetime _sum and _count. The p99 and max lines carry OpenMetrics-style
// `# {trace_id="..."} value` exemplar annotations when a traced sample is
// available, linking the quantile to a pinned span tree; untraced
// summaries expose exactly the classic format.
func writeSummary(w io.Writer, m *metric, s *Summary) error {
	snap := s.snapshot()
	qs := stats.Quantiles(snap.Samples, SummaryQuantiles...)
	for i, q := range SummaryQuantiles {
		exemplar := ""
		switch {
		case q == 1 && snap.MaxTrace != 0:
			exemplar = fmt.Sprintf(" # {trace_id=%q} %g", snap.MaxTrace.String(), snap.Max)
		case q >= 0.99 && q < 1:
			if trace, v := snap.Exemplar(q); trace != 0 {
				exemplar = fmt.Sprintf(" # {trace_id=%q} %g", trace.String(), v)
			}
		}
		if _, err := fmt.Fprintf(w, "%s %g%s\n", m.seriesWith("", "quantile", formatFloat(q)), qs[i], exemplar); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s %g\n%s %d\n", m.series("_sum"), snap.Sum, m.series("_count"), snap.Count)
	return err
}

package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total", "other") != c {
		t.Fatal("second lookup must return the same counter")
	}
	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	var tr *Tracer
	tr.Emit(Event{Type: "x"})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		h.Quantile(0.5) != 0 || tr.Events() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// The disabled path must not allocate: a nil registry hands out nil
// handles and every operation on them is a nil check. This is the
// benchmark guard the tentpole promises (see also bench_test.go at the
// repository root).
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(9)
		h.Observe(0.5)
		tr.Emit(Event{Type: "round.start", Round: 3})
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "", LinearBuckets(1, 1, 10)) // bounds 1..10
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v%10) + 0.5) // uniform over buckets 1..10
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Quantile(0.5); got < 4 || got > 6 {
		t.Fatalf("p50 = %g, want ~5", got)
	}
	if got := h.Quantile(1); got > 10 {
		t.Fatalf("p100 = %g, want <= 10", got)
	}
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Fatalf("p0 = %g, want within first bucket", got)
	}
	// Overflow samples land in +Inf and quantiles clamp to the top bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("overflow quantile = %g, want 10 (top bound)", got)
	}
	mean := h.Sum() / float64(h.Count())
	if math.IsNaN(mean) || mean <= 0 {
		t.Fatalf("bad mean %g", mean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "", ExponentialBuckets(1e-6, 2, 12))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8000*1e-5) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), 8000*1e-5)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("cst_test_rounds_total", "rounds executed").Add(16)
	r.Gauge("cst_test_width", "last width").Set(4)
	h := r.Histogram("cst_test_latency_seconds", "round latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cst_test_rounds_total rounds executed",
		"# TYPE cst_test_rounds_total counter",
		"cst_test_rounds_total 16",
		"# TYPE cst_test_width gauge",
		"cst_test_width 4",
		"# TYPE cst_test_latency_seconds histogram",
		`cst_test_latency_seconds_bucket{le="0.1"} 1`,
		`cst_test_latency_seconds_bucket{le="1"} 2`,
		`cst_test_latency_seconds_bucket{le="+Inf"} 3`,
		"cst_test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotSub(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1, 2})
	c.Add(5)
	h.Observe(0.5)
	before := r.Snapshot()
	c.Add(3)
	h.Observe(1.5)
	h.Observe(1.5)
	delta := r.Snapshot().Sub(before)
	if got := delta.Counters["c_total"]; got != 3 {
		t.Fatalf("counter delta = %d, want 3", got)
	}
	hs := delta.Histograms["h"]
	if hs.Count != 2 || hs.Counts[1] != 2 || hs.Counts[0] != 0 {
		t.Fatalf("histogram delta = %+v, want 2 samples in bucket 1", hs)
	}
	if math.Abs(hs.Sum-3.0) > 1e-9 {
		t.Fatalf("sum delta = %g, want 3", hs.Sum)
	}
	if got := hs.Quantile(0.5); got < 1 || got > 2 {
		t.Fatalf("delta p50 = %g, want in (1,2]", got)
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", nil).Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
}

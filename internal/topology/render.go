package topology

import (
	"fmt"
	"strings"
)

// DOT renders the tree in Graphviz dot syntax. label, if non-nil, supplies a
// per-node label (e.g. a live switch configuration); nil uses default labels
// ("u3" for switches, "PE5" for leaves).
func (t *Tree) DOT(label func(Node) string) string {
	var b strings.Builder
	b.WriteString("digraph cst {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for n := Node(1); int(n) < 2*t.leaves; n++ {
		lab := t.defaultLabel(n)
		if label != nil {
			if s := label(n); s != "" {
				lab = s
			}
		}
		shape := "box"
		if t.IsLeaf(n) {
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", int(n), lab, shape)
	}
	t.EachSwitch(func(n Node) {
		fmt.Fprintf(&b, "  n%d -> n%d [dir=both];\n", int(n), int(t.Left(n)))
		fmt.Fprintf(&b, "  n%d -> n%d [dir=both];\n", int(n), int(t.Right(n)))
	})
	b.WriteString("}\n")
	return b.String()
}

func (t *Tree) defaultLabel(n Node) string {
	if t.IsLeaf(n) {
		return fmt.Sprintf("PE%d", t.PE(n))
	}
	return fmt.Sprintf("u%d", int(n))
}

// ASCII renders the tree as fixed-width text, one level per line, with an
// optional per-node annotation. It is the workhorse behind cmd/cstviz and
// the round-by-round traces. Cells are 6 characters per leaf column; use
// ASCIIWidth for longer annotations.
func (t *Tree) ASCII(annotate func(Node) string) string {
	return t.ASCIIWidth(annotate, 6)
}

// ASCIIWidth is ASCII with an explicit per-leaf column width.
func (t *Tree) ASCIIWidth(annotate func(Node) string, width int) string {
	if width < 2 {
		width = 2
	}
	cols := t.leaves * width
	var b strings.Builder
	for depth := 0; depth <= t.levels; depth++ {
		line := make([]byte, cols)
		for i := range line {
			line[i] = ' '
		}
		first := Node(1) << depth
		last := Node(2)<<depth - 1
		for n := first; n <= last; n++ {
			lo, hi := t.Span(n)
			center := (lo + hi) * width / 2
			lab := t.defaultLabel(n)
			if annotate != nil {
				if s := annotate(n); s != "" {
					lab = s
				}
			}
			placeCentered(line, center, lab)
		}
		b.Write(trimRight(line))
		b.WriteByte('\n')
	}
	return b.String()
}

func placeCentered(line []byte, center int, s string) {
	start := center - len(s)/2
	if start < 0 {
		start = 0
	}
	for i := 0; i < len(s) && start+i < len(line); i++ {
		line[start+i] = s[i]
	}
}

func trimRight(line []byte) []byte {
	end := len(line)
	for end > 0 && line[end-1] == ' ' {
		end--
	}
	return line[:end]
}

package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-4, 0, 1, 3, 6, 12, 100} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): want error, got nil", n)
		}
	}
	for _, n := range []int{2, 4, 8, 1024} {
		tr, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if tr.Leaves() != n {
			t.Errorf("New(%d).Leaves() = %d", n, tr.Leaves())
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3) did not panic")
		}
	}()
	MustNew(3)
}

func TestStructureCounts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 256} {
		tr := MustNew(n)
		if got := tr.Switches(); got != n-1 {
			t.Errorf("n=%d: Switches=%d want %d", n, got, n-1)
		}
		if got := tr.EdgeCount(); got != 2*n-2 {
			t.Errorf("n=%d: EdgeCount=%d want %d", n, got, 2*n-2)
		}
		if tr.Root() != 1 {
			t.Errorf("n=%d: Root=%d", n, tr.Root())
		}
	}
}

func TestParentChildInverse(t *testing.T) {
	tr := MustNew(64)
	tr.EachSwitch(func(u Node) {
		if tr.Parent(tr.Left(u)) != u || tr.Parent(tr.Right(u)) != u {
			t.Fatalf("parent/child mismatch at %d", u)
		}
		if !tr.IsLeftChild(tr.Left(u)) {
			t.Fatalf("Left(%d) not a left child", u)
		}
		if tr.IsLeftChild(tr.Right(u)) {
			t.Fatalf("Right(%d) claims to be a left child", u)
		}
	})
}

func TestLeafPEInverse(t *testing.T) {
	tr := MustNew(32)
	for pe := 0; pe < 32; pe++ {
		leaf := tr.Leaf(pe)
		if !tr.IsLeaf(leaf) {
			t.Fatalf("Leaf(%d)=%d not a leaf", pe, leaf)
		}
		if tr.IsSwitch(leaf) {
			t.Fatalf("Leaf(%d)=%d claims to be a switch", pe, leaf)
		}
		if got := tr.PE(leaf); got != pe {
			t.Fatalf("PE(Leaf(%d)) = %d", pe, got)
		}
	}
}

func TestLevelsAndDepth(t *testing.T) {
	tr := MustNew(16) // levels = 4
	if tr.Levels() != 4 {
		t.Fatalf("Levels = %d, want 4", tr.Levels())
	}
	if tr.Level(tr.Root()) != 4 || tr.Depth(tr.Root()) != 0 {
		t.Errorf("root level/depth wrong: %d/%d", tr.Level(tr.Root()), tr.Depth(tr.Root()))
	}
	for pe := 0; pe < 16; pe++ {
		if tr.Level(tr.Leaf(pe)) != 0 {
			t.Errorf("leaf %d level = %d, want 0", pe, tr.Level(tr.Leaf(pe)))
		}
		if tr.Depth(tr.Leaf(pe)) != 4 {
			t.Errorf("leaf %d depth = %d, want 4", pe, tr.Depth(tr.Leaf(pe)))
		}
	}
}

func TestSpan(t *testing.T) {
	tr := MustNew(8)
	cases := []struct {
		n      Node
		lo, hi int
	}{
		{1, 0, 8}, {2, 0, 4}, {3, 4, 8}, {4, 0, 2}, {7, 6, 8},
		{8, 0, 1}, {15, 7, 8},
	}
	for _, c := range cases {
		lo, hi := tr.Span(c.n)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Span(%d) = [%d,%d), want [%d,%d)", c.n, lo, hi, c.lo, c.hi)
		}
	}
	for pe := 0; pe < 8; pe++ {
		if !tr.Contains(1, pe) {
			t.Errorf("root must contain PE %d", pe)
		}
	}
	if tr.Contains(2, 5) {
		t.Error("node 2 ([0,4)) must not contain PE 5")
	}
}

func TestLCAExamples(t *testing.T) {
	tr := MustNew(8)
	cases := []struct {
		a, b int
		want Node
	}{
		{0, 1, 4}, {0, 7, 1}, {2, 3, 5}, {1, 2, 2}, {4, 7, 3}, {3, 4, 1},
		{5, 5, 13}, // degenerate: LCA of a leaf with itself is the leaf
	}
	for _, c := range cases {
		if got := tr.LCA(c.a, c.b); got != c.want {
			t.Errorf("LCA(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCAIsCommonAncestorProperty(t *testing.T) {
	tr := MustNew(128)
	f := func(a, b uint8) bool {
		x, y := int(a)%128, int(b)%128
		l := tr.LCA(x, y)
		if !tr.Contains(l, x) || !tr.Contains(l, y) {
			return false
		}
		// Lowest: neither child of l contains both (unless x==y at a leaf).
		if x == y {
			return tr.IsLeaf(l)
		}
		if tr.IsLeaf(l) {
			return false
		}
		for _, c := range []Node{tr.Left(l), tr.Right(l)} {
			if tr.Contains(c, x) && tr.Contains(c, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPathEdgesSimple(t *testing.T) {
	tr := MustNew(4)
	edges, err := tr.PathEdges(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{
		{Child: 4, Dir: Up},   // PE0 leaf up to node 2
		{Child: 2, Dir: Up},   // node 2 up to root
		{Child: 3, Dir: Down}, // root down to node 3
		{Child: 7, Dir: Down}, // node 3 down to PE3 leaf
	}
	if len(edges) != len(want) {
		t.Fatalf("got %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d: got %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestPathEdgesAdjacent(t *testing.T) {
	tr := MustNew(8)
	edges, err := tr.PathEdges(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{Child: 10, Dir: Up}, {Child: 11, Dir: Down}}
	if len(edges) != 2 || edges[0] != want[0] || edges[1] != want[1] {
		t.Fatalf("got %v, want %v", edges, want)
	}
}

func TestPathEdgesErrors(t *testing.T) {
	tr := MustNew(8)
	if _, err := tr.PathEdges(3, 3); err == nil {
		t.Error("same PE: want error")
	}
	if _, err := tr.PathEdges(-1, 3); err == nil {
		t.Error("negative PE: want error")
	}
	if _, err := tr.PathEdges(0, 8); err == nil {
		t.Error("out of range PE: want error")
	}
}

func TestPathSwitchesAndHopBound(t *testing.T) {
	tr := MustNew(64)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(64), rng.Intn(64)
		if a == b {
			continue
		}
		sws, err := tr.PathSwitches(a, b)
		if err != nil {
			t.Fatal(err)
		}
		hops, err := tr.HopCount(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if hops != len(sws) {
			t.Fatalf("HopCount=%d, len(switches)=%d", hops, len(sws))
		}
		// Paper: a path traverses at most O(log N) switches; exactly
		// <= 2*levels - 1.
		if hops > 2*tr.Levels()-1 {
			t.Fatalf("path %d->%d has %d hops, bound %d", a, b, hops, 2*tr.Levels()-1)
		}
		// The LCA must be on the path, and every listed node is a switch.
		lca := tr.LCA(a, b)
		found := false
		for _, s := range sws {
			if !tr.IsSwitch(s) {
				t.Fatalf("path node %d is not a switch", s)
			}
			if s == lca {
				found = true
			}
		}
		if !found {
			t.Fatalf("LCA %d missing from path %v", lca, sws)
		}
	}
}

func TestPathSwitchesDistinct(t *testing.T) {
	tr := MustNew(32)
	sws, err := tr.PathSwitches(0, 31)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Node]bool{}
	for _, s := range sws {
		if seen[s] {
			t.Fatalf("switch %d repeated on path", s)
		}
		seen[s] = true
	}
	if len(sws) != 2*tr.Levels()-1 {
		t.Fatalf("extreme path should touch %d switches, got %d", 2*tr.Levels()-1, len(sws))
	}
}

func TestEdgeIndexDense(t *testing.T) {
	tr := MustNew(16)
	seen := make([]bool, tr.DirectedEdgeCount())
	for child := Node(2); int(child) < 2*tr.Leaves(); child++ {
		for _, d := range []Direction{Up, Down} {
			idx := tr.EdgeIndex(Edge{Child: child, Dir: d})
			if idx < 0 || idx >= len(seen) {
				t.Fatalf("index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("index %d reused", idx)
			}
			seen[idx] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d unused", i)
		}
	}
}

func TestEachSwitchOrders(t *testing.T) {
	tr := MustNew(16)
	var topDown []Node
	tr.EachSwitchTopDown(func(n Node) { topDown = append(topDown, n) })
	if len(topDown) != tr.Switches() {
		t.Fatalf("visited %d switches, want %d", len(topDown), tr.Switches())
	}
	seen := map[Node]bool{}
	for _, n := range topDown {
		if p := tr.Parent(n); p != 0 && !seen[p] {
			t.Fatalf("node %d visited before its parent", n)
		}
		seen[n] = true
	}
	var bottomUp []Node
	tr.EachSwitchBottomUp(func(n Node) { bottomUp = append(bottomUp, n) })
	seen = map[Node]bool{}
	for _, n := range bottomUp {
		if tr.IsSwitch(tr.Left(n)) && !seen[tr.Left(n)] {
			t.Fatalf("node %d visited before its left child", n)
		}
		seen[n] = true
	}
}

func TestDirectionString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" {
		t.Errorf("Direction.String: %q %q", Up.String(), Down.String())
	}
	e := Edge{Child: 12, Dir: Up}
	if e.String() != "12-up" {
		t.Errorf("Edge.String = %q", e.String())
	}
}

func TestDOTOutput(t *testing.T) {
	tr := MustNew(4)
	dot := tr.DOT(nil)
	for _, want := range []string{"digraph cst", "PE0", "PE3", "u1", "n1 -> n2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	custom := tr.DOT(func(n Node) string {
		if n == 1 {
			return "ROOT"
		}
		return ""
	})
	if !strings.Contains(custom, "ROOT") {
		t.Error("custom label not applied")
	}
}

func TestASCIIOutput(t *testing.T) {
	tr := MustNew(8)
	out := tr.ASCII(nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != tr.Levels()+1 {
		t.Fatalf("ASCII has %d lines, want %d", len(lines), tr.Levels()+1)
	}
	if !strings.Contains(lines[0], "u1") {
		t.Errorf("first line should show the root: %q", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], "PE0") || !strings.Contains(lines[len(lines)-1], "PE7") {
		t.Errorf("last line should show the leaves: %q", lines[len(lines)-1])
	}
}

func TestSpanContainsConsistencyProperty(t *testing.T) {
	tr := MustNew(64)
	f := func(nRaw uint16, peRaw uint8) bool {
		n := Node(int(nRaw)%(2*64-1) + 1)
		pe := int(peRaw) % 64
		lo, hi := tr.Span(n)
		return tr.Contains(n, pe) == (pe >= lo && pe < hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

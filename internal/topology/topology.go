// Package topology models the circuit switched tree (CST) substrate: a
// complete binary tree whose leaves are processing elements (PEs) and whose
// internal nodes are 3-sided switches, connected by full-duplex links.
//
// Nodes use heap indexing: the root is node 1, node k has children 2k and
// 2k+1, and for a tree with N leaves (N a power of two) the leaves are nodes
// N..2N-1 in left-to-right order. PE i (0-based) therefore lives at node N+i.
//
// A tree edge connects a node to its parent. Because every non-root node has
// exactly one parent edge, edges are identified by their child node. Each
// edge is full duplex: the Up direction carries data from the child toward
// the root, the Down direction from the parent toward the leaves.
package topology

import (
	"fmt"
	"math/bits"
)

// Node is a heap index into the tree. The root is 1; 0 is never a valid node.
type Node int

// Direction selects one half of a full-duplex tree link.
type Direction uint8

const (
	// Up is the child-to-parent half of a link.
	Up Direction = iota
	// Down is the parent-to-child half of a link.
	Down
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Edge is one directed half of a tree link. Child identifies the link (every
// non-root node has exactly one parent link); Dir selects the half.
type Edge struct {
	Child Node
	Dir   Direction
}

// String renders the edge as "child-dir", e.g. "12-up".
func (e Edge) String() string { return fmt.Sprintf("%d-%s", int(e.Child), e.Dir) }

// Tree is a circuit switched tree with a fixed number of leaves.
// The zero value is not usable; construct with New.
//
// Because nodes are heap indices, the node space is already dense: every
// node is an integer in [1, 2N), so per-node engine state lives naturally in
// a slice of length NodeCount() indexed by the node itself. New additionally
// precomputes per-node depth and subtree leaf-range tables so the hot
// scheduling paths never recompute them bit by bit.
type Tree struct {
	leaves int // N, a power of two
	levels int // log2(N); leaves are level 0, root is level `levels`

	// Dense per-node tables, indexed by Node (entry 0 unused). depth is the
	// distance from the root; spanLo/spanHi are the half-open PE interval
	// covered by the node's subtree.
	depth  []int32
	spanLo []int32
	spanHi []int32
}

// New returns a CST with n leaves. n must be a power of two and at least 2.
func New(n int) (*Tree, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 leaves, got %d", n)
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("topology: leaf count must be a power of two, got %d", n)
	}
	t := &Tree{leaves: n, levels: bits.Len(uint(n)) - 1}
	t.depth = make([]int32, 2*n)
	t.spanLo = make([]int32, 2*n)
	t.spanHi = make([]int32, 2*n)
	for node := 1; node < 2*n; node++ {
		d := bits.Len(uint(node)) - 1
		width := n >> d
		first := (node << (t.levels - d)) - n
		t.depth[node] = int32(d)
		t.spanLo[node] = int32(first)
		t.spanHi[node] = int32(first + width)
	}
	return t, nil
}

// MustNew is New but panics on error; intended for tests and examples with
// constant sizes.
func MustNew(n int) *Tree {
	t, err := New(n)
	if err != nil {
		panic(err)
	}
	return t
}

// Leaves returns N, the number of PEs.
func (t *Tree) Leaves() int { return t.leaves }

// Switches returns the number of internal nodes, N-1.
func (t *Tree) Switches() int { return t.leaves - 1 }

// Levels returns log2(N). Leaves sit at level 0 and the root at level
// Levels(), matching the paper's convention in Lemma 7.
func (t *Tree) Levels() int { return t.levels }

// Root returns the root node (always 1).
func (t *Tree) Root() Node { return 1 }

// Valid reports whether n is a node of this tree.
func (t *Tree) Valid(n Node) bool { return n >= 1 && int(n) < 2*t.leaves }

// IsLeaf reports whether n is a PE.
func (t *Tree) IsLeaf(n Node) bool { return int(n) >= t.leaves && int(n) < 2*t.leaves }

// IsSwitch reports whether n is an internal (switch) node.
func (t *Tree) IsSwitch(n Node) bool { return n >= 1 && int(n) < t.leaves }

// Parent returns the parent of n. The root has no parent; Parent(root) == 0.
func (t *Tree) Parent(n Node) Node { return n / 2 }

// Left returns the left child of switch n.
func (t *Tree) Left(n Node) Node { return 2 * n }

// Right returns the right child of switch n.
func (t *Tree) Right(n Node) Node { return 2*n + 1 }

// IsLeftChild reports whether n is the left child of its parent.
func (t *Tree) IsLeftChild(n Node) bool { return n%2 == 0 }

// Leaf returns the node holding PE pe (0-based).
func (t *Tree) Leaf(pe int) Node { return Node(t.leaves + pe) }

// PE returns the 0-based PE index of a leaf node.
func (t *Tree) PE(n Node) int { return int(n) - t.leaves }

// Level returns the level of n: leaves are level 0, the root is Levels().
func (t *Tree) Level(n Node) int { return t.levels - int(t.depth[n]) }

// Depth returns the distance from the root: root is depth 0, leaves are
// depth Levels(). Table lookup, precomputed at construction.
func (t *Tree) Depth(n Node) int { return int(t.depth[n]) }

// Span returns the half-open PE interval [lo, hi) covered by the subtree
// rooted at n. Table lookup, precomputed at construction.
func (t *Tree) Span(n Node) (lo, hi int) {
	return int(t.spanLo[n]), int(t.spanHi[n])
}

// NodeCount returns 2N, the size of the dense node-index space: every node
// is an integer in [1, NodeCount()), so NodeCount() is the length of a
// slice indexed directly by Node (entry 0 unused).
func (t *Tree) NodeCount() int { return 2 * t.leaves }

// SubtreeNodes returns the number of nodes (switches plus leaves) in the
// subtree rooted at n: 2·span − 1 for a complete subtree over span leaves.
func (t *Tree) SubtreeNodes(n Node) int {
	return 2*int(t.spanHi[n]-t.spanLo[n]) - 1
}

// Contains reports whether PE pe lies in the subtree rooted at n.
func (t *Tree) Contains(n Node, pe int) bool {
	lo, hi := t.Span(n)
	return pe >= lo && pe < hi
}

// LCA returns the lowest common ancestor of PEs a and b.
func (t *Tree) LCA(a, b int) Node {
	x, y := uint(t.Leaf(a)), uint(t.Leaf(b))
	// Leaves share a depth, so the LCA is the longest common bit prefix:
	// strip exactly the bits in which the two heap indices differ.
	return Node(x >> bits.Len(x^y))
}

// PathEdges returns the directed edges used by a circuit from PE src to PE
// dst: up edges from the source leaf to (but not including) the LCA, then
// down edges from the LCA to the destination leaf. The source and
// destination leaf links are included (the PE-to-switch hop is a tree edge
// like any other). PathEdges returns an error if src == dst or either PE is
// out of range.
func (t *Tree) PathEdges(src, dst int) ([]Edge, error) {
	if src < 0 || src >= t.leaves || dst < 0 || dst >= t.leaves {
		return nil, fmt.Errorf("topology: PE out of range: src=%d dst=%d n=%d", src, dst, t.leaves)
	}
	if src == dst {
		return nil, fmt.Errorf("topology: src and dst are the same PE %d", src)
	}
	lca := t.LCA(src, dst)
	var edges []Edge
	for n := t.Leaf(src); n != lca; n = t.Parent(n) {
		edges = append(edges, Edge{Child: n, Dir: Up})
	}
	// Collect the down path from the destination leaf back to the LCA, then
	// reverse it so the result reads source-to-destination.
	start := len(edges)
	for n := t.Leaf(dst); n != lca; n = t.Parent(n) {
		edges = append(edges, Edge{Child: n, Dir: Down})
	}
	down := edges[start:]
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return edges, nil
}

// EachPathEdge calls fn for every directed edge used by a circuit from PE
// src to PE dst: the up edges from the source leaf to (but not including)
// the LCA, then the down edges from the LCA to the destination leaf, the
// down leg in leaf-to-LCA order. Unlike PathEdges it allocates nothing,
// which is what keeps width computations off the garbage collector on hot
// paths.
func (t *Tree) EachPathEdge(src, dst int, fn func(Edge)) error {
	if src < 0 || src >= t.leaves || dst < 0 || dst >= t.leaves {
		return fmt.Errorf("topology: PE out of range: src=%d dst=%d n=%d", src, dst, t.leaves)
	}
	if src == dst {
		return fmt.Errorf("topology: src and dst are the same PE %d", src)
	}
	lca := t.LCA(src, dst)
	for n := t.Leaf(src); n != lca; n = n / 2 {
		fn(Edge{Child: n, Dir: Up})
	}
	for n := t.Leaf(dst); n != lca; n = n / 2 {
		fn(Edge{Child: n, Dir: Down})
	}
	return nil
}

// PathSwitches returns the switch nodes visited by a circuit from src to dst,
// in order from the switch above the source leaf, through the LCA, down to
// the switch above the destination leaf.
func (t *Tree) PathSwitches(src, dst int) ([]Node, error) {
	edges, err := t.PathEdges(src, dst)
	if err != nil {
		return nil, err
	}
	// Every edge touches the parent of its child node; walking the edge list
	// in order, the distinct parents give the switch sequence (the LCA is the
	// parent of both the last up edge and the first down edge, hence the
	// consecutive-duplicate suppression).
	var sws []Node
	seen := Node(0)
	for _, e := range edges {
		p := t.Parent(e.Child)
		if p != seen {
			sws = append(sws, p)
			seen = p
		}
	}
	return sws, nil
}

// HopCount returns the number of switches on the circuit from src to dst.
// The paper bounds this by O(log N); tests assert HopCount <= 2*Levels()-1.
func (t *Tree) HopCount(src, dst int) (int, error) {
	sws, err := t.PathSwitches(src, dst)
	if err != nil {
		return 0, err
	}
	return len(sws), nil
}

// EachSwitch calls fn for every internal node, in increasing (BFS) order.
func (t *Tree) EachSwitch(fn func(Node)) {
	for n := Node(1); int(n) < t.leaves; n++ {
		fn(n)
	}
}

// EachSwitchTopDown is EachSwitch: heap order is already a valid top-down
// (parents before children) order. It exists for readability at call sites
// that depend on that property.
func (t *Tree) EachSwitchTopDown(fn func(Node)) { t.EachSwitch(fn) }

// EachSwitchBottomUp calls fn for every internal node, children before
// parents.
func (t *Tree) EachSwitchBottomUp(fn func(Node)) {
	for n := Node(t.leaves - 1); n >= 1; n-- {
		fn(n)
	}
}

// Reflect returns the mirror image of n: the node in the same level whose
// subtree covers the reflected PE interval. Reflection maps the tree onto
// itself with left and right swapped everywhere; it is how a left-oriented
// communication set (scheduled on the mirrored PE line) maps back onto the
// physical switches.
func (t *Tree) Reflect(n Node) Node {
	d := t.Depth(n)
	first := Node(1) << d
	return first + (Node(2)<<d - 1 - n)
}

// EdgeCount returns the number of tree links, 2N-2 directed halves over
// N-1 + N-1... precisely: 2N-2 nodes have parents, so there are 2N-2 links
// and 4N-4 directed edge halves.
func (t *Tree) EdgeCount() int { return 2*t.leaves - 2 }

// EdgeIndex maps a directed edge to a dense index in [0, 2*EdgeCount()),
// usable for congestion arrays.
func (t *Tree) EdgeIndex(e Edge) int {
	base := int(e.Child) - 2 // children are nodes 2..2N-1, so 0-based is child-2
	if e.Dir == Down {
		return base + t.EdgeCount()
	}
	return base
}

// DirectedEdgeCount returns the size of the dense edge-index space.
func (t *Tree) DirectedEdgeCount() int { return 2 * t.EdgeCount() }

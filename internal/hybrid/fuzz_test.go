package hybrid

import (
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

// FuzzHybridSchedule feeds raw byte pairs to the planner as communication
// endpoints. Invalid sets (role clashes, self loops) must be rejected with
// an error; every accepted set must yield a composite schedule that
// verifies against the topology and books each PE into at most one
// communication per round.
func FuzzHybridSchedule(f *testing.F) {
	f.Add([]byte{0, 5, 3, 8, 12, 6, 14, 9}, uint8(1))
	f.Add([]byte{0, 8, 1, 9, 2, 10, 3, 11}, uint8(2))
	f.Add([]byte{15, 0, 7, 3, 2, 12}, uint8(1))
	f.Add([]byte{}, uint8(1))
	const n = 16
	tree := topology.MustNew(n)
	f.Fuzz(func(t *testing.T, pairs []byte, maxBatches uint8) {
		s := &comm.Set{N: n}
		for i := 0; i+1 < len(pairs) && len(s.Comms) < n/2; i += 2 {
			s.Comms = append(s.Comms, comm.Comm{
				Src: int(pairs[i]) % n, Dst: int(pairs[i+1]) % n,
			})
		}
		plan, err := Schedule(tree, s,
			WithMaxBatches(1+int(maxBatches%4)), WithExactBudget(5_000))
		if s.Validate() != nil {
			if err == nil {
				t.Fatalf("invalid set %v accepted", s.Comms)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid set %v rejected: %v", s.Comms, err)
		}
		if err := plan.Schedule.Verify(tree); err != nil {
			t.Fatalf("set %v: %v", s.Comms, err)
		}
		if plan.Rounds > plan.Bound {
			t.Fatalf("set %v: %d rounds exceed bound %d", s.Comms, plan.Rounds, plan.Bound)
		}
		// No PE double-booking: within one round every PE appears in at
		// most one communication, in either role. (Verify checks link
		// congestion; this is the endpoint-level claim on top.)
		for ri, round := range plan.Schedule.Rounds {
			seen := make(map[int]bool, 2*len(round))
			for _, c := range round {
				if seen[c.Src] || seen[c.Dst] {
					t.Fatalf("set %v: PE double-booked in round %d: %v", s.Comms, ri, round)
				}
				seen[c.Src], seen[c.Dst] = true, true
			}
		}
	})
}

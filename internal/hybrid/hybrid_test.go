package hybrid

import (
	"math/rand"
	"testing"

	"cst/internal/audit"
	"cst/internal/comm"
	"cst/internal/general"
	"cst/internal/obs"
	"cst/internal/power"
	"cst/internal/topology"
)

// ffComposite is the comparator the plan must never exceed: FirstFit on
// each decomposition half, phases concatenated.
func ffComposite(t *testing.T, tr *topology.Tree, s *comm.Set) int {
	t.Helper()
	right, leftMirrored := comm.Decompose(s)
	total := 0
	for _, half := range []*comm.Set{right, leftMirrored} {
		if half.Len() == 0 {
			continue
		}
		ff, err := general.FirstFit(tr, half)
		if err != nil {
			t.Fatal(err)
		}
		total += ff.NumRounds()
	}
	return total
}

func TestScheduleWellNestedUsesCircuitWidth(t *testing.T) {
	tr := topology.MustNew(16)
	s := comm.MustParse("((()))(())......")
	w, err := s.Width(tr)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Schedule(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyPeel || plan.Batches != 1 || plan.ResidualComms != 0 {
		t.Fatalf("well-nested set: strategy=%s batches=%d residual=%d",
			plan.Strategy, plan.Batches, plan.ResidualComms)
	}
	if plan.Rounds != w {
		t.Fatalf("well-nested set took %d rounds, width %d", plan.Rounds, w)
	}
	if err := plan.Schedule.Verify(tr); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleBitReversal(t *testing.T) {
	tr := topology.MustNew(32)
	s, err := comm.BitReversal(32)
	if err != nil {
		t.Fatal(err)
	}
	if s.IsWellNested() {
		t.Fatal("bit reversal should cross")
	}
	plan, err := Schedule(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Schedule.Verify(tr); err != nil {
		t.Fatal(err)
	}
	if plan.Rounds > plan.FirstFitRounds {
		t.Fatalf("%d rounds exceed FirstFit %d", plan.Rounds, plan.FirstFitRounds)
	}
	if plan.Rounds > plan.Bound {
		t.Fatalf("%d rounds exceed declared bound %d", plan.Rounds, plan.Bound)
	}
	if plan.Rounds < plan.Width {
		t.Fatalf("%d rounds below the width lower bound %d", plan.Rounds, plan.Width)
	}
	if plan.Report == nil || plan.Report.TotalUnits() == 0 {
		t.Fatal("composite power bill missing")
	}
}

func TestScheduleMixedOrientations(t *testing.T) {
	tr := topology.MustNew(16)
	// Two right comms, two left comms, pairwise crossing within each
	// orientation half on purpose.
	s := comm.NewSet(16,
		comm.Comm{Src: 0, Dst: 5}, comm.Comm{Src: 3, Dst: 8},
		comm.Comm{Src: 12, Dst: 6}, comm.Comm{Src: 14, Dst: 9})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := Schedule(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Schedule.Verify(tr); err != nil {
		t.Fatal(err)
	}
	if plan.Rounds > plan.FirstFitRounds {
		t.Fatalf("%d rounds exceed FirstFit %d", plan.Rounds, plan.FirstFitRounds)
	}
	// Both orientations must appear in the composite.
	lefts, rights := 0, 0
	for _, round := range plan.Schedule.Rounds {
		for _, c := range round {
			if c.RightOriented() {
				rights++
			} else {
				lefts++
			}
		}
	}
	if lefts != 2 || rights != 2 {
		t.Fatalf("composite schedules %d right / %d left comms, want 2/2", rights, lefts)
	}
}

func TestScheduleEmptySet(t *testing.T) {
	tr := topology.MustNew(8)
	plan, err := Schedule(tr, comm.NewSet(8))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds != 0 || plan.Bound != 0 {
		t.Fatalf("empty set: rounds=%d bound=%d", plan.Rounds, plan.Bound)
	}
}

func TestScheduleRejectsInvalid(t *testing.T) {
	tr := topology.MustNew(8)
	if _, err := Schedule(tr, comm.NewSet(8, comm.Comm{Src: 1, Dst: 1})); err == nil {
		t.Fatal("self loop accepted")
	}
	if _, err := Schedule(tr, comm.NewSet(16, comm.Comm{Src: 0, Dst: 9})); err == nil {
		t.Fatal("leaf-count mismatch accepted")
	}
}

// The satellite differential suite: on 500 seeded arbitrary two-sided
// sets, the hybrid plan verifies, respects the width lower bound, never
// exceeds its declared bound, and never exceeds the FirstFit comparator.
func TestDifferentialHybridVsFirstFit(t *testing.T) {
	tr := topology.MustNew(32)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		s, err := comm.RandomTwoSided(rng, 32, 1+rng.Intn(16))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Schedule(tr, s)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, s.Comms, err)
		}
		if err := plan.Schedule.Verify(tr); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, s.Comms, err)
		}
		ff := ffComposite(t, tr, s)
		if plan.Rounds > ff {
			t.Fatalf("trial %d (%v): hybrid %d rounds > FirstFit %d",
				trial, s.Comms, plan.Rounds, ff)
		}
		if plan.Rounds > plan.Bound {
			t.Fatalf("trial %d: %d rounds > declared bound %d", trial, plan.Rounds, plan.Bound)
		}
		if plan.Rounds < plan.Width {
			t.Fatalf("trial %d: %d rounds < width %d", trial, plan.Rounds, plan.Width)
		}
	}
}

// The composite trace must replay cleanly through the auditor: the bound
// monitor sees Rounds <= Bound, the independent ledger re-bills the same
// power the plan reports (stateful mode holds circuits, so every traced
// config change is a genuine one), and no violation fires.
func TestAuditBillsComposite(t *testing.T) {
	tr := topology.MustNew(32)
	aud := audit.New(audit.Config{})
	tracer := obs.NewTracer(nil, 64)
	tracer.SetSink(aud.Observe)
	s, err := comm.BitReversal(32)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Schedule(tr, s, WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	runs := aud.Runs()
	if len(runs) != 1 {
		t.Fatalf("audited %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.Engine != Engine {
		t.Fatalf("audited engine %q", r.Engine)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("violations on a clean composite: %v", r.Violations)
	}
	if r.Rounds != plan.Rounds {
		t.Fatalf("audit saw %d rounds, plan has %d", r.Rounds, plan.Rounds)
	}
	if r.Width != plan.Bound {
		t.Fatalf("audit bound %d, plan bound %d", r.Width, plan.Bound)
	}
	if got, want := r.Ledger.TotalUnits(), plan.Report.TotalUnits(); got != want {
		t.Fatalf("audit re-billed %d units, plan reports %d", got, want)
	}
}

// A trace claiming more rounds than its declared bound must raise the
// hybrid bound violation.
func TestAuditFlagsBoundOverrun(t *testing.T) {
	aud := audit.New(audit.Config{})
	aud.Observe(obs.Event{Type: "run.start", Engine: Engine, N: 2, Mode: "stateful"})
	for i := 0; i < 3; i++ {
		aud.Observe(obs.Event{Type: "round.start", Engine: Engine, Round: i})
		aud.Observe(obs.Event{Type: "round.done", Engine: Engine, Round: i, N: 1})
	}
	aud.Observe(obs.Event{Type: "run.done", Engine: Engine, Width: 2, N: 3})
	runs := aud.Runs()
	if len(runs) != 1 {
		t.Fatalf("audited %d runs", len(runs))
	}
	found := false
	for _, v := range runs[0].Violations {
		if v.Kind == audit.KindHybridBound {
			found = true
		}
	}
	if !found {
		t.Fatalf("bound overrun not flagged; violations: %v", runs[0].Violations)
	}
}

func TestStatelessModeBillsEveryRound(t *testing.T) {
	tr := topology.MustNew(16)
	s, err := comm.BitReversal(16)
	if err != nil {
		t.Fatal(err)
	}
	stateful, err := Schedule(tr, s, WithMode(power.Stateful))
	if err != nil {
		t.Fatal(err)
	}
	stateless, err := Schedule(tr, s, WithMode(power.Stateless))
	if err != nil {
		t.Fatal(err)
	}
	if stateless.Report.TotalUnits() < stateful.Report.TotalUnits() {
		t.Fatalf("stateless bill %d below stateful %d",
			stateless.Report.TotalUnits(), stateful.Report.TotalUnits())
	}
}

// Package hybrid schedules *arbitrary* valid communication sets — mixed
// orientations, crossing spans — on the CST, by combining the paper's
// circuit-switched engine with conflict-graph coloring. It is the
// circuit/packet hybrid formulation (PAPERS.md: "Costly Circuits,
// Submodular Schedules"; "Better Algorithms for Hybrid Circuit and Packet
// Switching") instantiated on the CST: well-nested batches are the circuit
// half, scheduled through internal/padr in exactly their width; whatever
// crosses is the packet half, colored round-by-round with
// internal/general.
//
// The pipeline:
//
//  1. Decompose the set into a right-oriented and a left-oriented subset
//     (comm.Decompose; the left half arrives mirrored).
//  2. Peel up to MaxBatches maximal well-nested batches per orientation
//     (FIFO in source order, crossing comms deferred) and schedule each
//     through padr — the engine the paper proves round-optimal.
//  3. Color the residual (the crossing leftovers) with general.FirstFit
//     and general.Exact, keeping the better coloring; the Exact incumbent
//     is used even on budget exhaustion.
//  4. Map mirrored schedules back with sched.UnmirrorSchedule and
//     concatenate the phases with round offsets: right batches, left
//     batches, then the residual rounds last. Opposite orientations share
//     upward tree links, so phases never merge round-for-round.
//  5. Compare against a pure-coloring plan of the whole set and keep
//     whichever needs fewer rounds. This guarantees the composite never
//     exceeds the FirstFit round count, while well-nested-heavy inputs get
//     the circuit engine's optimal rounds.
//
// The chosen plan is replayed circuit-by-circuit on one set of physical
// switches (circuit.ConfigureAny — residual rounds mix orientations) for
// the composite power bill, and traced as Engine "hybrid" so
// internal/audit can independently re-bill it and check the composite
// round bound: rounds ≤ Σ batch widths + residual coloring rounds.
package hybrid

import (
	"fmt"
	"time"

	"cst/internal/circuit"
	"cst/internal/comm"
	"cst/internal/general"
	"cst/internal/obs"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/sched"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Engine is the name hybrid runs are traced and billed under.
const Engine = "hybrid"

// Strategies a plan can come from.
const (
	// StrategyPeel is the circuit-first pipeline: padr batches plus a
	// colored residual.
	StrategyPeel = "peel"
	// StrategyColoring is the pure conflict-coloring fallback; it wins on
	// crossing-heavy sets where peeling buys nothing.
	StrategyColoring = "coloring"
)

// DefaultExactBudget is the default branch-and-bound node budget for the
// residual colorings. Exhaustion is not a failure: the incumbent is used.
const DefaultExactBudget = 200_000

// DefaultMaxBatches is the default number of well-nested batches peeled
// per orientation. One batch per orientation keeps the peel plan inside
// the width(right)+width(leftMirrored)+χ(residual) bound; more batches can
// help width-skewed sets but each adds its own width to the round total.
const DefaultMaxBatches = 1

type config struct {
	mode        power.Mode
	exactBudget int
	maxBatches  int
	tracer      *obs.Tracer
	span        obs.SpanContext
}

// Option configures Schedule.
type Option func(*config)

// WithMode selects the power accounting mode for the composite bill
// (default power.Stateful: holding a connection across rounds is free).
func WithMode(m power.Mode) Option { return func(c *config) { c.mode = m } }

// WithExactBudget bounds the residual branch-and-bound search; <= 0 keeps
// DefaultExactBudget.
func WithExactBudget(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.exactBudget = n
		}
	}
}

// WithMaxBatches bounds how many well-nested batches are peeled per
// orientation; <= 0 keeps DefaultMaxBatches.
func WithMaxBatches(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxBatches = n
		}
	}
}

// WithTracer streams the composite replay as Engine "hybrid" trace events
// (run.start, round.start, switch.config, round.done, run.done), the feed
// internal/audit bills independently.
func WithTracer(tr *obs.Tracer) Option { return func(c *config) { c.tracer = tr } }

// WithSpanContext attributes this Schedule call to a request trace: the
// pipeline stages (hybrid.decompose, hybrid.peel, hybrid.color,
// hybrid.replay) are emitted as child spans of ctx. A zero or unsampled
// context — or a nil tracer — is inert.
func WithSpanContext(ctx obs.SpanContext) Option { return func(c *config) { c.span = ctx } }

// stageSpan emits one pipeline-stage span for a traced Schedule call.
func stageSpan(cfg *config, name string, start time.Time, n int) {
	if cfg.tracer == nil || !cfg.span.Valid() {
		return
	}
	cfg.tracer.EmitSpan(obs.SpanRecord{
		Trace: cfg.span.Trace, Span: cfg.tracer.NewSpanID(), Parent: cfg.span.Span,
		Name: name, Engine: Engine,
		Start: start, End: time.Now(), N: n,
	})
}

// Plan is the composite schedule for an arbitrary set plus the accounting
// that justifies it.
type Plan struct {
	// Schedule is the composite schedule on the original PE line; it has
	// been verified against the tree before being returned.
	Schedule *sched.Schedule
	// Rounds is the composite round count.
	Rounds int
	// Width is the full set's link width — the round lower bound.
	Width int
	// Bound is the peel pipeline's round total (Σ padr batch widths +
	// residual coloring rounds). Rounds <= Bound always holds: the chosen
	// plan is the better of the peel and coloring strategies. The audit
	// monitor re-checks this from the trace.
	Bound int
	// Strategy names the winning plan: StrategyPeel or StrategyColoring.
	Strategy string
	// Batches counts the well-nested batches scheduled through padr.
	Batches int
	// BatchRounds is the rounds contributed by those batches (= Σ widths).
	BatchRounds int
	// ResidualComms is how many communications no batch accepted.
	ResidualComms int
	// ResidualRounds is the rounds the residual coloring needed.
	ResidualRounds int
	// FirstFitRounds is the pure-FirstFit comparator on the same
	// decomposition: FirstFit(right) + FirstFit(leftMirrored) rounds.
	// Rounds <= FirstFitRounds by construction.
	FirstFitRounds int
	// Exhausted reports that at least one residual Exact search ran out of
	// budget and its incumbent was used.
	Exhausted bool
	// Report is the composite power bill: every phase replayed on one set
	// of physical switches under the configured mode.
	Report *power.Report
}

// Schedule plans an arbitrary valid communication set. The set may mix
// orientations and cross arbitrarily; it must pass comm.Validate and match
// the tree's leaf count.
func Schedule(t *topology.Tree, s *comm.Set, opts ...Option) (*Plan, error) {
	cfg := config{mode: power.Stateful, exactBudget: DefaultExactBudget, maxBatches: DefaultMaxBatches}
	for _, o := range opts {
		o(&cfg)
	}
	if t.Leaves() != s.N {
		return nil, fmt.Errorf("hybrid: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	width, err := s.Width(t)
	if err != nil {
		return nil, err
	}

	stageStart := time.Now()
	right, leftMirrored := comm.Decompose(s)
	stageSpan(&cfg, "hybrid.decompose", stageStart, s.Len())

	// Peel strategy: padr batches plus colored residual, phases in order
	// (right batches, left batches, residual last). The left phases are
	// planned on the mirrored line and mapped back.
	plan := &Plan{Width: width}
	stageStart = time.Now()
	var peelRounds [][]comm.Comm
	var residualRounds [][]comm.Comm
	for _, half := range []struct {
		set      *comm.Set
		mirrored bool
	}{{right, false}, {leftMirrored, true}} {
		batches, residual := peel(half.set, cfg.maxBatches)
		for _, b := range batches {
			eng, err := padr.New(t, b, padr.WithMode(cfg.mode))
			if err != nil {
				return nil, fmt.Errorf("hybrid: batch engine: %w", err)
			}
			res, err := eng.Run()
			if err != nil {
				return nil, fmt.Errorf("hybrid: batch run: %w", err)
			}
			bs := res.Schedule
			if half.mirrored {
				bs = sched.UnmirrorSchedule(bs)
			}
			peelRounds = append(peelRounds, bs.Rounds...)
			plan.Batches++
			plan.BatchRounds += res.Rounds
		}
		if residual.Len() > 0 {
			rs, exhausted, err := colorBest(t, residual, cfg.exactBudget)
			if err != nil {
				return nil, err
			}
			if half.mirrored {
				rs = sched.UnmirrorSchedule(rs)
			}
			residualRounds = append(residualRounds, rs.Rounds...)
			plan.ResidualComms += residual.Len()
			plan.Exhausted = plan.Exhausted || exhausted
		}
	}
	plan.ResidualRounds = len(residualRounds)
	peelRounds = append(peelRounds, residualRounds...)
	plan.Bound = len(peelRounds)
	stageSpan(&cfg, "hybrid.peel", stageStart, plan.Bound)

	// Coloring strategy: color each decomposition half whole. FirstFit is
	// always computed — it is the comparator the plan must never exceed —
	// and Exact may improve on it.
	stageStart = time.Now()
	var colorRounds [][]comm.Comm
	colorExhausted := false
	for _, half := range []struct {
		set      *comm.Set
		mirrored bool
	}{{right, false}, {leftMirrored, true}} {
		if half.set.Len() == 0 {
			continue
		}
		ff, err := general.FirstFit(t, half.set)
		if err != nil {
			return nil, err
		}
		plan.FirstFitRounds += ff.NumRounds()
		cs, exhausted, err := colorBest(t, half.set, cfg.exactBudget)
		if err != nil {
			return nil, err
		}
		if half.mirrored {
			cs = sched.UnmirrorSchedule(cs)
		}
		colorRounds = append(colorRounds, cs.Rounds...)
		colorExhausted = colorExhausted || exhausted
	}
	stageSpan(&cfg, "hybrid.color", stageStart, len(colorRounds))

	if len(colorRounds) < len(peelRounds) {
		plan.Strategy = StrategyColoring
		plan.Schedule = &sched.Schedule{Set: s.Clone(), Rounds: colorRounds}
		plan.Exhausted = colorExhausted
	} else {
		plan.Strategy = StrategyPeel
		plan.Schedule = &sched.Schedule{Set: s.Clone(), Rounds: peelRounds}
	}
	plan.Rounds = plan.Schedule.NumRounds()

	// The composite is checked against the topology before anything is
	// billed or served: merge bugs must not survive this function.
	if err := plan.Schedule.Verify(t); err != nil {
		return nil, fmt.Errorf("hybrid: composite schedule invalid: %w", err)
	}
	if plan.Rounds > plan.FirstFitRounds {
		return nil, fmt.Errorf("hybrid: %d rounds exceed the FirstFit comparator %d", plan.Rounds, plan.FirstFitRounds)
	}

	stageStart = time.Now()
	plan.Report = replay(t, plan, cfg)
	stageSpan(&cfg, "hybrid.replay", stageStart, plan.Rounds)
	return plan, nil
}

// colorBest colors a right-oriented (possibly crossing) set with FirstFit
// and budget-bounded Exact, returning whichever schedule uses fewer
// rounds. The Exact incumbent is kept on budget exhaustion — dropping it
// was the bug this package's residual path regression-tests against.
func colorBest(t *topology.Tree, s *comm.Set, budget int) (*sched.Schedule, bool, error) {
	ff, err := general.FirstFit(t, s)
	if err != nil {
		return nil, false, err
	}
	ex, exhausted, err := general.Incumbent(general.Exact(t, s, budget))
	if err != nil {
		return nil, false, err
	}
	if ex.NumRounds() < ff.NumRounds() {
		return ex, exhausted, nil
	}
	return ff, exhausted, nil
}

// peel splits a valid right-oriented set into up to maxBatches well-nested
// batches plus the residual. Each batch is built FIFO in source order: a
// communication joins unless it crosses one already accepted, so every
// batch is maximal among the communications it saw. Subsets of a valid
// right-oriented set with no crossing pair are exactly the well-nested
// sets, so each batch feeds padr directly.
func peel(s *comm.Set, maxBatches int) (batches []*comm.Set, residual *comm.Set) {
	remaining := s.Sorted()
	for len(remaining) > 0 && len(batches) < maxBatches {
		var batch, rest []comm.Comm
		for _, c := range remaining {
			crosses := false
			for _, b := range batch {
				if c.Crosses(b) {
					crosses = true
					break
				}
			}
			if crosses {
				rest = append(rest, c)
			} else {
				batch = append(batch, c)
			}
		}
		batches = append(batches, &comm.Set{N: s.N, Comms: batch})
		remaining = rest
	}
	return batches, &comm.Set{N: s.N, Comms: remaining}
}

// replay executes the chosen composite schedule circuit-by-circuit on one
// set of physical switches, billing power under the configured mode and
// emitting the Engine "hybrid" trace. Residual rounds mix orientations, so
// circuits are established with circuit.ConfigureAny. The run.done event
// carries Bound in the Width field: the audit monitor checks the traced
// round count against it.
func replay(t *topology.Tree, plan *Plan, cfg config) *power.Report {
	switches := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	tr := cfg.tracer
	trace := ""
	if cfg.span.Valid() {
		trace = cfg.span.Trace.String()
	}
	runStart := time.Now()
	if tr != nil {
		tr.Emit(obs.Event{Type: "run.start", Engine: Engine, Round: -1,
			N: plan.Schedule.Set.Len(), Mode: cfg.mode.String(), Trace: trace})
	}
	var before map[topology.Node]xbar.Config
	if tr != nil {
		before = make(map[topology.Node]xbar.Config, len(switches))
	}
	for i, round := range plan.Schedule.Rounds {
		roundStart := time.Now()
		if tr != nil {
			tr.Emit(obs.Event{Type: "round.start", Engine: Engine, Round: i})
		}
		if cfg.mode == power.Stateless {
			for _, sw := range switches {
				sw.Reset()
			}
		}
		if tr != nil {
			// Snapshot after the stateless teardown, like padr: every
			// re-established circuit is a traced (and billed) change.
			for n, sw := range switches {
				before[n] = sw.Config()
			}
		}
		for _, c := range round {
			// The schedule was verified above; a configuration failure here
			// would be a topology bug, not an input error.
			if err := circuit.ConfigureAny(t, switches, c); err != nil {
				panic(fmt.Sprintf("hybrid: replaying verified schedule: %v", err))
			}
		}
		if tr != nil {
			// Trace only genuine reconfigurations, like the engines do: the
			// events are the audit trail for the composite power bill.
			t.EachSwitch(func(n topology.Node) {
				if after := switches[n].Config(); after != before[n] {
					tr.Emit(obs.Event{Type: "switch.config", Engine: Engine,
						Round: i, Node: int(n), Config: after.String()})
				}
			})
			tr.Emit(obs.Event{Type: "round.done", Engine: Engine, Round: i,
				N: len(round), DurNS: time.Since(roundStart).Nanoseconds()})
		}
	}
	report := power.Collect(Engine, cfg.mode, plan.Rounds, t, switches)
	if tr != nil {
		tr.Emit(obs.Event{Type: "run.done", Engine: Engine, Round: -1,
			N: plan.Rounds, Width: plan.Bound,
			DurNS: time.Since(runStart).Nanoseconds(), Trace: trace})
	}
	return report
}

package audit

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/sim"
	"cst/internal/topology"
)

// runPADR executes one traced, instrumented sequential run and returns the
// trace buffer plus the registry.
func runPADR(t *testing.T, pattern string, mode power.Mode) (*bytes.Buffer, *obs.Registry) {
	t.Helper()
	s := comm.MustParse(pattern)
	tr := topology.MustNew(s.N)
	reg := obs.New()
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf, 0)
	e, err := padr.New(tr, s, padr.WithRegistry(reg), padr.WithTracer(tracer), padr.WithMode(mode))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return &buf, reg
}

// A clean sequential run must audit clean, and the replayed ledger must
// agree bit-for-bit with the engine's own power meters — the acceptance
// criterion tying cst_audit_power_units_total to cst_padr_power_units_total.
func TestCleanPADRRunAuditsClean(t *testing.T) {
	for _, mode := range []power.Mode{power.Stateful, power.Stateless} {
		t.Run(mode.String(), func(t *testing.T) {
			buf, reg := runPADR(t, "((()))(())......", mode)
			events, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			a := Replay(events, Config{})
			rep := a.Report()
			if !rep.Clean() {
				t.Fatalf("clean run audited dirty:\n%s", rep.Summary())
			}
			runs := a.Runs()
			if len(runs) != 1 {
				t.Fatalf("audited %d runs, want 1", len(runs))
			}
			run := runs[0]
			snap := reg.Snapshot()
			if got, want := int64(run.Ledger.TotalUnits()), snap.Counters["cst_padr_power_units_total"]; got != want {
				t.Errorf("ledger units = %d, meter = %d", got, want)
			}
			if got, want := int64(run.Ledger.TotalAlternations()), snap.Counters["cst_padr_alternations_total"]; got != want {
				t.Errorf("ledger alternations = %d, meter = %d", got, want)
			}
			if got, want := int64(run.Rounds), snap.Counters["cst_padr_rounds_total"]; got != want {
				t.Errorf("audited rounds = %d, meter = %d", got, want)
			}
			if run.Rounds != run.Width {
				t.Errorf("rounds %d != width %d on a Greedy run", run.Rounds, run.Width)
			}
			if run.Mode != mode.String() {
				t.Errorf("audited mode %q, want %q", run.Mode, mode.String())
			}
			if run.Leaves != 16 {
				t.Errorf("inferred %d leaves, want 16", run.Leaves)
			}
			if got, want := int64(run.Phase1Words), snap.Counters["cst_padr_phase1_words_total"]; got != want {
				t.Errorf("phase 1 words = %d, meter = %d", got, want)
			}
			if vs := a.CrossCheck("padr", snap); len(vs) != 0 {
				t.Errorf("CrossCheck disagrees on a clean run: %v", vs)
			}
		})
	}
}

// Attaching the auditor as a live tracer sink must yield the identical
// verdict as replaying the saved JSONL.
func TestLiveSinkMatchesReplay(t *testing.T) {
	s := comm.MustParse("(()())..")
	tr := topology.MustNew(s.N)
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf, 0)
	live := New(Config{})
	tracer.SetSink(live.Observe)
	e, err := padr.New(tr, s, padr.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	live.Flush()

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := Replay(events, Config{})

	lt, rt := live.Totals(), replayed.Totals()
	if lt != rt {
		t.Fatalf("live totals %+v != replayed totals %+v", lt, rt)
	}
	lr, rr := live.Runs(), replayed.Runs()
	if len(lr) != 1 || len(rr) != 1 {
		t.Fatalf("run counts: live %d, replayed %d", len(lr), len(rr))
	}
	if lr[0].Ledger.TotalUnits() != rr[0].Ledger.TotalUnits() {
		t.Errorf("ledger units diverge: live %d, replayed %d",
			lr[0].Ledger.TotalUnits(), rr[0].Ledger.TotalUnits())
	}
}

// A chaos run with a frozen switch must produce a typed violation naming
// the frozen switch and the dying round — the headline acceptance
// criterion for fault visibility.
func TestFrozenSwitchNamesCulprit(t *testing.T) {
	tree := topology.MustNew(8)
	inj := fault.New([]fault.Fault{
		{Kind: fault.FreezeSwitch, Node: 3, Run: 0, Round: 0, Duration: 64},
	})
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf, 0)
	f := sim.NewFabric(tree, sim.WithFaults(inj), sim.WithWatchdog(30*time.Millisecond),
		sim.WithTracer(tracer))
	defer f.Close()
	set := comm.MustParse("(.).(.).")
	if _, err := f.Run(set); !errors.Is(err, fault.ErrDeadline) {
		t.Fatalf("err = %v, want fault.ErrDeadline", err)
	}

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Replay(events, Config{})
	var hits []Violation
	for _, v := range a.Violations() {
		if v.Kind == KindRunError {
			hits = append(hits, v)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("got %d run-error violations, want 1: %v", len(hits), a.Violations())
	}
	v := hits[0]
	if v.Node != 3 {
		t.Errorf("violation names node %d, want frozen switch 3", v.Node)
	}
	if v.Round != 0 {
		t.Errorf("violation names round %d, want 0", v.Round)
	}
	if v.Engine != "sim" {
		t.Errorf("violation names engine %q, want sim", v.Engine)
	}
	if !strings.Contains(v.Error(), "node 3") {
		t.Errorf("rendered violation %q does not name the switch", v.Error())
	}
}

// synth builds a minimal synthetic padr trace: run.start, phase1.done,
// rounds of word/config events, run.done. mutate edits the canned events
// before replay.
func synth(rounds, width, leaves int) []obs.Event {
	ts := int64(1_000_000)
	var out []obs.Event
	emit := func(e obs.Event) {
		ts += 1000
		e.TS = ts
		out = append(out, e)
	}
	emit(obs.Event{Type: "run.start", Engine: "padr", Round: -1, N: 2, Mode: "stateful"})
	emit(obs.Event{Type: "phase1.done", Engine: "padr", Round: -1, N: 2*leaves - 2, Width: width, DurNS: 10})
	for r := 0; r < rounds; r++ {
		emit(obs.Event{Type: "round.start", Engine: "padr", Round: r})
		// One word per link: parent node u -> children 2u, 2u+1.
		for u := 1; u < leaves; u++ {
			emit(obs.Event{Type: "word.send", Engine: "padr", Round: r, Node: u, Child: 2 * u, Word: "[s,null]"})
			emit(obs.Event{Type: "word.send", Engine: "padr", Round: r, Node: u, Child: 2*u + 1, Word: "[null,null]"})
		}
		emit(obs.Event{Type: "round.done", Engine: "padr", Round: r, N: 1, DurNS: 5000})
	}
	emit(obs.Event{Type: "run.done", Engine: "padr", Round: -1, N: rounds, Width: width, DurNS: 50_000})
	return out
}

// The Theorem 4/5 monitor must flag a run whose round count disagrees with
// its width.
func TestMonitorRoundCount(t *testing.T) {
	a := Replay(synth(3, 2, 4), Config{})
	if !hasKind(a.Violations(), KindRoundCount) {
		t.Fatalf("3 rounds for width 2: no round-count violation: %v", a.Violations())
	}
	if a2 := Replay(synth(2, 2, 4), Config{}); hasKind(a2.Violations(), KindRoundCount) {
		t.Fatalf("2 rounds for width 2 flagged: %v", a2.Violations())
	}
	// RoundSlack admits the conservative rule's overshoot.
	if a3 := Replay(synth(3, 2, 4), Config{Limits: Limits{RoundSlack: 1}}); hasKind(a3.Violations(), KindRoundCount) {
		t.Fatalf("slack 1 still flags 3 rounds for width 2: %v", a3.Violations())
	}
}

// The word-budget monitors must flag Phase 1 and Phase 2 word counts that
// break the one-word-per-link budget.
func TestMonitorWordBudgets(t *testing.T) {
	ev := synth(2, 2, 4)
	for i := range ev {
		if ev[i].Type == "phase1.done" {
			ev[i].N = 99
		}
	}
	if a := Replay(ev, Config{}); !hasKind(a.Violations(), KindPhase1Budget) {
		t.Fatalf("inflated phase 1 words not flagged: %v", a.Violations())
	}

	ev = synth(2, 2, 4)
	extra := obs.Event{Type: "word.send", Engine: "padr", Round: 0, Node: 1, Child: 2,
		Word: "[null,null]", TS: ev[3].TS + 1}
	// Splice an extra word into round 0, before its round.done.
	for i, e := range ev {
		if e.Type == "round.done" && e.Round == 0 {
			ev = append(ev[:i], append([]obs.Event{extra}, ev[i:]...)...)
			break
		}
	}
	if a := Replay(ev, Config{}); !hasKind(a.Violations(), KindPhase2Budget) {
		t.Fatalf("extra round word not flagged: %v", a.Violations())
	}
}

// The Theorem 8 and Lemma 6–7 monitors must flag a switch that thrashes
// its configuration far past the per-switch envelope.
func TestMonitorSwitchThrash(t *testing.T) {
	ev := synth(2, 2, 4)
	var spliced []obs.Event
	for _, e := range ev {
		spliced = append(spliced, e)
		if e.Type == "round.start" {
			// 40 alternating reconfigurations of switch 1 in each round:
			// far beyond any adaptive bound for a 4-leaf tree.
			for i := 0; i < 40; i++ {
				cfg := "[l->p]"
				if i%2 == 1 {
					cfg = "[r->p]"
				}
				spliced = append(spliced, obs.Event{Type: "switch.config", Engine: "padr",
					Round: e.Round, Node: 1, Config: cfg, TS: e.TS + int64(i) + 1})
			}
		}
	}
	a := Replay(spliced, Config{})
	if !hasKind(a.Violations(), KindSwitchUnits) {
		t.Errorf("thrashed switch not flagged for units: %v", a.Violations())
	}
	if !hasKind(a.Violations(), KindPortAlternations) {
		t.Errorf("thrashed port not flagged for alternations: %v", a.Violations())
	}
	for _, v := range a.Violations() {
		if v.Node != 1 {
			t.Errorf("violation names node %d, want 1: %v", v.Node, v)
		}
	}
}

// A trace that ends mid-run must yield a truncation verdict on Flush, and
// a second run.start must seal the first run the same way.
func TestTruncatedRun(t *testing.T) {
	ev := synth(2, 2, 4)
	ev = ev[:len(ev)-1] // drop run.done
	a := Replay(ev, Config{})
	if !hasKind(a.Violations(), KindTruncatedRun) {
		t.Fatalf("truncated trace not flagged: %v", a.Violations())
	}

	back2back := append(ev, synth(2, 2, 4)...)
	a2 := Replay(back2back, Config{})
	if got := a2.Totals().Runs; got != 2 {
		t.Fatalf("back-to-back runs audited = %d, want 2", got)
	}
	if !hasKind(a2.Violations(), KindTruncatedRun) {
		t.Fatalf("first run of back-to-back pair not flagged truncated: %v", a2.Violations())
	}
}

// The ledger replay must bill the xbar semantics: establishment costs a
// unit, re-driving a port after it was ever set is an alternation, holding
// and dropping are free.
func TestLedgerBilling(t *testing.T) {
	sl := &SwitchLedger{Node: 1, FirstRound: -1, LastRound: -1}
	mustCfg := func(s string) config {
		c, err := parseConfig(s)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	sl.apply(0, mustCfg("[l->r]"))      // establish: 1 unit, 0 alternations
	sl.apply(1, mustCfg("[l->r]"))      // hold: free
	sl.apply(2, mustCfg("[p->r]"))      // re-drive r: 1 unit, 1 alternation
	sl.apply(3, mustCfg("[]"))          // drop: free
	sl.apply(4, mustCfg("[l->r p->l]")) // r again (+1 alt) and new l
	if sl.Units != 4 {
		t.Errorf("Units = %d, want 4", sl.Units)
	}
	if sl.Alternations != 2 {
		t.Errorf("Alternations = %d, want 2", sl.Alternations)
	}
	if sl.Changes != 4 {
		t.Errorf("Changes = %d, want 4 (the hold is not a change)", sl.Changes)
	}
	if sl.PortAlternations[SideR] != 2 || sl.PortAlternations[SideL] != 0 {
		t.Errorf("port alternations = %v, want r=2 l=0", sl.PortAlternations)
	}
	if sl.FirstRound != 0 || sl.LastRound != 4 {
		t.Errorf("round bracket = %d–%d, want 0–4", sl.FirstRound, sl.LastRound)
	}
}

// parseConfig must accept the xbar rendering and reject malformed strings.
func TestParseConfig(t *testing.T) {
	c, err := parseConfig("[l->r p->l]")
	if err != nil {
		t.Fatal(err)
	}
	if c[SideR] != SideL || c[SideL] != SideP {
		t.Errorf("parsed %v, want r<-l and l<-p", c)
	}
	if c2, err := parseConfig("[]"); err != nil || c2 != (config{}) {
		t.Errorf("empty config: %v, %v", c2, err)
	}
	for _, bad := range []string{"", "l->r", "[l->]", "[x->r]", "[l=r]"} {
		if _, err := parseConfig(bad); err == nil {
			t.Errorf("parseConfig(%q): want error", bad)
		}
	}
}

// criticalPath must chain the latest arrival back to the root and
// attribute per-hop deltas.
func TestCriticalPath(t *testing.T) {
	arr := make([]int64, 8)
	arr[1] = 100 // root
	arr[2], arr[3] = 150, 250
	arr[6], arr[7] = 400, 300
	cp, ok := criticalPath(5, 50, arr, 6, 400)
	if !ok {
		t.Fatal("no path")
	}
	if cp.Round != 5 || cp.TotalNS != 350 {
		t.Errorf("round %d total %d, want 5/350", cp.Round, cp.TotalNS)
	}
	wantNodes := []int{1, 3, 6}
	if len(cp.Hops) != len(wantNodes) {
		t.Fatalf("hops = %v, want nodes %v", cp.Hops, wantNodes)
	}
	wantDelta := []int64{50, 150, 150}
	for i, h := range cp.Hops {
		if h.Node != wantNodes[i] || h.DeltaNS != wantDelta[i] {
			t.Errorf("hop %d = node %d Δ%d, want node %d Δ%d",
				i, h.Node, h.DeltaNS, wantNodes[i], wantDelta[i])
		}
		if h.Level != depth(h.Node) {
			t.Errorf("hop %d level = %d, want %d", i, h.Level, depth(h.Node))
		}
	}
	if _, ok := criticalPath(0, 0, nil, 0, 0); ok {
		t.Error("empty arrivals: want ok=false")
	}
}

// The Perfetto export of a real trace must be valid Chrome trace JSON with
// one named track per tree level plus the driver track.
func TestPerfettoExport(t *testing.T) {
	buf, _ := runPADR(t, "(()())..", power.Stateful)
	events, err := ReadJSONL(buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := WritePerfetto(&out, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty export")
	}
	tracks := map[string]bool{}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" && e.Name == "thread_name" {
			tracks[e.Args["name"].(string)] = true
		}
		if e.Phase == "X" {
			spans++
			if e.Dur < 0 {
				t.Errorf("span %q has negative duration", e.Name)
			}
		}
	}
	// An 8-leaf tree has levels 0..2; every level plus the driver must own
	// a named track.
	for _, want := range []string{"driver", "level 0", "level 1", "level 2"} {
		if !tracks[want] {
			t.Errorf("missing track %q (have %v)", want, tracks)
		}
	}
	if spans == 0 {
		t.Error("no duration spans in export")
	}
}

// Markdown and HTML reports must render the verdict and the ledger.
func TestReportRendering(t *testing.T) {
	buf, _ := runPADR(t, "(())..", power.Stateful)
	events, err := ReadJSONL(buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := Replay(events, Config{}).Report()
	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CLEAN", "# CST power-audit report", "| round |", "padr"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	var html bytes.Buffer
	if err := rep.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "<!DOCTYPE html>") {
		t.Error("HTML report missing doctype")
	}
	if !strings.Contains(rep.Summary(), "CLEAN") {
		t.Error("summary missing verdict")
	}
}

// The auditor must bound retained runs and violations without losing the
// aggregate counts.
func TestRetentionBounds(t *testing.T) {
	var ev []obs.Event
	for i := 0; i < 5; i++ {
		ev = append(ev, synth(3, 2, 4)...) // each run raises a round-count violation
	}
	a := Replay(ev, Config{KeepRuns: 2, KeepViolations: 3})
	if got := len(a.Runs()); got != 2 {
		t.Errorf("retained %d runs, want 2", got)
	}
	tot := a.Totals()
	if tot.Runs != 5 {
		t.Errorf("total runs = %d, want 5", tot.Runs)
	}
	if got := len(a.Violations()); got != 3 {
		t.Errorf("retained %d violations, want 3", got)
	}
	if tot.Violations != 5 || tot.DroppedViolations != 2 {
		t.Errorf("violation totals = %d/%d dropped, want 5/2", tot.Violations, tot.DroppedViolations)
	}
}

// A nil auditor must be safe to feed and query.
func TestNilAuditor(t *testing.T) {
	var a *Auditor
	a.Observe(obs.Event{Type: "run.start"})
	a.Flush()
	if a.Runs() != nil || a.Violations() != nil {
		t.Error("nil auditor returned non-nil slices")
	}
	if a.Totals() != (Totals{}) {
		t.Error("nil auditor returned non-zero totals")
	}
}

// hasKind reports whether vs contains a violation of kind k.
func hasKind(vs []Violation, k Kind) bool {
	for _, v := range vs {
		if v.Kind == k {
			return true
		}
	}
	return false
}

package audit

import (
	"fmt"
	"sort"
	"strings"
)

// Side indexes a crossbar port in the ledger's replayed switch model; the
// values mirror internal/xbar (0 = unconnected) without importing it, so the
// audit layer stays a pure trace consumer.
type Side uint8

// Port sides of the replayed crossbar model.
const (
	// SideNone marks an undriven output.
	SideNone Side = iota
	// SideL is the left-child port.
	SideL
	// SideR is the right-child port.
	SideR
	// SideP is the parent port.
	SideP
)

// parseSide maps the paper's one-letter port names back to sides.
func parseSide(s string) (Side, bool) {
	switch s {
	case "l":
		return SideL, true
	case "r":
		return SideR, true
	case "p":
		return SideP, true
	}
	return SideNone, false
}

// config is a replayed switch configuration: the input driving each output,
// indexed by output Side ([0] unused) — the audit-side mirror of
// xbar.Config reconstructed from the traced "[l->r p->l]" strings.
type config [4]Side

// parseConfig decodes a traced configuration string such as "[l->r p->l]"
// ("[]" when empty) into the driver table.
func parseConfig(s string) (config, error) {
	var c config
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return c, fmt.Errorf("audit: config %q: want [...]", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return c, nil
	}
	for _, part := range strings.Fields(body) {
		in, out, ok := strings.Cut(part, "->")
		if !ok {
			return c, fmt.Errorf("audit: config %q: bad connection %q", s, part)
		}
		is, ok1 := parseSide(in)
		os, ok2 := parseSide(out)
		if !ok1 || !ok2 || os == SideNone || is == SideNone {
			return c, fmt.Errorf("audit: config %q: bad connection %q", s, part)
		}
		c[os] = is
	}
	return c, nil
}

// SwitchLedger is the per-switch row of the power-audit ledger: what one
// switch spent over one run, reconstructed purely from its switch.config
// trace events. On a clean stateful run Units and Alternations must equal
// the engine's own xbar meters (cst_padr_power_units_total /
// cst_padr_alternations_total); tests and Auditor.CrossCheck pin this.
type SwitchLedger struct {
	// Node is the switch's tree node.
	Node int
	// Changes counts switch.config events: configurations that actually
	// changed (the Theorem 8 quantity).
	Changes int
	// Units counts power units: connections established that were not
	// already held (§2.3 model, one unit each).
	Units int
	// Alternations counts output-driver changes after the first
	// establishment, summed over the three outputs (the Lemma 6–7 quantity).
	Alternations int
	// PortAlternations holds the per-output alternation counts behind
	// Alternations, indexed by Side ([0] unused) — what the Lemma 6–7
	// monitor bounds per port.
	PortAlternations [4]int
	// FirstRound and LastRound bracket the rounds in which this switch
	// reconfigured (-1 when it never did; Phase 1 counts as -1).
	FirstRound, LastRound int

	// replay state
	cur     config
	everSet [4]bool
}

// apply diffs the switch's traced configuration against the previous one,
// billing units and alternations exactly as xbar.Switch.Connect does:
// establishing a connection costs one unit; re-driving an output that was
// ever driven before by a different input is one alternation; dropping a
// connection is free.
func (sl *SwitchLedger) apply(round int, next config) {
	changed := false
	for out := SideL; out <= SideP; out++ {
		was, now := sl.cur[out], next[out]
		if was == now {
			continue
		}
		changed = true
		if now != SideNone {
			sl.Units++
			if sl.everSet[out] {
				sl.Alternations++
				sl.PortAlternations[out]++
			}
			sl.everSet[out] = true
		}
	}
	if changed {
		sl.Changes++
		if sl.FirstRound == -1 {
			sl.FirstRound = round
		}
		sl.LastRound = round
	}
	sl.cur = next
}

// roundReset models a Stateless engine's free teardown at the start of each
// round: the configuration clears, the meters and everSet memory persist.
func (sl *SwitchLedger) roundReset() { sl.cur = config{} }

// RoundLedger is the per-round row of the ledger: what one Phase 2 round
// cost across the whole tree.
type RoundLedger struct {
	// Round is the 0-based Phase 2 round.
	Round int
	// Comms is the number of communications performed (round.done's count).
	Comms int
	// Words and ActiveWords count the round's Phase 2 control words and the
	// non-[null,null] subset.
	Words, ActiveWords int
	// Configs counts switch.config events in the round; Units the power
	// units they spent. A round with Configs == 0 is quiescent: the fabric
	// held every circuit for free.
	Configs, Units int
	// DurNS is the round's wall time (round.done's measurement).
	DurNS int64
}

// Quiescent reports whether the round reconfigured nothing.
func (r RoundLedger) Quiescent() bool { return r.Configs == 0 }

// Ledger is the complete power-audit ledger of one run: per-switch and
// per-round attribution of every configuration change the trace recorded.
type Ledger struct {
	// Switches maps tree node → per-switch ledger row.
	Switches map[int]*SwitchLedger
	// Rounds holds one row per Phase 2 round, in order.
	Rounds []RoundLedger
}

// newLedger builds an empty ledger.
func newLedger() *Ledger {
	return &Ledger{Switches: map[int]*SwitchLedger{}}
}

// switchRow returns (creating on first use) the row for node.
func (l *Ledger) switchRow(node int) *SwitchLedger {
	sl := l.Switches[node]
	if sl == nil {
		sl = &SwitchLedger{Node: node, FirstRound: -1, LastRound: -1}
		l.Switches[node] = sl
	}
	return sl
}

// TotalUnits sums power units over all switches.
func (l *Ledger) TotalUnits() int {
	total := 0
	for _, sl := range l.Switches {
		total += sl.Units
	}
	return total
}

// TotalAlternations sums alternations over all switches.
func (l *Ledger) TotalAlternations() int {
	total := 0
	for _, sl := range l.Switches {
		total += sl.Alternations
	}
	return total
}

// TotalChanges sums configuration changes over all switches.
func (l *Ledger) TotalChanges() int {
	total := 0
	for _, sl := range l.Switches {
		total += sl.Changes
	}
	return total
}

// MaxUnits returns the hottest per-switch unit count — the number Theorem 8
// bounds by O(1).
func (l *Ledger) MaxUnits() int {
	maxu := 0
	for _, sl := range l.Switches {
		if sl.Units > maxu {
			maxu = sl.Units
		}
	}
	return maxu
}

// QuiescentRounds counts rounds in which no switch reconfigured.
func (l *Ledger) QuiescentRounds() int {
	n := 0
	for _, r := range l.Rounds {
		if r.Quiescent() {
			n++
		}
	}
	return n
}

// SortedSwitches returns the per-switch rows sorted by units descending,
// then node ascending — the rendering order of the ledger tables.
func (l *Ledger) SortedSwitches() []*SwitchLedger {
	out := make([]*SwitchLedger, 0, len(l.Switches))
	for _, sl := range l.Switches {
		out = append(out, sl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Units != out[j].Units {
			return out[i].Units > out[j].Units
		}
		return out[i].Node < out[j].Node
	})
	return out
}

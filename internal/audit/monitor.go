package audit

import (
	"fmt"
	"math/bits"
)

// Kind names the paper invariant (or failure class) a Violation reports
// against.
type Kind string

// The monitored invariants. Each kind names the paper statement it pins.
const (
	// KindRoundCount fires when a completed run took a number of rounds
	// different from the set's link width (Theorems 4–5: a width-w set
	// schedules in exactly w rounds).
	KindRoundCount Kind = "theorem-4/5:round-count"
	// KindSwitchUnits fires when one switch spent more power units over a
	// run than the configured bound (Theorem 8: O(1) configuration changes
	// per switch; each change costs at most 3 units).
	KindSwitchUnits Kind = "theorem-8:switch-units"
	// KindPortAlternations fires when one output port's driver alternated
	// more often than the configured bound (Lemmas 6–7: each port serves
	// two contiguous demand runs, so its alternation count is constant).
	KindPortAlternations Kind = "lemma-6/7:port-alternations"
	// KindPhase1Budget fires when the Phase 1 convergecast carried a number
	// of words different from the one-word-per-link budget 2N−2 (Theorem
	// 5's constant-words efficiency claim).
	KindPhase1Budget Kind = "phase-1:word-budget"
	// KindPhase2Budget fires when a Phase 2 round carried a number of
	// control words different from the one-word-per-link broadcast budget
	// 2N−2.
	KindPhase2Budget Kind = "phase-2:word-budget"
	// KindHybridBound fires when a hybrid composite run took more rounds
	// than the bound its planner declared (Σ padr batch widths + residual
	// coloring rounds, carried in run.done's Width field). The composite
	// may legitimately run *under* the bound — the planner keeps the best
	// of its strategies — so only the upper direction is a violation.
	KindHybridBound Kind = "hybrid:round-bound"
	// KindRunError mirrors a traced run.error event: the engine itself
	// declared the run dead (typically a typed *fault.Error naming the
	// dying switch and round — the chaos-visibility path).
	KindRunError Kind = "run:error"
	// KindMeterMismatch fires when the replayed ledger disagrees with the
	// engine's own cumulative power meters (CrossCheck).
	KindMeterMismatch Kind = "ledger:meter-mismatch"
	// KindTruncatedRun fires when a run's events stop without a run.done or
	// run.error — a stalled engine, a killed process, or a trace ring that
	// evicted the tail.
	KindTruncatedRun Kind = "run:truncated"
)

// Violation is one detected breach of a paper invariant. It implements
// error so monitors can surface violations through ordinary error plumbing.
type Violation struct {
	// Kind names the broken invariant.
	Kind Kind
	// Engine is the engine whose run broke it ("padr", "sim", "online").
	Engine string
	// Run is the auditor-assigned index of the offending run.
	Run int64
	// Round is the offending Phase 2 round, -1 when run-scoped or Phase 1.
	Round int
	// Node is the implicated tree node, 0 when not node-scoped.
	Node int
	// Got and Want quantify the breach where meaningful (rounds vs width,
	// units vs bound, ...); 0/0 otherwise.
	Got, Want int64
	// Msg is the human-readable account.
	Msg string
}

// Error renders e.g.
// "audit: theorem-8:switch-units: padr run 3 round 2 node 5: 9 > bound 6: ...".
func (v Violation) Error() string {
	s := fmt.Sprintf("audit: %s: %s run %d", v.Kind, v.Engine, v.Run)
	if v.Round >= 0 {
		s += fmt.Sprintf(" round %d", v.Round)
	}
	if v.Node != 0 {
		s += fmt.Sprintf(" node %d", v.Node)
	}
	return s + ": " + v.Msg
}

// Limits bounds the theorem monitors. The zero value selects defaults that
// hold on every clean run the repo's engines produce: the paper proves O(1)
// per-switch spend, but the Greedy selection rule's measured envelope grows
// ≈log N on adversarial random sets (DESIGN.md §6, experiments E12/E14), so
// the default per-switch bounds scale with log2 of the tree size rather
// than a constant. Set explicit values to audit against the strict
// conservative-rule constants.
type Limits struct {
	// RoundSlack is how many rounds beyond the width a run may take before
	// the Theorem 4/5 monitor fires (0 for the Greedy rule, which is
	// round-exact; the Conservative rule needs slack — see
	// padr.Conservative).
	RoundSlack int
	// MaxUnitsPerSwitch bounds one switch's power units per run; <= 0
	// selects DefaultUnitsBound(leaves).
	MaxUnitsPerSwitch int
	// MaxAlternationsPerPort bounds one output port's driver alternations
	// per run; <= 0 selects DefaultAlternationsBound(leaves).
	MaxAlternationsPerPort int
}

// DefaultUnitsBound is the default Theorem 8 envelope for a tree with the
// given number of leaves: 3 units per configuration change times the
// measured worst-case ≈(log2 N + 2) changes of the Greedy rule.
func DefaultUnitsBound(leaves int) int {
	return 3 * (log2ceil(leaves) + 2)
}

// DefaultAlternationsBound is the default Lemma 6–7 per-port envelope for a
// tree with the given number of leaves.
func DefaultAlternationsBound(leaves int) int {
	return log2ceil(leaves) + 2
}

// log2ceil returns ceil(log2(n)), 0 for n <= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// unitsBound resolves the effective per-switch unit bound.
func (l Limits) unitsBound(leaves int) int {
	if l.MaxUnitsPerSwitch > 0 {
		return l.MaxUnitsPerSwitch
	}
	return DefaultUnitsBound(leaves)
}

// altBound resolves the effective per-port alternation bound.
func (l Limits) altBound(leaves int) int {
	if l.MaxAlternationsPerPort > 0 {
		return l.MaxAlternationsPerPort
	}
	return DefaultAlternationsBound(leaves)
}

// checkRun runs every theorem monitor against a finished run and returns
// the violations. Monitors needing the tree size are skipped when the trace
// never revealed it (leaves == 0: no Phase 2 words were observed).
func checkRun(r *RunAudit, lim Limits) []Violation {
	var out []Violation
	v := func(kind Kind, round, node int, got, want int64, format string, args ...any) {
		out = append(out, Violation{
			Kind: kind, Engine: r.Engine, Run: r.Index,
			Round: round, Node: node, Got: got, Want: want,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	if r.Err != "" {
		v(KindRunError, r.ErrRound, r.ErrNode, 0, 0, "engine reported the run dead: %s", r.Err)
		// The run died; the remaining monitors would only re-report the
		// damage (a half-finished schedule always misses its width).
		return out
	}
	if !r.done {
		v(KindTruncatedRun, -1, 0, 0, 0,
			"trace ends mid-run: %d rounds observed, no run.done or run.error", r.Rounds)
		return out
	}

	// Hybrid composite runs obey a different contract: rounds are bounded
	// above by the planner's declared Σ batch widths + residual coloring
	// rounds (run.done Width), not pinned to the set's link width, and the
	// word-budget/per-switch monitors below do not apply — the composite
	// trace carries switch.config events only (no Phase 2 words), so the
	// leaf count inferred from the deepest traced node would be wrong.
	if r.Engine == "hybrid" {
		if r.Width > 0 && r.Rounds > r.Width {
			v(KindHybridBound, -1, 0, int64(r.Rounds), int64(r.Width),
				"composite schedule took %d rounds, declared bound %d", r.Rounds, r.Width)
		}
		return out
	}

	// Theorems 4–5: a width-w set schedules in exactly w rounds (Greedy);
	// the Conservative rule is allowed RoundSlack extra.
	if r.Width > 0 && (r.Rounds > r.Width+lim.RoundSlack || r.Rounds < r.Width) {
		v(KindRoundCount, -1, 0, int64(r.Rounds), int64(r.Width),
			"scheduled in %d rounds for a width-%d set", r.Rounds, r.Width)
	}

	// Phase 1 word budget: exactly one convergecast word per link.
	if r.Leaves > 0 && r.Phase1Words > 0 && r.Phase1Words != 2*r.Leaves-2 {
		v(KindPhase1Budget, -1, 0, int64(r.Phase1Words), int64(2*r.Leaves-2),
			"Phase 1 carried %d words on a %d-leaf tree (budget %d)",
			r.Phase1Words, r.Leaves, 2*r.Leaves-2)
	}

	// Phase 2 word budget: each broadcast wave is one word per link.
	if r.Leaves > 0 {
		for _, rl := range r.Ledger.Rounds {
			if rl.Words != 0 && rl.Words != 2*r.Leaves-2 {
				v(KindPhase2Budget, rl.Round, 0, int64(rl.Words), int64(2*r.Leaves-2),
					"round carried %d words on a %d-leaf tree (budget %d)",
					rl.Words, r.Leaves, 2*r.Leaves-2)
			}
		}
	}

	// Theorem 8 and Lemmas 6–7: per-switch spend and per-port alternations.
	if r.Leaves > 0 {
		ub, ab := lim.unitsBound(r.Leaves), lim.altBound(r.Leaves)
		for _, sl := range r.Ledger.SortedSwitches() {
			if sl.Units > ub {
				v(KindSwitchUnits, -1, sl.Node, int64(sl.Units), int64(ub),
					"switch spent %d power units (bound %d for %d leaves)",
					sl.Units, ub, r.Leaves)
			}
			for port := SideL; port <= SideP; port++ {
				if a := sl.PortAlternations[port]; a > ab {
					v(KindPortAlternations, -1, sl.Node, int64(a), int64(ab),
						"output %s alternated drivers %d times (bound %d for %d leaves)",
						[4]string{"-", "l", "r", "p"}[port], a, ab, r.Leaves)
				}
			}
		}
	}
	return out
}

package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cst/internal/obs"
)

// ReadJSONL decodes a JSONL trace stream (the format Tracer.WriteJSONL and
// the /trace endpoint produce) into events, in order. Blank lines are
// skipped; a malformed line aborts with its line number so a truncated
// download fails loudly instead of auditing half a trace.
func ReadJSONL(r io.Reader) ([]obs.Event, error) {
	var out []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("audit: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit: reading trace: %w", err)
	}
	return out, nil
}

// Replay feeds a saved trace through a fresh auditor and returns it,
// flushed: every run in the trace — including one the trace truncates —
// has a verdict.
func Replay(events []obs.Event, cfg Config) *Auditor {
	a := New(cfg)
	for _, e := range events {
		a.Observe(e)
	}
	a.Flush()
	return a
}

package audit

import (
	"encoding/json"
	"fmt"
	"io"

	"cst/internal/obs"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// Format"), the subset Perfetto and chrome://tracing both load.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

// enginePID maps engines to stable Perfetto process IDs.
func enginePID(engine string) int {
	switch engine {
	case "padr":
		return 1
	case "sim":
		return 2
	case "online":
		return 3
	case "serve":
		return 4
	case "hybrid":
		return 5
	default:
		return 9
	}
}

// WritePerfetto renders a trace as Chrome trace-event JSON loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each engine becomes a
// process; thread 0 carries the driver's spans (Phase 1, rounds, runs) and
// thread d+1 carries level-d switch instants — one track per tree level, so
// a wave reads as a diagonal cascade down the track list. Word sends and
// switch reconfigurations are instant events; spans derive from the *.done
// events' measured durations.
func WritePerfetto(w io.Writer, events []obs.Event) error {
	var out []chromeEvent
	us := func(ns int64) float64 { return float64(ns) / 1e3 }

	type track struct{ pid, tid int }
	named := map[track]string{}
	procs := map[int]string{}
	add := func(ev chromeEvent) { out = append(out, ev) }
	ensure := func(engine string, tid int, name string) track {
		t := track{enginePID(engine), tid}
		if _, ok := procs[t.pid]; !ok {
			procs[t.pid] = engine
		}
		if _, ok := named[t]; !ok {
			named[t] = name
		}
		return t
	}

	runIdx := map[string]int{}
	for _, e := range events {
		switch e.Type {
		case "run.start":
			runIdx[e.Engine]++
			t := ensure(e.Engine, 0, "driver")
			add(chromeEvent{Name: fmt.Sprintf("run %d start", runIdx[e.Engine]-1),
				Phase: "i", TS: us(e.TS), PID: t.pid, TID: t.tid, Scope: "p",
				Args: map[string]any{"comms": e.N, "mode": e.Mode}})
		case "phase1.done":
			t := ensure(e.Engine, 0, "driver")
			add(chromeEvent{Name: "phase1", Phase: "X",
				TS: us(e.TS - e.DurNS), Dur: us(e.DurNS), PID: t.pid, TID: t.tid,
				Args: map[string]any{"words": e.N, "width": e.Width}})
		case "round.done":
			t := ensure(e.Engine, 0, "driver")
			add(chromeEvent{Name: fmt.Sprintf("round %d", e.Round), Phase: "X",
				TS: us(e.TS - e.DurNS), Dur: us(e.DurNS), PID: t.pid, TID: t.tid,
				Args: map[string]any{"comms": e.N}})
		case "run.done":
			t := ensure(e.Engine, 0, "driver")
			add(chromeEvent{Name: fmt.Sprintf("run %d", runIdx[e.Engine]-1), Phase: "X",
				TS: us(e.TS - e.DurNS), Dur: us(e.DurNS), PID: t.pid, TID: t.tid,
				Args: map[string]any{"width": e.Width}})
		case "run.error":
			t := ensure(e.Engine, 0, "driver")
			add(chromeEvent{Name: "run.error", Phase: "i", TS: us(e.TS),
				PID: t.pid, TID: t.tid, Scope: "p",
				Args: map[string]any{"err": e.Err, "round": e.Round, "node": e.Node}})
		case "switch.config":
			d := depth(e.Node)
			t := ensure(e.Engine, d+1, fmt.Sprintf("level %d", d))
			add(chromeEvent{Name: "config " + e.Config, Phase: "i", TS: us(e.TS),
				PID: t.pid, TID: t.tid, Scope: "t",
				Args: map[string]any{"node": e.Node, "round": e.Round}})
		case "word.send":
			d := depth(e.Node)
			t := ensure(e.Engine, d+1, fmt.Sprintf("level %d", d))
			add(chromeEvent{Name: "word " + e.Word, Phase: "i", TS: us(e.TS),
				PID: t.pid, TID: t.tid, Scope: "t",
				Args: map[string]any{"node": e.Node, "child": e.Child, "round": e.Round}})
		case "span":
			// Request spans: one track per trace (tid from the trace id's low
			// bits), so a request's tree reads as nested slices on its row.
			tid := 100
			if len(e.Trace) == 16 {
				var low int
				fmt.Sscanf(e.Trace[12:], "%04x", &low)
				tid = 100 + low
			}
			t := ensure(e.Engine, tid, "trace "+e.Trace)
			add(chromeEvent{Name: e.Name, Phase: "X",
				TS: us(e.TS - e.DurNS), Dur: us(e.DurNS), PID: t.pid, TID: t.tid,
				Args: map[string]any{"trace": e.Trace, "span": e.Span,
					"parent": e.Parent, "status": e.Status, "n": e.N, "err": e.Err}})
		}
	}

	// Metadata last: name every process and track we actually emitted to.
	for pid, name := range procs {
		add(chromeEvent{Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": name}})
	}
	for t, name := range named {
		add(chromeEvent{Name: "thread_name", Phase: "M", PID: t.pid, TID: t.tid,
			Args: map[string]any{"name": name}})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{out, "ms"})
}

package audit

// CritHop is one hop of a round's critical path: the word arrival that
// gated the wave's progress into one tree level.
type CritHop struct {
	// Node is the receiving node.
	Node int
	// Level is the node's tree level (root = 0).
	Level int
	// TS is the arrival time (Unix ns).
	TS int64
	// DeltaNS is the time spent on this hop: arrival here minus arrival at
	// the parent (or minus round start for the first hop).
	DeltaNS int64
}

// RoundCritPath is the critical-path analysis of one Phase 2 round: the
// root-to-latest chain of word arrivals that bounded the round's latency.
// In the goroutine simulator the deltas are real concurrent wave latency;
// in the sequential engine they reflect traversal order, which still
// localizes where a round's time went.
type RoundCritPath struct {
	// Round is the 0-based Phase 2 round.
	Round int
	// Hops is the path, shallowest first.
	Hops []CritHop
	// TotalNS is the span from round start to the last arrival on the path.
	TotalNS int64
}

// criticalPath reconstructs a round's critical path from its word-arrival
// table (indexed by node, 0 = no arrival). The terminal node is the round's
// latest arrival — last/lastTS, tracked incrementally by the caller so no
// rescan of the table is needed; the path walks heap parents back to the
// root, attributing to each hop the delta from its parent's arrival
// (missing parents inherit the round start). Returns ok=false when the
// round carried no words.
func criticalPath(round int, startTS int64, arrivals []int64, last int, lastTS int64) (RoundCritPath, bool) {
	if last <= 0 {
		return RoundCritPath{}, false
	}
	// Walk root-ward collecting the chain of arrivals feeding the terminal
	// node. A parent with no recorded arrival (the root, whose word comes
	// from the driver) ends the walk.
	var chain []CritHop
	for n := last; n >= 1; n /= 2 {
		if n >= len(arrivals) || arrivals[n] == 0 {
			break
		}
		chain = append(chain, CritHop{Node: n, Level: depth(n), TS: arrivals[n]})
	}
	// Reverse into shallowest-first order and compute per-hop deltas.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	prev := startTS
	for i := range chain {
		d := chain[i].TS - prev
		if d < 0 {
			d = 0
		}
		chain[i].DeltaNS = d
		prev = chain[i].TS
	}
	total := lastTS - startTS
	if total < 0 {
		total = 0
	}
	return RoundCritPath{Round: round, Hops: chain, TotalNS: total}, true
}

package audit

import (
	"fmt"
	"html"
	"io"
	"strings"
	"time"
)

// Report is an immutable snapshot of an auditor's findings, ready to
// render. Build one with Auditor.Report.
type Report struct {
	// Totals holds the aggregate counters.
	Totals Totals
	// Runs holds the retained per-run audits, oldest first.
	Runs []*RunAudit
	// Violations holds the retained violations in detection order.
	Violations []Violation
}

// Report snapshots the auditor.
func (a *Auditor) Report() *Report {
	return &Report{Totals: a.Totals(), Runs: a.Runs(), Violations: a.Violations()}
}

// Clean reports whether the audit raised no violations at all.
func (r *Report) Clean() bool { return r.Totals.Violations == 0 }

// Summary renders a terse one-screen text verdict (the cstaudit default
// output).
func (r *Report) Summary() string {
	var b strings.Builder
	t := r.Totals
	verdict := "CLEAN"
	if t.Violations > 0 {
		verdict = fmt.Sprintf("%d VIOLATIONS", t.Violations)
	}
	fmt.Fprintf(&b, "audit: %s — %d events, %d runs (%d failed)\n",
		verdict, t.Events, t.Runs, t.FailedRuns)
	fmt.Fprintf(&b, "ledger: %d power units, %d alternations, %d config changes, %d quiescent rounds\n",
		t.Units, t.Alternations, t.Changes, t.QuiescentRounds)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  ✗ %s\n", v.Error())
	}
	if t.DroppedViolations > 0 {
		fmt.Fprintf(&b, "  … %d more violations not retained\n", t.DroppedViolations)
	}
	return b.String()
}

// WriteMarkdown renders the full audit report as markdown: verdict,
// aggregate ledger, per-run tables (hottest switches, per-round costs,
// critical-path level attribution) and the violation list.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	t := r.Totals
	b.WriteString("# CST power-audit report\n\n")
	if r.Clean() {
		b.WriteString("**Verdict: CLEAN** — every monitored theorem held.\n\n")
	} else {
		fmt.Fprintf(&b, "**Verdict: %d violation(s)** — details below.\n\n", t.Violations)
	}
	fmt.Fprintf(&b, "| events | runs | failed | power units | alternations | config changes | quiescent rounds |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
	fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d | %d |\n\n",
		t.Events, t.Runs, t.FailedRuns, t.Units, t.Alternations, t.Changes, t.QuiescentRounds)

	if len(r.Violations) > 0 {
		b.WriteString("## Violations\n\n")
		b.WriteString("| kind | engine | run | round | node | got | bound |\n|---|---|---|---|---|---|---|\n")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %d | %d |\n",
				v.Kind, v.Engine, v.Run, v.Round, v.Node, v.Got, v.Want)
		}
		b.WriteString("\n")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "- %s\n", v.Error())
		}
		b.WriteString("\n")
		if t.DroppedViolations > 0 {
			fmt.Fprintf(&b, "…plus %d violation(s) not retained.\n\n", t.DroppedViolations)
		}
	}

	for _, run := range r.Runs {
		fmt.Fprintf(&b, "## Run %d — %s\n\n", run.Index, run.Engine)
		status := "ok"
		if run.Err != "" {
			status = "FAILED: " + run.Err
		} else if !runDone(run) {
			status = "TRUNCATED"
		}
		fmt.Fprintf(&b, "- status: %s\n- mode: %s, comms: %d, width: %d, rounds: %d, leaves: %d\n",
			status, orDash(run.Mode), run.Comms, run.Width, run.Rounds, run.Leaves)
		fmt.Fprintf(&b, "- phase 1: %d words in %v; run: %v\n",
			run.Phase1Words, time.Duration(run.Phase1DurNS), time.Duration(run.DurNS))
		fmt.Fprintf(&b, "- ledger: %d units, %d alternations, %d changes, max %d units/switch, %d quiescent round(s)\n\n",
			run.Ledger.TotalUnits(), run.Ledger.TotalAlternations(),
			run.Ledger.TotalChanges(), run.Ledger.MaxUnits(), run.Ledger.QuiescentRounds())

		if sw := run.Ledger.SortedSwitches(); len(sw) > 0 {
			b.WriteString("| switch | units | changes | alternations | l/r/p | rounds |\n|---|---|---|---|---|---|\n")
			for i, sl := range sw {
				if i == 10 {
					fmt.Fprintf(&b, "| … %d more | | | | | |\n", len(sw)-i)
					break
				}
				fmt.Fprintf(&b, "| %d | %d | %d | %d | %d/%d/%d | %d–%d |\n",
					sl.Node, sl.Units, sl.Changes, sl.Alternations,
					sl.PortAlternations[SideL], sl.PortAlternations[SideR], sl.PortAlternations[SideP],
					sl.FirstRound, sl.LastRound)
			}
			b.WriteString("\n")
		}
		if len(run.Ledger.Rounds) > 0 {
			b.WriteString("| round | comms | words | active | configs | units | dur | critical path |\n|---|---|---|---|---|---|---|---|\n")
			for _, rl := range run.Ledger.Rounds {
				fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d | %v | %s |\n",
					rl.Round, rl.Comms, rl.Words, rl.ActiveWords, rl.Configs, rl.Units,
					time.Duration(rl.DurNS), critPathFor(run, rl.Round))
			}
			b.WriteString("\n")
		}
		if len(run.LevelNS) > 0 {
			b.WriteString("Critical-path time by tree level: ")
			parts := make([]string, 0, len(run.LevelNS))
			for lvl, ns := range run.LevelNS {
				parts = append(parts, fmt.Sprintf("L%d %v", lvl, time.Duration(ns)))
			}
			b.WriteString(strings.Join(parts, ", ") + "\n\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteHTML renders the report as a self-contained HTML page (the CI chaos
// artifact): the markdown content wrapped in minimal styling, with the
// verdict color-coded.
func (r *Report) WriteHTML(w io.Writer) error {
	var md strings.Builder
	if err := r.WriteMarkdown(&md); err != nil {
		return err
	}
	color := "#0a0"
	if !r.Clean() {
		color = "#c00"
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<title>CST power-audit report</title>\n<style>\n")
	b.WriteString("body{font-family:monospace;max-width:72rem;margin:2rem auto;padding:0 1rem;background:#fafafa}\n")
	fmt.Fprintf(&b, "h1{border-bottom:3px solid %s}\n", color)
	b.WriteString("pre{background:#fff;border:1px solid #ddd;padding:1rem;overflow-x:auto}\n")
	b.WriteString("</style></head><body>\n<h1>CST power-audit report</h1>\n<pre>")
	b.WriteString(html.EscapeString(md.String()))
	b.WriteString("</pre>\n</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// runDone reports whether the run saw a terminal event (exported state is
// needed by the renderer; the field itself stays private to the auditor).
func runDone(r *RunAudit) bool { return r.done }

// Done reports whether the run reached a terminal run.done or run.error
// event (false = truncated trace).
func (r *RunAudit) Done() bool { return r.done }

// critPathFor renders a run's critical path for one round as
// "1→3→6 (1.2µs)", or "-" when none was recorded.
func critPathFor(run *RunAudit, round int) string {
	for _, cp := range run.CritPaths {
		if cp.Round != round {
			continue
		}
		nodes := make([]string, len(cp.Hops))
		for i, h := range cp.Hops {
			nodes[i] = fmt.Sprintf("%d", h.Node)
		}
		return fmt.Sprintf("%s (%v)", strings.Join(nodes, "→"), time.Duration(cp.TotalNS))
	}
	return "-"
}

// orDash substitutes "-" for an empty string in report cells.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Package audit turns the observability event stream into verdicts. It
// consumes internal/obs trace events — live through Tracer.SetSink, or
// replayed from a saved JSONL file — and maintains a per-switch × per-round
// power ledger, runs the paper's theorems as live monitors (Theorems 4–5
// round counts, Theorem 8 per-switch spend, Lemmas 6–7 port alternations,
// the Phase 1/2 word budgets), attributes per-round latency to tree levels
// along the critical path, and renders the result as markdown, HTML, or a
// Perfetto-loadable Chrome trace. It imports only internal/obs: everything
// is reconstructed from the trace, which is the point — the auditor
// re-derives the engines' accounting independently and cross-checks it
// against their own meters.
package audit

import (
	"fmt"
	"math/bits"
	"sync"

	"cst/internal/obs"
)

// Config parameterizes an Auditor. The zero value is usable: no metrics,
// default monitor limits, default run retention.
type Config struct {
	// Registry, when non-nil, receives the cst_audit_* metric series.
	Registry *obs.Registry
	// Limits bounds the theorem monitors (zero value: adaptive defaults).
	Limits Limits
	// KeepRuns bounds how many completed per-run audits are retained
	// (oldest evicted first); <= 0 selects DefaultKeepRuns. Aggregate
	// totals and violations survive eviction.
	KeepRuns int
	// KeepViolations bounds the retained violation list; <= 0 selects
	// DefaultKeepViolations. The cst_audit_violations_total counter keeps
	// the true count.
	KeepViolations int
}

// DefaultKeepRuns is the default bound on retained per-run audits.
const DefaultKeepRuns = 256

// DefaultKeepViolations is the default bound on retained violations.
const DefaultKeepViolations = 4096

// RunAudit is the audited record of one engine run: identity, the replayed
// power ledger, the critical-path attribution, and the violations the
// monitors raised.
type RunAudit struct {
	// Index is the auditor-assigned run number (0-based, across engines).
	Index int64
	// Engine is the emitting engine ("padr", "sim", "online").
	Engine string
	// Mode is the power accounting mode from run.start ("stateful",
	// "stateless"; empty on traces predating the field).
	Mode string
	// Comms is the communication-set size from run.start.
	Comms int
	// Width is the set's link width from phase1.done/run.done (0 if the
	// run died before Phase 1 completed).
	Width int
	// Rounds is the number of Phase 2 rounds observed.
	Rounds int
	// Leaves is the tree size inferred from the deepest traced node
	// (pruning is disabled whenever a tracer is attached, so every link
	// appears); 0 when no node-scoped events were seen.
	Leaves int
	// Phase1Words is the convergecast word count from phase1.done.
	Phase1Words int
	// Phase1DurNS is the measured Phase 1 duration.
	Phase1DurNS int64
	// DurNS is the whole-run duration from run.done (0 on failed runs).
	DurNS int64
	// StartTS and EndTS are the run's first and last event timestamps
	// (Unix ns).
	StartTS, EndTS int64
	// Events counts the trace events attributed to this run.
	Events int
	// Err, ErrRound and ErrNode mirror the run.error event when the run
	// died: the engine's failure text plus the fault's round and node
	// coordinates (-1/0 when the fault carried none).
	Err      string
	ErrRound int
	ErrNode  int
	// Ledger is the replayed power ledger.
	Ledger *Ledger
	// CritPaths holds one critical-path analysis per Phase 2 round.
	CritPaths []RoundCritPath
	// LevelNS attributes critical-path time to tree levels: LevelNS[d] is
	// the total nanoseconds the per-round critical paths spent entering
	// level d (root = level 0's child hop is level 1).
	LevelNS []int64
	// Violations holds what the monitors raised for this run.
	Violations []Violation

	// live state
	done    bool
	maxNode int
	round   int   // current Phase 2 round, -1 outside
	roundTS int64 // round.start timestamp
	// arrivals is the round's word-arrival table indexed by node (0 = none);
	// lastNode/lastTS track the round's latest arrival incrementally so the
	// critical path never rescans the table.
	arrivals []int64
	lastNode int
	lastTS   int64
}

// auditMetrics holds the cst_audit_* metric handles (all nil-safe).
type auditMetrics struct {
	events       *obs.Counter
	runs         *obs.Counter
	failedRuns   *obs.Counter
	violations   *obs.Counter
	units        *obs.Counter
	alternations *obs.Counter
	changes      *obs.Counter
	quiescent    *obs.Counter
	lastMaxUnits *obs.Gauge
}

// newAuditMetrics resolves the cst_audit_* series against r (nil-safe).
func newAuditMetrics(r *obs.Registry) auditMetrics {
	return auditMetrics{
		events:       r.Counter("cst_audit_events_total", "trace events consumed by the auditor"),
		runs:         r.Counter("cst_audit_runs_total", "engine runs audited to completion"),
		failedRuns:   r.Counter("cst_audit_failed_runs_total", "audited runs that ended in run.error or truncation"),
		violations:   r.Counter("cst_audit_violations_total", "theorem-monitor violations raised"),
		units:        r.Counter("cst_audit_power_units_total", "power units billed by the replayed ledger"),
		alternations: r.Counter("cst_audit_alternations_total", "port alternations billed by the replayed ledger"),
		changes:      r.Counter("cst_audit_config_changes_total", "switch configuration changes billed by the replayed ledger"),
		quiescent:    r.Counter("cst_audit_quiescent_rounds_total", "Phase 2 rounds in which no switch reconfigured"),
		lastMaxUnits: r.Gauge("cst_audit_last_run_max_switch_units", "hottest per-switch unit count of the most recently audited run"),
	}
}

// Auditor consumes obs events and maintains ledgers, monitors and
// aggregates. Observe is safe to install as a Tracer sink (it is called
// under the tracer lock) and safe for direct concurrent use.
type Auditor struct {
	mu  sync.Mutex
	cfg Config
	met auditMetrics

	live map[string]*RunAudit // in-flight run per engine
	runs []*RunAudit          // completed, oldest first, bounded by KeepRuns
	viol []Violation          // bounded by KeepViolations

	nextIndex   int64
	totalEvents int64
	totalRuns   int64
	failedRuns  int64
	totalViol   int64
	droppedViol int64

	// aggregate ledger totals across all audited runs
	aggUnits, aggAlternations, aggChanges, aggQuiescent int64
}

// New builds an Auditor.
func New(cfg Config) *Auditor {
	if cfg.KeepRuns <= 0 {
		cfg.KeepRuns = DefaultKeepRuns
	}
	if cfg.KeepViolations <= 0 {
		cfg.KeepViolations = DefaultKeepViolations
	}
	return &Auditor{
		cfg:  cfg,
		met:  newAuditMetrics(cfg.Registry),
		live: map[string]*RunAudit{},
	}
}

// Observe consumes one trace event. Nil-safe, so callers can hold an
// optional *Auditor and feed it unconditionally.
func (a *Auditor) Observe(e obs.Event) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.totalEvents++
	a.met.events.Inc()

	r := a.live[e.Engine]
	switch e.Type {
	case "run.start":
		if r != nil {
			// Back-to-back run.start without a terminal event: the previous
			// run's tail was lost (killed process, evicted ring).
			a.finishLocked(r)
		}
		r = &RunAudit{
			Index: a.nextIndex, Engine: e.Engine, Mode: e.Mode,
			Comms: e.N, StartTS: e.TS, EndTS: e.TS,
			ErrRound: -1, Ledger: newLedger(), round: -1,
		}
		a.nextIndex++
		a.live[e.Engine] = r
		return
	}
	if r == nil {
		// Events before the first run.start (or for engines we never saw
		// start, e.g. online's batch bookkeeping): counted, not attributed.
		return
	}
	r.Events++
	if e.TS > r.EndTS {
		r.EndTS = e.TS
	}

	switch e.Type {
	case "phase1.done":
		r.Width = e.Width
		r.Phase1Words = e.N
		r.Phase1DurNS = e.DurNS
	case "round.start":
		a.startRound(r, &e)
	case "switch.config":
		a.applyConfig(r, &e)
	case "word.send":
		a.applyWord(r, &e)
	case "round.done":
		a.finishRound(r, &e)
	case "run.done":
		if e.Width > 0 {
			r.Width = e.Width
		}
		r.DurNS = e.DurNS
		r.done = true
		a.finishLocked(r)
	case "run.error":
		r.Err = e.Err
		r.ErrRound = e.Round
		r.ErrNode = e.Node
		r.done = true
		a.finishLocked(r)
	}
}

// startRound opens a Phase 2 round: a fresh ledger row, a cleared arrival
// table for the critical path, and — in stateless mode — the free teardown
// of every replayed crossbar.
func (a *Auditor) startRound(r *RunAudit, e *obs.Event) {
	r.round = e.Round
	r.roundTS = e.TS
	r.Ledger.Rounds = append(r.Ledger.Rounds, RoundLedger{Round: e.Round})
	clear(r.arrivals)
	r.lastNode, r.lastTS = 0, 0
	if r.Mode == "stateless" {
		for _, sl := range r.Ledger.Switches {
			sl.roundReset()
		}
	}
}

// applyConfig bills one traced switch reconfiguration to the ledger.
func (a *Auditor) applyConfig(r *RunAudit, e *obs.Event) {
	if e.Node > r.maxNode {
		r.maxNode = e.Node
	}
	next, err := parseConfig(e.Config)
	if err != nil {
		// An unparseable configuration cannot be billed; surface it as a
		// run-scoped violation rather than guessing.
		a.raise(r, Violation{
			Kind: KindMeterMismatch, Engine: r.Engine, Run: r.Index,
			Round: e.Round, Node: e.Node,
			Msg: fmt.Sprintf("unparseable switch configuration %q: %v", e.Config, err),
		})
		return
	}
	sl := r.Ledger.switchRow(e.Node)
	before := sl.Units
	sl.apply(e.Round, next)
	if row := r.currentRound(e.Round); row != nil {
		row.Configs++
		row.Units += sl.Units - before
	}
}

// applyWord counts one traced control word and records its arrival for the
// round's critical path.
func (a *Auditor) applyWord(r *RunAudit, e *obs.Event) {
	if e.Node > r.maxNode {
		r.maxNode = e.Node
	}
	if e.Child > r.maxNode {
		r.maxNode = e.Child
	}
	row := r.currentRound(e.Round)
	if row == nil {
		return
	}
	row.Words++
	if len(e.Word) < 11 || e.Word[:11] != "[null,null]" {
		row.ActiveWords++
	}
	if e.Child >= 0 {
		for e.Child >= len(r.arrivals) {
			r.arrivals = append(r.arrivals, 0)
		}
		if e.TS > r.arrivals[e.Child] {
			r.arrivals[e.Child] = e.TS
		}
		if e.TS > r.lastTS || (e.TS == r.lastTS && e.Child > r.lastNode) {
			r.lastNode, r.lastTS = e.Child, e.TS
		}
	}
}

// finishRound closes the current round row and computes its critical path.
func (a *Auditor) finishRound(r *RunAudit, e *obs.Event) {
	if row := r.currentRound(e.Round); row != nil {
		row.Comms = e.N
		row.DurNS = e.DurNS
	}
	if e.Round+1 > r.Rounds {
		r.Rounds = e.Round + 1
	}
	if cp, ok := criticalPath(e.Round, r.roundTS, r.arrivals, r.lastNode, r.lastTS); ok {
		r.CritPaths = append(r.CritPaths, cp)
		for _, h := range cp.Hops {
			for len(r.LevelNS) <= h.Level {
				r.LevelNS = append(r.LevelNS, 0)
			}
			r.LevelNS[h.Level] += h.DeltaNS
		}
	}
	r.round = -1
}

// currentRound returns the ledger row for round, or nil when the trace
// never opened it (events with Round -1, or a lost round.start).
func (r *RunAudit) currentRound(round int) *RoundLedger {
	if round < 0 || len(r.Ledger.Rounds) == 0 {
		return nil
	}
	row := &r.Ledger.Rounds[len(r.Ledger.Rounds)-1]
	if row.Round != round {
		return nil
	}
	return row
}

// finishLocked seals a run: infers the tree size, runs the monitors, rolls
// the run into the aggregates, and retires it from the live table.
func (a *Auditor) finishLocked(r *RunAudit) {
	delete(a.live, r.Engine)
	if r.maxNode > 0 {
		// Heap numbering: nodes 1..2n−1, leaves n..2n−1, so the deepest
		// traced node pins n (pruning is off whenever a tracer is attached).
		r.Leaves = (r.maxNode + 1) / 2
	}
	r.arrivals = nil

	for _, v := range checkRun(r, a.cfg.Limits) {
		a.raise(r, v)
	}

	a.totalRuns++
	a.met.runs.Inc()
	if r.Err != "" || !r.done {
		a.failedRuns++
		a.met.failedRuns.Inc()
	}
	a.aggUnits += int64(r.Ledger.TotalUnits())
	a.aggAlternations += int64(r.Ledger.TotalAlternations())
	a.aggChanges += int64(r.Ledger.TotalChanges())
	a.aggQuiescent += int64(r.Ledger.QuiescentRounds())
	a.met.units.Add(int64(r.Ledger.TotalUnits()))
	a.met.alternations.Add(int64(r.Ledger.TotalAlternations()))
	a.met.changes.Add(int64(r.Ledger.TotalChanges()))
	a.met.quiescent.Add(int64(r.Ledger.QuiescentRounds()))
	a.met.lastMaxUnits.Set(int64(r.Ledger.MaxUnits()))

	a.runs = append(a.runs, r)
	if len(a.runs) > a.cfg.KeepRuns {
		a.runs = a.runs[len(a.runs)-a.cfg.KeepRuns:]
	}
}

// raise records one violation (bounded by KeepViolations).
func (a *Auditor) raise(r *RunAudit, v Violation) {
	r.Violations = append(r.Violations, v)
	a.totalViol++
	a.met.violations.Inc()
	if len(a.viol) < a.cfg.KeepViolations {
		a.viol = append(a.viol, v)
	} else {
		a.droppedViol++
	}
}

// Flush seals every in-flight run as truncated. Call it after a replay (or
// at shutdown) so a trace that ends mid-run still yields a verdict; do not
// call it on a live auditor mid-run.
func (a *Auditor) Flush() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.live {
		a.finishLocked(r)
	}
}

// Runs returns the retained completed run audits, oldest first.
func (a *Auditor) Runs() []*RunAudit {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*RunAudit, len(a.runs))
	copy(out, a.runs)
	return out
}

// Violations returns the retained violations in detection order.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.viol))
	copy(out, a.viol)
	return out
}

// Totals summarizes the auditor's aggregate counters.
type Totals struct {
	// Events is every event consumed; Runs the completed runs; FailedRuns
	// those ending in run.error or truncation.
	Events, Runs, FailedRuns int64
	// Violations counts every violation raised (DroppedViolations of which
	// were evicted from the retained list).
	Violations, DroppedViolations int64
	// Units, Alternations, Changes and QuiescentRounds are the ledger
	// aggregates across all audited runs.
	Units, Alternations, Changes, QuiescentRounds int64
}

// Totals returns the aggregate counters.
func (a *Auditor) Totals() Totals {
	if a == nil {
		return Totals{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return Totals{
		Events: a.totalEvents, Runs: a.totalRuns, FailedRuns: a.failedRuns,
		Violations: a.totalViol, DroppedViolations: a.droppedViol,
		Units: a.aggUnits, Alternations: a.aggAlternations,
		Changes: a.aggChanges, QuiescentRounds: a.aggQuiescent,
	}
}

// CrossCheck compares the auditor's aggregate ledger against an engine's
// own cumulative power meters from an obs snapshot (e.g.
// cst_padr_power_units_total) and returns a KindMeterMismatch violation
// per disagreement. engine selects the meter prefix ("padr", "sim"). It
// only makes sense when the auditor saw every run the registry counted,
// and — for "sim" — when runs were serial (the shared tracer interleaves
// concurrent runs' events).
func (a *Auditor) CrossCheck(engine string, snap obs.Snapshot) []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	units, alts := int64(0), int64(0)
	for _, r := range a.runs {
		if r.Engine != engine || r.Err != "" || !r.done {
			continue
		}
		units += int64(r.Ledger.TotalUnits())
		alts += int64(r.Ledger.TotalAlternations())
	}
	a.mu.Unlock()

	var out []Violation
	check := func(metric string, ledger int64) {
		meter, ok := snap.Counters["cst_"+engine+"_"+metric]
		if !ok {
			return
		}
		if meter != ledger {
			out = append(out, Violation{
				Kind: KindMeterMismatch, Engine: engine, Round: -1,
				Got: ledger, Want: meter,
				Msg: fmt.Sprintf("replayed ledger bills %d but cst_%s_%s reads %d",
					ledger, engine, metric, meter),
			})
		}
	}
	check("power_units_total", units)
	check("alternations_total", alts)
	return out
}

// depth returns a heap-numbered node's tree level (root 1 → 0).
func depth(node int) int {
	if node <= 0 {
		return 0
	}
	return bits.Len(uint(node)) - 1
}

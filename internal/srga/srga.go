// Package srga models the communication fabric of the Self-Reconfigurable
// Gate Array (Sidhu et al. [7], the architecture that motivates the CST):
// a grid of PEs in which every row and every column is connected by its own
// circuit switched tree.
//
// Routing a set of 2D communications uses the classical two-phase scheme:
// a packet first moves along its source row to its destination column, then
// along that column to its destination row. Each phase decomposes into
// per-tree one-dimensional communication sets. Those sets are arbitrary
// oriented sets (not well-nested in general), so each batch is scheduled
// with the greedy compatible-set scheduler; when a batch happens to be
// well-nested — which the paper's class guarantees for segmentable-bus-like
// traffic — the PADR engine is used instead and its O(1) per-switch power
// bound applies.
package srga

import (
	"fmt"
	"math/rand"

	"cst/internal/baseline"
	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/topology"
)

// Grid is an SRGA PE grid. Rows and Cols must be powers of two >= 2.
type Grid struct {
	rows, cols int
	rowTree    *topology.Tree // shared shape for every row CST (cols leaves)
	colTree    *topology.Tree // shared shape for every column CST (rows leaves)
}

// New builds a grid.
func New(rows, cols int) (*Grid, error) {
	rt, err := topology.New(cols)
	if err != nil {
		return nil, fmt.Errorf("srga: bad column count: %v", err)
	}
	ct, err := topology.New(rows)
	if err != nil {
		return nil, fmt.Errorf("srga: bad row count: %v", err)
	}
	return &Grid{rows: rows, cols: cols, rowTree: rt, colTree: ct}, nil
}

// Rows returns the number of PE rows.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the number of PE columns.
func (g *Grid) Cols() int { return g.cols }

// Comm2D is one grid communication from PE (SrcR, SrcC) to PE (DstR, DstC).
type Comm2D struct {
	SrcR, SrcC, DstR, DstC int
}

// String renders e.g. "(1,2)->(3,0)".
func (c Comm2D) String() string {
	return fmt.Sprintf("(%d,%d)->(%d,%d)", c.SrcR, c.SrcC, c.DstR, c.DstC)
}

// PhaseStats aggregates one routing phase (rows or columns).
type PhaseStats struct {
	// Batches is the number of 1-D communication sets the phase needed
	// (conflicting endpoints force extra batches).
	Batches int
	// Rounds is the total CST rounds over all trees and batches; trees run
	// in parallel, so the phase's wall-clock rounds is MaxRounds.
	Rounds int
	// MaxRounds is the slowest tree's total rounds.
	MaxRounds int
	// WellNested counts batches that qualified for the PADR engine.
	WellNested int
	// MaxUnits is the highest per-switch power spend across all trees.
	MaxUnits int
}

// Result is the outcome of routing one communication set on the grid.
type Result struct {
	// RowPhase and ColPhase are the two phases' statistics.
	RowPhase, ColPhase PhaseStats
}

// TotalMaxRounds is the wall-clock round count: the row phase and column
// phase run sequentially, trees within a phase in parallel.
func (r *Result) TotalMaxRounds() int { return r.RowPhase.MaxRounds + r.ColPhase.MaxRounds }

// Validate checks endpoints and the one-communication-per-PE rule.
func (g *Grid) Validate(comms []Comm2D) error {
	srcs := map[[2]int]bool{}
	dsts := map[[2]int]bool{}
	for _, c := range comms {
		if c.SrcR < 0 || c.SrcR >= g.rows || c.DstR < 0 || c.DstR >= g.rows ||
			c.SrcC < 0 || c.SrcC >= g.cols || c.DstC < 0 || c.DstC >= g.cols {
			return fmt.Errorf("srga: %s out of range for %dx%d grid", c, g.rows, g.cols)
		}
		if c.SrcR == c.DstR && c.SrcC == c.DstC {
			return fmt.Errorf("srga: %s is a self loop", c)
		}
		s := [2]int{c.SrcR, c.SrcC}
		d := [2]int{c.DstR, c.DstC}
		if srcs[s] {
			return fmt.Errorf("srga: PE (%d,%d) sources two communications", s[0], s[1])
		}
		if dsts[d] {
			return fmt.Errorf("srga: PE (%d,%d) receives two communications", d[0], d[1])
		}
		srcs[s] = true
		dsts[d] = true
	}
	return nil
}

// hop is a 1-D movement on one tree.
type hop struct {
	tree int // row index or column index
	src  int
	dst  int
}

// Route performs two-phase routing and returns the aggregate statistics.
func (g *Grid) Route(comms []Comm2D) (*Result, error) {
	if err := g.Validate(comms); err != nil {
		return nil, err
	}
	var res Result

	// Row phase: move (SrcR, SrcC) -> (SrcR, DstC).
	var rowHops []hop
	for _, c := range comms {
		if c.SrcC != c.DstC {
			rowHops = append(rowHops, hop{tree: c.SrcR, src: c.SrcC, dst: c.DstC})
		}
	}
	st, err := g.runPhase(g.rowTree, g.rows, rowHops)
	if err != nil {
		return nil, fmt.Errorf("srga: row phase: %v", err)
	}
	res.RowPhase = *st

	// Column phase: move (SrcR, DstC) -> (DstR, DstC).
	var colHops []hop
	for _, c := range comms {
		if c.SrcR != c.DstR {
			colHops = append(colHops, hop{tree: c.DstC, src: c.SrcR, dst: c.DstR})
		}
	}
	st, err = g.runPhase(g.colTree, g.cols, colHops)
	if err != nil {
		return nil, fmt.Errorf("srga: column phase: %v", err)
	}
	res.ColPhase = *st
	return &res, nil
}

// runPhase schedules the per-tree hops of one phase. Hops on one tree are
// batched so that within a batch every endpoint is used at most once (the
// CST's one-role-per-PE rule); batches then run one after the other.
func (g *Grid) runPhase(shape *topology.Tree, trees int, hops []hop) (*PhaseStats, error) {
	stats := &PhaseStats{}
	byTree := make([][]hop, trees)
	for _, h := range hops {
		byTree[h.tree] = append(byTree[h.tree], h)
	}
	for ti, list := range byTree {
		if len(list) == 0 {
			continue
		}
		batches := batchHops(list)
		stats.Batches += len(batches)
		treeRounds := 0
		for _, batch := range batches {
			set := &comm.Set{N: shape.Leaves()}
			for _, h := range batch {
				set.Comms = append(set.Comms, comm.Comm{Src: h.src, Dst: h.dst})
			}
			right, leftM := comm.Decompose(set)
			for _, oriented := range []*comm.Set{right, leftM} {
				if oriented.Len() == 0 {
					continue
				}
				rounds, maxUnits, wellNested, err := runOriented(shape, oriented)
				if err != nil {
					return nil, fmt.Errorf("tree %d: %v", ti, err)
				}
				treeRounds += rounds
				if wellNested {
					stats.WellNested++
				}
				if maxUnits > stats.MaxUnits {
					stats.MaxUnits = maxUnits
				}
			}
		}
		stats.Rounds += treeRounds
		if treeRounds > stats.MaxRounds {
			stats.MaxRounds = treeRounds
		}
	}
	return stats, nil
}

// runOriented schedules one right-oriented set on one tree: PADR when the
// set is well nested, greedy otherwise. Every schedule is re-verified
// against the tree, and every round's data plane is replayed with tokens —
// a routed packet must actually arrive through the configured circuits.
func runOriented(shape *topology.Tree, s *comm.Set) (rounds, maxUnits int, wellNested bool, err error) {
	if s.IsWellNested() {
		var rec deliver.Recorder
		e, err := padr.New(shape, s, padr.WithObserver(rec.Observer()))
		if err != nil {
			return 0, 0, false, err
		}
		res, err := e.Run()
		if err != nil {
			return 0, 0, false, err
		}
		if err := res.Schedule.VerifyOptimal(shape); err != nil {
			return 0, 0, false, err
		}
		if err := rec.Verify(shape); err != nil {
			return 0, 0, false, err
		}
		return res.Rounds, res.Report.MaxUnits(), true, nil
	}
	res, err := baseline.Greedy(shape, s, power.Stateful)
	if err != nil {
		return 0, 0, false, err
	}
	if err := res.Schedule.Verify(shape); err != nil {
		return 0, 0, false, err
	}
	for r, round := range res.Schedule.Rounds {
		if err := deliver.VerifyRound(shape, res.Configs[r], round); err != nil {
			return 0, 0, false, err
		}
	}
	return res.Rounds, res.Report.MaxUnits(), false, nil
}

// batchHops splits a tree's hops into endpoint-disjoint batches (first-fit).
func batchHops(list []hop) [][]hop {
	var batches [][]hop
	var used []map[int]bool
	for _, h := range list {
		placed := false
		for i := range batches {
			if !used[i][h.src] && !used[i][h.dst] {
				batches[i] = append(batches[i], h)
				used[i][h.src] = true
				used[i][h.dst] = true
				placed = true
				break
			}
		}
		if !placed {
			batches = append(batches, []hop{h})
			used = append(used, map[int]bool{h.src: true, h.dst: true})
		}
	}
	return batches
}

// RandomPermutation generates a full permutation workload: every PE sends
// to a distinct random PE (derangement not enforced; self-maps are
// dropped).
func RandomPermutation(rng *rand.Rand, g *Grid) []Comm2D {
	n := g.rows * g.cols
	perm := rng.Perm(n)
	var out []Comm2D
	for i, p := range perm {
		if i == p {
			continue
		}
		out = append(out, Comm2D{
			SrcR: i / g.cols, SrcC: i % g.cols,
			DstR: p / g.cols, DstC: p % g.cols,
		})
	}
	return out
}

// Transpose generates the matrix-transpose workload on a square grid: PE
// (r,c) sends to (c,r).
func Transpose(g *Grid) ([]Comm2D, error) {
	if g.rows != g.cols {
		return nil, fmt.Errorf("srga: transpose needs a square grid, got %dx%d", g.rows, g.cols)
	}
	var out []Comm2D
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			if r == c {
				continue
			}
			out = append(out, Comm2D{SrcR: r, SrcC: c, DstR: c, DstC: r})
		}
	}
	return out, nil
}

// RowShift generates the uniform-shift workload: every PE sends k columns
// to the right within its row (wrapping). A pure row-phase pattern.
func RowShift(g *Grid, k int) []Comm2D {
	var out []Comm2D
	k = ((k % g.cols) + g.cols) % g.cols
	if k == 0 {
		return nil
	}
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			out = append(out, Comm2D{SrcR: r, SrcC: c, DstR: r, DstC: (c + k) % g.cols})
		}
	}
	return out
}

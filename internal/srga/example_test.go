package srga_test

import (
	"fmt"

	"cst/internal/srga"
)

// Route a uniform shift on an SRGA grid: a pure row-phase pattern.
func ExampleGrid_Route() {
	grid, _ := srga.New(4, 8)
	res, err := grid.Route(srga.RowShift(grid, 2))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("row rounds %d, column rounds %d\n",
		res.RowPhase.MaxRounds, res.ColPhase.MaxRounds)
	// Output:
	// row rounds 6, column rounds 0
}

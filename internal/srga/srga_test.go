package srga

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 4); err == nil {
		t.Error("non power-of-two rows: want error")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("zero cols: want error")
	}
	g, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 4 || g.Cols() != 8 {
		t.Fatalf("grid %dx%d", g.Rows(), g.Cols())
	}
}

func TestValidate(t *testing.T) {
	g, _ := New(4, 4)
	bad := []struct {
		name  string
		comms []Comm2D
	}{
		{"out of range", []Comm2D{{SrcR: 0, SrcC: 0, DstR: 4, DstC: 0}}},
		{"self loop", []Comm2D{{SrcR: 1, SrcC: 1, DstR: 1, DstC: 1}}},
		{"double source", []Comm2D{{0, 0, 1, 1}, {0, 0, 2, 2}}},
		{"double dest", []Comm2D{{0, 0, 2, 2}, {1, 1, 2, 2}}},
	}
	for _, c := range bad {
		if err := g.Validate(c.comms); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if err := g.Validate([]Comm2D{{0, 0, 1, 1}, {1, 1, 0, 0}}); err != nil {
		t.Errorf("valid swap rejected: %v", err)
	}
}

func TestRouteRowShift(t *testing.T) {
	g, _ := New(4, 8)
	comms := RowShift(g, 3)
	if len(comms) != 32 {
		t.Fatalf("row shift produced %d comms", len(comms))
	}
	res, err := g.Route(comms)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColPhase.Rounds != 0 {
		t.Fatalf("pure row pattern must not use columns: %+v", res.ColPhase)
	}
	if res.RowPhase.Rounds == 0 {
		t.Fatal("row phase did nothing")
	}
	if res.TotalMaxRounds() != res.RowPhase.MaxRounds {
		t.Fatal("wall clock must equal the row phase alone")
	}
}

func TestRowShiftZero(t *testing.T) {
	g, _ := New(4, 4)
	if got := RowShift(g, 0); got != nil {
		t.Fatalf("shift 0 must be empty, got %d", len(got))
	}
	if got := RowShift(g, 4); got != nil {
		t.Fatalf("full wrap must be empty, got %d", len(got))
	}
	if got := RowShift(g, -1); len(got) != 16 {
		t.Fatalf("negative shift must normalize, got %d", len(got))
	}
}

func TestRouteTranspose(t *testing.T) {
	g, _ := New(8, 8)
	comms, err := Transpose(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != 56 {
		t.Fatalf("transpose produced %d comms", len(comms))
	}
	res, err := g.Route(comms)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowPhase.Rounds == 0 || res.ColPhase.Rounds == 0 {
		t.Fatalf("transpose needs both phases: %+v", res)
	}
	if _, err := Transpose(mustGrid(t, 4, 8)); err == nil {
		t.Error("non-square transpose: want error")
	}
}

func TestRouteRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g, _ := New(8, 8)
		comms := RandomPermutation(rng, g)
		if err := g.Validate(comms); err != nil {
			t.Fatalf("generated workload invalid: %v", err)
		}
		res, err := g.Route(comms)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalMaxRounds() == 0 {
			t.Fatal("permutation routed in zero rounds")
		}
		// A 64-PE permutation on 8-leaf trees cannot need more rounds than
		// communications per tree.
		if res.RowPhase.MaxRounds > 16 || res.ColPhase.MaxRounds > 16 {
			t.Fatalf("implausible round counts: %+v", res)
		}
	}
}

func TestRouteRejectsInvalid(t *testing.T) {
	g, _ := New(4, 4)
	if _, err := g.Route([]Comm2D{{0, 0, 0, 0}}); err == nil {
		t.Error("self loop: want error")
	}
}

func TestBatchHopsDisjoint(t *testing.T) {
	hops := []hop{
		{tree: 0, src: 0, dst: 3},
		{tree: 0, src: 1, dst: 3}, // conflicts with the first on dst
		{tree: 0, src: 3, dst: 2}, // conflicts on endpoint 3 with both
		{tree: 0, src: 4, dst: 5},
	}
	batches := batchHops(hops)
	if len(batches) != 3 {
		t.Fatalf("want 3 batches, got %d: %v", len(batches), batches)
	}
	for _, b := range batches {
		seen := map[int]bool{}
		for _, h := range b {
			if seen[h.src] || seen[h.dst] {
				t.Fatalf("batch reuses an endpoint: %v", b)
			}
			seen[h.src] = true
			seen[h.dst] = true
		}
	}
}

func TestComm2DString(t *testing.T) {
	c := Comm2D{SrcR: 1, SrcC: 2, DstR: 3, DstC: 0}
	if c.String() != "(1,2)->(3,0)" {
		t.Fatalf("String = %q", c.String())
	}
}

func mustGrid(t *testing.T, r, c int) *Grid {
	t.Helper()
	g, err := New(r, c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

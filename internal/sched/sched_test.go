package sched

import (
	"math/rand"
	"strings"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

func set(t *testing.T, expr string) *comm.Set {
	t.Helper()
	s, err := comm.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// greedyPack is a minimal in-test scheduler: first round whose directed
// links are all free (the general package cannot be imported here — it
// depends on sched).
func greedyPack(t *testing.T, tr *topology.Tree, s *comm.Set) *Schedule {
	t.Helper()
	sch := &Schedule{Set: s.Clone()}
	var congestion [][]bool
	for _, c := range s.Comms {
		edges, err := tr.PathEdges(c.Src, c.Dst)
		if err != nil {
			t.Fatal(err)
		}
		placed := false
		for r := 0; r < len(sch.Rounds) && !placed; r++ {
			free := true
			for _, e := range edges {
				if congestion[r][tr.EdgeIndex(e)] {
					free = false
					break
				}
			}
			if free {
				for _, e := range edges {
					congestion[r][tr.EdgeIndex(e)] = true
				}
				sch.Rounds[r] = append(sch.Rounds[r], c)
				placed = true
			}
		}
		if !placed {
			row := make([]bool, tr.DirectedEdgeCount())
			for _, e := range edges {
				row[tr.EdgeIndex(e)] = true
			}
			congestion = append(congestion, row)
			sch.Rounds = append(sch.Rounds, []comm.Comm{c})
		}
	}
	return sch
}

// Differential round trip for UnmirrorSchedule: schedule the mirrored half
// of a decomposition, map it back, and the result must be a valid schedule
// of the original left-oriented set — same round count, and unmirroring
// twice is the identity.
func TestUnmirrorScheduleRoundTrip(t *testing.T) {
	tr := topology.MustNew(16)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		right, err := comm.RandomOriented(rng, 16, 1+rng.Intn(7))
		if err != nil {
			t.Fatal(err)
		}
		left := right.Mirror() // a purely left-oriented "original" set
		_, leftMirrored := comm.Decompose(left)
		mirroredSch := greedyPack(t, tr, leftMirrored)
		if err := mirroredSch.Verify(tr); err != nil {
			t.Fatalf("trial %d: mirrored schedule invalid: %v", trial, err)
		}
		back := UnmirrorSchedule(mirroredSch)
		if err := back.Verify(tr); err != nil {
			t.Fatalf("trial %d: unmirrored schedule invalid on the original line: %v", trial, err)
		}
		if back.NumRounds() != mirroredSch.NumRounds() {
			t.Fatalf("trial %d: unmirroring changed round count %d -> %d",
				trial, mirroredSch.NumRounds(), back.NumRounds())
		}
		// The unmirrored schedule covers exactly the original left set.
		if got, want := back.Set.String(), left.String(); got != want {
			t.Fatalf("trial %d: unmirrored set %q, want %q", trial, got, want)
		}
		// Involution: unmirroring twice restores the mirrored schedule.
		twice := UnmirrorSchedule(back)
		if twice.Set.String() != leftMirrored.String() {
			t.Fatalf("trial %d: double unmirror lost the set", trial)
		}
		for i := range twice.Rounds {
			for j, c := range twice.Rounds[i] {
				if c != mirroredSch.Rounds[i][j] {
					t.Fatalf("trial %d: double unmirror changed round %d", trial, i)
				}
			}
		}
	}
}

func TestVerifyAcceptsValidSchedule(t *testing.T) {
	s := set(t, "(())")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set: s,
		Rounds: [][]comm.Comm{
			{{Src: 0, Dst: 3}},
			{{Src: 1, Dst: 2}},
		},
	}
	if err := sch.Verify(tr); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := sch.VerifyOptimal(tr); err != nil {
		t.Fatalf("optimal schedule rejected: %v", err)
	}
}

func TestVerifyRejectsIncompatibleRound(t *testing.T) {
	s := set(t, "(())")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set:    s,
		Rounds: [][]comm.Comm{{{Src: 0, Dst: 3}, {Src: 1, Dst: 2}}},
	}
	err := sch.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("want incompatibility error, got %v", err)
	}
}

func TestVerifyRejectsMissingComm(t *testing.T) {
	s := set(t, "(())")
	tr := topology.MustNew(4)
	sch := &Schedule{Set: s, Rounds: [][]comm.Comm{{{Src: 0, Dst: 3}}}}
	err := sch.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "never scheduled") {
		t.Fatalf("want missing-comm error, got %v", err)
	}
}

func TestVerifyRejectsDuplicate(t *testing.T) {
	s := set(t, "(.).")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set:    s,
		Rounds: [][]comm.Comm{{{Src: 0, Dst: 2}}, {{Src: 0, Dst: 2}}},
	}
	err := sch.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestVerifyRejectsForeignComm(t *testing.T) {
	s := set(t, "(.).")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set:    s,
		Rounds: [][]comm.Comm{{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}}},
	}
	err := sch.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "not in the set") {
		t.Fatalf("want foreign-comm error, got %v", err)
	}
}

func TestVerifyRejectsSizeMismatch(t *testing.T) {
	s := set(t, "(.).")
	sch := &Schedule{Set: s, Rounds: nil}
	if err := sch.Verify(topology.MustNew(8)); err == nil {
		t.Fatal("tree size mismatch: want error")
	}
	empty := &Schedule{}
	if err := empty.Verify(topology.MustNew(4)); err == nil {
		t.Fatal("nil set: want error")
	}
}

func TestVerifyOppositeDirectionsShareLink(t *testing.T) {
	// 1->2 and 3->0 use the same links around the root but in opposite
	// directions; that is compatible.
	s := comm.NewSet(4, comm.Comm{Src: 1, Dst: 2}, comm.Comm{Src: 3, Dst: 0})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set:    s,
		Rounds: [][]comm.Comm{{{Src: 1, Dst: 2}, {Src: 3, Dst: 0}}},
	}
	if err := sch.Verify(tr); err != nil {
		t.Fatalf("opposite directions must be compatible: %v", err)
	}
}

func TestVerifyOptimalFlagsSlack(t *testing.T) {
	s := set(t, "()()")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set: s,
		Rounds: [][]comm.Comm{
			{{Src: 0, Dst: 1}},
			{{Src: 2, Dst: 3}},
		},
	}
	if err := sch.Verify(tr); err != nil {
		t.Fatalf("schedule is valid, just not optimal: %v", err)
	}
	if err := sch.VerifyOptimal(tr); err == nil {
		t.Fatal("two rounds for a width-1 set must fail VerifyOptimal")
	}
}

func TestScheduleStats(t *testing.T) {
	sch := &Schedule{
		Set: set(t, "(())"),
		Rounds: [][]comm.Comm{
			{{Src: 0, Dst: 3}},
			{{Src: 1, Dst: 2}},
		},
	}
	if sch.NumRounds() != 2 {
		t.Errorf("NumRounds = %d", sch.NumRounds())
	}
	if sch.TotalScheduled() != 2 {
		t.Errorf("TotalScheduled = %d", sch.TotalScheduled())
	}
	sizes := sch.RoundSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 1 {
		t.Errorf("RoundSizes = %v", sizes)
	}
	str := sch.String()
	if !strings.Contains(str, "round 0: 0->3") || !strings.Contains(str, "round 1: 1->2") {
		t.Errorf("String = %q", str)
	}
}

func TestVerifyRejectsDuplicateInSet(t *testing.T) {
	s := comm.NewSet(4, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 0, Dst: 2})
	sch := &Schedule{Set: s, Rounds: [][]comm.Comm{{{Src: 0, Dst: 2}}}}
	if err := sch.Verify(topology.MustNew(4)); err == nil {
		t.Fatal("duplicate comm in set: want error")
	}
}

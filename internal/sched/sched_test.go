package sched

import (
	"strings"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

func set(t *testing.T, expr string) *comm.Set {
	t.Helper()
	s, err := comm.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVerifyAcceptsValidSchedule(t *testing.T) {
	s := set(t, "(())")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set: s,
		Rounds: [][]comm.Comm{
			{{Src: 0, Dst: 3}},
			{{Src: 1, Dst: 2}},
		},
	}
	if err := sch.Verify(tr); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := sch.VerifyOptimal(tr); err != nil {
		t.Fatalf("optimal schedule rejected: %v", err)
	}
}

func TestVerifyRejectsIncompatibleRound(t *testing.T) {
	s := set(t, "(())")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set:    s,
		Rounds: [][]comm.Comm{{{Src: 0, Dst: 3}, {Src: 1, Dst: 2}}},
	}
	err := sch.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("want incompatibility error, got %v", err)
	}
}

func TestVerifyRejectsMissingComm(t *testing.T) {
	s := set(t, "(())")
	tr := topology.MustNew(4)
	sch := &Schedule{Set: s, Rounds: [][]comm.Comm{{{Src: 0, Dst: 3}}}}
	err := sch.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "never scheduled") {
		t.Fatalf("want missing-comm error, got %v", err)
	}
}

func TestVerifyRejectsDuplicate(t *testing.T) {
	s := set(t, "(.).")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set:    s,
		Rounds: [][]comm.Comm{{{Src: 0, Dst: 2}}, {{Src: 0, Dst: 2}}},
	}
	err := sch.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestVerifyRejectsForeignComm(t *testing.T) {
	s := set(t, "(.).")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set:    s,
		Rounds: [][]comm.Comm{{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}}},
	}
	err := sch.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "not in the set") {
		t.Fatalf("want foreign-comm error, got %v", err)
	}
}

func TestVerifyRejectsSizeMismatch(t *testing.T) {
	s := set(t, "(.).")
	sch := &Schedule{Set: s, Rounds: nil}
	if err := sch.Verify(topology.MustNew(8)); err == nil {
		t.Fatal("tree size mismatch: want error")
	}
	empty := &Schedule{}
	if err := empty.Verify(topology.MustNew(4)); err == nil {
		t.Fatal("nil set: want error")
	}
}

func TestVerifyOppositeDirectionsShareLink(t *testing.T) {
	// 1->2 and 3->0 use the same links around the root but in opposite
	// directions; that is compatible.
	s := comm.NewSet(4, comm.Comm{Src: 1, Dst: 2}, comm.Comm{Src: 3, Dst: 0})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set:    s,
		Rounds: [][]comm.Comm{{{Src: 1, Dst: 2}, {Src: 3, Dst: 0}}},
	}
	if err := sch.Verify(tr); err != nil {
		t.Fatalf("opposite directions must be compatible: %v", err)
	}
}

func TestVerifyOptimalFlagsSlack(t *testing.T) {
	s := set(t, "()()")
	tr := topology.MustNew(4)
	sch := &Schedule{
		Set: s,
		Rounds: [][]comm.Comm{
			{{Src: 0, Dst: 1}},
			{{Src: 2, Dst: 3}},
		},
	}
	if err := sch.Verify(tr); err != nil {
		t.Fatalf("schedule is valid, just not optimal: %v", err)
	}
	if err := sch.VerifyOptimal(tr); err == nil {
		t.Fatal("two rounds for a width-1 set must fail VerifyOptimal")
	}
}

func TestScheduleStats(t *testing.T) {
	sch := &Schedule{
		Set: set(t, "(())"),
		Rounds: [][]comm.Comm{
			{{Src: 0, Dst: 3}},
			{{Src: 1, Dst: 2}},
		},
	}
	if sch.NumRounds() != 2 {
		t.Errorf("NumRounds = %d", sch.NumRounds())
	}
	if sch.TotalScheduled() != 2 {
		t.Errorf("TotalScheduled = %d", sch.TotalScheduled())
	}
	sizes := sch.RoundSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 1 {
		t.Errorf("RoundSizes = %v", sizes)
	}
	str := sch.String()
	if !strings.Contains(str, "round 0: 0->3") || !strings.Contains(str, "round 1: 1->2") {
		t.Errorf("String = %q", str)
	}
}

func TestVerifyRejectsDuplicateInSet(t *testing.T) {
	s := comm.NewSet(4, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 0, Dst: 2})
	sch := &Schedule{Set: s, Rounds: [][]comm.Comm{{{Src: 0, Dst: 2}}}}
	if err := sch.Verify(topology.MustNew(4)); err == nil {
		t.Fatal("duplicate comm in set: want error")
	}
}

// Package sched represents multi-round schedules of communication sets on
// the CST and verifies them independently of any scheduling algorithm.
//
// A round is a set of communications performed simultaneously; it is
// *compatible* when no two of its circuits use the same tree link in the
// same direction (paper §1, citing [3]). A schedule performs every
// communication of the input set in exactly one round. Theorem 5 states the
// paper's algorithm needs exactly `width` rounds; Verify checks
// compatibility and completeness against the topology alone, so an engine
// bug cannot hide behind its own bookkeeping.
package sched

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/topology"
)

// Schedule is the outcome of scheduling a communication set: Rounds[i] lists
// the communications performed in round i.
type Schedule struct {
	// Set is the scheduled communication set.
	Set *comm.Set
	// Rounds holds one compatible subset per round, in execution order.
	Rounds [][]comm.Comm
}

// NumRounds returns the number of rounds.
func (s *Schedule) NumRounds() int { return len(s.Rounds) }

// TotalScheduled returns the number of communications over all rounds.
func (s *Schedule) TotalScheduled() int {
	total := 0
	for _, r := range s.Rounds {
		total += len(r)
	}
	return total
}

// RoundSizes returns the per-round communication counts.
func (s *Schedule) RoundSizes() []int {
	sizes := make([]int, len(s.Rounds))
	for i, r := range s.Rounds {
		sizes[i] = len(r)
	}
	return sizes
}

// String renders one line per round, e.g. "round 0: 0->7 3->4".
func (s *Schedule) String() string {
	out := ""
	for i, r := range s.Rounds {
		out += fmt.Sprintf("round %d:", i)
		for _, c := range r {
			out += " " + c.String()
		}
		out += "\n"
	}
	return out
}

// UnmirrorSchedule maps a schedule computed on the mirrored PE line (such
// as the leftMirrored half of comm.Decompose, scheduled by a right-oriented
// engine) back onto the original line: every endpoint p becomes N-1-p, so
// each mirrored right-oriented communication turns back into the original
// left-oriented one. Round structure is preserved — reflection is a tree
// automorphism, so a compatible round stays compatible (each circuit maps
// onto the reflected switches edge for edge). The input is not modified.
func UnmirrorSchedule(s *Schedule) *Schedule {
	out := &Schedule{Set: s.Set.Mirror(), Rounds: make([][]comm.Comm, len(s.Rounds))}
	for i, r := range s.Rounds {
		round := make([]comm.Comm, len(r))
		for j, c := range r {
			round[j] = comm.Comm{Src: s.Set.N - 1 - c.Src, Dst: s.Set.N - 1 - c.Dst}
		}
		out.Rounds[i] = round
	}
	return out
}

// Verify checks the schedule against the tree:
//
//  1. every round is compatible (no directed tree link used twice),
//  2. every communication of the set is scheduled exactly once,
//  3. no communication outside the set appears.
//
// It returns nil if and only if all three hold.
func (s *Schedule) Verify(t *topology.Tree) error {
	if s.Set == nil {
		return fmt.Errorf("sched: schedule has no set")
	}
	if t.Leaves() != s.Set.N {
		return fmt.Errorf("sched: tree has %d leaves, set has N=%d", t.Leaves(), s.Set.N)
	}
	want := make(map[comm.Comm]int, s.Set.Len())
	for _, c := range s.Set.Comms {
		want[c]++
		if want[c] > 1 {
			return fmt.Errorf("sched: set contains duplicate communication %s", c)
		}
	}
	seen := make(map[comm.Comm]int, s.Set.Len())
	congestion := make([]int, t.DirectedEdgeCount())
	for i, round := range s.Rounds {
		// Reset congestion per round without reallocating.
		for j := range congestion {
			congestion[j] = 0
		}
		for _, c := range round {
			if _, ok := want[c]; !ok {
				return fmt.Errorf("sched: round %d schedules %s, which is not in the set", i, c)
			}
			seen[c]++
			if seen[c] > 1 {
				return fmt.Errorf("sched: communication %s scheduled more than once (again in round %d)", c, i)
			}
			edges, err := t.PathEdges(c.Src, c.Dst)
			if err != nil {
				return fmt.Errorf("sched: round %d: %v", i, err)
			}
			for _, e := range edges {
				idx := t.EdgeIndex(e)
				congestion[idx]++
				if congestion[idx] > 1 {
					return fmt.Errorf("sched: round %d is incompatible: link %s used twice (by %s among others)", i, e, c)
				}
			}
		}
	}
	for c := range want {
		if seen[c] == 0 {
			return fmt.Errorf("sched: communication %s never scheduled", c)
		}
	}
	return nil
}

// VerifyOptimal runs Verify and additionally checks the round count equals
// the set's width (Theorem 5). Schedules from the greedy baseline on
// non-well-nested sets may legitimately fail only the second check.
func (s *Schedule) VerifyOptimal(t *topology.Tree) error {
	if err := s.Verify(t); err != nil {
		return err
	}
	w, err := s.Set.Width(t)
	if err != nil {
		return err
	}
	if s.NumRounds() != w {
		return fmt.Errorf("sched: %d rounds for a width-%d set (optimal is exactly the width)", s.NumRounds(), w)
	}
	return nil
}

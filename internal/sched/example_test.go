package sched_test

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/sched"
	"cst/internal/topology"
)

// Verify checks a schedule against the topology alone: compatibility,
// completeness, no duplicates.
func ExampleSchedule_Verify() {
	set := comm.MustParse("(())")
	tree := topology.MustNew(4)
	good := &sched.Schedule{
		Set: set,
		Rounds: [][]comm.Comm{
			{{Src: 0, Dst: 3}},
			{{Src: 1, Dst: 2}},
		},
	}
	fmt.Println("valid:", good.Verify(tree) == nil)
	fmt.Println("optimal:", good.VerifyOptimal(tree) == nil)

	// The two circuits share links in the same direction: one round fails.
	bad := &sched.Schedule{
		Set:    set,
		Rounds: [][]comm.Comm{{{Src: 0, Dst: 3}, {Src: 1, Dst: 2}}},
	}
	fmt.Println("incompatible detected:", bad.Verify(tree) != nil)
	// Output:
	// valid: true
	// optimal: true
	// incompatible detected: true
}

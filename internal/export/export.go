// Package export serializes runs — schedules, power reports, experiment
// series — as JSON and CSV so external tooling (plotting scripts, CI
// dashboards) can consume reproduction results without parsing the human
// tables.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/sched"
)

// ScheduleJSON is the wire form of a schedule.
type ScheduleJSON struct {
	// N is the PE count.
	N int `json:"n"`
	// Expr is the parenthesis rendering of the set (only meaningful for
	// right-oriented sets).
	Expr string `json:"expr"`
	// Rounds lists the communications per round as [src, dst] pairs.
	Rounds [][][2]int `json:"rounds"`
}

// Schedule converts a schedule to its wire form.
func Schedule(s *sched.Schedule) ScheduleJSON {
	out := ScheduleJSON{N: s.Set.N, Expr: s.Set.String()}
	for _, round := range s.Rounds {
		row := make([][2]int, len(round))
		for i, c := range round {
			row[i] = [2]int{c.Src, c.Dst}
		}
		out.Rounds = append(out.Rounds, row)
	}
	return out
}

// UnmarshalSchedule reverses Schedule, reconstructing the communication set
// from the rounds.
func UnmarshalSchedule(data []byte) (*sched.Schedule, error) {
	var wire ScheduleJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("export: %v", err)
	}
	set := &comm.Set{N: wire.N}
	s := &sched.Schedule{Set: set}
	for _, row := range wire.Rounds {
		round := make([]comm.Comm, len(row))
		for i, pair := range row {
			round[i] = comm.Comm{Src: pair[0], Dst: pair[1]}
			set.Comms = append(set.Comms, round[i])
		}
		s.Rounds = append(s.Rounds, round)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("export: %v", err)
	}
	return s, nil
}

// WriteScheduleJSON writes a schedule as indented JSON.
func WriteScheduleJSON(w io.Writer, s *sched.Schedule) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Schedule(s))
}

// ReportJSON is the wire form of a power report.
type ReportJSON struct {
	Algorithm string `json:"algorithm"`
	Mode      string `json:"mode"`
	Rounds    int    `json:"rounds"`
	// Total and Max are the headline unit figures.
	TotalUnits int `json:"total_units"`
	MaxUnits   int `json:"max_units"`
	// MaxAlternations is the Lemma 6/7 figure.
	MaxAlternations int `json:"max_alternations"`
	// Switches lists per-switch figures for non-idle switches only.
	Switches []SwitchJSON `json:"switches"`
}

// SwitchJSON is one switch's ledger entry.
type SwitchJSON struct {
	Node         int `json:"node"`
	Units        int `json:"units"`
	Alternations int `json:"alternations"`
}

// Report converts a power report to its wire form.
func Report(r *power.Report) ReportJSON {
	out := ReportJSON{
		Algorithm:       r.Algorithm,
		Mode:            r.Mode.String(),
		Rounds:          r.Rounds,
		TotalUnits:      r.TotalUnits(),
		MaxUnits:        r.MaxUnits(),
		MaxAlternations: r.MaxAlternations(),
	}
	for _, sw := range r.Switches {
		if sw.Units == 0 && sw.Alternations == 0 {
			continue
		}
		out.Switches = append(out.Switches, SwitchJSON{
			Node:         int(sw.Node),
			Units:        sw.Units,
			Alternations: sw.Alternations,
		})
	}
	return out
}

// WriteReportJSON writes a power report as indented JSON.
func WriteReportJSON(w io.Writer, r *power.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report(r))
}

// ResultJSON is the wire form of a full PADR run.
type ResultJSON struct {
	Width           int          `json:"width"`
	Rounds          int          `json:"rounds"`
	UpWords         int          `json:"up_words"`
	DownWords       int          `json:"down_words"`
	ActiveDownWords int          `json:"active_down_words"`
	MaxStoredBytes  int          `json:"max_stored_bytes"`
	Schedule        ScheduleJSON `json:"schedule"`
	Report          ReportJSON   `json:"report"`
}

// Result converts a PADR result to its wire form.
func Result(res *padr.Result) ResultJSON {
	return ResultJSON{
		Width:           res.Width,
		Rounds:          res.Rounds,
		UpWords:         res.UpWords,
		DownWords:       res.DownWords,
		ActiveDownWords: res.ActiveDownWords,
		MaxStoredBytes:  res.MaxStoredBytes,
		Schedule:        Schedule(res.Schedule),
		Report:          Report(res.Report),
	}
}

// WriteResultJSON writes a full run as indented JSON.
func WriteResultJSON(w io.Writer, res *padr.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Result(res))
}

// ScheduleCSV writes one line per communication: round,src,dst.
func ScheduleCSV(w io.Writer, s *sched.Schedule) error {
	if _, err := io.WriteString(w, "round,src,dst\n"); err != nil {
		return err
	}
	for r, round := range s.Rounds {
		for _, c := range round {
			if _, err := fmt.Fprintf(w, "%d,%d,%d\n", r, c.Src, c.Dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReportCSV writes one line per non-idle switch: node,units,alternations.
func ReportCSV(w io.Writer, r *power.Report) error {
	if _, err := io.WriteString(w, "node,units,alternations\n"); err != nil {
		return err
	}
	for _, sw := range r.Switches {
		if sw.Units == 0 && sw.Alternations == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d\n", int(sw.Node), sw.Units, sw.Alternations); err != nil {
			return err
		}
	}
	return nil
}

// Sanitize strips newlines from free-text fields destined for CSV cells.
func Sanitize(s string) string {
	return strings.NewReplacer("\n", " ", "\r", " ", ",", ";").Replace(s)
}

package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/topology"
)

func runExample(t *testing.T) *padr.Result {
	t.Helper()
	s := comm.MustParse("((.)(.))")
	e, err := padr.New(topology.MustNew(8), s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	res := runExample(t)
	var buf bytes.Buffer
	if err := WriteScheduleJSON(&buf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSchedule(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRounds() != res.Schedule.NumRounds() {
		t.Fatalf("rounds %d != %d", back.NumRounds(), res.Schedule.NumRounds())
	}
	if back.TotalScheduled() != res.Schedule.TotalScheduled() {
		t.Fatalf("comms %d != %d", back.TotalScheduled(), res.Schedule.TotalScheduled())
	}
	// The reconstructed schedule must still verify against the topology.
	if err := back.Verify(topology.MustNew(8)); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalScheduleErrors(t *testing.T) {
	if _, err := UnmarshalSchedule([]byte("{")); err == nil {
		t.Error("truncated JSON: want error")
	}
	bad := ScheduleJSON{N: 4, Rounds: [][][2]int{{{0, 9}}}}
	raw, _ := json.Marshal(bad)
	if _, err := UnmarshalSchedule(raw); err == nil {
		t.Error("invalid endpoints: want error")
	}
}

func TestReportJSON(t *testing.T) {
	res := runExample(t)
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, res.Report); err != nil {
		t.Fatal(err)
	}
	var wire ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Algorithm != "padr" || wire.Mode != "stateful" {
		t.Fatalf("header wrong: %+v", wire)
	}
	if wire.TotalUnits != res.Report.TotalUnits() || wire.MaxUnits != res.Report.MaxUnits() {
		t.Fatalf("units wrong: %+v", wire)
	}
	sum := 0
	for _, sw := range wire.Switches {
		if sw.Units == 0 && sw.Alternations == 0 {
			t.Fatalf("idle switch exported: %+v", sw)
		}
		sum += sw.Units
	}
	if sum != wire.TotalUnits {
		t.Fatalf("per-switch sum %d != total %d", sum, wire.TotalUnits)
	}
}

func TestResultJSON(t *testing.T) {
	res := runExample(t)
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var wire ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Width != res.Width || wire.Rounds != res.Rounds {
		t.Fatalf("wire %+v", wire)
	}
	if wire.MaxStoredBytes != res.MaxStoredBytes || wire.UpWords != res.UpWords {
		t.Fatalf("stats wrong: %+v", wire)
	}
}

func TestScheduleCSV(t *testing.T) {
	res := runExample(t)
	var buf bytes.Buffer
	if err := ScheduleCSV(&buf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "round,src,dst" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 1+res.Schedule.TotalScheduled() {
		t.Fatalf("%d lines for %d comms", len(lines), res.Schedule.TotalScheduled())
	}
}

func TestReportCSV(t *testing.T) {
	res := runExample(t)
	var buf bytes.Buffer
	if err := ReportCSV(&buf, res.Report); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "node,units,alternations\n") {
		t.Fatalf("header missing: %q", out)
	}
	if strings.Count(out, "\n") < 2 {
		t.Fatalf("no switch rows: %q", out)
	}
}

func TestSanitize(t *testing.T) {
	if got := Sanitize("a,b\nc\rd"); got != "a;b c d" {
		t.Fatalf("Sanitize = %q", got)
	}
}

// Package circuit establishes whole source→destination circuits on CST
// switches, the way a centralized controller would (one connection per
// switch on the path). The PADR engine never uses this — it configures
// switches from local control words — but the baselines, the SRGA layer and
// several tests do.
package circuit

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// childSide returns which side of parent the node child hangs on.
func childSide(t *topology.Tree, child topology.Node) xbar.Side {
	if t.IsLeftChild(child) {
		return xbar.L
	}
	return xbar.R
}

// Configure establishes the circuit for one right-oriented communication:
// child-side→parent connections up to the LCA, a left→right turn at the
// LCA, and parent→child-side connections down to the destination leaf.
func Configure(t *topology.Tree, switches map[topology.Node]*xbar.Switch, c comm.Comm) error {
	if !c.RightOriented() {
		return fmt.Errorf("circuit: %s is not right oriented", c)
	}
	return ConfigureAny(t, switches, c)
}

// ConfigureAny is Configure for either orientation: a left-oriented
// communication turns right→left at its LCA instead. The hybrid residual
// rounds need this — a residual coloring round can mix orientations, and
// its circuits are billed on the same physical switches as the batch
// phases.
func ConfigureAny(t *topology.Tree, switches map[topology.Node]*xbar.Switch, c comm.Comm) error {
	if c.Src == c.Dst {
		return fmt.Errorf("circuit: %s is a self loop", c)
	}
	if c.Src < 0 || c.Dst < 0 || c.Src >= t.Leaves() || c.Dst >= t.Leaves() {
		return fmt.Errorf("circuit: %s out of range for N=%d", c, t.Leaves())
	}
	lca := t.LCA(c.Src, c.Dst)
	connect := func(u topology.Node, in, out xbar.Side) error {
		sw := switches[u]
		if sw == nil {
			return fmt.Errorf("circuit: no switch at node %d", u)
		}
		return sw.Connect(in, out)
	}

	// Upward leg: at every switch strictly below the LCA on the source
	// side, data enters from the child we came from and leaves toward the
	// parent.
	for child := t.Leaf(c.Src); t.Parent(child) != lca; child = t.Parent(child) {
		u := t.Parent(child)
		if err := connect(u, childSide(t, child), xbar.P); err != nil {
			return fmt.Errorf("circuit: %s at switch %d: %v", c, u, err)
		}
	}

	// The turn at the LCA: the source is in the left subtree and the
	// destination in the right subtree for a right-oriented pair.
	turnIn, turnOut := xbar.L, xbar.R
	if !c.RightOriented() {
		turnIn, turnOut = xbar.R, xbar.L
	}
	if err := connect(lca, turnIn, turnOut); err != nil {
		return fmt.Errorf("circuit: %s at lca %d: %v", c, lca, err)
	}

	// Downward leg: walk up from the destination leaf to collect the chain,
	// then configure each switch to pass parent data toward the next child.
	var chain []topology.Node
	for child := t.Leaf(c.Dst); t.Parent(child) != lca; child = t.Parent(child) {
		chain = append(chain, child)
	}
	// chain[i] hangs below chain[i+1]; the last element hangs below the
	// switch that is the LCA's child on the destination side.
	for i := len(chain) - 1; i >= 0; i-- {
		u := t.Parent(chain[i])
		if err := connect(u, xbar.P, childSide(t, chain[i])); err != nil {
			return fmt.Errorf("circuit: %s at switch %d: %v", c, u, err)
		}
	}
	return nil
}

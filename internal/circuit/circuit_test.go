package circuit

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
	"cst/internal/xbar"
)

func switchSet(t *topology.Tree) map[topology.Node]*xbar.Switch {
	m := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { m[n] = xbar.NewSwitch() })
	return m
}

func TestConfigureAdjacentPair(t *testing.T) {
	tr := topology.MustNew(4)
	switches := switchSet(tr)
	if err := Configure(tr, switches, comm.Comm{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	// Only the parent of leaves 0 and 1 (node 2) is touched: l->r.
	if got := switches[2].Config().String(); got != "[l->r]" {
		t.Fatalf("node 2 config = %s", got)
	}
	if switches[1].Units() != 0 || switches[3].Units() != 0 {
		t.Fatal("untouched switches must stay idle")
	}
}

func TestConfigureFullSpan(t *testing.T) {
	tr := topology.MustNew(8)
	switches := switchSet(tr)
	if err := Configure(tr, switches, comm.Comm{Src: 0, Dst: 7}); err != nil {
		t.Fatal(err)
	}
	// Up: node 4 (l->p), node 2 (l->p); turn at root (l->r); down: node 3
	// (p->r), node 7 (p->r).
	wants := map[topology.Node]string{
		4: "[l->p]", 2: "[l->p]", 1: "[l->r]", 3: "[p->r]", 7: "[p->r]",
	}
	for n, want := range wants {
		if got := switches[n].Config().String(); got != want {
			t.Errorf("node %d config = %s, want %s", n, got, want)
		}
	}
	// Total connections = number of path switches.
	total := 0
	for _, sw := range switches {
		total += sw.Units()
	}
	if total != 5 {
		t.Fatalf("total units = %d, want 5", total)
	}
}

// ConfigureAny on a left-oriented comm is the exact reflection of
// Configure on its mirror image: same per-switch connection shapes with L
// and R exchanged and the node reflected.
func TestConfigureAnyLeftOriented(t *testing.T) {
	tr := topology.MustNew(8)
	switches := switchSet(tr)
	if err := ConfigureAny(tr, switches, comm.Comm{Src: 7, Dst: 0}); err != nil {
		t.Fatal(err)
	}
	// Up: node 7 (r->p), node 3 (r->p); turn at root (r->l); down: node 2
	// (p->l), node 4 (p->l).
	wants := map[topology.Node]string{
		7: "[r->p]", 3: "[r->p]", 1: "[r->l]", 2: "[p->l]", 4: "[p->l]",
	}
	for n, want := range wants {
		if got := switches[n].Config().String(); got != want {
			t.Errorf("node %d config = %s, want %s", n, got, want)
		}
	}
	// Mixing the two orientations in one round is fine when the directed
	// links are disjoint: the opposite comm over the same span shares no
	// directed edge with the first, so no established connection is
	// re-driven (overwrites are how xbar models congestion; Verify is the
	// authority on compatibility).
	changesBefore := 0
	for _, sw := range switches {
		changesBefore += sw.TotalAlternations()
	}
	if err := ConfigureAny(tr, switches, comm.Comm{Src: 1, Dst: 6}); err != nil {
		t.Fatalf("opposite orientation over the same switches must coexist: %v", err)
	}
	changesAfter := 0
	for _, sw := range switches {
		changesAfter += sw.TotalAlternations()
	}
	if changesAfter != changesBefore {
		t.Fatalf("disjoint directed circuits re-drove %d outputs", changesAfter-changesBefore)
	}
	if err := ConfigureAny(tr, switches, comm.Comm{Src: 3, Dst: 3}); err == nil {
		t.Fatal("self loop must be rejected")
	}
}

func TestConfigureRightSubtreeSource(t *testing.T) {
	tr := topology.MustNew(8)
	switches := switchSet(tr)
	// Source 3 hangs right of node 5; node 5 must connect r->p.
	if err := Configure(tr, switches, comm.Comm{Src: 3, Dst: 4}); err != nil {
		t.Fatal(err)
	}
	if got := switches[5].Config().String(); got != "[r->p]" {
		t.Fatalf("node 5 config = %s", got)
	}
	if got := switches[6].Config().String(); got != "[p->l]" {
		t.Fatalf("node 6 config = %s", got)
	}
}

func TestConfigureRejectsBadComms(t *testing.T) {
	tr := topology.MustNew(8)
	switches := switchSet(tr)
	if err := Configure(tr, switches, comm.Comm{Src: 5, Dst: 2}); err == nil {
		t.Error("left-oriented: want error")
	}
	if err := Configure(tr, switches, comm.Comm{Src: -1, Dst: 2}); err == nil {
		t.Error("negative src: want error")
	}
	if err := Configure(tr, switches, comm.Comm{Src: 0, Dst: 8}); err == nil {
		t.Error("out of range dst: want error")
	}
}

func TestConfigureNilSwitch(t *testing.T) {
	tr := topology.MustNew(8)
	if err := Configure(tr, map[topology.Node]*xbar.Switch{}, comm.Comm{Src: 0, Dst: 7}); err == nil {
		t.Error("missing switches: want error")
	}
}

// Property: a random circuit touches exactly HopCount switches, each with
// one connection.
func TestConfigureTouchesExactlyPathSwitches(t *testing.T) {
	tr := topology.MustNew(64)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Intn(64), rng.Intn(64)
		if a >= b {
			continue
		}
		switches := switchSet(tr)
		if err := Configure(tr, switches, comm.Comm{Src: a, Dst: b}); err != nil {
			t.Fatal(err)
		}
		hops, err := tr.HopCount(a, b)
		if err != nil {
			t.Fatal(err)
		}
		touched := 0
		for _, sw := range switches {
			if sw.Units() > 0 {
				if sw.Units() != 1 {
					t.Fatalf("%d->%d: a switch made %d connections", a, b, sw.Units())
				}
				touched++
			}
		}
		if touched != hops {
			t.Fatalf("%d->%d: touched %d switches, path has %d", a, b, touched, hops)
		}
	}
}

// Package trace renders CST runs for humans: the communication-set line
// view of the paper's Fig. 2, the tree-with-configurations view of Fig. 1,
// and a streaming round-by-round log assembled from padr observer
// callbacks. cmd/cstviz and cmd/cstsim are thin wrappers over this package.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/sched"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// RenderSet draws a communication set the way the paper's Fig. 2 does: the
// PE line with '(' at sources and ')' at destinations, span arcs one row per
// nesting level, and the per-gap congestion profile underneath.
func RenderSet(s *comm.Set) string {
	var b strings.Builder
	depths, err := s.Depths()
	wellNested := err == nil
	fmt.Fprintf(&b, "PEs : %s\n", s.String())

	if wellNested && s.Len() > 0 {
		maxd := 0
		for _, d := range depths {
			if d > maxd {
				maxd = d
			}
		}
		for level := 0; level <= maxd; level++ {
			row := make([]byte, s.N)
			for i := range row {
				row[i] = ' '
			}
			for i, c := range s.Comms {
				if depths[i] != level {
					continue
				}
				row[c.Src] = '\\'
				row[c.Dst] = '/'
				for p := c.Src + 1; p < c.Dst; p++ {
					row[p] = '_'
				}
			}
			fmt.Fprintf(&b, "d=%-2d: %s\n", level, strings.TrimRight(string(row), " "))
		}
	}

	prof := s.GapProfile()
	row := make([]byte, s.N)
	for i := range row {
		row[i] = ' '
	}
	for g, c := range prof {
		if c > 9 {
			row[g] = '+'
		} else if c > 0 {
			row[g] = byte('0' + c)
		} else {
			row[g] = '.'
		}
	}
	fmt.Fprintf(&b, "gaps: %s\n", strings.TrimRight(string(row), " "))
	return b.String()
}

// RenderTree draws the tree with one annotation per switch, typically its
// live configuration (Fig. 1 style). Pass nil to annotate switch roles from
// the stored words instead.
func RenderTree(t *topology.Tree, cfg deliver.RoundConfig, s *comm.Set) string {
	return t.ASCII(func(n topology.Node) string {
		if t.IsLeaf(n) {
			pe := t.PE(n)
			if s != nil {
				for _, c := range s.Comms {
					if c.Src == pe {
						return fmt.Sprintf("S%d", pe)
					}
					if c.Dst == pe {
						return fmt.Sprintf("D%d", pe)
					}
				}
			}
			return "."
		}
		if cfg == nil {
			return ""
		}
		conf := cfg[n]
		if len(conf.Conns()) == 0 {
			return "·"
		}
		return strings.Trim(conf.String(), "[]")
	})
}

// RenderStored annotates each switch with its C_S word, the Fig. 3(b)/4(a)
// teaching view; stored is indexed by node (padr.Result.InitialStored).
// Wider cells keep the five-field words readable.
func RenderStored(t *topology.Tree, stored []ctrl.Stored, s *comm.Set) string {
	return t.ASCIIWidth(func(n topology.Node) string {
		if t.IsLeaf(n) {
			pe := t.PE(n)
			if s != nil {
				for _, c := range s.Comms {
					if c.Src == pe {
						return "S"
					}
					if c.Dst == pe {
						return "D"
					}
				}
			}
			return "."
		}
		var st ctrl.Stored
		if int(n) < len(stored) {
			st = stored[n]
		}
		if !st.Pending() {
			return "·"
		}
		return st.String()
	}, 24)
}

// RenderGantt draws a schedule as one row per round, each communication's
// span overlaid on the PE line — the round-by-round counterpart of
// RenderSet. Longer spans draw first so nested compatible pairs stay
// visible.
func RenderGantt(s *sched.Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PEs : %s\n", s.Set.String())
	for r, round := range s.Rounds {
		row := make([]byte, s.Set.N)
		for i := range row {
			row[i] = ' '
		}
		ordered := append([]comm.Comm(nil), round...)
		sort.Slice(ordered, func(i, j int) bool {
			return span(ordered[i]) > span(ordered[j])
		})
		for _, c := range ordered {
			lo, hi := c.Src, c.Dst
			if lo > hi {
				lo, hi = hi, lo
			}
			for p := lo + 1; p < hi; p++ {
				row[p] = '_'
			}
			row[c.Src] = '\\'
			row[c.Dst] = '/'
		}
		fmt.Fprintf(&b, "r=%-3d: %s\n", r, strings.TrimRight(string(row), " "))
	}
	return b.String()
}

func span(c comm.Comm) int {
	d := c.Dst - c.Src
	if d < 0 {
		return -d
	}
	return d
}

// Logger streams a run to an io.Writer via padr observer callbacks.
type Logger struct {
	tree *topology.Tree
	set  *comm.Set
	out  io.Writer
	// Words controls whether every control word is printed.
	Words bool
	// Trees controls whether the configured tree is drawn after each round.
	Trees bool

	rec deliver.Recorder
	obs padr.Observer
}

// NewLogger builds a logger for one run.
func NewLogger(t *topology.Tree, s *comm.Set, out io.Writer) *Logger {
	l := &Logger{tree: t, set: s, out: out}
	inner := l.rec.Observer()
	l.obs = padr.Observer{
		RoundStart: func(round int) {
			inner.RoundStart(round)
			fmt.Fprintf(out, "--- round %d ---\n", round)
		},
		WordSent: func(parent, child topology.Node, w ctrl.Down) {
			if l.Words && w.Use != ctrl.UseNone {
				fmt.Fprintf(out, "  %d -> %d : %s\n", parent, child, w)
			}
		},
		Configured: func(u topology.Node, cfg xbar.Config) {
			inner.Configured(u, cfg)
		},
		RoundDone: func(round int, performed []comm.Comm) {
			inner.RoundDone(round, performed)
			parts := make([]string, len(performed))
			for i, c := range performed {
				parts[i] = c.String()
			}
			fmt.Fprintf(out, "  performed: %s\n", strings.Join(parts, " "))
			if l.Trees {
				fmt.Fprint(out, RenderTree(l.tree, l.rec.Config(round), l.set))
			}
		},
	}
	return l
}

// Observer returns the padr callbacks; pass to padr.WithObserver.
func (l *Logger) Observer() padr.Observer { return l.obs }

// VerifyDataPlane replays the captured rounds through the token data plane.
func (l *Logger) VerifyDataPlane() error { return l.rec.Verify(l.tree) }

package trace

import (
	"fmt"
	"strings"

	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/topology"
)

// Figure renders one of the paper's illustrative figures (1, 2 or 3/4) as
// text. cmd/cstviz is a thin wrapper over this.
func Figure(n int) (string, error) {
	switch n {
	case 1:
		return figure1()
	case 2:
		return figure2()
	case 3, 4:
		return figure3()
	default:
		return "", fmt.Errorf("trace: no figure %d (have 1, 2, 3)", n)
	}
}

// figure1 reproduces Fig. 1: compatible communications established
// simultaneously over an 8-PE CST, drawn as the round-0 circuits.
func figure1() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 1 — communications over the CST (round-0 circuits):\n\n")
	set, err := comm.Parse("(.)(..).")
	if err != nil {
		return "", err
	}
	tree, err := topology.New(set.N)
	if err != nil {
		return "", err
	}
	var rec deliver.Recorder
	e, err := padr.New(tree, set, padr.WithObserver(rec.Observer()))
	if err != nil {
		return "", err
	}
	res, err := e.Run()
	if err != nil {
		return "", err
	}
	for r := 0; r < res.Rounds; r++ {
		fmt.Fprintf(&b, "--- round %d: %v ---\n", r, res.Schedule.Rounds[r])
		b.WriteString(RenderTree(tree, rec.Config(r), set))
		b.WriteString("\n")
	}
	if err := rec.Verify(tree); err != nil {
		return "", err
	}
	b.WriteString(res.Report.Summary())
	b.WriteString("\n")
	return b.String(), nil
}

// figure2 reproduces Fig. 2: a right-oriented well-nested communication
// set with its span arcs and per-gap congestion.
func figure2() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 2 — a right-oriented well-nested communication set:\n")
	set, err := comm.Parse("((.)((.)..).)(.)")
	if err != nil {
		return "", err
	}
	b.WriteString(RenderSet(set))
	return b.String(), nil
}

// figure3 reproduces the teaching content of Figs. 3(b) and 4(a): the C_S
// control words every switch stores at the end of Phase 1, classifying the
// five communication types.
func figure3() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 3/4 — C_S stored at each switch after Phase 1\n")
	b.WriteString("(five types: M matched, SL/SR sources passing up, DL/DR destinations fed from above):\n\n")
	set, err := comm.Parse("((.)(.))")
	if err != nil {
		return "", err
	}
	tree, err := topology.New(set.N)
	if err != nil {
		return "", err
	}
	e, err := padr.New(tree, set)
	if err != nil {
		return "", err
	}
	res, err := e.Run()
	if err != nil {
		return "", err
	}
	b.WriteString(RenderStored(tree, res.InitialStored, set))
	return b.String(), nil
}

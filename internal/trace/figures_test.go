package trace

import (
	"strings"
	"testing"
)

func TestFigureGoldens(t *testing.T) {
	cases := []struct {
		n     int
		wants []string
	}{
		{1, []string{"Figure 1", "round 0", "l->r", "padr/stateful"}},
		{2, []string{"Figure 2", "PEs : ((.)((.)..).)(.)", "d=0", "gaps:"}},
		{3, []string{"Figure 3/4", "M:1", "five types"}},
		{4, []string{"Figure 3/4", "M:1"}},
	}
	for _, c := range cases {
		out, err := Figure(c.n)
		if err != nil {
			t.Fatalf("Figure(%d): %v", c.n, err)
		}
		for _, want := range c.wants {
			if !strings.Contains(out, want) {
				t.Errorf("Figure(%d) missing %q:\n%s", c.n, want, out)
			}
		}
	}
	if _, err := Figure(9); err == nil {
		t.Error("Figure(9): want error")
	}
}

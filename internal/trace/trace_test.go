package trace

import (
	"bytes"
	"strings"
	"testing"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/topology"
)

func TestRenderSetWellNested(t *testing.T) {
	s := comm.MustParse("(())")
	out := RenderSet(s)
	for _, want := range []string{"PEs : (())", "d=0", "d=1", "gaps: 121"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderSet missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSetArcRows(t *testing.T) {
	out := RenderSet(comm.MustParse("(.)."))
	if !strings.Contains(out, `\_/`) {
		t.Errorf("span arc not drawn:\n%s", out)
	}
}

func TestRenderSetEmpty(t *testing.T) {
	s := comm.NewSet(4)
	out := RenderSet(s)
	if !strings.Contains(out, "PEs :") {
		t.Errorf("empty set should still render the PE row:\n%s", out)
	}
	if !strings.Contains(out, "gaps: ...") {
		t.Errorf("empty set should render an all-idle congestion profile:\n%s", out)
	}
	if strings.Contains(out, "d=") {
		t.Errorf("empty set has no arcs, no depth rows expected:\n%s", out)
	}
}

func TestRenderSetNotWellNested(t *testing.T) {
	s := comm.NewSet(4, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 3})
	out := RenderSet(s)
	if !strings.Contains(out, "gaps:") {
		t.Errorf("profile missing for non-well-nested set:\n%s", out)
	}
	if strings.Contains(out, "d=0") {
		t.Errorf("depth rows must be skipped for crossing sets:\n%s", out)
	}
}

func TestRenderSetWideCongestion(t *testing.T) {
	// Gap congestion above 9 renders as '+'.
	s, err := comm.NestedChain(32, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderSet(s), "+") {
		t.Error("congestion > 9 should render '+'")
	}
}

func TestRenderTree(t *testing.T) {
	s := comm.MustParse("(())")
	tr := topology.MustNew(4)
	out := RenderTree(tr, nil, s)
	for _, want := range []string{"S0", "S1", "D2", "D3"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderTree missing %q:\n%s", want, out)
		}
	}
	cfg := deliver.RoundConfig{}
	out = RenderTree(tr, cfg, s)
	if !strings.Contains(out, "·") {
		t.Errorf("idle switches should render ·:\n%s", out)
	}
}

func TestRenderStored(t *testing.T) {
	tr := topology.MustNew(4)
	stored := make([]ctrl.Stored, 4)
	stored[1] = ctrl.Stored{M: 1}
	out := RenderStored(tr, stored, comm.MustParse("(())"))
	if !strings.Contains(out, "M:1") {
		t.Errorf("RenderStored missing state:\n%s", out)
	}
}

func TestLoggerEndToEnd(t *testing.T) {
	s := comm.MustParse("(())")
	tr := topology.MustNew(4)
	var buf bytes.Buffer
	l := NewLogger(tr, s, &buf)
	l.Words = true
	l.Trees = true
	e, err := padr.New(tr, s, padr.WithObserver(l.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"--- round 0 ---", "--- round 1 ---", "performed: 0->3", "performed: 1->2", "[s,null]", "l->r"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
	if err := l.VerifyDataPlane(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderGantt(t *testing.T) {
	s := comm.MustParse("((.)((.)..).)(.)")
	tr := topology.MustNew(16)
	e, err := padr.New(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGantt(res.Schedule)
	for _, want := range []string{"PEs :", "r=0", "r=1", `\`, "/"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 1+res.Rounds {
		t.Errorf("gantt has %d lines, want %d", lines, 1+res.Rounds)
	}
}

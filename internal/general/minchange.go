package general

import (
	"fmt"

	"cst/internal/circuit"
	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/energy"
	"cst/internal/sched"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// MinChangeResult is the outcome of the exact joint optimization.
type MinChangeResult struct {
	// Schedule is a width-round schedule minimizing configuration changes.
	Schedule *sched.Schedule
	// Changes is the minimal total connection-change count over all
	// width-round schedules explored (per the energy package's
	// minimal-work trajectory realization, connections held across rounds).
	Changes int
	// MaxPerSwitch is the hottest switch's change count in that schedule.
	MaxPerSwitch int
	// Exhaustive reports whether the search space was fully explored
	// within the budget; when false the result is an upper bound.
	Exhaustive bool
}

// MinChangeSchedule searches *all* width-round schedules of a (well-nested
// or crossing) right-oriented set for the one with the fewest total
// configuration changes, where circuits are established by a centralized
// controller that holds connections across rounds. It answers whether the
// paper's two optimality goals — exactly-width rounds and O(1) per-switch
// changes — can coexist for a given input at all, independent of any
// distributed protocol (experiment E15).
//
// The search enumerates assignments of communications to rounds with
// per-round link-compatibility pruning; budget bounds the number of
// complete schedules evaluated. Exponential: intended for small instances.
func MinChangeSchedule(t *topology.Tree, s *comm.Set, budget int) (*MinChangeResult, error) {
	if t.Leaves() != s.N {
		return nil, fmt.Errorf("general: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.IsRightOriented() {
		return nil, fmt.Errorf("general: set must be right oriented")
	}
	width, err := s.Width(t)
	if err != nil {
		return nil, err
	}
	if s.Len() == 0 {
		return &MinChangeResult{Schedule: &sched.Schedule{Set: s.Clone()}, Exhaustive: true}, nil
	}

	// Precompute edge indices per communication.
	edges := make([][]int, s.Len())
	for i, c := range s.Comms {
		pe, err := t.PathEdges(c.Src, c.Dst)
		if err != nil {
			return nil, err
		}
		for _, e := range pe {
			edges[i] = append(edges[i], t.EdgeIndex(e))
		}
	}

	search := &minChangeSearch{
		t: t, s: s, width: width, edges: edges,
		used:   make([][]bool, width),
		assign: make([]int, s.Len()),
		budget: budget,
	}
	for r := range search.used {
		search.used[r] = make([]bool, t.DirectedEdgeCount())
	}
	for i := range search.assign {
		search.assign[i] = -1
	}
	search.best = -1
	search.dfs(0)

	if search.best < 0 {
		return nil, fmt.Errorf("general: no width-%d schedule found within budget (budget too small)", width)
	}
	rounds := make([][]comm.Comm, width)
	for i, r := range search.bestAssign {
		rounds[r] = append(rounds[r], s.Comms[i])
	}
	schedule := &sched.Schedule{Set: s.Clone(), Rounds: rounds}
	return &MinChangeResult{
		Schedule:     schedule,
		Changes:      search.best,
		MaxPerSwitch: search.bestMaxPerSwitch,
		Exhaustive:   !search.exhausted,
	}, nil
}

type minChangeSearch struct {
	t     *topology.Tree
	s     *comm.Set
	width int
	edges [][]int

	used   [][]bool // per round, per directed edge
	assign []int

	budget    int
	exhausted bool

	best             int
	bestAssign       []int
	bestMaxPerSwitch int
}

func (m *minChangeSearch) dfs(i int) {
	if m.exhausted {
		return
	}
	if i == len(m.assign) {
		if m.budget <= 0 {
			m.exhausted = true
			return
		}
		m.budget--
		changes, maxPer := m.evaluate()
		if m.best < 0 || changes < m.best {
			m.best = changes
			m.bestAssign = append([]int(nil), m.assign...)
			m.bestMaxPerSwitch = maxPer
		}
		return
	}
	for r := 0; r < m.width; r++ {
		ok := true
		for _, e := range m.edges[i] {
			if m.used[r][e] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, e := range m.edges[i] {
			m.used[r][e] = true
		}
		m.assign[i] = r
		m.dfs(i + 1)
		m.assign[i] = -1
		for _, e := range m.edges[i] {
			m.used[r][e] = false
		}
	}
}

// evaluate prices the current complete assignment: circuits established
// round by round over held crossbars, changes counted by the minimal-work
// trajectory realization.
func (m *minChangeSearch) evaluate() (changes, maxPerSwitch int) {
	switches := map[topology.Node]*xbar.Switch{}
	m.t.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	configs := make([]deliver.RoundConfig, m.width)
	for r := 0; r < m.width; r++ {
		for i, round := range m.assign {
			if round != r {
				continue
			}
			// Compatibility was enforced during the DFS; Configure cannot
			// fail for in-range communications.
			_ = circuit.Configure(m.t, switches, m.s.Comms[i])
		}
		snap := deliver.RoundConfig{}
		m.t.EachSwitch(func(n topology.Node) { snap[n] = switches[n].Config() })
		configs[r] = snap
	}
	b := energy.Evaluate(m.t, configs, energy.Paper)
	// Per-switch maximum via a second pass.
	perSwitch := map[topology.Node]int{}
	prev := map[topology.Node]xbar.Config{}
	m.t.EachSwitch(func(n topology.Node) { prev[n] = xbar.Config{} })
	for _, cfgRound := range configs {
		m.t.EachSwitch(func(n topology.Node) {
			cur := cfgRound[n]
			for _, out := range []xbar.Side{xbar.L, xbar.R, xbar.P} {
				d := cur.Driver(out)
				if d != xbar.None && prev[n].Driver(out) != d {
					perSwitch[n]++
				}
			}
			prev[n] = cur
		})
	}
	for _, v := range perSwitch {
		if v > maxPerSwitch {
			maxPerSwitch = v
		}
	}
	return b.Changes, maxPerSwitch
}

package general_test

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/general"
	"cst/internal/topology"
)

// Crossing sets — which the paper's algorithm excludes — schedule via
// conflict coloring.
func ExampleFirstFit() {
	// (0,2) and (1,3) cross and share tree links: two rounds needed.
	set := comm.NewSet(4, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 3})
	tree := topology.MustNew(4)
	schedule, err := general.FirstFit(tree, set)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(schedule.NumRounds(), "rounds")
	fmt.Println("valid:", schedule.Verify(tree) == nil)
	// Output:
	// 2 rounds
	// valid: true
}

// Exact finds the true minimum round count by branch and bound.
func ExampleExact() {
	set, _ := comm.BitReversal(16) // the FFT exchange pattern: crossing-heavy
	tree := topology.MustNew(16)
	width, _ := set.Width(tree)
	// Incumbent keeps the valid best-so-far schedule even if the search
	// budget runs out; only genuine failures surface as errors.
	schedule, _, err := general.Incumbent(general.Exact(tree, set, 100000))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("width %d, optimal rounds %d\n", width, schedule.NumRounds())
	// Output:
	// width 4, optimal rounds 4
}

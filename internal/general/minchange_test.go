package general

import (
	"math/rand"
	"testing"

	"cst/internal/circuit"
	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/energy"
	"cst/internal/padr"
	"cst/internal/topology"
	"cst/internal/xbar"
)

func TestMinChangeRejectsBadInput(t *testing.T) {
	tr := topology.MustNew(8)
	if _, err := MinChangeSchedule(tr, comm.MustParse("(())"), 100); err == nil {
		t.Error("size mismatch: want error")
	}
	leftward := comm.NewSet(8, comm.Comm{Src: 5, Dst: 1})
	if _, err := MinChangeSchedule(tr, leftward, 100); err == nil {
		t.Error("left-oriented: want error")
	}
}

func TestMinChangeEmpty(t *testing.T) {
	tr := topology.MustNew(8)
	res, err := MinChangeSchedule(tr, comm.NewSet(8), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changes != 0 || !res.Exhaustive {
		t.Fatalf("empty: %+v", res)
	}
}

func TestMinChangeSingle(t *testing.T) {
	tr := topology.MustNew(8)
	s := comm.MustParse("(......)")
	res, err := MinChangeSchedule(tr, s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.VerifyOptimal(tr); err != nil {
		t.Fatal(err)
	}
	// One circuit over 8 leaves: 5 switches, 5 connections, all in round 0.
	if res.Changes != 5 || res.MaxPerSwitch != 1 {
		t.Fatalf("res = %+v", res)
	}
}

// The question the E12 finding raises: on the minimal divergence example,
// does ANY width-optimal schedule avoid the extra churn? MinChangeSchedule
// answers exactly; the greedy engine's run must cost at least as much.
func TestMinChangeOnDivergenceExample(t *testing.T) {
	tr := topology.MustNew(16)
	s := comm.MustParse("..(((()(....))))")
	opt, err := MinChangeSchedule(tr, s, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Schedule.VerifyOptimal(tr); err != nil {
		t.Fatal(err)
	}
	if !opt.Exhaustive {
		t.Fatal("instance small enough to exhaust")
	}

	// Price the greedy engine's actual schedule the same way.
	var rec deliver.Recorder
	e, err := padr.New(tr, s, padr.WithObserver(rec.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rounds := make([]deliver.RoundConfig, rec.Rounds())
	for i := range rounds {
		rounds[i] = rec.Config(i)
	}
	greedyChanges := energy.Evaluate(tr, rounds, energy.Paper).Changes
	if opt.Changes > greedyChanges {
		t.Fatalf("optimum %d worse than greedy engine %d", opt.Changes, greedyChanges)
	}
	t.Logf("divergence example: optimal width-round changes=%d (max/switch %d), greedy engine=%d",
		opt.Changes, opt.MaxPerSwitch, greedyChanges)
}

func TestMinChangeRandomUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := topology.MustNew(16)
	for trial := 0; trial < 10; trial++ {
		s, err := comm.RandomWellNested(rng, 16, 2+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		res, err := MinChangeSchedule(tr, s, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.VerifyOptimal(tr); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		// Lower bound: every *distinct* connection used by some circuit must
		// be established at least once. (Circuits may share connections —
		// e.g. two comms entering a switch from the parent toward the same
		// child in different rounds — and a held connection serves both for
		// free, so summing hop counts would overcount.)
		distinct := map[[3]int]bool{}
		for _, c := range s.Comms {
			sws := connectionsOf(t, tr, c)
			for _, k := range sws {
				distinct[k] = true
			}
		}
		if res.Changes < len(distinct) {
			t.Fatalf("set %s: %d changes below the distinct-connection bound %d", s, res.Changes, len(distinct))
		}
	}
}

// connectionsOf lists the (node, out, in) connections of one circuit by
// configuring it on fresh switches.
func connectionsOf(t *testing.T, tr *topology.Tree, c comm.Comm) [][3]int {
	t.Helper()
	switches := map[topology.Node]*xbar.Switch{}
	tr.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	if err := circuit.Configure(tr, switches, c); err != nil {
		t.Fatal(err)
	}
	var out [][3]int
	tr.EachSwitch(func(n topology.Node) {
		for _, conn := range switches[n].Config().Conns() {
			out = append(out, [3]int{int(n), int(conn.Out), int(conn.In)})
		}
	})
	return out
}

func TestMinChangeBudgetTooSmall(t *testing.T) {
	tr := topology.MustNew(16)
	s := comm.MustParse("..(((()(....))))")
	res, err := MinChangeSchedule(tr, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatal("budget 1 cannot exhaust this instance")
	}
	if err := res.Schedule.Verify(tr); err != nil {
		t.Fatalf("bounded result must still be valid: %v", err)
	}
}

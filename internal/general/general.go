// Package general schedules *arbitrary* right-oriented communication sets —
// crossing spans allowed — on the CST, the first extension named in the
// paper's concluding remarks ("the study of other communication patterns on
// the CST").
//
// Scheduling is graph coloring: two communications conflict when their
// circuits share a directed tree link, rounds are color classes, and the
// width (maximum per-link congestion) is a clique-size lower bound on the
// round count. The package provides
//
//   - the conflict graph itself,
//   - FirstFit: assign each communication (in left-to-right source order)
//     the first round whose links are all free — fast, no optimality
//     promise,
//   - Exact: branch-and-bound chromatic search — optimal, exponential worst
//     case, bounded by an explicit node budget.
//
// Experiment E11 measures how often FirstFit is optimal and how often the
// optimum exceeds the width lower bound.
package general

import (
	"errors"
	"fmt"
	"sort"

	"cst/internal/comm"
	"cst/internal/sched"
	"cst/internal/topology"
)

// ConflictGraph is an adjacency list over communication indices (into
// Set.Comms): i and j are adjacent when their circuits share a directed
// link.
type ConflictGraph struct {
	// Adj[i] lists the neighbours of communication i, ascending.
	Adj [][]int
}

// Degree returns the number of conflicts of communication i.
func (g *ConflictGraph) Degree(i int) int { return len(g.Adj[i]) }

// MaxDegree returns the largest degree.
func (g *ConflictGraph) MaxDegree() int {
	maxd := 0
	for i := range g.Adj {
		if len(g.Adj[i]) > maxd {
			maxd = len(g.Adj[i])
		}
	}
	return maxd
}

// Edges returns the number of conflict pairs.
func (g *ConflictGraph) Edges() int {
	total := 0
	for i := range g.Adj {
		total += len(g.Adj[i])
	}
	return total / 2
}

// Conflicts builds the conflict graph of a valid right-oriented set.
func Conflicts(t *topology.Tree, s *comm.Set) (*ConflictGraph, error) {
	if t.Leaves() != s.N {
		return nil, fmt.Errorf("general: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.IsRightOriented() {
		return nil, fmt.Errorf("general: set must be right oriented (decompose two-sided sets first)")
	}
	// users[edge] lists the communications whose circuit uses that directed
	// link; every pair within one list conflicts.
	users := make([][]int, t.DirectedEdgeCount())
	for i, c := range s.Comms {
		edges, err := t.PathEdges(c.Src, c.Dst)
		if err != nil {
			return nil, err
		}
		for _, e := range edges {
			idx := t.EdgeIndex(e)
			users[idx] = append(users[idx], i)
		}
	}
	adjSet := make([]map[int]bool, s.Len())
	for i := range adjSet {
		adjSet[i] = map[int]bool{}
	}
	for _, list := range users {
		for a := 0; a < len(list); a++ {
			for b := a + 1; b < len(list); b++ {
				adjSet[list[a]][list[b]] = true
				adjSet[list[b]][list[a]] = true
			}
		}
	}
	g := &ConflictGraph{Adj: make([][]int, s.Len())}
	for i, set := range adjSet {
		for j := range set {
			g.Adj[i] = append(g.Adj[i], j)
		}
		sort.Ints(g.Adj[i])
	}
	return g, nil
}

// FirstFit schedules the set by scanning communications in left-to-right
// source order and placing each in the lowest-numbered round where all of
// its links are free. The result is a valid schedule with at most
// MaxDegree+1 rounds; on well-nested sets it uses exactly the width.
func FirstFit(t *topology.Tree, s *comm.Set) (*sched.Schedule, error) {
	g, err := Conflicts(t, s)
	if err != nil {
		return nil, err
	}
	order := make([]int, s.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s.Comms[order[a]].Src < s.Comms[order[b]].Src })
	colors := assignGreedy(g, order)
	return scheduleFromColors(s, colors), nil
}

// Exact finds a minimum-round schedule by branch-and-bound chromatic
// search, seeded with the FirstFit solution as the incumbent. nodeBudget
// bounds the search-tree size; when exhausted, Exact returns the best
// schedule found so far along with ErrBudget.
func Exact(t *topology.Tree, s *comm.Set, nodeBudget int) (*sched.Schedule, error) {
	g, err := Conflicts(t, s)
	if err != nil {
		return nil, err
	}
	if s.Len() == 0 {
		return &sched.Schedule{Set: s.Clone()}, nil
	}
	// Incumbent: greedy in descending-degree order (Welsh–Powell), often
	// tighter than source order.
	order := make([]int, s.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })
	best := assignGreedy(g, order)
	bestK := numColors(best)

	width, err := s.Width(t)
	if err != nil {
		return nil, err
	}

	bb := &searcher{g: g, order: order, budget: nodeBudget}
	cur := make([]int, s.Len())
	for i := range cur {
		cur[i] = -1
	}
	if improved, _ := bb.search(cur, 0, 0, bestK, width); improved != nil {
		best = improved
	}
	schedule := scheduleFromColors(s, best)
	if bb.exhausted {
		return schedule, ErrBudget
	}
	return schedule, nil
}

// ErrBudget reports that Exact ran out of search nodes; the schedule
// returned alongside is the best incumbent, valid but possibly suboptimal.
var ErrBudget = fmt.Errorf("general: search budget exhausted; result may be suboptimal")

// Incumbent adapts an Exact result for callers that prefer a valid,
// possibly suboptimal schedule over an error. Budget exhaustion is not a
// failure — Exact always carries its best incumbent alongside ErrBudget —
// so Incumbent downgrades it to exhausted=true and keeps the schedule.
// Any other error is returned as is with a nil schedule. Idiomatic use:
//
//	sch, exhausted, err := general.Incumbent(general.Exact(t, s, budget))
func Incumbent(s *sched.Schedule, err error) (sch *sched.Schedule, exhausted bool, outErr error) {
	if err == nil {
		return s, false, nil
	}
	if errors.Is(err, ErrBudget) {
		return s, true, nil
	}
	return nil, false, err
}

type searcher struct {
	g         *ConflictGraph
	order     []int
	budget    int
	exhausted bool
}

// search assigns colors to order[pos:] with at most `limit-1`+1 colors,
// returning an improved complete coloring (or nil) and its color count.
// lower is the clique lower bound: once limit == lower the incumbent is
// provably optimal and the search stops.
func (b *searcher) search(cur []int, pos, used, limit, lower int) ([]int, int) {
	if limit <= lower {
		return nil, 0
	}
	if b.budget <= 0 {
		b.exhausted = true
		return nil, 0
	}
	b.budget--
	if pos == len(b.order) {
		if used >= limit {
			return nil, 0
		}
		out := append([]int(nil), cur...)
		return out, used
	}
	v := b.order[pos]
	var bestSol []int
	bestK := limit
	// Try existing colors, then one fresh color; never exceed color index
	// bestK-2 so every completion strictly improves the incumbent. bestK
	// may tighten mid-loop, so the bound is re-checked per iteration.
	for c := 0; c <= used && c < len(b.g.Adj); c++ {
		if c > bestK-2 {
			break
		}
		ok := true
		for _, nb := range b.g.Adj[v] {
			if cur[nb] == c {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		cur[v] = c
		newUsed := used
		if c == used {
			newUsed = used + 1
		}
		if sol, k := b.search(cur, pos+1, newUsed, bestK, lower); sol != nil && k < bestK {
			bestSol, bestK = sol, k
			if bestK <= lower {
				cur[v] = -1
				return bestSol, bestK
			}
		}
		cur[v] = -1
		if b.exhausted {
			break
		}
	}
	return bestSol, bestK
}

// assignGreedy colors vertices in the given order with the smallest legal
// color.
func assignGreedy(g *ConflictGraph, order []int) []int {
	colors := make([]int, len(g.Adj))
	for i := range colors {
		colors[i] = -1
	}
	for _, v := range order {
		used := map[int]bool{}
		for _, nb := range g.Adj[v] {
			if colors[nb] >= 0 {
				used[colors[nb]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

func numColors(colors []int) int {
	maxc := -1
	for _, c := range colors {
		if c > maxc {
			maxc = c
		}
	}
	return maxc + 1
}

// scheduleFromColors groups communications by color into rounds.
func scheduleFromColors(s *comm.Set, colors []int) *sched.Schedule {
	k := numColors(colors)
	rounds := make([][]comm.Comm, k)
	for i, c := range colors {
		rounds[c] = append(rounds[c], s.Comms[i])
	}
	return &sched.Schedule{Set: s.Clone(), Rounds: rounds}
}

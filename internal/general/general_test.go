package general

import (
	"errors"
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/topology"
)

func TestConflictsBasics(t *testing.T) {
	tr := topology.MustNew(8)
	// (0,2) and (1,3) cross and share links; (5,6) is far away.
	s := comm.NewSet(8, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 3}, comm.Comm{Src: 5, Dst: 6})
	g, err := Conflicts(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 1 {
		t.Fatalf("edges = %d, want 1", g.Edges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if g.MaxDegree() != 1 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
}

func TestConflictsRejectsBadInput(t *testing.T) {
	tr := topology.MustNew(8)
	if _, err := Conflicts(tr, comm.MustParse("(())")); err == nil {
		t.Error("size mismatch: want error")
	}
	leftward := comm.NewSet(8, comm.Comm{Src: 5, Dst: 1})
	if _, err := Conflicts(tr, leftward); err == nil {
		t.Error("left-oriented: want error")
	}
	invalid := comm.NewSet(8, comm.Comm{Src: 0, Dst: 20})
	if _, err := Conflicts(tr, invalid); err == nil {
		t.Error("invalid set: want error")
	}
}

func TestFirstFitValid(t *testing.T) {
	tr := topology.MustNew(32)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		s, err := comm.RandomOriented(rng, 32, 10)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := FirstFit(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := sch.Verify(tr); err != nil {
			t.Fatalf("set %v: %v", s.Comms, err)
		}
		w, err := s.Width(tr)
		if err != nil {
			t.Fatal(err)
		}
		if sch.NumRounds() < w {
			t.Fatalf("set %v: %d rounds beats the width bound %d", s.Comms, sch.NumRounds(), w)
		}
	}
}

// On well-nested sets FirstFit in source order is optimal: it matches the
// width exactly, agreeing with PADR.
func TestFirstFitOptimalOnWellNested(t *testing.T) {
	tr := topology.MustNew(64)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		s, err := comm.RandomWellNested(rng, 64, rng.Intn(25))
		if err != nil {
			t.Fatal(err)
		}
		sch, err := FirstFit(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := sch.VerifyOptimal(tr); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		eng, err := padr.New(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if sch.NumRounds() != res.Rounds {
			t.Fatalf("set %s: first-fit %d rounds vs PADR %d", s, sch.NumRounds(), res.Rounds)
		}
	}
}

func TestExactNeverWorseThanFirstFit(t *testing.T) {
	tr := topology.MustNew(32)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		s, err := comm.RandomOriented(rng, 32, 8)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := FirstFit(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		ex, _, err := Incumbent(Exact(tr, s, 200000))
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.Verify(tr); err != nil {
			t.Fatalf("set %v: %v", s.Comms, err)
		}
		if ex.NumRounds() > ff.NumRounds() {
			t.Fatalf("set %v: exact %d rounds worse than first-fit %d", s.Comms, ex.NumRounds(), ff.NumRounds())
		}
		w, err := s.Width(tr)
		if err != nil {
			t.Fatal(err)
		}
		if ex.NumRounds() < w {
			t.Fatalf("set %v: exact %d rounds below width %d", s.Comms, ex.NumRounds(), w)
		}
	}
}

// The FFT bit-reversal exchange is the canonical crossing workload: the
// general scheduler must handle it, and the optimum must sit between the
// width lower bound and the first-fit upper bound.
func TestBitReversalScheduling(t *testing.T) {
	for _, n := range []int{16, 32, 64} {
		tr := topology.MustNew(n)
		s, err := comm.BitReversal(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.IsWellNested() {
			t.Fatalf("n=%d: bit reversal should cross", n)
		}
		w, err := s.Width(tr)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := FirstFit(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := ff.Verify(tr); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ex, _, err := Incumbent(Exact(tr, s, 2_000_000))
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.Verify(tr); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ex.NumRounds() < w || ex.NumRounds() > ff.NumRounds() {
			t.Fatalf("n=%d: optimum %d outside [width %d, first-fit %d]",
				n, ex.NumRounds(), w, ff.NumRounds())
		}
		t.Logf("n=%d: width=%d exact=%d first-fit=%d", n, w, ex.NumRounds(), ff.NumRounds())
	}
}

func TestExactEmptySet(t *testing.T) {
	tr := topology.MustNew(8)
	sch, err := Exact(tr, comm.NewSet(8), 100)
	if err != nil {
		t.Fatal(err)
	}
	if sch.NumRounds() != 0 {
		t.Fatalf("empty set: %d rounds", sch.NumRounds())
	}
}

func TestExactBudgetExhaustion(t *testing.T) {
	tr := topology.MustNew(64)
	rng := rand.New(rand.NewSource(8))
	s, err := comm.RandomOriented(rng, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Exact(tr, s, 1)
	if err == nil {
		// With budget 1 the search may still conclude immediately when the
		// greedy incumbent already meets the clique bound; only a non-budget
		// error is a failure.
		if vErr := sch.Verify(tr); vErr != nil {
			t.Fatal(vErr)
		}
		return
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if vErr := sch.Verify(tr); vErr != nil {
		t.Fatalf("budget-exhausted schedule must still be valid: %v", vErr)
	}
}

// Regression for the incumbent-dropping bug: Exact returns a *valid* best
// schedule alongside ErrBudget, and Incumbent must hand it to the caller
// instead of losing it behind err != nil. The test hunts (deterministic
// seeds) for a run that genuinely exhausts a tiny budget and pins three
// facts: the schedule is non-nil, it verifies, and Incumbent reports
// exhaustion without an error. Genuine failures must still pass through.
func TestIncumbentKeptOnBudget(t *testing.T) {
	tr := topology.MustNew(16)
	// A width-2 set whose Welsh–Powell incumbent needs 3 rounds, so the
	// branch-and-bound search genuinely starts and a budget of 2 nodes
	// cannot finish it: Exact must return ErrBudget here.
	s := comm.NewSet(16,
		comm.Comm{Src: 4, Dst: 7}, comm.Comm{Src: 9, Dst: 15},
		comm.Comm{Src: 5, Dst: 13}, comm.Comm{Src: 1, Dst: 6},
		comm.Comm{Src: 8, Dst: 11}, comm.Comm{Src: 0, Dst: 3},
		comm.Comm{Src: 2, Dst: 10}, comm.Comm{Src: 12, Dst: 14})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	raw, rawErr := Exact(tr, s, 2)
	if !errors.Is(rawErr, ErrBudget) {
		t.Fatalf("want ErrBudget from a 2-node budget, got %v", rawErr)
	}
	sch, exhausted, err := Incumbent(raw, rawErr)
	if err != nil {
		t.Fatal(err)
	}
	if sch == nil {
		t.Fatal("Incumbent dropped the schedule alongside ErrBudget")
	}
	if vErr := sch.Verify(tr); vErr != nil {
		t.Fatalf("incumbent schedule invalid: %v", vErr)
	}
	if !exhausted {
		t.Fatal("exhausted=false despite ErrBudget")
	}
	// A non-budget error must not be swallowed.
	if sch, _, err := Incumbent(nil, errors.New("boom")); err == nil || sch != nil {
		t.Fatalf("Incumbent swallowed a genuine error: sch=%v err=%v", sch, err)
	}
}

// A hand-built case where first fit in source order is suboptimal but the
// exact search recovers the optimum... at minimum, Exact must match the
// known chromatic number of a crossing triple.
func TestExactOnCrossingTriple(t *testing.T) {
	tr := topology.MustNew(8)
	// (0,2), (1,3): conflict. (1,3),(2,? ) — build a path in the conflict
	// graph: (0,2)-(1,3) conflict; (1,3)-(2,5)? 2 is endpoint of first...
	// use distinct PEs: (0,2),(1,4),(3,6): spans cross pairwise except
	// (0,2) vs (3,6) which are disjoint.
	s := comm.NewSet(8, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 4}, comm.Comm{Src: 3, Dst: 6})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := Conflicts(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the exact conflict structure, the chromatic number of a
	// graph on 3 vertices with at least one edge is 2 or 3; Exact must hit
	// it and Verify must pass.
	ex, err := Exact(tr, s, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Verify(tr); err != nil {
		t.Fatal(err)
	}
	if g.Edges() > 0 && ex.NumRounds() < 2 {
		t.Fatalf("conflicting comms in one round: %v", ex.Rounds)
	}
	if ex.NumRounds() > 3 {
		t.Fatalf("3 comms cannot need %d rounds", ex.NumRounds())
	}
}

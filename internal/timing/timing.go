// Package timing prices schedules in clock cycles, adding the latency
// dimension the paper leaves implicit. The paper notes a configured circuit
// transfers data "in a single clock cycle" (§2); real reconfigurable
// devices also need time — not just energy — to change a switch
// configuration. Under this model the power-aware property pays twice:
// rounds that reuse held configurations skip the reconfiguration stall
// entirely.
//
// Per-round makespan:
//
//	wave       — the control word broadcast, one cycle per tree level,
//	reconfig   — a stall of ReconfigCycles iff any switch changes its
//	             configuration this round (switches reconfigure in
//	             parallel, so one stall covers all of them),
//	transfer   — TransferCycles for the circuit-switched data transfer.
//
// Phase 1 contributes one upward wave. Totals are computed from per-round
// configuration snapshots, so any engine's run (PADR, baselines) can be
// priced uniformly.
package timing

import (
	"fmt"

	"cst/internal/deliver"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Params prices the cycle costs.
type Params struct {
	// WaveCyclePerLevel is the control propagation cost per tree level
	// (Phase 1 upward and each round's downward wave).
	WaveCyclePerLevel int
	// ReconfigCycles is the stall incurred by a round in which at least one
	// switch changes configuration.
	ReconfigCycles int
	// TransferCycles is the data transfer time per round.
	TransferCycles int
}

// Default is a conventional operating point: one cycle per level, one
// transfer cycle, and a 4-cycle reconfiguration stall.
var Default = Params{WaveCyclePerLevel: 1, ReconfigCycles: 4, TransferCycles: 1}

// Breakdown is a priced run.
type Breakdown struct {
	// Rounds is the number of rounds priced.
	Rounds int
	// RoundsWithChanges counts rounds that incurred a reconfiguration
	// stall.
	RoundsWithChanges int
	// Wave, Reconfig, Transfer, Total are cycle counts; Wave includes the
	// Phase 1 upward wave.
	Wave, Reconfig, Transfer, Total int
}

// String renders e.g. "58 cycles (wave 40, reconfig 16, transfer 2; 4/8 rounds stalled)".
func (b Breakdown) String() string {
	return fmt.Sprintf("%d cycles (wave %d, reconfig %d, transfer %d; %d/%d rounds stalled)",
		b.Total, b.Wave, b.Reconfig, b.Transfer, b.RoundsWithChanges, b.Rounds)
}

// Makespan prices a run from its per-round configuration snapshots.
func Makespan(t *topology.Tree, rounds []deliver.RoundConfig, p Params) Breakdown {
	b := Breakdown{Rounds: len(rounds)}
	levels := t.Levels()
	b.Wave = p.WaveCyclePerLevel * levels // Phase 1 convergecast
	prev := map[topology.Node]xbar.Config{}
	t.EachSwitch(func(n topology.Node) { prev[n] = xbar.Config{} })
	for _, cfg := range rounds {
		b.Wave += p.WaveCyclePerLevel * levels
		b.Transfer += p.TransferCycles
		changed := false
		t.EachSwitch(func(n topology.Node) {
			cur := cfg[n]
			if !changed {
				for _, out := range []xbar.Side{xbar.L, xbar.R, xbar.P} {
					d := cur.Driver(out)
					if d != xbar.None && prev[n].Driver(out) != d {
						changed = true
						break
					}
				}
			}
			prev[n] = cur
		})
		if changed {
			b.Reconfig += p.ReconfigCycles
			b.RoundsWithChanges++
		}
	}
	b.Total = b.Wave + b.Reconfig + b.Transfer
	return b
}

// Speedup returns a's makespan advantage over b as a ratio (>1 means a is
// faster), or 0 when a took no time.
func Speedup(a, b Breakdown) float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(b.Total) / float64(a.Total)
}

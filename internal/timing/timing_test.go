package timing

import (
	"strings"
	"testing"

	"cst/internal/circuit"
	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/topology"
	"cst/internal/xbar"
)

func snapshot(t *testing.T, tr *topology.Tree, sets ...[]comm.Comm) deliver.RoundConfig {
	t.Helper()
	switches := map[topology.Node]*xbar.Switch{}
	tr.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	for _, set := range sets {
		for _, c := range set {
			if err := circuit.Configure(tr, switches, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := deliver.RoundConfig{}
	tr.EachSwitch(func(n topology.Node) { cfg[n] = switches[n].Config() })
	return cfg
}

func TestMakespanHandBuilt(t *testing.T) {
	tr := topology.MustNew(16) // 4 levels
	cfgA := snapshot(t, tr, []comm.Comm{{Src: 0, Dst: 5}})
	// Three rounds: A (change), A held (no change), A again (no change).
	rounds := []deliver.RoundConfig{cfgA, cfgA, cfgA}
	b := Makespan(tr, rounds, Params{WaveCyclePerLevel: 1, ReconfigCycles: 4, TransferCycles: 1})
	// Wave: phase1 (4) + 3 rounds * 4 = 16; reconfig: 4 (round 0 only);
	// transfer: 3.
	if b.Wave != 16 || b.Reconfig != 4 || b.Transfer != 3 {
		t.Fatalf("breakdown %v", b)
	}
	if b.Total != 23 || b.RoundsWithChanges != 1 {
		t.Fatalf("breakdown %v", b)
	}
	if !strings.Contains(b.String(), "23 cycles") {
		t.Fatalf("String = %q", b.String())
	}
}

func TestMakespanEmpty(t *testing.T) {
	tr := topology.MustNew(8)
	b := Makespan(tr, nil, Default)
	if b.Total != tr.Levels() {
		t.Fatalf("empty run should cost only the Phase 1 wave: %v", b)
	}
}

// Recurring two-phase traffic: holding skips the stall on every recurrence;
// dropping stalls every round.
func TestHoldVersusDropStalls(t *testing.T) {
	tr := topology.MustNew(64)
	phaseA := []comm.Comm{{Src: 0, Dst: 5}}
	phaseB := []comm.Comm{{Src: 32, Dst: 37}}
	cfgA := snapshot(t, tr, phaseA)
	cfgB := snapshot(t, tr, phaseB)
	cfgAB := snapshot(t, tr, phaseA, phaseB)

	const cycles = 12
	var hold, drop []deliver.RoundConfig
	for i := 0; i < cycles; i++ {
		if i == 0 {
			hold = append(hold, cfgA)
		} else {
			hold = append(hold, cfgAB)
		}
		if i%2 == 0 {
			drop = append(drop, cfgA)
		} else {
			drop = append(drop, cfgB)
		}
	}
	bh := Makespan(tr, hold, Default)
	bd := Makespan(tr, drop, Default)
	if bh.RoundsWithChanges != 2 { // first A, first B
		t.Fatalf("hold stalls = %d, want 2", bh.RoundsWithChanges)
	}
	if bd.RoundsWithChanges != cycles {
		t.Fatalf("drop stalls = %d, want %d", bd.RoundsWithChanges, cycles)
	}
	if Speedup(bh, bd) <= 1 {
		t.Fatalf("holding must be faster: %v vs %v", bh, bd)
	}
}

// Honesty check: for a ONE-SHOT schedule every PADR round establishes new
// circuits, so the stall count equals the round count — power-awareness does
// not buy one-shot latency under this model.
func TestOneShotStallsEveryRound(t *testing.T) {
	tr := topology.MustNew(64)
	s, err := comm.NestedChain(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	var rec deliver.Recorder
	e, err := padr.New(tr, s, padr.WithObserver(rec.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rounds := make([]deliver.RoundConfig, rec.Rounds())
	for i := range rounds {
		rounds[i] = rec.Config(i)
	}
	b := Makespan(tr, rounds, Default)
	if b.RoundsWithChanges != 8 {
		t.Fatalf("one-shot chain: %d stalled rounds, want 8", b.RoundsWithChanges)
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	if Speedup(Breakdown{}, Breakdown{Total: 10}) != 0 {
		t.Fatal("zero-cost run speedup must read 0")
	}
}

package timing_test

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/timing"
	"cst/internal/topology"
)

// Price a run in clock cycles, including reconfiguration stalls.
func ExampleMakespan() {
	set, _ := comm.NestedChain(16, 2)
	tree := topology.MustNew(16)
	var rec deliver.Recorder
	engine, _ := padr.New(tree, set, padr.WithObserver(rec.Observer()))
	if _, err := engine.Run(); err != nil {
		fmt.Println(err)
		return
	}
	rounds := make([]deliver.RoundConfig, rec.Rounds())
	for i := range rounds {
		rounds[i] = rec.Config(i)
	}
	b := timing.Makespan(tree, rounds, timing.Default)
	fmt.Println(b)
	// Output:
	// 22 cycles (wave 12, reconfig 8, transfer 2; 2/2 rounds stalled)
}

package selfroute

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/topology"
	"cst/internal/xbar"
)

func freshSwitches(t *topology.Tree) map[topology.Node]*xbar.Switch {
	m := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { m[n] = xbar.NewSwitch() })
	return m
}

func TestRouteSingleRightward(t *testing.T) {
	tr := topology.MustNew(8)
	switches := freshSwitches(tr)
	hops, err := Route(tr, switches, comm.Comm{Src: 0, Dst: 7})
	if err != nil {
		t.Fatal(err)
	}
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
	// The data plane must deliver: the same check Theorem 4 uses.
	cfg := deliver.RoundConfig{}
	tr.EachSwitch(func(n topology.Node) { cfg[n] = switches[n].Config() })
	if err := deliver.VerifyRound(tr, cfg, []comm.Comm{{Src: 0, Dst: 7}}); err != nil {
		t.Fatal(err)
	}
}

// Self-routing handles leftward communications natively — no mirroring.
func TestRouteLeftward(t *testing.T) {
	tr := topology.MustNew(8)
	switches := freshSwitches(tr)
	if _, err := Route(tr, switches, comm.Comm{Src: 6, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	cfg := deliver.RoundConfig{}
	tr.EachSwitch(func(n topology.Node) { cfg[n] = switches[n].Config() })
	if err := deliver.VerifyRound(tr, cfg, []comm.Comm{{Src: 6, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteErrors(t *testing.T) {
	tr := topology.MustNew(8)
	switches := freshSwitches(tr)
	if _, err := Route(tr, switches, comm.Comm{Src: 3, Dst: 3}); err == nil {
		t.Error("self loop: want error")
	}
	if _, err := Route(tr, switches, comm.Comm{Src: 0, Dst: 9}); err == nil {
		t.Error("out of range: want error")
	}
	if _, err := Route(tr, map[topology.Node]*xbar.Switch{}, comm.Comm{Src: 0, Dst: 3}); err == nil {
		t.Error("missing switches: want error")
	}
}

func TestDisjoint(t *testing.T) {
	tr := topology.MustNew(8)
	// (0,1) and (2,3) use separate subtrees: disjoint.
	disj := comm.NewSet(8, comm.Comm{Src: 0, Dst: 1}, comm.Comm{Src: 2, Dst: 3})
	ok, err := Disjoint(tr, disj)
	if err != nil || !ok {
		t.Fatalf("want disjoint, got %v/%v", ok, err)
	}
	// (1,2) and (3,0): opposite directions but shared links — NOT disjoint
	// in the sense of [3], even though they are compatible for scheduling.
	shared := comm.NewSet(8, comm.Comm{Src: 1, Dst: 2}, comm.Comm{Src: 3, Dst: 0})
	ok, err = Disjoint(tr, shared)
	if err != nil || ok {
		t.Fatalf("want not disjoint, got %v/%v", ok, err)
	}
}

func TestRouteAllDisjointSet(t *testing.T) {
	tr := topology.MustNew(16)
	// A mixed-orientation disjoint set: one pair per 4-leaf block.
	s := comm.NewSet(16,
		comm.Comm{Src: 0, Dst: 3},
		comm.Comm{Src: 7, Dst: 4}, // leftward
		comm.Comm{Src: 8, Dst: 11},
		comm.Comm{Src: 15, Dst: 12}, // leftward
	)
	res, err := RouteAll(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Report.Rounds)
	}
	if res.MaxHops > 2*tr.Levels()-1 {
		t.Fatalf("max hops %d exceeds the O(log N) bound", res.MaxHops)
	}
	if res.Hops != res.Report.TotalUnits() {
		t.Fatalf("hops %d != units %d", res.Hops, res.Report.TotalUnits())
	}
}

func TestRouteAllRejectsNonDisjoint(t *testing.T) {
	tr := topology.MustNew(8)
	nested := comm.MustParse("(())....")
	if _, err := RouteAll(tr, nested); err == nil {
		t.Fatal("nested set must be rejected — that's what CSA is for")
	}
	invalid := comm.NewSet(8, comm.Comm{Src: 0, Dst: 99})
	if _, err := RouteAll(tr, invalid); err == nil {
		t.Fatal("invalid set: want error")
	}
	if _, err := RouteAll(topology.MustNew(16), nested); err == nil {
		t.Fatal("size mismatch: want error")
	}
}

// Random disjoint sets: build them by giving each communication its own
// aligned block, then verify routing and delivery.
func TestRouteAllRandomDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := topology.MustNew(64)
	for trial := 0; trial < 30; trial++ {
		s := &comm.Set{N: 64}
		for block := 0; block < 8; block++ {
			if rng.Intn(3) == 0 {
				continue
			}
			base := block * 8
			a := base + rng.Intn(8)
			b := base + rng.Intn(8)
			if a == b {
				continue
			}
			s.Comms = append(s.Comms, comm.Comm{Src: a, Dst: b})
		}
		ok, err := Disjoint(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue // block-local pairs usually but not always disjoint
		}
		res, err := RouteAll(tr, s)
		if err != nil {
			t.Fatalf("set %v: %v", s.Comms, err)
		}
		// Replay the data plane.
		switches := freshSwitches(tr)
		for _, c := range s.Comms {
			if _, err := Route(tr, switches, c); err != nil {
				t.Fatal(err)
			}
		}
		cfg := deliver.RoundConfig{}
		tr.EachSwitch(func(n topology.Node) { cfg[n] = switches[n].Config() })
		if err := deliver.VerifyRound(tr, cfg, s.Comms); err != nil {
			t.Fatalf("set %v: %v", s.Comms, err)
		}
		_ = res
	}
}

// Package selfroute implements the CST's historical baseline routing: the
// self-routing scheme of Sidhu et al. [7], which configures the switches
// for ONE communication by letting a header carrying the destination
// address steer itself through the tree, and its extension to *disjoint*
// communication sets [3] (El-Boghdadi et al., RAW 2002) — two
// communications are disjoint when they share no tree link even in opposite
// directions, so any number of disjoint communications self-route
// simultaneously.
//
// This is the capability the paper's algorithm supersedes: self-routing
// needs no precomputation but handles only disjoint sets (and therefore
// only one round of width-1 traffic), while CSA's Phase 1 counters let it
// schedule any well-nested set in `width` rounds. Self-routing handles both
// orientations natively — a useful contrast with the oriented scheduler.
package selfroute

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/power"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Header is the routing information a source injects: just the destination
// PE, exactly what [7]'s self-routing switches compare against their
// subtree span.
type Header struct {
	Dst int
}

// Route configures the circuit for one communication of either orientation
// by walking the header up the tree: every switch forwards upward while the
// destination lies outside its subtree, turns at the LCA, and steers
// downward by comparing the destination with its children's spans. Returns
// the number of switches configured.
func Route(t *topology.Tree, switches map[topology.Node]*xbar.Switch, c comm.Comm) (int, error) {
	if c.Src == c.Dst || c.Src < 0 || c.Src >= t.Leaves() || c.Dst < 0 || c.Dst >= t.Leaves() {
		return 0, fmt.Errorf("selfroute: bad communication %s", c)
	}
	hdr := Header{Dst: c.Dst}
	hops := 0
	connect := func(u topology.Node, in, out xbar.Side) error {
		sw := switches[u]
		if sw == nil {
			return fmt.Errorf("selfroute: no switch at node %d", u)
		}
		if err := sw.Connect(in, out); err != nil {
			return err
		}
		hops++
		return nil
	}
	side := func(child topology.Node) xbar.Side {
		if t.IsLeftChild(child) {
			return xbar.L
		}
		return xbar.R
	}

	// Upward: the header climbs until the destination is inside the
	// current switch's subtree.
	node := t.Leaf(c.Src)
	for {
		u := t.Parent(node)
		if u == 0 {
			return 0, fmt.Errorf("selfroute: header for %s escaped the root", c)
		}
		if t.Contains(u, hdr.Dst) {
			// The LCA: turn from the source side toward the destination
			// side.
			srcSide := side(node)
			dstSide := xbar.L
			if t.Contains(t.Right(u), hdr.Dst) {
				dstSide = xbar.R
			}
			if err := connect(u, srcSide, dstSide); err != nil {
				return 0, err
			}
			node = t.Left(u)
			if dstSide == xbar.R {
				node = t.Right(u)
			}
			break
		}
		if err := connect(u, side(node), xbar.P); err != nil {
			return 0, err
		}
		node = u
	}

	// Downward: each switch compares the header with its children's spans.
	for t.IsSwitch(node) {
		next := t.Left(node)
		out := xbar.L
		if t.Contains(t.Right(node), hdr.Dst) {
			next = t.Right(node)
			out = xbar.R
		}
		if err := connect(node, xbar.P, out); err != nil {
			return 0, err
		}
		node = next
	}
	return hops, nil
}

// Disjoint reports whether the set is pairwise disjoint in the sense of
// [3]: no two communications use the same tree link, even in opposite
// directions.
func Disjoint(t *topology.Tree, s *comm.Set) (bool, error) {
	used := make([]bool, t.EdgeCount()+2) // indexed by child node (links)
	for _, c := range s.Comms {
		src, dst := c.Src, c.Dst
		if src > dst {
			src, dst = dst, src
		}
		edges, err := t.PathEdges(src, dst)
		if err != nil {
			return false, err
		}
		for _, e := range edges {
			idx := int(e.Child) - 2
			if used[idx] {
				return false, nil
			}
			used[idx] = true
		}
	}
	return true, nil
}

// Result is the outcome of routing a disjoint set.
type Result struct {
	// Report is the power ledger (every circuit established once).
	Report *power.Report
	// Hops is the total number of switch configurations.
	Hops int
	// MaxHops is the longest single circuit (paper: O(log N)).
	MaxHops int
}

// RouteAll self-routes an entire disjoint communication set simultaneously
// (one round, both orientations together). It rejects non-disjoint sets —
// scheduling those is exactly what the paper's algorithm adds.
func RouteAll(t *topology.Tree, s *comm.Set) (*Result, error) {
	if t.Leaves() != s.N {
		return nil, fmt.Errorf("selfroute: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	ok, err := Disjoint(t, s)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("selfroute: set is not disjoint; use the CSA scheduler")
	}
	switches := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	res := &Result{}
	for _, c := range s.Comms {
		hops, err := Route(t, switches, c)
		if err != nil {
			return nil, err
		}
		res.Hops += hops
		if hops > res.MaxHops {
			res.MaxHops = hops
		}
	}
	res.Report = power.Collect("selfroute", power.Stateful, 1, t, switches)
	return res, nil
}

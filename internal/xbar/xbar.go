// Package xbar models the three-sided circuit switch at every internal node
// of the CST (paper Fig. 3(a)).
//
// A switch has three data inputs {l_i, r_i, p_i} (from the left child, right
// child and parent) and three data outputs {l_o, r_o, p_o}. A configuration
// is a partial one-to-one connection of inputs to outputs with the single
// structural restriction that an input may never be connected to the output
// of its own side (no turn-back), which is what bounds circuit lengths by
// O(log N) switches.
//
// Power model (paper §2.3): establishing one input→output connection costs
// one power unit; since a switch has at most three connections, a full
// reconfiguration costs at most three units. Holding a connection across
// rounds is free, and so is dropping one. Switch tracks both the total units
// spent and the per-output alternation counts used by Lemmas 6–7.
package xbar

import (
	"fmt"
	"strings"
)

// Side identifies one of the three sides of the switch, or None for an
// unconnected output. None is the zero value so that the zero Config is the
// empty configuration.
type Side uint8

const (
	// None marks an unconnected output.
	None Side = iota
	// L is the left-child side.
	L
	// R is the right-child side.
	R
	// P is the parent side.
	P
)

// sides lists the three real sides in canonical order.
var sides = [3]Side{L, R, P}

// String returns "l", "r", "p" or "-".
func (s Side) String() string {
	switch s {
	case L:
		return "l"
	case R:
		return "r"
	case P:
		return "p"
	default:
		return "-"
	}
}

// Valid reports whether s is one of the three real sides.
func (s Side) Valid() bool { return s >= L && s <= P }

// Conn is a single input→output connection, e.g. {In: L, Out: R} for the
// paper's l_i → r_o.
type Conn struct {
	In, Out Side
}

// String renders the connection in the paper's notation, e.g. "l->r".
func (c Conn) String() string { return c.In.String() + "->" + c.Out.String() }

// Legal reports whether the connection respects the no-turn-back rule.
func (c Conn) Legal() bool {
	return c.In.Valid() && c.Out.Valid() && c.In != c.Out
}

// Config is a complete switch configuration: for each output side, the input
// side driving it (or None). The zero value is the empty configuration.
type Config struct {
	drive [4]Side // indexed by output side; [0] (None) is unused
}

// Driver returns the input driving output out, or None.
func (c Config) Driver(out Side) Side {
	if !out.Valid() {
		return None
	}
	return c.drive[out]
}

// Conns returns the established connections in deterministic (L,R,P output)
// order.
func (c Config) Conns() []Conn {
	var conns []Conn
	for _, out := range sides {
		if in := c.drive[out]; in != None {
			conns = append(conns, Conn{In: in, Out: out})
		}
	}
	return conns
}

// String renders the configuration, e.g. "[l->r p->l]"; "[]" when empty.
func (c Config) String() string {
	conns := c.Conns()
	parts := make([]string, len(conns))
	for i, cn := range conns {
		parts[i] = cn.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Connector is the ability to establish a connection; *Switch implements
// it, and adapters (e.g. the padr engine's reflection wrapper for mirrored
// runs) wrap one.
type Connector interface {
	Connect(in, out Side) error
}

// Switch is a stateful three-sided switch with power accounting.
type Switch struct {
	cfg Config

	// unitsSpent counts power units: one per newly-established connection
	// (paper §2.3).
	unitsSpent int
	// changes counts, per output side, how many times that output's driving
	// input changed to a different non-None input (the alternation count of
	// Lemmas 6 and 7). Index by Side; [0] unused.
	changes [4]int
	// everSet records whether an output was ever driven, to distinguish the
	// first setting from a genuine alternation.
	everSet [4]bool
}

// NewSwitch returns a switch in the empty configuration with zeroed meters.
func NewSwitch() *Switch { return &Switch{} }

// Config returns a copy of the current configuration.
func (s *Switch) Config() Config { return s.cfg }

// Connect establishes in→out. If out is already driven by in, it is a no-op
// costing nothing (the power-aware property rests on this). Otherwise the
// old driver of out (if any) is displaced, any other output previously
// driven by in is disconnected (inputs are one-to-one), one power unit is
// spent, and the alternation meter for out advances if out was previously
// driven by a different input.
func (s *Switch) Connect(in, out Side) error {
	c := Conn{In: in, Out: out}
	if !c.Legal() {
		return fmt.Errorf("xbar: illegal connection %s", c)
	}
	if s.cfg.drive[out] == in {
		return nil // held connection: free
	}
	// One-to-one on inputs: detach in from any other output it drives.
	for _, o := range sides {
		if o != out && s.cfg.drive[o] == in {
			s.cfg.drive[o] = None
		}
	}
	if s.everSet[out] {
		s.changes[out]++
	}
	s.cfg.drive[out] = in
	s.everSet[out] = true
	s.unitsSpent++
	return nil
}

// Disconnect clears output out. Dropping a connection is free.
func (s *Switch) Disconnect(out Side) {
	if out.Valid() {
		s.cfg.drive[out] = None
	}
}

// Reset tears down every connection (free) without clearing the meters.
func (s *Switch) Reset() { s.cfg = Config{} }

// Zero returns the switch to its factory state: empty configuration AND
// zeroed meters, exactly as NewSwitch delivers it. Reusable engines call
// this between runs so a recycled crossbar is indistinguishable from a
// fresh one.
func (s *Switch) Zero() { *s = Switch{} }

// Units returns the total power units spent (one per established
// connection).
func (s *Switch) Units() int { return s.unitsSpent }

// Alternations returns how many times output out switched from one driving
// input to a *different* one (first establishment not counted).
func (s *Switch) Alternations(out Side) int {
	if !out.Valid() {
		return 0
	}
	return s.changes[out]
}

// TotalAlternations sums Alternations over the three outputs.
func (s *Switch) TotalAlternations() int {
	return s.changes[L] + s.changes[R] + s.changes[P]
}

// ConfigChanges returns the number of configuration changes in the paper's
// sense: established connections that were not already present, i.e. it
// equals Units().
func (s *Switch) ConfigChanges() int { return s.unitsSpent }

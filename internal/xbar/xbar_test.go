package xbar

import (
	"testing"
	"testing/quick"
)

func TestSideString(t *testing.T) {
	cases := map[Side]string{L: "l", R: "r", P: "p", None: "-"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Side(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestConnLegal(t *testing.T) {
	legal := []Conn{{L, R}, {L, P}, {R, L}, {R, P}, {P, L}, {P, R}}
	for _, c := range legal {
		if !c.Legal() {
			t.Errorf("%s should be legal", c)
		}
	}
	illegal := []Conn{{L, L}, {R, R}, {P, P}, {None, L}, {L, None}, {None, None}, {Side(9), L}}
	for _, c := range illegal {
		if c.Legal() {
			t.Errorf("%s should be illegal", c)
		}
	}
}

func TestZeroConfigIsEmpty(t *testing.T) {
	var c Config
	if got := c.Conns(); len(got) != 0 {
		t.Fatalf("zero Config has connections: %v", got)
	}
	if c.String() != "[]" {
		t.Fatalf("zero Config.String() = %q", c.String())
	}
	for _, s := range []Side{L, R, P, None} {
		if c.Driver(s) != None {
			t.Fatalf("zero Config drives %s", s)
		}
	}
}

func TestConnectBasics(t *testing.T) {
	sw := NewSwitch()
	if err := sw.Connect(L, R); err != nil {
		t.Fatal(err)
	}
	if got := sw.Config().Driver(R); got != L {
		t.Fatalf("driver of R = %s, want l", got)
	}
	if sw.Units() != 1 {
		t.Fatalf("units = %d, want 1", sw.Units())
	}
	// Holding the same connection is free.
	if err := sw.Connect(L, R); err != nil {
		t.Fatal(err)
	}
	if sw.Units() != 1 {
		t.Fatalf("held connection must be free; units = %d", sw.Units())
	}
	if sw.TotalAlternations() != 0 {
		t.Fatalf("no alternations expected, got %d", sw.TotalAlternations())
	}
}

func TestConnectRejectsIllegal(t *testing.T) {
	sw := NewSwitch()
	for _, c := range []Conn{{L, L}, {P, P}, {None, R}, {R, None}} {
		if err := sw.Connect(c.In, c.Out); err == nil {
			t.Errorf("Connect(%s): want error", c)
		}
	}
	if sw.Units() != 0 {
		t.Fatalf("failed connects must not spend power; units = %d", sw.Units())
	}
}

func TestAlternationCounting(t *testing.T) {
	sw := NewSwitch()
	// P output alternates L, R, L: first set free of alternation, then 2.
	mustConnect(t, sw, L, P)
	mustConnect(t, sw, R, P)
	mustConnect(t, sw, L, P)
	if got := sw.Alternations(P); got != 2 {
		t.Fatalf("alternations(P) = %d, want 2", got)
	}
	if got := sw.Units(); got != 3 {
		t.Fatalf("units = %d, want 3", got)
	}
}

func TestInputOneToOne(t *testing.T) {
	sw := NewSwitch()
	mustConnect(t, sw, L, R) // l drives r_o
	mustConnect(t, sw, L, P) // moving l to p_o must detach it from r_o
	cfg := sw.Config()
	if cfg.Driver(P) != L {
		t.Fatalf("driver of P = %s, want l", cfg.Driver(P))
	}
	if cfg.Driver(R) != None {
		t.Fatalf("input l may drive only one output; R still driven by %s", cfg.Driver(R))
	}
}

func TestOutputDisplacement(t *testing.T) {
	sw := NewSwitch()
	mustConnect(t, sw, L, P)
	mustConnect(t, sw, R, P) // displaces l from p_o
	cfg := sw.Config()
	if cfg.Driver(P) != R {
		t.Fatalf("driver of P = %s, want r", cfg.Driver(P))
	}
	if got := len(cfg.Conns()); got != 1 {
		t.Fatalf("want single connection, got %v", cfg.Conns())
	}
}

func TestDisconnectAndReset(t *testing.T) {
	sw := NewSwitch()
	mustConnect(t, sw, L, R)
	mustConnect(t, sw, P, L)
	sw.Disconnect(R)
	if sw.Config().Driver(R) != None {
		t.Fatal("Disconnect(R) did not clear R")
	}
	if sw.Units() != 2 {
		t.Fatalf("disconnect must be free; units = %d", sw.Units())
	}
	sw.Disconnect(None) // no-op, must not panic
	sw.Reset()
	if len(sw.Config().Conns()) != 0 {
		t.Fatal("Reset did not clear configuration")
	}
	if sw.Units() != 2 {
		t.Fatalf("Reset must not clear meters; units = %d", sw.Units())
	}
	// Re-establishing after Reset costs again (the stateless baseline mode
	// relies on this).
	mustConnect(t, sw, L, R)
	if sw.Units() != 3 {
		t.Fatalf("units = %d, want 3", sw.Units())
	}
}

func TestFullConfiguration(t *testing.T) {
	sw := NewSwitch()
	// A switch can hold three simultaneous connections: l->r, r->p, p->l is
	// a legal one-to-one matching with no turn-backs.
	mustConnect(t, sw, L, R)
	mustConnect(t, sw, R, P)
	mustConnect(t, sw, P, L)
	conns := sw.Config().Conns()
	if len(conns) != 3 {
		t.Fatalf("want 3 connections, got %v", conns)
	}
	if s := sw.Config().String(); s != "[p->l l->r r->p]" {
		t.Fatalf("String = %q", s)
	}
}

func TestConfigChangesEqualsUnits(t *testing.T) {
	sw := NewSwitch()
	mustConnect(t, sw, L, P)
	mustConnect(t, sw, R, P)
	mustConnect(t, sw, R, P) // held, free
	if sw.ConfigChanges() != sw.Units() {
		t.Fatalf("ConfigChanges %d != Units %d", sw.ConfigChanges(), sw.Units())
	}
}

func TestAlternationsInvalidSide(t *testing.T) {
	sw := NewSwitch()
	if sw.Alternations(None) != 0 || sw.Alternations(Side(7)) != 0 {
		t.Fatal("invalid side must report zero alternations")
	}
}

// Property: the switch invariants hold under arbitrary connect sequences:
// every output driven by a valid different-side input, every input drives at
// most one output, units never exceed the number of Connect calls, and
// alternations never exceed units.
func TestSwitchInvariantsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		sw := NewSwitch()
		calls := 0
		for _, op := range ops {
			in := Side(op%3 + 1)
			out := Side((op/3)%3 + 1)
			if in == out {
				continue
			}
			if err := sw.Connect(in, out); err != nil {
				return false
			}
			calls++
			cfg := sw.Config()
			var used [4]int
			for _, c := range cfg.Conns() {
				if !c.Legal() {
					return false
				}
				used[c.In]++
			}
			for _, n := range used {
				if n > 1 {
					return false
				}
			}
		}
		return sw.Units() <= calls && sw.TotalAlternations() <= sw.Units()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mustConnect(t *testing.T, sw *Switch, in, out Side) {
	t.Helper()
	if err := sw.Connect(in, out); err != nil {
		t.Fatal(err)
	}
}

// Package energy generalizes the paper's §2.3 power model and probes its
// central assumption.
//
// The paper charges one unit per *established* connection and nothing for
// holding one — under that model Theorem 8 makes PADR's per-switch cost
// O(1) versus Θ(w) for per-round reconfiguration. Real switches also burn
// static power while a connection is held. This package prices a run as
//
//	E = SetCost·(connections established)
//	  + HoldCost·(connection·rounds held)
//	  + IdleCost·(switch·rounds)
//
// computed from per-round configuration snapshots, and locates the
// HoldCost/SetCost ratio at which a hold-heavy schedule (PADR keeps
// circuits up across rounds) stops beating a drop-when-idle one. With
// HoldCost = IdleCost = 0 the model reduces exactly to the paper's.
//
// Evaluate prices the *minimal* physical work that realizes a configuration
// trajectory: a connection present with the same driver in consecutive
// rounds is held, never re-established. An engine's own unit ledger can
// exceed this (the Stateless accounting mode bills naive re-establishment
// every round); the trajectory view is the fair basis for comparing
// scheduling policies, because it charges each policy what an optimal
// switch controller would actually pay for it. Concretely, the Stateful
// trajectory is "hold everything forever" (minimum changes, maximum
// connection·rounds) and the Stateless trajectory is "drop circuits the
// round they fall idle" (more changes, fewer connection·rounds); the
// crossover between them is the price of the paper's holding-is-free
// assumption.
package energy

import (
	"fmt"

	"cst/internal/deliver"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Model prices the three cost components.
type Model struct {
	// SetCost is the energy to establish one connection (the paper's
	// "power unit").
	SetCost float64
	// HoldCost is the energy to keep one connection up for one round.
	HoldCost float64
	// IdleCost is the per-switch, per-round static overhead.
	IdleCost float64
}

// Paper is the model of §2.3: only establishment costs.
var Paper = Model{SetCost: 1}

// Breakdown is the priced outcome of one run.
type Breakdown struct {
	// Changes counts established connections (driver changes, including
	// first establishment and re-establishment after a teardown).
	Changes int
	// ConnectionRounds counts connection·rounds held (every live connection
	// in every round, including the round it was established).
	ConnectionRounds int
	// Rounds is the number of rounds priced.
	Rounds int
	// Switches is the number of switches priced.
	Switches int
	// Set, Hold, Idle, Total are the priced components.
	Set, Hold, Idle, Total float64
}

// Evaluate prices a run from its per-round configuration snapshots (as
// captured by deliver.Recorder or baseline.Result.Configs). Snapshots must
// cover every switch that ever connects; switches absent from a snapshot
// read as empty that round.
func Evaluate(t *topology.Tree, rounds []deliver.RoundConfig, m Model) Breakdown {
	b := Breakdown{Rounds: len(rounds), Switches: t.Switches()}
	prev := map[topology.Node]xbar.Config{}
	t.EachSwitch(func(n topology.Node) { prev[n] = xbar.Config{} })
	for _, cfg := range rounds {
		t.EachSwitch(func(n topology.Node) {
			cur := cfg[n]
			for _, out := range []xbar.Side{xbar.L, xbar.R, xbar.P} {
				d := cur.Driver(out)
				if d == xbar.None {
					continue
				}
				b.ConnectionRounds++
				if prev[n].Driver(out) != d {
					b.Changes++
				}
			}
			prev[n] = cur
		})
	}
	b.Set = m.SetCost * float64(b.Changes)
	b.Hold = m.HoldCost * float64(b.ConnectionRounds)
	b.Idle = m.IdleCost * float64(b.Rounds*b.Switches)
	b.Total = b.Set + b.Hold + b.Idle
	return b
}

// String renders e.g. "changes=12 conn·rounds=40 E=52.0 (set 12.0, hold 40.0, idle 0.0)".
func (b Breakdown) String() string {
	return fmt.Sprintf("changes=%d conn·rounds=%d E=%.1f (set %.1f, hold %.1f, idle %.1f)",
		b.Changes, b.ConnectionRounds, b.Total, b.Set, b.Hold, b.Idle)
}

// Crossover returns the HoldCost (with the given SetCost and zero IdleCost)
// at which run A's total energy equals run B's, along with whether a
// crossover exists for positive HoldCost. Totals are linear in HoldCost:
// E(h) = SetCost·changes + h·connectionRounds, so the crossover is where
// the lines intersect. A is conventionally the hold-heavy schedule (PADR)
// and B the rebuild-heavy one; no crossover means A never loses (or never
// wins) at any positive hold cost.
func Crossover(t *topology.Tree, a, b []deliver.RoundConfig, setCost float64) (holdCost float64, exists bool) {
	ba := Evaluate(t, a, Model{SetCost: setCost})
	bb := Evaluate(t, b, Model{SetCost: setCost})
	dSlope := float64(ba.ConnectionRounds - bb.ConnectionRounds)
	dOffset := bb.Total - ba.Total
	if dSlope == 0 {
		return 0, false
	}
	h := dOffset / dSlope
	if h <= 0 {
		return 0, false
	}
	return h, true
}

package energy_test

import (
	"fmt"

	"cst/internal/baseline"
	"cst/internal/comm"
	"cst/internal/energy"
	"cst/internal/power"
	"cst/internal/topology"
)

// Price the same schedule under the paper's model and under a model where
// holding a connection costs a quarter unit per round.
func ExampleEvaluate() {
	tree := topology.MustNew(64)
	set, _ := comm.NestedChain(64, 8)
	res, _ := baseline.DepthID(tree, set, baseline.OutermostFirst, power.Stateful)

	paper := energy.Evaluate(tree, res.Configs, energy.Paper)
	holdCosts := energy.Evaluate(tree, res.Configs, energy.Model{SetCost: 1, HoldCost: 0.25})
	fmt.Printf("paper model: E=%.0f; with hold cost: E=%.0f\n", paper.Total, holdCosts.Total)
	// Output:
	// paper model: E=33; with hold cost: E=63
}

package energy

import (
	"strings"
	"testing"

	"cst/internal/baseline"
	"cst/internal/circuit"
	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/topology"
	"cst/internal/xbar"
)

func cfgOf(t *testing.T, conns ...[3]xbar.Side) xbar.Config {
	t.Helper()
	sw := xbar.NewSwitch()
	for _, c := range conns {
		if err := sw.Connect(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}
	return sw.Config()
}

func TestEvaluateHandBuilt(t *testing.T) {
	tr := topology.MustNew(4) // switches 1,2,3
	lr := cfgOf(t, [3]xbar.Side{xbar.L, xbar.R})
	lp := cfgOf(t, [3]xbar.Side{xbar.L, xbar.P})
	rounds := []deliver.RoundConfig{
		{1: lr},        // round 0: root connects l->r (1 change, 1 held)
		{1: lr},        // round 1: held (0 changes, 1 held)
		{1: lp, 2: lr}, // round 2: root changes, node 2 connects (2 changes, 2 held)
	}
	b := Evaluate(tr, rounds, Model{SetCost: 1, HoldCost: 0.5, IdleCost: 0.1})
	if b.Changes != 3 {
		t.Errorf("changes = %d, want 3", b.Changes)
	}
	if b.ConnectionRounds != 4 {
		t.Errorf("connection rounds = %d, want 4", b.ConnectionRounds)
	}
	wantSet, wantHold, wantIdle := 3.0, 2.0, 0.9 // 3 rounds * 3 switches * 0.1
	if b.Set != wantSet || b.Hold != wantHold || b.Idle != wantIdle {
		t.Errorf("breakdown %v", b)
	}
	if b.Total != wantSet+wantHold+wantIdle {
		t.Errorf("total %v", b.Total)
	}
	if !strings.Contains(b.String(), "changes=3") {
		t.Errorf("String = %q", b.String())
	}
}

func TestPaperModelMatchesUnits(t *testing.T) {
	// Under the paper's model (SetCost=1, nothing else), the energy of a
	// PADR run must equal the engine's own unit ledger.
	tr := topology.MustNew(64)
	s, err := comm.NestedChain(64, 12)
	if err != nil {
		t.Fatal(err)
	}
	var rec deliver.Recorder
	e, err := padr.New(tr, s, padr.WithObserver(rec.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	rounds := make([]deliver.RoundConfig, rec.Rounds())
	for i := range rounds {
		rounds[i] = rec.Config(i)
	}
	b := Evaluate(tr, rounds, Paper)
	if b.Changes != res.Report.TotalUnits() {
		t.Fatalf("energy changes %d != power units %d", b.Changes, res.Report.TotalUnits())
	}
	if b.Total != float64(res.Report.TotalUnits()) {
		t.Fatalf("paper-model energy %v != units %d", b.Total, res.Report.TotalUnits())
	}
}

func TestOneShotScheduleTrajectories(t *testing.T) {
	// In a one-shot schedule every circuit is used once, so the minimal
	// realization of the drop-when-idle trajectory needs exactly as many
	// changes as hold-everything — holding only adds connection·rounds —
	// and the naive rebuild unit count is an upper bound.
	tr := topology.MustNew(64)
	s, err := comm.NestedChain(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := baseline.DepthID(tr, s, baseline.OutermostFirst, power.Stateless)
	if err != nil {
		t.Fatal(err)
	}
	bTorn := Evaluate(tr, torn.Configs, Paper)
	if bTorn.Changes > torn.Report.TotalUnits() {
		t.Fatalf("minimal realization %d must not exceed naive rebuild units %d",
			bTorn.Changes, torn.Report.TotalUnits())
	}
	held, err := baseline.DepthID(tr, s, baseline.OutermostFirst, power.Stateful)
	if err != nil {
		t.Fatal(err)
	}
	bHeld := Evaluate(tr, held.Configs, Paper)
	if bHeld.Changes > bTorn.Changes {
		t.Fatalf("hold-everything (%d changes) cannot need more changes than drop-when-idle (%d)",
			bHeld.Changes, bTorn.Changes)
	}
	if bHeld.ConnectionRounds <= bTorn.ConnectionRounds {
		t.Fatalf("held run should hold more connection rounds: %d vs %d",
			bHeld.ConnectionRounds, bTorn.ConnectionRounds)
	}
	// With any positive hold cost, drop-when-idle wins a one-shot schedule.
	m := Model{SetCost: 1, HoldCost: 0.25}
	if Evaluate(tr, held.Configs, m).Total <= Evaluate(tr, torn.Configs, m).Total {
		t.Error("holding cannot pay off when no circuit recurs")
	}
}

// AlternatingPhases builds the recurring scenario where holding genuinely
// trades against re-establishment: phase A's circuits sit idle during phase
// B and vice versa. Hold-everything pays hold energy through the idle
// phases; drop-when-idle re-establishes on every recurrence.
func alternatingPhases(t *testing.T, tr *topology.Tree, cycles int) (hold, drop []deliver.RoundConfig) {
	t.Helper()
	phaseA := []comm.Comm{{Src: 0, Dst: 5}, {Src: 8, Dst: 13}}    // left half
	phaseB := []comm.Comm{{Src: 32, Dst: 37}, {Src: 40, Dst: 45}} // right half

	snapshot := func(sets ...[]comm.Comm) deliver.RoundConfig {
		switches := map[topology.Node]*xbar.Switch{}
		tr.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
		for _, set := range sets {
			for _, c := range set {
				if err := circuit.Configure(tr, switches, c); err != nil {
					t.Fatal(err)
				}
			}
		}
		cfg := deliver.RoundConfig{}
		tr.EachSwitch(func(n topology.Node) { cfg[n] = switches[n].Config() })
		return cfg
	}
	cfgA := snapshot(phaseA)
	cfgB := snapshot(phaseB)
	cfgAB := snapshot(phaseA, phaseB)

	for i := 0; i < cycles; i++ {
		if i == 0 {
			hold = append(hold, cfgA)
		} else {
			hold = append(hold, cfgAB)
		}
		if i%2 == 0 {
			drop = append(drop, cfgA)
		} else {
			drop = append(drop, cfgB)
		}
	}
	return hold, drop
}

func TestCrossoverOnRecurringPhases(t *testing.T) {
	tr := topology.MustNew(64)
	hold, drop := alternatingPhases(t, tr, 20)
	bHold := Evaluate(tr, hold, Paper)
	bDrop := Evaluate(tr, drop, Paper)
	// Under the paper model (holding free) the holding policy wins: it
	// establishes each circuit once, while dropping re-establishes phase A
	// and B on every recurrence.
	if bHold.Total >= bDrop.Total {
		t.Fatalf("hold %v must beat drop %v when holding is free", bHold.Total, bDrop.Total)
	}
	h, ok := Crossover(tr, hold, drop, 1)
	if !ok || h <= 0 {
		t.Fatalf("crossover must exist for recurring phases, got %v/%v", h, ok)
	}
	below := Model{SetCost: 1, HoldCost: h / 2}
	above := Model{SetCost: 1, HoldCost: h * 2}
	if Evaluate(tr, hold, below).Total >= Evaluate(tr, drop, below).Total {
		t.Error("hold should win below the crossover")
	}
	if Evaluate(tr, hold, above).Total <= Evaluate(tr, drop, above).Total {
		t.Error("hold should lose above the crossover")
	}
}

func TestCrossoverDegenerate(t *testing.T) {
	tr := topology.MustNew(4)
	same := []deliver.RoundConfig{{}}
	if _, ok := Crossover(tr, same, same, 1); ok {
		t.Fatal("identical runs cannot cross")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	tr := topology.MustNew(8)
	b := Evaluate(tr, nil, Model{SetCost: 1, HoldCost: 1, IdleCost: 1})
	if b.Total != 0 || b.Changes != 0 {
		t.Fatalf("empty run: %v", b)
	}
}

// Package baseline implements the comparison schedulers for the paper's
// evaluation.
//
// DepthID reconstructs the prior algorithm of Roy, Vaidyanathan and Trahan
// [6] as this paper characterizes it: "first assign an ID to each
// communication and use this ID to configure the switches". For well-nested
// sets the natural ID is the nesting depth — all communications of one
// depth are pairwise disjoint, hence compatible, so playing one depth per
// round yields a valid schedule of exactly MaxDepth rounds (which equals the
// link width on root-crossing workloads such as comm.NestedChain; on
// workloads whose width is below the depth, the reconstruction is
// correspondingly sub-optimal — see DESIGN.md §5).
//
// Because the ID assignment, not an outermost-first rule, dictates each
// round, a switch may be reconfigured round after round; the paper's
// complaint about [6] ("a switch needs O(w) configuration changes") shows up
// here in two forms: under power.Stateless accounting every busy round costs
// afresh, and under power.Stateful accounting the InnermostFirst and
// Alternating orders still force Θ(w) genuine changes on adversarial
// workloads.
//
// Greedy is a second baseline: repeatedly perform a maximal compatible
// subset, chosen left-to-right. It handles arbitrary right-oriented sets
// (not only well-nested ones).
package baseline

import (
	"fmt"

	"cst/internal/circuit"
	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/power"
	"cst/internal/sched"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Order selects how DepthID plays the depth levels.
type Order int

const (
	// OutermostFirst plays depth 0, 1, 2, … — the order closest to PADR's
	// selection rule.
	OutermostFirst Order = iota
	// InnermostFirst plays the deepest level first.
	InnermostFirst
	// Alternating interleaves shallow and deep levels (0, D-1, 1, D-2, …),
	// the adversarial order that maximizes reconfiguration churn.
	Alternating
)

// String names the order.
func (o Order) String() string {
	switch o {
	case OutermostFirst:
		return "outermost"
	case InnermostFirst:
		return "innermost"
	case Alternating:
		return "alternating"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Result is the outcome of a baseline run.
type Result struct {
	// Schedule lists the communications per round.
	Schedule *sched.Schedule
	// Report is the power ledger under the requested accounting mode.
	Report *power.Report
	// Rounds is the number of rounds used.
	Rounds int
	// Width is the set's link width (the optimal round count).
	Width int
	// Configs snapshots every switch's configuration at the end of each
	// round (after stateless teardown + rebuild, if that mode is active);
	// the energy model consumes these.
	Configs []deliver.RoundConfig
}

// DepthID schedules a well-nested set by nesting-depth IDs in the given
// order, configuring every circuit of a round through the switches and
// accounting power in the given mode.
func DepthID(t *topology.Tree, s *comm.Set, order Order, mode power.Mode) (*Result, error) {
	if t.Leaves() != s.N {
		return nil, fmt.Errorf("baseline: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	depths, err := s.Depths()
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	width, err := s.Width(t)
	if err != nil {
		return nil, err
	}
	maxDepth := 0
	for _, d := range depths {
		if d+1 > maxDepth {
			maxDepth = d + 1
		}
	}
	levels := make([][]comm.Comm, maxDepth)
	for i, c := range s.Comms {
		levels[depths[i]] = append(levels[depths[i]], c)
	}
	rounds := make([][]comm.Comm, 0, maxDepth)
	for _, d := range playOrder(order, maxDepth) {
		rounds = append(rounds, levels[d])
	}
	return execute(fmt.Sprintf("depth-id(%s)", order), t, s, rounds, mode, width)
}

// playOrder returns the depth levels in play order.
func playOrder(order Order, levels int) []int {
	out := make([]int, 0, levels)
	switch order {
	case InnermostFirst:
		for d := levels - 1; d >= 0; d-- {
			out = append(out, d)
		}
	case Alternating:
		lo, hi := 0, levels-1
		for lo <= hi {
			out = append(out, lo)
			if hi != lo {
				out = append(out, hi)
			}
			lo++
			hi--
		}
	default:
		for d := 0; d < levels; d++ {
			out = append(out, d)
		}
	}
	return out
}

// Greedy schedules an arbitrary right-oriented set by repeatedly performing
// a maximal compatible subset chosen in left-to-right source order. For
// well-nested sets this coincides with outermost-first depth order; for
// general oriented sets it remains correct but makes no optimality promise.
func Greedy(t *topology.Tree, s *comm.Set, mode power.Mode) (*Result, error) {
	if t.Leaves() != s.N {
		return nil, fmt.Errorf("baseline: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.IsRightOriented() {
		return nil, fmt.Errorf("baseline: Greedy needs a right-oriented set")
	}
	width, err := s.Width(t)
	if err != nil {
		return nil, err
	}
	remaining := s.Sorted()
	var rounds [][]comm.Comm
	congestion := make([]bool, t.DirectedEdgeCount())
	for len(remaining) > 0 {
		for i := range congestion {
			congestion[i] = false
		}
		var round []comm.Comm
		var leftover []comm.Comm
		for _, c := range remaining {
			edges, err := t.PathEdges(c.Src, c.Dst)
			if err != nil {
				return nil, err
			}
			ok := true
			for _, e := range edges {
				if congestion[t.EdgeIndex(e)] {
					ok = false
					break
				}
			}
			if !ok {
				leftover = append(leftover, c)
				continue
			}
			for _, e := range edges {
				congestion[t.EdgeIndex(e)] = true
			}
			round = append(round, c)
		}
		if len(round) == 0 {
			return nil, fmt.Errorf("baseline: greedy made no progress with %d communications left", len(remaining))
		}
		rounds = append(rounds, round)
		remaining = leftover
	}
	return execute("greedy", t, s, rounds, mode, width)
}

// execute configures every round's circuits on fresh switches, accounting
// power, and returns the verified-shape result (the caller still runs
// sched.Verify in tests; execute only guards internal errors).
func execute(name string, t *topology.Tree, s *comm.Set, rounds [][]comm.Comm, mode power.Mode, width int) (*Result, error) {
	switches := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	configs := make([]deliver.RoundConfig, 0, len(rounds))
	for _, round := range rounds {
		if mode == power.Stateless {
			for _, sw := range switches {
				sw.Reset()
			}
		}
		for _, c := range round {
			if err := circuit.Configure(t, switches, c); err != nil {
				return nil, fmt.Errorf("baseline %s: %v", name, err)
			}
		}
		snap := deliver.RoundConfig{}
		t.EachSwitch(func(n topology.Node) { snap[n] = switches[n].Config() })
		configs = append(configs, snap)
	}
	schedule := &sched.Schedule{Set: s.Clone(), Rounds: rounds}
	return &Result{
		Schedule: schedule,
		Report:   power.Collect(name, mode, len(rounds), t, switches),
		Rounds:   len(rounds),
		Width:    width,
		Configs:  configs,
	}, nil
}

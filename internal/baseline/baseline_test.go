package baseline

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/power"
	"cst/internal/topology"
)

func TestOrderString(t *testing.T) {
	if OutermostFirst.String() != "outermost" ||
		InnermostFirst.String() != "innermost" ||
		Alternating.String() != "alternating" {
		t.Fatal("Order.String wrong")
	}
	if Order(9).String() == "" {
		t.Fatal("unknown order must still render")
	}
}

func TestPlayOrder(t *testing.T) {
	cases := []struct {
		order Order
		n     int
		want  []int
	}{
		{OutermostFirst, 4, []int{0, 1, 2, 3}},
		{InnermostFirst, 4, []int{3, 2, 1, 0}},
		{Alternating, 4, []int{0, 3, 1, 2}},
		{Alternating, 5, []int{0, 4, 1, 3, 2}},
		{Alternating, 1, []int{0}},
		{OutermostFirst, 0, []int{}},
	}
	for _, c := range cases {
		got := playOrder(c.order, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("%s/%d: %v want %v", c.order, c.n, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("%s/%d: %v want %v", c.order, c.n, got, c.want)
			}
		}
	}
}

func TestDepthIDValidSchedules(t *testing.T) {
	tr := topology.MustNew(64)
	s, err := comm.NestedChain(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []Order{OutermostFirst, InnermostFirst, Alternating} {
		res, err := DepthID(tr, s, order, power.Stateful)
		if err != nil {
			t.Fatalf("%s: %v", order, err)
		}
		if err := res.Schedule.Verify(tr); err != nil {
			t.Fatalf("%s: %v", order, err)
		}
		if res.Rounds != 8 {
			t.Fatalf("%s: rounds = %d, want 8 (chain depth == width)", order, res.Rounds)
		}
		if res.Width != 8 {
			t.Fatalf("%s: width = %d", order, res.Width)
		}
	}
}

func TestDepthIDRejectsBadInput(t *testing.T) {
	tr := topology.MustNew(8)
	crossing := comm.NewSet(8, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 3})
	if _, err := DepthID(tr, crossing, OutermostFirst, power.Stateful); err == nil {
		t.Error("crossing set: want error")
	}
	s := comm.MustParse("(())")
	if _, err := DepthID(tr, s, OutermostFirst, power.Stateful); err == nil {
		t.Error("size mismatch: want error")
	}
}

func TestDepthIDEmptySet(t *testing.T) {
	tr := topology.MustNew(8)
	res, err := DepthID(tr, comm.NewSet(8), OutermostFirst, power.Stateful)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Report.TotalUnits() != 0 {
		t.Fatalf("empty set: rounds=%d units=%d", res.Rounds, res.Report.TotalUnits())
	}
}

// The headline contrast, stateless form: rebuilding each round's circuits
// from scratch costs the root Θ(w) units on a root-crossing chain.
func TestStatelessChurnOnChain(t *testing.T) {
	tr := topology.MustNew(64)
	const w = 16
	s, err := comm.NestedChain(64, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DepthID(tr, s, OutermostFirst, power.Stateless)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.MaxUnits(); got < w {
		t.Fatalf("stateless max units = %d, want >= %d", got, w)
	}
	// Stateful with the same monotone order holds the root's l->r across
	// rounds, so the chain alone does not exhibit churn.
	held, err := DepthID(tr, s, OutermostFirst, power.Stateful)
	if err != nil {
		t.Fatal(err)
	}
	if got := held.Report.MaxUnits(); got >= w {
		t.Fatalf("stateful outermost-first should hold configurations, max units = %d", got)
	}
}

// The headline contrast, stateful form: an ID order that interleaves outer
// and inner communications flips a switch's p_o driver Θ(w) times on a
// split chain, even though dropping/holding is free.
func TestStatefulChurnWithAlternatingOrder(t *testing.T) {
	tr := topology.MustNew(64)
	const w = 16
	s, err := comm.SplitChain(64, w)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsWellNested() {
		t.Fatalf("split chain not well nested: %s", s)
	}
	alt, err := DepthID(tr, s, Alternating, power.Stateful)
	if err != nil {
		t.Fatal(err)
	}
	if err := alt.Schedule.Verify(tr); err != nil {
		t.Fatal(err)
	}
	if got := alt.Report.MaxAlternations(); got < w-2 {
		t.Fatalf("alternating order: max alternations = %d, want ~%d", got, w-1)
	}
	out, err := DepthID(tr, s, OutermostFirst, power.Stateful)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Report.MaxAlternations(); got > 3 {
		t.Fatalf("outermost order: max alternations = %d, want O(1)", got)
	}
}

func TestGreedyOptimalOnWellNested(t *testing.T) {
	tr := topology.MustNew(32)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		s, err := comm.RandomWellNested(rng, 32, rng.Intn(17))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Greedy(tr, s, power.Stateful)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Verify(tr); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		// Greedy by leftmost source on a well-nested set performs a maximal
		// antichain per round; it must meet the width lower bound exactly
		// on these workloads only when depth == width, so only assert
		// validity plus the depth upper bound here.
		d, err := s.MaxDepth()
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > d {
			t.Fatalf("set %s: greedy used %d rounds, depth is %d", s, res.Rounds, d)
		}
		if res.Rounds < res.Width {
			t.Fatalf("set %s: %d rounds beats the width lower bound %d", s, res.Rounds, res.Width)
		}
	}
}

func TestGreedyHandlesNonWellNested(t *testing.T) {
	tr := topology.MustNew(32)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		s, err := comm.RandomOriented(rng, 32, 10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Greedy(tr, s, power.Stateful)
		if err != nil {
			t.Fatalf("set %v: %v", s.Comms, err)
		}
		if err := res.Schedule.Verify(tr); err != nil {
			t.Fatalf("set %v: %v", s.Comms, err)
		}
		if res.Rounds < res.Width {
			t.Fatalf("set %v: rounds %d below width %d", s.Comms, res.Rounds, res.Width)
		}
	}
}

func TestGreedyRejectsBadInput(t *testing.T) {
	tr := topology.MustNew(8)
	leftward := comm.NewSet(8, comm.Comm{Src: 5, Dst: 1})
	if _, err := Greedy(tr, leftward, power.Stateful); err == nil {
		t.Error("left-oriented set: want error")
	}
	if _, err := Greedy(tr, comm.MustParse("(())"), power.Stateful); err == nil {
		t.Error("size mismatch: want error")
	}
	invalid := comm.NewSet(8, comm.Comm{Src: 0, Dst: 20})
	if _, err := Greedy(tr, invalid, power.Stateful); err == nil {
		t.Error("invalid set: want error")
	}
}

func TestReportNames(t *testing.T) {
	tr := topology.MustNew(8)
	s := comm.MustParse("(.)(.).")
	res, err := DepthID(tr, s, Alternating, power.Stateless)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Algorithm != "depth-id(alternating)" {
		t.Errorf("algorithm name = %q", res.Report.Algorithm)
	}
	g, err := Greedy(tr, s, power.Stateful)
	if err != nil {
		t.Fatal(err)
	}
	if g.Report.Algorithm != "greedy" {
		t.Errorf("algorithm name = %q", g.Report.Algorithm)
	}
}

// Package lemma validates the combinatorial heart of the paper's power
// proof (Lemmas 6 and 7) directly on executions.
//
// Lemma 7 states that, over the rounds of Phase 2, the control words any
// node receives from its parent form — restricted to the source component —
// either Q1 (a run of [null,*], then a run of [s,*], then a run of
// [null,*]) or Q2 (the complement), i.e. the "does this round use the
// upward link half?" boolean flips at most twice; and symmetrically for the
// destination component. Lemma 6 then turns the bounded flip count into the
// O(1) switch-change bound of Theorem 8.
//
// Monitor records every Phase 2 word via a padr.Observer and Verify checks
// the flip bound for every node and both components. This is a stronger
// check than metering the crossbars (which could in principle stay small by
// accident): it pins the exact sequence structure the proof names.
package lemma

import (
	"fmt"

	"cst/internal/ctrl"
	"cst/internal/padr"
	"cst/internal/topology"
)

// MaxFlips is the Lemma 7 bound on boolean transitions per component: a Q1
// or Q2 sequence has at most two.
const MaxFlips = 2

// Monitor records per-node control word sequences.
type Monitor struct {
	seq map[topology.Node][]ctrl.Use
}

// Observer returns padr callbacks that populate the monitor.
func (m *Monitor) Observer() padr.Observer {
	return padr.Observer{
		WordSent: func(_, child topology.Node, w ctrl.Down) {
			if m.seq == nil {
				m.seq = map[topology.Node][]ctrl.Use{}
			}
			m.seq[child] = append(m.seq[child], w.Use)
		},
	}
}

// Nodes returns how many nodes received at least one word.
func (m *Monitor) Nodes() int { return len(m.seq) }

// Sequence returns the recorded word sequence of one node.
func (m *Monitor) Sequence(n topology.Node) []ctrl.Use { return m.seq[n] }

// Flips counts the transitions of a boolean projection of a sequence.
func Flips(seq []ctrl.Use, project func(ctrl.Use) bool) int {
	flips := 0
	for i := 1; i < len(seq); i++ {
		if project(seq[i]) != project(seq[i-1]) {
			flips++
		}
	}
	return flips
}

// Verify checks the Lemma 7 flip bound for every recorded node, both for
// the source component (HasS) and the destination component (HasD).
func (m *Monitor) Verify() error {
	for node, seq := range m.seq {
		if f := Flips(seq, ctrl.Use.HasS); f > MaxFlips {
			return fmt.Errorf("lemma: node %d source component flips %d times (> %d): %v",
				node, f, MaxFlips, seq)
		}
		if f := Flips(seq, ctrl.Use.HasD); f > MaxFlips {
			return fmt.Errorf("lemma: node %d destination component flips %d times (> %d): %v",
				node, f, MaxFlips, seq)
		}
	}
	return nil
}

// Classify names the observed source-component pattern of a sequence:
// "idle" (never S), "Q1" (null… s… null…), "Q2" (s… null… s…), or
// "violation".
func Classify(seq []ctrl.Use, project func(ctrl.Use) bool) string {
	if len(seq) == 0 {
		return "idle"
	}
	flips := Flips(seq, project)
	first := project(seq[0])
	switch {
	case flips == 0 && !first:
		return "idle"
	case flips <= MaxFlips && !first:
		return "Q1"
	case flips <= MaxFlips && first:
		return "Q2"
	default:
		return "violation"
	}
}

package lemma_test

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/lemma"
	"cst/internal/padr"
	"cst/internal/topology"
)

// Machine-check Lemma 7's Q1/Q2 sequence structure on a run.
func ExampleMonitor() {
	set, _ := comm.NestedChain(32, 4)
	tree := topology.MustNew(32)
	var mon lemma.Monitor
	engine, _ := padr.New(tree, set, padr.WithObserver(mon.Observer()))
	if _, err := engine.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("nodes observed:", mon.Nodes())
	fmt.Println("Lemma 7 holds:", mon.Verify() == nil)
	// Output:
	// nodes observed: 62
	// Lemma 7 holds: true
}

package lemma

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/padr"
	"cst/internal/topology"
)

func TestFlips(t *testing.T) {
	seq := []ctrl.Use{ctrl.UseNone, ctrl.UseS, ctrl.UseS, ctrl.UseNone, ctrl.UseNone}
	if f := Flips(seq, ctrl.Use.HasS); f != 2 {
		t.Fatalf("flips = %d, want 2", f)
	}
	if f := Flips(nil, ctrl.Use.HasS); f != 0 {
		t.Fatalf("empty flips = %d", f)
	}
	// [s,d] counts for both projections.
	both := []ctrl.Use{ctrl.UseSD, ctrl.UseD}
	if Flips(both, ctrl.Use.HasS) != 1 || Flips(both, ctrl.Use.HasD) != 0 {
		t.Fatal("projection of [s,d] wrong")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		seq  []ctrl.Use
		want string
	}{
		{nil, "idle"},
		{[]ctrl.Use{ctrl.UseNone, ctrl.UseNone}, "idle"},
		{[]ctrl.Use{ctrl.UseNone, ctrl.UseS, ctrl.UseNone}, "Q1"},
		{[]ctrl.Use{ctrl.UseS, ctrl.UseNone, ctrl.UseS}, "Q2"},
		{[]ctrl.Use{ctrl.UseS}, "Q2"},
		{[]ctrl.Use{ctrl.UseNone, ctrl.UseS, ctrl.UseNone, ctrl.UseS}, "violation"},
	}
	for _, c := range cases {
		if got := Classify(c.seq, ctrl.Use.HasS); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.seq, got, c.want)
		}
	}
}

func runWithMonitor(t *testing.T, s *comm.Set, sel padr.Selection) *Monitor {
	t.Helper()
	tr := topology.MustNew(s.N)
	var mon Monitor
	e, err := padr.New(tr, s, padr.WithSelection(sel), padr.WithObserver(mon.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("set %s: %v", s, err)
	}
	if err := res.Schedule.Verify(tr); err != nil {
		t.Fatalf("set %s: %v", s, err)
	}
	return &mon
}

// On the paper's chain workloads both selection rules satisfy Lemma 7
// exactly, and every node receives one word per round.
func TestLemma7OnChains(t *testing.T) {
	for _, w := range []int{1, 4, 16, 32} {
		for _, sel := range []padr.Selection{padr.Greedy, padr.Conservative} {
			s, err := comm.NestedChain(128, w)
			if err != nil {
				t.Fatal(err)
			}
			mon := runWithMonitor(t, s, sel)
			if err := mon.Verify(); err != nil {
				t.Fatalf("w=%d sel=%s: %v", w, sel, err)
			}
			if mon.Nodes() != 2*128-2 {
				t.Fatalf("w=%d: %d nodes recorded", w, mon.Nodes())
			}
			for node, seq := range mon.seq {
				if len(seq) != w {
					t.Fatalf("w=%d sel=%s: node %d received %d words", w, sel, node, len(seq))
				}
			}
		}
	}
}

// The reproduction's central finding (see DESIGN.md §6 and EXPERIMENTS.md):
// the Conservative rule satisfies Lemma 7's strict Q1/Q2 shape on *every*
// input, while the literal Fig. 5 pseudocode (Greedy) violates it on some
// random well-nested sets — though its flip count stays a small constant,
// far below the width, so Theorem 8's O(1)-in-w conclusion survives.
func TestLemma7ConservativeAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	greedyViolations := 0
	for trial := 0; trial < 150; trial++ {
		n := 1 << (2 + rng.Intn(5))
		s, err := comm.RandomWellNested(rng, n, rng.Intn(n/2+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := runWithMonitor(t, s.Clone(), padr.Conservative).Verify(); err != nil {
			t.Fatalf("conservative violated Lemma 7 on %s: %v", s, err)
		}
		gmon := runWithMonitor(t, s, padr.Greedy)
		if err := gmon.Verify(); err != nil {
			greedyViolations++
			// The violation must remain mild: flips bounded by a small
			// constant, far below any width-dependent growth.
			for node, seq := range gmon.seq {
				for _, proj := range []func(ctrl.Use) bool{ctrl.Use.HasS, ctrl.Use.HasD} {
					if f := Flips(seq, proj); f > 8 {
						t.Fatalf("greedy flips blow up at node %d on %s: %d", node, s, f)
					}
				}
			}
		}
	}
	if greedyViolations == 0 {
		t.Log("note: no greedy Lemma 7 violation in this sample (they are input-dependent)")
	} else {
		t.Logf("greedy violated strict Lemma 7 on %d/150 random sets (expected; see EXPERIMENTS.md)", greedyViolations)
	}
}

// The workload zoo satisfies Lemma 7 under both rules.
func TestLemma7Zoo(t *testing.T) {
	zoo := []func() (*comm.Set, error){
		func() (*comm.Set, error) { return comm.SplitChain(64, 16) },
		func() (*comm.Set, error) { return comm.SiblingForest(64, 4, 4) },
		func() (*comm.Set, error) { return comm.Staircase(64, 20) },
		func() (*comm.Set, error) { return comm.CompactChain(64, 16) },
	}
	for i, gen := range zoo {
		for _, sel := range []padr.Selection{padr.Greedy, padr.Conservative} {
			s, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			mon := runWithMonitor(t, s, sel)
			if err := mon.Verify(); err != nil {
				t.Fatalf("zoo %d sel=%s: %v", i, sel, err)
			}
		}
	}
}

// The monitor must actually observe Q1/Q2 shapes, not just idle sequences.
func TestPatternsObserved(t *testing.T) {
	s, err := comm.NestedChain(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	mon := runWithMonitor(t, s, padr.Greedy)
	counts := map[string]int{}
	tr := topology.MustNew(64)
	for node := topology.Node(2); int(node) < 2*64; node++ {
		if !tr.Valid(node) {
			continue
		}
		seq := mon.Sequence(node)
		counts[Classify(seq, ctrl.Use.HasS)]++
		counts[Classify(seq, ctrl.Use.HasD)]++
	}
	if counts["violation"] != 0 {
		t.Fatalf("violations observed: %v", counts)
	}
	if counts["Q1"]+counts["Q2"] == 0 {
		t.Fatalf("no non-trivial sequences observed: %v", counts)
	}
}

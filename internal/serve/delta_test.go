package serve

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/topology"
	"cst/internal/wire"
)

// TestScheduleDeltaLifecycle drives a session through the pool API: the
// opening delta runs from scratch, later deltas ride the warm engine, an
// invalid delta maps to 400 with the session untouched, and the admission
// ledger stays balanced.
func TestScheduleDeltaLifecycle(t *testing.T) {
	reg := obs.New()
	p, err := New(Config{PEs: 16, Shards: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = p.Drain(ctx)
	}()

	res := p.ScheduleDelta(5, nil, []comm.Comm{{Src: 0, Dst: 7}, {Src: 1, Dst: 2}}, 0)
	if res.Status != http.StatusOK || !res.Fallback || res.Size != 2 {
		t.Fatalf("opening delta = %+v, want 200 fallback size 2", res)
	}
	res = p.ScheduleDelta(5, []comm.Comm{{Src: 1, Dst: 2}}, []comm.Comm{{Src: 3, Dst: 6}}, 0)
	if res.Status != http.StatusOK || res.Fallback || res.Size != 2 {
		t.Fatalf("warm delta = %+v, want 200 incremental size 2", res)
	}
	if res.Rounds <= 0 || res.Width != res.Rounds {
		t.Fatalf("warm delta schedule shape = %+v", res)
	}

	// Invalid against the session: 400, set untouched.
	res = p.ScheduleDelta(5, []comm.Comm{{Src: 9, Dst: 10}}, nil, 0)
	if res.Status != http.StatusBadRequest || res.Err == "" || res.Size != 2 {
		t.Fatalf("invalid delta = %+v, want 400 with error, size 2", res)
	}
	// And the session survived it warm.
	res = p.ScheduleDelta(5, nil, []comm.Comm{{Src: 4, Dst: 5}}, 0)
	if res.Status != http.StatusOK || res.Fallback {
		t.Fatalf("delta after rejection = %+v, want warm 200", res)
	}

	if st := p.Snapshot(); st.Admitted != st.Responded {
		t.Fatalf("ledger: admitted %d responded %d", st.Admitted, st.Responded)
	}
}

// TestDeltaSessionPinning pins the shard-affinity invariant: session id
// modulo the shard count picks the worker, so every delta of a session
// lands on the simulator holding its warm engine.
func TestDeltaSessionPinning(t *testing.T) {
	p, err := New(Config{PEs: 16, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = p.Drain(ctx)
	}()

	for id := uint64(0); id < 4; id++ {
		if res := p.ScheduleDelta(id, nil, []comm.Comm{{Src: 0, Dst: 3}}, 0); res.Status != http.StatusOK {
			t.Fatalf("session %d: %+v", id, res)
		}
	}
	// Sessions 0,2 pin to shard 0; 1,3 to shard 1.
	for i, w := range p.workers {
		if got := w.sim.DeltaSessions(); got != 2 {
			t.Fatalf("shard %d holds %d sessions, want 2", i, got)
		}
	}
}

// TestDeltaDeadlineAndDrain pins the 504 and 503 taxonomy for deltas: an
// already-expired deadline settles before touching the simulator, and a
// draining pool refuses new deltas inline.
func TestDeltaDeadlineAndDrain(t *testing.T) {
	p, err := New(Config{PEs: 16, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	res := p.ScheduleDelta(1, nil, []comm.Comm{{Src: 0, Dst: 7}}, time.Nanosecond)
	if res.Status != http.StatusGatewayTimeout || res.Err == "" {
		t.Fatalf("expired delta = %+v, want 504", res)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res = p.ScheduleDelta(2, nil, nil, 0)
	if res.Status != http.StatusServiceUnavailable || !strings.Contains(res.Err, ErrDraining.Error()) {
		t.Fatalf("delta while draining = %+v, want 503", res)
	}
}

// TestHTTPScheduleDelta exercises POST /schedule-delta end to end: open,
// warm apply, invalid delta and malformed JSON, each with its status.
func TestHTTPScheduleDelta(t *testing.T) {
	reg := obs.New()
	tr := obs.NewTracer(nil, 1024)
	p, err := New(Config{PEs: 16, Shards: 1, Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = p.Drain(ctx)
	}()
	srv := httptest.NewServer(Handler(p, nil, reg, tr))
	defer srv.Close()

	post := func(body string) (int, DeltaResult) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/schedule-delta", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var dr DeltaResult
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return resp.StatusCode, dr
	}

	code, dr := post(`{"session":3,"add":[{"src":0,"dst":7},{"src":1,"dst":2}]}`)
	if code != http.StatusOK || !dr.Fallback || dr.Size != 2 {
		t.Fatalf("open = %d %+v, want 200 fallback size 2", code, dr)
	}
	code, dr = post(`{"session":3,"remove":[{"src":1,"dst":2}],"add":[{"src":3,"dst":6}]}`)
	if code != http.StatusOK || dr.Fallback || dr.Size != 2 {
		t.Fatalf("warm = %d %+v, want 200 incremental size 2", code, dr)
	}
	code, dr = post(`{"session":3,"remove":[{"src":9,"dst":10}]}`)
	if code != http.StatusBadRequest || dr.Err == "" {
		t.Fatalf("invalid = %d %+v, want 400 with error", code, dr)
	}

	resp, err := http.Post(srv.URL+"/schedule-delta", "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/schedule-delta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d, want 405", resp.StatusCode)
	}
}

// TestWireDeltaRoundtrip exercises the v4 frame end to end over a real
// connection, interleaved with pair requests on the same session slots.
func TestWireDeltaRoundtrip(t *testing.T) {
	addr, p, _, teardown := startWire(t, Config{PEs: 16, Shards: 2}, WireConfig{})
	defer teardown()

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v < wire.VersionDelta {
		t.Fatalf("negotiated v%d, want >= v%d", v, wire.VersionDelta)
	}

	if err := c.SendDelta(&wire.DeltaRequest{ID: 1, Session: 9,
		Add: [][2]int{{0, 7}, {1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var dr wire.DeltaResponse
	if err := c.RecvDelta(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.ID != 1 || dr.Session != 9 || dr.Status != http.StatusOK || !dr.Fallback || dr.Size != 2 {
		t.Fatalf("opening delta = %+v, want id 1 session 9 status 200 fallback size 2", dr)
	}

	if err := c.SendDelta(&wire.DeltaRequest{ID: 2, Session: 9,
		Remove: [][2]int{{1, 2}}, Add: [][2]int{{3, 6}, {4, 5}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.RecvDelta(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.ID != 2 || dr.Status != http.StatusOK || dr.Fallback || dr.Size != 3 {
		t.Fatalf("warm delta = %+v, want incremental 200 size 3", dr)
	}
	if dr.Rounds <= 0 || dr.Width != dr.Rounds {
		t.Fatalf("warm delta schedule shape = %+v", dr)
	}

	// Invalid delta: 400 over the wire, session untouched.
	if err := c.SendDelta(&wire.DeltaRequest{ID: 3, Session: 9,
		Remove: [][2]int{{9, 10}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.RecvDelta(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.ID != 3 || dr.Status != http.StatusBadRequest || dr.Err == "" || dr.Size != 3 {
		t.Fatalf("invalid delta = %+v, want 400 with error, size 3", dr)
	}

	// Pair requests interleave with deltas on the same connection.
	if err := c.Send(&wire.Request{ID: 4, Src: 2, Dst: 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := c.Recv(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 4 || resp.Status != http.StatusOK {
		t.Fatalf("pair after deltas = %+v", resp)
	}

	if st := p.Snapshot(); st.Admitted != st.Responded {
		t.Fatalf("ledger: admitted %d responded %d", st.Admitted, st.Responded)
	}
}

// TestWireDeltaOnV3Session pins version gating server-side: a delta frame
// on a session that negotiated v3 is a protocol violation — the
// connection dies and the counter ticks. (Client-side gating is pinned by
// the wire package's TestSendDeltaNeedsV4.)
func TestWireDeltaOnV3Session(t *testing.T) {
	reg := obs.New()
	addr, _, _, teardown := startWire(t, Config{PEs: 16, Shards: 1}, WireConfig{Registry: reg})
	defer teardown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendHello(nil, 3)); err != nil {
		t.Fatal(err)
	}
	var accept [wire.HandshakeBytes]byte
	if _, err := io.ReadFull(conn, accept[:]); err != nil {
		t.Fatal(err)
	}
	if v, err := wire.ParseHello(accept[:]); err != nil || v != 3 {
		t.Fatalf("negotiated v%d err %v, want v3", v, err)
	}
	frame, err := wire.AppendDeltaRequest(nil, &wire.DeltaRequest{ID: 1, Session: 1, Add: [][2]int{{0, 8}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if b, _ := io.ReadAll(conn); len(b) != 0 {
		t.Fatalf("server answered %x to a v4 frame on a v3 session", b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["cst_serve_wire_protocol_errors_total"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("protocol error never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeltaChaosFallbackServed proves the serving path survives a faulted
// incremental apply: the delta still answers 200, flagged as served by
// the clean from-scratch fallback run.
func TestDeltaChaosFallbackServed(t *testing.T) {
	// Shard simulators get the fault plan; run 1 on the session engine is
	// the first incremental apply (run 0 opened it). fault.Phase1 is the
	// control-word float, where the warm path re-floats dirty paths.
	p, err := New(Config{PEs: 16, Shards: 1, Faults: deltaFaultPlan(t)})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = p.Drain(ctx)
	}()

	if res := p.ScheduleDelta(1, nil, []comm.Comm{{Src: 0, Dst: 7}}, 0); res.Status != http.StatusOK {
		t.Fatalf("open: %+v", res)
	}
	res := p.ScheduleDelta(1, nil, []comm.Comm{{Src: 8, Dst: 15}}, 0)
	if res.Status != http.StatusOK || !res.Fallback || res.Size != 2 {
		t.Fatalf("faulted delta = %+v, want 200 served by fallback, size 2", res)
	}
	// The recovered session is warm again.
	res = p.ScheduleDelta(1, []comm.Comm{{Src: 8, Dst: 15}}, nil, 0)
	if res.Status != http.StatusOK || res.Fallback {
		t.Fatalf("post-recovery delta = %+v, want warm 200", res)
	}
}

// deltaFaultPlan drops the Phase 1 up-word at leaf 8 on engine run 1 —
// the incremental apply of the {8,15} add, whose dirty path covers that
// leaf, so the warm re-float actually trips over the fault.
func deltaFaultPlan(t *testing.T) []fault.Fault {
	t.Helper()
	tr, err := topology.New(16)
	if err != nil {
		t.Fatal(err)
	}
	return []fault.Fault{{Kind: fault.DropWord, Node: tr.Leaf(8), Run: 1, Round: fault.Phase1}}
}

package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/online"
)

// Delta serving: session-scoped incremental scheduling.
//
// A delta session lives on exactly one shard — admission pins it by
// session % shards — so every delta against a session reaches the same
// worker and therefore the same online.Simulator, which owns the
// session's warm engine (see online/delta.go). Deltas ride the normal
// admission channel for ordering and backpressure but are never batched
// with pair requests: the worker serves one inline the moment it is
// dequeued, whether that happens between batches or mid-collection.

// DeltaResult is the terminal answer for one delta request. Status uses
// the pool's HTTP mapping: 200 applied, 400 invalid delta, 429 backpressure
// or session table full, 500 fallback failed, 503 draining, 504 deadline.
type DeltaResult struct {
	Session uint64 `json:"session"`
	// Rounds and Width describe the re-scheduled session set (meaningful
	// only for status 200); Size is the set's size after the delta.
	Rounds int `json:"rounds"`
	Width  int `json:"width"`
	Size   int `json:"size"`
	// Fallback marks a success served by a from-scratch run instead of an
	// incremental apply.
	Fallback bool   `json:"fallback,omitempty"`
	Status   int    `json:"status"`
	Err      string `json:"error,omitempty"`
	TraceID  string `json:"trace_id,omitempty"`
}

// serveDelta is the delta payload riding on a call: the mutation lists
// plus the delta-typed completion path (mirroring call.resp/call.done).
// Wire slots embed one and reuse its comm slices across leases.
type serveDelta struct {
	session     uint64
	remove, add []comm.Comm
	resp        chan DeltaResult
	done        func(DeltaResult)
}

// ScheduleDelta admits one delta against session and blocks until its
// terminal DeltaResult. Safe for arbitrary concurrent callers.
func (p *Pool) ScheduleDelta(session uint64, remove, add []comm.Comm, deadline time.Duration) DeltaResult {
	return p.ScheduleDeltaTraced(session, remove, add, deadline, obs.SpanContext{})
}

// ScheduleDeltaTraced is ScheduleDelta carrying a span context, like
// ScheduleTraced.
func (p *Pool) ScheduleDeltaTraced(session uint64, remove, add []comm.Comm,
	deadline time.Duration, sctx obs.SpanContext) DeltaResult {
	sd := &serveDelta{session: session, remove: remove, add: add,
		resp: make(chan DeltaResult, 1)}
	c := &call{proto: protoHTTP}
	c.arm(0, 0, deadline)
	c.delta = sd
	c.sctx = sctx
	if res, ok := p.admitDelta(c); !ok {
		return res
	}
	return <-sd.resp
}

// admitDelta enqueues one armed delta call onto its session's pinned
// shard. A false return is an inline terminal refusal (draining, queue
// full) that never touched the admitted ledger.
func (p *Pool) admitDelta(c *call) (DeltaResult, bool) {
	p.met.requests.Inc()
	p.met.proto[c.proto].requests.Inc()
	sd := c.delta
	if c.deadline.IsZero() && p.cfg.DefaultDeadline > 0 {
		c.deadline = c.enq.Add(p.cfg.DefaultDeadline)
	}
	p.admission.RLock()
	if p.draining {
		p.admission.RUnlock()
		p.met.unavailable.Inc()
		return DeltaResult{Session: sd.session, Status: http.StatusServiceUnavailable,
			Err: ErrDraining.Error()}, false
	}
	// No round-robin fallback: the session's warm engine lives on exactly
	// this worker, so a full pinned queue is backpressure, not spillover.
	w := p.workers[int(sd.session%uint64(len(p.workers)))]
	enqueued := false
	select {
	case w.ch <- c:
		enqueued = true
	default:
	}
	if enqueued {
		p.admitted.Add(1)
		p.met.inflight.Add(1)
		p.met.queueDepth.Add(1)
	}
	p.admission.RUnlock()
	if !enqueued {
		p.met.rejected.Inc()
		return DeltaResult{Session: sd.session, Status: http.StatusTooManyRequests,
			Err: ErrQueueFull.Error()}, false
	}
	return DeltaResult{}, true
}

// serveDelta answers one dequeued delta call inline on the worker.
func (w *worker) serveDelta(c *call) {
	sd := c.delta
	if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
		w.pool.met.deadline.Inc()
		w.settleDelta(c, DeltaResult{Session: sd.session, Status: http.StatusGatewayTimeout,
			Err: fmt.Sprintf("serve: %v before apply", fault.ErrDeadline)})
		return
	}
	if w.pool.tracer != nil && c.sctx.Valid() {
		// Arm the shard simulator so its online.delta span joins the trace.
		w.sim.SetSpanContext(c.sctx)
		defer w.sim.SetSpanContext(obs.SpanContext{})
	}
	res, err := w.sim.ApplyDelta(sd.session, sd.remove, sd.add)
	out := DeltaResult{Session: sd.session, Rounds: res.Rounds, Width: res.Width,
		Size: res.Size, Fallback: res.Fallback, Status: http.StatusOK}
	if err != nil {
		switch {
		case errors.Is(err, online.ErrDeltaRejected):
			out.Status = http.StatusBadRequest
		case errors.Is(err, online.ErrSessionsFull):
			out.Status = http.StatusTooManyRequests
		default:
			out.Status = http.StatusInternalServerError
		}
		out.Rounds, out.Width = 0, 0
		out.Err = err.Error()
	}
	w.settleDelta(c, out)
}

// settleDelta delivers the terminal result for one admitted delta call,
// with the same ledger and latency accounting as settle. Deltas never
// reach flush, so the queue-depth decrement happens here.
func (w *worker) settleDelta(c *call, res DeltaResult) {
	sd := c.delta
	w.pool.responded.Add(1)
	w.pool.met.inflight.Add(-1)
	w.pool.met.queueDepth.Add(-1)
	lat := time.Since(c.enq)
	var trace obs.TraceID
	if c.sctx.Valid() {
		trace = c.sctx.Trace
	}
	w.pool.met.latency.ObserveDuration(lat)
	w.pool.met.latencyQ.ObserveTraced(lat.Seconds(), trace)
	pm := &w.pool.met.proto[c.proto]
	pm.latency.ObserveDuration(lat)
	pm.latencyQ.ObserveTraced(lat.Seconds(), trace)
	if w.pool.tracer != nil && c.sctx.Valid() {
		tr := w.pool.tracer
		tr.EmitSpan(obs.SpanRecord{
			Trace: c.sctx.Trace, Span: tr.NewSpanID(), Parent: c.sctx.Span,
			Name: "serve.delta", Engine: "serve",
			Start: c.enq, End: time.Now(),
			Status: res.Status, N: res.Rounds, Err: res.Err,
		})
	}
	if sd.done != nil {
		sd.done(res)
		return
	}
	sd.resp <- res
}

package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"cst/internal/comm"
	"cst/internal/obs"
)

// ScheduleRequest is the POST /schedule payload.
type ScheduleRequest struct {
	// Src and Dst are PE indices on the shard fabric.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// DeadlineMS optionally bounds the request's wall-clock time in the
	// service, overriding the pool's default. Zero uses the default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ScheduleSetRequest is the POST /schedule-set payload: a whole
// communication set to plan through the hybrid pipeline. The set need not
// be well nested — crossing and left-oriented pairs are what the hybrid
// planner exists for.
type ScheduleSetRequest struct {
	// N is the PE count (a power of two).
	N int `json:"n"`
	// Comms are the communications to schedule together.
	Comms []SetComm `json:"comms"`
}

// Handler mounts the scheduling API next to the observability surface on
// one mux: POST /schedule, POST /schedule-set and GET /statusz from this
// package, plus /metrics, /healthz, /trace and /debug/pprof from
// obs.Handler — one listener serves both traffic and introspection. pl may
// be nil, in which case /schedule-set answers 501.
func Handler(p *Pool, pl *Planner, reg *obs.Registry, tr *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(reg, tr))
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req ScheduleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		res := p.Schedule(req.Src, req.Dst, time.Duration(req.DeadlineMS)*time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.Status)
		_ = json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/schedule-set", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if pl == nil {
			http.Error(w, "set planning not enabled", http.StatusNotImplemented)
			return
		}
		var req ScheduleSetRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		s := &comm.Set{N: req.N, Comms: make([]comm.Comm, len(req.Comms))}
		for i, c := range req.Comms {
			s.Comms[i] = comm.Comm{Src: c.Src, Dst: c.Dst}
		}
		res := pl.Plan(s, protoHTTP, true)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.Status)
		_ = json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(p.Snapshot())
	})
	return mux
}

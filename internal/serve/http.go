package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"cst/internal/obs"
)

// ScheduleRequest is the POST /schedule payload.
type ScheduleRequest struct {
	// Src and Dst are PE indices on the shard fabric.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// DeadlineMS optionally bounds the request's wall-clock time in the
	// service, overriding the pool's default. Zero uses the default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Handler mounts the scheduling API next to the observability surface on
// one mux: POST /schedule and GET /statusz from this package, plus
// /metrics, /healthz, /trace and /debug/pprof from obs.Handler — one
// listener serves both traffic and introspection.
func Handler(p *Pool, reg *obs.Registry, tr *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(reg, tr))
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req ScheduleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		res := p.Schedule(req.Src, req.Dst, time.Duration(req.DeadlineMS)*time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.Status)
		_ = json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(p.Snapshot())
	})
	return mux
}

package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"cst/internal/comm"
	"cst/internal/obs"
)

// ScheduleRequest is the POST /schedule payload.
type ScheduleRequest struct {
	// Src and Dst are PE indices on the shard fabric.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// DeadlineMS optionally bounds the request's wall-clock time in the
	// service, overriding the pool's default. Zero uses the default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ScheduleSetRequest is the POST /schedule-set payload: a whole
// communication set to plan through the hybrid pipeline. The set need not
// be well nested — crossing and left-oriented pairs are what the hybrid
// planner exists for.
type ScheduleSetRequest struct {
	// N is the PE count (a power of two).
	N int `json:"n"`
	// Comms are the communications to schedule together.
	Comms []SetComm `json:"comms"`
}

// ScheduleDeltaRequest is the POST /schedule-delta payload: a mutation of
// a long-lived session's communication set. Removes apply before adds;
// the session opens on its first delta and stays pinned to one shard.
type ScheduleDeltaRequest struct {
	// Session identifies the delta session; session % shards picks the
	// owning shard worker.
	Session uint64 `json:"session"`
	// Remove lists pairs to drop from the session set; each must be
	// present. Add lists right-oriented pairs to insert.
	Remove []SetComm `json:"remove,omitempty"`
	Add    []SetComm `json:"add,omitempty"`
	// DeadlineMS optionally bounds the request's wall-clock time in the
	// service, overriding the pool's default. Zero uses the default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Handler mounts the scheduling API next to the observability surface on
// one mux: POST /schedule, POST /schedule-set, POST /schedule-delta and
// GET /statusz from this package, plus /metrics, /healthz, /trace,
// /trace/flight and /debug/pprof from obs.Handler — one listener serves
// both traffic and introspection. pl may be nil, in which case
// /schedule-set answers 501.
//
// Both POST endpoints participate in span tracing: an X-CST-Trace request
// header continues the caller's trace, head sampling opens a fresh one, and
// errored requests are recorded retroactively even when unsampled. Sampled
// responses echo X-CST-Trace and carry trace_id in the body.
func Handler(p *Pool, pl *Planner, reg *obs.Registry, tr *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(reg, tr))
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		start := time.Now()
		remote, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		sp := tr.StartServer("http.schedule", "serve", remote)
		var req ScheduleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			finishHTTPError(w, tr, &sp, "http.schedule", start,
				http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		res := p.ScheduleTraced(req.Src, req.Dst, time.Duration(req.DeadlineMS)*time.Millisecond, sp.Context())
		sctx := sp.Context()
		if !sp.Sampled() && (res.Status >= 400 || res.Err != "") {
			sctx = tr.EmitErrorRoot("http.schedule", "serve", start, res.Status, res.Err)
		}
		writeTraced(w, tr, sctx, res.Status, &res, &res.TraceID)
		sp.SetStatus(res.Status)
		sp.SetError(res.Err)
		sp.End()
	})
	mux.HandleFunc("/schedule-set", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if pl == nil {
			http.Error(w, "set planning not enabled", http.StatusNotImplemented)
			return
		}
		start := time.Now()
		remote, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		sp := tr.StartServer("http.plan", "serve", remote)
		var req ScheduleSetRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			finishHTTPError(w, tr, &sp, "http.plan", start,
				http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		s := &comm.Set{N: req.N, Comms: make([]comm.Comm, len(req.Comms))}
		for i, c := range req.Comms {
			s.Comms[i] = comm.Comm{Src: c.Src, Dst: c.Dst}
		}
		res := pl.PlanTraced(s, protoHTTP, true, sp.Context())
		sctx := sp.Context()
		if !sp.Sampled() && (res.Status >= 400 || res.Err != "") {
			sctx = tr.EmitErrorRoot("http.plan", "serve", start, res.Status, res.Err)
		}
		writeTraced(w, tr, sctx, res.Status, &res, &res.TraceID)
		sp.SetStatus(res.Status)
		sp.SetN(s.Len())
		sp.SetError(res.Err)
		sp.End()
	})
	mux.HandleFunc("/schedule-delta", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		start := time.Now()
		remote, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		sp := tr.StartServer("http.delta", "serve", remote)
		var req ScheduleDeltaRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			finishHTTPError(w, tr, &sp, "http.delta", start,
				http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		remove := make([]comm.Comm, len(req.Remove))
		for i, c := range req.Remove {
			remove[i] = comm.Comm{Src: c.Src, Dst: c.Dst}
		}
		add := make([]comm.Comm, len(req.Add))
		for i, c := range req.Add {
			add[i] = comm.Comm{Src: c.Src, Dst: c.Dst}
		}
		res := p.ScheduleDeltaTraced(req.Session, remove, add,
			time.Duration(req.DeadlineMS)*time.Millisecond, sp.Context())
		sctx := sp.Context()
		if !sp.Sampled() && (res.Status >= 400 || res.Err != "") {
			sctx = tr.EmitErrorRoot("http.delta", "serve", start, res.Status, res.Err)
		}
		writeTraced(w, tr, sctx, res.Status, &res, &res.TraceID)
		sp.SetStatus(res.Status)
		sp.SetN(res.Rounds)
		sp.SetError(res.Err)
		sp.End()
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(p.Snapshot())
	})
	return mux
}

// writeTraced writes one JSON response body, stamping the trace id into the
// body (via traceID, a pointer into body) and the X-CST-Trace response
// header when the request is traced, and recording the encode as a
// "response.write" child span when sampled.
func writeTraced(w http.ResponseWriter, tr *obs.Tracer, sctx obs.SpanContext, status int, body any, traceID *string) {
	if sctx.Valid() {
		*traceID = sctx.Trace.String()
		w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(sctx))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	wsp := tr.StartSpan(sctx, "response.write", "serve")
	_ = json.NewEncoder(w).Encode(body)
	wsp.End()
}

// finishHTTPError answers a pre-admission failure (malformed payload),
// closing the root span — or retroactively recording one — so the error is
// attributable at any sample rate.
func finishHTTPError(w http.ResponseWriter, tr *obs.Tracer, sp *obs.Span, name string, start time.Time, status int, msg string) {
	sctx := sp.Context()
	if !sp.Sampled() {
		sctx = tr.EmitErrorRoot(name, "serve", start, status, msg)
	}
	if sctx.Valid() {
		w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(sctx))
	}
	http.Error(w, msg, status)
	sp.SetStatus(status)
	sp.SetError(msg)
	sp.End()
}

// The wire server is the binary-protocol front end of a Pool: persistent
// TCP connections speaking the internal/wire framing, pipelined requests
// correlated by id, and a steady-state request cycle that allocates
// nothing. All per-request state lives in a fixed set of slots owned by
// the connection (acquired once per connection from a sync.Pool), so the
// read → admit → schedule → encode → write cycle touches only memory that
// already exists.
//
// Per connection, two goroutines split the work:
//
//   - the reader owns the connection's read side and the request scratch:
//     it decodes frames, leases a slot (blocking when MaxPipeline requests
//     are in flight — the slot freelist is the pipelining window), and
//     admits the slot's call into the pool;
//   - the writer owns the write side and the encode scratch: it drains
//     settled slots off the out channel, encodes response frames, flushes
//     when the channel runs empty, and returns slots to the freelist.
//
// A settled call reaches the writer through the slot's done callback,
// which the shard worker invokes inline; the callback only performs a
// buffered channel send, so a slow connection never blocks a worker — the
// out channel's capacity equals the slot count, and a slot cannot be
// settled twice.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cst/internal/comm"
	"cst/internal/obs"
	"cst/internal/wire"
)

// DefaultMaxPipeline bounds in-flight requests per wire connection when
// WireConfig leaves MaxPipeline zero.
const DefaultMaxPipeline = 64

// wireHandshakeTimeout bounds how long an accepted connection may sit
// before completing the version handshake.
const wireHandshakeTimeout = 5 * time.Second

// ErrWireClosed is returned by Serve after Shutdown, mirroring
// http.ErrServerClosed (it is swallowed by Serve itself on a clean
// shutdown and surfaces only from a second Serve call).
var ErrWireClosed = errors.New("serve: wire server closed")

// WireConfig parameterizes a WireServer.
type WireConfig struct {
	// MaxPipeline bounds the requests in flight on one connection; a
	// client that pipelines deeper blocks in the kernel until answers
	// drain. It is also the slot count, so memory per connection is
	// proportional. Zero means DefaultMaxPipeline.
	MaxPipeline int
	// Planner answers set requests (TypeSetRequest frames, v2+). Nil
	// makes the server answer them with status 501.
	Planner *Planner
	// Registry receives the cst_serve_wire_* series; nil leaves the
	// server uninstrumented.
	Registry *obs.Registry
	// Tracer receives connection lifecycle events; nil no-ops.
	Tracer *obs.Tracer
}

// wireMetrics holds the cst_serve_wire_* handles (nil handles no-op).
type wireMetrics struct {
	conns      *obs.Gauge
	connsTotal *obs.Counter
	protoErrs  *obs.Counter
}

func newWireMetrics(r *obs.Registry) wireMetrics {
	return wireMetrics{
		conns:      r.Gauge("cst_serve_wire_conns", "open wire-protocol connections"),
		connsTotal: r.Counter("cst_serve_wire_conns_total", "wire-protocol connections accepted"),
		protoErrs:  r.Counter("cst_serve_wire_protocol_errors_total", "protocol violations that closed a wire connection"),
	}
}

// WireServer accepts wire-protocol connections and feeds their requests
// into a Pool. Construct with NewWireServer, run with Serve, stop with
// Shutdown — after the pool has drained, so in-flight answers are already
// settled and only need flushing.
type WireServer struct {
	pool    *Pool
	cfg     WireConfig
	met     wireMetrics
	tracer  *obs.Tracer
	bundles sync.Pool

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool
	wg       sync.WaitGroup
}

// NewWireServer builds a wire front end over p.
func NewWireServer(p *Pool, cfg WireConfig) *WireServer {
	if cfg.MaxPipeline <= 0 {
		cfg.MaxPipeline = DefaultMaxPipeline
	}
	s := &WireServer{
		pool:   p,
		cfg:    cfg,
		met:    newWireMetrics(cfg.Registry),
		tracer: cfg.Tracer,
		conns:  make(map[net.Conn]struct{}),
	}
	s.bundles.New = func() any { return s.newBundle() }
	return s
}

// wireCall is one connection slot: a pooled call plus the spot its
// terminal Result lands in. The call's done closure is built once per
// slot and survives bundle reuse. Set requests reuse the same slots for
// ordering and backpressure: isSet routes the writer to setRes instead of
// res, and is cleared when the slot is leased for a pair request.
type wireCall struct {
	c      call
	res    Result
	isSet  bool
	setRes SetResult
	// Delta requests (v4) also ride the slots. Unlike pair requests, the
	// decode scratch is slot-owned, not connection-owned: the mutation
	// pair slices stay live until the shard worker applies them, which
	// may be after the reader has moved on to the next frame.
	isDelta  bool
	dreq     wire.DeltaRequest
	delta    serveDelta
	deltaRes DeltaResult
	// sp is the request's root span ("wire.schedule" / "wire.plan" /
	// "wire.delta"), opened by the reader and closed by the writer after
	// the response frame is written. It is a value embedded in the pooled
	// slot, so the unsampled path stays allocation-free.
	sp obs.Span
}

// connBundle is the per-connection working set, pooled across
// connections: the slot array, the freelist (doubling as the pipelining
// window), the settled-slot channel feeding the writer, and the reader
// and writer scratch. The out channel holds one extra space for the nil
// sentinel the reader uses to stop the writer, which keeps the channels
// reusable (a closed channel could not go back in the pool).
type connBundle struct {
	version byte // negotiated session version, set per connection
	slots   []*wireCall
	free    chan *wireCall
	out     chan *wireCall
	rd      *wire.Reader
	bw      *bufio.Writer
	req     wire.Request     // reader-owned decode scratch
	setReq  wire.SetRequest  // reader-owned set decode scratch
	set     comm.Set         // reader-owned set build scratch
	resp      wire.Response      // writer-owned encode scratch
	setResp   wire.SetResponse   // writer-owned set encode scratch
	deltaResp wire.DeltaResponse // writer-owned delta encode scratch
	enc       []byte             // writer-owned frame scratch
}

func (s *WireServer) newBundle() *connBundle {
	n := s.cfg.MaxPipeline
	b := &connBundle{
		slots: make([]*wireCall, n),
		free:  make(chan *wireCall, n),
		out:   make(chan *wireCall, n+1),
		rd:    wire.NewReader(nil),
		bw:    bufio.NewWriterSize(nil, 4096),
	}
	for i := range b.slots {
		wc := &wireCall{}
		wc.c.proto = protoWire
		out := b.out
		wc.c.done = func(res Result) {
			wc.res = res
			out <- wc
		}
		wc.delta.done = func(res DeltaResult) {
			wc.deltaRes = res
			out <- wc
		}
		b.slots[i] = wc
		b.free <- wc
	}
	return b
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *WireServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. A clean
// shutdown returns nil; calling Serve on an already-shut-down server
// returns ErrWireClosed.
func (s *WireServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return ErrWireClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return nil
			}
			return fmt.Errorf("serve: wire accept: %w", err)
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown stops accepting, pokes every open connection's reader off its
// blocking read, and waits for the connection handlers to finish — each
// one reclaims its in-flight slots (already settled once the pool has
// drained), flushes buffered answers and closes. Call after Pool.Drain.
func (s *WireServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	ln := s.ln
	now := time.Now()
	for c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: wire shutdown: %w", ctx.Err())
	}
}

func (s *WireServer) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handshake reads the client hello straight off the raw connection (the
// framed reader attaches after, so nothing is over-read), answers with the
// negotiated version and returns it — the session's frame allow-list
// depends on it.
func (s *WireServer) handshake(conn net.Conn) (byte, error) {
	_ = conn.SetReadDeadline(time.Now().Add(wireHandshakeTimeout))
	var hello [wire.HandshakeBytes]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, fmt.Errorf("handshake read: %w", err)
	}
	offered, err := wire.ParseHello(hello[:])
	if err != nil {
		return 0, err
	}
	version := wire.Negotiate(offered, wire.Version)
	var accept [wire.HandshakeBytes]byte
	if _, err := conn.Write(wire.AppendHello(accept[:0], version)); err != nil {
		return 0, fmt.Errorf("handshake write: %w", err)
	}
	return version, nil
}

// handle runs one connection: handshake, then the reader loop described
// in the package comment. It always reclaims every slot before returning
// the bundle to the pool, so a bundle re-enters the pool quiescent.
func (s *WireServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()

	version, err := s.handshake(conn)
	if err != nil {
		s.met.protoErrs.Inc()
		return
	}
	// Clearing the handshake deadline must not race a Shutdown poke:
	// both happen under mu, and a post-poke clear is prevented by the
	// shutdown check.
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	s.mu.Unlock()

	s.met.conns.Add(1)
	s.met.connsTotal.Inc()
	defer s.met.conns.Add(-1)
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Type: "wire.conn", Engine: "serve", Round: -1, N: 1})
	}

	b := s.bundles.Get().(*connBundle)
	defer s.bundles.Put(b)
	b.version = version
	b.rd.Reset(conn)
	b.bw.Reset(conn)

	writerDone := make(chan struct{})
	go s.writeLoop(b, writerDone)

	for {
		typ, body, err := b.rd.Next()
		if err != nil {
			if isWireProtocolErr(err) {
				s.met.protoErrs.Inc()
			}
			break
		}
		switch {
		case typ == wire.TypeRequest:
			if err := wire.ParseRequestV(body, &b.req, version); err != nil {
				s.met.protoErrs.Inc()
				goto teardown
			}
			// Lease a slot; blocking here is the pipelining window — the
			// connection stops reading until an in-flight answer frees
			// one.
			wc := <-b.free
			wc.isSet, wc.isDelta = false, false
			wc.c.arm(b.req.Src, b.req.Dst, b.req.Deadline())
			wc.c.id = b.req.ID
			// Open the request's root span: a v3 frame's trace block may
			// continue (and force-sample) the client's trace; otherwise the
			// head decision applies. Unsampled requests get the zero Span —
			// no allocation on this path.
			wc.sp = s.tracer.StartServer("wire.schedule", "serve", obs.SpanContext{
				Trace:   obs.TraceID(b.req.Trace),
				Span:    obs.SpanID(b.req.Span),
				Sampled: b.req.Flags&wire.FlagSampled != 0,
			})
			wc.c.sctx = wc.sp.Context()
			if res, ok := s.pool.admit(&wc.c); !ok {
				// Inline refusal (bad endpoints, draining, queue full):
				// the call never reached a worker, so route the slot to
				// the writer directly.
				wc.res = res
				b.out <- wc
			}
		case typ == wire.TypeSetRequest && version >= wire.VersionSets:
			if err := wire.ParseSetRequestV(body, &b.setReq, version); err != nil {
				s.met.protoErrs.Inc()
				goto teardown
			}
			// A set plan runs inline on the reader — planning is
			// mutex-serialized CPU work, and answering in arrival order
			// through the same slot/out machinery keeps the response
			// stream coherent with pipelined pair requests.
			wc := <-b.free
			wc.isSet, wc.isDelta = true, false
			wc.c.id = b.setReq.ID
			wc.c.enq = time.Now()
			wc.sp = s.tracer.StartServer("wire.plan", "serve", obs.SpanContext{
				Trace:   obs.TraceID(b.setReq.Trace),
				Span:    obs.SpanID(b.setReq.Span),
				Sampled: b.setReq.Flags&wire.FlagSampled != 0,
			})
			b.set.N = b.setReq.N
			b.set.Comms = b.set.Comms[:0]
			for _, pr := range b.setReq.Pairs {
				b.set.Comms = append(b.set.Comms, comm.Comm{Src: pr[0], Dst: pr[1]})
			}
			if s.cfg.Planner == nil {
				wc.setRes = SetResult{Status: 501, Err: "serve: set planning not enabled"}
			} else {
				wc.setRes = s.cfg.Planner.PlanTraced(&b.set, protoWire, false, wc.sp.Context())
			}
			b.out <- wc
		case typ == wire.TypeDeltaRequest && version >= wire.VersionDelta:
			// Lease the slot BEFORE decoding: the delta decode scratch is
			// slot-owned, because its pair slices must survive until the
			// pinned shard worker applies the mutation.
			wc := <-b.free
			if err := wire.ParseDeltaRequest(body, &wc.dreq); err != nil {
				s.met.protoErrs.Inc()
				b.free <- wc
				goto teardown
			}
			wc.isSet, wc.isDelta = false, true
			wc.c.arm(0, 0, wc.dreq.Deadline())
			wc.c.id = wc.dreq.ID
			wc.sp = s.tracer.StartServer("wire.delta", "serve", obs.SpanContext{
				Trace:   obs.TraceID(wc.dreq.Trace),
				Span:    obs.SpanID(wc.dreq.Span),
				Sampled: wc.dreq.Flags&wire.FlagSampled != 0,
			})
			wc.c.sctx = wc.sp.Context()
			sd := &wc.delta
			sd.session = wc.dreq.Session
			sd.remove = sd.remove[:0]
			for _, pr := range wc.dreq.Remove {
				sd.remove = append(sd.remove, comm.Comm{Src: pr[0], Dst: pr[1]})
			}
			sd.add = sd.add[:0]
			for _, pr := range wc.dreq.Add {
				sd.add = append(sd.add, comm.Comm{Src: pr[0], Dst: pr[1]})
			}
			wc.c.delta = sd
			if res, ok := s.pool.admitDelta(&wc.c); !ok {
				wc.deltaRes = res
				b.out <- wc
			}
		default:
			// Unknown frame for this session's version — 0x03 on a v1
			// session is as fatal as a type the decoder never heard of.
			s.met.protoErrs.Inc()
			goto teardown
		}
	}
teardown:

	// Teardown: reclaim every slot. In-flight ones come back through
	// settle → done → writer → freelist; the pool settles every admitted
	// call (drain included), so this converges. Only then may the writer
	// stop — the nil sentinel keeps the channel reusable.
	for range b.slots {
		<-b.free
	}
	b.out <- nil
	<-writerDone
	for _, wc := range b.slots {
		b.free <- wc
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Type: "wire.conn", Engine: "serve", Round: -1, N: 0})
	}
}

// writeLoop drains settled slots, encodes their response frames and
// returns the slots to the freelist. After a write error it keeps
// draining (slots must reach the freelist for teardown to converge) but
// stops touching the dead connection. Spans still close on that path:
// the request ran to completion server-side, and a root left open would
// pin its trace in the flight recorder's open table forever.
func (s *WireServer) writeLoop(b *connBundle, done chan<- struct{}) {
	defer close(done)
	var werr error
	for {
		wc := <-b.out
		if wc == nil {
			break
		}
		var status int
		var errmsg, rootName string
		switch {
		case wc.isDelta:
			status, errmsg, rootName = wc.deltaRes.Status, wc.deltaRes.Err, "wire.delta"
		case wc.isSet:
			status, errmsg, rootName = wc.setRes.Status, wc.setRes.Err, "wire.plan"
		default:
			status, errmsg, rootName = wc.res.Status, wc.res.Err, "wire.schedule"
		}
		// Always-sample-on-error: a refused or failed request that was
		// not head-sampled still gets a retroactive root span, so its
		// trace id reaches the client and the flight recorder.
		sctx := wc.sp.Context()
		if !wc.sp.Sampled() && (status >= 400 || errmsg != "") {
			sctx = s.tracer.EmitErrorRoot(rootName, "serve", wc.c.enq, status, errmsg)
		}
		if werr == nil {
			wsp := s.tracer.StartSpan(sctx, "response.write", "serve")
			if wc.isDelta {
				r := &b.deltaResp
				r.ID = wc.c.id
				r.Session = wc.deltaRes.Session
				r.Status = wc.deltaRes.Status
				r.Rounds = wc.deltaRes.Rounds
				r.Width = wc.deltaRes.Width
				r.Size = wc.deltaRes.Size
				r.Fallback = wc.deltaRes.Fallback
				r.Err = wc.deltaRes.Err
				r.Trace = uint64(sctx.Trace)
				b.enc = wire.AppendDeltaResponse(b.enc[:0], r)
				wc.deltaRes = DeltaResult{}
			} else if wc.isSet {
				r := &b.setResp
				r.ID = wc.c.id
				r.Status = wc.setRes.Status
				r.Rounds = wc.setRes.Rounds
				r.Bound = wc.setRes.Bound
				r.Width = wc.setRes.Width
				r.Batches = wc.setRes.Batches
				r.Residual = wc.setRes.ResidualComms
				r.Units = wc.setRes.Units
				r.Strategy = strategyCode(wc.setRes.Strategy)
				r.Err = wc.setRes.Err
				r.Trace = uint64(sctx.Trace)
				b.enc = wire.AppendSetResponseV(b.enc[:0], r, b.version)
				wc.setRes = SetResult{}
			} else {
				r := &b.resp
				r.ID = wc.c.id
				r.Status = wc.res.Status
				r.Shard = wc.res.Shard
				r.Arrival = wc.res.Arrival
				r.Dispatched = wc.res.Dispatched
				r.Finished = wc.res.Finished
				r.LatencyRounds = wc.res.LatencyRounds
				r.Err = wc.res.Err
				r.Trace = uint64(sctx.Trace)
				b.enc = wire.AppendResponseV(b.enc[:0], r, b.version)
			}
			if _, err := b.bw.Write(b.enc); err != nil {
				werr = err
			}
			// Flush only when no more settled answers are queued: frames
			// for a pipelined burst coalesce into one syscall.
			if werr == nil && len(b.out) == 0 {
				if err := b.bw.Flush(); err != nil {
					werr = err
				}
			}
			wsp.End()
		}
		wc.sp.SetStatus(status)
		wc.sp.SetError(errmsg)
		wc.sp.End()
		b.free <- wc
	}
	if werr == nil {
		_ = b.bw.Flush()
	}
}

// isWireProtocolErr reports whether a read error is a protocol violation
// (counted) as opposed to a routine disconnect or shutdown poke (not).
func isWireProtocolErr(err error) bool {
	return errors.Is(err, wire.ErrBadFrame) ||
		errors.Is(err, wire.ErrFrameTooLarge) ||
		errors.Is(err, wire.ErrUnknownType) ||
		errors.Is(err, wire.ErrTruncated) ||
		errors.Is(err, wire.ErrBadMagic) ||
		errors.Is(err, wire.ErrVersion)
}

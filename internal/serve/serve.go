// Package serve turns the online dispatcher into a long-running scheduling
// service: a pool of CST shards (one online.Simulator per shard, each
// goroutine-confined to its dispatcher worker), an admission queue with
// bounded depth and explicit backpressure, deadline- and size-triggered
// batch flushing, per-request deadlines reported through the fault
// package's error taxonomy, and a graceful drain that stops admission,
// flushes every queue and loses no accepted request.
//
// The simulator is synchronous and not safe for concurrent use, so the
// service never shares one across goroutines. Each worker owns its shard's
// simulator outright; the HTTP layer only ever touches the admission
// channels and the (atomic) counters. Scheduling work batches naturally:
// a worker collects requests until the batch is full or the batch timer
// fires, submits the wave, and dispatches until its fabric is idle — the
// same quiesce loop pinned by the online package's drain tests.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/online"
)

// Defaults for Config fields left zero.
const (
	DefaultPEs        = 64
	DefaultQueueDepth = 64
	DefaultBatchMax   = 32
	DefaultBatchWait  = 2 * time.Millisecond
)

// ErrDraining rejects admissions after Drain has begun.
var ErrDraining = errors.New("serve: draining, not admitting")

// ErrQueueFull is the backpressure signal: every shard's admission queue
// is at capacity. Clients should back off and retry (HTTP 429).
var ErrQueueFull = errors.New("serve: all admission queues full")

// errUnschedulable marks the defensive wedge guard: a flush wave where no
// deferred request could be submitted even though the fabric was idle.
var errUnschedulable = errors.New("serve: request endpoints permanently unavailable")

// Config parameterizes a Pool.
type Config struct {
	// PEs is the number of processing elements per shard fabric.
	PEs int
	// Shards is the number of independent CST fabrics, each with its own
	// dispatcher worker and admission queue.
	Shards int
	// QueueDepth bounds each shard's admission queue; a request that finds
	// every queue full is rejected with ErrQueueFull.
	QueueDepth int
	// BatchMax flushes a batch once it holds this many requests.
	BatchMax int
	// BatchWait flushes a partial batch this long after its first request
	// arrived. Zero or negative flushes immediately (no batching delay
	// beyond what is already queued).
	BatchWait time.Duration
	// DefaultDeadline bounds each request's wall-clock time in the service
	// unless the request carries its own; zero means no default deadline.
	DefaultDeadline time.Duration
	// Registry receives the cst_serve_* series; nil leaves the pool
	// uninstrumented.
	Registry *obs.Registry
	// Tracer receives request lifecycle events; nil no-ops.
	Tracer *obs.Tracer
	// Faults is a fault plan installed into every shard (each shard gets
	// its own injector — injectors are not safe across concurrent
	// engines). Nil runs fault-free.
	Faults []fault.Fault
	// EngineMetrics threads Registry/Tracer into the shard simulators so
	// the inner cst_online_*/cst_padr_* series and per-round trace events
	// accumulate too. It disables subtree sharding inside each simulator
	// (the inner engines' shared metric attribution is only well-defined
	// one engine at a time).
	EngineMetrics bool
	// Sharding enables subtree sharding inside each shard's simulator
	// (ignored when EngineMetrics or Faults are set; see online.WithSharding).
	Sharding bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PEs <= 0 {
		out.PEs = DefaultPEs
	}
	if out.Shards <= 0 {
		out.Shards = 1
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = DefaultQueueDepth
	}
	if out.BatchMax <= 0 {
		out.BatchMax = DefaultBatchMax
	}
	return out
}

// Result is the terminal answer for one scheduling request. Status carries
// the HTTP mapping the service uses: 200 scheduled, 400 bad endpoints,
// 429 queue full, 500 quarantined, 503 draining, 504 deadline exceeded.
type Result struct {
	Src   int `json:"src"`
	Dst   int `json:"dst"`
	Shard int `json:"shard"`
	// Arrival, Dispatched and Finished are simulated fabric rounds on the
	// shard that scheduled the request; LatencyRounds is Finished−Arrival.
	Arrival       int `json:"arrival"`
	Dispatched    int `json:"dispatched"`
	Finished      int `json:"finished"`
	LatencyRounds int `json:"latency_rounds"`
	// Status is the HTTP status the outcome maps to; Err is the error
	// string for non-200 outcomes.
	Status int    `json:"status"`
	Err    string `json:"error,omitempty"`
	// TraceID is the request's trace id when the request was sampled (set
	// by the transport, not by the pool).
	TraceID string `json:"trace_id,omitempty"`
}

// Protocol indices for per-protocol metric attribution. Every call is
// tagged with the protocol that admitted it.
const (
	protoHTTP = iota
	protoWire
	protoCount
)

// protoNames are the label values on the per-protocol cst_serve_* series.
var protoNames = [protoCount]string{protoHTTP: "http", protoWire: "wire"}

// call is one in-flight request: the admission payload plus its completion
// path. The HTTP path blocks on resp (buffered so the worker's settle
// never blocks on a slow client); the wire path sets done instead, and
// settle invokes it on the worker goroutine — the callback must hand off
// (a channel send to the connection's writer) rather than do work. Wire
// calls are embedded in per-connection slots and reused, which is what
// keeps that path allocation-free.
type call struct {
	src, dst int
	id       uint64 // wire request id, echoed in the response frame
	proto    uint8
	deadline time.Time
	enq      time.Time
	resp     chan Result
	done     func(Result)
	// sctx is the request's span context (zero when unsampled); waveT is
	// when the call's submission wave started, the serve.dispatch span's
	// start. Both are plain values on the pooled call — the unsampled wire
	// path stays allocation-free.
	sctx  obs.SpanContext
	waveT time.Time
	// delta marks a session-delta call (see delta.go): it rides the same
	// admission channel but is served inline by the worker, never batched.
	delta *serveDelta
}

// arm readies a call for admission. deadline <= 0 leaves the zero
// deadline (admit applies the pool default).
func (c *call) arm(src, dst int, deadline time.Duration) {
	c.src, c.dst = src, dst
	c.enq = time.Now()
	c.deadline = time.Time{}
	c.sctx = obs.SpanContext{}
	c.waveT = time.Time{}
	c.delta = nil
	if deadline > 0 {
		c.deadline = c.enq.Add(deadline)
	}
}

// poolMetrics holds the cst_serve_* handles; the zero value (nil registry)
// no-ops every operation.
type poolMetrics struct {
	requests    *obs.Counter
	scheduled   *obs.Counter
	rejected    *obs.Counter
	unavailable *obs.Counter
	badRequest  *obs.Counter
	deadline    *obs.Counter
	quarantined *obs.Counter
	flushes     *obs.Counter
	queueDepth  *obs.Gauge
	inflight    *obs.Gauge
	batchSize   *obs.Histogram
	latency     *obs.Histogram
	latencyQ    *obs.Summary
	proto       [protoCount]protoMetrics
}

// protoMetrics are the per-protocol views of the request series,
// registered as labeled twins (`cst_serve_requests_total{protocol="wire"}`)
// of the unlabeled aggregates, so dashboards can split the HTTP and wire
// paths without the aggregates moving.
type protoMetrics struct {
	requests  *obs.Counter
	scheduled *obs.Counter
	latency   *obs.Histogram
	latencyQ  *obs.Summary
}

func newProtoMetrics(r *obs.Registry, protocol string) protoMetrics {
	lbl := `{protocol="` + protocol + `"}`
	return protoMetrics{
		requests:  r.Counter("cst_serve_requests_total"+lbl, "scheduling requests received"),
		scheduled: r.Counter("cst_serve_scheduled_total"+lbl, "requests scheduled and completed"),
		latency:   r.Histogram("cst_serve_request_seconds"+lbl, "wall-clock request latency", obs.ExponentialBuckets(0.0001, 2, 16)),
		latencyQ:  r.Summary("cst_serve_latency"+lbl, "wall-clock request latency in seconds, exact quantiles over the last 4096 requests", 0),
	}
}

func newPoolMetrics(r *obs.Registry) poolMetrics {
	m := poolMetrics{
		requests:    r.Counter("cst_serve_requests_total", "scheduling requests received"),
		scheduled:   r.Counter("cst_serve_scheduled_total", "requests scheduled and completed"),
		rejected:    r.Counter("cst_serve_rejected_total", "admissions rejected with backpressure (429)"),
		unavailable: r.Counter("cst_serve_unavailable_total", "admissions refused while draining (503)"),
		badRequest:  r.Counter("cst_serve_bad_requests_total", "requests with invalid endpoints (400)"),
		deadline:    r.Counter("cst_serve_deadline_total", "requests expired before dispatch (504)"),
		quarantined: r.Counter("cst_serve_quarantined_total", "requests expelled by failed dispatches (500)"),
		flushes:     r.Counter("cst_serve_flushes_total", "batch flushes executed"),
		queueDepth:  r.Gauge("cst_serve_queue_depth", "requests sitting in admission queues"),
		inflight:    r.Gauge("cst_serve_inflight", "requests admitted and not yet answered"),
		batchSize:   r.Histogram("cst_serve_batch_size", "requests per flushed batch", obs.ExponentialBuckets(1, 2, 10)),
		latency:     r.Histogram("cst_serve_request_seconds", "wall-clock request latency", obs.ExponentialBuckets(0.0001, 2, 16)),
		latencyQ:    r.Summary("cst_serve_latency", "wall-clock request latency in seconds, exact quantiles over the last 4096 requests", 0),
	}
	for i, name := range protoNames {
		m.proto[i] = newProtoMetrics(r, name)
	}
	return m
}

// Pool is the scheduling service: admission across a set of shard workers,
// each owning one online.Simulator.
type Pool struct {
	cfg     Config
	workers []*worker
	met     poolMetrics
	tracer  *obs.Tracer

	next      atomic.Uint64 // round-robin admission cursor
	admitted  atomic.Int64
	responded atomic.Int64

	// admission guards the draining flag against the channel close in
	// Drain: Schedule sends only under RLock with draining unset, so no
	// send can race the close.
	admission sync.RWMutex
	draining  bool

	startOnce sync.Once
	drainOnce sync.Once
	wg        sync.WaitGroup
	done      chan struct{} // closed when every worker has exited
	drainErr  error
}

// worker owns one shard: the simulator, the admission channel and the
// waiter map keyed by (src, dst) — unique among in-queue requests because
// Submit rejects busy endpoints.
type worker struct {
	id   int
	pool *Pool
	sim  *online.Simulator
	ch   chan *call
	wait map[[2]int]*call

	// Steady-state scratch, confined to the worker goroutine: the batch
	// under collection, two alternating wave buffers for flush's deferral
	// loop, and the reused batch timer. Together with the simulator's own
	// scratch reuse these keep a worker's request cycle allocation-free.
	batchScratch []*call
	waveA, waveB []*call
	timer        *time.Timer
}

// New builds a pool; workers do not run until Start.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:    cfg,
		met:    newPoolMetrics(cfg.Registry),
		tracer: cfg.Tracer,
		done:   make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		var opts []online.Option
		if cfg.Faults != nil {
			// Each shard gets a private injector: the run counter is
			// advanced per engine run and cannot be shared across workers.
			opts = append(opts, online.WithFaults(fault.New(cfg.Faults)))
		}
		if cfg.EngineMetrics {
			opts = append(opts, online.WithRegistry(cfg.Registry), online.WithTracer(cfg.Tracer))
		}
		if cfg.Sharding {
			opts = append(opts, online.WithSharding())
		}
		sim, err := online.New(cfg.PEs, opts...)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		p.workers = append(p.workers, &worker{
			id:   i,
			pool: p,
			sim:  sim,
			ch:   make(chan *call, cfg.QueueDepth),
			wait: make(map[[2]int]*call),
		})
	}
	return p, nil
}

// PEs returns the fabric size each shard schedules over.
func (p *Pool) PEs() int { return p.cfg.PEs }

// Start launches the shard workers. It is idempotent.
func (p *Pool) Start() {
	p.startOnce.Do(func() {
		for _, w := range p.workers {
			p.wg.Add(1)
			go func(w *worker) {
				defer p.wg.Done()
				w.run()
			}(w)
		}
	})
}

// Schedule admits one request and blocks until its terminal Result: the
// request was scheduled on some shard, expired, quarantined, or refused at
// admission (queue full, draining, bad endpoints — these return without
// blocking). Safe for arbitrary concurrent callers.
func (p *Pool) Schedule(src, dst int, deadline time.Duration) Result {
	return p.ScheduleTraced(src, dst, deadline, obs.SpanContext{})
}

// ScheduleTraced is Schedule carrying a span context: when sctx is sampled
// the pool emits serve.queue and serve.dispatch child spans for the
// request's path through the admission queue and its shard's dispatch
// wave. A zero sctx behaves exactly like Schedule.
func (p *Pool) ScheduleTraced(src, dst int, deadline time.Duration, sctx obs.SpanContext) Result {
	c := &call{proto: protoHTTP, resp: make(chan Result, 1)}
	c.arm(src, dst, deadline)
	c.sctx = sctx
	if res, ok := p.admit(c); !ok {
		return res
	}
	return <-c.resp
}

// admit validates and enqueues one armed call. A false return means the
// request was refused inline and the Result is terminal (bad endpoints,
// draining, queue full) — such refusals never touch the admitted ledger.
// A true return means the call is in a shard's queue and its terminal
// Result will arrive through c.resp or c.done. The wire path calls this
// directly with pooled calls; allocation-free on admission.
func (p *Pool) admit(c *call) (Result, bool) {
	p.met.requests.Inc()
	p.met.proto[c.proto].requests.Inc()
	src, dst := c.src, c.dst
	if src < 0 || src >= p.cfg.PEs || dst < 0 || dst >= p.cfg.PEs || src == dst {
		p.met.badRequest.Inc()
		return Result{Src: src, Dst: dst, Shard: -1, Status: http.StatusBadRequest,
			Err: fmt.Sprintf("serve: bad endpoints (%d -> %d) on a %d-PE fabric", src, dst, p.cfg.PEs)}, false
	}
	if c.deadline.IsZero() && p.cfg.DefaultDeadline > 0 {
		c.deadline = c.enq.Add(p.cfg.DefaultDeadline)
	}

	p.admission.RLock()
	if p.draining {
		p.admission.RUnlock()
		p.met.unavailable.Inc()
		return Result{Src: src, Dst: dst, Shard: -1, Status: http.StatusServiceUnavailable, Err: ErrDraining.Error()}, false
	}
	// Round-robin with fallback: try every shard once, non-blocking. A
	// request only lands where there is room; if nowhere has room, that is
	// the backpressure signal.
	enqueued := false
	start := int(p.next.Add(1))
	for i := 0; i < len(p.workers) && !enqueued; i++ {
		w := p.workers[(start+i)%len(p.workers)]
		select {
		case w.ch <- c:
			enqueued = true
		default:
		}
	}
	if enqueued {
		p.admitted.Add(1)
		p.met.inflight.Add(1)
		p.met.queueDepth.Add(1)
	}
	p.admission.RUnlock()
	if !enqueued {
		p.met.rejected.Inc()
		return Result{Src: src, Dst: dst, Shard: -1, Status: http.StatusTooManyRequests, Err: ErrQueueFull.Error()}, false
	}
	return Result{}, true
}

// Drain gracefully shuts the pool down: admission stops (new requests get
// 503), every queued and in-flight request is flushed to a terminal
// answer, and the workers exit. It returns an error if ctx expires first
// or if accounting finds a lost request. Later calls wait for the first
// drain and return its result.
func (p *Pool) Drain(ctx context.Context) error {
	p.drainOnce.Do(func() {
		p.Start() // a never-started pool must still drain its queues
		p.admission.Lock()
		p.draining = true
		p.admission.Unlock()
		// No Schedule can be mid-send now: sends happen under RLock with
		// draining unset. Closing the channels releases the workers once
		// they finish draining the buffered requests.
		for _, w := range p.workers {
			close(w.ch)
		}
		go func() {
			p.wg.Wait()
			close(p.done)
		}()
	})
	select {
	case <-p.done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
	if a, r := p.admitted.Load(), p.responded.Load(); a != r {
		p.drainErr = fmt.Errorf("serve: drain lost requests: admitted %d, responded %d", a, r)
	}
	return p.drainErr
}

// Stats is a point-in-time snapshot of the pool for /statusz and tests.
type Stats struct {
	PEs        int   `json:"pes"`
	Shards     int   `json:"shards"`
	Draining   bool  `json:"draining"`
	Admitted   int64 `json:"admitted"`
	Responded  int64 `json:"responded"`
	QueueDepth []int `json:"queue_depth"`
	// Latency exemplars over the retained summary window: the p99 value
	// with the trace id of the nearest sampled request, and the trace id of
	// the lifetime-slowest request. Empty when no retained request was
	// sampled — the "which request was that p99" link for /statusz.
	LatencyP99 float64 `json:"latency_p99_seconds,omitempty"`
	P99TraceID string  `json:"latency_p99_trace_id,omitempty"`
	MaxTraceID string  `json:"latency_max_trace_id,omitempty"`
	LatencyMax float64 `json:"latency_max_seconds,omitempty"`
}

// Snapshot reports the pool's live admission state.
func (p *Pool) Snapshot() Stats {
	p.admission.RLock()
	draining := p.draining
	p.admission.RUnlock()
	st := Stats{
		PEs:       p.cfg.PEs,
		Shards:    len(p.workers),
		Draining:  draining,
		Admitted:  p.admitted.Load(),
		Responded: p.responded.Load(),
	}
	for _, w := range p.workers {
		st.QueueDepth = append(st.QueueDepth, len(w.ch))
	}
	snap := p.met.latencyQ.Snapshot()
	st.LatencyP99 = snap.Quantile(0.99)
	st.LatencyMax = snap.Max
	if id, _ := snap.Exemplar(0.99); id != 0 {
		st.P99TraceID = id.String()
	}
	if snap.MaxTrace != 0 {
		st.MaxTraceID = snap.MaxTrace.String()
	}
	return st
}

// run is the worker loop: collect a batch, flush it, repeat until the
// admission channel is closed and drained.
func (w *worker) run() {
	for {
		c, ok := <-w.ch
		if !ok {
			return
		}
		if c.delta != nil {
			w.serveDelta(c)
			continue
		}
		batch := w.collect(c)
		if len(batch) > 0 {
			w.flush(batch)
		}
	}
}

// collect gathers a batch starting from first: up to BatchMax requests,
// waiting at most BatchWait after the first arrival for stragglers. The
// wait is deadline-aware: the timer is armed to the earlier of the batch
// window and the soonest per-request deadline in the batch, and expired
// requests are settled 504 on the spot instead of riding out the window —
// so an expired request in a quiet queue never waits for the next
// size/deadline trigger. The batch is built in the worker's reused
// scratch array (valid until the next collect) and the batch timer is
// pooled across batches. May return an empty batch when every collected
// request expired; run skips the flush entirely in that case.
func (w *worker) collect(first *call) []*call {
	batch := append(w.batchScratch[:0], first)
	defer func() { w.batchScratch = batch }()
	if w.pool.cfg.BatchWait <= 0 {
		for len(batch) < w.pool.cfg.BatchMax {
			select {
			case c, ok := <-w.ch:
				if !ok {
					return batch
				}
				if c.delta != nil {
					w.serveDelta(c)
					continue
				}
				batch = append(batch, c)
			default:
				return batch
			}
		}
		return batch
	}
	flushAt := time.Now().Add(w.pool.cfg.BatchWait)
	for {
		batch = w.expire(batch)
		if len(batch) >= w.pool.cfg.BatchMax || (len(batch) == 0 && len(w.ch) == 0) {
			return batch
		}
		// Wake at the sooner of the batch window's end and the earliest
		// live deadline in the batch.
		wake := flushAt
		for _, c := range batch {
			if !c.deadline.IsZero() && c.deadline.Before(wake) {
				wake = c.deadline
			}
		}
		wait := time.Until(wake)
		if wait <= 0 && wake.Equal(flushAt) {
			return batch
		}
		if w.timer == nil {
			w.timer = time.NewTimer(wait)
		} else {
			// Reused timer re-arm: Stop, drain a stale fire if one slipped
			// in, then Reset. Worst case a stale tick flushes one batch
			// early — a latency blip, never a correctness issue.
			if !w.timer.Stop() {
				select {
				case <-w.timer.C:
				default:
				}
			}
			w.timer.Reset(wait)
		}
		select {
		case c, ok := <-w.ch:
			if !ok {
				return batch
			}
			if c.delta != nil {
				// Deltas are served inline, never batched: the session's
				// warm engine is only coherent when its deltas apply in
				// admission order on this worker.
				w.serveDelta(c)
				continue
			}
			batch = append(batch, c)
		case <-w.timer.C:
			if !time.Now().Before(flushAt) {
				return batch
			}
			// A request deadline fired before the window closed: loop so
			// the sweep settles it and the timer re-arms for the rest.
		}
	}
}

// expire settles batch members whose deadline has already passed and
// compacts the batch in place. Settling here — not only at flush — is
// what bounds a queued request's 504 latency by its own deadline rather
// than by the batch window.
func (w *worker) expire(batch []*call) []*call {
	now := time.Now()
	kept := batch[:0]
	for _, c := range batch {
		if !c.deadline.IsZero() && !now.Before(c.deadline) {
			w.pool.met.deadline.Inc()
			w.pool.met.queueDepth.Add(-1)
			w.settle(c, Result{Status: http.StatusGatewayTimeout,
				Err: fmt.Sprintf("serve: %v before dispatch", fault.ErrDeadline)})
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

// flush answers every request in the batch. It submits requests in waves
// (requests that conflict on endpoints within the batch are deferred to
// the next wave), dispatches the fabric to idle between waves, and maps
// completion and quarantine records back to their waiters. The fabric is
// idle with no reservations on entry and on exit, so waves always make
// progress: after a dispatch-to-idle the first deferred request cannot be
// refused for a busy endpoint.
func (w *worker) flush(batch []*call) {
	met := &w.pool.met
	met.flushes.Inc()
	met.batchSize.Observe(float64(len(batch)))
	met.queueDepth.Add(-int64(len(batch)))
	// Trace work is gated on the batch containing at least one sampled
	// call: an unsampled batch pays two pointer tests and nothing else, so
	// the wire pair path stays allocation-free with a tracer attached.
	sampled := 0
	var firstCtx obs.SpanContext
	if w.pool.tracer != nil {
		for _, c := range batch {
			if c.sctx.Valid() {
				if sampled == 0 {
					firstCtx = c.sctx
				}
				sampled++
			}
		}
	}
	if sampled > 0 {
		tr := w.pool.tracer
		tr.Emit(obs.Event{Type: "serve.flush", Engine: "serve", Round: w.sim.Now(), N: len(batch)})
		flushT := time.Now()
		for _, c := range batch {
			if c.sctx.Valid() {
				tr.EmitSpan(obs.SpanRecord{
					Trace: c.sctx.Trace, Span: tr.NewSpanID(), Parent: c.sctx.Span,
					Name: "serve.queue", Engine: "serve",
					Start: c.enq, End: flushT,
				})
			}
		}
		// Arm the shard simulator with the first sampled context so its
		// batch.* events and online.batch span join this trace. The sim is
		// goroutine-confined to this worker, so no locking is needed.
		w.sim.SetSpanContext(firstCtx)
		defer w.sim.SetSpanContext(obs.SpanContext{})
	}
	pending := batch
	// Waves alternate between two reused buffers: wave k builds its
	// deferral list in one while iterating the other (wave k−1's list, or
	// the batch itself on the first pass), so the loop never allocates.
	cur, alt := w.waveA, w.waveB
	for len(pending) > 0 {
		deferred := cur[:0]
		submitted := 0
		now := time.Now()
		for _, c := range pending {
			if !c.deadline.IsZero() && now.After(c.deadline) {
				// The per-request deadline reuses the fault taxonomy: the
				// watchdog's ErrDeadline is what a stalled fabric would
				// have reported.
				met.deadline.Inc()
				w.settle(c, Result{Status: http.StatusGatewayTimeout,
					Err: fmt.Sprintf("serve: %v before dispatch", fault.ErrDeadline)})
				continue
			}
			// Endpoints validated at admission, queue idle between waves:
			// the only possible refusal is an endpoint conflict within this
			// batch. The Busy pre-check catches it without paying Submit's
			// allocated error; the Submit error branch stays as a
			// defensive backstop.
			if w.sim.Busy(c.src, c.dst) {
				deferred = append(deferred, c)
				continue
			}
			if err := w.sim.Submit(comm.Comm{Src: c.src, Dst: c.dst}); err != nil {
				deferred = append(deferred, c)
				continue
			}
			if c.sctx.Valid() {
				c.waveT = now
			}
			w.wait[[2]int{c.src, c.dst}] = c
			submitted++
		}
		cur, alt = alt, deferred
		if submitted > 0 {
			w.quiesce()
			w.settleRecords()
		} else if len(deferred) > 0 {
			// Defensive wedge guard: the fabric is idle yet nothing could
			// be submitted — endpoint reservations leaked (cannot happen
			// per the online drain invariants). Fail the stragglers
			// rather than spin.
			for _, c := range deferred {
				w.settle(c, Result{Status: http.StatusInternalServerError, Err: errUnschedulable.Error()})
			}
			return
		}
		pending = deferred
	}
	// Keep the (possibly regrown) wave buffers and retire the simulator's
	// consumed completion/quarantine records so a long-lived shard's
	// memory stays bounded.
	w.waveA, w.waveB = cur, alt
	w.sim.Recycle()
}

// quiesce dispatches until the shard's queue is empty, tolerating
// quarantine errors (the expelled requests surface via TakeQuarantined).
// The progress guard breaks the loop if a dispatch error ever leaves the
// queue unshrunk, so a defect below cannot wedge the worker.
func (w *worker) quiesce() {
	for w.sim.QueueLen() > 0 {
		before := w.sim.QueueLen()
		if _, err := w.sim.Dispatch(); err != nil && w.sim.QueueLen() >= before {
			return
		}
	}
}

// settleRecords maps the simulator's new completion and quarantine records
// back to their waiting calls.
func (w *worker) settleRecords() {
	met := &w.pool.met
	for _, rec := range w.sim.TakeCompleted() {
		key := [2]int{rec.Comm.Src, rec.Comm.Dst}
		c, ok := w.wait[key]
		if !ok {
			continue // defensive: record without a waiter
		}
		delete(w.wait, key)
		met.scheduled.Inc()
		met.proto[c.proto].scheduled.Inc()
		w.settle(c, Result{
			Status:        http.StatusOK,
			Arrival:       rec.Arrival,
			Dispatched:    rec.Dispatched,
			Finished:      rec.Finished,
			LatencyRounds: rec.Finished - rec.Arrival,
		})
	}
	for _, rec := range w.sim.TakeQuarantined() {
		key := [2]int{rec.Comm.Src, rec.Comm.Dst}
		c, ok := w.wait[key]
		if !ok {
			continue
		}
		delete(w.wait, key)
		met.quarantined.Inc()
		w.settle(c, Result{Status: http.StatusInternalServerError,
			Err: "serve: batch quarantined after exhausting dispatch attempts"})
	}
}

// settle delivers the terminal result for one admitted call. Every
// admitted call is settled exactly once. HTTP calls get a send on their
// buffered response channel (a departed client cannot block the worker);
// wire calls get their done callback, which hands the pooled call to its
// connection's writer goroutine.
func (w *worker) settle(c *call, res Result) {
	res.Src, res.Dst, res.Shard = c.src, c.dst, w.id
	w.pool.responded.Add(1)
	w.pool.met.inflight.Add(-1)
	lat := time.Since(c.enq)
	var trace obs.TraceID
	if c.sctx.Valid() {
		trace = c.sctx.Trace
	}
	w.pool.met.latency.ObserveDuration(lat)
	w.pool.met.latencyQ.ObserveTraced(lat.Seconds(), trace)
	pm := &w.pool.met.proto[c.proto]
	pm.latency.ObserveDuration(lat)
	pm.latencyQ.ObserveTraced(lat.Seconds(), trace)
	if w.pool.tracer != nil && c.sctx.Valid() {
		tr := w.pool.tracer
		start := c.waveT
		if start.IsZero() {
			start = c.enq // settled before ever reaching a wave (deadline miss)
		}
		tr.EmitSpan(obs.SpanRecord{
			Trace: c.sctx.Trace, Span: tr.NewSpanID(), Parent: c.sctx.Span,
			Name: "serve.dispatch", Engine: "serve",
			Start: start, End: time.Now(),
			Status: res.Status, N: res.LatencyRounds, Err: res.Err,
		})
		tr.Emit(obs.Event{Type: "serve.done", Engine: "serve",
			Round: w.sim.Now(), N: res.Status})
	}
	if c.done != nil {
		c.done(res)
		return
	}
	c.resp <- res
}

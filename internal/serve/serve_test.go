package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/online"
)

func drainOK(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestScheduleBasic(t *testing.T) {
	p, err := New(Config{PEs: 16, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	var wg sync.WaitGroup
	results := make([]Result, 4)
	pairs := [][2]int{{0, 7}, {1, 6}, {8, 11}, {15, 12}}
	for i, pr := range pairs {
		wg.Add(1)
		go func(i int, src, dst int) {
			defer wg.Done()
			results[i] = p.Schedule(src, dst, 0)
		}(i, pr[0], pr[1])
	}
	wg.Wait()
	for i, res := range results {
		if res.Status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, res.Status, res.Err)
		}
		if res.Finished < res.Arrival || res.LatencyRounds != res.Finished-res.Arrival {
			t.Fatalf("request %d: inconsistent rounds %+v", i, res)
		}
		if res.Src != pairs[i][0] || res.Dst != pairs[i][1] {
			t.Fatalf("request %d: echoed endpoints %d->%d, want %d->%d",
				i, res.Src, res.Dst, pairs[i][0], pairs[i][1])
		}
	}
	drainOK(t, p)
	if res := p.Schedule(0, 1, 0); res.Status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain Schedule: status %d, want 503", res.Status)
	}
}

func TestBadEndpoints(t *testing.T) {
	p, err := New(Config{PEs: 8, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range [][2]int{{-1, 3}, {0, 8}, {5, 5}} {
		if res := p.Schedule(pr[0], pr[1], 0); res.Status != http.StatusBadRequest {
			t.Errorf("%d->%d: status %d, want 400", pr[0], pr[1], res.Status)
		}
	}
	if st := p.Snapshot(); st.Admitted != 0 {
		t.Errorf("bad requests were admitted: %+v", st)
	}
	drainOK(t, p)
}

// TestBackpressure pins the 429 contract deterministically: with one shard,
// queue depth one and the workers not yet started, the second admission
// must be refused, and the queued request must still complete once the
// workers come up (Drain starts them).
func TestBackpressure(t *testing.T) {
	p, err := New(Config{PEs: 16, Shards: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan Result, 1)
	go func() { first <- p.Schedule(0, 3, 0) }()
	for p.Snapshot().Admitted == 0 {
		time.Sleep(time.Millisecond)
	}
	if res := p.Schedule(4, 7, 0); res.Status != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d (%s), want 429", res.Status, res.Err)
	}
	drainOK(t, p) // starts the worker, flushes the queued request
	if res := <-first; res.Status != http.StatusOK {
		t.Fatalf("queued request after drain: status %d (%s)", res.Status, res.Err)
	}
}

// TestDeadline pins the 504 path: a request whose deadline expires while
// its batch is still collecting is answered with the fault package's
// deadline taxonomy instead of being scheduled.
func TestDeadline(t *testing.T) {
	p, err := New(Config{PEs: 16, Shards: 1, BatchMax: 100, BatchWait: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	res := p.Schedule(0, 3, time.Millisecond)
	if res.Status != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d (%s), want 504", res.Status, res.Err)
	}
	if !strings.Contains(res.Err, fault.ErrDeadline.Error()) {
		t.Fatalf("deadline error %q does not carry the fault taxonomy %q", res.Err, fault.ErrDeadline)
	}
	drainOK(t, p)
}

// TestDeadlinePromptExpiry pins the timer-driven expiry sweep: an expired
// request in a quiet queue settles as soon as its own deadline passes —
// not when the batch window closes — and generates no flush traffic at
// all, since the batch it sat in emptied before anything was dispatched.
func TestDeadlinePromptExpiry(t *testing.T) {
	const window = 30 * time.Second
	p, err := New(Config{PEs: 16, Shards: 1, BatchMax: 100, BatchWait: window,
		Registry: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	start := time.Now()
	res := p.Schedule(0, 3, 20*time.Millisecond)
	elapsed := time.Since(start)
	if res.Status != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d (%s), want 504", res.Status, res.Err)
	}
	if !strings.Contains(res.Err, fault.ErrDeadline.Error()) {
		t.Fatalf("deadline error %q does not carry the fault taxonomy %q", res.Err, fault.ErrDeadline)
	}
	if elapsed >= window {
		t.Fatalf("504 took %v: the request rode out the %v batch window", elapsed, window)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v, want prompt settlement near the 20ms deadline", elapsed)
	}
	if n := p.met.flushes.Value(); n != 0 {
		t.Fatalf("expiry sweep generated %d flushes, want 0", n)
	}
	if n := p.met.deadline.Value(); n != 1 {
		t.Fatalf("deadline counter = %d, want 1", n)
	}
	drainOK(t, p)
}

// TestQuarantine pins the 500 path: a fault plan that defeats every
// dispatch attempt quarantines the batch, the waiter gets an error answer,
// and the shard keeps serving afterwards.
func TestQuarantine(t *testing.T) {
	var plan []fault.Fault
	for run := 0; run < online.MaxDispatchAttempts; run++ {
		plan = append(plan, fault.Fault{Kind: fault.FreezeSwitch, Node: 1, Run: run, Round: 0, Duration: 64})
	}
	p, err := New(Config{PEs: 16, Shards: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if res := p.Schedule(0, 7, 0); res.Status != http.StatusInternalServerError {
		t.Fatalf("poisoned batch: status %d (%s), want 500", res.Status, res.Err)
	}
	if res := p.Schedule(1, 6, 0); res.Status != http.StatusOK {
		t.Fatalf("request after quarantine: status %d (%s), want 200", res.Status, res.Err)
	}
	drainOK(t, p)
}

// TestDrainZeroLoss is the headline drain property: under concurrent load,
// every admitted request receives exactly one terminal answer and the
// admitted/responded ledger balances — Drain fails otherwise.
func TestDrainZeroLoss(t *testing.T) {
	reg := obs.New()
	p, err := New(Config{PEs: 32, Shards: 2, QueueDepth: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	const clients, perClient = 8, 25
	counts := make([]map[int]int, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			counts[g] = make(map[int]int)
			for i := 0; i < perClient; i++ {
				src := (g*4 + i) % 32
				dst := (src + 1 + g%3) % 32
				if src == dst {
					dst = (dst + 1) % 32
				}
				res := p.Schedule(src, dst, 0)
				counts[g][res.Status]++
			}
		}(g)
	}
	wg.Wait()
	drainOK(t, p)
	total := 0
	for g, m := range counts {
		for status, n := range m {
			total += n
			switch status {
			case http.StatusOK, http.StatusTooManyRequests:
			default:
				t.Errorf("client %d: %d requests ended with unexpected status %d", g, n, status)
			}
		}
	}
	if total != clients*perClient {
		t.Fatalf("answered %d requests, want %d", total, clients*perClient)
	}
	st := p.Snapshot()
	if st.Admitted != st.Responded {
		t.Fatalf("ledger imbalance after drain: %+v", st)
	}
	for shard, depth := range st.QueueDepth {
		if depth != 0 {
			t.Fatalf("shard %d queue not drained: depth %d", shard, depth)
		}
	}
}

// TestDrainFlushesQueuedBacklog drains a pool whose workers never ran: the
// backlog sitting in the admission queues must still be answered.
func TestDrainFlushesQueuedBacklog(t *testing.T) {
	p, err := New(Config{PEs: 16, Shards: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan Result, 4)
	for i := 0; i < 4; i++ {
		go func(i int) { results <- p.Schedule(i*2, i*2+1, 0) }(i)
	}
	for p.Snapshot().Admitted < 4 {
		time.Sleep(time.Millisecond)
	}
	drainOK(t, p)
	for i := 0; i < 4; i++ {
		if res := <-results; res.Status != http.StatusOK {
			t.Fatalf("backlog request: status %d (%s)", res.Status, res.Err)
		}
	}
}

func TestMetricsExposed(t *testing.T) {
	reg := obs.New()
	p, err := New(Config{PEs: 16, Shards: 1, Registry: reg, EngineMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if res := p.Schedule(0, 7, 0); res.Status != http.StatusOK {
		t.Fatalf("schedule: %+v", res)
	}
	p.Schedule(5, 5, 0) // 400, feeds the bad-request counter
	drainOK(t, p)
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, series := range []string{
		"cst_serve_requests_total 2",
		"cst_serve_scheduled_total 1",
		"cst_serve_bad_requests_total 1",
		"cst_serve_rejected_total 0",
		"cst_serve_queue_depth 0",
		"cst_serve_inflight 0",
		"cst_serve_batch_size_count 1",
		"cst_serve_request_seconds_count 1",
		"cst_online_completed_total 1", // EngineMetrics threads through
	} {
		if !strings.Contains(out, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := obs.New()
	tr := obs.NewTracer(nil, 1024)
	p, err := New(Config{PEs: 16, Shards: 1, Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	pl := NewPlanner(PlannerConfig{Registry: reg, Tracer: tr})
	srv := httptest.NewServer(Handler(p, pl, reg, tr))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/schedule", "application/json",
		strings.NewReader(`{"src":0,"dst":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /schedule = %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/schedule", "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /schedule = %d, want 405", resp.StatusCode)
	}

	// A non-well-nested set (crossing pair plus a left-oriented comm)
	// plans end to end through the hybrid pipeline.
	resp, err = http.Post(srv.URL+"/schedule-set", "application/json",
		strings.NewReader(`{"n":16,"comms":[{"src":0,"dst":8},{"src":12,"dst":4},{"src":2,"dst":9}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var setRes SetResult
	if err := json.NewDecoder(resp.Body).Decode(&setRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || setRes.Status != http.StatusOK {
		t.Fatalf("POST /schedule-set = %d/%d: %s", resp.StatusCode, setRes.Status, setRes.Err)
	}
	scheduled := 0
	for _, round := range setRes.Schedule {
		scheduled += len(round)
	}
	if setRes.Rounds < 1 || len(setRes.Schedule) != setRes.Rounds || scheduled != 3 {
		t.Fatalf("set plan shape: %+v", setRes)
	}
	if setRes.Units <= 0 {
		t.Fatalf("set plan billed %d units", setRes.Units)
	}

	resp, err = http.Post(srv.URL+"/schedule-set", "application/json",
		strings.NewReader(`{"n":16,"comms":[{"src":3,"dst":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid set = %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/statusz", "/metrics", "/healthz", "/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	drainOK(t, p)
}

package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cst/internal/obs"
	"cst/internal/wire"
)

// flightByRoot indexes a flight snapshot's pinned traces by root span name.
func flightByRoot(snap obs.FlightSnapshot) map[string]obs.FlightTrace {
	m := make(map[string]obs.FlightTrace)
	for _, ft := range snap.Slowest {
		m[ft.Root] = ft
	}
	return m
}

// spanNames collects the set of span names inside one pinned trace.
func spanNames(ft obs.FlightTrace) map[string]bool {
	m := make(map[string]bool, len(ft.Spans))
	for _, sp := range ft.Spans {
		m[sp.Name] = true
	}
	return m
}

// TestSpanTreeEndToEnd drives one request of each shape over each protocol
// with sampling at 1.0 and asserts every one lands in the flight recorder
// as a single connected span tree: a transport root, the engine spans
// beneath it, and zero orphans. Run with -race this doubles as the
// concurrency check on the span path (reader goroutine opens the root, the
// writer goroutine closes it, the shard worker emits the engine spans).
func TestSpanTreeEndToEnd(t *testing.T) {
	tr := obs.NewTracer(nil, 4096)
	tr.SetSampleRate(1)
	fr := obs.NewFlightRecorder(16)
	tr.SetFlight(fr)
	reg := obs.New()
	pl := NewPlanner(PlannerConfig{Registry: reg, Tracer: tr})
	// EngineMetrics threads the tracer into the shard engines; without it
	// the tree still connects but stops at serve.dispatch (no online.batch
	// or padr.run engine spans).
	addr, p, _, teardown := startWire(t,
		Config{PEs: 16, Shards: 2, Registry: reg, Tracer: tr, EngineMetrics: true},
		WireConfig{Planner: pl, Registry: reg, Tracer: tr})
	srv := httptest.NewServer(Handler(p, pl, reg, tr))
	defer srv.Close()

	// HTTP pair request carrying an upstream context: the response must
	// stay on the caller's trace, not mint a fresh one.
	const upstream = "00000000000000ab-00000000000000cd-01"
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/schedule",
		strings.NewReader(`{"src":0,"dst":7}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, upstream)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var pairRes Result
	if err := json.NewDecoder(resp.Body).Decode(&pairRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /schedule = %d", resp.StatusCode)
	}
	if pairRes.TraceID != "00000000000000ab" {
		t.Errorf("pair trace_id = %q, want the upstream trace 00000000000000ab", pairRes.TraceID)
	}
	if h := resp.Header.Get(obs.TraceHeader); !strings.HasPrefix(h, "00000000000000ab-") {
		t.Errorf("response %s = %q, want upstream trace", obs.TraceHeader, h)
	}

	// HTTP set request (no upstream context: the server roots the trace).
	resp, err = http.Post(srv.URL+"/schedule-set", "application/json",
		strings.NewReader(`{"n":16,"comms":[{"src":0,"dst":8},{"src":12,"dst":4},{"src":2,"dst":9}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var setRes SetResult
	if err := json.NewDecoder(resp.Body).Decode(&setRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /schedule-set = %d", resp.StatusCode)
	}
	if setRes.TraceID == "" {
		t.Error("set result carries no trace_id at sampling 1.0")
	}

	// Wire protocol v3: one pair and one set on a single connection.
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v < wire.VersionTrace {
		t.Fatalf("negotiated v%d, want >= v%d for trace propagation", v, wire.VersionTrace)
	}
	if err := c.Send(&wire.Request{ID: 1, Src: 2, Dst: 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var wresp wire.Response
	if err := c.Recv(&wresp); err != nil {
		t.Fatal(err)
	}
	if wresp.Status != http.StatusOK {
		t.Fatalf("wire pair response = %+v", wresp)
	}
	if wresp.Trace == 0 {
		t.Error("wire pair response carries no trace id at sampling 1.0")
	}
	if err := c.SendSet(&wire.SetRequest{ID: 2, N: 16, Pairs: [][2]int{{0, 8}, {12, 4}, {2, 9}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var wset wire.SetResponse
	if err := c.RecvSet(&wset); err != nil {
		t.Fatal(err)
	}
	if wset.Status != http.StatusOK {
		t.Fatalf("wire set response = %+v", wset)
	}
	if wset.Trace == 0 {
		t.Error("wire set response carries no trace id at sampling 1.0")
	}

	// Root spans close just after the response is written, so the client
	// can observe the answer before the tree finalizes: poll.
	var snap obs.FlightSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap = fr.Snapshot()
		if snap.Finished >= 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	teardown()

	snap = fr.Snapshot()
	if snap.Finished != 4 {
		t.Fatalf("finished traces = %d, want 4 (one per request)", snap.Finished)
	}
	if snap.OrphanSpans != 0 {
		t.Errorf("orphan spans = %d, want 0 (broken parent propagation)", snap.OrphanSpans)
	}
	if snap.OpenTraces != 0 || snap.AbandonedTraces != 0 {
		t.Errorf("open=%d abandoned=%d traces after drain, want 0/0",
			snap.OpenTraces, snap.AbandonedTraces)
	}

	// Every request was pinned (k=16 >> 4); check each tree's shape.
	byRoot := flightByRoot(snap)
	want := map[string][]string{
		"http.schedule": {"serve.queue", "serve.dispatch", "online.batch", "padr.run", "response.write"},
		"http.plan":     {"serve.plan", "hybrid.decompose", "hybrid.peel", "hybrid.replay", "response.write"},
		"wire.schedule": {"serve.queue", "serve.dispatch", "online.batch", "padr.run", "response.write"},
		"wire.plan":     {"serve.plan", "hybrid.decompose", "hybrid.peel", "hybrid.replay", "response.write"},
	}
	for root, children := range want {
		ft, ok := byRoot[root]
		if !ok {
			t.Errorf("no pinned trace rooted at %q", root)
			continue
		}
		if ft.Orphans != 0 {
			t.Errorf("%s: %d orphan spans in tree %s", root, ft.Orphans, ft.Trace)
		}
		names := spanNames(ft)
		for _, child := range children {
			if !names[child] {
				t.Errorf("%s (trace %s): missing %q span; got %v", root, ft.Trace, child, keys(names))
			}
		}
	}
	if ft, ok := byRoot["http.schedule"]; ok && ft.Trace != "00000000000000ab" {
		t.Errorf("http.schedule pinned under trace %s, want the propagated upstream id", ft.Trace)
	}
	if ft, ok := byRoot["wire.schedule"]; ok && ft.Trace != obs.TraceID(wresp.Trace).String() {
		t.Errorf("wire.schedule pinned under trace %s, response said %s",
			ft.Trace, obs.TraceID(wresp.Trace).String())
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

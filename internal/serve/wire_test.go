package serve

import (
	"context"
	"encoding/binary"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"cst/internal/obs"
	"cst/internal/wire"
)

// startWire spins up a pool and a wire server on a loopback listener,
// returning the dial address and a teardown that drains in the documented
// order: pool first (settles every in-flight call), wire second.
func startWire(t *testing.T, cfg Config, wcfg WireConfig) (string, *Pool, *WireServer, func()) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	ws := NewWireServer(p, wcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ws.Serve(ln) }()
	teardown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := p.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return ln.Addr().String(), p, ws, teardown
}

func TestWireRoundtrip(t *testing.T) {
	addr, _, _, teardown := startWire(t, Config{PEs: 16, Shards: 1}, WireConfig{})
	defer teardown()

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v != wire.Version {
		t.Fatalf("negotiated v%d, want v%d", v, wire.Version)
	}
	if err := c.Send(&wire.Request{ID: 7, Src: 2, Dst: 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := c.Recv(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || resp.Status != http.StatusOK {
		t.Fatalf("response = %+v, want id 7 status 200", resp)
	}
	if resp.Finished < resp.Arrival || resp.LatencyRounds != resp.Finished-resp.Arrival {
		t.Fatalf("inconsistent rounds: %+v", resp)
	}

	// Bad endpoints are refused inline with the same taxonomy as HTTP.
	if err := c.Send(&wire.Request{ID: 8, Src: 3, Dst: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Recv(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 8 || resp.Status != http.StatusBadRequest || resp.Err == "" {
		t.Fatalf("bad-endpoint response = %+v, want id 8 status 400 with error", resp)
	}
}

// Pipelined requests on one connection must all be answered, correlated
// by id, regardless of completion order.
func TestWirePipelining(t *testing.T) {
	addr, p, _, teardown := startWire(t,
		Config{PEs: 64, Shards: 2, BatchWait: time.Millisecond}, WireConfig{MaxPipeline: 32})
	defer teardown()

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 100
	want := make(map[uint64][2]int, n)
	next := 0
	for i := 0; i < n; i++ {
		src, dst := next, next+1
		next = (next + 2) % 64
		id := uint64(1000 + i)
		want[id] = [2]int{src, dst}
		if err := c.Send(&wire.Request{ID: id, Src: src, Dst: dst}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	for i := 0; i < n; i++ {
		if err := c.Recv(&resp); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if _, ok := want[resp.ID]; !ok {
			t.Fatalf("recv %d: unknown or duplicate id %d", i, resp.ID)
		}
		delete(want, resp.ID)
		if resp.Status != http.StatusOK {
			t.Fatalf("id %d: status %d (%s)", resp.ID, resp.Status, resp.Err)
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d responses never arrived", len(want))
	}
	if st := p.Snapshot(); st.Admitted != st.Responded {
		t.Fatalf("ledger: admitted %d responded %d", st.Admitted, st.Responded)
	}
}

// A server must answer the negotiated minimum version: a client offering a
// future v9 gets back the server's v1 and runs with it.
func TestWireVersionNegotiationAgainstServer(t *testing.T) {
	addr, _, _, teardown := startWire(t, Config{PEs: 8, Shards: 1}, WireConfig{})
	defer teardown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendHello(nil, 9)); err != nil {
		t.Fatal(err)
	}
	var accept [wire.HandshakeBytes]byte
	if _, err := io.ReadFull(conn, accept[:]); err != nil {
		t.Fatal(err)
	}
	v, err := wire.ParseHello(accept[:])
	if err != nil {
		t.Fatal(err)
	}
	if v != wire.Version {
		t.Fatalf("server answered v%d to a v9 offer, want v%d", v, wire.Version)
	}
	// The session is usable at the negotiated version.
	frame := wire.AppendRequestV(nil, &wire.Request{ID: 1, Src: 0, Dst: 5}, v)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	rd := wire.NewReader(conn)
	typ, body, err := rd.Next()
	if err != nil || typ != wire.TypeResponse {
		t.Fatalf("next = type %#x err %v", typ, err)
	}
	var resp wire.Response
	if err := wire.ParseResponseV(body, &resp, v); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 || resp.Status != http.StatusOK {
		t.Fatalf("response = %+v", resp)
	}
}

// Garbage after the handshake must close the connection and tick the
// protocol-error counter; a bad hello must never reach the accept reply.
func TestWireProtocolErrors(t *testing.T) {
	reg := obs.New()
	addr, _, _, teardown := startWire(t, Config{PEs: 8, Shards: 1}, WireConfig{Registry: reg})
	defer teardown()

	// Bad magic: connection dies before any accept message.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("JUNK\x01"))
	if b, _ := io.ReadAll(conn); len(b) != 0 {
		t.Fatalf("server answered %x to a bad hello", b)
	}
	conn.Close()

	// Oversized frame claim after a good handshake: connection dies after
	// the accept message without a response frame.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(wire.AppendHello(nil, wire.Version))
	var accept [wire.HandshakeBytes]byte
	if _, err := io.ReadFull(conn, accept[:]); err != nil {
		t.Fatal(err)
	}
	conn.Write(binary.AppendUvarint(nil, wire.MaxFrameBytes+1))
	if b, _ := io.ReadAll(conn); len(b) != 0 {
		t.Fatalf("server answered %x to an oversized frame", b)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if reg.Snapshot().Counters["cst_serve_wire_protocol_errors_total"] >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("protocol errors = %d, want 2",
				reg.Snapshot().Counters["cst_serve_wire_protocol_errors_total"])
		}
		time.Sleep(time.Millisecond)
	}
}

// Drain with pipelined requests in flight: every admitted request is
// answered on the wire before the connection dies, and the ledger closes
// at zero loss.
func TestWireDrainZeroLoss(t *testing.T) {
	addr, p, ws, _ := startWire(t,
		Config{PEs: 64, Shards: 2, BatchWait: 5 * time.Millisecond}, WireConfig{MaxPipeline: 16})

	const clients = 4
	var wg sync.WaitGroup
	got := make([]int, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := wire.Dial(addr, 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			sent := 0
			for i := 0; i < 40; i++ {
				src := (ci*16 + i*2) % 63
				if err := c.Send(&wire.Request{ID: uint64(i), Src: src, Dst: src + 1}); err != nil {
					break
				}
				sent++
			}
			if err := c.Flush(); err != nil {
				return
			}
			var resp wire.Response
			for i := 0; i < sent; i++ {
				if err := c.Recv(&resp); err != nil {
					return // drain may 503 the tail, but counted answers only
				}
				got[ci]++
			}
		}(ci)
	}

	// Let the burst land, then drain mid-stream.
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := ws.Shutdown(ctx); err != nil {
		t.Fatalf("wire shutdown: %v", err)
	}
	wg.Wait()

	// Drain's internal ledger already failed the test on loss; the wire
	// layer must additionally have delivered every answer for a client
	// that sent its whole burst before the drain (weaker check here: all
	// clients got as many answers as requests the server admitted for
	// them — verified in aggregate).
	st := p.Snapshot()
	if st.Admitted != st.Responded {
		t.Fatalf("ledger: admitted %d responded %d", st.Admitted, st.Responded)
	}
	total := 0
	for _, n := range got {
		total += n
	}
	if total == 0 {
		t.Fatal("no client received any answer")
	}
}

// The per-protocol metric series must attribute wire traffic to
// protocol="wire" while the unlabeled aggregates keep counting everything.
func TestWirePerProtocolMetrics(t *testing.T) {
	reg := obs.New()
	addr, p, _, teardown := startWire(t,
		Config{PEs: 16, Shards: 1, Registry: reg}, WireConfig{Registry: reg})

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Send(&wire.Request{ID: uint64(i), Src: i * 2, Dst: i*2 + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	for i := 0; i < 3; i++ {
		if err := c.Recv(&resp); err != nil {
			t.Fatal(err)
		}
	}
	if res := p.Schedule(10, 11, 0); res.Status != http.StatusOK {
		t.Fatalf("http schedule: %+v", res)
	}
	c.Close()
	teardown()

	snap := reg.Snapshot()
	checks := map[string]int64{
		"cst_serve_requests_total":                   4,
		`cst_serve_requests_total{protocol="wire"}`:  3,
		`cst_serve_requests_total{protocol="http"}`:  1,
		"cst_serve_scheduled_total":                  4,
		`cst_serve_scheduled_total{protocol="wire"}`: 3,
		`cst_serve_scheduled_total{protocol="http"}`: 1,
		"cst_serve_wire_conns_total":                 1,
		"cst_serve_wire_protocol_errors_total":       0,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["cst_serve_wire_conns"]; got != 0 {
		t.Errorf("open conns after teardown = %d", got)
	}
}

// The steady-state wire request cycle must not allocate: after warmup,
// whole-process Mallocs across a run of requests stays under a small
// epsilon per request. testing.AllocsPerRun only meters the calling
// goroutine, so this pins the server side (reader, worker, writer) the
// only way that counts — with runtime.ReadMemStats around real traffic.
func TestWireServeAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc pin needs a quiet heap")
	}
	// A tracer with sampling off (the production default) must not cost the
	// unsampled hot path anything: span ids ride the pooled slot as values.
	tr := obs.NewTracer(nil, 64)
	tr.SetSampleRate(0)
	tr.SetFlight(obs.NewFlightRecorder(4))
	addr, _, _, teardown := startWire(t,
		// BatchWait 0 flushes immediately: the timer never arms, so the
		// measurement has no timer-goroutine noise.
		Config{PEs: 64, Shards: 1, BatchWait: 0, Tracer: tr},
		WireConfig{MaxPipeline: 8, Tracer: tr})
	defer teardown()

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var resp wire.Response
	roundtrip := func(n int) {
		for i := 0; i < n; i++ {
			if err := c.Send(&wire.Request{ID: uint64(i), Src: 4, Dst: 29}); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := c.Recv(&resp); err != nil {
				t.Fatal(err)
			}
			if resp.Status != http.StatusOK {
				t.Fatalf("status %d (%s)", resp.Status, resp.Err)
			}
		}
	}

	roundtrip(200) // warm every pool, map bucket and scratch buffer

	const measured = 400
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	roundtrip(measured)
	runtime.ReadMemStats(&after)

	perReq := float64(after.Mallocs-before.Mallocs) / measured
	// Zero in steady state; the epsilon absorbs stray runtime activity
	// (GC bookkeeping, background sweeps) that is not per-request.
	if perReq > 0.05 {
		t.Errorf("wire serve hot path allocates %.3f objects/request, want 0 (%d allocs over %d requests)",
			perReq, after.Mallocs-before.Mallocs, measured)
	}
}

// A non-well-nested set plans end to end over the wire protocol, on the
// same connection as pair requests, and an invalid set is refused with
// the HTTP taxonomy.
func TestWireSetRoundtrip(t *testing.T) {
	reg := obs.New()
	pl := NewPlanner(PlannerConfig{Registry: reg})
	addr, _, _, teardown := startWire(t,
		Config{PEs: 16, Shards: 1, Registry: reg}, WireConfig{Planner: pl, Registry: reg})
	defer teardown()

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A pair request first: the same slots serve both frame kinds.
	if err := c.Send(&wire.Request{ID: 1, Src: 2, Dst: 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := c.Recv(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 || resp.Status != http.StatusOK {
		t.Fatalf("pair response = %+v", resp)
	}

	// Crossing pairs plus a left-oriented comm: not well nested, not
	// right-oriented — only the hybrid planner can take it.
	req := wire.SetRequest{ID: 2, N: 16, Pairs: [][2]int{{0, 8}, {12, 4}, {2, 9}}}
	if err := c.SendSet(&req); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var sr wire.SetResponse
	if err := c.RecvSet(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID != 2 || sr.Status != http.StatusOK {
		t.Fatalf("set response = %+v", sr)
	}
	if sr.Rounds < 1 || sr.Rounds > sr.Bound || sr.Units <= 0 {
		t.Fatalf("set plan shape: %+v", sr)
	}
	if sr.Strategy != wire.StrategyPeel && sr.Strategy != wire.StrategyColoring {
		t.Fatalf("strategy code %d", sr.Strategy)
	}

	// An invalid set (self loop) answers 400 without killing the session.
	if err := c.SendSet(&wire.SetRequest{ID: 3, N: 16, Pairs: [][2]int{{5, 5}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.RecvSet(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID != 3 || sr.Status != http.StatusBadRequest || sr.Err == "" {
		t.Fatalf("invalid set response = %+v", sr)
	}

	// The session survives: a further pair request still works.
	if err := c.Send(&wire.Request{ID: 4, Src: 10, Dst: 13}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Recv(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 4 || resp.Status != http.StatusOK {
		t.Fatalf("post-set pair response = %+v", resp)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[`cst_hybrid_requests_total{protocol="wire"}`]; got != 2 {
		t.Errorf(`wire set requests = %d, want 2`, got)
	}
	if got := snap.Counters[`cst_hybrid_planned_total{protocol="wire"}`]; got != 1 {
		t.Errorf(`wire sets planned = %d, want 1`, got)
	}
}

// A server without a planner answers set frames with 501 instead of
// treating them as protocol violations — the frame is legal, the feature
// is just off.
func TestWireSetWithoutPlanner(t *testing.T) {
	addr, _, _, teardown := startWire(t, Config{PEs: 16, Shards: 1}, WireConfig{})
	defer teardown()

	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendSet(&wire.SetRequest{ID: 1, N: 16, Pairs: [][2]int{{0, 8}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var sr wire.SetResponse
	if err := c.RecvSet(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", sr.Status)
	}
}

// A set frame on a session that negotiated v1 is a protocol violation:
// the connection dies and the counter ticks.
func TestWireSetOnV1Session(t *testing.T) {
	reg := obs.New()
	pl := NewPlanner(PlannerConfig{})
	addr, _, _, teardown := startWire(t,
		Config{PEs: 16, Shards: 1}, WireConfig{Planner: pl, Registry: reg})
	defer teardown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendHello(nil, 1)); err != nil {
		t.Fatal(err)
	}
	var accept [wire.HandshakeBytes]byte
	if _, err := io.ReadFull(conn, accept[:]); err != nil {
		t.Fatal(err)
	}
	if v, err := wire.ParseHello(accept[:]); err != nil || v != 1 {
		t.Fatalf("negotiated v%d err %v, want v1", v, err)
	}
	frame, err := wire.AppendSetRequest(nil, &wire.SetRequest{ID: 1, N: 16, Pairs: [][2]int{{0, 8}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if b, _ := io.ReadAll(conn); len(b) != 0 {
		t.Fatalf("server answered %x to a v2 frame on a v1 session", b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["cst_serve_wire_protocol_errors_total"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("protocol error never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// benchWirePool builds a started pool + wire server for benchmarks.
func benchWirePool(b *testing.B, shards int, batchWait time.Duration) (string, func()) {
	b.Helper()
	p, err := New(Config{PEs: 64, Shards: shards, BatchWait: batchWait, QueueDepth: 256})
	if err != nil {
		b.Fatal(err)
	}
	p.Start()
	ws := NewWireServer(p, WireConfig{MaxPipeline: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ws.Serve(ln)
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		p.Drain(ctx)
		ws.Shutdown(ctx)
	}
}

// BenchmarkWireServeSerial is the latency benchmark: one connection, one
// request in flight — ns/op is the full client-observed round trip.
func BenchmarkWireServeSerial(b *testing.B) {
	addr, stop := benchWirePool(b, 1, 0)
	defer stop()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var resp wire.Response
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(&wire.Request{ID: uint64(i), Src: 4, Dst: 29}); err != nil {
			b.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
		if err := c.Recv(&resp); err != nil {
			b.Fatal(err)
		}
		if resp.Status != http.StatusOK {
			b.Fatalf("status %d (%s)", resp.Status, resp.Err)
		}
	}
	b.StopTimer()
	reportReqPerSec(b)
}

// BenchmarkWireServePipelined is the throughput benchmark: one connection
// with a deep pipeline. BatchWait stays 0 — a pipelined burst batches
// naturally off the queue, so an arming delay would only add latency.
func BenchmarkWireServePipelined(b *testing.B) {
	addr, stop := benchWirePool(b, 2, 0)
	defer stop()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const window = 32
	var resp wire.Response
	b.ReportAllocs()
	b.ResetTimer()
	inflight := 0
	src := 0
	for i := 0; i < b.N; i++ {
		if err := c.Send(&wire.Request{ID: uint64(i), Src: src, Dst: src + 1}); err != nil {
			b.Fatal(err)
		}
		src = (src + 2) % 64
		inflight++
		if inflight == window {
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			for ; inflight > window/2; inflight-- {
				if err := c.Recv(&resp); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	for ; inflight > 0; inflight-- {
		if err := c.Recv(&resp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportReqPerSec(b)
}

func reportReqPerSec(b *testing.B) {
	if d := b.Elapsed(); d > 0 {
		b.ReportMetric(float64(b.N)/d.Seconds(), "req/s")
	}
}

// brokenWriter fails every write, standing in for a connection the client
// abandoned mid-pipeline.
type brokenWriter struct{}

func (brokenWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// A client that disconnects with answers still in flight must not leak
// open traces: the writer can no longer deliver the frames, but the
// requests did run, so their root spans still close and the flight
// recorder finalizes their trees.
func TestWriteLoopClosesSpansAfterWriteError(t *testing.T) {
	tr := obs.NewTracer(nil, 64)
	tr.SetSampleRate(1)
	fr := obs.NewFlightRecorder(4)
	tr.SetFlight(fr)
	s := NewWireServer(nil, WireConfig{MaxPipeline: 2, Tracer: tr})
	b := s.newBundle()
	b.version = wire.VersionTrace
	b.bw.Reset(brokenWriter{})

	done := make(chan struct{})
	go s.writeLoop(b, done)
	for i := 0; i < 2; i++ {
		wc := <-b.free
		wc.isSet = false
		wc.sp = tr.StartServer("wire.schedule", "serve", obs.SpanContext{})
		wc.res = Result{Status: 200}
		b.out <- wc // first one trips the flush error; second rides the dead path
	}
	b.out <- nil
	<-done

	snap := fr.Snapshot()
	if snap.Finished != 2 || snap.OpenTraces != 0 {
		t.Fatalf("finished=%d open=%d, want 2/0", snap.Finished, snap.OpenTraces)
	}
}

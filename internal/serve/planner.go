// The planner is the set-scheduling front end of the service: where the
// Pool answers point requests (one src/dst pair against a live simulator),
// the Planner answers whole communication sets — including non-well-nested
// ones — by running the hybrid decompose/peel/color pipeline and returning
// the composite plan's shape and power bill. Planning is CPU work on
// shared physical-switch replay state, so a mutex serializes plans; the
// per-size topology trees are cached across requests.
//
// The Planner deliberately does not touch the Pool: admission counters,
// the drain ledger and the zero-alloc pair path are invariants of the
// point-request plane, and set planning must not perturb them.
package serve

import (
	"sync"
	"time"

	"cst/internal/comm"
	"cst/internal/hybrid"
	"cst/internal/obs"
	"cst/internal/topology"
	"cst/internal/wire"
)

// DefaultMaxPlanComms bounds the communications accepted in one set plan
// when PlannerConfig leaves MaxComms zero. The wire protocol enforces a
// similar bound structurally (a set request must fit one frame); this is
// the HTTP-side equivalent.
const DefaultMaxPlanComms = 1024

// PlannerConfig parameterizes a Planner.
type PlannerConfig struct {
	// ExactBudget is the branch-and-bound node budget for residual
	// coloring; <= 0 uses hybrid.DefaultExactBudget.
	ExactBudget int
	// MaxBatches bounds the well-nested batches peeled per orientation;
	// <= 0 uses hybrid.DefaultMaxBatches.
	MaxBatches int
	// MaxComms bounds the size of one planned set; <= 0 uses
	// DefaultMaxPlanComms.
	MaxComms int
	// Registry receives the cst_hybrid_* series; nil leaves the planner
	// uninstrumented.
	Registry *obs.Registry
	// Tracer receives the hybrid replay trace (and through it the audit
	// pipeline); nil no-ops.
	Tracer *obs.Tracer
}

// plannerMetrics holds the cst_hybrid_* handles (nil handles no-op).
// Requests and planned counts follow the pool idiom: unlabeled aggregates
// plus {protocol=...} labeled twins.
type plannerMetrics struct {
	requests *obs.Counter
	planned  *obs.Counter
	failed   *obs.Counter
	units    *obs.Counter
	rounds   *obs.Histogram
	seconds  *obs.Histogram
	proto    [protoCount]plannerProtoMetrics
}

type plannerProtoMetrics struct {
	requests *obs.Counter
	planned  *obs.Counter
}

func newPlannerMetrics(r *obs.Registry) plannerMetrics {
	m := plannerMetrics{
		requests: r.Counter("cst_hybrid_requests_total", "set scheduling requests received"),
		planned:  r.Counter("cst_hybrid_planned_total", "set scheduling requests planned"),
		failed:   r.Counter("cst_hybrid_failed_total", "set scheduling requests refused or failed"),
		units:    r.Counter("cst_hybrid_units_total", "power units billed across planned sets"),
		rounds:   r.Histogram("cst_hybrid_rounds", "composite rounds per planned set", obs.ExponentialBuckets(1, 2, 10)),
		seconds:  r.Histogram("cst_hybrid_plan_seconds", "wall-clock planning latency", obs.ExponentialBuckets(0.0001, 2, 16)),
	}
	for i, name := range protoNames {
		lbl := `{protocol="` + name + `"}`
		m.proto[i] = plannerProtoMetrics{
			requests: r.Counter("cst_hybrid_requests_total"+lbl, "set scheduling requests received"),
			planned:  r.Counter("cst_hybrid_planned_total"+lbl, "set scheduling requests planned"),
		}
	}
	return m
}

// SetComm is one scheduled communication in a SetResult round.
type SetComm struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// SetResult is the outcome of planning one communication set. Status
// follows HTTP semantics on both transports: 200 planned, 400 invalid
// set, 413 set too large, 500 planner failure.
type SetResult struct {
	Status int `json:"status"`
	// Rounds is the composite round count; Bound the peel-pipeline total
	// it must not exceed; Width the link-width lower bound.
	Rounds int `json:"rounds"`
	Bound  int `json:"bound"`
	Width  int `json:"width"`
	// Batches and ResidualComms describe the decomposition: how many
	// well-nested batches were peeled and how many communications fell
	// through to graph coloring.
	Batches       int `json:"batches"`
	ResidualComms int `json:"residual_comms"`
	// Strategy is the winning plan, hybrid.StrategyPeel or
	// hybrid.StrategyColoring.
	Strategy string `json:"strategy,omitempty"`
	// Units is the composite power bill in switch-round units.
	Units     int64 `json:"units"`
	Exhausted bool  `json:"exhausted,omitempty"`
	// Schedule carries the round-by-round assignment when the caller
	// asked for it (HTTP does; the wire path returns counts only).
	Schedule [][]SetComm `json:"schedule,omitempty"`
	Err      string      `json:"error,omitempty"`
	// TraceID is the request's trace id when the request was sampled (set
	// by the transport).
	TraceID string `json:"trace_id,omitempty"`
}

// Planner plans whole communication sets through the hybrid pipeline.
// Construct with NewPlanner; Plan is safe for concurrent use.
type Planner struct {
	cfg PlannerConfig
	met plannerMetrics

	mu    sync.Mutex
	trees map[int]*topology.Tree
}

// NewPlanner builds a set planner.
func NewPlanner(cfg PlannerConfig) *Planner {
	if cfg.MaxComms <= 0 {
		cfg.MaxComms = DefaultMaxPlanComms
	}
	return &Planner{
		cfg:   cfg,
		met:   newPlannerMetrics(cfg.Registry),
		trees: make(map[int]*topology.Tree),
	}
}

// Plan schedules one communication set and reports the composite plan.
// proto attributes the request to a transport for metrics; includeRounds
// asks for the full round-by-round schedule in the result (the wire path
// declines, so pooled connection slots never retain schedules).
func (p *Planner) Plan(s *comm.Set, proto uint8, includeRounds bool) SetResult {
	return p.PlanTraced(s, proto, includeRounds, obs.SpanContext{})
}

// PlanTraced is Plan attributed to a request trace: when sctx is sampled, a
// "serve.plan" span covering the whole call is emitted, and the hybrid
// pipeline stages become its children. A zero sctx behaves exactly like
// Plan.
func (p *Planner) PlanTraced(s *comm.Set, proto uint8, includeRounds bool, sctx obs.SpanContext) SetResult {
	start := time.Now()
	var planCtx obs.SpanContext
	if p.cfg.Tracer != nil && sctx.Valid() {
		// Pre-allocate the serve.plan span id so the hybrid stage spans can
		// parent under it even though spans are emitted at end time.
		planCtx = obs.SpanContext{Trace: sctx.Trace, Span: p.cfg.Tracer.NewSpanID(), Sampled: true}
	}
	res := p.plan(s, proto, includeRounds, planCtx)
	if planCtx.Valid() {
		p.cfg.Tracer.EmitSpan(obs.SpanRecord{
			Trace: planCtx.Trace, Span: planCtx.Span, Parent: sctx.Span,
			Name: "serve.plan", Engine: "hybrid",
			Start: start, End: time.Now(),
			Status: res.Status, N: s.Len(), Err: res.Err,
		})
	}
	return res
}

func (p *Planner) plan(s *comm.Set, proto uint8, includeRounds bool, planCtx obs.SpanContext) SetResult {
	start := time.Now()
	p.met.requests.Inc()
	if int(proto) < protoCount {
		p.met.proto[proto].requests.Inc()
	}
	if s.Len() > p.cfg.MaxComms {
		p.met.failed.Inc()
		return SetResult{Status: 413, Err: "serve: set too large"}
	}
	if err := s.Validate(); err != nil {
		p.met.failed.Inc()
		return SetResult{Status: 400, Err: err.Error()}
	}

	p.mu.Lock()
	tree := p.trees[s.N]
	if tree == nil {
		t, err := topology.New(s.N)
		if err != nil {
			p.mu.Unlock()
			p.met.failed.Inc()
			return SetResult{Status: 400, Err: err.Error()}
		}
		tree = t
		p.trees[s.N] = tree
	}
	plan, err := hybrid.Schedule(tree, s,
		hybrid.WithExactBudget(p.cfg.ExactBudget),
		hybrid.WithMaxBatches(p.cfg.MaxBatches),
		hybrid.WithTracer(p.cfg.Tracer),
		hybrid.WithSpanContext(planCtx))
	p.mu.Unlock()
	if err != nil {
		p.met.failed.Inc()
		return SetResult{Status: 500, Err: err.Error()}
	}

	res := SetResult{
		Status:        200,
		Rounds:        plan.Rounds,
		Bound:         plan.Bound,
		Width:         plan.Width,
		Batches:       plan.Batches,
		ResidualComms: plan.ResidualComms,
		Strategy:      plan.Strategy,
		Units:         int64(plan.Report.TotalUnits()),
		Exhausted:     plan.Exhausted,
	}
	if includeRounds {
		res.Schedule = make([][]SetComm, len(plan.Schedule.Rounds))
		for i, round := range plan.Schedule.Rounds {
			rs := make([]SetComm, len(round))
			for j, c := range round {
				rs[j] = SetComm{Src: c.Src, Dst: c.Dst}
			}
			res.Schedule[i] = rs
		}
	}
	p.met.planned.Inc()
	if int(proto) < protoCount {
		p.met.proto[proto].planned.Inc()
	}
	p.met.units.Add(res.Units)
	p.met.rounds.Observe(float64(res.Rounds))
	p.met.seconds.ObserveDuration(time.Since(start))
	return res
}

// strategyCode maps a Plan strategy name onto its wire code.
func strategyCode(s string) uint8 {
	switch s {
	case hybrid.StrategyPeel:
		return wire.StrategyPeel
	case hybrid.StrategyColoring:
		return wire.StrategyColoring
	}
	return wire.StrategyNone
}

// Package power aggregates the paper's §2.3 power model over a whole CST
// run.
//
// The model: a switch spends one power unit per input→output connection it
// establishes; holding a connection across rounds is free, and so is
// dropping one. A switch therefore spends at most three units per
// reconfiguration. Theorem 8 states that under the paper's algorithm every
// switch spends O(1) units over an entire schedule, versus Θ(w) under
// round-by-round reconfiguration.
//
// Engines collect a Report from their switch meters; the harness compares
// reports across algorithms and accounting modes.
package power

import (
	"fmt"
	"sort"
	"strings"

	"cst/internal/topology"
	"cst/internal/xbar"
)

// Mode selects how a scheduling engine treats switch state across rounds.
type Mode int

const (
	// Stateful holds switch configurations across rounds; only genuine
	// changes cost power. This is the paper's §2.3 accounting and what the
	// PADR algorithm is designed for.
	Stateful Mode = iota
	// Stateless tears every switch down at the start of each round, so each
	// round's connections are re-established from scratch — the literal
	// reading of "a switch may alter its configuration at each round"
	// attributed to the prior algorithm [6].
	Stateless
)

// String returns "stateful" or "stateless".
func (m Mode) String() string {
	if m == Stateless {
		return "stateless"
	}
	return "stateful"
}

// SwitchReport is the power ledger of one switch after a run.
type SwitchReport struct {
	// Node is the switch's tree node.
	Node topology.Node
	// Units is the total power units spent (connections established).
	Units int
	// Alternations counts output-driver changes summed over the three
	// outputs — the quantity Lemmas 6 and 7 bound by a constant.
	Alternations int
}

// Report is the power ledger of a whole run.
type Report struct {
	// Algorithm names the engine that produced the run (e.g. "padr").
	Algorithm string
	// Mode is the accounting mode the run used.
	Mode Mode
	// Rounds is the number of schedule rounds executed.
	Rounds int
	// Switches holds one entry per internal node, in BFS node order.
	Switches []SwitchReport
}

// Collect builds a Report by reading the meters of the given switches,
// indexed by node (switches[node] for node in 1..t.Switches()).
func Collect(algorithm string, mode Mode, rounds int, t *topology.Tree, switches map[topology.Node]*xbar.Switch) *Report {
	return collect(algorithm, mode, rounds, t, func(n topology.Node) *xbar.Switch { return switches[n] })
}

// CollectSlice is Collect for engines that keep their switches in a dense
// slice indexed by node (len >= t.Switches()+1; entry 0 unused).
func CollectSlice(algorithm string, mode Mode, rounds int, t *topology.Tree, switches []*xbar.Switch) *Report {
	return collect(algorithm, mode, rounds, t, func(n topology.Node) *xbar.Switch {
		if int(n) >= len(switches) {
			return nil
		}
		return switches[n]
	})
}

func collect(algorithm string, mode Mode, rounds int, t *topology.Tree, at func(topology.Node) *xbar.Switch) *Report {
	r := &Report{Algorithm: algorithm, Mode: mode, Rounds: rounds}
	r.Switches = make([]SwitchReport, 0, t.Switches())
	t.EachSwitch(func(n topology.Node) {
		sw := at(n)
		if sw == nil {
			r.Switches = append(r.Switches, SwitchReport{Node: n})
			return
		}
		r.Switches = append(r.Switches, SwitchReport{
			Node:         n,
			Units:        sw.Units(),
			Alternations: sw.TotalAlternations(),
		})
	})
	return r
}

// TotalUnits sums power units over all switches.
func (r *Report) TotalUnits() int {
	total := 0
	for _, s := range r.Switches {
		total += s.Units
	}
	return total
}

// MaxUnits returns the highest per-switch unit count — the paper's
// per-switch O(1) vs Θ(w) contrast is about this number.
func (r *Report) MaxUnits() int {
	maxu := 0
	for _, s := range r.Switches {
		if s.Units > maxu {
			maxu = s.Units
		}
	}
	return maxu
}

// MaxAlternations returns the highest per-switch alternation count.
func (r *Report) MaxAlternations() int {
	maxa := 0
	for _, s := range r.Switches {
		if s.Alternations > maxa {
			maxa = s.Alternations
		}
	}
	return maxa
}

// MeanUnits returns the average per-switch unit count.
func (r *Report) MeanUnits() float64 {
	if len(r.Switches) == 0 {
		return 0
	}
	return float64(r.TotalUnits()) / float64(len(r.Switches))
}

// ActiveSwitches returns how many switches spent any power at all.
func (r *Report) ActiveSwitches() int {
	n := 0
	for _, s := range r.Switches {
		if s.Units > 0 {
			n++
		}
	}
	return n
}

// UnitsHistogram returns a sorted (units, count) histogram of per-switch
// spending, omitting idle switches.
func (r *Report) UnitsHistogram() [][2]int {
	counts := map[int]int{}
	for _, s := range r.Switches {
		if s.Units > 0 {
			counts[s.Units]++
		}
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][2]int, len(keys))
	for i, k := range keys {
		out[i] = [2]int{k, counts[k]}
	}
	return out
}

// Hottest returns the k switches with the highest unit counts, descending.
func (r *Report) Hottest(k int) []SwitchReport {
	out := append([]SwitchReport(nil), r.Switches...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Units > out[j].Units })
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// LevelStats aggregates one tree level's spending.
type LevelStats struct {
	// Level is the tree level (leaves are 0, root is Levels()).
	Level int
	// Switches is the number of switches on the level.
	Switches int
	// Units and MaxUnits are the level's total and hottest spend.
	Units, MaxUnits int
}

// ByLevel aggregates the report per tree level, root first — showing where
// in the tree the power goes (chains concentrate spend near the root; the
// per-level totals shrink geometrically toward the leaves on random sets).
func (r *Report) ByLevel(t *topology.Tree) []LevelStats {
	byLevel := map[int]*LevelStats{}
	for _, s := range r.Switches {
		lvl := t.Level(s.Node)
		ls := byLevel[lvl]
		if ls == nil {
			ls = &LevelStats{Level: lvl}
			byLevel[lvl] = ls
		}
		ls.Switches++
		ls.Units += s.Units
		if s.Units > ls.MaxUnits {
			ls.MaxUnits = s.Units
		}
	}
	out := make([]LevelStats, 0, len(byLevel))
	for lvl := t.Levels(); lvl >= 1; lvl-- {
		if ls := byLevel[lvl]; ls != nil {
			out = append(out, *ls)
		}
	}
	return out
}

// Summary renders a one-line digest:
// "padr/stateful: 5 rounds, total 42 units, max/switch 6, max alternations 2".
func (r *Report) Summary() string {
	return fmt.Sprintf("%s/%s: %d rounds, total %d units, max/switch %d, max alternations %d",
		r.Algorithm, r.Mode, r.Rounds, r.TotalUnits(), r.MaxUnits(), r.MaxAlternations())
}

// Table renders a fixed-width table of the k hottest switches.
func (r *Report) Table(k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %14s\n", "switch", "units", "alternations")
	for _, s := range r.Hottest(k) {
		fmt.Fprintf(&b, "u%-7d %8d %14d\n", int(s.Node), s.Units, s.Alternations)
	}
	return b.String()
}

// Compare summarizes this report against another (typically PADR vs the
// baseline on the same workload), reporting the max-per-switch ratio that
// the paper's headline claim is about.
func (r *Report) Compare(other *Report) string {
	ratio := "inf"
	if m := r.MaxUnits(); m > 0 {
		ratio = fmt.Sprintf("%.2fx", float64(other.MaxUnits())/float64(m))
	}
	return fmt.Sprintf("%s vs %s: max/switch %d vs %d (%s), total %d vs %d",
		r.Algorithm, other.Algorithm, r.MaxUnits(), other.MaxUnits(), ratio,
		r.TotalUnits(), other.TotalUnits())
}

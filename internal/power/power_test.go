package power

import (
	"strings"
	"testing"

	"cst/internal/topology"
	"cst/internal/xbar"
)

func makeReport(t *testing.T) *Report {
	t.Helper()
	tr := topology.MustNew(8)
	switches := map[topology.Node]*xbar.Switch{}
	tr.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	// Root: 3 connects with an alternation on P... root is node 1.
	mustConn(t, switches[1], xbar.L, xbar.R)
	mustConn(t, switches[1], xbar.L, xbar.P)
	mustConn(t, switches[1], xbar.R, xbar.P) // alternation on P
	// Node 2: one connect.
	mustConn(t, switches[2], xbar.P, xbar.L)
	return Collect("padr", Stateful, 4, tr, switches)
}

func mustConn(t *testing.T, sw *xbar.Switch, in, out xbar.Side) {
	t.Helper()
	if err := sw.Connect(in, out); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Stateful.String() != "stateful" || Stateless.String() != "stateless" {
		t.Fatal("Mode.String wrong")
	}
}

func TestCollectAndTotals(t *testing.T) {
	r := makeReport(t)
	if len(r.Switches) != 7 {
		t.Fatalf("report covers %d switches, want 7", len(r.Switches))
	}
	if r.TotalUnits() != 4 {
		t.Errorf("TotalUnits = %d, want 4", r.TotalUnits())
	}
	if r.MaxUnits() != 3 {
		t.Errorf("MaxUnits = %d, want 3", r.MaxUnits())
	}
	if r.MaxAlternations() != 1 {
		t.Errorf("MaxAlternations = %d, want 1", r.MaxAlternations())
	}
	if r.ActiveSwitches() != 2 {
		t.Errorf("ActiveSwitches = %d, want 2", r.ActiveSwitches())
	}
	if got := r.MeanUnits(); got < 0.56 || got > 0.58 {
		t.Errorf("MeanUnits = %f, want ~0.571", got)
	}
	if r.Rounds != 4 {
		t.Errorf("Rounds = %d", r.Rounds)
	}
}

func TestCollectMissingSwitch(t *testing.T) {
	tr := topology.MustNew(4)
	r := Collect("x", Stateful, 1, tr, map[topology.Node]*xbar.Switch{})
	if len(r.Switches) != 3 {
		t.Fatalf("want 3 entries, got %d", len(r.Switches))
	}
	if r.TotalUnits() != 0 || r.MaxUnits() != 0 {
		t.Fatal("missing switches must read as zero")
	}
}

func TestUnitsHistogram(t *testing.T) {
	r := makeReport(t)
	h := r.UnitsHistogram()
	// One switch with 1 unit, one with 3.
	want := [][2]int{{1, 1}, {3, 1}}
	if len(h) != len(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
}

func TestHottest(t *testing.T) {
	r := makeReport(t)
	top := r.Hottest(2)
	if len(top) != 2 {
		t.Fatalf("Hottest(2) returned %d", len(top))
	}
	if top[0].Node != 1 || top[0].Units != 3 {
		t.Fatalf("hottest should be root with 3 units: %+v", top[0])
	}
	all := r.Hottest(100)
	if len(all) != 7 {
		t.Fatalf("Hottest(100) must clamp to 7, got %d", len(all))
	}
}

func TestSummaryAndTable(t *testing.T) {
	r := makeReport(t)
	s := r.Summary()
	for _, want := range []string{"padr/stateful", "4 rounds", "total 4 units", "max/switch 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
	tab := r.Table(3)
	if !strings.Contains(tab, "u1") || !strings.Contains(tab, "units") {
		t.Errorf("Table output:\n%s", tab)
	}
}

func TestCompare(t *testing.T) {
	r := makeReport(t)
	other := &Report{Algorithm: "baseline", Mode: Stateless, Rounds: 4,
		Switches: []SwitchReport{{Node: 1, Units: 12}}}
	c := r.Compare(other)
	for _, want := range []string{"padr vs baseline", "3 vs 12", "4.00x"} {
		if !strings.Contains(c, want) {
			t.Errorf("Compare %q missing %q", c, want)
		}
	}
	empty := &Report{Algorithm: "idle"}
	if !strings.Contains(empty.Compare(other), "inf") {
		t.Error("zero-unit comparison should report inf")
	}
}

func TestByLevel(t *testing.T) {
	r := makeReport(t)
	tr := topology.MustNew(8)
	levels := r.ByLevel(tr)
	if len(levels) != tr.Levels() {
		t.Fatalf("levels = %d, want %d", len(levels), tr.Levels())
	}
	// Root level first: node 1 spent 3 units.
	if levels[0].Level != 3 || levels[0].Units != 3 || levels[0].Switches != 1 {
		t.Fatalf("root level stats: %+v", levels[0])
	}
	// Level 2 holds nodes 2,3: node 2 spent 1.
	if levels[1].Units != 1 || levels[1].Switches != 2 || levels[1].MaxUnits != 1 {
		t.Fatalf("level 2 stats: %+v", levels[1])
	}
	total := 0
	for _, l := range levels {
		total += l.Units
	}
	if total != r.TotalUnits() {
		t.Fatalf("per-level sum %d != total %d", total, r.TotalUnits())
	}
}

func TestEmptyReport(t *testing.T) {
	r := &Report{Algorithm: "none"}
	if r.MeanUnits() != 0 || r.TotalUnits() != 0 || r.MaxUnits() != 0 {
		t.Fatal("empty report must read zero")
	}
	if len(r.UnitsHistogram()) != 0 {
		t.Fatal("empty histogram expected")
	}
}

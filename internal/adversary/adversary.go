// Package adversary searches for worst-case well-nested inputs by local
// mutation — used to probe how bad the literal Fig. 5 selection rule's
// per-switch change count can actually get (experiment E14), beyond what
// uniform random sampling finds.
//
// The search is simple stochastic hill climbing over parenthesis strings:
// mutate (open a new innermost pair, close one, slide an endpoint, swap two
// columns), keep the mutant when the metric does not decrease, restart from
// the best-so-far on stagnation.
package adversary

import (
	"fmt"
	"math/rand"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/topology"
)

// Metric scores a well-nested set; larger is worse (more adversarial).
type Metric func(t *topology.Tree, s *comm.Set) (float64, error)

// GreedyMaxUnits scores by the hottest switch's power units under the
// literal (greedy) selection rule.
func GreedyMaxUnits(t *topology.Tree, s *comm.Set) (float64, error) {
	e, err := padr.New(t, s, padr.WithSelection(padr.Greedy))
	if err != nil {
		return 0, err
	}
	res, err := e.Run()
	if err != nil {
		return 0, err
	}
	return float64(res.Report.MaxUnits()), nil
}

// ConservativeExtraRounds scores by the round overhead of the conservative
// rule (rounds beyond the width).
func ConservativeExtraRounds(t *topology.Tree, s *comm.Set) (float64, error) {
	e, err := padr.New(t, s, padr.WithSelection(padr.Conservative))
	if err != nil {
		return 0, err
	}
	res, err := e.Run()
	if err != nil {
		return 0, err
	}
	return float64(res.Rounds - res.Width), nil
}

// Result is the outcome of a search.
type Result struct {
	// Set is the most adversarial input found.
	Set *comm.Set
	// Score is its metric value.
	Score float64
	// Evaluated counts metric evaluations performed.
	Evaluated int
}

// Search hill-climbs for iters mutations over n PEs, seeding from a random
// set. The returned set always validates and is well nested.
func Search(rng *rand.Rand, n, iters int, metric Metric) (*Result, error) {
	t, err := topology.New(n)
	if err != nil {
		return nil, err
	}
	cur, err := comm.RandomWellNested(rng, n, n/4)
	if err != nil {
		return nil, err
	}
	curScore, err := metric(t, cur)
	if err != nil {
		return nil, err
	}
	best, bestScore := cur.Clone(), curScore
	evaluated := 1
	sinceImprove := 0
	for i := 0; i < iters; i++ {
		mut := mutate(rng, cur)
		if mut == nil {
			continue
		}
		score, err := metric(t, mut)
		if err != nil {
			return nil, fmt.Errorf("adversary: metric on %s: %v", mut, err)
		}
		evaluated++
		if score >= curScore {
			cur, curScore = mut, score
		}
		if score > bestScore {
			best, bestScore = mut.Clone(), score
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		// Restart from the incumbent when stuck on a plateau.
		if sinceImprove > iters/4 && sinceImprove > 25 {
			cur, curScore = best.Clone(), bestScore
			sinceImprove = 0
		}
	}
	return &Result{Set: best, Score: bestScore, Evaluated: evaluated}, nil
}

// mutate applies one random edit to the parenthesis string; nil when the
// edit produced an invalid or unchanged expression.
func mutate(rng *rand.Rand, s *comm.Set) *comm.Set {
	b := []byte(s.String())
	switch rng.Intn(4) {
	case 0: // open a new pair on two idle PEs
		i, j := rng.Intn(len(b)), rng.Intn(len(b))
		if i > j {
			i, j = j, i
		}
		if i == j || b[i] != '.' || b[j] != '.' {
			return nil
		}
		b[i], b[j] = '(', ')'
	case 1: // remove a pair
		if s.Len() == 0 {
			return nil
		}
		c := s.Comms[rng.Intn(s.Len())]
		b[c.Src], b[c.Dst] = '.', '.'
	case 2: // slide one endpoint onto an adjacent idle PE
		if s.Len() == 0 {
			return nil
		}
		c := s.Comms[rng.Intn(s.Len())]
		pos := c.Src
		if rng.Intn(2) == 0 {
			pos = c.Dst
		}
		dir := 1
		if rng.Intn(2) == 0 {
			dir = -1
		}
		np := pos + dir
		if np < 0 || np >= len(b) || b[np] != '.' {
			return nil
		}
		b[np], b[pos] = b[pos], '.'
	default: // swap two columns
		i, j := rng.Intn(len(b)), rng.Intn(len(b))
		b[i], b[j] = b[j], b[i]
	}
	mut, err := comm.Parse(string(b))
	if err != nil || !mut.IsWellNested() || mut.N != s.N {
		return nil
	}
	return mut
}

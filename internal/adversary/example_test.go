package adversary_test

import (
	"fmt"
	"math/rand"

	"cst/internal/adversary"
)

// Hill-climb for a well-nested input that maximizes the literal selection
// rule's per-switch churn.
func ExampleSearch() {
	rng := rand.New(rand.NewSource(7))
	res, err := adversary.Search(rng, 64, 200, adversary.GreedyMaxUnits)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("found an input with per-switch churn above the chain bound:", res.Score > 2)
	// Output:
	// found an input with per-switch churn above the chain bound: true
}

package adversary

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/topology"
)

func TestMetricsRun(t *testing.T) {
	tr := topology.MustNew(16)
	s := comm.MustParse("..(((()(....))))")
	u, err := GreedyMaxUnits(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if u < 1 {
		t.Fatalf("greedy units metric = %v", u)
	}
	x, err := ConservativeExtraRounds(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if x < 0 {
		t.Fatalf("extra rounds metric = %v", x)
	}
}

func TestMutatePreservesWellNestedness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := comm.RandomWellNested(rng, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	produced := 0
	for i := 0; i < 500; i++ {
		m := mutate(rng, s)
		if m == nil {
			continue
		}
		produced++
		if err := m.Validate(); err != nil {
			t.Fatalf("mutant invalid: %v", err)
		}
		if !m.IsWellNested() {
			t.Fatalf("mutant not well nested: %s", m)
		}
		if m.N != 32 {
			t.Fatalf("mutant changed N: %d", m.N)
		}
	}
	if produced < 50 {
		t.Fatalf("mutation acceptance too low: %d/500", produced)
	}
}

// The search must find inputs at least as bad as random sampling does: on
// n=64 the greedy rule's hottest switch should exceed the chain bound of 2.
func TestSearchFindsAdversarialInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := Search(rng, 64, 400, GreedyMaxUnits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set == nil || !res.Set.IsWellNested() {
		t.Fatal("search returned a bad set")
	}
	if res.Evaluated < 10 {
		t.Fatalf("search barely ran: %d evaluations", res.Evaluated)
	}
	if res.Score < 3 {
		t.Fatalf("search should beat the chain bound of 2, got %v", res.Score)
	}
	// The reported score must be reproducible from the returned set.
	tr := topology.MustNew(64)
	again, err := GreedyMaxUnits(tr, res.Set)
	if err != nil {
		t.Fatal(err)
	}
	if again != res.Score {
		t.Fatalf("score not reproducible: %v vs %v", again, res.Score)
	}
	// And the conservative rule must keep the same input cheap.
	e, err := padr.New(tr, res.Set, padr.WithSelection(padr.Conservative))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cons.Report.MaxUnits() > 4 {
		t.Fatalf("conservative rule must stay O(1) on the adversarial input, got %d", cons.Report.MaxUnits())
	}
}

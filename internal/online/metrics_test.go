package online

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/obs"
)

// An instrumented online run must publish cst_online_* series agreeing
// with Stats, and thread the registry into the inner padr engines.
func TestInstrumentedOnlineRun(t *testing.T) {
	reg := obs.New()
	tracer := obs.NewTracer(nil, 4096)
	sim, err := New(16, WithRegistry(reg), WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	accepted := 0
	for i := 0; i < 6; i++ {
		accepted += sim.SubmitRandom(rng, 4)
		sim.Tick()
		if _, err := sim.Dispatch(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := sim.Finish()

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"cst_online_requests_total":    int64(accepted),
		"cst_online_completed_total":   int64(len(stats.Completed)),
		"cst_online_batches_total":     int64(stats.Batches),
		"cst_online_busy_rounds_total": int64(stats.Rounds),
		"cst_online_idle_rounds_total": int64(stats.IdleRounds),
		"cst_online_power_units_total": int64(stats.Report.TotalUnits()),
		"cst_online_errors_total":      0,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["cst_online_queue_len"]; got != 0 {
		t.Errorf("queue gauge = %d after drain, want 0", got)
	}
	lat := snap.Histograms["cst_online_request_latency_rounds"]
	if lat.Count != int64(len(stats.Completed)) {
		t.Errorf("latency histogram has %d samples, want %d", lat.Count, len(stats.Completed))
	}
	// The registry threads through to the inner engines: one padr run per
	// batch.
	if got := snap.Counters["cst_padr_runs_total"]; got != int64(stats.Batches) {
		t.Errorf("inner cst_padr_runs_total = %d, want %d", got, stats.Batches)
	}
	if tracer.Events() == 0 {
		t.Error("tracer saw no events")
	}

	// Finish is idempotent on the unit counter.
	before := reg.Counter("cst_online_power_units_total", "").Value()
	sim.Finish()
	if got := reg.Counter("cst_online_power_units_total", "").Value(); got != before {
		t.Errorf("second Finish moved units counter %d -> %d", before, got)
	}
}

// A rejected request must tick the rejection counter, not the accept one.
func TestInstrumentedRejection(t *testing.T) {
	reg := obs.New()
	sim, err := New(8, WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(comm.Comm{Src: 0, Dst: 3}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(comm.Comm{Src: 3, Dst: 5}); err == nil {
		t.Fatal("busy endpoint: want error")
	}
	if err := sim.Submit(comm.Comm{Src: 2, Dst: 2}); err == nil {
		t.Fatal("self-loop: want error")
	}
	if got := reg.Counter("cst_online_requests_total", "").Value(); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
	if got := reg.Counter("cst_online_rejected_total", "").Value(); got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
}

package online

import (
	"errors"
	"testing"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/padr"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// TestDeltaSessionLifecycle walks one session through open, warm applies
// and close: the opening delta runs from scratch (Fallback), later deltas
// take the incremental path, and the reported rounds always match a
// reference from-scratch engine over the same set.
func TestDeltaSessionLifecycle(t *testing.T) {
	const n = 16
	reg := obs.New()
	s, err := New(n, WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}

	res, err := s.ApplyDelta(7, nil, []comm.Comm{{Src: 0, Dst: 7}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatalf("opening delta: %v", err)
	}
	if !res.Fallback || res.Size != 2 {
		t.Fatalf("opening delta: %+v, want fallback with size 2", res)
	}
	if s.DeltaSessions() != 1 {
		t.Fatalf("sessions = %d, want 1", s.DeltaSessions())
	}

	res, err = s.ApplyDelta(7, []comm.Comm{{Src: 1, Dst: 2}}, []comm.Comm{{Src: 3, Dst: 6}, {Src: 4, Dst: 5}})
	if err != nil {
		t.Fatalf("warm delta: %v", err)
	}
	if res.Fallback {
		t.Fatalf("warm delta fell back: %+v", res)
	}
	if res.Size != 3 {
		t.Fatalf("size = %d, want 3", res.Size)
	}

	// The warm result must match a from-scratch engine on the same set.
	tr, err := topology.New(n)
	if err != nil {
		t.Fatal(err)
	}
	set := &comm.Set{N: n, Comms: []comm.Comm{{Src: 0, Dst: 7}, {Src: 3, Dst: 6}, {Src: 4, Dst: 5}}}
	ref, err := padr.New(tr, set)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RunRounds()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != want {
		t.Fatalf("warm delta rounds = %d, from-scratch reference = %d", res.Rounds, want)
	}

	if got := reg.Counter("cst_delta_applied_total", "").Value(); got != 1 {
		t.Fatalf("applied counter = %d, want 1", got)
	}
	if got := reg.Counter("cst_delta_fallbacks_total", "").Value(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}

	s.CloseDeltaSession(7)
	if s.DeltaSessions() != 0 {
		t.Fatalf("sessions after close = %d, want 0", s.DeltaSessions())
	}
}

// TestDeltaSessionRejects pins the 400-class behavior: an invalid delta
// leaves the session exactly as it was — still warm, same set — and is
// reported with padr.ErrDelta so the serving layer can map it.
func TestDeltaSessionRejects(t *testing.T) {
	s, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyDelta(1, nil, []comm.Comm{{Src: 0, Dst: 3}}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		remove, add []comm.Comm
	}{
		{"remove absent", []comm.Comm{{Src: 4, Dst: 5}}, nil},
		{"left oriented add", nil, []comm.Comm{{Src: 9, Dst: 8}}},
		{"crossing add", nil, []comm.Comm{{Src: 2, Dst: 5}}},
		{"endpoint conflict", nil, []comm.Comm{{Src: 0, Dst: 1}}},
	}
	for _, tc := range cases {
		res, err := s.ApplyDelta(1, tc.remove, tc.add)
		if !errors.Is(err, padr.ErrDelta) {
			t.Fatalf("%s: err = %v, want padr.ErrDelta", tc.name, err)
		}
		if res.Size != 1 {
			t.Fatalf("%s: size = %d, want untouched session of 1", tc.name, res.Size)
		}
	}

	// The session survived every rejection warm: the next good delta is
	// served incrementally.
	res, err := s.ApplyDelta(1, nil, []comm.Comm{{Src: 4, Dst: 7}})
	if err != nil || res.Fallback {
		t.Fatalf("delta after rejections: %+v, %v — want warm success", res, err)
	}

	// Removes of an unknown session reject instead of opening it.
	if _, err := s.ApplyDelta(99, []comm.Comm{{Src: 0, Dst: 3}}, nil); !errors.Is(err, padr.ErrDelta) {
		t.Fatalf("remove against fresh session: %v, want padr.ErrDelta", err)
	}
	if s.DeltaSessions() != 1 {
		t.Fatalf("rejected open leaked a session: %d open", s.DeltaSessions())
	}
}

// TestDeltaSessionCap pins the 429 path: the cap bounds open sessions,
// and closing one frees a slot.
func TestDeltaSessionCap(t *testing.T) {
	s, err := New(16, WithDeltaSessionCap(2))
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 2; id++ {
		if _, err := s.ApplyDelta(id, nil, nil); err != nil {
			t.Fatalf("session %d: %v", id, err)
		}
	}
	if _, err := s.ApplyDelta(2, nil, nil); !errors.Is(err, ErrSessionsFull) {
		t.Fatalf("over cap: %v, want ErrSessionsFull", err)
	}
	s.CloseDeltaSession(0)
	if _, err := s.ApplyDelta(2, nil, nil); err != nil {
		t.Fatalf("after close: %v", err)
	}
}

// TestDeltaSessionIsolation pins the fabric invariant: a delta session
// schedules over its own private crossbars and never configures (or even
// meter-touches) the simulator's physical switches, which may hold
// in-flight batch circuits.
func TestDeltaSessionIsolation(t *testing.T) {
	const n = 16
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Put a live batch circuit on the fabric, then leave it held.
	if err := s.Submit(comm.Comm{Src: 0, Dst: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dispatch(); err != nil {
		t.Fatal(err)
	}
	before := make([]xbar.Config, len(s.switches))
	units := make([]int, len(s.switches))
	for i, sw := range s.switches {
		if sw != nil {
			before[i] = sw.Config()
			units[i] = sw.Units()
		}
	}

	if _, err := s.ApplyDelta(1, nil, []comm.Comm{{Src: 0, Dst: 15}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyDelta(1, []comm.Comm{{Src: 0, Dst: 15}}, []comm.Comm{{Src: 2, Dst: 13}}); err != nil {
		t.Fatal(err)
	}

	for i, sw := range s.switches {
		if sw == nil {
			continue
		}
		if sw.Config() != before[i] {
			t.Fatalf("physical switch %d reconfigured by a delta session", i)
		}
		if sw.Units() != units[i] {
			t.Fatalf("physical switch %d metered by a delta session", i)
		}
	}
}

// TestDeltaFaultFallback drives a faulted incremental apply: the injected
// Phase 1 fault voids the warm snapshot, the session recovers with a
// clean from-scratch run over the canonical mutated set, and the result
// is flagged Fallback.
func TestDeltaFaultFallback(t *testing.T) {
	const n = 16
	tr, err := topology.New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Run 0 is the session-opening run, run 1 the incremental apply: only
	// the apply is faulted, so the fallback (run 2) completes cleanly. The
	// dropped word sits at leaf 8 — on the dirty path of the second
	// delta's add, so the incremental re-float actually trips over it.
	inj := fault.New([]fault.Fault{{Kind: fault.DropWord, Node: tr.Leaf(8), Run: 1, Round: fault.Phase1}})
	s, err := New(n, WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyDelta(1, nil, []comm.Comm{{Src: 0, Dst: 7}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.ApplyDelta(1, nil, []comm.Comm{{Src: 8, Dst: 15}})
	if err != nil {
		t.Fatalf("faulted delta did not recover: %v", err)
	}
	if !res.Fallback {
		t.Fatalf("faulted delta served warm: %+v — the fault never fired?", res)
	}
	if res.Size != 2 {
		t.Fatalf("size = %d, want 2", res.Size)
	}

	// After the clean fallback the session is warm again.
	res, err = s.ApplyDelta(1, []comm.Comm{{Src: 8, Dst: 15}}, nil)
	if err != nil || res.Fallback {
		t.Fatalf("post-recovery delta: %+v, %v — want warm success", res, err)
	}
}

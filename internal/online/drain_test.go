package online

import (
	"testing"

	"cst/internal/comm"
	"cst/internal/fault"
)

// TestDrainLosesNothing is the foundation the serving layer's graceful
// drain relies on: a simulator carrying queued batches, mid-stream
// arrivals and a poisoned batch (quarantined after exhausting its dispatch
// attempts) is quiesced, and every submitted request must surface exactly
// once — either as a completion or as a quarantine record — with all
// busyPE reservations released.
func TestDrainLosesNothing(t *testing.T) {
	// Freeze the root switch for the first MaxDispatchAttempts engine runs:
	// the first dispatched batch fails every attempt and is quarantined;
	// every later run is clean.
	var plan []fault.Fault
	for run := 0; run < MaxDispatchAttempts; run++ {
		plan = append(plan, fault.Fault{
			Kind: fault.FreezeSwitch, Node: 1, Run: run, Round: 0, Duration: 64,
		})
	}
	s, err := New(16, WithFaults(fault.New(plan)))
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		src, dst, arrival int
	}
	submitted := map[key]bool{}
	submit := func(comms ...comm.Comm) {
		t.Helper()
		for _, c := range comms {
			if err := s.Submit(c); err != nil {
				t.Fatalf("submit %s: %v", c, err)
			}
			submitted[key{c.Src, c.Dst, s.Now()}] = true
		}
	}

	// quiesce dispatches until the queue is empty, tolerating quarantine
	// errors (the batch is expelled and reported via TakeQuarantined) —
	// exactly the loop the serve layer's flush runs. A dispatch that errors
	// without shrinking the queue would wedge the loop, so guard progress.
	quiesce := func() {
		t.Helper()
		for s.QueueLen() > 0 {
			before := s.QueueLen()
			_, err := s.Dispatch()
			if err != nil && s.QueueLen() >= before {
				t.Fatalf("dispatch made no progress (queue %d): %v", before, err)
			}
		}
	}

	// First wave: a nested rightward group plus leftward traffic. The
	// rightward batch is dominant, dispatches first and gets quarantined.
	submit(
		comm.Comm{Src: 0, Dst: 7},
		comm.Comm{Src: 1, Dst: 6},
		comm.Comm{Src: 2, Dst: 5},
		comm.Comm{Src: 12, Dst: 9},
		comm.Comm{Src: 15, Dst: 13},
	)
	if _, err := s.Dispatch(); err == nil {
		t.Fatal("first dispatch: want quarantine error, got nil")
	}

	// Mid-stream: the leftward requests are still queued ("in flight"
	// between dispatches) when more work arrives on the freed PEs.
	if s.QueueLen() == 0 {
		t.Fatal("expected leftward requests still queued after quarantine")
	}
	submit(
		comm.Comm{Src: 0, Dst: 3},
		comm.Comm{Src: 4, Dst: 7},
		comm.Comm{Src: 8, Dst: 11},
	)

	// Consume the incremental views mid-stream; the remainder is taken
	// after the final quiesce. Concatenated they must cover everything.
	var completed []Completed
	var quarantined []Request
	completed = append(completed, s.TakeCompleted()...)
	quarantined = append(quarantined, s.TakeQuarantined()...)

	quiesce()
	submit(comm.Comm{Src: 5, Dst: 2}, comm.Comm{Src: 10, Dst: 14})
	quiesce()
	completed = append(completed, s.TakeCompleted()...)
	quarantined = append(quarantined, s.TakeQuarantined()...)

	st := s.Finish()
	if st.Leftover != 0 {
		t.Fatalf("leftover = %d, want 0", st.Leftover)
	}
	if got := s.BusyPEs(); got != 0 {
		t.Fatalf("busy PEs after drain = %d, want 0 (leaked reservations)", got)
	}
	if len(completed) != len(st.Completed) || len(quarantined) != len(st.Quarantined) {
		t.Fatalf("incremental views saw %d/%d records, stats have %d/%d",
			len(completed), len(quarantined), len(st.Completed), len(st.Quarantined))
	}

	// Every submitted request resolves exactly once.
	resolved := map[key]string{}
	note := func(k key, how string) {
		t.Helper()
		if !submitted[k] {
			t.Fatalf("%s record %v was never submitted", how, k)
		}
		if prev, dup := resolved[k]; dup {
			t.Fatalf("request %v double-counted: %s and %s", k, prev, how)
		}
		resolved[k] = how
	}
	for _, c := range completed {
		note(key{c.Comm.Src, c.Comm.Dst, c.Arrival}, "completed")
	}
	for _, r := range quarantined {
		note(key{r.Comm.Src, r.Comm.Dst, r.Arrival}, "quarantined")
	}
	if len(resolved) != len(submitted) {
		t.Fatalf("resolved %d of %d submitted requests", len(resolved), len(submitted))
	}
	if len(quarantined) == 0 {
		t.Fatal("fault plan produced no quarantine; test lost its poisoned-batch coverage")
	}

	// The freed PEs are genuinely reusable: every PE accepts new work.
	for pe := 0; pe < 16; pe += 2 {
		if err := s.Submit(comm.Comm{Src: pe, Dst: pe + 1}); err != nil {
			t.Fatalf("PE %d not reusable after drain: %v", pe, err)
		}
	}
	quiesce()
	if got := s.BusyPEs(); got != 0 {
		t.Fatalf("busy PEs after reuse drain = %d, want 0", got)
	}
}

// TestTakeCursorsAreIncremental pins the Take APIs' cursor semantics on a
// clean run: records are handed out exactly once, Stats keeps everything.
func TestTakeCursorsAreIncremental(t *testing.T) {
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for round := 0; round < 3; round++ {
		for _, c := range []comm.Comm{{Src: 0, Dst: 3}, {Src: 4, Dst: 6}} {
			if err := s.Submit(c); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		if got := len(s.TakeCompleted()); got != 2 {
			t.Fatalf("round %d: TakeCompleted = %d records, want 2", round, got)
		}
		if got := len(s.TakeCompleted()); got != 0 {
			t.Fatalf("round %d: second TakeCompleted = %d records, want 0", round, got)
		}
	}
	if got := len(s.Finish().Completed); got != total {
		t.Fatalf("stats retain %d completions, want %d", got, total)
	}
	if got := len(s.TakeQuarantined()); got != 0 {
		t.Fatalf("TakeQuarantined on clean run = %d, want 0", got)
	}
}

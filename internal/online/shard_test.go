package online

import (
	"math/rand"
	"reflect"
	"testing"

	"cst/internal/comm"
)

// driveLoad runs the same deterministic random load through a simulator and
// returns its final stats.
func driveLoad(t *testing.T, sim *Simulator, seed int64) *Stats {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < 60; step++ {
		sim.SubmitRandom(rng, 5)
		if sim.QueueLen() >= 6 {
			if _, err := sim.Dispatch(); err != nil {
				t.Fatal(err)
			}
		} else {
			sim.Tick()
		}
	}
	if err := sim.Drain(); err != nil {
		t.Fatal(err)
	}
	return sim.Finish()
}

// TestShardedMatchesUnsharded pins the sharding contract: the sharded
// dispatcher reproduces the unsharded one exactly — same completions, same
// timing, same cumulative power ledger — across several random loads.
func TestShardedMatchesUnsharded(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plain, err := New(128)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := New(128, WithSharding())
		if err != nil {
			t.Fatal(err)
		}
		ps := driveLoad(t, plain, seed)
		ss := driveLoad(t, sharded, seed)

		if !reflect.DeepEqual(ps.Completed, ss.Completed) {
			t.Errorf("seed %d: completions diverged", seed)
		}
		if ps.Batches != ss.Batches || ps.Rounds != ss.Rounds || ps.IdleRounds != ss.IdleRounds {
			t.Errorf("seed %d: shape diverged: plain %d/%d/%d sharded %d/%d/%d",
				seed, ps.Batches, ps.Rounds, ps.IdleRounds, ss.Batches, ss.Rounds, ss.IdleRounds)
		}
		if !reflect.DeepEqual(ps.Report, ss.Report) {
			t.Errorf("seed %d: power ledgers diverged: plain %d units, sharded %d units",
				seed, ps.Report.TotalUnits(), ss.Report.TotalUnits())
		}
	}
}

// TestShardingSplitsDisjointPairs checks the planner actually shards: a
// batch of widely separated pairs has disjoint subtree footprints, so the
// plan must produce more than one group, and the result must still be a
// one-round batch.
func TestShardingSplitsDisjointPairs(t *testing.T) {
	sim, err := New(64, WithSharding())
	if err != nil {
		t.Fatal(err)
	}
	// Four pairs in four different 16-leaf subtrees.
	for _, c := range []comm.Comm{{Src: 1, Dst: 3}, {Src: 17, Dst: 20}, {Src: 33, Dst: 40}, {Src: 50, Dst: 60}} {
		if err := sim.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Dispatch(); err != nil {
		t.Fatal(err)
	}
	if len(sim.shards) < 2 {
		t.Fatalf("expected >= 2 pooled shards after a disjoint batch, got %d", len(sim.shards))
	}
	st := sim.Finish()
	if st.Rounds != 1 {
		t.Errorf("disjoint width-1 pairs need 1 round, got %d", st.Rounds)
	}
	if len(st.Completed) != 4 {
		t.Errorf("completed %d of 4", len(st.Completed))
	}
}

// TestShardingLeftOriented exercises the reflected shard path: left-oriented
// batches run mirrored, so shard roots must be reflected too.
func TestShardingLeftOriented(t *testing.T) {
	plain, _ := New(64)
	sharded, _ := New(64, WithSharding())
	for _, sim := range []*Simulator{plain, sharded} {
		for _, c := range []comm.Comm{{Src: 3, Dst: 1}, {Src: 20, Dst: 17}, {Src: 40, Dst: 33}, {Src: 60, Dst: 50}} {
			if err := sim.Submit(c); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sim.Dispatch(); err != nil {
			t.Fatal(err)
		}
	}
	ps, ss := plain.Finish(), sharded.Finish()
	if !reflect.DeepEqual(ps.Report, ss.Report) {
		t.Errorf("left-oriented ledgers diverged: plain %d units, sharded %d",
			ps.Report.TotalUnits(), ss.Report.TotalUnits())
	}
	if !reflect.DeepEqual(ps.Completed, ss.Completed) {
		t.Error("left-oriented completions diverged")
	}
}

package online

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
)

func TestSubmitValidation(t *testing.T) {
	sim, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(comm.Comm{Src: 0, Dst: 5}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(comm.Comm{Src: 5, Dst: 9}); err == nil {
		t.Error("busy endpoint: want error")
	}
	if err := sim.Submit(comm.Comm{Src: 3, Dst: 3}); err == nil {
		t.Error("self loop: want error")
	}
	if err := sim.Submit(comm.Comm{Src: 0, Dst: 99}); err == nil {
		t.Error("out of range: want error")
	}
	if sim.QueueLen() != 1 {
		t.Fatalf("queue = %d", sim.QueueLen())
	}
	if _, err := New(6); err == nil {
		t.Error("non power of two: want error")
	}
}

func TestDispatchSingleBatch(t *testing.T) {
	sim, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	// Two nested rightward requests: one batch of width 2.
	mustSubmit(t, sim, comm.Comm{Src: 0, Dst: 15})
	mustSubmit(t, sim, comm.Comm{Src: 1, Dst: 14})
	worked, err := sim.Dispatch()
	if err != nil {
		t.Fatal(err)
	}
	if !worked {
		t.Fatal("dispatch did nothing")
	}
	if sim.Now() != 2 {
		t.Fatalf("time advanced to %d, want 2 (width-2 batch)", sim.Now())
	}
	stats := sim.Finish()
	if len(stats.Completed) != 2 || stats.Batches != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	for _, c := range stats.Completed {
		if c.Finished != 2 || c.Arrival != 0 {
			t.Fatalf("completion record: %+v", c)
		}
	}
	if stats.MeanLatency() != 2 || stats.MaxLatency() != 2 {
		t.Fatalf("latency: mean %v max %v", stats.MeanLatency(), stats.MaxLatency())
	}
}

func TestDispatchSplitsOrientations(t *testing.T) {
	sim, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, sim, comm.Comm{Src: 0, Dst: 3})   // rightward
	mustSubmit(t, sim, comm.Comm{Src: 15, Dst: 12}) // leftward
	mustSubmit(t, sim, comm.Comm{Src: 4, Dst: 7})   // rightward
	if err := sim.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := sim.Finish()
	if stats.Batches != 2 {
		t.Fatalf("batches = %d, want 2 (one per orientation)", stats.Batches)
	}
	if len(stats.Completed) != 3 || stats.Leftover != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestCrossingRequestsDeferred(t *testing.T) {
	sim, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, sim, comm.Comm{Src: 0, Dst: 4})
	mustSubmit(t, sim, comm.Comm{Src: 2, Dst: 6}) // crosses the first
	worked, err := sim.Dispatch()
	if err != nil || !worked {
		t.Fatalf("dispatch: %v/%v", worked, err)
	}
	if sim.QueueLen() != 1 {
		t.Fatalf("crossing request should remain queued, queue=%d", sim.QueueLen())
	}
	if err := sim.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := sim.Finish()
	if stats.Batches != 2 || len(stats.Completed) != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	// The deferred request finished later than the first.
	if stats.Completed[1].Finished <= stats.Completed[0].Finished {
		t.Fatalf("deferral ordering wrong: %+v", stats.Completed)
	}
}

// A random load run: everything submitted eventually completes, endpoints
// recycle, and the shared crossbars keep per-switch power far below the
// total round count.
func TestRandomLoadRun(t *testing.T) {
	sim, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	submitted := 0
	for step := 0; step < 200; step++ {
		submitted += sim.SubmitRandom(rng, 3)
		if sim.QueueLen() >= 8 {
			if _, err := sim.Dispatch(); err != nil {
				t.Fatal(err)
			}
		} else {
			sim.Tick()
		}
	}
	if err := sim.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := sim.Finish()
	if len(stats.Completed) != submitted {
		t.Fatalf("completed %d of %d", len(stats.Completed), submitted)
	}
	if stats.Leftover != 0 {
		t.Fatalf("leftover = %d", stats.Leftover)
	}
	if stats.MeanLatency() <= 0 {
		t.Fatalf("mean latency = %v", stats.MeanLatency())
	}
	if stats.Report.MaxUnits() > 3*stats.Rounds {
		t.Fatalf("power out of range: %s over %d rounds", stats.Report.Summary(), stats.Rounds)
	}
	t.Logf("submitted=%d batches=%d busyRounds=%d meanLat=%.1f maxLat=%d power=%s",
		submitted, stats.Batches, stats.Rounds, stats.MeanLatency(), stats.MaxLatency(),
		stats.Report.Summary())
}

func TestDispatchEmptyQueue(t *testing.T) {
	sim, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	worked, err := sim.Dispatch()
	if err != nil || worked {
		t.Fatalf("empty dispatch: %v/%v", worked, err)
	}
	sim.Tick()
	if sim.Now() != 1 {
		t.Fatalf("tick did not advance time")
	}
	stats := sim.Finish()
	if stats.IdleRounds != 1 {
		t.Fatalf("idle rounds = %d", stats.IdleRounds)
	}
}

func mustSubmit(t *testing.T, sim *Simulator, c comm.Comm) {
	t.Helper()
	if err := sim.Submit(c); err != nil {
		t.Fatal(err)
	}
}

// Busy must mirror Submit's endpoint reservation (out-of-range reads as
// busy) so admission layers can pre-check without allocating an error.
func TestBusyMirrorsReservation(t *testing.T) {
	sim, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Busy(0, 5) {
		t.Error("fresh simulator: Busy(0,5) = true")
	}
	if !sim.Busy(-1, 5) || !sim.Busy(0, 16) {
		t.Error("out-of-range endpoints must read busy")
	}
	if err := sim.Submit(comm.Comm{Src: 0, Dst: 5}); err != nil {
		t.Fatal(err)
	}
	if !sim.Busy(0, 7) || !sim.Busy(7, 5) || sim.Busy(7, 8) {
		t.Error("Busy disagrees with the reservation after Submit")
	}
	if _, err := sim.Dispatch(); err != nil {
		t.Fatal(err)
	}
	if sim.Busy(0, 5) {
		t.Error("endpoints still busy after dispatch")
	}
}

// Recycle must truncate fully consumed record lists (bounding a serving
// simulator's memory) and refuse to drop records a Take has not seen.
func TestRecycleBoundsRecords(t *testing.T) {
	sim, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(comm.Comm{Src: 0, Dst: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Dispatch(); err != nil {
		t.Fatal(err)
	}
	// Unconsumed records survive Recycle.
	sim.Recycle()
	if got := len(sim.TakeCompleted()); got != 1 {
		t.Fatalf("TakeCompleted after premature Recycle = %d records, want 1", got)
	}
	// Consumed records are truncated, and the cursor rewinds with them.
	sim.Recycle()
	if len(sim.stats.Completed) != 0 || sim.takenCompleted != 0 {
		t.Fatalf("after Recycle: %d records, cursor %d, want 0/0",
			len(sim.stats.Completed), sim.takenCompleted)
	}
	if err := sim.Submit(comm.Comm{Src: 2, Dst: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Dispatch(); err != nil {
		t.Fatal(err)
	}
	got := sim.TakeCompleted()
	if len(got) != 1 || got[0].Comm.Src != 2 {
		t.Fatalf("post-Recycle records = %+v, want the new completion only", got)
	}
}

// Steady-state dispatching must not allocate for the batch/rest partition:
// the queue double-buffer keeps both arrays alive across calls.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	sim, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	submit := func() {
		t.Helper()
		// Two nested pairs plus one crossing request, so both the batch and
		// the rest partition are exercised every dispatch.
		for _, c := range []comm.Comm{{Src: 1, Dst: 8}, {Src: 2, Dst: 4}, {Src: 6, Dst: 12}} {
			if err := sim.Submit(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the scratch arrays and the pooled engine.
	for i := 0; i < 3; i++ {
		submit()
		if err := sim.Drain(); err != nil {
			t.Fatal(err)
		}
		sim.TakeCompleted()
		sim.Recycle()
	}
	avg := testing.AllocsPerRun(50, func() {
		submit()
		if err := sim.Drain(); err != nil {
			t.Fatal(err)
		}
		sim.TakeCompleted()
		sim.Recycle()
	})
	if avg > 0 {
		t.Fatalf("steady-state dispatch allocates %.2f/iteration, want 0", avg)
	}
}

package online

import (
	"errors"
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/obs"
)

// TestDispatchRetryRecoversFromTransientFault pins the retry path: a fault
// scoped to the first engine run kills attempt one, the retry (a fresh
// engine over restored crossbars) succeeds, and the batch completes with no
// quarantine.
func TestDispatchRetryRecoversFromTransientFault(t *testing.T) {
	inj := fault.New([]fault.Fault{
		// Freeze the root on injector run 0 only: attempt 1 dies, the retry
		// (run 1) sees a clean plan.
		{Kind: fault.FreezeSwitch, Node: 1, Run: 0, Round: 0, Duration: 64},
	})
	s, err := New(8, WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(comm.Comm{Src: 0, Dst: 3}); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Dispatch()
	if err != nil {
		t.Fatalf("dispatch must recover via retry, got: %v", err)
	}
	if !ok {
		t.Fatal("dispatch reported no work done")
	}
	stats := s.Finish()
	if stats.Retries != 1 {
		t.Errorf("Retries = %d, want 1", stats.Retries)
	}
	if len(stats.Quarantined) != 0 {
		t.Errorf("Quarantined = %v, want none", stats.Quarantined)
	}
	if len(stats.Completed) != 1 {
		t.Errorf("Completed = %d requests, want 1", len(stats.Completed))
	}
}

// TestDispatchQuarantinesPoisonedBatch pins the quarantine path: a fault
// hitting every attempt exhausts the retries, the batch is expelled with a
// typed error, its endpoints are freed, and — the dirty-pool regression —
// the next borrower of the pooled engine gets a clean one, so a following
// healthy batch schedules correctly over the restored crossbars.
func TestDispatchQuarantinesPoisonedBatch(t *testing.T) {
	var plan []fault.Fault
	for run := 0; run < MaxDispatchAttempts; run++ {
		plan = append(plan, fault.Fault{
			Kind: fault.FreezeSwitch, Node: 1, Run: run, Round: 0, Duration: 64,
		})
	}
	reg := obs.New()
	s, err := New(8, WithFaults(fault.New(plan, fault.WithRegistry(reg))), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	poisoned := comm.Comm{Src: 0, Dst: 3}
	if err := s.Submit(poisoned); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Dispatch()
	if err == nil {
		t.Fatal("poisoned batch must error")
	}
	if ok {
		t.Fatal("quarantining dispatch reported work done")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("quarantine error is untyped: %v", err)
	}
	if !errors.Is(err, fault.ErrSwitchDown) {
		t.Fatalf("err = %v, want fault.ErrSwitchDown in the chain", err)
	}
	if s.QueueLen() != 0 {
		t.Fatalf("queue holds %d requests after quarantine, want 0", s.QueueLen())
	}

	// Endpoints must be free again: resubmitting the same pair is legal.
	if err := s.Submit(poisoned); err != nil {
		t.Fatalf("endpoints still busy after quarantine: %v", err)
	}
	// The fault plan is spent (runs 0..2); this dispatch borrows the pooled
	// engine that the failed attempts dirtied — it must have been discarded,
	// not handed over mid-schedule.
	if ok, err := s.Dispatch(); err != nil || !ok {
		t.Fatalf("dispatch after quarantine: ok=%v err=%v", ok, err)
	}

	stats := s.Finish()
	if len(stats.Quarantined) != 1 || stats.Quarantined[0].Comm != poisoned {
		t.Errorf("Quarantined = %v, want exactly %v", stats.Quarantined, poisoned)
	}
	if len(stats.Completed) != 1 {
		t.Errorf("Completed = %d requests, want 1", len(stats.Completed))
	}
	if stats.Retries != MaxDispatchAttempts-1 {
		t.Errorf("Retries = %d, want %d", stats.Retries, MaxDispatchAttempts-1)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cst_online_quarantined_total"]; got != 1 {
		t.Errorf("cst_online_quarantined_total = %d, want 1", got)
	}
	if got := snap.Counters["cst_online_retries_total"]; got != int64(MaxDispatchAttempts-1) {
		t.Errorf("cst_online_retries_total = %d, want %d", got, MaxDispatchAttempts-1)
	}
}

// TestPoolEngineCleanAfterFailure is the narrow dirty-pool regression: run
// a faulty batch to failure, then drive many clean batches through the same
// simulator and check the results against an unfaulted twin fed the same
// requests — byte-for-byte equal schedules prove the pool never leaked a
// mid-schedule engine or a half-configured crossbar.
func TestPoolEngineCleanAfterFailure(t *testing.T) {
	plan := []fault.Fault{}
	for run := 0; run < MaxDispatchAttempts; run++ {
		plan = append(plan, fault.Fault{
			Kind: fault.FreezeSwitch, Node: 1, Run: run, Round: 0, Duration: 64,
		})
	}
	faulty, err := New(16, WithFaults(fault.New(plan)))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1 on the faulty simulator dies and is quarantined; the clean
	// twin never sees it, so both proceed with identical queues.
	if err := faulty.Submit(comm.Comm{Src: 0, Dst: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Dispatch(); err == nil {
		t.Fatal("poisoned batch must error")
	}

	rngA, rngB := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	for i := 0; i < 8; i++ {
		if got, want := faulty.SubmitRandom(rngA, 4), clean.SubmitRandom(rngB, 4); got != want {
			t.Fatalf("step %d: acceptance diverged: %d vs %d", i, got, want)
		}
		if err := faulty.Drain(); err != nil {
			t.Fatalf("step %d: faulty-sim drain: %v", i, err)
		}
		if err := clean.Drain(); err != nil {
			t.Fatalf("step %d: clean-sim drain: %v", i, err)
		}
	}
	a, b := faulty.Finish(), clean.Finish()
	if len(a.Completed) != len(b.Completed) {
		t.Fatalf("completions diverged: %d vs %d", len(a.Completed), len(b.Completed))
	}
	for i := range a.Completed {
		if a.Completed[i].Comm != b.Completed[i].Comm {
			t.Fatalf("completion %d diverged: %v vs %v", i, a.Completed[i].Comm, b.Completed[i].Comm)
		}
	}
}

// Package online runs the scheduler against dynamically arriving traffic —
// the setting a deployed CST interconnect actually faces, and a natural
// extension of the paper's one-shot model.
//
// Requests (single communications) arrive over time. Whenever the fabric is
// idle, the dispatcher drains a batch from the queue: it picks the
// orientation with more pending requests, greedily builds a maximal
// *well-nested* subset of that orientation in FIFO order (skipping requests
// that would cross an accepted one), and runs the paper's algorithm on the
// batch over the shared crossbars (leftward batches run through the
// reflection adapter). A batch of width w occupies the fabric for w rounds;
// arrivals continue to queue meanwhile.
//
// Reported metrics: per-request latency (completion round − arrival round),
// batch shapes, and the cumulative power ledger — which stays small because
// crossbars are shared across batches and held configurations are free.
package online

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/padr"
	"cst/internal/power"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// MaxDispatchAttempts bounds how often Dispatch re-runs a failed batch
// (first attempt plus retries) before quarantining it. Retries run on a
// fresh engine over restored crossbars with exponential simulated-round
// backoff, so a transient fault (gone on the next injector run) recovers,
// while a poisoned set fails fast and is expelled from the queue.
const MaxDispatchAttempts = 3

// Request is one communication arriving at a given round.
type Request struct {
	// Comm is the communication (either orientation).
	Comm comm.Comm
	// Arrival is the round the request entered the queue.
	Arrival int
}

// Completed records one fulfilled request.
type Completed struct {
	Request
	// Dispatched is the round its batch started; Finished the round it
	// completed.
	Dispatched, Finished int
}

// Stats summarizes a run.
type Stats struct {
	// Completed lists fulfilled requests in completion order.
	Completed []Completed
	// Batches counts dispatches; Rounds is the total fabric rounds
	// consumed (busy rounds); IdleRounds counts rounds with an empty queue.
	Batches, Rounds, IdleRounds int
	// Report is the cumulative power ledger over the whole run.
	Report *power.Report
	// Leftover is the number of requests still queued when the run ended.
	Leftover int
	// Retries counts batch re-runs after a dispatch failure.
	Retries int
	// Quarantined lists requests expelled after a batch exhausted its
	// dispatch attempts; their endpoints were freed so the queue keeps
	// flowing.
	Quarantined []Request
}

// MeanLatency returns the average completion latency in rounds.
func (s *Stats) MeanLatency() float64 {
	if len(s.Completed) == 0 {
		return 0
	}
	total := 0
	for _, c := range s.Completed {
		total += c.Finished - c.Arrival
	}
	return float64(total) / float64(len(s.Completed))
}

// MaxLatency returns the worst completion latency in rounds.
func (s *Stats) MaxLatency() int {
	maxl := 0
	for _, c := range s.Completed {
		if l := c.Finished - c.Arrival; l > maxl {
			maxl = l
		}
	}
	return maxl
}

// Simulator drives an online run.
type Simulator struct {
	tree     *topology.Tree
	switches []*xbar.Switch // physical crossbars, indexed by node
	queue    []Request
	busyPE   []bool
	now      int
	stats    Stats
	shard    bool
	inj      *fault.Injector

	// Pooled scheduling state, reused across Dispatch calls: one engine for
	// whole batches, one per shard slot, a scratch Set for the batch, and a
	// scratch crossbar snapshot for the failure rollback.
	eng      *padr.Engine
	shards   []*shardCtx
	batchSet *comm.Set
	cfgSnap  []xbar.Config

	// Dispatch scratch: the batch under construction and the double-buffer
	// backing the post-dispatch queue. Dispatch partitions s.queue into
	// batchScratch + queueAlt and then swaps queueAlt in as the queue, so
	// steady-state dispatching reuses two arrays instead of allocating two
	// slices per call.
	batchScratch []Request
	queueAlt     []Request

	// observability (all optional; nil means uninstrumented)
	reg    *obs.Registry
	tracer *obs.Tracer
	met    simMetrics
	// span is the request-scoped trace context the serving layer arms
	// around a dispatch wave (see SetSpanContext); zero means untraced.
	span obs.SpanContext

	// Take cursors: how far TakeCompleted/TakeQuarantined have consumed the
	// stats' append-only record lists.
	takenCompleted   int
	takenQuarantined int

	// Delta sessions (see delta.go): long-lived sets scheduled
	// incrementally on warm engines over private crossbars.
	sessions map[uint64]*deltaSession
	deltaCap int
	dmet     deltaMetrics
}

// shardCtx is one pooled shard slot: an engine plus its crossbar view. The
// view aliases the simulator's physical switches inside the shard's subtree
// and private inert crossbars everywhere else, so concurrently running
// shards never write (or meter-read) each other's switches.
type shardCtx struct {
	eng    *padr.Engine
	view   []*xbar.Switch
	fill   []*xbar.Switch
	set    *comm.Set
	rounds int
	err    error
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithRegistry publishes the dispatcher's cst_online_* series to r, and
// threads the registry through to the inner padr engines so their
// cst_padr_* series accumulate across batches. A nil registry leaves the
// simulator uninstrumented.
func WithRegistry(r *obs.Registry) Option {
	return func(s *Simulator) { s.reg = r }
}

// WithTracer streams batch lifecycle events (batch.dispatch, batch.done)
// to t, and threads the tracer through to the inner padr engines for
// per-round detail. A nil tracer no-ops.
func WithTracer(t *obs.Tracer) Option {
	return func(s *Simulator) { s.tracer = t }
}

// SetSpanContext arms (or, with the zero context, disarms) a span-trace
// context on the simulator: until changed, every Dispatch stamps its
// batch.* trace events with the trace id and emits one "online.batch"
// child span per dispatched batch. The serving layer sets this around a
// flush wave that contains a sampled request. The simulator is
// goroutine-confined, so no synchronization is needed.
func (s *Simulator) SetSpanContext(ctx obs.SpanContext) { s.span = ctx }

// traceID renders the armed trace id for event stamping ("" when
// untraced, so the field marshals away).
func (s *Simulator) traceID() string {
	if !s.span.Valid() {
		return ""
	}
	return s.span.Trace.String()
}

// WithFaults threads a fault injector into the batch engines: every
// dispatched batch runs under injection, a failed batch is retried on a
// fresh engine (the transient-fault recovery path), and a batch that keeps
// failing is quarantined. Sharding is skipped while faults are armed — the
// injector's run counter is advanced per engine run and concurrent shard
// engines would race it. A nil injector is inert.
func WithFaults(in *fault.Injector) Option {
	return func(s *Simulator) { s.inj = in }
}

// simMetrics holds the dispatcher's resolved metric handles; the all-nil
// zero value (nil registry) makes every operation a no-op.
type simMetrics struct {
	requests    *obs.Counter
	rejected    *obs.Counter
	batches     *obs.Counter
	completed   *obs.Counter
	busy        *obs.Counter
	idle        *obs.Counter
	errs        *obs.Counter
	retries     *obs.Counter
	quarantined *obs.Counter
	units       *obs.Counter
	queueLen    *obs.Gauge
	batchSize   *obs.Histogram
	latency     *obs.Histogram
}

// roundBuckets spans request latencies and batch sizes, both measured in
// small integer counts: 1, 2, 4, … 512.
func roundBuckets() []float64 { return obs.ExponentialBuckets(1, 2, 10) }

func newSimMetrics(r *obs.Registry) simMetrics {
	return simMetrics{
		requests:    r.Counter("cst_online_requests_total", "requests accepted into the queue"),
		rejected:    r.Counter("cst_online_rejected_total", "requests rejected (bad endpoints or busy PEs)"),
		batches:     r.Counter("cst_online_batches_total", "well-nested batches dispatched"),
		completed:   r.Counter("cst_online_completed_total", "requests fulfilled"),
		busy:        r.Counter("cst_online_busy_rounds_total", "fabric rounds spent executing batches"),
		idle:        r.Counter("cst_online_idle_rounds_total", "rounds with nothing dispatched"),
		errs:        r.Counter("cst_online_errors_total", "dispatch failures"),
		retries:     r.Counter("cst_online_retries_total", "batch re-runs after a dispatch failure"),
		quarantined: r.Counter("cst_online_quarantined_total", "requests expelled after exhausting dispatch attempts"),
		units:       r.Counter("cst_online_power_units_total", "cumulative power units at Finish"),
		queueLen:    r.Gauge("cst_online_queue_len", "requests currently queued"),
		batchSize:   r.Histogram("cst_online_batch_size", "communications per dispatched batch", roundBuckets()),
		latency:     r.Histogram("cst_online_request_latency_rounds", "completion round minus arrival round", roundBuckets()),
	}
}

// WithSharding lets Dispatch split a batch into independent sub-batches
// whose circuits live in disjoint subtrees and run them through parallel
// pooled engines. The shards reproduce the unsharded dispatch exactly: no
// circuit touches a switch above its sub-batch's subtree root, the batch
// width is the max over shard widths, and the power ledger is bitwise
// identical. Sharding is silently skipped when a registry or tracer is
// attached, because the inner engines' shared metric attribution is only
// well-defined for one engine at a time.
func WithSharding() Option {
	return func(s *Simulator) { s.shard = true }
}

// New builds a simulator over a CST with n leaves.
func New(n int, opts ...Option) (*Simulator, error) {
	t, err := topology.New(n)
	if err != nil {
		return nil, err
	}
	sim := &Simulator{
		tree:     t,
		switches: make([]*xbar.Switch, n),
		busyPE:   make([]bool, n),
		batchSet: &comm.Set{N: n},
		sessions: make(map[uint64]*deltaSession),
		deltaCap: DefaultMaxDeltaSessions,
	}
	t.EachSwitch(func(nd topology.Node) { sim.switches[nd] = xbar.NewSwitch() })
	for _, o := range opts {
		o(sim)
	}
	sim.met = newSimMetrics(sim.reg)
	sim.dmet = newDeltaMetrics(sim.reg)
	return sim, nil
}

// Now returns the current round.
func (s *Simulator) Now() int { return s.now }

// QueueLen returns the number of pending requests.
func (s *Simulator) QueueLen() int { return len(s.queue) }

// Submit enqueues a request at the current round. It rejects requests whose
// endpoints are already in use by a queued request (a PE sources or
// receives one transfer at a time).
func (s *Simulator) Submit(c comm.Comm) error {
	n := s.tree.Leaves()
	if c.Src < 0 || c.Src >= n || c.Dst < 0 || c.Dst >= n || c.Src == c.Dst {
		s.met.rejected.Inc()
		return fmt.Errorf("online: bad request %s", c)
	}
	if s.busyPE[c.Src] || s.busyPE[c.Dst] {
		s.met.rejected.Inc()
		return fmt.Errorf("online: endpoint of %s is busy", c)
	}
	s.busyPE[c.Src], s.busyPE[c.Dst] = true, true
	s.queue = append(s.queue, Request{Comm: c, Arrival: s.now})
	s.met.requests.Inc()
	s.met.queueLen.Set(int64(len(s.queue)))
	return nil
}

// SubmitRandom submits up to k random requests over currently free PEs,
// returning how many were accepted.
func (s *Simulator) SubmitRandom(rng *rand.Rand, k int) int {
	accepted := 0
	n := s.tree.Leaves()
	for i := 0; i < k; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || s.busyPE[a] || s.busyPE[b] {
			continue
		}
		if err := s.Submit(comm.Comm{Src: a, Dst: b}); err == nil {
			accepted++
		}
	}
	return accepted
}

// Tick advances one idle round (used when the caller wants time to pass
// without dispatching).
func (s *Simulator) Tick() {
	s.now++
	s.stats.IdleRounds++
	s.met.idle.Inc()
}

// Dispatch drains one batch: it selects the dominant orientation, builds a
// maximal FIFO well-nested batch, runs the scheduler, advances time by the
// batch's round count, and frees the endpoints. It reports whether any work
// was done.
func (s *Simulator) Dispatch() (bool, error) {
	if len(s.queue) == 0 {
		return false, nil
	}
	rightward := 0
	for _, r := range s.queue {
		if r.Comm.RightOriented() {
			rightward++
		}
	}
	wantRight := rightward*2 >= len(s.queue)

	// FIFO greedy well-nested batch of the chosen orientation. Both
	// partitions build in reused scratch arrays; rest becomes the queue by
	// a buffer swap below.
	batch := s.batchScratch[:0]
	rest := s.queueAlt[:0]
	for _, r := range s.queue {
		c := r.Comm
		if c.RightOriented() != wantRight {
			rest = append(rest, r)
			continue
		}
		// Crosses is orientation-agnostic and mirror-invariant, so the
		// left-oriented batch can be tested in place — no need to mirror
		// each pair onto the reflected line first.
		crosses := false
		for _, acc := range batch {
			if c.Crosses(acc.Comm) {
				crosses = true
				break
			}
		}
		if crosses {
			rest = append(rest, r)
			continue
		}
		batch = append(batch, r)
	}
	if len(batch) == 0 {
		// Everything of the dominant orientation crosses — cannot happen
		// since a single request never crosses itself; defensive.
		return false, fmt.Errorf("online: empty batch with %d pending", len(s.queue))
	}

	set := s.batchSet
	set.Comms = set.Comms[:0]
	for _, r := range batch {
		c := r.Comm
		if !wantRight {
			c = comm.Comm{Src: s.tree.Leaves() - 1 - c.Src, Dst: s.tree.Leaves() - 1 - c.Dst}
		}
		set.Comms = append(set.Comms, c)
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{
			Type: "batch.dispatch", Engine: "online", Round: s.now, N: len(batch),
			Trace: s.traceID(),
		})
	}
	var batchStart time.Time
	if s.tracer != nil && s.span.Valid() {
		batchStart = time.Now()
	}
	// Run the batch, retrying a failure on a fresh engine over restored
	// crossbars. The backoff is exponential in simulated rounds (1, 2, …):
	// a transient fault (scoped to one injector run) has expired by the
	// retry, while a poisoned set fails every attempt and is quarantined
	// below so it cannot wedge the queue.
	var rounds int
	var err error
	for attempt := 0; attempt < MaxDispatchAttempts; attempt++ {
		if attempt > 0 {
			backoff := 1 << (attempt - 1)
			s.now += backoff
			s.stats.Retries++
			s.met.retries.Inc()
			if s.tracer != nil {
				s.tracer.Emit(obs.Event{
					Type: "batch.retry", Engine: "online", Round: s.now, N: attempt, Err: err.Error(),
					Trace: s.traceID(),
				})
			}
		}
		snap := s.snapshotCrossbars()
		rounds, err = s.runBatch(set, !wantRight)
		if err == nil {
			break
		}
		// The failed run may have left partial circuits on the physical
		// crossbars and the pooled engine mid-schedule. Restore the
		// pre-batch configuration (the reconfiguration is metered — undoing
		// a partial schedule costs real power) and discard the engine so
		// the next borrower sees a fresh one.
		s.restoreCrossbars(snap)
		s.eng = nil
	}
	if err != nil {
		s.met.errs.Inc()
		s.met.quarantined.Add(int64(len(batch)))
		for _, r := range batch {
			s.busyPE[r.Comm.Src], s.busyPE[r.Comm.Dst] = false, false
			s.stats.Quarantined = append(s.stats.Quarantined, r)
		}
		n := len(batch)
		s.swapQueue(batch, rest)
		s.met.queueLen.Set(int64(len(s.queue)))
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{
				Type: "batch.quarantine", Engine: "online", Round: s.now, N: n, Err: err.Error(),
				Trace: s.traceID(),
			})
		}
		if !batchStart.IsZero() {
			s.tracer.EmitSpan(obs.SpanRecord{
				Trace: s.span.Trace, Span: s.tracer.NewSpanID(), Parent: s.span.Span,
				Name: "online.batch", Engine: "online",
				Start: batchStart, End: time.Now(), N: n, Err: err.Error(),
			})
		}
		return false, fmt.Errorf("online: batch %s quarantined after %d attempts: %w", set, MaxDispatchAttempts, err)
	}

	dispatched := s.now
	s.now += rounds
	s.stats.Rounds += rounds
	s.stats.Batches++
	s.met.batches.Inc()
	s.met.busy.Add(int64(rounds))
	s.met.batchSize.Observe(float64(len(batch)))
	for _, r := range batch {
		s.busyPE[r.Comm.Src], s.busyPE[r.Comm.Dst] = false, false
		s.stats.Completed = append(s.stats.Completed, Completed{
			Request: r, Dispatched: dispatched, Finished: s.now,
		})
		s.met.completed.Inc()
		s.met.latency.Observe(float64(s.now - r.Arrival))
	}
	s.swapQueue(batch, rest)
	s.met.queueLen.Set(int64(len(s.queue)))
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{
			Type: "batch.done", Engine: "online", Round: dispatched, N: rounds,
			Trace: s.traceID(),
		})
	}
	if !batchStart.IsZero() {
		s.tracer.EmitSpan(obs.SpanRecord{
			Trace: s.span.Trace, Span: s.tracer.NewSpanID(), Parent: s.span.Span,
			Name: "online.batch", Engine: "online",
			Start: batchStart, End: time.Now(), N: rounds,
		})
	}
	return true, nil
}

// swapQueue installs rest (built in s.queueAlt) as the queue and retires
// the old queue array as the next dispatch's rest buffer, keeping both
// arrays (and the batch scratch) alive across calls.
func (s *Simulator) swapQueue(batch, rest []Request) {
	s.queueAlt = s.queue[:0]
	s.queue = rest
	s.batchScratch = batch
}

// snapshotCrossbars captures every physical switch's configuration so a
// failed batch can be rolled back. The snapshot slice is reused across
// calls (it lives until the next snapshot), so steady-state dispatching
// does not allocate for it.
func (s *Simulator) snapshotCrossbars() []xbar.Config {
	if s.cfgSnap == nil {
		s.cfgSnap = make([]xbar.Config, len(s.switches))
	}
	for n, sw := range s.switches {
		if sw != nil {
			s.cfgSnap[n] = sw.Config()
		}
	}
	return s.cfgSnap
}

// restoreCrossbars reconfigures every physical switch back to the
// snapshot. Restoration goes through the normal Connect/Disconnect path,
// so the meters record the recovery reconfiguration — tearing down a
// partially established schedule is real physical work, not bookkeeping.
func (s *Simulator) restoreCrossbars(snap []xbar.Config) {
	outs := [3]xbar.Side{xbar.L, xbar.R, xbar.P}
	for n, sw := range s.switches {
		if sw == nil {
			continue
		}
		cur := sw.Config()
		for _, out := range outs {
			want := snap[n].Driver(out)
			if cur.Driver(out) == want {
				continue
			}
			if want == xbar.None {
				sw.Disconnect(out)
			} else {
				// A snapshot is one-to-one on inputs, so each desired driver
				// is connected exactly once and later Connects cannot detach
				// an output restored earlier in this loop.
				sw.Connect(want, out)
			}
		}
	}
}

// runBatch schedules one oriented batch over the shared crossbars and
// returns the rounds it consumed. The whole-batch engine is pooled: the
// first dispatch builds it, later dispatches Reset it, so steady-state
// dispatching allocates no engine state. When sharding is enabled (and no
// registry/tracer is attached) the batch is first split into independent
// subtree groups that run concurrently.
func (s *Simulator) runBatch(set *comm.Set, reflected bool) (int, error) {
	if s.shard && s.reg == nil && s.tracer == nil && s.inj == nil {
		if rounds, ok, err := s.runSharded(set, reflected); ok {
			return rounds, err
		}
	}
	var err error
	if s.eng == nil {
		s.eng, err = padr.New(s.tree, set,
			padr.WithSharedCrossbars(s.switches),
			padr.WithReflection(reflected),
			// The inner engine inherits our registry, tracer and fault
			// injector, so its cst_padr_* series and per-round events
			// accumulate across batches and every batch runs under the
			// same fault plan.
			padr.WithRegistry(s.reg),
			padr.WithTracer(s.tracer),
			padr.WithFaults(s.inj))
	} else {
		err = s.eng.Reset(set, padr.WithReflection(reflected))
	}
	if err != nil {
		return 0, err
	}
	if s.tracer != nil {
		// Always re-arm (a zero context is inert): a stale context from an
		// errored traced run must not leak into the next batch.
		s.eng.SetSpanContext(s.span)
	}
	// RunRounds skips the Result/Report assembly Run would do — the
	// dispatcher bills power from the shared switch meters at Finish, so
	// per-batch reports would be discarded anyway. This keeps steady-state
	// dispatch at zero allocations (pinned by TestDispatchSteadyStateAllocs).
	return s.eng.RunRounds()
}

// runSharded splits the batch into sub-batches with disjoint subtree
// footprints and runs them through parallel pooled engines. Returns
// ok=false when the batch has a single group (the pooled whole-batch path
// is cheaper than one shard plus plan overhead).
//
// Correctness: the oriented comms of a well-nested set have laminar LCA
// spans, so sorting by (lo asc, hi desc) and merging overlapping spans
// yields groups whose subtrees are pairwise disjoint. Phase 1 above a group
// root sees only empty up-words (stored state zero, no matches), so the
// unsharded run never configures or meters a switch above a group root —
// which is exactly the state the shard views leave untouched.
func (s *Simulator) runSharded(set *comm.Set, reflected bool) (int, bool, error) {
	if len(set.Comms) < 2 {
		return 0, false, nil
	}
	// A circuit's switch footprint lives inside the subtree of its
	// endpoints' LCA, whose PE span is a dyadic interval. Dyadic intervals
	// are laminar — any two are nested or disjoint — so after sorting by
	// (lo asc, hi desc) a single merge pass groups the comms into maximal
	// disjoint subtrees, and each group's root is its first (containing)
	// comm's LCA.
	type item struct {
		lo, hi int // PE span of the comm's LCA subtree, half open
		lca    topology.Node
		c      comm.Comm
	}
	items := make([]item, len(set.Comms))
	for i, c := range set.Comms {
		lca := s.tree.LCA(c.Src, c.Dst)
		lo, hi := s.tree.Span(lca)
		items[i] = item{lo: lo, hi: hi, lca: lca, c: c}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].lo != items[j].lo {
			return items[i].lo < items[j].lo
		}
		return items[i].hi > items[j].hi
	})
	type groupSpan struct {
		lo, hi int // item index range [lo, hi)
		root   topology.Node
		r      int // group subtree span end
	}
	var groups []groupSpan
	for i, it := range items {
		if len(groups) > 0 && it.lo < groups[len(groups)-1].r {
			groups[len(groups)-1].hi = i + 1
			continue
		}
		groups = append(groups, groupSpan{lo: i, hi: i + 1, root: it.lca, r: it.hi})
	}
	if len(groups) < 2 {
		return 0, false, nil
	}

	for len(s.shards) < len(groups) {
		ctx := &shardCtx{
			view: make([]*xbar.Switch, len(s.switches)),
			fill: make([]*xbar.Switch, len(s.switches)),
			set:  &comm.Set{N: s.tree.Leaves()},
		}
		s.tree.EachSwitch(func(nd topology.Node) { ctx.fill[nd] = xbar.NewSwitch() })
		s.shards = append(s.shards, ctx)
	}

	var wg sync.WaitGroup
	for gi, g := range groups {
		ctx := s.shards[gi]
		ctx.set.Comms = ctx.set.Comms[:0]
		for _, it := range items[g.lo:g.hi] {
			ctx.set.Comms = append(ctx.set.Comms, it.c)
		}
		// The view aliases physical switches only inside the group's
		// subtree (the reflected subtree when running mirrored), private
		// inert fillers elsewhere. The fillers are provably never written:
		// no circuit of this shard leaves its subtree.
		root := g.root
		if reflected {
			root = s.tree.Reflect(root)
		}
		copy(ctx.view, ctx.fill)
		s.graft(ctx.view, root)

		wg.Add(1)
		go func(ctx *shardCtx) {
			defer wg.Done()
			ctx.rounds, ctx.err = 0, nil
			var err error
			if ctx.eng == nil {
				ctx.eng, err = padr.New(s.tree, ctx.set,
					padr.WithSharedCrossbars(ctx.view),
					padr.WithReflection(reflected))
			} else {
				err = ctx.eng.Reset(ctx.set, padr.WithReflection(reflected))
			}
			if err != nil {
				ctx.err = err
				return
			}
			ctx.rounds, ctx.err = ctx.eng.RunRounds()
		}(ctx)
	}
	wg.Wait()

	rounds := 0
	for _, ctx := range s.shards[:len(groups)] {
		if ctx.err != nil {
			return 0, true, ctx.err
		}
		if ctx.rounds > rounds {
			rounds = ctx.rounds
		}
	}
	return rounds, true, nil
}

// graft points view at the physical switches for every internal node in
// subtree(root).
func (s *Simulator) graft(view []*xbar.Switch, root topology.Node) {
	if s.tree.IsLeaf(root) {
		return
	}
	view[root] = s.switches[root]
	s.graft(view, s.tree.Left(root))
	s.graft(view, s.tree.Right(root))
}

// TakeCompleted returns the completion records appended since the previous
// TakeCompleted call, in completion order. The records stay in Stats — the
// cursor only tracks how far this incremental view has read — so Finish
// reporting is unaffected. The serving layer consumes this after each
// flush to map fulfilled requests back to their waiters.
func (s *Simulator) TakeCompleted() []Completed {
	out := s.stats.Completed[s.takenCompleted:]
	s.takenCompleted = len(s.stats.Completed)
	return out
}

// TakeQuarantined returns the quarantine records appended since the
// previous TakeQuarantined call — the requests expelled by failed
// dispatches that the serving layer must answer with an error rather than
// leave hanging.
func (s *Simulator) TakeQuarantined() []Request {
	out := s.stats.Quarantined[s.takenQuarantined:]
	s.takenQuarantined = len(s.stats.Quarantined)
	return out
}

// Busy reports whether either endpoint is currently reserved by a queued
// request (out-of-range endpoints read as busy). It lets admission layers
// pre-check a conflict without paying Submit's error construction — the
// serving hot path defers conflicting calls on this instead of parsing
// allocated errors.
func (s *Simulator) Busy(src, dst int) bool {
	n := len(s.busyPE)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return true
	}
	return s.busyPE[src] || s.busyPE[dst]
}

// Recycle truncates the append-only Completed/Quarantined record lists
// once the Take cursors have consumed them, so a long-lived serving
// simulator's memory stays bounded instead of growing with every request
// ever served. Slices returned by earlier TakeCompleted/TakeQuarantined
// calls are invalidated — callers must finish with them first. Aggregate
// counters (Batches, Rounds, …) are unaffected; records retired here no
// longer appear in Finish's Stats.
func (s *Simulator) Recycle() {
	if s.takenCompleted == len(s.stats.Completed) {
		s.stats.Completed = s.stats.Completed[:0]
		s.takenCompleted = 0
	}
	if s.takenQuarantined == len(s.stats.Quarantined) {
		s.stats.Quarantined = s.stats.Quarantined[:0]
		s.takenQuarantined = 0
	}
}

// BusyPEs returns how many processing elements are currently reserved by
// queued requests. After a successful Drain it must be zero: every
// completion and every quarantine frees its endpoints.
func (s *Simulator) BusyPEs() int {
	n := 0
	for _, b := range s.busyPE {
		if b {
			n++
		}
	}
	return n
}

// Drain dispatches until the queue is empty.
func (s *Simulator) Drain() error {
	for len(s.queue) > 0 {
		if _, err := s.Dispatch(); err != nil {
			return err
		}
	}
	return nil
}

// Finish closes the run and returns the statistics.
func (s *Simulator) Finish() *Stats {
	s.stats.Leftover = len(s.queue)
	s.stats.Report = power.CollectSlice("online-padr", power.Stateful, s.stats.Rounds, s.tree, s.switches)
	// Counter semantics stay monotone even if Finish is called twice: bill
	// only the units accrued since the last call.
	if delta := int64(s.stats.Report.TotalUnits()) - s.met.units.Value(); delta > 0 {
		s.met.units.Add(delta)
	}
	return &s.stats
}

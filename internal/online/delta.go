package online

import (
	"errors"
	"fmt"
	"time"

	"cst/internal/comm"
	"cst/internal/obs"
	"cst/internal/padr"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// Delta sessions: long-lived communication sets scheduled incrementally.
//
// A session owns a warm padr engine over PRIVATE crossbars — never the
// simulator's physical fabric switches, which belong to the batch
// dispatcher and may hold in-flight circuits. Each ApplyDelta mutates the
// session's set (removes first, then adds) and re-schedules it, taking
// the incremental Engine.ApplyRounds path whenever the engine still
// trusts its Phase 1 snapshot, and falling back to a from-scratch
// Reset+RunRounds otherwise (first request of a session, or a faulted
// apply that voided the snapshot). An invalid delta (padr.ErrDelta) is
// rejected with the session untouched — no fallback, because the request
// itself is wrong, not the engine state.
//
// Sessions are confined to the simulator's goroutine like everything else
// here; the serving layer pins a session id to one shard worker
// (session % shards) so all of its deltas arrive on the same simulator.

// DefaultMaxDeltaSessions caps how many concurrent delta sessions one
// simulator retains; each session holds a full engine + crossbar arena.
const DefaultMaxDeltaSessions = 256

// ErrSessionsFull is returned when opening one more delta session would
// exceed the session cap. Maps to 429 on the serving surface.
var ErrSessionsFull = errors.New("online: delta session table full")

// ErrDeltaRejected marks a delta invalid against its session (it is
// padr.ErrDelta, re-exported so callers need not import padr). Maps to
// 400 on the serving surface; the session is left exactly as it was.
var ErrDeltaRejected = padr.ErrDelta

// DeltaResult reports one applied delta.
type DeltaResult struct {
	Session uint64
	// Rounds is the schedule length of the re-scheduled set; Width its
	// congestion bound (equal under the default greedy selection,
	// Theorem 5 of the paper).
	Rounds, Width int
	// Size is the session's set size after the delta.
	Size int
	// Fallback marks a success served by a from-scratch run instead of an
	// incremental apply (session open, or recovery from a faulted apply).
	Fallback bool
}

// deltaSession is one warm session: its engine, its private crossbars and
// the canonical committed communication set.
type deltaSession struct {
	eng   *padr.Engine
	xbars []*xbar.Switch
	comms []comm.Comm
	set   *comm.Set // reused Reset scratch aliasing comms
}

type deltaMetrics struct {
	requests  *obs.Counter
	applied   *obs.Counter
	fallbacks *obs.Counter
	rejected  *obs.Counter
	sessions  *obs.Gauge
	rounds    *obs.Histogram
	applyTime *obs.Histogram
}

func newDeltaMetrics(r *obs.Registry) deltaMetrics {
	return deltaMetrics{
		requests:  r.Counter("cst_delta_requests_total", "delta scheduling requests received"),
		applied:   r.Counter("cst_delta_applied_total", "deltas served by the incremental apply path"),
		fallbacks: r.Counter("cst_delta_fallbacks_total", "deltas served by a from-scratch fallback run"),
		rejected:  r.Counter("cst_delta_rejected_total", "deltas rejected as invalid against their session"),
		sessions:  r.Gauge("cst_delta_sessions", "delta sessions currently open"),
		rounds:    r.Histogram("cst_delta_rounds", "schedule rounds per applied delta", roundBuckets()),
		applyTime: r.Histogram("cst_delta_apply_seconds", "wall-clock delta scheduling time", obs.ExponentialBuckets(1e-6, 2, 20)),
	}
}

// WithDeltaSessionCap overrides DefaultMaxDeltaSessions.
func WithDeltaSessionCap(n int) Option {
	return func(s *Simulator) { s.deltaCap = n }
}

// DeltaSessions returns how many delta sessions are open.
func (s *Simulator) DeltaSessions() int { return len(s.sessions) }

// ApplyDelta mutates session id's communication set by remove/add (in
// that order) and re-schedules it. Communications must be right-oriented
// (src < dst) and the mutated set well-nested — violations reject with an
// error wrapping padr.ErrDelta and leave the session exactly as it was.
// A first delta against an unknown id opens the session with an empty
// set; ErrSessionsFull rejects the open when the cap is reached.
func (s *Simulator) ApplyDelta(id uint64, remove, add []comm.Comm) (DeltaResult, error) {
	s.dmet.requests.Inc()
	start := time.Time{}
	if s.tracer != nil && s.span.Valid() {
		start = time.Now()
	}
	res, err := s.applyDelta(id, remove, add)
	if !start.IsZero() {
		rec := obs.SpanRecord{
			Trace: s.span.Trace, Span: s.tracer.NewSpanID(), Parent: s.span.Span,
			Name: "online.delta", Engine: "online",
			Start: start, End: time.Now(), N: res.Rounds,
		}
		if err != nil {
			rec.Err = err.Error()
		}
		s.tracer.EmitSpan(rec)
	}
	return res, err
}

func (s *Simulator) applyDelta(id uint64, remove, add []comm.Comm) (DeltaResult, error) {
	t0 := time.Now()
	sess, open := s.sessions[id]
	if !open {
		if len(s.sessions) >= s.deltaCap {
			return DeltaResult{Session: id}, ErrSessionsFull
		}
		n := s.tree.Leaves()
		sess = &deltaSession{
			xbars: make([]*xbar.Switch, n),
			set:   &comm.Set{N: n},
		}
		s.tree.EachSwitch(func(nd topology.Node) { sess.xbars[nd] = xbar.NewSwitch() })
	}

	// Warm path: the engine still trusts its Phase 1 snapshot, so the
	// delta re-floats control words only along the dirty root paths.
	if sess.eng != nil && sess.eng.Ready() {
		rounds, err := sess.eng.ApplyRounds(padr.Delta{Remove: remove, Add: add})
		if err == nil {
			sess.comms = mutateComms(sess.comms, remove, add)
			s.dmet.applied.Inc()
			s.dmet.rounds.Observe(float64(rounds))
			s.dmet.applyTime.ObserveDuration(time.Since(t0))
			return DeltaResult{Session: id, Rounds: rounds, Width: rounds, Size: len(sess.comms)}, nil
		}
		if errors.Is(err, padr.ErrDelta) {
			// The request is invalid against this session; the engine
			// rolled the mutation back and stays warm.
			s.dmet.rejected.Inc()
			return DeltaResult{Session: id, Size: len(sess.comms)}, err
		}
		// A committed mutation failed mid-run (e.g. an injected fault):
		// the snapshot is void, recover below from the canonical set.
	}

	// Fallback / cold path: rebuild the canonical target set and run it
	// from scratch on a Reset engine.
	target, err := validateMutation(sess.comms, remove, add)
	if err != nil {
		s.dmet.rejected.Inc()
		return DeltaResult{Session: id, Size: len(sess.comms)}, fmt.Errorf("%w: %v", padr.ErrDelta, err)
	}
	sess.set.Comms = target
	if sess.eng == nil {
		sess.eng, err = padr.New(s.tree, sess.set,
			padr.WithSharedCrossbars(sess.xbars),
			// Session engines inherit the simulator's registry, tracer and
			// fault plan, like the batch engines do.
			padr.WithRegistry(s.reg),
			padr.WithTracer(s.tracer),
			padr.WithFaults(s.inj))
	} else {
		err = sess.eng.Reset(sess.set)
	}
	if err != nil {
		// New/Reset only fail on an invalid set — a delta that broke
		// well-nestedness slips past the pairwise checks above.
		s.dmet.rejected.Inc()
		return DeltaResult{Session: id, Size: len(sess.comms)}, fmt.Errorf("%w: %v", padr.ErrDelta, err)
	}
	rounds, err := sess.eng.RunRounds()
	if err != nil {
		// The fallback run itself failed (persistent fault). The session
		// keeps its previous canonical set; the engine is not ready, so
		// the next delta retries this path.
		return DeltaResult{Session: id, Size: len(sess.comms), Fallback: true},
			fmt.Errorf("online: delta fallback run: %w", err)
	}
	sess.comms = append(sess.comms[:0], target...)
	if !open {
		s.sessions[id] = sess
		s.dmet.sessions.Set(int64(len(s.sessions)))
	}
	s.dmet.fallbacks.Inc()
	s.dmet.rounds.Observe(float64(rounds))
	s.dmet.applyTime.ObserveDuration(time.Since(t0))
	return DeltaResult{Session: id, Rounds: rounds, Width: rounds,
		Size: len(sess.comms), Fallback: true}, nil
}

// CloseDeltaSession drops a session and frees its engine and crossbars.
// Closing an unknown session is a no-op.
func (s *Simulator) CloseDeltaSession(id uint64) {
	if _, ok := s.sessions[id]; ok {
		delete(s.sessions, id)
		s.dmet.sessions.Set(int64(len(s.sessions)))
	}
}

// mutateComms applies an already-validated delta to comms in place.
func mutateComms(comms []comm.Comm, remove, add []comm.Comm) []comm.Comm {
	for _, c := range remove {
		for i, have := range comms {
			if have == c {
				comms[i] = comms[len(comms)-1]
				comms = comms[:len(comms)-1]
				break
			}
		}
	}
	return append(comms, add...)
}

// validateMutation builds the canonical post-delta set without touching
// comms, rejecting removes of absent pairs. Structural validity of the
// result (orientation, endpoint conflicts, well-nestedness) is left to
// the engine's own set validation.
func validateMutation(comms []comm.Comm, remove, add []comm.Comm) ([]comm.Comm, error) {
	target := append(make([]comm.Comm, 0, len(comms)+len(add)), comms...)
	for _, c := range remove {
		found := false
		for i, have := range target {
			if have == c {
				target[i] = target[len(target)-1]
				target = target[:len(target)-1]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("remove %s: not in the session set", c)
		}
	}
	return append(target, add...), nil
}

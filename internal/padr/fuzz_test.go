package padr

import (
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

// FuzzEngine drives the full engine with parser-accepted expressions: every
// accepted set must schedule in exactly `width` rounds, pass the
// independent verifier, and respect the O(1) power bound.
func FuzzEngine(f *testing.F) {
	for _, seed := range []string{
		"()", "(())", "(()())", "((((((()))))))", "(.)(.)(.)(.)",
		"((.)((.)..).)(.)", "((((....))))....",
	} {
		f.Add(seed)
	}
	trees := map[int]*topology.Tree{}
	f.Fuzz(func(t *testing.T, expr string) {
		if len(expr) > 256 {
			return
		}
		s, err := comm.Parse(expr)
		if err != nil {
			return
		}
		tr := trees[s.N]
		if tr == nil {
			tr, err = topology.New(s.N)
			if err != nil {
				t.Fatal(err)
			}
			trees[s.N] = tr
		}
		e, err := New(tr, s)
		if err != nil {
			t.Fatalf("engine rejected a parser-accepted set %q: %v", expr, err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("run failed for %q: %v", expr, err)
		}
		if err := res.Schedule.VerifyOptimal(tr); err != nil {
			t.Fatalf("verification failed for %q: %v", expr, err)
		}
		if res.Report.MaxUnits() > 6 {
			t.Fatalf("power bound violated for %q: %s", expr, res.Report.Summary())
		}
	})
}

// Delta scheduling: incremental re-runs of CSA against a mutated
// communication set (ROADMAP "incremental / self-adjusting scheduling").
//
// A full prepare retains the pristine post-Phase-1 state — every switch's
// C_S word and the matchedSub subtree totals — exactly as Phase 2 is about
// to consume it. Apply then exploits the locality of the matching: a
// switch's C_S word depends only on the leaves of its subtree, so an
// add/remove touching k endpoints invalidates only the switches on the k
// root paths above them (O(k·log N) of the N−1 switches). Apply re-runs
// Match bottom-up over exactly that dirty set, restores the live arrays
// with two memcopies and executes an ordinary Phase 2 — which is why the
// resulting schedule is bit-identical to a from-scratch run on the mutated
// set: Phase 2 sees byte-identical stored words, matchedSub totals and
// width, and never learns it was prepared incrementally.
//
// The set's link width is maintained incrementally too: the per-edge load
// table that WidthInto filled is kept live, each mutation walks the
// communication's tree path adjusting loads, and a histogram over load
// values yields the new maximum without an O(N) rescan.
//
// Invariants and fallback rules (DESIGN.md §incremental-scheduling):
//
//   - Apply is legal only on a Ready engine — one whose last run completed
//     successfully, leaving a trusted Phase-1 snapshot (ErrNotReady
//     otherwise).
//   - An invalid delta (unknown remove, busy endpoint, orientation or
//     nesting violation) is rejected with ErrDelta after rolling the set
//     mutations back; the engine stays Ready on the old set.
//   - Once the mutation commits, any failure (fault injection, validation)
//     leaves the engine not Ready; the caller falls back to Reset + a
//     from-scratch run on the full set.
//
// Result caveats: UpWords/UpBytes count only the re-floated dirty words
// (the measured savings, not the scratch-run totals), and Schedule.Set may
// order communications differently than a from-scratch arm (removal is
// swap-remove); rounds, stored words and width are bit-identical.
package padr

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/obs"
	"cst/internal/sched"
	"cst/internal/topology"
)

// ErrNotReady is returned by Apply/ApplyRounds when the engine does not
// hold a completed run's Phase-1 snapshot to mutate (never ran, was Reset,
// or the previous run failed).
var ErrNotReady = errors.New("padr: engine holds no completed run to apply a delta to")

// ErrDelta wraps every delta-validation failure. The engine's set and
// readiness are unchanged when an error matches it, so the caller may fix
// the delta and retry without falling back to a from-scratch run.
var ErrDelta = errors.New("padr: invalid delta")

// Delta is a mutation of the engine's current communication set: Remove
// lists communications to drop (matched by exact src/dst) and Add lists
// communications to insert. Removes are applied before adds, so a delta may
// re-pair a PE in one call. The mutated set must be oriented well-nested.
type Delta struct {
	Add    []comm.Comm
	Remove []comm.Comm
}

// Size is the number of mutation operations in the delta.
func (d Delta) Size() int { return len(d.Add) + len(d.Remove) }

// Ready reports whether the engine holds a completed run Apply can mutate.
func (e *Engine) Ready() bool { return e.deltaOK }

// Set exposes the engine's current communication set. The returned set is
// the engine's live arena: read-only for callers, valid until the next
// Reset or Apply.
func (e *Engine) Set() *comm.Set { return e.set }

// Apply mutates the last scheduled set by d and re-runs the schedule,
// reusing Phase 1 state everywhere outside the dirty root paths. The
// result is bit-identical to Reset+Run on the mutated set (see the package
// comment for the two documented exceptions). Crossbar state is carried
// over, so power reports bill only the reconfigurations this run causes —
// the PADR story for long-lived dynamic sets.
func (e *Engine) Apply(d Delta) (*Result, error) {
	p := new(prepared)
	if err := e.applyPrepare(p, d, false); err != nil {
		return nil, err
	}
	for {
		_, done, err := e.step(p)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return e.finalize(p)
}

// ApplyRounds is Apply's rounds-only twin, mirroring RunRounds: no
// schedule, no snapshot, no power report, and allocation-free on a warm
// engine as long as the set does not outgrow its arenas.
func (e *Engine) ApplyRounds(d Delta) (int, error) {
	p := &e.lightPrep
	*p = prepared{}
	if err := e.applyPrepare(p, d, true); err != nil {
		return 0, err
	}
	return e.finishLight(p)
}

// applyPrepare is prepareInto for the delta path: mutate the set, patch
// Phase 1 along the dirty paths, restore the live arrays and stage Phase 2.
func (e *Engine) applyPrepare(p *prepared, d Delta, light bool) error {
	if !e.deltaOK {
		return ErrNotReady
	}
	if err := e.applyMutate(d); err != nil {
		return err // rolled back; the engine stays Ready on the old set
	}
	// Mutation committed: from here any failure leaves the engine not
	// Ready, and the caller must fall back to Reset + a from-scratch run.
	e.deltaOK = false
	e.met.runs.Inc()
	e.met.comms.Add(int64(e.set.Len()))
	e.met.switches.Add(int64(e.tree.Switches()))
	if e.instr {
		e.runStart = time.Now()
		e.unitsBase, e.altBase = e.meterTotals()
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Type: "delta.apply", Engine: "padr", Round: -1, N: d.Size(), Trace: e.traceID()})
		e.tracer.Emit(obs.Event{Type: "run.start", Engine: "padr", Round: -1, N: e.set.Len(), Mode: e.mode.String(), Trace: e.traceID()})
	}
	e.inj.BeginRun()
	e.prune = e.obs.WordSent == nil && e.obs.Configured == nil && e.tracer == nil && e.inj == nil

	// Per-run bookkeeping, mirroring arm+prepareInto. Only the current
	// set's endpoints need their done flags cleared: a stale true at any
	// other PE is unreachable, because leaf() checks leafRole first.
	e.upWords, e.downWords, e.upBytes, e.downBytes, e.activeDown = 0, 0, 0, 0, 0
	for _, c := range e.set.Comms {
		e.leafDone[c.Src] = false
		e.leafDone[c.Dst] = false
	}
	e.remaining = len(e.set.Comms)
	if cap(e.commArena) < len(e.set.Comms) {
		e.commArena = make([]comm.Comm, len(e.set.Comms))
	}
	e.commArena = e.commArena[:cap(e.commArena)]
	e.commUsed = 0

	width := e.curWidth
	e.met.width.Set(int64(width))

	if err := e.deltaPhase1(); err != nil {
		return e.fail(err)
	}
	e.met.upWords.Add(int64(e.upWords))
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Type: "phase1.done", Engine: "padr", Round: -1,
			N: e.upWords, DurNS: time.Since(e.runStart).Nanoseconds(), Width: width,
		})
	}

	// Validate the recomputed words. The encoding is fixed-size, so the
	// from-scratch maxStored sweep always yields StoredWordBytes; only
	// range validation needs to run, and only over the dirty switches.
	maxStored := ctrl.StoredWordBytes
	for _, u := range e.dirtyList {
		if _, err := ctrl.EncodeStoredInto(e.encBuf[:], e.p1Stored[u]); err != nil {
			return e.fail(fmt.Errorf("padr: switch %d state not encodable: %v", u, err))
		}
	}
	if up := e.p1Stored[e.tree.Root()].UpWord(); up.S != 0 || up.D != 0 {
		return e.fail(fmt.Errorf("padr: root still advertises %s upward; set is not schedulable", up))
	}

	// Restore the live arrays Phase 2 drains from the pristine snapshot.
	copy(e.stored, e.p1Stored)
	copy(e.matchedSub, e.p1MatchedSub)

	maxRounds := width + MaxRoundsSlack
	if e.sel == Conservative {
		maxRounds = e.set.Len() + MaxRoundsSlack
	}
	p.width = width
	p.maxRounds = maxRounds
	p.maxStored = maxStored
	p.round = 0
	if !light {
		p.initial = make([]ctrl.Stored, len(e.stored))
		copy(p.initial, e.stored)
		p.schedule = &sched.Schedule{Set: e.set.Clone()}
	} else {
		p.initial = nil
		p.schedule = nil
	}
	return nil
}

// applyMutate validates and applies the delta to the set arenas (leafRole,
// dstOf, commPos, set.Comms, edge loads) transactionally: on any failure
// the applied prefix is undone via inverse operations and ErrDelta is
// returned with the engine still Ready. Dirty marks accumulated by a
// rolled-back prefix are harmless — the epoch is re-stamped on the next
// Apply and recomputing a clean switch reproduces its value.
func (e *Engine) applyMutate(d Delta) error {
	if e.histDirty {
		e.rebuildLoadHist()
	}
	if e.dirtyMark == nil {
		e.dirtyMark = make([]int, e.set.N)
	}
	e.dirtyEpoch++
	e.dirtyList = e.dirtyList[:0]

	remDone, addDone := 0, 0
	var err error
	for _, c := range d.Remove {
		if err = e.removeComm(c); err != nil {
			break
		}
		remDone++
	}
	if err == nil {
		for _, c := range d.Add {
			if err = e.addComm(c); err != nil {
				break
			}
			addDone++
		}
	}
	if err == nil && !e.scanNested() {
		err = fmt.Errorf("resulting set is not oriented well-nested")
	}
	if err != nil {
		// Inverse operations in reverse order; each is valid by
		// construction, so the rollback cannot fail.
		for i := addDone - 1; i >= 0; i-- {
			_ = e.removeComm(d.Add[i])
		}
		for i := remDone - 1; i >= 0; i-- {
			_ = e.addComm(d.Remove[i])
		}
		e.settleWidth()
		return fmt.Errorf("%w: %v", ErrDelta, err)
	}
	e.settleWidth()
	return nil
}

// addComm inserts one communication into the set arenas.
func (e *Engine) addComm(c comm.Comm) error {
	n := e.set.N
	if c.Src < 0 || c.Src >= n || c.Dst < 0 || c.Dst >= n {
		return fmt.Errorf("add %s: out of range for N=%d", c, n)
	}
	if c.Src == c.Dst {
		return fmt.Errorf("add %s: self loop", c)
	}
	if !c.RightOriented() {
		return fmt.Errorf("add %s: not right oriented", c)
	}
	if e.leafRole[c.Src] != (ctrl.Up{}) {
		return fmt.Errorf("add %s: PE %d already appears in the set", c, c.Src)
	}
	if e.leafRole[c.Dst] != (ctrl.Up{}) {
		return fmt.Errorf("add %s: PE %d already appears in the set", c, c.Dst)
	}
	e.leafRole[c.Src] = ctrl.Up{S: 1}
	e.leafRole[c.Dst] = ctrl.Up{D: 1}
	e.dstOf[c.Src] = c.Dst
	e.commPos[c.Src] = int32(len(e.set.Comms))
	e.set.Comms = append(e.set.Comms, c)
	e.shiftLoads(c, 1)
	e.markDirty(c)
	return nil
}

// removeComm swap-removes one communication from the set arenas.
func (e *Engine) removeComm(c comm.Comm) error {
	n := e.set.N
	if c.Src < 0 || c.Src >= n || c.Dst < 0 || c.Dst >= n || c.Src == c.Dst || e.dstOf[c.Src] != c.Dst {
		return fmt.Errorf("remove %s: not in the current set", c)
	}
	e.leafRole[c.Src] = ctrl.Up{}
	e.leafRole[c.Dst] = ctrl.Up{}
	e.dstOf[c.Src] = -1
	i := int(e.commPos[c.Src])
	last := len(e.set.Comms) - 1
	e.set.Comms[i] = e.set.Comms[last]
	e.commPos[e.set.Comms[i].Src] = int32(i)
	e.set.Comms = e.set.Comms[:last]
	e.commPos[c.Src] = -1
	e.shiftLoads(c, -1)
	e.markDirty(c)
	return nil
}

// shiftLoads adjusts the persistent per-edge load table along c's tree path
// by delta (±1), keeping the load histogram and running width current. The
// counting is exactly WidthInto's, so curWidth tracks what a from-scratch
// WidthInto would report.
func (e *Engine) shiftLoads(c comm.Comm, delta int) {
	_ = e.tree.EachPathEdge(c.Src, c.Dst, func(ed topology.Edge) {
		i := e.tree.EdgeIndex(ed)
		v := e.widthScratch[i]
		e.loadHist[v]--
		v += delta
		e.widthScratch[i] = v
		e.loadHist[v]++
		if v > e.curWidth {
			e.curWidth = v
		}
	})
}

// settleWidth shrinks curWidth past emptied histogram buckets after
// removals (additions bump it in shiftLoads).
func (e *Engine) settleWidth() {
	for e.curWidth > 0 && e.loadHist[e.curWidth] == 0 {
		e.curWidth--
	}
}

// rebuildLoadHist derives the load histogram and running width from the
// edge loads WidthInto left behind. Runs once after each full prepare
// (histDirty); every Apply afterwards maintains both incrementally. An
// edge's load is bounded by its subtree's leaf count ≤ N/2, so N+1 buckets
// always suffice.
func (e *Engine) rebuildLoadHist() {
	if e.loadHist == nil {
		e.loadHist = make([]int, e.set.N+1)
	}
	for i := range e.loadHist {
		e.loadHist[i] = 0
	}
	w := 0
	for _, v := range e.widthScratch {
		e.loadHist[v]++
		if v > w {
			w = v
		}
	}
	e.curWidth = w
	e.histDirty = false
}

// markDirty stamps every switch on the root paths above c's endpoints into
// the current epoch's dirty set. Paths share suffixes, so the walk stops at
// the first already-stamped ancestor.
func (e *Engine) markDirty(c comm.Comm) {
	e.markDirtyLeaf(c.Src)
	e.markDirtyLeaf(c.Dst)
}

func (e *Engine) markDirtyLeaf(pe int) {
	u := e.tree.Parent(e.tree.Leaf(pe))
	for {
		if e.dirtyMark[u] == e.dirtyEpoch {
			return // this ancestor, hence everything above, is already dirty
		}
		e.dirtyMark[u] = e.dirtyEpoch
		e.dirtyList = append(e.dirtyList, u)
		if u == e.tree.Root() {
			return
		}
		u = e.tree.Parent(u)
	}
}

// deltaPhase1 re-runs Steps 1.1–1.3 over the dirty switches only, reading
// and writing the pristine snapshot. A switch off every dirty root path has
// an unchanged subtree, hence an unchanged C_S word and matchedSub total,
// so confining Match to the dirty set reproduces a full phase1 exactly.
// Fault injection sees the same per-word hook as the full pass.
func (e *Engine) deltaPhase1() error {
	// Heap numbering gives every child a larger id than its parent, so
	// descending id order is a valid bottom-up order over the dirty set.
	slices.SortFunc(e.dirtyList, func(a, b topology.Node) int { return int(b) - int(a) })
	for _, u := range e.dirtyList {
		lc, rc := e.tree.Left(u), e.tree.Right(u)
		left, err := e.upWordFromState(e.p1Stored, lc)
		if err != nil {
			return err
		}
		right, err := e.upWordFromState(e.p1Stored, rc)
		if err != nil {
			return err
		}
		st := ctrl.Match(left, right)
		e.p1Stored[u] = st
		m := st.M
		if e.tree.IsSwitch(lc) {
			m += e.p1MatchedSub[lc]
		}
		if e.tree.IsSwitch(rc) {
			m += e.p1MatchedSub[rc]
		}
		e.p1MatchedSub[u] = m
	}
	return nil
}

// snapshotPhase1 retains the post-Phase-1 stored words and matchedSub
// totals for the delta path, and flags the width bookkeeping for a rebuild
// (widthScratch now holds this set's loads). Called by prepareInto after
// the root sanity check.
func (e *Engine) snapshotPhase1() {
	if e.p1Stored == nil {
		e.p1Stored = make([]ctrl.Stored, len(e.stored))
		e.p1MatchedSub = make([]int, len(e.matchedSub))
	}
	copy(e.p1Stored, e.stored)
	copy(e.p1MatchedSub, e.matchedSub)
	e.histDirty = true
}
